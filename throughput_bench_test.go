package tcpls_test

// Steady-state data-path throughput over an in-memory transport. Unlike
// the netsim benchmarks in bench_test.go, which report virtual-time
// protocol metrics, these two measure the CPU cost of the stack itself —
// stream framing, per-stream AEAD, record parsing, reassembly — with no
// emulated link in the way, so wall-clock MB/s and allocs/op are the
// figures of merit. They are the tier-1 benchmarks tracked by
// `make bench` / `make bench-check` (see EXPERIMENTS.md).

import (
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	tcpls "github.com/pluginized-protocols/gotcpls"
)

// pipeListener hands the server ends of buffered pipes to a TCPLS
// listener; pipeDialer creates the pairs. Together they stand in for a
// TCP stack with zero link cost.
type pipeListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{ch: make(chan net.Conn, 4), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

type pipeDialer struct{ l *pipeListener }

func (d pipeDialer) Dial(laddr netip.Addr, raddr netip.AddrPort, timeout time.Duration) (net.Conn, error) {
	cp, sp := newBufferedPipe()
	select {
	case d.l.ch <- sp:
		return cp, nil
	case <-d.l.done:
		return nil, net.ErrClosed
	}
}

func BenchmarkStreamThroughput1K(b *testing.B)  { benchStreamThroughput(b, 1<<10, 0) }
func BenchmarkStreamThroughput16K(b *testing.B) { benchStreamThroughput(b, 16<<10, 0) }

// BenchmarkRecordSizeSweep reproduces the shape of the paper's Figure 2:
// goodput as a function of record size at a fixed window. Each sub-bench
// pushes the same 256 KiB writes through the stack with the stream-chunk
// size pinned via Config.RecordSize, so the sweep isolates per-record
// overhead (framing, AEAD setup, record parsing) from copy costs. The
// 64K point exercises the clamp to MaxRecordPayload — TLS caps records
// at 16 KiB of plaintext, so 64K measures "as large as the protocol
// allows", exactly the paper's right-hand asymptote.
func BenchmarkRecordSizeSweep(b *testing.B) {
	const writeSize = 256 << 10
	for _, rs := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("record=%dK", rs>>10), func(b *testing.B) {
			benchStreamThroughput(b, writeSize, rs)
		})
	}
}

func benchStreamThroughput(b *testing.B, size, recordSize int) {
	pl := newPipeListener()
	lst := tcpls.NewListener(pl, &tcpls.Config{
		TLS: &tcpls.TLSConfig{Certificate: benchCert},
	})
	defer lst.Close()

	srvCh := make(chan *tcpls.Session, 1)
	go func() {
		s, err := lst.Accept()
		if err != nil {
			return
		}
		srvCh <- s
	}()

	cli := tcpls.NewClient(&tcpls.Config{
		TLS:        &tcpls.TLSConfig{InsecureSkipVerify: true},
		RecordSize: recordSize,
	}, pipeDialer{l: pl})
	defer cli.Close()
	raddr := netip.AddrPortFrom(netip.MustParseAddr("127.0.0.1"), 443)
	if _, err := cli.Connect(netip.Addr{}, raddr, 5*time.Second); err != nil {
		b.Fatal(err)
	}
	if err := cli.Handshake(); err != nil {
		b.Fatal(err)
	}
	srv := <-srvCh

	st, err := cli.NewStream()
	if err != nil {
		b.Fatal(err)
	}
	chunk := make([]byte, size)
	for i := range chunk {
		chunk[i] = byte(i)
	}

	// Drain on the server and count delivered bytes so the timed region
	// covers true end-to-end delivery, not just enqueue-side writes.
	var delivered atomic.Int64
	go func() {
		sst, err := srv.AcceptStream()
		if err != nil {
			return
		}
		buf := make([]byte, 64<<10)
		for {
			n, err := sst.Read(buf)
			delivered.Add(int64(n))
			if err != nil {
				return
			}
		}
	}()

	// One warm-up chunk establishes the stream on the server and fills
	// the layer caches (pools, scratch buffers) before measuring.
	if _, err := st.Write(chunk); err != nil {
		b.Fatal(err)
	}
	waitDelivered(b, &delivered, int64(size))

	b.ReportAllocs()
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Write(chunk); err != nil {
			b.Fatal(err)
		}
	}
	waitDelivered(b, &delivered, int64(size)*int64(b.N+1))
	b.StopTimer()

	if err := st.Close(); err != nil && err != io.EOF {
		b.Logf("stream close: %v", err)
	}
}

// waitDelivered spins (politely) until the reader has seen want bytes.
func waitDelivered(b *testing.B, delivered *atomic.Int64, want int64) {
	deadline := time.Now().Add(2 * time.Minute)
	for delivered.Load() < want {
		if time.Now().After(deadline) {
			b.Fatalf("receiver stalled: got %d of %d bytes", delivered.Load(), want)
		}
		time.Sleep(20 * time.Microsecond)
	}
}
