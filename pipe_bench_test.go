package tcpls_test

import (
	"io"
	"net"
	"sync"
	"time"
)

// bufferedPipe returns an in-memory full-duplex connection pair with
// buffered writes, matching TCP semantics (net.Pipe is synchronous,
// which deadlocks against post-handshake ticket writes).
//
// Each direction is bounded like a kernel socket buffer: writers block
// once pipeBufCap bytes are outstanding, so a fast sender gets the same
// backpressure TCP would apply instead of growing an unbounded slice.
// The bound also keeps the benchmark harness itself quiet — an
// unbounded append buffer reallocates and copies megabytes under a
// multi-MB replay window, and that garbage would be billed to the
// stack under test.
func newBufferedPipe() (net.Conn, net.Conn) {
	a2b := newPipeBuf()
	b2a := newPipeBuf()
	return &pipeEnd{r: b2a, w: a2b}, &pipeEnd{r: a2b, w: b2a}
}

// pipeBufCap mirrors a typical default socket-buffer size: big enough
// to absorb a full write burst (15 max-size records), small enough to
// bound the harness's working set.
const pipeBufCap = 256 << 10

type pipeBuf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte // buf[off:] holds unread bytes
	off    int
	closed bool
}

func newPipeBuf() *pipeBuf {
	b := &pipeBuf{buf: make([]byte, 0, pipeBufCap)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

type pipeEnd struct {
	r, w *pipeBuf
}

func (p *pipeEnd) Read(b []byte) (int, error) {
	p.r.mu.Lock()
	defer p.r.mu.Unlock()
	for len(p.r.buf) == p.r.off && !p.r.closed {
		p.r.cond.Wait()
	}
	if len(p.r.buf) == p.r.off {
		return 0, io.EOF
	}
	n := copy(b, p.r.buf[p.r.off:])
	p.r.off += n
	if p.r.off == len(p.r.buf) {
		p.r.buf = p.r.buf[:0] // fully drained: reuse the array from the start
		p.r.off = 0
	}
	p.r.cond.Broadcast() // free space for blocked writers
	return n, nil
}

func (p *pipeEnd) Write(b []byte) (int, error) {
	p.w.mu.Lock()
	defer p.w.mu.Unlock()
	total := 0
	for len(b) > 0 {
		if p.w.closed {
			return total, io.ErrClosedPipe
		}
		// Compact or wait until there is room for at least one byte.
		if len(p.w.buf)-p.w.off >= pipeBufCap {
			p.w.cond.Wait()
			continue
		}
		if p.w.off > 0 && cap(p.w.buf)-len(p.w.buf) < len(b) {
			unread := copy(p.w.buf, p.w.buf[p.w.off:])
			p.w.buf = p.w.buf[:unread]
			p.w.off = 0
		}
		room := pipeBufCap - (len(p.w.buf) - p.w.off)
		n := min(len(b), room)
		p.w.buf = append(p.w.buf, b[:n]...)
		b = b[n:]
		total += n
		p.w.cond.Broadcast()
	}
	return total, nil
}

func (p *pipeEnd) Close() error {
	for _, buf := range []*pipeBuf{p.r, p.w} {
		buf.mu.Lock()
		buf.closed = true
		buf.cond.Broadcast()
		buf.mu.Unlock()
	}
	return nil
}

func (p *pipeEnd) LocalAddr() net.Addr                { return pipeAddr{} }
func (p *pipeEnd) RemoteAddr() net.Addr               { return pipeAddr{} }
func (p *pipeEnd) SetDeadline(t time.Time) error      { return nil }
func (p *pipeEnd) SetReadDeadline(t time.Time) error  { return nil }
func (p *pipeEnd) SetWriteDeadline(t time.Time) error { return nil }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }
