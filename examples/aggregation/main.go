// Aggregation: bandwidth aggregation over two TCP connections (§2.4).
// One stream is sprayed across a v4 and a v6 path; the receiver reorders
// by TCPLS sequence number. Compare the goodput with and without the
// second path.
package main

import (
	"fmt"
	"io"
	"log"
	"net/netip"
	"time"

	tcpls "github.com/pluginized-protocols/gotcpls"
	"github.com/pluginized-protocols/gotcpls/simnet"
)

const transferSize = 6 << 20

func run(aggregate bool) float64 {
	n := simnet.NewNetwork(simnet.WithTimeScale(0.5))
	defer n.Close()
	client, server := n.Host("client"), n.Host("server")
	cV4, sV4 := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")
	cV6, sV6 := netip.MustParseAddr("fc00::1"), netip.MustParseAddr("fc00::2")
	n.AddLink(client, server, cV4, sV4, simnet.LinkConfig{BandwidthBps: 20e6, Delay: 5 * time.Millisecond})
	n.AddLink(client, server, cV6, sV6, simnet.LinkConfig{BandwidthBps: 20e6, Delay: 8 * time.Millisecond})
	cs := simnet.NewTCPStack(client, simnet.TCPConfig{})
	ss := simnet.NewTCPStack(server, simnet.TCPConfig{})
	defer cs.Close()
	defer ss.Close()

	cert, _ := tcpls.GenerateSelfSigned("aggregation", nil, nil)
	tl, err := ss.Listen(netip.Addr{}, 443)
	if err != nil {
		log.Fatal(err)
	}
	lst := tcpls.NewListener(tl, &tcpls.Config{
		TLS:       &tcpls.TLSConfig{Certificate: cert},
		Multipath: true,
		Mode:      tcpls.ModeAggregate,
		Clock:     n,
	})
	defer lst.Close()
	go func() {
		sess, err := lst.Accept()
		if err != nil {
			return
		}
		st, err := sess.AcceptStream()
		if err != nil {
			return
		}
		io.Copy(io.Discard, st)
	}()

	mode := tcpls.ModeSinglePath
	if aggregate {
		mode = tcpls.ModeAggregate
	}
	cli := tcpls.NewClient(&tcpls.Config{
		TLS:       &tcpls.TLSConfig{InsecureSkipVerify: true},
		Multipath: true,
		Mode:      mode,
		Clock:     n,
	}, simnet.Dialer{Stack: cs})
	if _, err := cli.Connect(cV4, netip.AddrPortFrom(sV4, 443), 5*time.Second); err != nil {
		log.Fatal(err)
	}
	if err := cli.Handshake(); err != nil {
		log.Fatal(err)
	}
	if aggregate {
		if _, err := cli.Connect(cV6, netip.AddrPortFrom(sV6, 443), 5*time.Second); err != nil {
			log.Fatal("join: ", err)
		}
	}

	st, err := cli.NewStream()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 64<<10)
	for sent := 0; sent < transferSize; sent += len(buf) {
		if _, err := st.Write(buf); err != nil {
			log.Fatal(err)
		}
	}
	st.Close()
	// Wait for the replay buffer to drain: everything acked = delivered.
	for st.BytesUnacked() > 0 {
		time.Sleep(5 * time.Millisecond)
	}
	virt := n.VirtualSince(start)
	cli.Close()
	return float64(transferSize) * 8 / virt.Seconds() / 1e6
}

func main() {
	single := run(false)
	double := run(true)
	fmt.Printf("single path (1 x 20 Mbps): %6.1f Mbps\n", single)
	fmt.Printf("aggregated  (2 x 20 Mbps): %6.1f Mbps  (%.1fx)\n", double, double/single)
}
