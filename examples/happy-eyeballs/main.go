// Happy eyeballs: the v4 path is broken (a blackhole, as in the dual-
// stack failure modes the paper cites), so the 50 ms-staggered connect
// settles on v6 — no application-visible error, just a working session.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	tcpls "github.com/pluginized-protocols/gotcpls"
	"github.com/pluginized-protocols/gotcpls/simnet"
)

func main() {
	n := simnet.NewNetwork()
	defer n.Close()
	client, server := n.Host("client"), n.Host("server")
	cV4, sV4 := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")
	cV6, sV6 := netip.MustParseAddr("fc00::1"), netip.MustParseAddr("fc00::2")
	linkV4 := n.AddLink(client, server, cV4, sV4, simnet.LinkConfig{Delay: 5 * time.Millisecond})
	n.AddLink(client, server, cV6, sV6, simnet.LinkConfig{Delay: 20 * time.Millisecond})
	cs := simnet.NewTCPStack(client, simnet.TCPConfig{})
	ss := simnet.NewTCPStack(server, simnet.TCPConfig{})
	defer cs.Close()
	defer ss.Close()

	// Break the v4 path: packets vanish, as with a broken address family.
	linkV4.SetDown(true)
	fmt.Println("v4 path: blackholed")

	cert, _ := tcpls.GenerateSelfSigned("eyeballs", nil, nil)
	tl, err := ss.Listen(netip.Addr{}, 443)
	if err != nil {
		log.Fatal(err)
	}
	lst := tcpls.NewListener(tl, &tcpls.Config{TLS: &tcpls.TLSConfig{Certificate: cert}, Clock: n})
	defer lst.Close()
	go lst.Accept()

	cli := tcpls.NewClient(&tcpls.Config{
		TLS:   &tcpls.TLSConfig{InsecureSkipVerify: true},
		Clock: n,
	}, simnet.Dialer{Stack: cs})
	start := time.Now()
	addr, err := cli.ConnectHappyEyeballs([]netip.AddrPort{
		netip.AddrPortFrom(sV4, 443), // tried first, dies silently
		netip.AddrPortFrom(sV6, 443), // started 50 ms later, wins
	}, 50*time.Millisecond, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	if err := cli.Handshake(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected to %s in %s — the broken family cost ~one stagger, not a timeout\n",
		addr, time.Since(start).Truncate(time.Millisecond))
	cli.Close()
}
