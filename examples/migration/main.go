// Migration: the Figure 4 scenario as an application would write it —
// download a file over the IPv4 path, then hand the connection over to
// the IPv6 path in the middle of the download without losing a byte.
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/netip"
	"time"

	tcpls "github.com/pluginized-protocols/gotcpls"
	"github.com/pluginized-protocols/gotcpls/simnet"
)

const fileSize = 8 << 20

func main() {
	n := simnet.NewNetwork(simnet.WithTimeScale(0.25))
	defer n.Close()
	client, server := n.Host("client"), n.Host("server")
	cV4, sV4 := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")
	cV6, sV6 := netip.MustParseAddr("fc00::1"), netip.MustParseAddr("fc00::2")
	n.AddLink(client, server, cV4, sV4, simnet.LinkConfig{BandwidthBps: 30e6, Delay: 10 * time.Millisecond})
	n.AddLink(client, server, cV6, sV6, simnet.LinkConfig{BandwidthBps: 30e6, Delay: 15 * time.Millisecond})
	cs := simnet.NewTCPStack(client, simnet.TCPConfig{})
	ss := simnet.NewTCPStack(server, simnet.TCPConfig{})
	defer cs.Close()
	defer ss.Close()

	cert, _ := tcpls.GenerateSelfSigned("migration", nil, nil)
	tl, err := ss.Listen(netip.Addr{}, 443)
	if err != nil {
		log.Fatal(err)
	}
	lst := tcpls.NewListener(tl, &tcpls.Config{
		TLS:   &tcpls.TLSConfig{Certificate: cert},
		Clock: n,
		Callbacks: tcpls.Callbacks{
			Join: func(pathID uint32, remote net.Addr) {
				fmt.Printf("server: new TCP connection joined (path %d from %s)\n", pathID, remote)
			},
		},
	})
	defer lst.Close()

	// The server streams the file, oblivious to the client's migration:
	// "the server seamlessly switches the path while looping over
	// tcpls_send" (§3.2).
	go func() {
		sess, err := lst.Accept()
		if err != nil {
			return
		}
		st, err := sess.NewStream()
		if err != nil {
			return
		}
		buf := make([]byte, 64<<10)
		for sent := 0; sent < fileSize; sent += len(buf) {
			if _, err := st.Write(buf); err != nil {
				fmt.Println("server: send failed:", err)
				return
			}
		}
		st.Close()
	}()

	cli := tcpls.NewClient(&tcpls.Config{
		TLS:   &tcpls.TLSConfig{InsecureSkipVerify: true},
		Clock: n,
	}, simnet.Dialer{Stack: cs})
	if _, err := cli.Connect(cV4, netip.AddrPortFrom(sV4, 443), 5*time.Second); err != nil {
		log.Fatal(err)
	}
	if err := cli.Handshake(); err != nil {
		log.Fatal(err)
	}
	down, err := cli.AcceptStream()
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	var total int
	buf := make([]byte, 64<<10)
	migrated := false
	for {
		nread, err := down.Read(buf)
		total += nread
		if !migrated && total >= fileSize/2 {
			migrated = true
			fmt.Printf("client: %0.1f MB received — migrating v4 -> v6\n", float64(total)/(1<<20))
			// The 5-call migration of §3.2: join over v6, (stream already
			// attached automatically), close the v4 connection.
			v4Path := cli.PathIDs()[0]
			if _, err := cli.Connect(cV6, netip.AddrPortFrom(sV6, 443), 5*time.Second); err != nil {
				log.Fatal("join v6: ", err)
			}
			if err := cli.ClosePath(v4Path); err != nil {
				log.Fatal("close v4: ", err)
			}
			fmt.Println("client: migration done, download continues on v6")
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	virt := n.VirtualSince(start)
	fmt.Printf("downloaded %.1f MB in %.1fs virtual (%.1f Mbps) across the handover\n",
		float64(total)/(1<<20), virt.Seconds(), float64(total)*8/virt.Seconds()/1e6)
}
