// Plugin-cc: pluginized TCPLS (§3(iii), §4.3 of the paper). The client
// ships a congestion-control algorithm as eBPF bytecode over the secure
// channel; the server verifies the program and installs it on its
// userspace TCP connection — "the supported TCP extensibility capability
// is not frozen by a given TCPLS version".
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	tcpls "github.com/pluginized-protocols/gotcpls"
	"github.com/pluginized-protocols/gotcpls/simnet"
)

func main() {
	n := simnet.NewNetwork()
	defer n.Close()
	client, server := n.Host("client"), n.Host("server")
	cV4, sV4 := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")
	n.AddLink(client, server, cV4, sV4, simnet.LinkConfig{BandwidthBps: 50e6, Delay: 5 * time.Millisecond})
	cs := simnet.NewTCPStack(client, simnet.TCPConfig{})
	ss := simnet.NewTCPStack(server, simnet.TCPConfig{})
	defer cs.Close()
	defer ss.Close()

	cert, _ := tcpls.GenerateSelfSigned("plugin", nil, nil)
	tl, err := ss.Listen(netip.Addr{}, 443)
	if err != nil {
		log.Fatal(err)
	}
	installed := make(chan string, 1)
	lst := tcpls.NewListener(tl, &tcpls.Config{
		TLS:   &tcpls.TLSConfig{Certificate: cert},
		Clock: n,
		Callbacks: tcpls.Callbacks{
			CCInstalled: func(name string) { installed <- name },
		},
	})
	defer lst.Close()
	go lst.Accept()

	cli := tcpls.NewClient(&tcpls.Config{
		TLS:   &tcpls.TLSConfig{InsecureSkipVerify: true},
		Clock: n,
	}, simnet.Dialer{Stack: cs})
	if _, err := cli.Connect(cV4, netip.AddrPortFrom(sV4, 443), 5*time.Second); err != nil {
		log.Fatal(err)
	}
	if err := cli.Handshake(); err != nil {
		log.Fatal(err)
	}

	// Compile the AIMD controller from eBPF assembly and ship it.
	bytecode, err := tcpls.AssembleBPF(tcpls.AIMDProgram)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: shipping %d bytes of eBPF congestion control\n", len(bytecode))
	if err := cli.SendBPFCC("aimd", bytecode); err != nil {
		log.Fatal(err)
	}

	select {
	case name := <-installed:
		fmt.Printf("server: verified and installed %q on its TCP connection\n", name)
	case <-time.After(5 * time.Second):
		log.Fatal("plugin never installed")
	}

	// Hostile bytecode is rejected by the verifier and ignored.
	if err := cli.SendBPFCC("evil", []byte{0xff, 1, 2, 3, 4, 5, 6, 7}); err != nil {
		log.Fatal(err)
	}
	select {
	case name := <-installed:
		log.Fatalf("unverified program %q installed!", name)
	case <-time.After(500 * time.Millisecond):
		fmt.Println("server: malformed plugin rejected by the verifier (as it should be)")
	}
	cli.Close()
}
