// Quickstart: the Figure 3 workflow end to end on an emulated network —
// create a session, connect with happy-eyeballs fallback, handshake,
// open a stream, ship a TCP option through the encrypted channel, and
// exchange data.
package main

import (
	"fmt"
	"io"
	"log"
	"net/netip"
	"time"

	tcpls "github.com/pluginized-protocols/gotcpls"
	"github.com/pluginized-protocols/gotcpls/simnet"
)

func main() {
	// A dual-stack topology: two hosts, one v4 link, one v6 link.
	n := simnet.NewNetwork()
	defer n.Close()
	client, server := n.Host("client"), n.Host("server")
	cV4, sV4 := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")
	cV6, sV6 := netip.MustParseAddr("fc00::1"), netip.MustParseAddr("fc00::2")
	n.AddLink(client, server, cV4, sV4, simnet.LinkConfig{Delay: 5 * time.Millisecond})
	n.AddLink(client, server, cV6, sV6, simnet.LinkConfig{Delay: 8 * time.Millisecond})
	cs := simnet.NewTCPStack(client, simnet.TCPConfig{})
	ss := simnet.NewTCPStack(server, simnet.TCPConfig{})
	defer cs.Close()
	defer ss.Close()

	// Server: a certificate, a TCPLS listener, an echo loop.
	cert, err := tcpls.GenerateSelfSigned("quickstart", nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	tl, err := ss.Listen(netip.Addr{}, 443)
	if err != nil {
		log.Fatal(err)
	}
	lst := tcpls.NewListener(tl, &tcpls.Config{
		TLS:   &tcpls.TLSConfig{Certificate: cert},
		Clock: n,
		Callbacks: tcpls.Callbacks{
			TCPOption: func(kind uint8, data []byte) {
				fmt.Printf("server: TCP option %d received over the encrypted channel\n", kind)
			},
		},
	})
	defer lst.Close()
	go func() {
		for {
			sess, err := lst.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					st, err := sess.AcceptStream()
					if err != nil {
						return
					}
					go func() {
						data, _ := io.ReadAll(st)
						back, err := sess.NewStream()
						if err != nil {
							return
						}
						fmt.Fprintf(back, "echo: %s", data)
						back.Close()
					}()
				}
			}()
		}
	}()

	// Client: tcpls_new -> tcpls_connect (happy eyeballs) ->
	// tcpls_handshake.
	cli := tcpls.NewClient(&tcpls.Config{
		TLS:   &tcpls.TLSConfig{InsecureSkipVerify: true},
		Clock: n,
	}, simnet.Dialer{Stack: cs})
	addr, err := cli.ConnectHappyEyeballs([]netip.AddrPort{
		netip.AddrPortFrom(sV4, 443),
		netip.AddrPortFrom(sV6, 443),
	}, 50*time.Millisecond, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	if err := cli.Handshake(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected to %s (session %08x, %d join cookies)\n",
		addr, cli.ConnID(), cli.CookiesLeft())

	// A TCP option through the secure channel (§3.1 of the paper).
	if err := cli.SendUserTimeout(30 * time.Second); err != nil {
		log.Fatal(err)
	}

	// tcpls_stream_new -> tcpls_send -> tcpls_receive.
	st, err := cli.NewStream()
	if err != nil {
		log.Fatal(err)
	}
	st.Write([]byte("hello over TCPLS"))
	st.Close()
	back, err := cli.AcceptStream()
	if err != nil {
		log.Fatal(err)
	}
	reply, _ := io.ReadAll(back)
	fmt.Printf("client: %s\n", reply)
	cli.Close()
}
