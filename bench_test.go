package tcpls_test

// Benchmark harness: one benchmark per table/figure of the paper plus
// the ablations called out in DESIGN.md. Benchmarks run scaled-down
// workloads on the emulated network and report *virtual-time* metrics
// (goodput in Mbps, latencies in virtual milliseconds) via
// b.ReportMetric, since wall-clock ns/op measures the emulator, not the
// protocol. EXPERIMENTS.md records representative outputs against the
// paper's claims.

import (
	"crypto/rand"
	"fmt"
	"io"
	"net/netip"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/cc"
	"github.com/pluginized-protocols/gotcpls/internal/core"
	"github.com/pluginized-protocols/gotcpls/internal/ebpfvm"
	"github.com/pluginized-protocols/gotcpls/internal/labs"
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/quicbase"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// benchCert is shared across benchmarks (ECDSA keygen is not the thing
// under test).
var benchCert *tls13.Certificate

func init() {
	var err error
	benchCert, err = tls13.GenerateSelfSigned("bench", nil, nil)
	if err != nil {
		panic(err)
	}
}

// download runs the canonical download workload and returns (bytes,
// virtual duration).
func download(b *testing.B, tb *labs.Testbed, cfg *core.Config, size int,
	during func(cli *core.Session, progressed <-chan int64)) (int64, time.Duration) {
	b.Helper()
	cli, srv, err := tb.ConnectClient(cfg)
	if err != nil {
		b.Fatal(err)
	}
	labs.ServeDownload(srv, size)
	req, _ := cli.NewStream()
	req.Write([]byte("GET"))
	req.Close()
	down, err := cli.AcceptStream()
	if err != nil {
		b.Fatal(err)
	}
	progress := make(chan int64, 64)
	if during != nil {
		go during(cli, progress)
	}
	start := time.Now()
	var total int64
	buf := make([]byte, 64<<10)
	for {
		n, err := down.Read(buf)
		total += int64(n)
		select {
		case progress <- total:
		default:
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatalf("download: %v", err)
		}
	}
	return total, tb.Net.VirtualSince(start)
}

func mbps(bytes int64, d time.Duration) float64 {
	return float64(bytes) * 8 / d.Seconds() / 1e6
}

// BenchmarkFigure4Migration reproduces Figure 4 at reduced size: a
// download over two 30 Mbps paths with an application-level migration
// at the midpoint. Metrics: goodput_mbps (whole transfer, should sit
// near the link rate) and the completion fact itself (a TLS/TCP
// baseline dies — see cmd/tcpls-migrate -baseline).
func BenchmarkFigure4Migration(b *testing.B) {
	const size = 6 << 20
	for i := 0; i < b.N; i++ {
		tb, err := labs.NewTestbed(labs.TestbedConfig{
			V4:        netsim.LinkConfig{BandwidthBps: 30e6, Delay: 10 * time.Millisecond},
			V6:        netsim.LinkConfig{BandwidthBps: 30e6, Delay: 15 * time.Millisecond},
			TimeScale: 0.25,
			Seed:      int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		total, el := download(b, tb, &core.Config{}, size, func(cli *core.Session, progress <-chan int64) {
			for p := range progress {
				if p >= size/2 {
					v4 := cli.PathIDs()[0]
					if _, err := cli.Connect(labs.ClientV6, netip.AddrPortFrom(labs.ServerV6, labs.Port), 5*time.Second); err == nil {
						cli.ClosePath(v4)
					}
					return
				}
			}
		})
		b.ReportMetric(mbps(total, el), "goodput_mbps")
		tb.Close()
	}
}

// BenchmarkA1RecordSizing compares fixed-size records against
// cwnd-matched records (§4.6: avoid fragmented records by matching the
// record to the congestion window).
func BenchmarkA1RecordSizing(b *testing.B) {
	const size = 4 << 20
	run := func(b *testing.B, cfg *core.Config, label string) {
		for i := 0; i < b.N; i++ {
			tb, err := labs.NewTestbed(labs.TestbedConfig{
				V4:        netsim.LinkConfig{BandwidthBps: 50e6, Delay: 5 * time.Millisecond},
				V6:        netsim.LinkConfig{Delay: 5 * time.Millisecond},
				TimeScale: 0.5,
				Seed:      int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			total, el := download(b, tb, cfg, size, nil)
			b.ReportMetric(mbps(total, el), "goodput_mbps")
			tb.Close()
		}
	}
	b.Run("fixed-1400", func(b *testing.B) { run(b, &core.Config{RecordSize: 1400}, "fixed") })
	b.Run("fixed-16k", func(b *testing.B) { run(b, &core.Config{RecordSize: 16000}, "fixed16k") })
	b.Run("cwnd-matched", func(b *testing.B) { run(b, &core.Config{}, "cwnd") })
}

// BenchmarkA2Failover measures the stall a forged mid-transfer RST
// causes under TCPLS failover, vs. restarting a TLS/TCP transfer from
// scratch (the only option without connection reliability).
func BenchmarkA2Failover(b *testing.B) {
	const size = 3 << 20
	for i := 0; i < b.N; i++ {
		tb, err := labs.NewTestbed(labs.TestbedConfig{
			V4:        netsim.LinkConfig{BandwidthBps: 50e6, Delay: 5 * time.Millisecond},
			V6:        netsim.LinkConfig{BandwidthBps: 50e6, Delay: 8 * time.Millisecond},
			TimeScale: 0.5,
			Seed:      int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		tb.LinkV4.Use(&netsim.RSTInjector{AfterSegments: 200, Once: true, BothDirections: true})
		cli, srv, err := tb.ConnectClient(&core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		labs.ServeDownload(srv, size)
		req, _ := cli.NewStream()
		req.Write([]byte("GET"))
		req.Close()
		down, err := cli.AcceptStream()
		if err != nil {
			b.Fatal(err)
		}
		var maxGap time.Duration
		last := time.Now()
		buf := make([]byte, 64<<10)
		var total int64
		for {
			n, err := down.Read(buf)
			if gap := time.Since(last); gap > maxGap {
				maxGap = gap
			}
			last = time.Now()
			total += int64(n)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatalf("failover transfer died: %v", err)
			}
		}
		if total != size {
			b.Fatalf("lost bytes: %d of %d", total, size)
		}
		virtGap := time.Duration(float64(maxGap) / 0.5)
		b.ReportMetric(float64(virtGap.Milliseconds()), "stall_ms")
		tb.Close()
	}
}

// BenchmarkA3Aggregation compares one path against two aggregated paths
// (§2.4): the aggregate goodput should approach the sum of the rates.
func BenchmarkA3Aggregation(b *testing.B) {
	const size = 4 << 20
	run := func(b *testing.B, twoPaths bool) {
		for i := 0; i < b.N; i++ {
			tb, err := labs.NewTestbed(labs.TestbedConfig{
				V4:        netsim.LinkConfig{BandwidthBps: 20e6, Delay: 5 * time.Millisecond},
				V6:        netsim.LinkConfig{BandwidthBps: 20e6, Delay: 8 * time.Millisecond},
				TimeScale: 0.5,
				Seed:      int64(i + 1),
				Server:    &core.Config{Multipath: true, Mode: core.ModeAggregate},
			})
			if err != nil {
				b.Fatal(err)
			}
			cfg := &core.Config{Multipath: true, Mode: core.ModeAggregate}
			cli, srv, err := tb.ConnectClient(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if twoPaths {
				if _, err := cli.Connect(labs.ClientV6, netip.AddrPortFrom(labs.ServerV6, labs.Port), 5*time.Second); err != nil {
					b.Fatal(err)
				}
			}
			labs.ServeDownload(srv, size)
			req, _ := cli.NewStream()
			req.Write([]byte("GET"))
			req.Close()
			down, err := cli.AcceptStream()
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			n, err := io.Copy(io.Discard, down)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(mbps(n, tb.Net.VirtualSince(start)), "goodput_mbps")
			tb.Close()
		}
	}
	b.Run("one-path-20mbps", func(b *testing.B) { run(b, false) })
	b.Run("two-paths-2x20mbps", func(b *testing.B) { run(b, true) })
}

// BenchmarkA4StreamTrialDecrypt measures the receiver-side cost of the
// per-stream crypto contexts (§2.3): the record's stream is found by
// trying AEAD tags, so cost grows with the candidate set.
func BenchmarkA4StreamTrialDecrypt(b *testing.B) {
	for _, nctx := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("contexts-%d", nctx), func(b *testing.B) {
			cp, sp := newBufferedPipe()
			client := tls13.Client(cp, &tls13.Config{InsecureSkipVerify: true})
			server := tls13.Server(sp, &tls13.Config{Certificate: benchCert})
			errCh := make(chan error, 1)
			go func() { errCh <- server.Handshake() }()
			if err := client.Handshake(); err != nil {
				b.Fatal(err)
			}
			if err := <-errCh; err != nil {
				b.Fatal(err)
			}
			for i := 1; i <= nctx; i++ {
				if err := client.AddStreamContext(uint32(i)); err != nil {
					b.Fatal(err)
				}
				if err := server.AddStreamContext(uint32(i)); err != nil {
					b.Fatal(err)
				}
			}
			payload := make([]byte, 1400)
			rand.Read(payload)
			// The worst case: the record belongs to the last-attached
			// stream, so every earlier context is tried first.
			worst := uint32(nctx)
			b.ResetTimer()
			b.SetBytes(int64(len(payload)))
			for i := 0; i < b.N; i++ {
				if err := client.WriteRecordContext(worst, payload); err != nil {
					b.Fatal(err)
				}
				id, _, err := server.ReadRecordContext()
				if err != nil || id != worst {
					b.Fatalf("ctx %d err %v", id, err)
				}
			}
		})
	}
}

// BenchmarkA5OptionSpace contrasts TCP's 40-byte option ceiling with the
// TCPLS secure channel: the largest User-Timeout-style option packable
// into a TCP header vs. a large option in one encrypted record.
func BenchmarkA5OptionSpace(b *testing.B) {
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	b.Run("tcp-header-40-bytes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The realistic full house: MSS + wscale + sackOK + timestamps
			// leaves 17 bytes for everything else, forever.
			seg := &wire.Segment{
				Options: []wire.Option{
					wire.MSSOption(1460),
					wire.WindowScaleOption(7),
					wire.SACKPermittedOption(),
					wire.TimestampsOption(1, 2),
				},
			}
			if _, err := seg.Marshal(src, dst); err != nil {
				b.Fatal(err)
			}
			// One more modest option cannot fit.
			seg.Options = append(seg.Options, wire.Option{Kind: 254, Data: make([]byte, 24)})
			if _, err := seg.Marshal(src, dst); err == nil {
				b.Fatal("40-byte ceiling did not bind")
			}
			b.ReportMetric(40, "option_space_bytes")
		}
	})
	b.Run("tcpls-record", func(b *testing.B) {
		cp, sp := newBufferedPipe()
		client := tls13.Client(cp, &tls13.Config{InsecureSkipVerify: true})
		server := tls13.Server(sp, &tls13.Config{Certificate: benchCert})
		go server.Handshake()
		if err := client.Handshake(); err != nil {
			b.Fatal(err)
		}
		big := make([]byte, 8<<10) // an 8 KB option: unthinkable in a TCP header
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := client.WriteRecordContext(tls13.DefaultContext, big); err != nil {
				b.Fatal(err)
			}
			if _, _, err := server.ReadRecordContext(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(big)), "option_space_bytes")
		}
	})
}

// BenchmarkA6HandshakeRTTs measures connection-establishment latency in
// virtual time on a 20 ms RTT path: TCPLS full handshake (TCP + TLS),
// TCPLS resumption, 0-RTT first-byte delivery, and the quicbase
// comparator (§4.2's "0-RTT TCPLS would catch up to QUIC").
func BenchmarkA6HandshakeRTTs(b *testing.B) {
	link := netsim.LinkConfig{Delay: 10 * time.Millisecond} // 20 ms RTT
	b.Run("tcpls-full-1rtt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tb, err := labs.NewTestbed(labs.TestbedConfig{V4: link, V6: link})
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			_, _, err = tb.ConnectClient(&core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(tb.Net.VirtualSince(start).Milliseconds()), "handshake_ms")
			tb.Close()
		}
	})
	b.Run("tls-resumption", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(handshakeLatency(b, link, false), "handshake_ms")
		}
	})
	b.Run("tls-0rtt-first-byte", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(handshakeLatency(b, link, true), "first_byte_ms")
		}
	})
	b.Run("quicbase-1rtt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := netsim.New()
			ch, sh := n.Host("c"), n.Host("s")
			n.AddLink(ch, sh, labs.ClientV4, labs.ServerV4, link)
			cliE := quicbase.NewEndpoint(ch, 4433, &tls13.Config{InsecureSkipVerify: true}, false)
			srvE := quicbase.NewEndpoint(sh, 4433, &tls13.Config{Certificate: benchCert}, true)
			go srvE.Accept()
			start := time.Now()
			if _, err := cliE.Dial(netip.AddrPortFrom(labs.ServerV4, 4433), 10*time.Second); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(n.VirtualSince(start).Milliseconds()), "handshake_ms")
			cliE.Close()
			srvE.Close()
			n.Close()
		}
	})
}

// handshakeLatency runs warm-ticket handshakes over tcpnet and returns
// virtual milliseconds until the handshake (or, with early data, until
// the server holds the first application byte).
func handshakeLatency(b *testing.B, link netsim.LinkConfig, earlyData bool) float64 {
	b.Helper()
	tb, err := labs.NewTestbed(labs.TestbedConfig{V4: link, V6: link})
	if err != nil {
		b.Fatal(err)
	}
	defer tb.Close()
	scfg := &tls13.Config{Certificate: tb.Cert, MaxEarlyData: 16384}
	l, err := tb.Server.Listen(netip.Addr{}, 9000)
	if err != nil {
		b.Fatal(err)
	}
	gotEarly := make(chan struct{}, 2)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				srv := tls13.Server(c, scfg)
				if srv.Handshake() == nil {
					if len(srv.EarlyData()) > 0 {
						gotEarly <- struct{}{}
					}
					srv.Write([]byte("ok"))
				}
			}()
		}
	}()
	var sess *tls13.ClientSession
	dial := func(cfg *tls13.Config) *tls13.Conn {
		c, err := tb.Client.Dial(netip.Addr{}, netip.AddrPortFrom(labs.ServerV4, 9000), 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		cl := tls13.Client(c, cfg)
		if err := cl.Handshake(); err != nil {
			b.Fatal(err)
		}
		return cl
	}
	cl := dial(&tls13.Config{InsecureSkipVerify: true, OnNewSession: func(s *tls13.ClientSession) { sess = s }})
	cl.Read(make([]byte, 4))
	if sess == nil {
		b.Fatal("no ticket")
	}
	cfg := &tls13.Config{InsecureSkipVerify: true, Session: sess}
	if earlyData {
		cfg.EarlyData = []byte("request")
	}
	start := time.Now()
	cl2 := dial(cfg)
	if earlyData {
		<-gotEarly
	}
	el := tb.Net.VirtualSince(start)
	_ = cl2
	return float64(el.Milliseconds())
}

// BenchmarkA7PluginCC compares the native controller against the same
// algorithm delivered as eBPF bytecode over the session (§3(iii)): the
// plugin must carry real transfers at comparable goodput.
func BenchmarkA7PluginCC(b *testing.B) {
	const size = 3 << 20
	run := func(b *testing.B, ship bool) {
		for i := 0; i < b.N; i++ {
			installed := make(chan struct{}, 1)
			tb, err := labs.NewTestbed(labs.TestbedConfig{
				V4:        netsim.LinkConfig{BandwidthBps: 40e6, Delay: 5 * time.Millisecond},
				V6:        netsim.LinkConfig{Delay: 5 * time.Millisecond},
				TimeScale: 0.5,
				Seed:      int64(i + 1),
				Server: &core.Config{Callbacks: core.Callbacks{
					CCInstalled: func(string) { installed <- struct{}{} },
				}},
			})
			if err != nil {
				b.Fatal(err)
			}
			cli, srv, err := tb.ConnectClient(&core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			if ship {
				prog := ebpfvm.MustAssemble(cc.AIMDProgram).Marshal()
				// The server upgrades the *client's* stack: §3(iii) is the
				// server shipping CC to clients; here the client ships to
				// the server which is the data sender.
				if err := cli.SendBPFCC("aimd", prog); err != nil {
					b.Fatal(err)
				}
				select {
				case <-installed:
				case <-time.After(5 * time.Second):
					b.Fatal("plugin not installed")
				}
			}
			labs.ServeDownload(srv, size)
			req, _ := cli.NewStream()
			req.Write([]byte("GET"))
			req.Close()
			down, err := cli.AcceptStream()
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			n, err := io.Copy(io.Discard, down)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(mbps(n, tb.Net.VirtualSince(start)), "goodput_mbps")
			tb.Close()
		}
	}
	b.Run("native-newreno", func(b *testing.B) { run(b, false) })
	b.Run("ebpf-aimd-shipped", func(b *testing.B) { run(b, true) })
}

// BenchmarkTable1 runs the whole feature matrix probe suite once per
// iteration (the cmd/tcpls-features binary is the human-readable form).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := labs.NewTestbed(labs.TestbedConfig{
			V4: netsim.LinkConfig{BandwidthBps: 50e6, Delay: time.Millisecond},
			V6: netsim.LinkConfig{BandwidthBps: 50e6, Delay: 2 * time.Millisecond},
		})
		if err != nil {
			b.Fatal(err)
		}
		cli, srv, err := tb.ConnectClient(&core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		st, _ := cli.NewStream()
		go func() { st.Write(make([]byte, 100<<10)); st.Close() }()
		sst, err := srv.AcceptStream()
		if err != nil {
			b.Fatal(err)
		}
		if n, err := io.Copy(io.Discard, sst); err != nil || n != 100<<10 {
			b.Fatalf("probe transfer: %d %v", n, err)
		}
		tb.Close()
	}
}
