// Command tcpls-trace renders the protocol artifacts of the paper's
// Figures 1 and 2:
//
//	tcpls-trace record   # Figure 1: a TCPLS record carrying a TCP option,
//	                     # its hidden true type, and the on-wire ciphertext
//	tcpls-trace join     # Figure 2: the message ladder attaching a second
//	                     # TCP connection to a TCPLS session
//	tcpls-trace packets  # raw segment trace of a handshake (tcpdump-like)
package main

import (
	"fmt"
	"net/netip"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/core"
	"github.com/pluginized-protocols/gotcpls/internal/labs"
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/record"
	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

func main() {
	cmd := "record"
	if len(os.Args) > 1 {
		cmd = os.Args[1]
	}
	switch cmd {
	case "record":
		showRecord()
	case "join":
		showJoin()
	case "packets":
		showPackets()
	default:
		fmt.Fprintf(os.Stderr, "usage: tcpls-trace [record|join|packets]\n")
		os.Exit(2)
	}
}

// showRecord renders Figure 1: the plaintext layout of a TCPLS record
// carrying a TCP User Timeout option, with the true type (TType) as the
// final byte — invisible once the record is encrypted.
func showRecord() {
	opt := record.UserTimeoutOption(30 * time.Second)
	plaintext := record.EncodeTCPOption(opt)

	fmt.Println("Figure 1 — a TCPLS record carrying a TCP User Timeout option")
	fmt.Println()
	fmt.Println("plaintext (before TLS record protection):")
	hexdump(plaintext)
	fmt.Println()
	fmt.Printf("  [0]     option kind   = %d (TCP User Timeout, RFC 5482)\n", plaintext[0])
	fmt.Printf("  [1:3]   option length = %d\n", int(plaintext[1])<<8|int(plaintext[2]))
	fmt.Printf("  [3:%d]   option payload (granularity bit + 30s)\n", len(plaintext)-1)
	fmt.Printf("  [%d]     TType         = %d (TCP_OPTION) — the hidden true type\n",
		len(plaintext)-1, plaintext[len(plaintext)-1])
	fmt.Println()
	fmt.Println("after protection the record is indistinguishable from application")
	fmt.Println("data: outer content type 23, inner content type 23; only the")
	fmt.Println("encrypted TType byte says what it really is (middleboxes and")
	fmt.Println("censors see nothing to match on).")
}

// showJoin runs a real session against the testbed with packet tracing
// and prints the Figure 2 ladder: ClientHello+TCPLS, ServerHello+TCPLS
// (α0..αn), then a second connection with JOIN(CONNID, COOKIE).
func showJoin() {
	var mu sync.Mutex
	var lines []string
	note := func(format string, a ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, a...))
		mu.Unlock()
	}

	tb, err := labs.NewTestbed(labs.TestbedConfig{
		V4: netsim.LinkConfig{Delay: 2 * time.Millisecond},
		V6: netsim.LinkConfig{Delay: 3 * time.Millisecond},
	})
	if err != nil {
		fatal(err)
	}
	defer tb.Close()

	note("client                                                server")
	note("  |                                                     |")
	note("  |==== TCP handshake (v4) ============================>|")
	note("  |-- ClientHello + TCPLS(version=%d) ------------------>|", record.Version)
	cli, _, err := tb.ConnectClient(&core.Config{})
	if err != nil {
		fatal(err)
	}
	note("  |<- ServerHello + EE{TCPLS: CONNID=%08x,          |", cli.ConnID())
	note("  |       cookies α0..α%d, addresses v4+v6} ------------|", cli.CookiesLeft()-1)
	note("  |   (all TCPLS contents encrypted with handshake key) |")
	note("  |-- Finished ----------------------------------------->|")
	note("  |                                                     |")
	cookiesBefore := cli.CookiesLeft()
	note("  |==== TCP handshake (v6) ============================>|")
	note("  |-- ClientHello + JOIN(CONNID=%08x,              |", cli.ConnID())
	note("  |       COOKIE=α0, binder=HMAC(session, α0)) -------->|")
	if _, err := cli.Connect(labs.ClientV6, netip.AddrPortFrom(labs.ServerV6, labs.Port), 5*time.Second); err != nil {
		fatal(err)
	}
	note("  |<- ServerHello + EE{CONNID echoed, fresh cookies} ---|")
	note("  |   cookie α0 spent (one-time): cookies %d -> %d        |", cookiesBefore, cli.CookiesLeft())
	note("  |                                                     |")
	note("  session now spans %d TCP connections", cli.NumConns())

	fmt.Println("Figure 2 — attaching a second TCP connection to a TCPLS session")
	fmt.Println()
	mu.Lock()
	fmt.Println(strings.Join(lines, "\n"))
	mu.Unlock()
}

// showPackets dumps the on-wire segments of a full TCPLS handshake plus
// one data record: every record rides ordinary TLS-looking TCP segments.
func showPackets() {
	var mu sync.Mutex
	count := 0
	tb, err := labs.NewTestbed(labs.TestbedConfig{
		V4: netsim.LinkConfig{Delay: 2 * time.Millisecond},
		V6: netsim.LinkConfig{Delay: 3 * time.Millisecond},
	})
	if err != nil {
		fatal(err)
	}
	defer tb.Close()
	// Rebuild the network with tracing is complex; instead trace via a
	// middlebox on the v4 link.
	tb.LinkV4.Use(netsim.MiddleboxFunc(func(p *wire.Packet, dir netsim.Direction) ([]*wire.Packet, []*wire.Packet) {
		if seg, err := wire.UnmarshalSegment(p.Payload, p.Src, p.Dst, false); err == nil {
			mu.Lock()
			count++
			fmt.Printf("%3d  %s > %s  %s\n", count, p.Src, p.Dst, seg)
			mu.Unlock()
		}
		return []*wire.Packet{p}, nil
	}))
	cli, srv, err := tb.ConnectClient(&core.Config{})
	if err != nil {
		fatal(err)
	}
	st, _ := cli.NewStream()
	st.Write([]byte("one TCPLS data record"))
	st.Close()
	if sst, err := srv.AcceptStream(); err == nil {
		buf := make([]byte, 64)
		sst.Read(buf)
	}
	time.Sleep(100 * time.Millisecond)
	cli.Close()
}

func hexdump(b []byte) {
	for i := 0; i < len(b); i += 16 {
		end := min(i+16, len(b))
		fmt.Printf("  %04x  ", i)
		for j := i; j < end; j++ {
			fmt.Printf("%02x ", b[j])
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcpls-trace:", err)
	os.Exit(1)
}
