// Command benchcheck records and compares Go benchmark runs.
//
// It reads `go test -bench` output on stdin and either appends the run
// to a JSON archive (-out) or compares it against the latest run in a
// checked-in baseline (-check), failing when the geometric-mean
// throughput regresses by more than -threshold (default 10%).
//
// The archive keeps the raw benchmark lines verbatim, so a baseline can
// be fed straight to benchstat:
//
//	jq -r '.runs[-1].raw[]' BENCH_2026-08-05.json > old.txt
//	go test -run '^$' -bench StreamThroughput -benchmem -count 3 . > new.txt
//	benchstat old.txt new.txt
//
// Both modes aggregate repeated -count runs of the same benchmark by
// best-of-N (max MB/s, min ns/op): machine noise is one-sided — a
// contended CPU only ever makes a run slower — so the best run is the
// most stable estimate of the code's true cost.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"time"
)

// benchLine matches one result line of `go test -bench -benchmem`:
// name, iteration count, ns/op, then optional MB/s, B/op, allocs/op.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) MB/s)?(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// Result is the aggregated outcome of one benchmark across -count runs.
type Result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Run is one invocation of the benchmark suite.
type Run struct {
	Label      string   `json:"label,omitempty"`
	Date       string   `json:"date"`
	Raw        []string `json:"raw"`
	Benchmarks []Result `json:"benchmarks"`
}

// Archive is the whole BENCH_<date>.json file.
type Archive struct {
	Runs []Run `json:"runs"`
}

func main() {
	out := flag.String("out", "", "append this run to the JSON archive at `path`")
	check := flag.String("check", "", "compare this run against the latest run in the archive at `path`")
	label := flag.String("label", "", "label recorded with the run (e.g. pre-PR5, post-PR5)")
	threshold := flag.Float64("threshold", 0.10, "maximum tolerated geomean throughput regression")
	flag.Parse()
	if (*out == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchcheck: exactly one of -out or -check is required")
		os.Exit(2)
	}

	run, err := parseRun(os.Stdin, *label)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	if len(run.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark results on stdin")
		os.Exit(2)
	}

	if *out != "" {
		if err := appendRun(*out, run); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d benchmark(s) to %s\n", len(run.Benchmarks), *out)
		return
	}

	base, err := latestRun(*check)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	if err := compare(base, run, *threshold); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
}

func parseRun(f *os.File, label string) (Run, error) {
	run := Run{Label: label, Date: time.Now().UTC().Format(time.RFC3339)}
	type acc struct {
		n                          int
		ns, mbps, bytesOp, allocs  float64
		hasMBps, hasBytes, hasAllc bool
	}
	byName := map[string]*acc{}
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		run.Raw = append(run.Raw, line)
		a := byName[m[1]]
		if a == nil {
			a = &acc{}
			byName[m[1]] = a
			order = append(order, m[1])
		}
		a.n++
		if ns := atof(m[3]); a.n == 1 || ns < a.ns {
			a.ns = ns
		}
		if m[4] != "" {
			if v := atof(m[4]); !a.hasMBps || v > a.mbps {
				a.mbps = v
			}
			a.hasMBps = true
		}
		if m[5] != "" {
			if v := atof(m[5]); !a.hasBytes || v < a.bytesOp {
				a.bytesOp = v
			}
			a.hasBytes = true
		}
		if m[6] != "" {
			if v := atof(m[6]); !a.hasAllc || v < a.allocs {
				a.allocs = v
			}
			a.hasAllc = true
		}
	}
	if err := sc.Err(); err != nil {
		return run, err
	}
	for _, name := range order {
		a := byName[name]
		r := Result{Name: name, Runs: a.n, NsPerOp: a.ns}
		if a.hasMBps {
			r.MBPerSec = a.mbps
		}
		if a.hasBytes {
			r.BytesPerOp = a.bytesOp
		}
		if a.hasAllc {
			r.AllocsPerOp = a.allocs
		}
		run.Benchmarks = append(run.Benchmarks, r)
	}
	return run, nil
}

func atof(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func appendRun(path string, run Run) error {
	var ar Archive
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &ar); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	ar.Runs = append(ar.Runs, run)
	b, err := json.MarshalIndent(&ar, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func latestRun(path string) (Run, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Run{}, err
	}
	var ar Archive
	if err := json.Unmarshal(b, &ar); err != nil {
		return Run{}, fmt.Errorf("%s: %v", path, err)
	}
	if len(ar.Runs) == 0 {
		return Run{}, fmt.Errorf("%s: no runs recorded", path)
	}
	return ar.Runs[len(ar.Runs)-1], nil
}

// compare fails when geomean throughput (MB/s when both runs report it,
// otherwise 1/ns-per-op) drops by more than threshold vs the baseline.
func compare(base, cur Run, threshold float64) error {
	baseBy := map[string]Result{}
	for _, r := range base.Benchmarks {
		baseBy[r.Name] = r
	}
	var names []string
	for _, r := range cur.Benchmarks {
		if _, ok := baseBy[r.Name]; ok {
			names = append(names, r.Name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no benchmarks in common with baseline (label %q, %s)", base.Label, base.Date)
	}
	curBy := map[string]Result{}
	for _, r := range cur.Benchmarks {
		curBy[r.Name] = r
	}
	logSum := 0.0
	fmt.Printf("baseline: label=%q date=%s\n", base.Label, base.Date)
	for _, name := range names {
		b, c := baseBy[name], curBy[name]
		var speedup float64 // >1 means faster than baseline
		if b.MBPerSec > 0 && c.MBPerSec > 0 {
			speedup = c.MBPerSec / b.MBPerSec
			fmt.Printf("  %-32s %8.1f -> %8.1f MB/s  (%+.1f%%)\n",
				name, b.MBPerSec, c.MBPerSec, (speedup-1)*100)
		} else {
			speedup = b.NsPerOp / c.NsPerOp
			fmt.Printf("  %-32s %8.0f -> %8.0f ns/op (%+.1f%%)\n",
				name, b.NsPerOp, c.NsPerOp, (speedup-1)*100)
		}
		logSum += math.Log(speedup)
	}
	geomean := math.Exp(logSum / float64(len(names)))
	fmt.Printf("geomean throughput vs baseline: %+.1f%% (threshold -%.0f%%)\n",
		(geomean-1)*100, threshold*100)
	if geomean < 1-threshold {
		return fmt.Errorf("throughput regressed %.1f%% geomean (limit %.0f%%)",
			(1-geomean)*100, threshold*100)
	}
	return nil
}
