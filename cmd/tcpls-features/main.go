// Command tcpls-features regenerates Table 1 of the TCPLS paper: the
// feature comparison between TCP, TLS/TCP, QUIC and TCPLS.
//
// Cells are the paper's, but every row marked "live" below is verified
// by actually running the scenario against this repository's
// implementations (userspace TCP, the TLS 1.3 stack, the QUIC-like
// comparator, and TCPLS itself) on the emulated network: lossy-link
// transfers for reliability, a payload-corrupting middlebox for
// authentication, forged RSTs for connection reliability, 0-RTT and
// resumption handshakes, dual-stack migration, streams, happy eyeballs,
// explicit multipath, eBPF pluginization and secure session closing.
package main

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"io"
	"net/netip"
	"os"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/cc"
	"github.com/pluginized-protocols/gotcpls/internal/core"
	"github.com/pluginized-protocols/gotcpls/internal/ebpfvm"
	"github.com/pluginized-protocols/gotcpls/internal/labs"
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/quicbase"
	"github.com/pluginized-protocols/gotcpls/internal/tcpnet"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

type row struct {
	name  string
	cells [4]string // TCP, TLS/TCP, QUIC, TCPLS — paper's Table 1
	probe func() error
	live  bool
}

func main() {
	rows := []row{
		{"Transport reliability", [4]string{"yes", "yes", "yes", "yes"}, probeTransportReliability, true},
		{"Message conf. and auth.", [4]string{"no", "yes", "yes", "yes"}, probeAuthentication, true},
		{"Connection reliability", [4]string{"no", "no", "yes", "(yes)"}, probeConnectionReliability, true},
		{"0-RTT", [4]string{"yes", "(no)", "yes", "yes"}, probeZeroRTT, true},
		{"Session Resumption", [4]string{"no", "yes", "yes", "yes"}, probeResumption, true},
		{"Connection Migration", [4]string{"no", "no", "yes", "yes"}, probeMigration, true},
		{"Streams", [4]string{"no", "no", "yes", "yes"}, probeStreams, true},
		{"Happy eyeballs", [4]string{"no", "no", "no", "yes"}, probeHappyEyeballs, true},
		{"Explicit Multipath", [4]string{"no", "no", "no", "yes"}, probeMultipath, true},
		{"App-level Con. migration", [4]string{"no", "no", "no", "yes"}, probeAppMigration, true},
		{"Pluginization", [4]string{"no", "no", "(yes)", "yes"}, probePluginization, true},
		{"Resilience to HOL blocking", [4]string{"no", "no", "yes", "(yes)"}, probeHOL, true},
		{"Secure Connection Closing", [4]string{"no", "no", "yes", "(yes)"}, probeSecureClose, true},
	}

	fmt.Println("Table 1: Protocol features comparison (cells as in the paper;")
	fmt.Println("(no) = available but not straightforward; (yes) = partial/under development)")
	fmt.Println()
	fmt.Printf("%-28s %-8s %-8s %-8s %-8s %s\n", "Feature", "TCP", "TLS/TCP", "QUIC", "TCPLS", "probe")
	fmt.Println(repeat('-', 76))
	failures := 0
	for _, r := range rows {
		status := "static (per spec)"
		if r.probe != nil {
			if err := r.probe(); err != nil {
				status = "PROBE FAILED: " + err.Error()
				failures++
			} else {
				status = "verified live"
			}
		}
		fmt.Printf("%-28s %-8s %-8s %-8s %-8s %s\n", r.name, r.cells[0], r.cells[1], r.cells[2], r.cells[3], status)
	}
	if failures > 0 {
		fmt.Printf("\n%d probe(s) failed\n", failures)
		os.Exit(1)
	}
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

// --- probes ---

// tb returns a fresh dual-stack testbed.
func tb(v4, v6 netsim.LinkConfig) (*labs.Testbed, error) {
	return labs.NewTestbed(labs.TestbedConfig{V4: v4, V6: v6, Seed: 7})
}

// probeTransportReliability: a transfer over a 2%-loss link arrives
// intact for the TCP substrate (everything else stacks on it).
func probeTransportReliability() error {
	t, err := tb(netsim.LinkConfig{BandwidthBps: 50e6, Delay: time.Millisecond, Loss: 0.02},
		netsim.LinkConfig{Delay: time.Millisecond})
	if err != nil {
		return err
	}
	defer t.Close()
	l, err := t.Server.Listen(netip.Addr{}, 9000)
	if err != nil {
		return err
	}
	data := make([]byte, 200<<10)
	rand.Read(data)
	errCh := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			errCh <- err
			return
		}
		got, err := io.ReadAll(c)
		if err == nil && !bytes.Equal(got, data) {
			err = fmt.Errorf("corrupted transfer")
		}
		errCh <- err
	}()
	c, err := t.Client.Dial(netip.Addr{}, netip.AddrPortFrom(labs.ServerV4, 9000), 5*time.Second)
	if err != nil {
		return err
	}
	c.Write(data)
	c.Close()
	return <-errCh
}

// probeAuthentication: a middlebox corrupts payloads while fixing TCP
// checksums. Plain TCP delivers garbage; TLS detects it.
func probeAuthentication() error {
	t, err := tb(netsim.LinkConfig{Delay: time.Millisecond}, netsim.LinkConfig{Delay: time.Millisecond})
	if err != nil {
		return err
	}
	defer t.Close()
	t.LinkV4.Use(&netsim.Mangler{EveryN: 3})
	l, err := t.Server.Listen(netip.Addr{}, 9001)
	if err != nil {
		return err
	}
	srvErr := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		srv := tls13.Server(c, &tls13.Config{Certificate: t.Cert})
		if err := srv.Handshake(); err != nil {
			srvErr <- nil // corruption during handshake also proves detection
			return
		}
		_, err = io.ReadAll(srv)
		if err == nil {
			srvErr <- fmt.Errorf("tampering went undetected")
			return
		}
		srvErr <- nil
	}()
	c, err := t.Client.Dial(netip.Addr{}, netip.AddrPortFrom(labs.ServerV4, 9001), 5*time.Second)
	if err != nil {
		return err
	}
	cl := tls13.Client(c, &tls13.Config{InsecureSkipVerify: true})
	if err := cl.Handshake(); err != nil {
		return <-srvErr
	}
	for i := 0; i < 32; i++ {
		if _, err := cl.Write(make([]byte, 1024)); err != nil {
			break
		}
	}
	cl.CloseWrite()
	return <-srvErr
}

// probeConnectionReliability: a middlebox forges a RST mid-transfer.
// Plain TLS/TCP dies; the TCPLS session reconnects and completes.
func probeConnectionReliability() error {
	t, err := tb(netsim.LinkConfig{BandwidthBps: 50e6, Delay: time.Millisecond},
		netsim.LinkConfig{BandwidthBps: 50e6, Delay: time.Millisecond})
	if err != nil {
		return err
	}
	defer t.Close()
	t.LinkV4.Use(&netsim.RSTInjector{AfterSegments: 30, Once: true, BothDirections: true})
	cli, srv, err := t.ConnectClient(&core.Config{})
	if err != nil {
		return err
	}
	data := make([]byte, 512<<10)
	rand.Read(data)
	st, _ := cli.NewStream()
	go func() {
		st.Write(data)
		st.Close()
	}()
	sst, err := srv.AcceptStream()
	if err != nil {
		return err
	}
	got, err := io.ReadAll(sst)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, data) {
		return fmt.Errorf("failover lost data")
	}
	return nil
}

// probeZeroRTT: PSK + early data arrives before the handshake ends.
func probeZeroRTT() error {
	t, err := tb(netsim.LinkConfig{Delay: 5 * time.Millisecond}, netsim.LinkConfig{Delay: time.Millisecond})
	if err != nil {
		return err
	}
	defer t.Close()
	serverCfg := &tls13.Config{Certificate: t.Cert, MaxEarlyData: 16384}
	l, err := t.Server.Listen(netip.Addr{}, 9002)
	if err != nil {
		return err
	}
	type hsres struct {
		early []byte
		err   error
	}
	results := make(chan hsres, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := l.Accept()
			if err != nil {
				results <- hsres{nil, err}
				return
			}
			go func() {
				srv := tls13.Server(c, serverCfg)
				if err := srv.Handshake(); err != nil {
					results <- hsres{nil, err}
					return
				}
				srv.Write([]byte("ok")) // unblock the client's ticket read
				results <- hsres{srv.EarlyData(), nil}
			}()
		}
	}()
	// First connection: get a ticket.
	var sess *tls13.ClientSession
	ccfg := &tls13.Config{InsecureSkipVerify: true, OnNewSession: func(s *tls13.ClientSession) { sess = s }}
	c, err := t.Client.Dial(netip.Addr{}, netip.AddrPortFrom(labs.ServerV4, 9002), 5*time.Second)
	if err != nil {
		return err
	}
	cl := tls13.Client(c, ccfg)
	if err := cl.Handshake(); err != nil {
		return err
	}
	if r := <-results; r.err != nil {
		return r.err
	}
	// Reading pulls the post-handshake ticket records along with the
	// server's byte.
	cl.Read(make([]byte, 4))
	deadline := time.Now().Add(2 * time.Second)
	for sess == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if sess == nil {
		return fmt.Errorf("no session ticket")
	}
	cl.Close()
	// Second connection: 0-RTT.
	c2, err := t.Client.Dial(netip.Addr{}, netip.AddrPortFrom(labs.ServerV4, 9002), 5*time.Second)
	if err != nil {
		return err
	}
	cl2 := tls13.Client(c2, &tls13.Config{
		InsecureSkipVerify: true, Session: sess, EarlyData: []byte("zero rtt!"),
	})
	if err := cl2.Handshake(); err != nil {
		return err
	}
	if !cl2.ConnectionState().EarlyDataAccepted {
		return fmt.Errorf("early data rejected")
	}
	r := <-results
	if r.err != nil {
		return r.err
	}
	if string(r.early) != "zero rtt!" {
		return fmt.Errorf("early data lost: %q", r.early)
	}
	return nil
}

// probeResumption: the second TCPLS handshake resumes via ticket.
func probeResumption() error {
	t, err := tb(netsim.LinkConfig{Delay: time.Millisecond}, netsim.LinkConfig{Delay: time.Millisecond})
	if err != nil {
		return err
	}
	defer t.Close()
	l, err := t.Server.Listen(netip.Addr{}, 9003)
	if err != nil {
		return err
	}
	scfg := &tls13.Config{Certificate: t.Cert}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				srv := tls13.Server(c, scfg)
				if srv.Handshake() == nil {
					srv.Write([]byte("ok"))
				}
			}()
		}
	}()
	var sess *tls13.ClientSession
	dial := func(s *tls13.ClientSession) (*tls13.Conn, error) {
		c, err := t.Client.Dial(netip.Addr{}, netip.AddrPortFrom(labs.ServerV4, 9003), 5*time.Second)
		if err != nil {
			return nil, err
		}
		cl := tls13.Client(c, &tls13.Config{
			InsecureSkipVerify: true, Session: s,
			OnNewSession: func(ns *tls13.ClientSession) { sess = ns },
		})
		return cl, cl.Handshake()
	}
	cl, err := dial(nil)
	if err != nil {
		return err
	}
	cl.Read(make([]byte, 4)) // pull the ticket
	if sess == nil {
		return fmt.Errorf("no ticket")
	}
	cl2, err := dial(sess)
	if err != nil {
		return err
	}
	if !cl2.ConnectionState().Resumed {
		return fmt.Errorf("not resumed")
	}
	return nil
}

// probeMigration: quicbase keeps a session across a client address
// change (CID-based migration).
func probeMigration() error {
	n := netsim.New()
	defer n.Close()
	ch, sh := n.Host("c"), n.Host("s")
	n.AddLink(ch, sh, labs.ClientV4, labs.ServerV4, netsim.LinkConfig{Delay: time.Millisecond})
	n.AddLink(ch, sh, labs.ClientV6, labs.ServerV6, netsim.LinkConfig{Delay: time.Millisecond})
	cert, _ := tls13.GenerateSelfSigned("probe", nil, nil)
	cli := quicbase.NewEndpoint(ch, 4433, &tls13.Config{InsecureSkipVerify: true}, false)
	srv := quicbase.NewEndpoint(sh, 4433, &tls13.Config{Certificate: cert}, true)
	defer cli.Close()
	defer srv.Close()
	type res struct {
		c   *quicbase.Conn
		err error
	}
	rc := make(chan res, 1)
	go func() {
		c, err := srv.Accept()
		rc <- res{c, err}
	}()
	qc, err := cli.Dial(netip.AddrPortFrom(labs.ServerV4, 4433), 5*time.Second)
	if err != nil {
		return err
	}
	r := <-rc
	if r.err != nil {
		return r.err
	}
	st, _ := qc.OpenStream()
	st.Write([]byte("a"))
	qc.SetRemote(netip.AddrPortFrom(labs.ServerV6, 4433))
	qc.Rebind()
	st.Write([]byte("b"))
	st.Close()
	sst, err := r.c.AcceptStream()
	if err != nil {
		return err
	}
	got, err := io.ReadAll(sst)
	if err != nil || string(got) != "ab" {
		return fmt.Errorf("migration broke the stream: %q %v", got, err)
	}
	if r.c.Migrations() == 0 {
		return fmt.Errorf("no migration observed")
	}
	return nil
}

// probeStreams: several TCPLS streams multiplex intact.
func probeStreams() error {
	t, err := tb(netsim.LinkConfig{BandwidthBps: 100e6, Delay: time.Millisecond}, netsim.LinkConfig{Delay: time.Millisecond})
	if err != nil {
		return err
	}
	defer t.Close()
	cli, srv, err := t.ConnectClient(&core.Config{})
	if err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		st, _ := cli.NewStream()
		go func(k int) {
			st.Write(bytes.Repeat([]byte{byte('a' + k)}, 10000))
			st.Close()
		}(i)
	}
	for i := 0; i < 3; i++ {
		sst, err := srv.AcceptStream()
		if err != nil {
			return err
		}
		got, err := io.ReadAll(sst)
		if err != nil || len(got) != 10000 {
			return fmt.Errorf("stream %d: %d bytes, %v", sst.ID(), len(got), err)
		}
	}
	return nil
}

// probeHappyEyeballs: broken v4, the staggered connect lands on v6.
func probeHappyEyeballs() error {
	t, err := tb(netsim.LinkConfig{Delay: time.Millisecond}, netsim.LinkConfig{Delay: time.Millisecond})
	if err != nil {
		return err
	}
	defer t.Close()
	t.LinkV4.SetDown(true)
	cfg := &core.Config{TLS: &tls13.Config{InsecureSkipVerify: true}, Clock: t.Net}
	cli := core.NewClient(cfg, tcpnet.Dialer{Stack: t.Client})
	go t.Listener.Accept()
	addr, err := cli.ConnectHappyEyeballs([]netip.AddrPort{
		netip.AddrPortFrom(labs.ServerV4, labs.Port),
		netip.AddrPortFrom(labs.ServerV6, labs.Port),
	}, 50*time.Millisecond, 3*time.Second)
	if err != nil {
		return err
	}
	if addr.Addr() != labs.ServerV6 {
		return fmt.Errorf("landed on %v", addr)
	}
	return cli.Handshake()
}

// probeMultipath: a JOINed second path carries data (aggregate mode).
func probeMultipath() error {
	t, err := tb(netsim.LinkConfig{BandwidthBps: 20e6, Delay: time.Millisecond},
		netsim.LinkConfig{BandwidthBps: 20e6, Delay: 2 * time.Millisecond})
	if err != nil {
		return err
	}
	defer t.Close()
	cli, srv, err := t.ConnectClient(&core.Config{Multipath: true, Mode: core.ModeAggregate})
	if err != nil {
		return err
	}
	if _, err := cli.Connect(labs.ClientV6, netip.AddrPortFrom(labs.ServerV6, labs.Port), 5*time.Second); err != nil {
		return err
	}
	if cli.NumConns() != 2 {
		return fmt.Errorf("conns = %d", cli.NumConns())
	}
	data := make([]byte, 512<<10)
	rand.Read(data)
	st, _ := cli.NewStream()
	go func() { st.Write(data); st.Close() }()
	sst, err := srv.AcceptStream()
	if err != nil {
		return err
	}
	got, err := io.ReadAll(sst)
	if err != nil || !bytes.Equal(got, data) {
		return fmt.Errorf("aggregate transfer corrupted")
	}
	return nil
}

// probeAppMigration: the Figure 4 sequence completes a download.
func probeAppMigration() error {
	t, err := tb(netsim.LinkConfig{BandwidthBps: 30e6, Delay: time.Millisecond},
		netsim.LinkConfig{BandwidthBps: 30e6, Delay: 2 * time.Millisecond})
	if err != nil {
		return err
	}
	defer t.Close()
	cli, srv, err := t.ConnectClient(&core.Config{})
	if err != nil {
		return err
	}
	labs.ServeDownload(srv, 1<<20)
	req, _ := cli.NewStream()
	req.Write([]byte("GET"))
	req.Close()
	down, err := cli.AcceptStream()
	if err != nil {
		return err
	}
	buf := make([]byte, 32<<10)
	total := 0
	for total < 256<<10 {
		n, err := down.Read(buf)
		if err != nil {
			return err
		}
		total += n
	}
	v4 := cli.PathIDs()[0]
	if _, err := cli.Connect(labs.ClientV6, netip.AddrPortFrom(labs.ServerV6, labs.Port), 5*time.Second); err != nil {
		return err
	}
	if err := cli.ClosePath(v4); err != nil {
		return err
	}
	rest, err := io.ReadAll(down)
	if err != nil {
		return err
	}
	if total+len(rest) != 1<<20 {
		return fmt.Errorf("lost bytes across migration: %d", total+len(rest))
	}
	return nil
}

// probePluginization: eBPF CC ships and installs.
func probePluginization() error {
	t, err := tb(netsim.LinkConfig{Delay: time.Millisecond}, netsim.LinkConfig{Delay: time.Millisecond})
	if err != nil {
		return err
	}
	defer t.Close()
	installed := make(chan string, 1)
	cfgSrv := &core.Config{Callbacks: core.Callbacks{CCInstalled: func(n string) { installed <- n }}}
	t2, err := labs.NewTestbed(labs.TestbedConfig{
		V4: netsim.LinkConfig{Delay: time.Millisecond}, V6: netsim.LinkConfig{Delay: time.Millisecond},
		Server: cfgSrv,
	})
	if err != nil {
		return err
	}
	defer t2.Close()
	cli, _, err := t2.ConnectClient(&core.Config{})
	if err != nil {
		return err
	}
	prog, err := assembleAIMD()
	if err != nil {
		return err
	}
	if err := cli.SendBPFCC("aimd", prog); err != nil {
		return err
	}
	select {
	case <-installed:
		return nil
	case <-time.After(3 * time.Second):
		return fmt.Errorf("plugin never installed")
	}
}

// probeHOL: two streams on two connections; a stall on one conn does
// not stall the other stream.
func probeHOL() error {
	t, err := tb(netsim.LinkConfig{BandwidthBps: 20e6, Delay: time.Millisecond},
		netsim.LinkConfig{BandwidthBps: 20e6, Delay: time.Millisecond})
	if err != nil {
		return err
	}
	defer t.Close()
	cli, srv, err := t.ConnectClient(&core.Config{Mode: core.ModeSinglePath})
	if err != nil {
		return err
	}
	v6, err := cli.Connect(labs.ClientV6, netip.AddrPortFrom(labs.ServerV6, labs.Port), 5*time.Second)
	if err != nil {
		return err
	}
	stA, _ := cli.NewStream() // rides v4 (primary)
	stB, _ := cli.NewStream()
	stB.Attach(v6)
	// Stall v4 after the setup: stream B must still deliver.
	go func() {
		stA.Write(make([]byte, 256<<10)) // will stall when v4 goes down
	}()
	time.Sleep(50 * time.Millisecond)
	t.LinkV4.SetDown(true)
	go func() {
		stB.Write([]byte("independent"))
		stB.Close()
	}()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			return fmt.Errorf("stream B blocked behind stream A's dead path")
		default:
		}
		var found *core.Stream
		for _, s := range srv.Streams() {
			if s.ID() == stB.ID() {
				found = s
			}
		}
		if found != nil {
			got, err := io.ReadAll(found)
			if err == nil && string(got) == "independent" {
				return nil
			}
			return fmt.Errorf("stream B: %q %v", got, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// probeSecureClose: a Close() is delivered as an authenticated record,
// and the peer sees an orderly termination.
func probeSecureClose() error {
	t, err := tb(netsim.LinkConfig{Delay: time.Millisecond}, netsim.LinkConfig{Delay: time.Millisecond})
	if err != nil {
		return err
	}
	defer t.Close()
	cli, srv, err := t.ConnectClient(&core.Config{})
	if err != nil {
		return err
	}
	cli.Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Closed() {
			if srv.Err() != nil {
				return fmt.Errorf("orderly close surfaced error %v", srv.Err())
			}
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("server never saw the close")
}

func assembleAIMD() ([]byte, error) {
	// Reuse the registered program's bytecode via the cc package.
	return aimdBytecode, nil
}

// aimdBytecode is the compiled AIMD eBPF controller.
var aimdBytecode = ebpfvm.MustAssemble(cc.AIMDProgram).Marshal()
