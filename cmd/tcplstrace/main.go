// Command tcplstrace works with TCPLS telemetry traces (the qlog-style
// JSONL emitted by internal/telemetry):
//
//	tcplstrace run      # execute the Fig. 4 netsim failover scenario
//	                    # and write its event trace as JSONL
//	tcplstrace pretty   # render a JSONL trace as aligned human-readable
//	                    # lines
//	tcplstrace goodput  # bin a JSONL trace into a goodput/cwnd timeline
//	                    # CSV — the data behind the paper's Figure 4 plot
//	tcplstrace qlog     # convert a JSONL trace into a qlog JSON document
//	                    # (one trace per endpoint) for qlog tooling
//
// A typical reproduction of Figure 4:
//
//	tcplstrace run -o fig4.jsonl
//	tcplstrace goodput -bin 20ms fig4.jsonl > fig4.csv
//	tcplstrace qlog -check fig4.jsonl > fig4.qlog.json
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/chaos"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "pretty":
		err = cmdPretty(os.Args[2:])
	case "goodput":
		err = cmdGoodput(os.Args[2:])
	case "qlog":
		err = cmdQlog(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcplstrace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  tcplstrace run [-seed N] [-bytes N] [-fail DUR] [-o FILE]
      run the Fig. 4 failover scenario in the emulator and write the
      trace as JSONL (default stdout); a summary goes to stderr
  tcplstrace pretty [FILE]
      render a JSONL trace (default stdin) as human-readable lines
  tcplstrace goodput [-bin DUR] [-recv EP] [-send EP] [FILE]
      bin a JSONL trace (default stdin) into CSV:
      t_ms,bytes,goodput_mbps,cwnd_bytes,markers
  tcplstrace qlog [-check] [-title STR] [-o FILE] [FILE]
      convert a JSONL trace (default stdin) into a qlog JSON document,
      one trace per endpoint; -check runs the schema validator on the
      output before writing it
`)
	os.Exit(2)
}

// parseArgs splits args into -flag value pairs and positional args.
// All flags take exactly one value.
func parseArgs(args []string, flags map[string]*string) ([]string, error) {
	var pos []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		if !strings.HasPrefix(a, "-") {
			pos = append(pos, a)
			continue
		}
		p, ok := flags[strings.TrimLeft(a, "-")]
		if !ok {
			return nil, fmt.Errorf("unknown flag %s", a)
		}
		if i+1 >= len(args) {
			return nil, fmt.Errorf("flag %s needs a value", a)
		}
		i++
		*p = args[i]
	}
	return pos, nil
}

func cmdRun(args []string) error {
	seed, bytesStr, failStr, out := "1", "4194304", "250ms", ""
	_, err := parseArgs(args, map[string]*string{
		"seed": &seed, "bytes": &bytesStr, "fail": &failStr, "o": &out,
	})
	if err != nil {
		return err
	}
	var seedN int64
	var bytesN int
	if _, err := fmt.Sscan(seed, &seedN); err != nil {
		return fmt.Errorf("bad -seed %q", seed)
	}
	if _, err := fmt.Sscan(bytesStr, &bytesN); err != nil {
		return fmt.Errorf("bad -bytes %q", bytesStr)
	}
	failAt, err := time.ParseDuration(failStr)
	if err != nil {
		return fmt.Errorf("bad -fail %q: %v", failStr, err)
	}

	res, err := chaos.RunFig4(seedN, bytesN, failAt)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := telemetry.WriteJSONL(w, res.Trace); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"fig4: %d events, %d bytes in %v virtual; degraded=%d joins=%d failed_closes=%d (replay: %s)\n",
		len(res.Trace), res.BytesTransferred, res.VirtualElapsed.Round(time.Millisecond),
		res.Degraded, res.Joins, res.ReadLoopFailovers, res.Replay())
	return nil
}

// traceLine is the JSONL schema as seen by offline tools; keeping the
// decode generic (Data as a map) means pretty survives event kinds this
// build of the tool doesn't know about.
type traceLine struct {
	Time   int64          `json:"time"`
	Name   string         `json:"name"`
	EP     string         `json:"ep"`
	Path   uint32         `json:"path"`
	Stream uint32         `json:"stream"`
	Data   map[string]any `json:"data"`
}

func cmdPretty(args []string) error {
	pos, err := parseArgs(args, map[string]*string{})
	if err != nil {
		return err
	}
	r, err := openInput(pos)
	if err != nil {
		return err
	}
	defer r.Close()

	dec := json.NewDecoder(r)
	w := os.Stdout
	for {
		var ln traceLine
		if err := dec.Decode(&ln); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if special, ok := prettySpecial(ln); ok {
			fmt.Fprintf(w, "%12.3fms %-7s %s\n", float64(ln.Time)/1e6, ln.EP, special)
			continue
		}
		fmt.Fprintf(w, "%12.3fms %-7s %-24s", float64(ln.Time)/1e6, ln.EP, ln.Name)
		if ln.Path != 0 {
			fmt.Fprintf(w, " path=%d", ln.Path)
		}
		if ln.Stream != 0 {
			fmt.Fprintf(w, " stream=%d", ln.Stream)
		}
		keys := make([]string, 0, len(ln.Data))
		for k := range ln.Data {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch v := ln.Data[k].(type) {
			case string:
				fmt.Fprintf(w, " %s=%q", k, v)
			case float64:
				fmt.Fprintf(w, " %s=%d", k, int64(v))
			default:
				fmt.Fprintf(w, " %s=%v", k, v)
			}
		}
		fmt.Fprintln(w)
	}
}

// prettySpecial gives the anomaly events — degradations, sheds,
// revalidations, stalls, admission flips — a dedicated rendering that
// reads as an incident line instead of a generic key=value dump.
func prettySpecial(ln traceLine) (string, bool) {
	num := func(k string) int64 {
		v, _ := ln.Data[k].(float64)
		return int64(v)
	}
	str := func(k string) string {
		v, _ := ln.Data[k].(string)
		return v
	}
	switch ln.Name {
	case "session:degraded":
		return fmt.Sprintf("** DEGRADED  caps=%#x cause=%q", num("capability"), str("cause")), true
	case "session:shed":
		return fmt.Sprintf("** SHED      conn=%08x class=%s", num("conn_id"), str("class")), true
	case "path:revalidate":
		return fmt.Sprintf("?? REVALIDATE path=%d probe=%d cause=%q", ln.Path, num("seq"), str("cause")), true
	case "stream:stalled":
		where := fmt.Sprintf("stream=%d", ln.Stream)
		if str("kind") == "zero-window" {
			where = fmt.Sprintf("path=%d", ln.Path)
		}
		return fmt.Sprintf("** STALL     %s kind=%s unacked=%d", where, str("kind"), num("unacked")), true
	case "server:admission":
		gate := "CLOSED"
		if num("open") == 1 {
			gate = "reopened"
		}
		return fmt.Sprintf("!! ADMISSION gate %s cause=%q", gate, str("cause")), true
	case "path:degraded":
		return fmt.Sprintf("** PATH DOWN path=%d unanswered_probes=%d", ln.Path, num("outstanding")), true
	}
	return "", false
}

// cmdQlog converts a JSONL trace into one qlog JSON document.
func cmdQlog(args []string) error {
	check := false
	rest := make([]string, 0, len(args))
	for _, a := range args {
		if a == "-check" || a == "--check" {
			check = true
			continue
		}
		rest = append(rest, a)
	}
	out, title := "", "tcpls trace"
	pos, err := parseArgs(rest, map[string]*string{"o": &out, "title": &title})
	if err != nil {
		return err
	}
	r, err := openInput(pos)
	if err != nil {
		return err
	}
	defer r.Close()
	events, err := telemetry.ParseJSONL(r)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := telemetry.WriteQlog(&buf, events, title); err != nil {
		return err
	}
	if check {
		traces, n, err := telemetry.ValidateQlog(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return fmt.Errorf("schema check failed: %w", err)
		}
		fmt.Fprintf(os.Stderr, "qlog: %d traces, %d events, schema ok\n", traces, n)
	}
	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	_, err = w.Write(buf.Bytes())
	return err
}

func cmdGoodput(args []string) error {
	binStr, recvEP, sendEP := "20ms", "server", "client"
	pos, err := parseArgs(args, map[string]*string{
		"bin": &binStr, "recv": &recvEP, "send": &sendEP,
	})
	if err != nil {
		return err
	}
	bin, err := time.ParseDuration(binStr)
	if err != nil {
		return fmt.Errorf("bad -bin %q: %v", binStr, err)
	}
	r, err := openInput(pos)
	if err != nil {
		return err
	}
	defer r.Close()
	events, err := telemetry.ParseJSONL(r)
	if err != nil {
		return err
	}
	tl := telemetry.Timeline(events, bin, recvEP, sendEP)
	w := os.Stdout
	fmt.Fprintln(w, "t_ms,bytes,goodput_mbps,cwnd_bytes,markers")
	for _, b := range tl {
		fmt.Fprintf(w, "%.1f,%d,%.3f,%d,%s\n",
			float64(b.Start)/1e6, b.Bytes, b.Goodput/1e6, b.CwndMax,
			strings.Join(b.Markers, ";"))
	}
	return nil
}

func openInput(pos []string) (io.ReadCloser, error) {
	if len(pos) == 0 || pos[0] == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(pos[0])
}
