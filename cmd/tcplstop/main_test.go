package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// snapshotJSON builds a registry, serializes it the way the debug
// endpoint does, and decodes it back — the exact shape tcplstop sees.
func snapshotJSON(t *testing.T) map[string]any {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.Gauge("sessions.live").Add(3)
	reg.Counter("sessions.opened").Add(40)
	reg.Counter("sessions.closed").Add(37)
	reg.Func("server.sessions_hwm", func() int64 { return 16 })
	reg.Func("server.paths", func() int64 { return 5 })
	reg.Func("server.streams", func() int64 { return 9 })
	reg.Func("server.admission_open", func() int64 { return 0 })
	reg.Func("server.admitted", func() int64 { return 38 })
	reg.Func("server.rejected_pre_tls", func() int64 { return 12 })
	h := reg.Histogram("sessions.handshake_ns.server")
	for _, v := range []int64{int64(2 * time.Millisecond), int64(3 * time.Millisecond), int64(40 * time.Millisecond)} {
		h.Observe(v)
	}
	reg.Histogram("sessions.ttfb_ns") // registered but empty: must be skipped
	reg.Func("session.7.bytes_sent", func() int64 { return 1 << 20 })
	reg.Func("session.7.bytes_rcvd", func() int64 { return 1 << 10 })
	reg.Func("session.7.conns", func() int64 { return 2 })
	reg.Func("session.9.bytes_sent", func() int64 { return 128 })
	reg.Func("session.9.conns", func() int64 { return 1 })

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestRenderSnapshot: the dashboard carries the gauges, the closed
// admission gate, populated histogram quantiles (empty ones skipped),
// and the live sessions ranked busiest-first.
func TestRenderSnapshot(t *testing.T) {
	var out bytes.Buffer
	renderSnapshot(&out, snapshotJSON(t), 8)
	got := out.String()

	for _, want := range []string{
		"live=3", "opened=40", "closed=37", "hwm=16",
		"paths=5", "streams=9",
		"gate=CLOSED", "admitted=38", "rejected_pre_tls=12",
		"sessions.handshake_ns.server",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "sessions.ttfb_ns") {
		t.Fatalf("empty histogram rendered:\n%s", got)
	}
	// Session 7 moved ~1 MiB, session 9 moved 128 B: 7 ranks first.
	i7 := strings.Index(got, "\n7 ")
	i9 := strings.Index(got, "\n9 ")
	if i7 < 0 || i9 < 0 || i7 > i9 {
		t.Fatalf("sessions not ranked busiest-first (7 at %d, 9 at %d):\n%s", i7, i9, got)
	}
}

// TestRenderSnapshotTopK: the session table is truncated to -top.
func TestRenderSnapshotTopK(t *testing.T) {
	var out bytes.Buffer
	renderSnapshot(&out, snapshotJSON(t), 1)
	got := out.String()
	if !strings.Contains(got, "\n7 ") {
		t.Fatalf("busiest session missing from top-1 view:\n%s", got)
	}
	if strings.Contains(got, "\n9 ") {
		t.Fatalf("top-1 view still lists session 9:\n%s", got)
	}
}

// TestRenderSnapshotNoSessions: a drained server renders a quiet
// footer, not an empty table.
func TestRenderSnapshotNoSessions(t *testing.T) {
	var out bytes.Buffer
	renderSnapshot(&out, map[string]any{"server.admission_open": float64(1)}, 8)
	got := out.String()
	if !strings.Contains(got, "gate=OPEN") || !strings.Contains(got, "no live sessions") {
		t.Fatalf("drained render wrong:\n%s", got)
	}
}

// TestFetchHTTP: fetch decodes the debug endpoint's JSON over HTTP and
// surfaces non-200s as errors.
func TestFetchHTTP(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge("sessions.live").Add(1)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	snap, err := fetch(srv.URL, "")
	if err != nil {
		t.Fatal(err)
	}
	if num(snap, "sessions.live") != 1 {
		t.Fatalf("fetched snapshot wrong: %v", snap)
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer bad.Close()
	if _, err := fetch(bad.URL, ""); err == nil {
		t.Fatal("non-200 fetch did not error")
	}
}
