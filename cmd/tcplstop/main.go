// Command tcplstop is a live terminal view of a running TCPLS server's
// metrics registry — top(1) for TCPLS sessions. It polls the JSON
// snapshot the telemetry debug server exposes at /debug/metrics and
// redraws a compact dashboard: liveness gauges, the admission gate,
// latency histogram quantiles, and the busiest live sessions by bytes
// moved.
//
//	tcplstop -url http://localhost:6060/debug/metrics
//	tcplstop -file snapshot.json -n 1      # one-shot, offline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	url := flag.String("url", "http://localhost:6060/debug/metrics", "metrics JSON endpoint to poll")
	file := flag.String("file", "", "read the snapshot from a JSON file instead of polling")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	iterations := flag.Int("n", 0, "number of refreshes (0 = until interrupted)")
	topK := flag.Int("top", 8, "live sessions to list, busiest first")
	flag.Parse()

	for i := 0; *iterations == 0 || i < *iterations; i++ {
		snap, err := fetch(*url, *file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcplstop: %v\n", err)
			os.Exit(1)
		}
		loop := *iterations != 1
		if loop {
			fmt.Print("\x1b[2J\x1b[H") // clear and home between redraws
		}
		renderSnapshot(os.Stdout, snap, *topK)
		if *iterations == 0 || i < *iterations-1 {
			time.Sleep(*interval)
		}
	}
}

// fetch loads one registry snapshot, from the debug endpoint or a file.
func fetch(url, file string) (map[string]any, error) {
	var r io.ReadCloser
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		r = f
	} else {
		resp, err := http.Get(url)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("%s: %s", url, resp.Status)
		}
		r = resp.Body
	}
	defer r.Close()
	var snap map[string]any
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding snapshot: %w", err)
	}
	return snap, nil
}

// num reads a scalar metric; absent or non-numeric reads as 0.
func num(snap map[string]any, name string) int64 {
	v, _ := snap[name].(float64)
	return int64(v)
}

// hist reads a histogram metric (the JSON object WriteJSON emits).
func hist(snap map[string]any, name string) (map[string]any, bool) {
	h, ok := snap[name].(map[string]any)
	return h, ok
}

// renderSnapshot draws one dashboard frame. Pure function of the
// snapshot so it is testable without a server.
func renderSnapshot(w io.Writer, snap map[string]any, topK int) {
	gate := "OPEN"
	if num(snap, "server.admission_open") == 0 {
		gate = "CLOSED"
	}
	fmt.Fprintf(w, "tcplstop  %s\n\n", time.Now().Format("15:04:05"))
	fmt.Fprintf(w, "sessions  live=%d opened=%d closed=%d hwm=%d\n",
		num(snap, "sessions.live"), num(snap, "sessions.opened"),
		num(snap, "sessions.closed"), num(snap, "server.sessions_hwm"))
	fmt.Fprintf(w, "server    paths=%d streams=%d handshakes=%d goroutines=%d bufpool=%s\n",
		num(snap, "server.paths"), num(snap, "server.streams"),
		num(snap, "server.handshakes_inflight"), num(snap, "server.goroutines"),
		fmtBytes(num(snap, "server.bufpool_in_use_bytes")))
	fmt.Fprintf(w, "admission gate=%s admitted=%d rejected_pre_tls=%d shed_idle=%d shed_degraded=%d\n\n",
		gate, num(snap, "server.admitted"), num(snap, "server.rejected_pre_tls"),
		num(snap, "server.shed_idle"), num(snap, "server.shed_degraded"))

	// Latency histograms: anything the snapshot serialized as an object
	// with quantiles (histograms are the only object-valued vars).
	var histNames []string
	for name, v := range snap {
		if h, ok := v.(map[string]any); ok {
			if _, ok := h["count"]; ok {
				histNames = append(histNames, name)
			}
		}
	}
	if len(histNames) > 0 {
		sort.Strings(histNames)
		fmt.Fprintf(w, "%-34s %10s %10s %10s %10s %10s\n",
			"latency", "count", "p50", "p90", "p99", "max")
		for _, name := range histNames {
			h, _ := hist(snap, name)
			cnt := int64(h["count"].(float64))
			if cnt == 0 {
				continue
			}
			fmt.Fprintf(w, "%-34s %10d %10s %10s %10s %10s\n", name, cnt,
				fmtNs(h["p50"]), fmtNs(h["p90"]), fmtNs(h["p99"]), fmtNs(h["max"]))
		}
		fmt.Fprintln(w)
	}

	// Busiest live sessions: session.<n>.* vars exist only while the
	// session is open, so ranking them by bytes moved is a live top-K.
	type sess struct {
		id    string
		bytes int64
	}
	totals := make(map[string]*sess)
	for name := range snap {
		if !strings.HasPrefix(name, "session.") {
			continue
		}
		parts := strings.SplitN(name, ".", 3)
		if len(parts) != 3 {
			continue
		}
		s := totals[parts[1]]
		if s == nil {
			s = &sess{id: parts[1]}
			totals[parts[1]] = s
		}
		if parts[2] == "bytes_sent" || parts[2] == "bytes_rcvd" {
			s.bytes += num(snap, name)
		}
	}
	if len(totals) == 0 {
		fmt.Fprintln(w, "no live sessions")
		return
	}
	ranked := make([]*sess, 0, len(totals))
	for _, s := range totals {
		ranked = append(ranked, s)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].bytes != ranked[j].bytes {
			return ranked[i].bytes > ranked[j].bytes
		}
		return ranked[i].id < ranked[j].id
	})
	if topK > 0 && len(ranked) > topK {
		ranked = ranked[:topK]
	}
	fmt.Fprintf(w, "%-10s %10s %10s %8s %8s %10s %10s\n",
		"session", "bytes", "conns", "streams", "replays", "failovers", "stalls")
	for _, s := range ranked {
		p := "session." + s.id + "."
		fmt.Fprintf(w, "%-10s %10s %10d %8d %8d %10d %10d\n",
			s.id, fmtBytes(s.bytes), num(snap, p+"conns"), num(snap, p+"streams"),
			num(snap, p+"replays"), num(snap, p+"failovers"), num(snap, p+"stalls"))
	}
}

// fmtNs renders a nanosecond quantile human-readably.
func fmtNs(v any) string {
	f, ok := v.(float64)
	if !ok {
		return "-"
	}
	return time.Duration(int64(f)).Round(time.Microsecond).String()
}

// fmtBytes renders a byte count human-readably.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
