// Command tcpls-migrate reproduces Figure 4 of the TCPLS paper:
// application-level connection migration during a file download.
//
// Topology (as in the paper's IPMininet setup): a dual-stack client and
// server joined by an IPv4-only path and an IPv6-only path, both at
// 30 Mbps, with the lower delay on the v4 link. The client downloads a
// 60 MB file over v4 and, at the midpoint, performs the 5-call
// migration sequence of §3.2 — JOIN over v6, new stream, attach, close
// the v4 connection — while the server keeps looping over tcpls_send.
//
// Output: one line per 250 ms of virtual time with the instantaneous
// goodput, suitable for plotting against the paper's figure. The shape
// to expect: goodput near the link rate before and after the handover,
// with only a brief dip at the migration point.
//
// Usage:
//
//	tcpls-migrate [-size 60] [-bw 30] [-scale 0.25] [-baseline]
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/core"
	"github.com/pluginized-protocols/gotcpls/internal/labs"
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

func main() {
	sizeMB := flag.Int("size", 60, "download size in MB")
	bwMbps := flag.Float64("bw", 30, "link bandwidth in Mbps")
	scale := flag.Float64("scale", 0.25, "time scale (0.25 = 4x faster than real time)")
	interval := flag.Duration("interval", 250*time.Millisecond, "sampling interval (virtual)")
	baseline := flag.Bool("baseline", false, "run the TLS/TCP baseline instead: no migration support, the v4 close kills the transfer")
	flag.Parse()

	size := *sizeMB << 20
	queue := int(*bwMbps * 1e6 / 8 * 0.08) // ~80 ms of buffering, a common edge-router default
	tb, err := labs.NewTestbed(labs.TestbedConfig{
		V4:        netsim.LinkConfig{BandwidthBps: *bwMbps * 1e6, Delay: 10 * time.Millisecond, Name: "v4", QueueBytes: queue},
		V6:        netsim.LinkConfig{BandwidthBps: *bwMbps * 1e6, Delay: 15 * time.Millisecond, Name: "v6", QueueBytes: queue},
		TimeScale: *scale,
		Seed:      1,
	})
	if err != nil {
		fatal(err)
	}
	defer tb.Close()

	mode := "tcpls"
	if *baseline {
		mode = "tls-tcp-baseline"
	}
	fmt.Printf("# tcpls-migrate: %d MB download, %.0f Mbps links, migrate at %d MB (%s)\n",
		*sizeMB, *bwMbps, *sizeMB/2, mode)
	fmt.Printf("# %10s %12s %10s %6s  %s\n", "time", "goodput", "total", "conns", "event")

	if *baseline {
		runBaseline(tb, size, *interval)
		return
	}

	cli, srv, err := tb.ConnectClient(&core.Config{})
	if err != nil {
		fatal(err)
	}
	labs.ServeDownload(srv, size)

	req, err := cli.NewStream()
	if err != nil {
		fatal(err)
	}
	req.Write([]byte("GET /60mb"))
	req.Close()
	down, err := cli.AcceptStream()
	if err != nil {
		fatal(err)
	}

	migrated := false
	half := int64(size / 2)
	total, err := labs.SampleGoodput(tb.Net, down, *interval, func(s labs.GoodputSample) {
		event := ""
		if !migrated && s.Total >= half {
			migrated = true
			event = "MIGRATION: join v6, attach stream, close v4 (§3.2)"
			go func() {
				v4 := cli.PathIDs()[0]
				if _, err := cli.Connect(labs.ClientV6, netip.AddrPortFrom(labs.ServerV6, labs.Port), 5*time.Second); err != nil {
					fmt.Fprintf(os.Stderr, "join v6: %v\n", err)
					return
				}
				cli.ClosePath(v4)
			}()
		}
		fmt.Printf("  %10s %9.2f Mb %8.1f MB %6d  %s\n",
			s.Time.Truncate(time.Millisecond), s.Mbps, float64(s.Total)/(1<<20), s.NumConn, event)
	}, cli)

	if err != nil {
		fmt.Printf("# transfer FAILED after %.1f MB: %v\n", float64(total)/(1<<20), err)
		if *baseline {
			fmt.Println("# (expected: TLS/TCP cannot survive losing its TCP connection)")
		}
		os.Exit(0)
	}
	fmt.Printf("# transfer complete: %.1f MB\n", float64(total)/(1<<20))
}

// runBaseline downloads over plain TLS/TCP; at the midpoint the "v4
// interface disappears" (the only TCP connection is aborted). With no
// session layer above TCP, the transfer simply dies.
func runBaseline(tb *labs.Testbed, size int, interval time.Duration) {
	l, err := tb.Server.Listen(netip.Addr{}, 9000)
	if err != nil {
		fatal(err)
	}
	go func() {
		c, err := l.AcceptTCP()
		if err != nil {
			return
		}
		srv := tls13.Server(c, &tls13.Config{Certificate: tb.Cert})
		if srv.Handshake() != nil {
			return
		}
		buf := make([]byte, 64<<10)
		for sent := 0; sent < size; sent += len(buf) {
			if _, err := srv.Write(buf); err != nil {
				return
			}
		}
		srv.CloseWrite()
	}()
	tcp, err := tb.Client.Dial(netip.Addr{}, netip.AddrPortFrom(labs.ServerV4, 9000), 10*time.Second)
	if err != nil {
		fatal(err)
	}
	cl := tls13.Client(tcp, &tls13.Config{InsecureSkipVerify: true})
	if err := cl.Handshake(); err != nil {
		fatal(err)
	}
	half := int64(size / 2)
	dropped := false
	total, err := labs.SampleGoodput(tb.Net, cl, interval, func(s labs.GoodputSample) {
		event := ""
		if !dropped && s.Total >= half {
			dropped = true
			event = "v4 interface lost — TLS/TCP has no second connection to move to"
			go tcp.Abort()
		}
		fmt.Printf("  %10s %9.2f Mb %8.1f MB %6d  %s\n",
			s.Time.Truncate(time.Millisecond), s.Mbps, float64(s.Total)/(1<<20), 1, event)
	}, nil)
	if err != nil {
		fmt.Printf("# transfer FAILED after %.1f MB: %v\n", float64(total)/(1<<20), err)
		fmt.Println("# (expected: TLS/TCP cannot survive losing its TCP connection —")
		fmt.Println("#  the same event TCPLS migrates across)")
		return
	}
	fmt.Printf("# transfer complete: %.1f MB\n", float64(total)/(1<<20))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcpls-migrate:", err)
	os.Exit(1)
}
