// Command tcpls-failover runs ablation A2: a middlebox forges a TCP
// reset mid-transfer (the §2.1 scenario) and we measure how long the
// application-visible stall lasts for
//
//   - TCPLS: the session JOINs a fresh TCP connection and replays the
//     unacknowledged records — the transfer completes;
//   - TLS/TCP baseline: the connection dies; the "recovery" is a fresh
//     handshake plus restarting the transfer from the beginning.
//
// Usage: tcpls-failover [-size 8] [-bw 50] [-at 100]
package main

import (
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/core"
	"github.com/pluginized-protocols/gotcpls/internal/labs"
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

func main() {
	sizeMB := flag.Int("size", 8, "transfer size in MB")
	bw := flag.Float64("bw", 50, "link bandwidth in Mbps")
	at := flag.Int("at", 100, "inject the reset after this many data segments")
	flag.Parse()
	size := *sizeMB << 20

	fmt.Printf("# failover ablation: %d MB transfer, spurious RST after %d segments\n\n", *sizeMB, *at)

	// --- TCPLS with automatic failover ---
	tb, err := labs.NewTestbed(labs.TestbedConfig{
		V4:   netsim.LinkConfig{BandwidthBps: *bw * 1e6, Delay: 5 * time.Millisecond},
		V6:   netsim.LinkConfig{BandwidthBps: *bw * 1e6, Delay: 8 * time.Millisecond},
		Seed: 3,
	})
	if err != nil {
		fatal(err)
	}
	tb.LinkV4.Use(&netsim.RSTInjector{AfterSegments: *at, Once: true, BothDirections: true})
	cli, srv, err := tb.ConnectClient(&core.Config{})
	if err != nil {
		fatal(err)
	}
	labs.ServeDownload(srv, size)
	req, _ := cli.NewStream()
	req.Write([]byte("GET"))
	req.Close()
	down, err := cli.AcceptStream()
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	var maxGap time.Duration
	lastRead := time.Now()
	total := 0
	buf := make([]byte, 64<<10)
	for {
		n, err := down.Read(buf)
		if gap := time.Since(lastRead); gap > maxGap {
			maxGap = gap
		}
		lastRead = time.Now()
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(fmt.Errorf("tcpls transfer failed: %w", err))
		}
	}
	el := tb.Net.VirtualSince(start)
	fmt.Printf("TCPLS:    transfer COMPLETED: %.1f MB in %.2fs, longest stall %s (failover via JOIN + replay)\n",
		float64(total)/(1<<20), el.Seconds(), maxGap.Truncate(time.Millisecond))
	tb.Close()

	// --- TLS/TCP baseline: the RST kills the connection ---
	tb2, err := labs.NewTestbed(labs.TestbedConfig{
		V4:   netsim.LinkConfig{BandwidthBps: *bw * 1e6, Delay: 5 * time.Millisecond},
		V6:   netsim.LinkConfig{BandwidthBps: *bw * 1e6, Delay: 8 * time.Millisecond},
		Seed: 3,
	})
	if err != nil {
		fatal(err)
	}
	defer tb2.Close()
	tb2.LinkV4.Use(&netsim.RSTInjector{AfterSegments: *at, Once: true, BothDirections: true})
	l, err := tb2.Server.Listen(netip.Addr{}, 9000)
	if err != nil {
		fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				srvTLS := tls13.Server(c, &tls13.Config{Certificate: tb2.Cert})
				if srvTLS.Handshake() != nil {
					return
				}
				buf := make([]byte, 64<<10)
				for sent := 0; sent < size; sent += len(buf) {
					if _, err := srvTLS.Write(buf); err != nil {
						return
					}
				}
				srvTLS.CloseWrite()
			}()
		}
	}()
	start2 := time.Now()
	received := 0
	c, err := tb2.Client.Dial(netip.Addr{}, netip.AddrPortFrom(labs.ServerV4, 9000), 5*time.Second)
	if err != nil {
		fatal(err)
	}
	cl := tls13.Client(c, &tls13.Config{InsecureSkipVerify: true})
	if err := cl.Handshake(); err != nil {
		fatal(err)
	}
	for {
		n, err := cl.Read(buf)
		received += n
		if err != nil {
			break
		}
	}
	fmt.Printf("TLS/TCP:  transfer DIED after %.1f of %d MB (%.2fs): the application must\n",
		float64(received)/(1<<20), *sizeMB, tb2.Net.VirtualSince(start2).Seconds())
	fmt.Printf("          reconnect and restart from zero — all progress lost\n")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcpls-failover:", err)
	os.Exit(1)
}
