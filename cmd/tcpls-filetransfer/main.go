// Command tcpls-filetransfer is a small file-transfer tool over TCPLS on
// real TCP sockets (loopback or LAN) — the "downstream user" face of the
// library: a server that serves one file, and a client that fetches it,
// optionally migrating between two server addresses mid-download.
//
//	tcpls-filetransfer -serve file.bin -listen 127.0.0.1:4443
//	tcpls-filetransfer -get 127.0.0.1:4443 -out copy.bin
//	tcpls-filetransfer -get 127.0.0.1:4443 -migrate "[::1]:4443" -out copy.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/netip"
	"os"
	"time"

	tcpls "github.com/pluginized-protocols/gotcpls"
)

func main() {
	serve := flag.String("serve", "", "file to serve (server mode)")
	listen := flag.String("listen", "127.0.0.1:4443", "listen address (server mode)")
	get := flag.String("get", "", "server address to fetch from (client mode)")
	migrate := flag.String("migrate", "", "second server address to migrate to mid-download")
	out := flag.String("out", "", "output file (client mode; default stdout)")
	flag.Parse()

	switch {
	case *serve != "":
		runServer(*serve, *listen, *migrate)
	case *get != "":
		runClient(*get, *migrate, *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runServer(path, listen, second string) {
	cert, err := tcpls.GenerateSelfSigned("tcpls-filetransfer", nil,
		[]net.IP{net.ParseIP("127.0.0.1"), net.ParseIP("::1")})
	if err != nil {
		fatal(err)
	}
	inner, err := net.Listen("tcp", listen)
	if err != nil {
		fatal(err)
	}
	cfg := &tcpls.Config{TLS: &tcpls.TLSConfig{Certificate: cert}}
	if second != "" {
		if ap, err := netip.ParseAddrPort(second); err == nil {
			cfg.AdvertiseAddresses = append(cfg.AdvertiseAddresses, ap)
			if inner2, err := net.Listen("tcp", second); err == nil {
				go serveLoop(tcpls.NewListener(inner2, cfg), path)
			}
		}
	}
	fmt.Printf("serving %s on %s (TCPLS)\n", path, listen)
	serveLoop(tcpls.NewListener(inner, cfg), path)
}

func serveLoop(lst *tcpls.Listener, path string) {
	for {
		sess, err := lst.Accept()
		if err != nil {
			return
		}
		go func() {
			defer sess.Close()
			req, err := sess.AcceptStream()
			if err != nil {
				return
			}
			io.Copy(io.Discard, req)
			f, err := os.Open(path)
			if err != nil {
				return
			}
			defer f.Close()
			st, err := sess.NewStream()
			if err != nil {
				return
			}
			n, _ := io.Copy(st, f)
			st.Close()
			fmt.Printf("served %d bytes to session %08x\n", n, sess.ConnID())
		}()
	}
}

func runClient(addr, migrateTo, out string) {
	raddr, err := netip.ParseAddrPort(addr)
	if err != nil {
		fatal(err)
	}
	cli := tcpls.NewClient(&tcpls.Config{
		TLS: &tcpls.TLSConfig{InsecureSkipVerify: true},
	}, tcpls.NetDialer{})
	if _, err := cli.Connect(netip.Addr{}, raddr, 10*time.Second); err != nil {
		fatal(err)
	}
	if err := cli.Handshake(); err != nil {
		fatal(err)
	}
	defer cli.Close()

	req, err := cli.NewStream()
	if err != nil {
		fatal(err)
	}
	req.Write([]byte("GET"))
	req.Close()
	down, err := cli.AcceptStream()
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	start := time.Now()
	var total int64
	buf := make([]byte, 64<<10)
	migrated := migrateTo == ""
	for {
		n, err := down.Read(buf)
		w.Write(buf[:n])
		total += int64(n)
		if !migrated && total > 1<<20 {
			migrated = true
			ap, perr := netip.ParseAddrPort(migrateTo)
			if perr == nil {
				v4 := cli.PathIDs()[0]
				if _, jerr := cli.Connect(netip.Addr{}, ap, 10*time.Second); jerr == nil {
					cli.ClosePath(v4)
					fmt.Fprintf(os.Stderr, "migrated to %s mid-download\n", ap)
				} else {
					fmt.Fprintf(os.Stderr, "migration failed: %v (continuing)\n", jerr)
				}
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
	}
	el := time.Since(start)
	fmt.Fprintf(os.Stderr, "received %d bytes in %s (%.1f Mbps)\n",
		total, el.Truncate(time.Millisecond), float64(total)*8/el.Seconds()/1e6)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcpls-filetransfer:", err)
	os.Exit(1)
}
