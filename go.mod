module github.com/pluginized-protocols/gotcpls

go 1.24
