// Package simnet is the public facade over the repository's emulated
// network: a real-time packet network (links with bandwidth, delay,
// queueing, loss; middleboxes that strip options, forge resets, rewrite
// addresses) and a userspace TCP stack with the cross-layer hooks TCPLS
// exploits (congestion-window introspection, RFC 5482 user timeouts,
// pluggable — including eBPF-delivered — congestion control).
//
// It reproduces the role of the paper's IPMininet testbed: the Figure 4
// topology is
//
//	n := simnet.NewNetwork(simnet.WithTimeScale(0.25))
//	client, server := n.Host("client"), n.Host("server")
//	n.AddLink(client, server, v4c, v4s, simnet.LinkConfig{BandwidthBps: 30e6, Delay: 10 * time.Millisecond})
//	n.AddLink(client, server, v6c, v6s, simnet.LinkConfig{BandwidthBps: 30e6, Delay: 15 * time.Millisecond})
//
// and TCPLS endpoints attach through NewTCPStack / Dialer.
package simnet

import (
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/tcpnet"
)

// Network emulation types.
type (
	// Network is an emulated network sharing one time scale.
	Network = netsim.Network
	// Host is an emulated end system.
	Host = netsim.Host
	// Link is a point-to-point link.
	Link = netsim.Link
	// LinkConfig sets bandwidth/delay/queue/loss.
	LinkConfig = netsim.LinkConfig
	// Option configures NewNetwork.
	Option = netsim.Option
	// TraceEvent is a packet-level trace record.
	TraceEvent = netsim.TraceEvent
	// Middlebox rewrites packets on a link.
	Middlebox = netsim.Middlebox
	// OptionStripper removes TCP options (the classic interference).
	OptionStripper = netsim.OptionStripper
	// RSTInjector forges spurious TCP resets.
	RSTInjector = netsim.RSTInjector
	// NAT rewrites addresses.
	NAT = netsim.NAT
	// Mangler corrupts payloads while fixing checksums.
	Mangler = netsim.Mangler
)

// Userspace TCP types.
type (
	// TCPStack is one host's TCP instance.
	TCPStack = tcpnet.Stack
	// TCPConfig tunes the stack (MSS, buffers, congestion control...).
	TCPConfig = tcpnet.Config
	// TCPConn is a userspace TCP connection (net.Conn + introspection).
	TCPConn = tcpnet.Conn
	// TCPListener accepts userspace TCP connections (net.Listener).
	TCPListener = tcpnet.Listener
	// Dialer adapts a TCPStack to tcpls.Dialer.
	Dialer = tcpnet.Dialer
)

// NewNetwork creates an emulated network.
func NewNetwork(opts ...Option) *Network { return netsim.New(opts...) }

// WithTimeScale compresses emulated time: 0.25 runs 4x faster than real
// time while all rates and timers stay consistent in virtual time.
func WithTimeScale(scale float64) Option { return netsim.WithTimeScale(scale) }

// WithSeed makes loss draws reproducible.
func WithSeed(seed int64) Option { return netsim.WithSeed(seed) }

// WithTrace streams packet events (a tcpdump for the emulated network).
func WithTrace(fn func(TraceEvent)) Option { return netsim.WithTrace(fn) }

// NewTCPStack attaches a userspace TCP stack to a host.
func NewTCPStack(h *Host, cfg TCPConfig) *TCPStack { return tcpnet.NewStack(h, cfg) }
