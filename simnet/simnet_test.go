package simnet_test

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"

	tcpls "github.com/pluginized-protocols/gotcpls"
	"github.com/pluginized-protocols/gotcpls/simnet"
)

// TestPublicFacadeEndToEnd drives a whole TCPLS exchange exclusively
// through the two public packages, as a downstream user would.
func TestPublicFacadeEndToEnd(t *testing.T) {
	n := simnet.NewNetwork(simnet.WithSeed(1))
	defer n.Close()
	client, server := n.Host("client"), n.Host("server")
	cV4, sV4 := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")
	link := n.AddLink(client, server, cV4, sV4, simnet.LinkConfig{
		BandwidthBps: 50e6, Delay: 2 * time.Millisecond,
	})
	_ = link
	cs := simnet.NewTCPStack(client, simnet.TCPConfig{})
	ss := simnet.NewTCPStack(server, simnet.TCPConfig{})
	defer cs.Close()
	defer ss.Close()

	cert, err := tcpls.GenerateSelfSigned("facade", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := ss.Listen(netip.Addr{}, 443)
	if err != nil {
		t.Fatal(err)
	}
	lst := tcpls.NewListener(tl, &tcpls.Config{
		TLS: &tcpls.TLSConfig{Certificate: cert}, Clock: n,
	})
	defer lst.Close()
	go func() {
		sess, err := lst.Accept()
		if err != nil {
			return
		}
		st, err := sess.AcceptStream()
		if err != nil {
			return
		}
		data, _ := io.ReadAll(st)
		back, _ := sess.NewStream()
		back.Write(bytes.ToUpper(data))
		back.Close()
	}()

	cli := tcpls.NewClient(&tcpls.Config{
		TLS: &tcpls.TLSConfig{InsecureSkipVerify: true}, Clock: n,
	}, simnet.Dialer{Stack: cs})
	if _, err := cli.Connect(netip.Addr{}, netip.AddrPortFrom(sV4, 443), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := cli.Handshake(); err != nil {
		t.Fatal(err)
	}
	st, err := cli.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	st.Write([]byte("public api"))
	st.Close()
	back, err := cli.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(back)
	if err != nil || string(got) != "PUBLIC API" {
		t.Fatalf("%q %v", got, err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMiddleboxTypesExposed makes sure the facade exports the middlebox
// toolbox and it operates on public links.
func TestMiddleboxTypesExposed(t *testing.T) {
	n := simnet.NewNetwork()
	defer n.Close()
	a, b := n.Host("a"), n.Host("b")
	link := n.AddLink(a, b,
		netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"),
		simnet.LinkConfig{Delay: time.Millisecond})
	strip := &simnet.OptionStripper{Kinds: []uint8{4}}
	link.Use(strip, &simnet.RSTInjector{AfterSegments: 1 << 30}, &simnet.Mangler{})
	cs := simnet.NewTCPStack(a, simnet.TCPConfig{})
	ss := simnet.NewTCPStack(b, simnet.TCPConfig{})
	defer cs.Close()
	defer ss.Close()
	l, err := ss.Listen(netip.Addr{}, 9999)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := l.Accept()
		if err == nil {
			io.Copy(io.Discard, c)
		}
	}()
	c, err := cs.Dial(netip.Addr{}, netip.AddrPortFrom(netip.MustParseAddr("10.0.0.2"), 9999), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("through the middleboxes"))
	c.Close()
	if strip.Stripped() == 0 {
		t.Fatal("sackOK should have been stripped from the SYN")
	}
}
