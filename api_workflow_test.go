package tcpls_test

import (
	"io"
	"net/netip"
	"testing"
	"time"

	tcpls "github.com/pluginized-protocols/gotcpls"
	"github.com/pluginized-protocols/gotcpls/simnet"
)

// TestFigure3APIWorkflow walks the exact call flow of the paper's
// Figure 3 against the public API: tcpls_new, add addresses, connect
// (with the happy-eyeballs fallback), handshake, callbacks, stream
// creation/attachment, a TCP option over the secure channel, send and
// receive.
func TestFigure3APIWorkflow(t *testing.T) {
	cV4 := netip.MustParseAddr("10.0.0.1")
	sV4 := netip.MustParseAddr("10.0.0.2")
	cV6 := netip.MustParseAddr("fc00::1")
	sV6 := netip.MustParseAddr("fc00::2")

	n := simnet.NewNetwork()
	defer n.Close()
	ch, sh := n.Host("client"), n.Host("server")
	n.AddLink(ch, sh, cV4, sV4, simnet.LinkConfig{Delay: time.Millisecond})
	n.AddLink(ch, sh, cV6, sV6, simnet.LinkConfig{Delay: 2 * time.Millisecond})
	cs := simnet.NewTCPStack(ch, simnet.TCPConfig{})
	ss := simnet.NewTCPStack(sh, simnet.TCPConfig{})
	defer cs.Close()
	defer ss.Close()

	cert, err := tcpls.GenerateSelfSigned("fig3", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Sender side of the figure: listen(), tcpls_new(), tcpls_accept().
	tl, err := ss.Listen(netip.Addr{}, 443)
	if err != nil {
		t.Fatal(err)
	}
	events := make(chan string, 16)
	serverCfg := &tcpls.Config{
		TLS: &tcpls.TLSConfig{Certificate: cert},
		AdvertiseAddresses: []netip.AddrPort{
			netip.AddrPortFrom(sV4, 443),
			netip.AddrPortFrom(sV6, 443),
		},
		Callbacks: tcpls.Callbacks{
			TCPOption: func(kind uint8, data []byte) {
				events <- "tcp-option"
			},
		},
		Clock: n,
	}
	lst := tcpls.NewListener(tl, serverCfg)
	defer lst.Close()

	type acceptRes struct {
		s   *tcpls.Session
		err error
	}
	acceptCh := make(chan acceptRes, 1)
	go func() {
		s, err := lst.Accept()
		acceptCh <- acceptRes{s, err}
	}()

	// Receiver side: tcpls_new(); tcpls_add_v4(addr, primary);
	// tcpls_add_v6(addr6); tcpls_connect with the 50 ms fallback.
	cli := tcpls.NewClient(&tcpls.Config{
		TLS:   &tcpls.TLSConfig{InsecureSkipVerify: true},
		Clock: n,
	}, simnet.Dialer{Stack: cs})
	if _, err := cli.ConnectHappyEyeballs(
		[]netip.AddrPort{netip.AddrPortFrom(sV4, 443), netip.AddrPortFrom(sV6, 443)},
		50*time.Millisecond, 2*time.Second); err != nil {
		t.Fatalf("tcpls_connect: %v", err)
	}

	// tcpls_handshake().
	if err := cli.Handshake(); err != nil {
		t.Fatalf("tcpls_handshake: %v", err)
	}
	r := <-acceptCh
	if r.err != nil {
		t.Fatalf("tcpls_accept: %v", r.err)
	}
	srv := r.s

	// Optional calls of the figure: tcpls_handshake(addr6) (JOIN),
	// tcpls_stream_new, tcpls_streams_attach, tcpls_send_tcpoption.
	v6Path, err := cli.Connect(cV6, netip.AddrPortFrom(sV6, 443), 2*time.Second)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	st, err := cli.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Attach(v6Path); err != nil {
		t.Fatal(err)
	}
	if err := cli.SendUserTimeout(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	// {TCPLS Data}: tcpls_send / tcpls_receive.
	go func() {
		st.Write([]byte("figure three"))
		st.Close()
	}()
	sst, err := srv.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(sst)
	if err != nil || string(got) != "figure three" {
		t.Fatalf("tcpls_receive: %q %v", got, err)
	}
	select {
	case <-events:
	case <-time.After(5 * time.Second):
		t.Fatal("TCP option callback never fired")
	}
	cli.Close()
}
