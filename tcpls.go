// Package tcpls is a Go implementation of TCPLS — the close integration
// of TCP and TLS proposed in "TCPLS: Closely Integrating TCP and TLS"
// (Rochet, Assogba, Bonaventure — HotNets 2020).
//
// A TCPLS session looks like TLS 1.3 over TCP to the network, but the
// TLS machinery is also the transport's control plane:
//
//   - the handshake carries TCPLS transport parameters (and, on
//     additional connections, cryptographic JOIN proofs), so one session
//     can span several TCP connections across addresses and families;
//   - the record layer is a secure control channel carrying TCP options,
//     TCPLS acknowledgments, address advertisements, and even eBPF
//     congestion-control programs — none of it visible to middleboxes;
//   - application data flows in datastreams with per-stream crypto
//     contexts, multiplexed over the session's TCP connections with
//     support for bandwidth aggregation, head-of-line isolation,
//     connection migration and automatic failover.
//
// The API mirrors the workflow of the paper's Figure 3:
//
//	cli := tcpls.NewClient(&tcpls.Config{...}, dialer)    // tcpls_new
//	cli.Connect(laddr, raddr, timeout)                     // tcpls_connect
//	cli.Handshake()                                        // tcpls_handshake
//	st, _ := cli.NewStream()                               // tcpls_stream_new
//	st.Attach(pathID)                                      // tcpls_streams_attach
//	st.Write(data)                                         // tcpls_send
//	st.Read(buf)                                           // tcpls_receive
//	cli.SendUserTimeout(30 * time.Second)                  // tcpls_send_tcpoption
//	cli.ClosePath(pathID)                                  // tcpls_stream_close + conn close
//
// Sessions run over any transport exposing net.Conn/net.Listener: real
// TCP sockets (NetDialer) or the emulated network in package simnet,
// whose userspace TCP additionally exposes the cross-layer hooks
// (congestion-window introspection, user timeouts, pluggable congestion
// control) that the paper builds on.
package tcpls

import (
	"net"
	"net/netip"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/cc"
	"github.com/pluginized-protocols/gotcpls/internal/core"
	"github.com/pluginized-protocols/gotcpls/internal/ebpfvm"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

// Core session types (see the package documentation for the workflow).
type (
	// Session is one TCPLS session over one or more TCP connections.
	Session = core.Session
	// Stream is an ordered, encrypted datastream within a session.
	Stream = core.Stream
	// Listener accepts TCPLS sessions on the server side.
	Listener = core.Listener
	// Config configures an endpoint.
	Config = core.Config
	// Callbacks deliver session events (Figure 3's "CB events").
	Callbacks = core.Callbacks
	// Dialer abstracts the TCP transport underneath the session.
	Dialer = core.Dialer
	// SchedulingMode selects multipath behaviour.
	SchedulingMode = core.SchedulingMode
	// Role distinguishes client and server sessions.
	Role = core.Role
)

// TLS-level types, re-exported so applications can configure identity,
// trust and resumption without importing internals.
type (
	// TLSConfig is the TLS 1.3 configuration embedded in Config.TLS.
	TLSConfig = tls13.Config
	// Certificate is a server identity (DER chain + ECDSA P-256 key).
	Certificate = tls13.Certificate
	// ClientSession is a resumable TLS session (ticket + PSK).
	ClientSession = tls13.ClientSession
)

// Scheduling modes (§2.4 of the paper: HOL avoidance and bandwidth
// aggregation are mutually exclusive).
const (
	// ModeSinglePath keeps each stream on its attached TCP connection.
	ModeSinglePath = core.ModeSinglePath
	// ModeAggregate sprays streams across all connections for bandwidth.
	ModeAggregate = core.ModeAggregate
)

// Session roles.
const (
	RoleClient = core.RoleClient
	RoleServer = core.RoleServer
)

// Errors.
var (
	ErrSessionClosed = core.ErrSessionClosed
	ErrNoConnection  = core.ErrNoConnection
	ErrNoCookies     = core.ErrNoCookies
	ErrJoinRejected  = core.ErrJoinRejected
	ErrNoAddresses   = core.ErrNoAddresses
)

// NewClient creates a client session (tcpls_new). Add TCP connections
// with Connect / ConnectHappyEyeballs, then run Handshake.
func NewClient(cfg *Config, dialer Dialer) *Session {
	return core.NewClient(cfg, dialer)
}

// NewListener wraps a TCP listener (net.Listener or a simnet listener)
// as a TCPLS session listener.
func NewListener(inner net.Listener, cfg *Config) *Listener {
	return core.NewListener(inner, cfg)
}

// GenerateSelfSigned creates a self-signed ECDSA P-256 certificate for
// tests, examples and private deployments.
func GenerateSelfSigned(commonName string, dnsNames []string, ips []net.IP) (*Certificate, error) {
	return tls13.GenerateSelfSigned(commonName, dnsNames, ips)
}

// NetDialer adapts the operating system's TCP stack to the Dialer
// interface. Cross-layer features that need transport introspection
// (record sizing from cwnd, User-Timeout installation, eBPF congestion
// control) degrade gracefully: kernel sockets do not expose them.
type NetDialer struct{}

// Dial implements Dialer over net.Dialer.
func (NetDialer) Dial(laddr netip.Addr, raddr netip.AddrPort, timeout time.Duration) (net.Conn, error) {
	d := net.Dialer{Timeout: timeout}
	if laddr.IsValid() && !laddr.IsUnspecified() {
		d.LocalAddr = &net.TCPAddr{IP: laddr.AsSlice()}
	}
	return d.Dial("tcp", raddr.String())
}

// AssembleBPF compiles eBPF assembly text (the dialect documented in the
// internal VM package) into verified bytecode suitable for SendBPFCC —
// the pluginization mechanism of §3(iii)/§4.3 of the paper.
func AssembleBPF(src string) ([]byte, error) {
	p, err := ebpfvm.Assemble(src)
	if err != nil {
		return nil, err
	}
	return p.Marshal(), nil
}

// AIMDProgram is a complete AIMD congestion controller written in eBPF
// assembly, ready to ship to a peer with Session.SendBPFCC.
const AIMDProgram = cc.AIMDProgram
