GO ?= go

.PHONY: all build test race chaos-smoke check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Deterministic chaos acceptance run: flap + stall + RST + 2% loss over
# a 1 MB multi-stream transfer, with proactive (probe-timeout) failover.
chaos-smoke:
	$(GO) test ./internal/chaos/ -run 'TestChaosSmoke|TestChaosSinglePathRecovery' -count=1 -v

check: build race chaos-smoke

bench:
	$(GO) test -bench=. -benchtime=3x .
