GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race vet chaos-smoke adversary telemetry fuzz-smoke check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Deterministic chaos acceptance run: flap + stall + RST + 2% loss over
# a 1 MB multi-stream transfer, with proactive (probe-timeout) failover,
# plus the Fig. 4 reproduction asserted from the event trace alone.
chaos-smoke:
	$(GO) test ./internal/chaos/ -run 'TestChaosSmoke|TestChaosSinglePathRecovery|TestFig4FailoverTrace' -count=1 -v

# Hostile-peer gauntlet: SYN flood, slowloris, malformed-record spray,
# stream-open flood — run under the race detector.
adversary:
	$(GO) test ./internal/chaos/ -race -run 'TestAdversarialPeer|TestSessionSurvivesForgedRSTSinglePath' -count=1 -v

# Telemetry invariants: the tracer/metrics suite under the race
# detector, then the disabled-tracer zero-allocation guarantee — the
# testing.AllocsPerRun == 0 hard bound and its benchmark — without the
# race detector, so allocation counts are exact.
telemetry:
	$(GO) test ./internal/telemetry/ -race -count=1
	$(GO) test ./internal/telemetry/ -run 'TestDisabledTracerZeroAlloc' -count=1 -v
	$(GO) test ./internal/telemetry/ -run '^$$' -bench 'BenchmarkTracerDisabled|BenchmarkTracerNil' -benchtime 1000x

# Short fuzz pass over every attacker-facing decoder. Seeds live in
# testdata/fuzz/; any crasher Go saves there becomes a regression test.
fuzz-smoke:
	$(GO) test ./internal/record/ -run '^$$' -fuzz '^FuzzDecodeControl$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/record/ -run '^$$' -fuzz '^FuzzDecodeClientHelloTCPLS$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/record/ -run '^$$' -fuzz '^FuzzDecodeServerTCPLS$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/record/ -run '^$$' -fuzz '^FuzzDecodeStreamChunk$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/record/ -run '^$$' -fuzz '^FuzzDecodeTCPOption$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire/ -run '^$$' -fuzz '^FuzzUnmarshalSegment$$' -fuzztime $(FUZZTIME)

check: build vet race chaos-smoke adversary telemetry fuzz-smoke

bench:
	$(GO) test -bench=. -benchtime=3x .
