GO ?= go
FUZZTIME ?= 10s

# Benchmark-regression harness knobs (see EXPERIMENTS.md §Benchmark
# regression harness). BENCH_BASELINE defaults to the newest checked-in
# archive; `make check BENCH=1` adds the regression gate to check.
BENCH_RUNS ?= 3
BENCH_TIME ?= 2s
BENCH_PAT ?= BenchmarkStreamThroughput
BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
BENCH_LABEL ?= $(shell date +%Y-%m-%d)

.PHONY: all build test race vet test-matrix alloc-gate chaos-smoke adversary telemetry interop overload flock fuzz-smoke check bench bench-all bench-check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Scheduler/feature matrix: the race detector, the purego build-tag
# variant, and a single-P run that surfaces scheduler-dependent flakes
# the chaos harness only hits probabilistically. The last two lines are
# the goroutine gates: the overload gauntlet's back-to-baseline leak
# check, and the exact per-session goroutine bill of the sharded
# runtime (1 accept loop + workers + shared timer/event loops, then
# exactly 2 goroutines per idle session — equality, not a bound).
test-matrix:
	$(GO) test -race ./...
	$(GO) test -tags=purego ./...
	GOMAXPROCS=1 $(GO) test ./...
	$(GO) test ./internal/chaos/ -run 'TestOverloadGauntlet$$' -count=1
	$(GO) test ./internal/chaos/ -run 'TestGoroutineBudgetExact$$' -count=1
	$(GO) test ./internal/tls13/ -run 'TestBatch' -count=1
	$(GO) test ./internal/ring/ ./internal/timingwheel/ -race -count=1

# Steady-state allocation gates for the data path, run WITHOUT the race
# detector so testing.AllocsPerRun counts are exact: the record-layer
# send/recv paths (single and batched), the buffer-pool accounting
# invariants, and the timing wheel's zero-alloc rearm.
alloc-gate:
	$(GO) test ./internal/tls13/ -run 'TestRecordWriteSteadyStateAllocs|TestRecordReadSteadyStateAllocs|TestBatchWriteSteadyStateAllocs' -count=1 -v
	$(GO) test ./internal/bufpool/ -count=1
	$(GO) test ./internal/timingwheel/ -run 'TestWheelRearmZeroAlloc' -count=1 -v

# Deterministic chaos acceptance run: flap + stall + RST + 2% loss over
# a 1 MB multi-stream transfer, with proactive (probe-timeout) failover,
# plus the Fig. 4 reproduction asserted from the event trace alone.
chaos-smoke:
	$(GO) test ./internal/chaos/ -run 'TestChaosSmoke|TestChaosSinglePathRecovery|TestFig4FailoverTrace' -count=1 -v

# Hostile-peer gauntlet: SYN flood, slowloris, malformed-record spray,
# stream-open flood — run under the race detector.
adversary:
	$(GO) test ./internal/chaos/ -race -run 'TestAdversarialPeer|TestSessionSurvivesForgedRSTSinglePath' -count=1 -v

# Telemetry invariants: the tracer/metrics suite under the race
# detector, then the zero-allocation guarantees — disabled tracing,
# Histogram.Observe, and the flight recorder's steady-state record path
# all hold testing.AllocsPerRun == 0 — without the race detector, so
# allocation counts are exact. The tracing-overhead benchmark triple
# (off / 1-in-100 sampled / full fidelity) quantifies what turning the
# firehose on costs relative to the always-on flight recorder.
telemetry:
	$(GO) test ./internal/telemetry/ -race -count=1
	$(GO) test ./internal/telemetry/ -run 'TestDisabledTracerZeroAlloc|TestHistogramObserveZeroAlloc|TestFlightRecorderZeroAlloc' -count=1 -v
	$(GO) test ./internal/telemetry/ -run '^$$' -bench 'BenchmarkTracerDisabled|BenchmarkTracerNil' -benchtime 1000x
	$(GO) test ./internal/telemetry/ -run '^$$' -bench 'BenchmarkTracingOverhead' -benchtime 1000x

# Overload/churn gauntlet under the race detector: Poisson client churn
# plus a demand spike past the session budget, asserting pre-TLS
# rejection of the excess, idle/degraded-only shedding, byte-exact
# completion of established transfers, admission-gate reopen, and every
# accounting gauge (and the goroutine count) back to baseline.
overload:
	$(GO) test ./internal/chaos/ -race -run 'TestOverloadGauntlet' -count=1 -v

# Flock gauntlet: the C50K scale gate for the sharded server runtime.
# Default is the 1k-client smoke profile (Poisson churn, migrations, a
# v6 link flap under the failover cohort) against the checked-in
# budgets in internal/chaos/testdata/FLOCK_BUDGET.json — sessions/sec,
# bytes/sec, heap per session, goroutines per session. FLOCK=1 runs the
# full 10k-client profile.
flock:
	$(GO) test ./internal/chaos/ -run 'TestFlockGauntlet$$' -count=1 -v -timeout 900s

# Middlebox interop gauntlet: TCPLS vs plain TLS/TCP vs the QUIC-like
# comparator through seven interference models, checked cell-by-cell
# against the committed golden matrix (a pass->degrade or degrade->fail
# slide fails the build; run with -update to ratchet improvements in).
interop:
	$(GO) test ./internal/chaos/ -run 'TestInterop' -count=1 -v

# Short fuzz pass over every attacker-facing decoder. Seeds live in
# testdata/fuzz/; any crasher Go saves there becomes a regression test.
fuzz-smoke:
	$(GO) test ./internal/record/ -run '^$$' -fuzz '^FuzzDecodeControl$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/record/ -run '^$$' -fuzz '^FuzzDecodeClientHelloTCPLS$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/record/ -run '^$$' -fuzz '^FuzzDecodeServerTCPLS$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/record/ -run '^$$' -fuzz '^FuzzDecodeStreamChunk$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/record/ -run '^$$' -fuzz '^FuzzDecodeTCPOption$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire/ -run '^$$' -fuzz '^FuzzUnmarshalSegment$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/netsim/ -run '^$$' -fuzz '^FuzzOptionStripperRewrite$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/netsim/ -run '^$$' -fuzz '^FuzzSpliceProxyRewrite$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tls13/ -run '^$$' -fuzz '^FuzzBatchOpenFraming$$' -fuzztime $(FUZZTIME)

# BENCH=1 adds the benchmark-regression gate (bench-check) to check.
ifeq ($(BENCH),1)
CHECK_EXTRA += bench-check
endif

check: build vet alloc-gate test-matrix chaos-smoke adversary overload flock telemetry interop fuzz-smoke $(CHECK_EXTRA)

# The full virtual-time benchmark suite (one benchmark per paper
# table/figure); `make bench` below tracks just the tier-1 set.
bench-all:
	$(GO) test -bench=. -benchtime=3x .

# Run the tier-1 throughput benchmarks BENCH_RUNS times and append the
# aggregated run to BENCH_<date>.json (raw lines kept benchstat-ready).
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PAT)' -benchmem -benchtime $(BENCH_TIME) -count $(BENCH_RUNS) . \
		| $(GO) run ./cmd/benchcheck -out BENCH_$$(date +%Y-%m-%d).json -label $(BENCH_LABEL)

# Fail on >10% geomean throughput regression vs the newest checked-in
# baseline archive (override with BENCH_BASELINE=path).
bench-check:
	@test -n "$(BENCH_BASELINE)" || { echo "bench-check: no BENCH_*.json baseline found"; exit 1; }
	$(GO) test -run '^$$' -bench '$(BENCH_PAT)' -benchmem -benchtime $(BENCH_TIME) -count $(BENCH_RUNS) . \
		| $(GO) run ./cmd/benchcheck -check $(BENCH_BASELINE)
