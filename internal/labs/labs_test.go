package labs

import (
	"io"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/core"
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
)

func TestTestbedDownloadAndSampler(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{
		V4:        netsim.LinkConfig{BandwidthBps: 50e6, Delay: 2 * time.Millisecond},
		V6:        netsim.LinkConfig{Delay: 2 * time.Millisecond},
		TimeScale: 0.5,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	cli, srv, err := tb.ConnectClient(&core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const size = 1 << 20
	ServeDownload(srv, size)
	req, _ := cli.NewStream()
	req.Write([]byte("GET"))
	req.Close()
	down, err := cli.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	samples := 0
	total, err := SampleGoodput(tb.Net, down, 50*time.Millisecond, func(s GoodputSample) {
		samples++
		if s.Mbps < 0 || s.Total < 0 {
			t.Errorf("bad sample %+v", s)
		}
	}, cli)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if total != size {
		t.Fatalf("downloaded %d of %d", total, size)
	}
	if samples == 0 {
		t.Fatal("sampler produced no samples")
	}
}

func TestTestbedConnectFailsCleanlyWhenDown(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{
		V4: netsim.LinkConfig{Delay: time.Millisecond},
		V6: netsim.LinkConfig{Delay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	tb.LinkV4.SetDown(true)
	tb.LinkV6.SetDown(true)
	if _, _, err := tb.ConnectClient(&core.Config{}); err == nil {
		t.Fatal("connect succeeded over dead links")
	}
}
