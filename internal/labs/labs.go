// Package labs provides the shared experiment harness used by the cmd/
// binaries and the benchmark suite: canonical topologies (the paper's
// dual-stack two-path testbed), server bootstrapping, and goodput
// sampling for time-series output.
package labs

import (
	"fmt"
	"io"
	"net/netip"
	"sync/atomic"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/core"
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/tcpnet"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

// Canonical addresses of the dual-stack testbed.
var (
	ClientV4 = netip.MustParseAddr("10.0.0.1")
	ServerV4 = netip.MustParseAddr("10.0.0.2")
	ClientV6 = netip.MustParseAddr("fc00::1")
	ServerV6 = netip.MustParseAddr("fc00::2")
)

// Port is the canonical server port.
const Port = 443

// Testbed is the paper's evaluation topology: a client and a server
// joined by an IPv4-only path and an IPv6-only path (Figure 4 uses
// 30 Mbps links with the lower delay on v4).
type Testbed struct {
	Net      *netsim.Network
	LinkV4   *netsim.Link
	LinkV6   *netsim.Link
	Client   *tcpnet.Stack
	Server   *tcpnet.Stack
	Cert     *tls13.Certificate
	Listener *core.Listener
}

// TestbedConfig parametrizes the topology.
type TestbedConfig struct {
	V4        netsim.LinkConfig
	V6        netsim.LinkConfig
	TimeScale float64
	Seed      int64
	Server    *core.Config // optional overrides (callbacks etc.)
}

// NewTestbed builds the topology and starts a TCPLS listener.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) {
	opts := []netsim.Option{}
	if cfg.TimeScale > 0 {
		opts = append(opts, netsim.WithTimeScale(cfg.TimeScale))
	}
	if cfg.Seed != 0 {
		opts = append(opts, netsim.WithSeed(cfg.Seed))
	}
	n := netsim.New(opts...)
	ch, sh := n.Host("client"), n.Host("server")
	if cfg.V4.Name == "" {
		cfg.V4.Name = "v4"
	}
	if cfg.V6.Name == "" {
		cfg.V6.Name = "v6"
	}
	l4 := n.AddLink(ch, sh, ClientV4, ServerV4, cfg.V4)
	l6 := n.AddLink(ch, sh, ClientV6, ServerV6, cfg.V6)
	cs := tcpnet.NewStack(ch, tcpnet.Config{})
	ss := tcpnet.NewStack(sh, tcpnet.Config{})
	cert, err := tls13.GenerateSelfSigned("labs", nil, nil)
	if err != nil {
		return nil, err
	}
	tl, err := ss.Listen(netip.Addr{}, Port)
	if err != nil {
		return nil, err
	}
	scfg := cfg.Server
	if scfg == nil {
		scfg = &core.Config{}
	}
	if scfg.TLS == nil {
		scfg.TLS = &tls13.Config{}
	}
	scfg.TLS.Certificate = cert
	scfg.Clock = n
	if len(scfg.AdvertiseAddresses) == 0 {
		scfg.AdvertiseAddresses = []netip.AddrPort{
			netip.AddrPortFrom(ServerV4, Port),
			netip.AddrPortFrom(ServerV6, Port),
		}
	}
	return &Testbed{
		Net:      n,
		LinkV4:   l4,
		LinkV6:   l6,
		Client:   cs,
		Server:   ss,
		Cert:     cert,
		Listener: core.NewListener(tl, scfg),
	}, nil
}

// Close releases the testbed.
func (tb *Testbed) Close() {
	tb.Listener.Close()
	tb.Client.Close()
	tb.Server.Close()
	tb.Net.Close()
}

// ConnectClient dials + handshakes a TCPLS session over v4 and returns
// both session ends.
func (tb *Testbed) ConnectClient(cfg *core.Config) (*core.Session, *core.Session, error) {
	if cfg == nil {
		cfg = &core.Config{}
	}
	if cfg.TLS == nil {
		cfg.TLS = &tls13.Config{}
	}
	cfg.TLS.InsecureSkipVerify = true
	cfg.Clock = tb.Net
	cli := core.NewClient(cfg, tcpnet.Dialer{Stack: tb.Client})
	type res struct {
		s   *core.Session
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := tb.Listener.Accept()
		ch <- res{s, err}
	}()
	if _, err := cli.Connect(netip.Addr{}, netip.AddrPortFrom(ServerV4, Port), 10*time.Second); err != nil {
		return nil, nil, fmt.Errorf("connect: %w", err)
	}
	if err := cli.Handshake(); err != nil {
		return nil, nil, fmt.Errorf("handshake: %w", err)
	}
	r := <-ch
	if r.err != nil {
		return nil, nil, fmt.Errorf("accept: %w", r.err)
	}
	return cli, r.s, nil
}

// ServeDownload makes the server answer the first stream of each session
// by streaming size bytes on a fresh stream — the Figure 4 workload.
func ServeDownload(srv *core.Session, size int) {
	go func() {
		req, err := srv.AcceptStream()
		if err != nil {
			return
		}
		io.Copy(io.Discard, req)
		down, err := srv.NewStream()
		if err != nil {
			return
		}
		buf := make([]byte, 64<<10)
		sent := 0
		for sent < size {
			n := min(len(buf), size-sent)
			if _, err := down.Write(buf[:n]); err != nil {
				return
			}
			sent += n
		}
		down.Close()
	}()
}

// GoodputSample is one point of a goodput time series.
type GoodputSample struct {
	Time    time.Duration // virtual time since the transfer started
	Mbps    float64       // goodput over the sampling interval
	Total   int64         // cumulative bytes
	NumConn int           // live TCP connections at sample time
}

// SampleGoodput reads from r until EOF, emitting a sample every interval
// of virtual time. The returned series is in virtual time.
func SampleGoodput(net *netsim.Network, r io.Reader, interval time.Duration, onSample func(GoodputSample), session *core.Session) (int64, error) {
	var total atomic.Int64
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 64<<10)
		for {
			n, err := r.Read(buf)
			total.Add(int64(n))
			if err == io.EOF {
				done <- nil
				return
			}
			if err != nil {
				done <- err
				return
			}
		}
	}()
	tick := time.NewTicker(net.ScaleDuration(interval))
	defer tick.Stop()
	var last int64
	lastT := time.Duration(0)
	for {
		select {
		case err := <-done:
			return total.Load(), err
		case <-tick.C:
			now := net.VirtualSince(start)
			cur := total.Load()
			dt := now - lastT
			if dt <= 0 {
				continue
			}
			mbps := float64(cur-last) * 8 / dt.Seconds() / 1e6
			conns := 0
			if session != nil {
				conns = session.NumConns()
			}
			if onSample != nil {
				onSample(GoodputSample{Time: now, Mbps: mbps, Total: cur, NumConn: conns})
			}
			last, lastT = cur, now
		}
	}
}
