// Package bufpool provides size-classed, sync.Pool-backed byte buffers
// for the hot data path (record sealing, decrypted payloads, segment
// marshalling). Buffers move between layers with ownership-transfer
// semantics: whoever holds the buffer last calls Put. Recycling is
// best-effort — a missed Put only costs a GC allocation, never
// correctness — but a Put of a still-referenced buffer is a
// use-after-free-style bug, so callers must only Put buffers they own.
//
// Get(n) returns a slice with len == n and cap equal to the smallest
// size class that fits. Put accepts only slices whose cap exactly
// matches a size class (after re-slicing to full capacity); anything
// else — a foreign allocation, or a slice whose base pointer was lost —
// is dropped and counted, so pools never degrade to misclassified
// buffers.
package bufpool

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// Size classes. The 17 KiB class fits a full sealed TLS record
// (5-byte header + 16384 plaintext + padding/type + 16-byte tag, under
// tls13.MaxCiphertext = 16640) as well as the largest decrypted
// payload; the small classes serve control records, ACK-range frames
// and MSS-sized segment buffers.
var classes = [...]int{512, 2048, 4096, 8192, 17 * 1024, 64 * 1024}

const numClasses = len(classes)

var pools [numClasses]sync.Pool

func init() {
	for i := range pools {
		size := classes[i]
		pools[i].New = func() any {
			missCount.Add(1)
			b := make([]byte, size)
			return unsafe.Pointer(&b[0])
		}
	}
}

var (
	getCount     atomic.Uint64 // Get calls served from a class (hit or miss)
	missCount    atomic.Uint64 // Get calls that had to allocate a class buffer
	oversizeGets atomic.Uint64 // Get calls larger than the biggest class
	putCount     atomic.Uint64 // buffers accepted back into a pool
	foreignPuts  atomic.Uint64 // Put calls dropped (cap not a class size)
	// inUseBytes gauges class bytes currently checked out: each Get
	// charges its full class size, each accepted Put credits it back.
	// A buffer that leaves the pool economy (grown past its class, or
	// simply never Put) stays charged — the gauge is the server-wide
	// memory-budget signal, and memory a caller lost track of is
	// exactly what a budget must keep counting.
	inUseBytes atomic.Int64
)

// classFor returns the index of the smallest class with size >= n,
// or -1 when n exceeds the largest class.
func classFor(n int) int {
	for i, size := range classes {
		if n <= size {
			return i
		}
	}
	return -1
}

// classOf returns the class index whose size is exactly c, or -1.
func classOf(c int) int {
	for i, size := range classes {
		if c == size {
			return i
		}
		if c < size {
			break
		}
	}
	return -1
}

// Get returns a buffer with len == n. Its capacity is the full size
// class, so callers may append within cap and still Put the result.
// Requests larger than the biggest class fall back to a plain
// allocation (which Put will silently drop).
func Get(n int) []byte {
	ci := classFor(n)
	if ci < 0 {
		oversizeGets.Add(1)
		return make([]byte, n)
	}
	getCount.Add(1)
	// Pools hold raw base pointers, not slices: a pointer fits in the
	// interface word, so Get/Put stay allocation-free in steady state
	// (boxing a []byte header would cost one heap alloc per Put). The
	// class size is fixed per pool, so the slice is reconstructed
	// losslessly.
	p := pools[ci].Get().(unsafe.Pointer)
	inUseBytes.Add(int64(classes[ci]))
	b := unsafe.Slice((*byte)(p), classes[ci])[:n]
	trackGet(b)
	return b
}

// Put returns a buffer to its pool. The slice is re-sliced to full
// capacity first; only exact class capacities are accepted, so slices
// that lost their base pointer (b = b[5:]) or grew past the class via
// append are dropped rather than poisoning a pool. Put(nil) is a no-op.
func Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	ci := classOf(cap(b))
	if ci < 0 {
		foreignPuts.Add(1)
		return
	}
	trackPut(b)
	putCount.Add(1)
	inUseBytes.Add(-int64(classes[ci]))
	pools[ci].Put(unsafe.Pointer(&b[0]))
}

// InUseBytes reports pooled-buffer bytes currently checked out (charged
// at full class size). This is the gauge server-wide admission control
// reads as its memory-pressure signal.
func InUseBytes() int64 {
	n := inUseBytes.Load()
	if n < 0 {
		return 0 // double-Put bug elsewhere; never report negative memory
	}
	return n
}

// --- leak-check mode (tests only) ---

// leakState tracks outstanding pooled buffers by base pointer while a
// leak check is active. It is nil in production; Get/Put then skip it
// with a single atomic load.
type leakState struct {
	mu   sync.Mutex
	live map[*byte]int // base pointer -> outstanding count (double-Put detector)
	gets int
	puts int
}

var leakCheck atomic.Pointer[leakState]

// StartLeakCheck begins tracking Get/Put pairing. It is intended for
// hermetic tests: enable it before any traffic, drain all traffic, then
// call StopLeakCheck and assert Outstanding() == 0. Only one check may
// be active at a time.
func StartLeakCheck() *LeakChecker {
	st := &leakState{live: make(map[*byte]int)}
	if !leakCheck.CompareAndSwap(nil, st) {
		panic("bufpool: leak check already active")
	}
	return &LeakChecker{st: st}
}

// LeakChecker reports on a tracking window started by StartLeakCheck.
type LeakChecker struct {
	st      *leakState
	stopped bool
}

// Stop ends the tracking window. Outstanding remains readable.
func (lc *LeakChecker) Stop() {
	if !lc.stopped {
		lc.stopped = true
		leakCheck.CompareAndSwap(lc.st, nil)
	}
}

// Outstanding returns the number of buffers Get has handed out during
// the window that have not been Put back.
func (lc *LeakChecker) Outstanding() int {
	lc.st.mu.Lock()
	defer lc.st.mu.Unlock()
	n := 0
	for _, c := range lc.st.live {
		if c > 0 {
			n += c
		}
	}
	return n
}

// Stats returns the Get and Put counts observed during the window.
func (lc *LeakChecker) Stats() (gets, puts int) {
	lc.st.mu.Lock()
	defer lc.st.mu.Unlock()
	return lc.st.gets, lc.st.puts
}

func trackGet(b []byte) {
	st := leakCheck.Load()
	if st == nil {
		return
	}
	base := &b[:cap(b)][0]
	st.mu.Lock()
	st.live[base]++
	st.gets++
	st.mu.Unlock()
}

func trackPut(b []byte) {
	st := leakCheck.Load()
	if st == nil {
		return
	}
	base := &b[0]
	st.mu.Lock()
	defer st.mu.Unlock()
	st.puts++
	c, seen := st.live[base]
	if !seen {
		// A buffer obtained before the window began: record it at zero
		// so a later Put of the same (now idle) buffer is caught.
		st.live[base] = 0
		return
	}
	if c <= 0 {
		panic(fmt.Sprintf("bufpool: double Put of %d-byte buffer", cap(b)))
	}
	st.live[base] = c - 1
}

// --- telemetry ---

// Stats is a point-in-time snapshot of the global pool counters.
type Stats struct {
	Gets, Misses, OversizeGets, Puts, ForeignPuts uint64
	InUseBytes                                    int64
}

// Snapshot returns the current global counters. Hits are Gets - Misses.
func Snapshot() Stats {
	return Stats{
		Gets:         getCount.Load(),
		Misses:       missCount.Load(),
		OversizeGets: oversizeGets.Load(),
		Puts:         putCount.Load(),
		ForeignPuts:  foreignPuts.Load(),
		InUseBytes:   InUseBytes(),
	}
}

// RegisterMetrics exposes the pool counters on reg under bufpool.*.
// The pool is process-global, so this should be called once per
// registry; re-registration replaces the previous functions.
func RegisterMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Func("bufpool.gets", func() int64 { return int64(getCount.Load()) })
	reg.Func("bufpool.hits", func() int64 {
		g, m := getCount.Load(), missCount.Load()
		if m > g {
			return 0
		}
		return int64(g - m)
	})
	reg.Func("bufpool.misses", func() int64 { return int64(missCount.Load()) })
	reg.Func("bufpool.oversize_gets", func() int64 { return int64(oversizeGets.Load()) })
	reg.Func("bufpool.puts", func() int64 { return int64(putCount.Load()) })
	reg.Func("bufpool.foreign_puts", func() int64 { return int64(foreignPuts.Load()) })
	reg.Func("bufpool.in_use_bytes", InUseBytes)
}
