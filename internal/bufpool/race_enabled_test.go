//go:build race

package bufpool

// raceEnabled disables alloc-count assertions: the race runtime
// allocates on instrumented paths.
const raceEnabled = true
