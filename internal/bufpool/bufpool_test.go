package bufpool

import (
	"testing"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

func TestGetSizes(t *testing.T) {
	for _, n := range []int{0, 1, 511, 512, 513, 4096, 16 * 1024, 17 * 1024, 64 * 1024} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d): len = %d", n, len(b))
		}
		if classOf(cap(b)) < 0 {
			t.Fatalf("Get(%d): cap %d is not a class size", n, cap(b))
		}
		if cap(b) < n {
			t.Fatalf("Get(%d): cap %d < n", n, cap(b))
		}
		Put(b)
	}
}

func TestOversizeGet(t *testing.T) {
	n := classes[numClasses-1] + 1
	b := Get(n)
	if len(b) != n {
		t.Fatalf("len = %d, want %d", len(b), n)
	}
	before := Snapshot().ForeignPuts
	Put(b) // not a class cap: must be dropped, not pooled
	if got := Snapshot().ForeignPuts; got != before+1 {
		t.Fatalf("foreign puts = %d, want %d", got, before+1)
	}
}

func TestPutRejectsOffsetSlice(t *testing.T) {
	b := Get(1024)
	before := Snapshot().ForeignPuts
	Put(b[5:]) // base pointer lost: cap no longer a class size
	if got := Snapshot().ForeignPuts; got != before+1 {
		t.Fatalf("offset slice was pooled (foreign puts %d, want %d)", got, before+1)
	}
}

func TestPutAcceptsShortenedSlice(t *testing.T) {
	// A slice trimmed from the front of a class buffer keeps its base
	// pointer when only the length changed; Put re-slices to cap.
	b := Get(2048)
	Put(b[:10])
	c := Get(2048)
	if cap(c) != cap(b) {
		t.Fatalf("cap changed after Put of shortened slice: %d vs %d", cap(c), cap(b))
	}
	Put(c)
}

func TestReuse(t *testing.T) {
	// Not guaranteed by sync.Pool in general, but single-goroutine
	// Get-after-Put of the same class reuses the buffer in practice.
	b := Get(4096)
	b[0] = 0xAB
	Put(b)
	c := Get(4096)
	Put(c)
}

func TestLeakCheck(t *testing.T) {
	lc := StartLeakCheck()
	defer lc.Stop()

	a := Get(512)
	b := Get(2048)
	if got := lc.Outstanding(); got != 2 {
		t.Fatalf("outstanding = %d, want 2", got)
	}
	Put(a)
	if got := lc.Outstanding(); got != 1 {
		t.Fatalf("outstanding = %d, want 1", got)
	}
	Put(b)
	if got := lc.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d, want 0", got)
	}
	gets, puts := lc.Stats()
	if gets != 2 || puts != 2 {
		t.Fatalf("stats = %d gets %d puts, want 2/2", gets, puts)
	}
}

func TestLeakCheckDoublePut(t *testing.T) {
	lc := StartLeakCheck()
	defer lc.Stop()
	b := Get(512)
	Put(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic under leak check")
		}
	}()
	Put(b)
}

func TestRegisterMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	RegisterMetrics(reg)
	Put(Get(512))
	snap := reg.Snapshot()
	for _, name := range []string{"bufpool.gets", "bufpool.hits", "bufpool.misses", "bufpool.puts", "bufpool.foreign_puts", "bufpool.oversize_gets"} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("metric %q not registered", name)
		}
	}
}

func TestAllocsSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting in -short mode")
	}
	// Warm the class so the pool has a buffer, then Get/Put must not
	// allocate. (Run without -race; the race runtime adds allocations.)
	if raceEnabled {
		t.Skip("alloc counts are unreliable under -race")
	}
	Put(Get(4096))
	allocs := testing.AllocsPerRun(1000, func() {
		b := Get(4096)
		Put(b)
	})
	if allocs > 0 {
		t.Fatalf("Get/Put allocates %.1f per op in steady state", allocs)
	}
}

// TestInUseBytesGauge: the in-use gauge — the memory-pressure signal
// server-wide admission control reads — charges the full class size on
// Get, credits on an accepted Put, and never goes backwards on buffers
// the pool refuses (oversize or mangled slices stay charged/uncounted
// consistently).
func TestInUseBytesGauge(t *testing.T) {
	base := InUseBytes()

	b := Get(1000) // class 2048
	if got := InUseBytes() - base; got != 2048 {
		t.Fatalf("after Get(1000): delta = %d, want 2048", got)
	}
	c := Get(5000) // class 8192
	if got := InUseBytes() - base; got != 2048+8192 {
		t.Fatalf("after second Get: delta = %d, want %d", got, 2048+8192)
	}
	Put(b)
	Put(c)
	if got := InUseBytes() - base; got != 0 {
		t.Fatalf("after Puts: delta = %d, want 0", got)
	}

	// An oversize buffer never touches the gauge: Get falls back to a
	// plain allocation and Put drops it as foreign.
	big := Get(classes[numClasses-1] + 1)
	if got := InUseBytes() - base; got != 0 {
		t.Fatalf("oversize Get charged the gauge: delta = %d", got)
	}
	Put(big)
	if got := InUseBytes() - base; got != 0 {
		t.Fatalf("oversize Put credited the gauge: delta = %d", got)
	}

	// A pooled buffer whose base pointer was lost is rejected by Put and
	// stays charged — lost memory must keep counting against the budget.
	d := Get(512)
	Put(d[5:])
	if got := InUseBytes() - base; got != int64(classes[0]) {
		t.Fatalf("rejected Put changed the charge: delta = %d, want %d", got, classes[0])
	}
	Put(d) // clean up: restore the gauge for later tests
	if got := InUseBytes() - base; got != 0 {
		t.Fatalf("cleanup Put: delta = %d, want 0", got)
	}
}
