// Package netsim is a real-time packet network emulator: hosts with
// dual-stack addresses, point-to-point links with configurable bandwidth,
// propagation delay, queueing and loss, and middleboxes that rewrite the
// serialized segments flowing through a link.
//
// It plays the role of the IPMininet testbed used in the TCPLS paper's
// evaluation (§3.2): the Figure 4 topology — a client and a server joined
// by one IPv4-only and one IPv6-only path at 30 Mbps — is a dozen lines of
// netsim calls. A global time scale shrinks every delay and transmission
// time by the same factor, so a 16-second experiment can run in a few
// seconds of wall-clock time without changing protocol behaviour; results
// are reported in virtual time.
package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
	"github.com/pluginized-protocols/gotcpls/internal/timingwheel"
	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// Network is a collection of hosts and links sharing one time scale.
type Network struct {
	scale float64
	start time.Time
	done  chan struct{}

	// wheel is the network's hierarchical timing wheel: every emulated
	// timer — loopback delivery, retransmission, TIME-WAIT, dial
	// timeouts, fault schedules — is a node on it, so an emulation with
	// thousands of connections costs one driver goroutine and zero
	// allocation per (re)arm instead of a runtime timer per event.
	wheel *timingwheel.Wheel

	// tele receives structured link events (queue growth, drops by
	// cause). Atomic so it can be attached while traffic flows; a nil
	// tracer is disabled at zero cost.
	tele atomic.Pointer[telemetry.Tracer]

	mu    sync.Mutex
	hosts map[string]*Host
	links []*Link
	trace func(TraceEvent)
	rng   *rand.Rand
	seed  int64
}

// Option configures a Network.
type Option func(*Network)

// WithTimeScale sets the time-compression factor: every emulated duration
// d takes d*scale of wall-clock time. scale=1 is real time; scale=0.25
// runs four times faster. Values below ~0.05 exceed timer resolution at
// high packet rates and distort bandwidth emulation.
func WithTimeScale(scale float64) Option {
	return func(n *Network) {
		if scale > 0 {
			n.scale = scale
		}
	}
}

// WithSeed seeds the network's RNG (loss draws), making runs reproducible.
// The seed is retained and reported by Seed so a failing run can log the
// exact value needed to replay it.
func WithSeed(seed int64) Option {
	return func(n *Network) {
		n.rng = rand.New(rand.NewSource(seed))
		n.seed = seed
	}
}

// WithTrace installs a callback invoked for every packet event. Used by
// the tcpdump-like tracer in cmd/tcpls-trace and by tests.
func WithTrace(fn func(TraceEvent)) Option {
	return func(n *Network) { n.trace = fn }
}

// WithTracer attaches a structured telemetry tracer; see SetTracer.
func WithTracer(t *telemetry.Tracer) Option {
	return func(n *Network) { n.tele.Store(t) }
}

// New creates an empty network.
func New(opts ...Option) *Network {
	n := &Network{
		scale: 1.0,
		start: time.Now(),
		done:  make(chan struct{}),
		hosts: make(map[string]*Host),
		rng:   rand.New(rand.NewSource(1)),
		seed:  1,
	}
	for _, o := range opts {
		o(n)
	}
	// 50µs tick: fine enough that the loopback delivery delay (50µs)
	// lands on the first slot instead of being rounded up, coarse
	// enough that an idle wheel wakes rarely. Started eagerly so the
	// driver goroutine is part of a test's settled baseline.
	n.wheel = timingwheel.New(50 * time.Microsecond).Start()
	return n
}

// Close stops the network's link-delivery goroutines. Hosts and stacks
// attached to the network stop receiving packets.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case <-n.done:
	default:
		close(n.done)
		n.wheel.StopDriver()
	}
}

// Scale returns the configured time-compression factor.
func (n *Network) Scale() float64 { return n.scale }

// Seed returns the RNG seed the network was created with (1 unless
// WithSeed overrode it). Chaos and loss tests log it on failure so the
// run can be replayed exactly.
func (n *Network) Seed() int64 { return n.seed }

// Now returns the current wall-clock time. Durations measured between two
// Now calls are wall-clock; divide by Scale (or use VirtualSince) to get
// emulated time.
func (n *Network) Now() time.Time { return time.Now() }

// VirtualSince converts wall-clock elapsed time since t into emulated
// (virtual) time.
func (n *Network) VirtualSince(t time.Time) time.Duration {
	return time.Duration(float64(time.Since(t)) / n.scale)
}

// VirtualNow returns the virtual time elapsed since the network was
// created — the shared clock for telemetry tracers, so events stamped
// by different endpoints land on one timeline.
func (n *Network) VirtualNow() time.Duration {
	return n.VirtualSince(n.start)
}

// SetTracer attaches (or with nil detaches) the structured telemetry
// tracer that receives link-level events: drops by cause and queue
// high-water marks. Distinct from WithTrace, which sees every packet;
// the telemetry tracer sees only the events experiments assert on.
func (n *Network) SetTracer(t *telemetry.Tracer) { n.tele.Store(t) }

func (n *Network) tracer() *telemetry.Tracer { return n.tele.Load() }

// ScaleDuration converts an emulated duration into the wall-clock
// duration it should take under the current time scale.
func (n *Network) ScaleDuration(d time.Duration) time.Duration {
	return time.Duration(float64(d) * n.scale)
}

// AfterFunc schedules f after emulated duration d (scaled to wall time)
// on the network's timing wheel. The callback runs on the wheel's driver
// goroutine; it must not block.
func (n *Network) AfterFunc(d time.Duration, f func()) *timingwheel.Timer {
	return n.wheel.AfterFunc(n.ScaleDuration(d), f)
}

// Schedule (re)arms the caller-owned timer t to run f after emulated
// duration d. Embedding the Timer in a connection and rearming it in
// place makes periodic timers (retransmission, persist) allocation-free.
func (n *Network) Schedule(t *timingwheel.Timer, d time.Duration, f func()) *timingwheel.Timer {
	return n.wheel.Schedule(t, n.ScaleDuration(d), f)
}

// WallSchedule (re)arms t after *unscaled* wall-clock duration d. Used
// for real-time deadlines (Set{Read,Write}Deadline): compressing those
// with the emulation scale would fire them early and break the contract
// that a deadline is an absolute wall-clock instant.
func (n *Network) WallSchedule(t *timingwheel.Timer, d time.Duration, f func()) *timingwheel.Timer {
	return n.wheel.Schedule(t, d, f)
}

// Sleep blocks for emulated duration d.
func (n *Network) Sleep(d time.Duration) { time.Sleep(n.ScaleDuration(d)) }

// Host creates (or returns) the named host.
func (n *Network) Host(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hosts[name]; ok {
		return h
	}
	h := &Host{
		name:     name,
		net:      n,
		handlers: make(map[uint8]func(*wire.Packet)),
	}
	n.hosts[name] = h
	return h
}

func (n *Network) emit(ev TraceEvent) {
	if n.trace != nil {
		ev.Time = n.VirtualSince(n.start)
		n.trace(ev)
	}
}

func (n *Network) lossDraw() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64()
}

// Host is an emulated end system: a set of addresses, a route table, and
// per-protocol packet handlers (the attachment points for the userspace
// TCP and UDP stacks).
type Host struct {
	name string
	net  *Network

	mu       sync.Mutex
	addrs    []netip.Addr
	routes   []route
	handlers map[uint8]func(*wire.Packet)
}

type route struct {
	prefix netip.Prefix
	end    *LinkEnd
}

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// Network returns the network the host belongs to.
func (h *Host) Network() *Network { return h.net }

// AddAddr assigns an additional address to the host.
func (h *Host) AddAddr(a netip.Addr) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, x := range h.addrs {
		if x == a {
			return
		}
	}
	h.addrs = append(h.addrs, a)
}

// Addrs returns a copy of the host's addresses.
func (h *Host) Addrs() []netip.Addr {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]netip.Addr(nil), h.addrs...)
}

// HasAddr reports whether a is one of the host's addresses.
func (h *Host) HasAddr(a netip.Addr) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, x := range h.addrs {
		if x == a {
			return true
		}
	}
	return false
}

// AddRoute installs prefix -> link-end into the route table. Longest
// prefix wins; ties go to the most recently added route.
func (h *Host) AddRoute(prefix netip.Prefix, end *LinkEnd) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.routes = append(h.routes, route{prefix, end})
}

func (h *Host) lookupRoute(dst netip.Addr) *LinkEnd {
	h.mu.Lock()
	defer h.mu.Unlock()
	var best *LinkEnd
	bestLen := -1
	for i := range h.routes {
		r := &h.routes[i]
		if r.prefix.Contains(dst) && r.prefix.Bits() >= bestLen {
			best, bestLen = r.end, r.prefix.Bits()
		}
	}
	return best
}

// Register installs the handler for a transport protocol number. Packets
// addressed to this host with that protocol are delivered to it (on the
// link's delivery goroutine — handlers must not block for long).
func (h *Host) Register(proto uint8, fn func(*wire.Packet)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.handlers[proto] = fn
}

// Send routes the packet: locally if dst is one of the host's own
// addresses, otherwise via the route table. It returns an error if no
// route matches — emulating an unreachable network.
func (h *Host) Send(p *wire.Packet) error {
	if h.HasAddr(p.Dst) {
		h.net.emit(TraceEvent{Kind: "loop", Host: h.name, Packet: p})
		// Asynchronous like a real loopback interface: protocol handlers
		// may send while holding their own locks.
		h.net.AfterFunc(50*time.Microsecond, func() { h.deliver(p) })
		return nil
	}
	end := h.lookupRoute(p.Dst)
	if end == nil {
		return fmt.Errorf("netsim: %s: no route to %s", h.name, p.Dst)
	}
	end.transmit(p)
	return nil
}

// SendBatch routes a burst of packets sharing one destination — the
// common shape of an ACK-clocked TCP flight — with a single route lookup
// and a single pass through the link queue. On error (no route) the
// caller keeps ownership of every packet's payload buffer; on success
// ownership moves into the network as with Send.
func (h *Host) SendBatch(pkts []*wire.Packet) error {
	if len(pkts) == 0 {
		return nil
	}
	dst := pkts[0].Dst
	if h.HasAddr(dst) {
		for _, p := range pkts {
			h.net.emit(TraceEvent{Kind: "loop", Host: h.name, Packet: p})
			q := p
			h.net.AfterFunc(50*time.Microsecond, func() { h.deliver(q) })
		}
		return nil
	}
	end := h.lookupRoute(dst)
	if end == nil {
		return fmt.Errorf("netsim: %s: no route to %s", h.name, dst)
	}
	end.transmitBatch(pkts)
	return nil
}

// deliver hands a packet that has arrived at this host to the protocol
// handler.
func (h *Host) deliver(p *wire.Packet) {
	h.mu.Lock()
	fn := h.handlers[p.Proto]
	h.mu.Unlock()
	if fn != nil {
		fn(p)
	}
}

// TraceEvent describes a packet event for tracing.
type TraceEvent struct {
	Time   time.Duration // virtual time since network creation
	Kind   string        // "send", "recv", "drop-queue", "drop-loss", "drop-mbox", "drop-down", "drop-stall", "inject", "loop"
	Host   string        // receiving or sending host (delivery events)
	Link   string        // link name (link events)
	Packet *wire.Packet
}

// String renders the event in a tcpdump-like single line.
func (e TraceEvent) String() string {
	where := e.Link
	if where == "" {
		where = e.Host
	}
	desc := ""
	if e.Packet != nil {
		desc = e.Packet.String()
		if e.Packet.Proto == wire.ProtoTCP {
			if seg, err := wire.UnmarshalSegment(e.Packet.Payload, e.Packet.Src, e.Packet.Dst, false); err == nil {
				desc = fmt.Sprintf("%s > %s: %s", e.Packet.Src, e.Packet.Dst, seg)
			}
		}
	}
	return fmt.Sprintf("%12s %-10s %-12s %s", e.Time.Truncate(time.Microsecond), e.Kind, where, desc)
}
