package netsim

import (
	"net/netip"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

var natPublic = netip.MustParseAddr("192.0.2.1")

// procOne runs one packet through a middlebox and asserts exactly one
// forwarded packet comes out.
func procOne(t *testing.T, m Middlebox, p *wire.Packet, dir Direction) *wire.Packet {
	t.Helper()
	fwd, _ := m.Process(p, dir)
	if len(fwd) != 1 {
		t.Fatalf("Process forwarded %d packets, want 1", len(fwd))
	}
	return fwd[0]
}

// parseChecked unmarshals with checksum verification — every rewritten
// packet must carry a checksum valid under its (possibly rewritten)
// pseudo-header.
func parseChecked(t *testing.T, p *wire.Packet) *wire.Segment {
	t.Helper()
	seg, err := wire.UnmarshalSegment(p.Payload, p.Src, p.Dst, true)
	if err != nil {
		t.Fatalf("rewritten packet does not parse: %v", err)
	}
	return seg
}

func TestStatefulNATTranslatesAndReverses(t *testing.T) {
	nat := &StatefulNAT{Inside: cAddr, Outside: natPublic, Dir: AtoB, Seed: 1}
	out := &wire.Segment{SrcPort: 1000, DstPort: 443, Flags: wire.FlagSYN}
	p := procOne(t, nat, tcpPacket(cAddr, sAddr, out), AtoB)
	if p.Src != natPublic {
		t.Fatalf("src not translated: %s", p.Src)
	}
	seg := parseChecked(t, p)
	if seg.SrcPort == 1000 {
		t.Fatal("source port not translated")
	}
	extPort := seg.SrcPort

	// Reply to the external tuple must reverse-translate.
	reply := &wire.Segment{SrcPort: 443, DstPort: extPort, Flags: wire.FlagSYN | wire.FlagACK}
	q := procOne(t, nat, tcpPacket(sAddr, natPublic, reply), BtoA)
	if q.Dst != cAddr {
		t.Fatalf("reply dst not reversed: %s", q.Dst)
	}
	rseg := parseChecked(t, q)
	if rseg.DstPort != 1000 {
		t.Fatalf("reply port not reversed: %d", rseg.DstPort)
	}

	// A second outbound packet of the same flow keeps the same mapping.
	p2 := procOne(t, nat, tcpPacket(cAddr, sAddr, &wire.Segment{SrcPort: 1000, DstPort: 443, Flags: wire.FlagACK}), AtoB)
	if got := parseChecked(t, p2).SrcPort; got != extPort {
		t.Fatalf("mapping not stable: %d != %d", got, extPort)
	}
	if nat.Rebinds() != 0 {
		t.Fatalf("Rebinds() = %d, want 0", nat.Rebinds())
	}
}

func TestStatefulNATRebindsAfterExpiry(t *testing.T) {
	// Scale 0.001: 1ms wall = 1s virtual, so tiny sleeps expire mappings.
	n := New(WithTimeScale(0.001))
	defer n.Close()
	nat := &StatefulNAT{
		Inside: cAddr, Outside: natPublic, Dir: AtoB,
		Net: n, IdleTimeout: 2 * time.Second, Seed: 7,
	}
	seg := func() *wire.Segment { return &wire.Segment{SrcPort: 1000, DstPort: 443, Flags: wire.FlagACK} }
	first := parseChecked(t, procOne(t, nat, tcpPacket(cAddr, sAddr, seg()), AtoB)).SrcPort

	time.Sleep(10 * time.Millisecond) // ~10s virtual, past the idle timeout

	second := parseChecked(t, procOne(t, nat, tcpPacket(cAddr, sAddr, seg()), AtoB)).SrcPort
	if nat.Rebinds() != 1 {
		t.Fatalf("Rebinds() = %d, want 1", nat.Rebinds())
	}
	if first == second {
		t.Fatalf("rebind kept the same external port %d", first)
	}

	// Inbound to the stale mapping must be dropped.
	stale := &wire.Segment{SrcPort: 443, DstPort: first, Flags: wire.FlagACK}
	fwd, _ := nat.Process(tcpPacket(sAddr, natPublic, stale), BtoA)
	if len(fwd) != 0 {
		t.Fatal("packet to stale mapping was forwarded")
	}
	if nat.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", nat.Dropped())
	}
}

func TestStatefulFirewallRequiresOutboundSYN(t *testing.T) {
	fw := &StatefulFirewall{Inside: AtoB}
	// Unsolicited inbound: dropped.
	in := &wire.Segment{SrcPort: 443, DstPort: 1000, Flags: wire.FlagSYN}
	if fwd, _ := fw.Process(tcpPacket(sAddr, cAddr, in), BtoA); len(fwd) != 0 {
		t.Fatal("unsolicited inbound SYN passed")
	}
	// Outbound non-SYN without state: dropped (strict firewall).
	data := &wire.Segment{SrcPort: 1000, DstPort: 443, Flags: wire.FlagACK, Payload: []byte("x")}
	if fwd, _ := fw.Process(tcpPacket(cAddr, sAddr, data), AtoB); len(fwd) != 0 {
		t.Fatal("outbound data without state passed")
	}
	// Outbound SYN creates state; then both directions flow.
	syn := &wire.Segment{SrcPort: 1000, DstPort: 443, Flags: wire.FlagSYN}
	procOne(t, fw, tcpPacket(cAddr, sAddr, syn), AtoB)
	synack := &wire.Segment{SrcPort: 443, DstPort: 1000, Flags: wire.FlagSYN | wire.FlagACK}
	procOne(t, fw, tcpPacket(sAddr, cAddr, synack), BtoA)
	procOne(t, fw, tcpPacket(cAddr, sAddr, data), AtoB)
	if fw.Flows() != 1 {
		t.Fatalf("Flows() = %d, want 1", fw.Flows())
	}
	if fw.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", fw.Dropped())
	}
}

func TestStatefulFirewallStateTTLBlackholes(t *testing.T) {
	n := New(WithTimeScale(0.001))
	defer n.Close()
	fw := &StatefulFirewall{Inside: AtoB, Net: n, StateTTL: 2 * time.Second}
	syn := &wire.Segment{SrcPort: 1000, DstPort: 443, Flags: wire.FlagSYN}
	procOne(t, fw, tcpPacket(cAddr, sAddr, syn), AtoB)

	time.Sleep(10 * time.Millisecond) // past the TTL

	// Mid-connection data is now silently blackholed in both directions.
	data := &wire.Segment{SrcPort: 1000, DstPort: 443, Flags: wire.FlagACK, Payload: []byte("x")}
	if fwd, _ := fw.Process(tcpPacket(cAddr, sAddr, data), AtoB); len(fwd) != 0 {
		t.Fatal("data passed after state TTL")
	}
	rev := &wire.Segment{SrcPort: 443, DstPort: 1000, Flags: wire.FlagACK, Payload: []byte("y")}
	if fwd, _ := fw.Process(tcpPacket(sAddr, cAddr, rev), BtoA); len(fwd) != 0 {
		t.Fatal("reverse data passed after state TTL")
	}
	// A fresh SYN recreates state.
	procOne(t, fw, tcpPacket(cAddr, sAddr, syn), AtoB)
	procOne(t, fw, tcpPacket(cAddr, sAddr, data), AtoB)
}

func TestStatefulFirewallAsymmetricIdleExpiry(t *testing.T) {
	n := New(WithTimeScale(0.001))
	defer n.Close()
	fw := &StatefulFirewall{Inside: AtoB, Net: n, IdleTimeout: 2 * time.Second}
	syn := &wire.Segment{SrcPort: 1000, DstPort: 443, Flags: wire.FlagSYN}
	procOne(t, fw, tcpPacket(cAddr, sAddr, syn), AtoB)

	// Keep only the outbound direction warm past the reverse idle window.
	for i := 0; i < 4; i++ {
		time.Sleep(time.Millisecond)
		out := &wire.Segment{SrcPort: 1000, DstPort: 443, Flags: wire.FlagACK}
		procOne(t, fw, tcpPacket(cAddr, sAddr, out), AtoB)
	}
	time.Sleep(time.Millisecond)

	// The reverse direction's state has idled out: inbound drops while
	// outbound still flows — the asymmetric failure mode.
	rev := &wire.Segment{SrcPort: 443, DstPort: 1000, Flags: wire.FlagACK, Payload: []byte("y")}
	if fwd, _ := fw.Process(tcpPacket(sAddr, cAddr, rev), BtoA); len(fwd) != 0 {
		t.Fatal("idle reverse direction still passes")
	}
	out := &wire.Segment{SrcPort: 1000, DstPort: 443, Flags: wire.FlagACK, Payload: []byte("x")}
	procOne(t, fw, tcpPacket(cAddr, sAddr, out), AtoB)
}

func TestStatefulFirewallRSTOnEvict(t *testing.T) {
	fw := &StatefulFirewall{Inside: AtoB, RSTOnEvict: true}
	data := &wire.Segment{SrcPort: 1000, DstPort: 443, Seq: 50, Ack: 60, Flags: wire.FlagACK, Payload: []byte("x")}
	fwd, rev := fw.Process(tcpPacket(cAddr, sAddr, data), AtoB)
	if len(fwd) != 0 {
		t.Fatal("stateless data passed")
	}
	if len(rev) != 1 {
		t.Fatalf("want 1 forged RST toward sender, got %d", len(rev))
	}
	rst := parseChecked(t, rev[0])
	if !rst.Flags.Has(wire.FlagRST) {
		t.Fatalf("injected packet is not a RST: %s", rst.Flags)
	}
}

func TestSpliceProxyRewritesSeqSpacesConsistently(t *testing.T) {
	sp := &SpliceProxy{Dir: AtoB, Seed: 3}
	// Client SYN, ISNc = 100.
	syn := &wire.Segment{SrcPort: 1000, DstPort: 443, Seq: 100, Flags: wire.FlagSYN}
	outSYN := parseChecked(t, procOne(t, sp, tcpPacket(cAddr, sAddr, syn), AtoB))
	dFwd := outSYN.Seq - 100
	if dFwd == 0 {
		t.Fatal("proxy did not re-originate the client sequence space")
	}
	// Server SYN|ACK against the shifted ISN: seq = 200, ack = shifted+1.
	synack := &wire.Segment{SrcPort: 443, DstPort: 1000, Seq: 200, Ack: outSYN.Seq + 1, Flags: wire.FlagSYN | wire.FlagACK}
	outSA := parseChecked(t, procOne(t, sp, tcpPacket(sAddr, cAddr, synack), BtoA))
	dRev := outSA.Seq - 200
	if dRev == 0 {
		t.Fatal("proxy did not re-originate the server sequence space")
	}
	// The client must see an ack consistent with ITS sequence space.
	if outSA.Ack != 101 {
		t.Fatalf("client-side ack = %d, want 101", outSA.Ack)
	}
	// Client data seq=101 ack=shifted server seq+1.
	data := &wire.Segment{SrcPort: 1000, DstPort: 443, Seq: 101, Ack: outSA.Seq + 1, Flags: wire.FlagACK, Payload: []byte("hello")}
	outData := parseChecked(t, procOne(t, sp, tcpPacket(cAddr, sAddr, data), AtoB))
	if outData.Seq != 101+dFwd {
		t.Fatalf("data seq = %d, want %d", outData.Seq, 101+dFwd)
	}
	if outData.Ack != 201 {
		t.Fatalf("server-side ack = %d, want 201", outData.Ack)
	}
	// Server SACK blocks live in the client's (shifted) space and must be
	// shifted back for the client.
	sack := &wire.Segment{SrcPort: 443, DstPort: 1000, Seq: 201, Ack: 101 + dFwd, Flags: wire.FlagACK,
		Options: []wire.Option{wire.SACKOption([]wire.SACKBlock{{Left: 110 + dFwd, Right: 120 + dFwd}})}}
	outSACK := parseChecked(t, procOne(t, sp, tcpPacket(sAddr, cAddr, sack), BtoA))
	blocks, ok := wire.FindOption(outSACK.Options, wire.OptKindSACK).SACKBlocks()
	if !ok || len(blocks) != 1 {
		t.Fatalf("SACK blocks lost: %v", outSACK.Options)
	}
	if blocks[0].Left != 110 || blocks[0].Right != 120 {
		t.Fatalf("SACK not unshifted: %v", blocks[0])
	}
	if outSACK.Ack != 101 {
		t.Fatalf("SACK carrier ack = %d, want 101", outSACK.Ack)
	}
	if sp.Splits() != 1 {
		t.Fatalf("Splits() = %d, want 1", sp.Splits())
	}
}

func TestSpliceProxyStripsAndClampsSYNOptions(t *testing.T) {
	sp := &SpliceProxy{Dir: AtoB, Seed: 3, StripOptions: []uint8{wire.OptKindUserTimeout}, MSSClamp: 1200}
	syn := &wire.Segment{SrcPort: 1000, DstPort: 443, Seq: 1, Flags: wire.FlagSYN,
		Options: []wire.Option{wire.MSSOption(1460), wire.UserTimeoutOption(30 * time.Second)}}
	out := parseChecked(t, procOne(t, sp, tcpPacket(cAddr, sAddr, syn), AtoB))
	if wire.FindOption(out.Options, wire.OptKindUserTimeout) != nil {
		t.Fatal("user-timeout option survived the proxy")
	}
	mssOpt := wire.FindOption(out.Options, wire.OptKindMSS)
	if mssOpt == nil {
		t.Fatal("MSS option lost")
	}
	if mss, _ := mssOpt.MSS(); mss != 1200 {
		t.Fatalf("MSS = %d, want clamped 1200", mss)
	}
}

// buildClientHello constructs a minimal TLS ClientHello record carrying
// the given extension types (all empty).
func buildClientHello(exts ...uint16) []byte {
	var body []byte
	be16 := func(v uint16) []byte { return []byte{byte(v >> 8), byte(v)} }
	body = append(body, 0x03, 0x03)          // legacy_version
	body = append(body, make([]byte, 32)...) // random
	body = append(body, 0x00)                // session_id
	body = append(body, be16(2)...)          // cipher_suites len
	body = append(body, 0x13, 0x01)          // TLS_AES_128_GCM_SHA256
	body = append(body, 0x01, 0x00)          // compression_methods
	var extBlock []byte
	for _, e := range exts {
		extBlock = append(extBlock, be16(e)...)
		extBlock = append(extBlock, be16(0)...) // empty extension
	}
	body = append(body, be16(uint16(len(extBlock)))...)
	body = append(body, extBlock...)

	hs := append([]byte{0x01, 0x00, byte(len(body) >> 8), byte(len(body))}, body...)
	rec := append([]byte{0x16, 0x03, 0x01, byte(len(hs) >> 8), byte(len(hs))}, hs...)
	return rec
}

// extTypes walks the hello built by buildClientHello and returns the
// extension types present.
func extTypes(payload []byte) []uint16 {
	// header layout mirrors buildClientHello
	i := 5 + 4 + 2 + 32
	i += 1 + int(payload[i])                                 // session_id
	i += 2 + int(payload[i])<<8 + int(payload[i+1])          // cipher_suites
	i += 1 + int(payload[i])                                 // compression
	extEnd := i + 2 + int(payload[i])<<8 + int(payload[i+1]) // extensions
	i += 2
	var types []uint16
	for i+4 <= extEnd {
		types = append(types, uint16(payload[i])<<8|uint16(payload[i+1]))
		i += 4 + int(payload[i+2])<<8 + int(payload[i+3])
	}
	return types
}

func TestHelloExtensionManglerRewritesTargetInPlace(t *testing.T) {
	m := &HelloExtensionMangler{}
	ch := buildClientHello(0x002b, 0xff5c, 0x000a)
	seg := &wire.Segment{SrcPort: 1000, DstPort: 443, Seq: 1, Flags: wire.FlagACK | wire.FlagPSH, Payload: ch}
	out := parseChecked(t, procOne(t, m, tcpPacket(cAddr, sAddr, seg), AtoB))
	if len(out.Payload) != len(ch) {
		t.Fatalf("mangler changed payload length: %d -> %d", len(ch), len(out.Payload))
	}
	types := extTypes(out.Payload)
	for _, typ := range types {
		if typ == 0xff5c {
			t.Fatal("TCPLS extension type survived")
		}
	}
	found := false
	for _, typ := range types {
		if typ == 0x8a8a {
			found = true
		}
	}
	if !found {
		t.Fatalf("GREASE replacement missing: %04x", types)
	}
	if m.Mangled() != 1 {
		t.Fatalf("Mangled() = %d, want 1", m.Mangled())
	}

	// Later segments of the same flow pass untouched (only the first can
	// hold the ClientHello).
	later := &wire.Segment{SrcPort: 1000, DstPort: 443, Seq: 500, Flags: wire.FlagACK, Payload: buildClientHello(0xff5c)}
	out2 := parseChecked(t, procOne(t, m, tcpPacket(cAddr, sAddr, later), AtoB))
	if got := extTypes(out2.Payload); got[0] != 0xff5c {
		t.Fatal("mangler rewrote a non-first segment")
	}
}

func TestHelloExtensionManglerSkipFlows(t *testing.T) {
	m := &HelloExtensionMangler{SkipFlows: 1}
	mk := func(port uint16) *wire.Packet {
		return tcpPacket(cAddr, sAddr, &wire.Segment{SrcPort: port, DstPort: 443,
			Flags: wire.FlagACK | wire.FlagPSH, Payload: buildClientHello(0xff5c)})
	}
	out1 := parseChecked(t, procOne(t, m, mk(1000), AtoB))
	if extTypes(out1.Payload)[0] != 0xff5c {
		t.Fatal("first flow was mangled despite SkipFlows")
	}
	out2 := parseChecked(t, procOne(t, m, mk(1001), AtoB))
	if extTypes(out2.Payload)[0] == 0xff5c {
		t.Fatal("second flow was not mangled")
	}
}

func TestProtoBlocker(t *testing.T) {
	b := &ProtoBlocker{Protos: []uint8{wire.ProtoUDP}}
	udp := &wire.Packet{Src: cAddr, Dst: sAddr, Proto: wire.ProtoUDP, TTL: 64,
		Payload: (&wire.Datagram{SrcPort: 1, DstPort: 2}).Marshal(cAddr, sAddr)}
	if fwd, _ := b.Process(udp, AtoB); len(fwd) != 0 {
		t.Fatal("blocked protocol forwarded")
	}
	procOne(t, b, tcpPacket(cAddr, sAddr, dataSeg(1)), AtoB)
	if b.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", b.Dropped())
	}
}

func TestStatefulNATTranslatesUDP(t *testing.T) {
	nat := &StatefulNAT{Inside: cAddr, Outside: natPublic, Dir: AtoB, Seed: 5}
	d := &wire.Datagram{SrcPort: 5000, DstPort: 443, Payload: []byte("quic")}
	p := &wire.Packet{Src: cAddr, Dst: sAddr, Proto: wire.ProtoUDP, TTL: 64, Payload: d.Marshal(cAddr, sAddr)}
	out := procOne(t, nat, p, AtoB)
	od, err := wire.UnmarshalDatagram(out.Payload)
	if err != nil {
		t.Fatalf("translated datagram does not parse: %v", err)
	}
	if out.Src != natPublic || od.SrcPort == 5000 {
		t.Fatalf("UDP not translated: %s:%d", out.Src, od.SrcPort)
	}
	reply := &wire.Datagram{SrcPort: 443, DstPort: od.SrcPort, Payload: []byte("ack")}
	q := procOne(t, nat, &wire.Packet{Src: sAddr, Dst: natPublic, Proto: wire.ProtoUDP, TTL: 64,
		Payload: reply.Marshal(sAddr, natPublic)}, BtoA)
	rd, err := wire.UnmarshalDatagram(q.Payload)
	if err != nil {
		t.Fatalf("reversed datagram does not parse: %v", err)
	}
	if q.Dst != cAddr || rd.DstPort != 5000 {
		t.Fatalf("UDP reply not reversed: %s:%d", q.Dst, rd.DstPort)
	}
}
