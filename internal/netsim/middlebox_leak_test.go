package netsim

import (
	"net/netip"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// TestMiddleboxChainReleasesPooledBuffers audits bufpool ownership on the
// middlebox rewrite path: every packet entering a chain with a pooled
// payload must have that payload returned to the pool whether the chain
// forwards it (possibly rewritten), drops it, or injects extra packets.
// The receiving handler owns delivered payloads and Puts them, so at
// drain the outstanding count must be zero.
func TestMiddleboxChainReleasesPooledBuffers(t *testing.T) {
	lc := bufpool.StartLeakCheck()
	defer lc.Stop()

	n := New(WithSeed(11))
	defer n.Close()
	a, b := n.Host("a"), n.Host("b")
	public := netip.MustParseAddr("10.0.0.77")
	link := n.AddLink(a, b, cAddr, sAddr, LinkConfig{Delay: time.Millisecond})
	// A realistic gauntlet: strip options, NAT-translate, then firewall.
	// The firewall drops anything that is not part of a SYN-initiated
	// flow, exercising the drop path's buffer ownership too.
	link.Use(
		&OptionStripper{Kinds: []uint8{wire.OptKindSACKPermitted}},
		&StatefulNAT{Inside: cAddr, Outside: public, Dir: AtoB, Net: n, Seed: 11},
		&StatefulFirewall{Inside: AtoB, RSTOnEvict: true},
	)

	got := make(chan *wire.Packet, 64)
	// Handlers own the payloads they are handed; for GC-backed rewritten
	// clones the Put is a no-op foreign Put, for pooled buffers it is the
	// release the leak check demands.
	b.Register(wire.ProtoTCP, func(p *wire.Packet) {
		bufpool.Put(p.Payload)
		got <- p
	})
	a.Register(wire.ProtoTCP, func(p *wire.Packet) {
		bufpool.Put(p.Payload)
	})

	send := func(seg *wire.Segment) {
		raw, err := seg.Marshal(cAddr, sAddr)
		if err != nil {
			t.Fatal(err)
		}
		// Pooled payload: ownership transfers to the network on Send.
		payload := bufpool.Get(len(raw))
		copy(payload, raw)
		if err := a.Send(&wire.Packet{Src: cAddr, Dst: sAddr, Proto: wire.ProtoTCP, TTL: 64, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}

	// SYN passes (creates firewall state), data passes, and a packet from
	// an unknown flow is dropped by the firewall (plus a forged RST back).
	send(&wire.Segment{SrcPort: 1000, DstPort: 443, Flags: wire.FlagSYN,
		Options: []wire.Option{wire.MSSOption(1460), wire.SACKPermittedOption()}})
	send(&wire.Segment{SrcPort: 1000, DstPort: 443, Seq: 1, Flags: wire.FlagACK, Payload: []byte("payload")})
	send(&wire.Segment{SrcPort: 2000, DstPort: 443, Seq: 1, Flags: wire.FlagACK, Payload: []byte("dropped")})

	for i := 0; i < 2; i++ {
		select {
		case <-got:
		case <-time.After(2 * time.Second):
			t.Fatalf("timeout waiting for delivery %d/2", i+1)
		}
	}
	// Let the dropped packet and reverse RST finish traversing.
	time.Sleep(50 * time.Millisecond)

	if out := lc.Outstanding(); out != 0 {
		gets, puts := lc.Stats()
		t.Fatalf("middlebox chain leaked %d pooled buffers (gets=%d puts=%d)", out, gets, puts)
	}
}
