package netsim

import (
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// TestLinkStatsDropCauses asserts that each drop path is attributed to
// its cause — the "why did my packets die" satellite.
func TestLinkStatsDropCauses(t *testing.T) {
	n := New(WithSeed(7))
	ring := telemetry.NewRingSink(1 << 12)
	n.SetTracer(telemetry.NewTracer(
		telemetry.WithEndpoint("net"),
		telemetry.WithClock(n.VirtualNow),
		telemetry.WithSink(ring),
	))
	a, b := n.Host("a"), n.Host("b")
	l := n.AddLink(a, b, cAddr, sAddr, LinkConfig{BandwidthBps: 1e6, QueueBytes: 3000})

	// Queue overflow: burst far beyond the 3 KB queue.
	for i := 0; i < 50; i++ {
		a.Send(tcpPacket(cAddr, sAddr, dataSeg(1000)))
	}
	time.Sleep(100 * time.Millisecond)
	st := l.Stats()
	if st.DropQueue == 0 {
		t.Fatalf("no queue drops recorded: %+v", st)
	}
	if st.Sent == 0 || st.Delivered == 0 {
		t.Fatalf("sent/delivered not counted: %+v", st)
	}
	if st.QueueHighWater <= 0 {
		t.Fatalf("queue high-water mark not tracked: %+v", st)
	}

	// Administrative down.
	l.SetDown(true)
	a.Send(tcpPacket(cAddr, sAddr, dataSeg(10)))
	l.SetDown(false)

	// Silent stall.
	l.SetStall(AtoB, true)
	a.Send(tcpPacket(cAddr, sAddr, dataSeg(10)))
	l.SetStall(AtoB, false)

	// Injected loss: loss=1 clamps to ~0.999999, so a handful of sends
	// statistically all drop under the seeded RNG.
	l.SetLoss(1)
	for i := 0; i < 5; i++ {
		a.Send(tcpPacket(cAddr, sAddr, dataSeg(10)))
	}
	l.SetLoss(0)
	time.Sleep(50 * time.Millisecond)

	st = l.Stats()
	if st.DropDown != 1 {
		t.Fatalf("DropDown = %d, want 1", st.DropDown)
	}
	if st.DropStall != 1 {
		t.Fatalf("DropStall = %d, want 1", st.DropStall)
	}
	if st.DropLoss == 0 {
		t.Fatalf("DropLoss = 0, want > 0")
	}
	if st.Drops() < st.DropQueue+st.DropDown+st.DropStall+st.DropLoss {
		t.Fatalf("Drops() undercounts: %+v", st)
	}

	// The same causes must be visible in the structured trace.
	var sawQueue, sawDown, sawStall, sawLoss, sawHWM bool
	for _, ev := range ring.Events() {
		if ev.S != l.Name() {
			t.Fatalf("event names wrong link: %+v", ev)
		}
		if ev.EP != "net" {
			t.Fatalf("event missing endpoint label: %+v", ev)
		}
		switch ev.Kind {
		case telemetry.EvLinkDropQueue:
			sawQueue = true
		case telemetry.EvLinkDropDown:
			sawDown = true
		case telemetry.EvLinkDropStall:
			sawStall = true
		case telemetry.EvLinkDropLoss:
			sawLoss = true
		case telemetry.EvLinkQueue:
			sawHWM = true
		}
	}
	if !sawQueue || !sawDown || !sawStall || !sawLoss || !sawHWM {
		t.Fatalf("trace missing causes: queue=%v down=%v stall=%v loss=%v hwm=%v",
			sawQueue, sawDown, sawStall, sawLoss, sawHWM)
	}
}

// TestLinkRegisterMetrics checks the pull-var export path.
func TestLinkRegisterMetrics(t *testing.T) {
	n := New()
	a, b := n.Host("a"), n.Host("b")
	l := n.AddLink(a, b, cAddr, sAddr, LinkConfig{Name: "v4"})
	reg := telemetry.NewRegistry()
	l.RegisterMetrics(reg)

	a.Send(tcpPacket(cAddr, sAddr, dataSeg(100)))
	a.Send(tcpPacket(cAddr, sAddr, dataSeg(100)))
	time.Sleep(50 * time.Millisecond)

	snap := reg.Snapshot()
	sent, ok := snap["netsim.link.v4.sent"].(int64)
	if !ok || sent < 2 {
		t.Fatalf("netsim.link.v4.sent = %v, want >= 2", snap["netsim.link.v4.sent"])
	}
}
