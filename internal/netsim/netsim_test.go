package netsim

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

var (
	cAddr  = netip.MustParseAddr("10.0.0.1")
	sAddr  = netip.MustParseAddr("10.0.0.2")
	cAddr6 = netip.MustParseAddr("fc00::1")
	sAddr6 = netip.MustParseAddr("fc00::2")
)

// collector gathers packets delivered to a host.
type collector struct {
	mu   sync.Mutex
	pkts []*wire.Packet
	ch   chan *wire.Packet
}

func newCollector(h *Host, proto uint8) *collector {
	c := &collector{ch: make(chan *wire.Packet, 1024)}
	h.Register(proto, func(p *wire.Packet) {
		c.mu.Lock()
		c.pkts = append(c.pkts, p)
		c.mu.Unlock()
		c.ch <- p
	})
	return c
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pkts)
}

func (c *collector) wait(t *testing.T, n int, d time.Duration) {
	t.Helper()
	deadline := time.After(d)
	for i := 0; i < n; i++ {
		select {
		case <-c.ch:
		case <-deadline:
			t.Fatalf("timeout waiting for packet %d/%d", i+1, n)
		}
	}
}

func tcpPacket(src, dst netip.Addr, seg *wire.Segment) *wire.Packet {
	b, err := seg.Marshal(src, dst)
	if err != nil {
		panic(err)
	}
	return &wire.Packet{Src: src, Dst: dst, Proto: wire.ProtoTCP, TTL: 64, Payload: b}
}

func dataSeg(n int) *wire.Segment {
	return &wire.Segment{SrcPort: 1000, DstPort: 2000, Flags: wire.FlagACK | wire.FlagPSH, Payload: make([]byte, n)}
}

func TestDelivery(t *testing.T) {
	n := New()
	a, b := n.Host("a"), n.Host("b")
	n.AddLink(a, b, cAddr, sAddr, LinkConfig{Delay: time.Millisecond})
	col := newCollector(b, wire.ProtoTCP)
	if err := a.Send(tcpPacket(cAddr, sAddr, dataSeg(10))); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1, time.Second)
}

func TestNoRoute(t *testing.T) {
	n := New()
	a := n.Host("a")
	a.AddAddr(cAddr)
	err := a.Send(&wire.Packet{Src: cAddr, Dst: sAddr6, Proto: wire.ProtoTCP})
	if err == nil {
		t.Fatal("expected no-route error")
	}
}

func TestLocalLoopback(t *testing.T) {
	n := New()
	a := n.Host("a")
	a.AddAddr(cAddr)
	col := newCollector(a, wire.ProtoTCP)
	if err := a.Send(tcpPacket(cAddr, cAddr, dataSeg(1))); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1, time.Second)
}

func TestPropagationDelay(t *testing.T) {
	n := New()
	a, b := n.Host("a"), n.Host("b")
	n.AddLink(a, b, cAddr, sAddr, LinkConfig{Delay: 50 * time.Millisecond})
	col := newCollector(b, wire.ProtoTCP)
	start := time.Now()
	a.Send(tcpPacket(cAddr, sAddr, dataSeg(1)))
	col.wait(t, 1, time.Second)
	if el := time.Since(start); el < 45*time.Millisecond {
		t.Fatalf("delivered in %s, want >= ~50ms", el)
	}
}

func TestTimeScaleCompressesDelay(t *testing.T) {
	n := New(WithTimeScale(0.1))
	a, b := n.Host("a"), n.Host("b")
	n.AddLink(a, b, cAddr, sAddr, LinkConfig{Delay: 500 * time.Millisecond})
	col := newCollector(b, wire.ProtoTCP)
	start := time.Now()
	a.Send(tcpPacket(cAddr, sAddr, dataSeg(1)))
	col.wait(t, 1, time.Second)
	el := time.Since(start)
	if el > 200*time.Millisecond {
		t.Fatalf("scaled delivery took %s, want ~50ms wall", el)
	}
	if v := n.VirtualSince(start); v < 400*time.Millisecond {
		t.Fatalf("virtual elapsed %s, want >= ~500ms", v)
	}
}

// TestBandwidthPacing sends a burst through a rate-limited link and checks
// the delivery rate is close to the configured bandwidth.
func TestBandwidthPacing(t *testing.T) {
	n := New()
	a, b := n.Host("a"), n.Host("b")
	// 8 Mbps -> 1 MB/s. 50 packets of ~1040B = ~52KB -> ~52ms.
	n.AddLink(a, b, cAddr, sAddr, LinkConfig{BandwidthBps: 8e6, QueueBytes: 1 << 20})
	col := newCollector(b, wire.ProtoTCP)
	const pkts = 50
	start := time.Now()
	for i := 0; i < pkts; i++ {
		a.Send(tcpPacket(cAddr, sAddr, dataSeg(1000)))
	}
	col.wait(t, pkts, 5*time.Second)
	el := time.Since(start)
	if el < 35*time.Millisecond || el > 150*time.Millisecond {
		t.Fatalf("burst drained in %s, want ~52ms", el)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	n := New()
	a, b := n.Host("a"), n.Host("b")
	// Slow link, tiny queue: most of a large burst must be dropped.
	n.AddLink(a, b, cAddr, sAddr, LinkConfig{BandwidthBps: 1e6, QueueBytes: 3000})
	col := newCollector(b, wire.ProtoTCP)
	for i := 0; i < 100; i++ {
		a.Send(tcpPacket(cAddr, sAddr, dataSeg(1000)))
	}
	time.Sleep(300 * time.Millisecond)
	if got := col.count(); got >= 100 || got == 0 {
		t.Fatalf("delivered %d of 100, want partial delivery", got)
	}
}

func TestLossDropsDeterministically(t *testing.T) {
	run := func(seed int64) int {
		n := New(WithSeed(seed))
		a, b := n.Host("a"), n.Host("b")
		n.AddLink(a, b, cAddr, sAddr, LinkConfig{Loss: 0.5})
		col := newCollector(b, wire.ProtoTCP)
		for i := 0; i < 40; i++ {
			a.Send(tcpPacket(cAddr, sAddr, dataSeg(10)))
		}
		time.Sleep(50 * time.Millisecond)
		return col.count()
	}
	const seed = 7
	a1, a2 := run(seed), run(seed)
	if a1 != a2 {
		t.Fatalf("WithSeed(%d): same seed, different outcomes: %d vs %d", seed, a1, a2)
	}
	if a1 == 0 || a1 == 40 {
		t.Fatalf("WithSeed(%d): loss=0.5 delivered %d/40", seed, a1)
	}
}

func TestLinkDown(t *testing.T) {
	n := New()
	a, b := n.Host("a"), n.Host("b")
	l := n.AddLink(a, b, cAddr, sAddr, LinkConfig{})
	col := newCollector(b, wire.ProtoTCP)
	l.SetDown(true)
	a.Send(tcpPacket(cAddr, sAddr, dataSeg(1)))
	time.Sleep(20 * time.Millisecond)
	if col.count() != 0 {
		t.Fatal("packet crossed a down link")
	}
	l.SetDown(false)
	a.Send(tcpPacket(cAddr, sAddr, dataSeg(1)))
	col.wait(t, 1, time.Second)
}

func TestDualStackRouting(t *testing.T) {
	n := New()
	a, b := n.Host("a"), n.Host("b")
	var via4, via6 atomic.Int32
	l4 := n.AddLink(a, b, cAddr, sAddr, LinkConfig{Name: "v4"})
	l6 := n.AddLink(a, b, cAddr6, sAddr6, LinkConfig{Name: "v6"})
	l4.Use(MiddleboxFunc(func(p *wire.Packet, d Direction) ([]*wire.Packet, []*wire.Packet) {
		via4.Add(1)
		return []*wire.Packet{p}, nil
	}))
	l6.Use(MiddleboxFunc(func(p *wire.Packet, d Direction) ([]*wire.Packet, []*wire.Packet) {
		via6.Add(1)
		return []*wire.Packet{p}, nil
	}))
	col := newCollector(b, wire.ProtoTCP)
	a.Send(tcpPacket(cAddr, sAddr, dataSeg(1)))
	a.Send(tcpPacket(cAddr6, sAddr6, dataSeg(1)))
	col.wait(t, 2, time.Second)
	if via4.Load() != 1 || via6.Load() != 1 {
		t.Fatalf("routing wrong: v4=%d v6=%d", via4.Load(), via6.Load())
	}
}

func TestOptionStripper(t *testing.T) {
	n := New()
	a, b := n.Host("a"), n.Host("b")
	strip := &OptionStripper{Kinds: []uint8{wire.OptKindSACKPermitted, wire.OptKindUserTimeout}}
	n.AddLink(a, b, cAddr, sAddr, LinkConfig{}).Use(strip)
	col := newCollector(b, wire.ProtoTCP)
	seg := dataSeg(5)
	seg.Flags |= wire.FlagSYN
	seg.Options = []wire.Option{wire.MSSOption(1460), wire.SACKPermittedOption(), wire.UserTimeoutOption(30 * time.Second)}
	a.Send(tcpPacket(cAddr, sAddr, seg))
	col.wait(t, 1, time.Second)
	got, err := wire.UnmarshalSegment(col.pkts[0].Payload, cAddr, sAddr, true)
	if err != nil {
		t.Fatalf("stripped segment has bad checksum: %v", err)
	}
	if len(got.Options) != 1 || got.Options[0].Kind != wire.OptKindMSS {
		t.Fatalf("surviving options: %v", got.Options)
	}
	if strip.Stripped() != 2 {
		t.Fatalf("Stripped() = %d", strip.Stripped())
	}
}

func TestRSTInjector(t *testing.T) {
	n := New()
	a, b := n.Host("a"), n.Host("b")
	inj := &RSTInjector{AfterSegments: 3, Once: true, BothDirections: true}
	n.AddLink(a, b, cAddr, sAddr, LinkConfig{}).Use(inj)
	colB := newCollector(b, wire.ProtoTCP)
	colA := newCollector(a, wire.ProtoTCP)
	for i := 0; i < 3; i++ {
		a.Send(tcpPacket(cAddr, sAddr, dataSeg(10)))
	}
	colB.wait(t, 4, time.Second) // 3 data + 1 forged RST
	colA.wait(t, 1, time.Second) // reverse RST
	if inj.Fired() != 1 {
		t.Fatalf("Fired() = %d", inj.Fired())
	}
	var sawRST bool
	colB.mu.Lock()
	for _, p := range colB.pkts {
		if seg, err := wire.UnmarshalSegment(p.Payload, p.Src, p.Dst, false); err == nil && seg.Flags.Has(wire.FlagRST) {
			sawRST = true
		}
	}
	colB.mu.Unlock()
	if !sawRST {
		t.Fatal("no RST delivered to receiver")
	}
}

func TestNATRewrites(t *testing.T) {
	n := New()
	a, b := n.Host("a"), n.Host("b")
	public := netip.MustParseAddr("192.0.2.1")
	nat := &NAT{Inside: cAddr, Outside: public, Dir: AtoB}
	n.AddLink(a, b, cAddr, sAddr, LinkConfig{}).Use(nat)
	// Return traffic must reach the private address again: route public->a
	// replies through the same link (b already routes 10.0.0.0/24).
	col := newCollector(b, wire.ProtoTCP)
	a.Send(tcpPacket(cAddr, sAddr, dataSeg(4)))
	col.wait(t, 1, time.Second)
	p := col.pkts[0]
	if p.Src != public {
		t.Fatalf("src not translated: %s", p.Src)
	}
	// Checksum must be valid under the translated pseudo-header.
	if _, err := wire.UnmarshalSegment(p.Payload, p.Src, p.Dst, true); err != nil {
		t.Fatalf("NATed packet checksum: %v", err)
	}
}

func TestManglerCorruptsKeepingChecksumValid(t *testing.T) {
	n := New()
	a, b := n.Host("a"), n.Host("b")
	n.AddLink(a, b, cAddr, sAddr, LinkConfig{}).Use(&Mangler{EveryN: 1})
	col := newCollector(b, wire.ProtoTCP)
	seg := dataSeg(8)
	for i := range seg.Payload {
		seg.Payload[i] = 0xAA
	}
	a.Send(tcpPacket(cAddr, sAddr, seg))
	col.wait(t, 1, time.Second)
	got, err := wire.UnmarshalSegment(col.pkts[0].Payload, cAddr, sAddr, true)
	if err != nil {
		t.Fatalf("mangled packet should still checksum: %v", err)
	}
	same := true
	for _, x := range got.Payload {
		if x != 0xAA {
			same = false
		}
	}
	if same {
		t.Fatal("payload not corrupted")
	}
}

func TestSYNOptionEcho(t *testing.T) {
	n := New()
	a, b := n.Host("a"), n.Host("b")
	echo := &SYNOptionEcho{}
	n.AddLink(a, b, cAddr, sAddr, LinkConfig{}).Use(echo)
	col := newCollector(b, wire.ProtoTCP)
	seg := &wire.Segment{Flags: wire.FlagSYN, Options: []wire.Option{wire.MSSOption(1400)}}
	a.Send(tcpPacket(cAddr, sAddr, seg))
	col.wait(t, 1, time.Second)
	opts := echo.LastSYNOptions()
	if len(opts) != 1 {
		t.Fatalf("echo saw %d options", len(opts))
	}
	if mss, ok := opts[0].MSS(); !ok || mss != 1400 {
		t.Fatal("echo option mismatch")
	}
}

func TestTraceEvents(t *testing.T) {
	var mu sync.Mutex
	var kinds []string
	n := New(WithTrace(func(e TraceEvent) {
		mu.Lock()
		kinds = append(kinds, e.Kind)
		mu.Unlock()
		_ = e.String()
	}))
	a, b := n.Host("a"), n.Host("b")
	n.AddLink(a, b, cAddr, sAddr, LinkConfig{})
	col := newCollector(b, wire.ProtoTCP)
	a.Send(tcpPacket(cAddr, sAddr, dataSeg(1)))
	col.wait(t, 1, time.Second)
	mu.Lock()
	defer mu.Unlock()
	haveSend, haveRecv := false, false
	for _, k := range kinds {
		if k == "send" {
			haveSend = true
		}
		if k == "recv" {
			haveRecv = true
		}
	}
	if !haveSend || !haveRecv {
		t.Fatalf("trace kinds: %v", kinds)
	}
}

func TestHostIdentityAndAddrs(t *testing.T) {
	n := New()
	a := n.Host("a")
	if n.Host("a") != a {
		t.Fatal("Host not idempotent")
	}
	a.AddAddr(cAddr)
	a.AddAddr(cAddr) // duplicate ignored
	if len(a.Addrs()) != 1 {
		t.Fatal("duplicate addr added")
	}
	if !a.HasAddr(cAddr) || a.HasAddr(sAddr) {
		t.Fatal("HasAddr wrong")
	}
	if a.Name() != "a" || a.Network() != n {
		t.Fatal("identity accessors")
	}
}

func TestLongestPrefixRouting(t *testing.T) {
	n := New()
	a, b, c := n.Host("a"), n.Host("b"), n.Host("c")
	// Default route via b, specific /32 via c.
	lb := n.AddLink(a, b, netip.MustParseAddr("10.1.0.1"), netip.MustParseAddr("10.1.0.2"), LinkConfig{})
	lc := n.AddLink(a, c, netip.MustParseAddr("10.2.0.1"), netip.MustParseAddr("10.2.0.2"), LinkConfig{})
	a.AddRoute(netip.MustParsePrefix("0.0.0.0/0"), lb.EndA())
	a.AddRoute(netip.MustParsePrefix("203.0.113.7/32"), lc.EndA())
	c.AddAddr(netip.MustParseAddr("203.0.113.7"))
	b.AddAddr(netip.MustParseAddr("203.0.113.8"))
	colC := newCollector(c, wire.ProtoTCP)
	colB := newCollector(b, wire.ProtoTCP)
	a.Send(tcpPacket(cAddr, netip.MustParseAddr("203.0.113.7"), dataSeg(1)))
	a.Send(tcpPacket(cAddr, netip.MustParseAddr("203.0.113.8"), dataSeg(1)))
	colC.wait(t, 1, time.Second)
	colB.wait(t, 1, time.Second)
}
