package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/timingwheel"
	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// FaultEvent is one scheduled fault: at virtual time At (since
// FaultSchedule.Start), Do fires. Label names the fault for replay logs.
type FaultEvent struct {
	At    time.Duration
	Label string
	Do    func()
}

// FaultSchedule composes fault events over virtual time: link flaps,
// per-direction stalls, loss ramps, middlebox arming — anything
// expressible as a timed closure. It is the chaos harness's script: built
// deterministically (by hand or from a seed), started against a network,
// and printed into failure logs so any run can be replayed exactly.
type FaultSchedule struct {
	mu      sync.Mutex
	events  []FaultEvent
	timers  []*timingwheel.Timer
	started bool
}

// At appends an event. Returns the schedule for chaining.
func (fs *FaultSchedule) At(t time.Duration, label string, do func()) *FaultSchedule {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.events = append(fs.events, FaultEvent{At: t, Label: label, Do: do})
	return fs
}

// FlapLink schedules the link down at downAt and back up at upAt.
func (fs *FaultSchedule) FlapLink(l *Link, downAt, upAt time.Duration) *FaultSchedule {
	fs.At(downAt, fmt.Sprintf("down(%s)", l.Name()), func() { l.SetDown(true) })
	fs.At(upAt, fmt.Sprintf("up(%s)", l.Name()), func() { l.SetDown(false) })
	return fs
}

// StallDir schedules a silent one-direction blackhole between from and
// until.
func (fs *FaultSchedule) StallDir(l *Link, dir Direction, from, until time.Duration) *FaultSchedule {
	fs.At(from, fmt.Sprintf("stall(%s,%s)", l.Name(), dir), func() { l.SetStall(dir, true) })
	fs.At(until, fmt.Sprintf("unstall(%s,%s)", l.Name(), dir), func() { l.SetStall(dir, false) })
	return fs
}

// StallBoth schedules a silent blackhole of both directions between from
// and until.
func (fs *FaultSchedule) StallBoth(l *Link, from, until time.Duration) *FaultSchedule {
	fs.StallDir(l, AtoB, from, until)
	fs.StallDir(l, BtoA, from, until)
	return fs
}

// LossAt schedules a change of the link's drop probability.
func (fs *FaultSchedule) LossAt(l *Link, at time.Duration, p float64) *FaultSchedule {
	return fs.At(at, fmt.Sprintf("loss(%s,%.3f)", l.Name(), p), func() { l.SetLoss(p) })
}

// Start arms every event as a virtual-time timer on n. Events whose time
// already passed fire immediately (in At order).
func (fs *FaultSchedule) Start(n *Network) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.started {
		return
	}
	fs.started = true
	evs := append([]FaultEvent(nil), fs.events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for _, ev := range evs {
		fs.timers = append(fs.timers, n.AfterFunc(ev.At, ev.Do))
	}
}

// Stop cancels any events that have not fired yet.
func (fs *FaultSchedule) Stop() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, t := range fs.timers {
		t.Stop()
	}
	fs.timers = nil
}

// Len returns the number of scheduled events.
func (fs *FaultSchedule) Len() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.events)
}

// String renders the schedule in At order, one "t=... label" clause per
// event — the replay record logged when a chaos run fails.
func (fs *FaultSchedule) String() string {
	fs.mu.Lock()
	evs := append([]FaultEvent(nil), fs.events...)
	fs.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	var b strings.Builder
	for i, ev := range evs {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "t=%s %s", ev.At.Truncate(time.Microsecond), ev.Label)
	}
	return b.String()
}

// --- fault-injecting middleboxes ---

// Duplicator forwards every Nth data-bearing segment twice, emulating
// the packet duplication some load balancers and failing NICs produce.
// TCP must absorb duplicates without corrupting the byte stream.
type Duplicator struct {
	// EveryN duplicates one in every N data segments (N >= 1).
	EveryN int

	mu   sync.Mutex
	seen int
	dups int
}

// Process implements Middlebox.
func (d *Duplicator) Process(p *wire.Packet, dir Direction) ([]*wire.Packet, []*wire.Packet) {
	seg := parseTCP(p)
	if seg == nil || len(seg.Payload) == 0 || d.EveryN < 1 {
		return []*wire.Packet{p}, nil
	}
	d.mu.Lock()
	d.seen++
	dup := d.seen%d.EveryN == 0
	if dup {
		d.dups++
	}
	d.mu.Unlock()
	if !dup {
		return []*wire.Packet{p}, nil
	}
	return []*wire.Packet{p, p.Clone()}, nil
}

// Duplicated reports how many segments were duplicated.
func (d *Duplicator) Duplicated() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dups
}

// Reorderer holds back every Nth data-bearing segment and releases it
// after the following segment, swapping their order on the wire. TCP
// reads mild reordering as potential loss (dup-ack pressure); the TCPLS
// layers above must stay byte-exact regardless.
type Reorderer struct {
	// EveryN delays one in every N data segments (N >= 2 is sensible).
	EveryN int

	mu      sync.Mutex
	seen    int
	held    *wire.Packet
	swapped int
}

// Process implements Middlebox.
func (r *Reorderer) Process(p *wire.Packet, dir Direction) ([]*wire.Packet, []*wire.Packet) {
	seg := parseTCP(p)
	if seg == nil || len(seg.Payload) == 0 || r.EveryN < 1 {
		return []*wire.Packet{p}, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.held != nil {
		prev := r.held
		r.held = nil
		r.swapped++
		return []*wire.Packet{p, prev}, nil
	}
	r.seen++
	if r.seen%r.EveryN == 0 {
		r.held = p
		return nil, nil
	}
	return []*wire.Packet{p}, nil
}

// Swapped reports how many segment pairs were reordered.
func (r *Reorderer) Swapped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.swapped
}

// Corrupter flips one byte in a data segment's payload with probability
// Prob, deliberately NOT fixing the TCP checksum — the receiver's
// checksum validation discards the segment, so corruption degrades into
// loss (retransmission recovers it). Contrast Mangler, which repairs the
// checksum so only the cryptographic layer can catch the damage.
type Corrupter struct {
	// Prob is the per-data-segment corruption probability in [0,1).
	Prob float64
	// Rng drives the draws; seed it for reproducible runs (required).
	Rng *rand.Rand

	mu        sync.Mutex
	corrupted int
}

// Process implements Middlebox.
func (c *Corrupter) Process(p *wire.Packet, dir Direction) ([]*wire.Packet, []*wire.Packet) {
	seg := parseTCP(p)
	if seg == nil || len(seg.Payload) == 0 || c.Prob <= 0 || c.Rng == nil {
		return []*wire.Packet{p}, nil
	}
	c.mu.Lock()
	hit := c.Rng.Float64() < c.Prob
	var idx int
	if hit {
		idx = c.Rng.Intn(len(seg.Payload))
		c.corrupted++
	}
	c.mu.Unlock()
	if hit {
		// Flip a bit in the serialized packet past the TCP header so the
		// checksum no longer matches.
		off := len(p.Payload) - len(seg.Payload) + idx
		if off >= 0 && off < len(p.Payload) {
			p.Payload[off] ^= 0x20
		}
	}
	return []*wire.Packet{p}, nil
}

// Corrupted reports how many segments were damaged.
func (c *Corrupter) Corrupted() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.corrupted
}
