package netsim

import (
	"math"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
	"github.com/pluginized-protocols/gotcpls/internal/ring"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// LinkConfig sets the characteristics of one point-to-point link. Both
// directions share the same parameters.
type LinkConfig struct {
	// Name appears in traces; defaults to "a-b".
	Name string
	// BandwidthBps is the link rate in bits per second. 0 means infinite
	// (no serialization delay).
	BandwidthBps float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueBytes bounds the drop-tail queue at the link entrance.
	// 0 means a default of 100 full-size packets.
	QueueBytes int
	// Loss is the independent per-packet drop probability in [0,1).
	Loss float64
}

// DefaultQueueBytes is the drop-tail queue bound when none is configured:
// roughly 100 full-size packets, a common router default.
const DefaultQueueBytes = 100 * 1500

// Direction identifies which way a packet traverses a link.
type Direction int

// Link directions: AtoB flows from the first host passed to AddLink
// toward the second.
const (
	AtoB Direction = iota
	BtoA
)

// String renders the direction.
func (d Direction) String() string {
	if d == AtoB {
		return "a->b"
	}
	return "b->a"
}

// Link is a full-duplex point-to-point link between two hosts.
type Link struct {
	cfg  LinkConfig
	net  *Network
	a, b *Host
	ab   *linkDir // a -> b
	ba   *linkDir // b -> a

	ctr linkCounters

	mu       sync.Mutex
	mboxes   []Middlebox
	downABi  bool // direction a->b administratively down
	downBAi  bool
	stallABi bool // direction a->b stalled (silent blackhole)
	stallBAi bool
	lossBits atomic.Uint64 // dynamic loss probability (math.Float64bits)
}

// linkCounters aggregates both directions of a link. All atomics:
// transmit/drain run on independent goroutines.
type linkCounters struct {
	sent, sentBytes           atomic.Uint64
	delivered, deliveredBytes atomic.Uint64
	dropQueue                 atomic.Uint64 // drop-tail queue overflow (bandwidth backlog or channel full)
	dropLoss                  atomic.Uint64 // injected random loss
	dropDown                  atomic.Uint64 // administratively down
	dropStall                 atomic.Uint64 // silent stall fault
	dropMbox                  atomic.Uint64 // eaten by a middlebox
	queueHWM                  atomic.Int64  // max observed queue occupancy, bytes
}

// LinkStats is a snapshot of a link's counters — the "why did my
// packets die" view experiments assert on.
type LinkStats struct {
	Sent, SentBytes           uint64
	Delivered, DeliveredBytes uint64
	DropQueue                 uint64
	DropLoss                  uint64
	DropDown                  uint64
	DropStall                 uint64
	DropMbox                  uint64
	QueueHighWater            int64
}

// Drops sums the per-cause drop counters.
func (s LinkStats) Drops() uint64 {
	return s.DropQueue + s.DropLoss + s.DropDown + s.DropStall + s.DropMbox
}

// Stats snapshots the link's counters (both directions combined).
func (l *Link) Stats() LinkStats {
	return LinkStats{
		Sent:           l.ctr.sent.Load(),
		SentBytes:      l.ctr.sentBytes.Load(),
		Delivered:      l.ctr.delivered.Load(),
		DeliveredBytes: l.ctr.deliveredBytes.Load(),
		DropQueue:      l.ctr.dropQueue.Load(),
		DropLoss:       l.ctr.dropLoss.Load(),
		DropDown:       l.ctr.dropDown.Load(),
		DropStall:      l.ctr.dropStall.Load(),
		DropMbox:       l.ctr.dropMbox.Load(),
		QueueHighWater: l.ctr.queueHWM.Load(),
	}
}

// RegisterMetrics exposes the link's counters as pull-style vars under
// netsim.link.<name>.* in the registry.
func (l *Link) RegisterMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	prefix := "netsim.link." + l.cfg.Name + "."
	u := func(name string, v *atomic.Uint64) {
		reg.Func(prefix+name, func() int64 { return int64(v.Load()) })
	}
	u("sent", &l.ctr.sent)
	u("sent_bytes", &l.ctr.sentBytes)
	u("delivered", &l.ctr.delivered)
	u("delivered_bytes", &l.ctr.deliveredBytes)
	u("drop_queue", &l.ctr.dropQueue)
	u("drop_loss", &l.ctr.dropLoss)
	u("drop_down", &l.ctr.dropDown)
	u("drop_stall", &l.ctr.dropStall)
	u("drop_mbox", &l.ctr.dropMbox)
	reg.Func(prefix+"queue_high_water", func() int64 { return l.ctr.queueHWM.Load() })
}

// noteDrop counts a dropped packet by cause and mirrors it into the
// telemetry trace.
func (l *Link) noteDrop(ctr *atomic.Uint64, kind telemetry.EventKind, p *wire.Packet) {
	ctr.Add(1)
	l.net.tracer().Emit(telemetry.Event{Kind: kind, A: int64(p.Len()), S: l.cfg.Name})
}

// LinkEnd is one host's attachment to a link: transmitting on it sends
// toward the peer host.
type LinkEnd struct {
	link *Link
	dir  Direction
}

// linkDir carries state for one direction of the link. Delivery is
// strictly FIFO: a dedicated goroutine drains the in-flight queue in
// order, which matters because TCP interprets reordering as loss.
//
// The in-flight queue is a bounded MPSC ring with a coalescing
// doorbell: transmitters of a whole burst pay one atomic per packet
// plus at most one channel send, and the drain goroutine wakes once
// per burst instead of once per segment.
type linkDir struct {
	link *Link
	dir  Direction
	dst  *Host

	mu       sync.Mutex
	nextFree time.Time // when the transmitter finishes the current queue
	inflight *ring.Ring[timedPacket]
}

type timedPacket struct {
	p         *wire.Packet
	deliverAt time.Time
}

// inflightCap bounds each direction's in-flight ring; overflow is
// dropped and counted as drop_queue, like the channel it replaced.
const inflightCap = 8192

// drain delivers queued packets in order at their scheduled times.
// Because enqueue stamps deliverAt from a monotone per-direction
// departure clock, deliverAt never decreases across pops, so a single
// reusable timer suffices for the whole queue.
func (d *linkDir) drain(done <-chan struct{}) {
	var batch [64]timedPacket
	tm := time.NewTimer(time.Hour)
	if !tm.Stop() {
		<-tm.C
	}
	defer tm.Stop()
	for {
		n := d.inflight.PopBatch(batch[:])
		if n == 0 {
			select {
			case <-d.inflight.Bell():
				continue
			case <-done:
				return
			}
		}
		for i := 0; i < n; i++ {
			tp := batch[i]
			batch[i] = timedPacket{} // release the packet reference
			if wait := time.Until(tp.deliverAt); wait > 0 {
				tm.Reset(wait)
				select {
				case <-tm.C:
				case <-done:
					return
				}
			}
			d.link.net.emit(TraceEvent{Kind: "recv", Host: d.dst.name, Packet: tp.p})
			d.link.ctr.delivered.Add(1)
			d.link.ctr.deliveredBytes.Add(uint64(tp.p.Len()))
			d.dst.deliver(tp.p)
		}
	}
}

// AddLink connects two hosts with a link, assigns addrA/addrB to the
// respective hosts, and installs host routes so each host reaches the
// peer's address (and its /24 or /64 neighborhood) through this link.
func (n *Network) AddLink(a, b *Host, addrA, addrB netip.Addr, cfg LinkConfig) *Link {
	if cfg.Name == "" {
		cfg.Name = a.name + "-" + b.name
	}
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = DefaultQueueBytes
	}
	l := &Link{cfg: cfg, net: n, a: a, b: b}
	l.lossBits.Store(math.Float64bits(cfg.Loss))
	l.ab = &linkDir{link: l, dir: AtoB, dst: b, inflight: ring.New[timedPacket](inflightCap)}
	l.ba = &linkDir{link: l, dir: BtoA, dst: a, inflight: ring.New[timedPacket](inflightCap)}
	go l.ab.drain(n.done)
	go l.ba.drain(n.done)
	a.AddAddr(addrA)
	b.AddAddr(addrB)
	bitsFor := func(ad netip.Addr) int {
		if ad.Is4() {
			return 24
		}
		return 64
	}
	pa, _ := addrA.Prefix(bitsFor(addrA))
	pb, _ := addrB.Prefix(bitsFor(addrB))
	a.AddRoute(pb, &LinkEnd{l, AtoB})
	b.AddRoute(pa, &LinkEnd{l, BtoA})
	n.mu.Lock()
	n.links = append(n.links, l)
	n.mu.Unlock()
	return l
}

// Name returns the link's trace name.
func (l *Link) Name() string { return l.cfg.Name }

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Use appends middleboxes to the link's processing chain. Every packet in
// either direction passes through them in order.
func (l *Link) Use(m ...Middlebox) *Link {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.mboxes = append(l.mboxes, m...)
	return l
}

// SetDown administratively disables or enables both directions of the
// link: while down, every packet entering it is dropped. Used to emulate
// the network outages behind the paper's failover scenarios.
func (l *Link) SetDown(down bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.downABi, l.downBAi = down, down
}

// SetDownDir disables or enables a single direction of the link,
// emulating asymmetric outages (a route withdrawn one way only).
func (l *Link) SetDownDir(dir Direction, down bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if dir == AtoB {
		l.downABi = down
	} else {
		l.downBAi = down
	}
}

// SetStall silently blackholes one direction of the link: unlike
// SetDownDir the drop is not traced as an administrative event, matching
// middleboxes and bugs that eat packets without any observable signal.
// A stalled path produces no read-loop error at the transport — only a
// health probe (or TCP user timeout) can detect it.
func (l *Link) SetStall(dir Direction, stalled bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if dir == AtoB {
		l.stallABi = stalled
	} else {
		l.stallBAi = stalled
	}
}

// StallBoth stalls or unstalls both directions at once.
func (l *Link) StallBoth(stalled bool) {
	l.SetStall(AtoB, stalled)
	l.SetStall(BtoA, stalled)
}

// SetLoss changes the link's independent per-packet drop probability at
// runtime (fault schedules ramp loss up and down mid-experiment).
func (l *Link) SetLoss(p float64) {
	if p < 0 {
		p = 0
	}
	if p >= 1 {
		p = 0.999999
	}
	l.lossBits.Store(math.Float64bits(p))
}

// Loss returns the current per-packet drop probability.
func (l *Link) Loss() float64 { return math.Float64frombits(l.lossBits.Load()) }

func (l *Link) isDown(dir Direction) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if dir == AtoB {
		return l.downABi
	}
	return l.downBAi
}

func (l *Link) isStalled(dir Direction) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if dir == AtoB {
		return l.stallABi
	}
	return l.stallBAi
}

func (l *Link) middleboxes() []Middlebox {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Middlebox(nil), l.mboxes...)
}

// EndA returns the a-side attachment (transmits toward b). Useful when
// installing extra routes by hand.
func (l *Link) EndA() *LinkEnd { return &LinkEnd{l, AtoB} }

// EndB returns the b-side attachment (transmits toward a).
func (l *Link) EndB() *LinkEnd { return &LinkEnd{l, BtoA} }

func (e *LinkEnd) transmit(p *wire.Packet) {
	l := e.link
	dirState := l.ab
	if e.dir == BtoA {
		dirState = l.ba
	}
	if l.isDown(e.dir) {
		l.net.emit(TraceEvent{Kind: "drop-down", Link: l.cfg.Name, Packet: p})
		l.noteDrop(&l.ctr.dropDown, telemetry.EvLinkDropDown, p)
		bufpool.Put(p.Payload)
		return
	}
	if l.isStalled(e.dir) {
		l.net.emit(TraceEvent{Kind: "drop-stall", Link: l.cfg.Name, Packet: p})
		l.noteDrop(&l.ctr.dropStall, telemetry.EvLinkDropStall, p)
		bufpool.Put(p.Payload)
		return
	}
	// Middlebox chain. Forward-direction results continue down the link;
	// reverse injections enter the opposite direction.
	mboxes := l.middleboxes()
	fwd := []*wire.Packet{p}
	for _, m := range mboxes {
		var next []*wire.Packet
		for _, q := range fwd {
			out, back := m.Process(q.Clone(), e.dir)
			next = append(next, out...)
			for _, bp := range back {
				l.net.emit(TraceEvent{Kind: "inject", Link: l.cfg.Name, Packet: bp})
				rev := l.ba
				if e.dir == BtoA {
					rev = l.ab
				}
				rev.enqueue(bp)
			}
			if len(out) == 0 {
				l.net.emit(TraceEvent{Kind: "drop-mbox", Link: l.cfg.Name, Packet: q})
				l.noteDrop(&l.ctr.dropMbox, telemetry.EvLinkDropMbox, q)
			}
		}
		fwd = next
	}
	if len(mboxes) > 0 {
		// The chain operated on clones (GC-backed); the original packet's
		// pooled buffer is no longer referenced by anything downstream.
		bufpool.Put(p.Payload)
	}
	for _, q := range fwd {
		dirState.enqueue(q)
	}
}

// hasMboxes reports whether any middlebox is installed, without copying
// the chain (the batch fast path checks this per burst).
func (l *Link) hasMboxes() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.mboxes) > 0
}

// transmitBatch sends a burst of packets down the link. The fast path —
// link up, no middleboxes — schedules the whole burst under one queue
// lock; any special condition falls back to per-packet transmit.
func (e *LinkEnd) transmitBatch(pkts []*wire.Packet) {
	l := e.link
	if l.isDown(e.dir) || l.isStalled(e.dir) || l.hasMboxes() {
		for _, p := range pkts {
			e.transmit(p)
		}
		return
	}
	dirState := l.ab
	if e.dir == BtoA {
		dirState = l.ba
	}
	dirState.enqueueBatch(pkts)
}

// enqueue models the drop-tail queue plus the serialization and
// propagation delays of the direction, then delivers to the peer host.
func (d *linkDir) enqueue(p *wire.Packet) {
	l := d.link
	cfg := l.cfg
	if loss := l.Loss(); loss > 0 && l.net.lossDraw() < loss {
		l.net.emit(TraceEvent{Kind: "drop-loss", Link: cfg.Name, Packet: p})
		l.noteDrop(&l.ctr.dropLoss, telemetry.EvLinkDropLoss, p)
		bufpool.Put(p.Payload)
		return
	}
	size := p.Len()
	var txTime time.Duration
	if cfg.BandwidthBps > 0 {
		txTime = time.Duration(float64(size*8) / cfg.BandwidthBps * float64(time.Second))
	}

	d.mu.Lock()
	now := time.Now()
	backlog := d.nextFree.Sub(now) // wall-clock time of traffic ahead of us
	if backlog < 0 {
		backlog = 0
		d.nextFree = now
	}
	// Queue occupancy approximated by the backlog converted back to bytes:
	// (virtual backlog seconds) * bandwidth / 8.
	if cfg.BandwidthBps > 0 {
		virtualBacklog := float64(backlog) / l.net.scale
		queued := virtualBacklog / float64(time.Second) * cfg.BandwidthBps / 8
		if int(queued) > cfg.QueueBytes {
			d.mu.Unlock()
			l.net.emit(TraceEvent{Kind: "drop-queue", Link: cfg.Name, Packet: p})
			l.noteDrop(&l.ctr.dropQueue, telemetry.EvLinkDropQueue, p)
			bufpool.Put(p.Payload)
			return
		}
		l.noteQueueDepth(int64(queued) + int64(size))
	}
	d.nextFree = d.nextFree.Add(l.net.ScaleDuration(txTime))
	departIn := d.nextFree.Sub(now)
	d.mu.Unlock()

	l.net.emit(TraceEvent{Kind: "send", Link: cfg.Name, Packet: p})
	l.ctr.sent.Add(1)
	l.ctr.sentBytes.Add(uint64(size))
	deliverAt := now.Add(departIn + l.net.ScaleDuration(cfg.Delay))
	if !d.inflight.TryPush(timedPacket{p, deliverAt}) {
		l.net.emit(TraceEvent{Kind: "drop-queue", Link: cfg.Name, Packet: p})
		l.noteDrop(&l.ctr.dropQueue, telemetry.EvLinkDropQueue, p)
		bufpool.Put(p.Payload)
	}
}

// enqueueBatch schedules a burst of packets through the drop-tail queue
// under a single lock acquisition and one clock read — the per-packet
// lock/unlock and time.Now of enqueue dominate high-rate senders.
// Loss draws, bandwidth backlog and delivery times are still computed
// per packet, so emulation behaviour matches packet-at-a-time exactly.
func (d *linkDir) enqueueBatch(pkts []*wire.Packet) {
	l := d.link
	cfg := l.cfg
	if loss := l.Loss(); loss > 0 {
		kept := pkts[:0]
		for _, p := range pkts {
			if l.net.lossDraw() < loss {
				l.net.emit(TraceEvent{Kind: "drop-loss", Link: cfg.Name, Packet: p})
				l.noteDrop(&l.ctr.dropLoss, telemetry.EvLinkDropLoss, p)
				bufpool.Put(p.Payload)
				continue
			}
			kept = append(kept, p)
		}
		pkts = kept
	}
	if len(pkts) == 0 {
		return
	}

	sched := make([]timedPacket, 0, len(pkts))
	var overflow []*wire.Packet
	var hwm int64
	d.mu.Lock()
	now := time.Now()
	for _, p := range pkts {
		size := p.Len()
		var txTime time.Duration
		if cfg.BandwidthBps > 0 {
			txTime = time.Duration(float64(size*8) / cfg.BandwidthBps * float64(time.Second))
		}
		backlog := d.nextFree.Sub(now)
		if backlog < 0 {
			backlog = 0
			d.nextFree = now
		}
		if cfg.BandwidthBps > 0 {
			virtualBacklog := float64(backlog) / l.net.scale
			queued := virtualBacklog / float64(time.Second) * cfg.BandwidthBps / 8
			if int(queued) > cfg.QueueBytes {
				overflow = append(overflow, p)
				continue
			}
			if q := int64(queued) + int64(size); q > hwm {
				hwm = q
			}
		}
		d.nextFree = d.nextFree.Add(l.net.ScaleDuration(txTime))
		sched = append(sched, timedPacket{p, d.nextFree.Add(l.net.ScaleDuration(cfg.Delay))})
	}
	d.mu.Unlock()

	for _, p := range overflow {
		l.net.emit(TraceEvent{Kind: "drop-queue", Link: cfg.Name, Packet: p})
		l.noteDrop(&l.ctr.dropQueue, telemetry.EvLinkDropQueue, p)
		bufpool.Put(p.Payload)
	}
	if hwm > 0 {
		l.noteQueueDepth(hwm)
	}
	for _, tp := range sched {
		l.net.emit(TraceEvent{Kind: "send", Link: cfg.Name, Packet: tp.p})
		l.ctr.sent.Add(1)
		l.ctr.sentBytes.Add(uint64(tp.p.Len()))
	}
	// One ring pass and one doorbell for the whole burst; whatever does
	// not fit is a queue drop, as with packet-at-a-time enqueue.
	pushed := d.inflight.PushBatch(sched)
	for _, tp := range sched[pushed:] {
		l.net.emit(TraceEvent{Kind: "drop-queue", Link: cfg.Name, Packet: tp.p})
		l.noteDrop(&l.ctr.dropQueue, telemetry.EvLinkDropQueue, tp.p)
		bufpool.Put(tp.p.Payload)
	}
}

// noteQueueDepth records queue occupancy, tracing each new high-water
// mark (a monotone, hence bounded, event stream).
func (l *Link) noteQueueDepth(bytes int64) {
	for {
		cur := l.ctr.queueHWM.Load()
		if bytes <= cur {
			return
		}
		if l.ctr.queueHWM.CompareAndSwap(cur, bytes) {
			l.net.tracer().Emit(telemetry.Event{Kind: telemetry.EvLinkQueue, A: bytes, S: l.cfg.Name})
			return
		}
	}
}
