package netsim

import (
	"net/netip"
	"sync"

	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// Middlebox rewrites, drops, or injects packets traversing a link. It is
// invoked with a private clone of each packet; it returns the packets to
// forward onward (empty slice drops the packet) and packets to inject in
// the reverse direction (e.g. a forged RST toward the sender).
//
// These implementations reproduce the interference catalogued in the
// TCPLS paper (§2.1, §4.5): option stripping [35], spurious resets
// [24, 74], NATs, and transparently terminating proxies [76].
type Middlebox interface {
	Process(p *wire.Packet, dir Direction) (forward, reverse []*wire.Packet)
}

// MiddleboxFunc adapts a function to the Middlebox interface.
type MiddleboxFunc func(p *wire.Packet, dir Direction) (forward, reverse []*wire.Packet)

// Process implements Middlebox.
func (f MiddleboxFunc) Process(p *wire.Packet, dir Direction) ([]*wire.Packet, []*wire.Packet) {
	return f(p, dir)
}

// parseTCP decodes the TCP segment in p, returning nil for non-TCP or
// malformed packets (which middleboxes pass through untouched).
func parseTCP(p *wire.Packet) *wire.Segment {
	if p.Proto != wire.ProtoTCP {
		return nil
	}
	seg, err := wire.UnmarshalSegment(p.Payload, p.Src, p.Dst, false)
	if err != nil {
		return nil
	}
	return seg
}

// reserialize writes seg back into p, recomputing the checksum.
func reserialize(p *wire.Packet, seg *wire.Segment) *wire.Packet {
	b, err := seg.Marshal(p.Src, p.Dst)
	if err != nil {
		// Options no longer fit; forward the original unmodified rather
		// than blackholing (matches how buggy middleboxes fail "open").
		return p
	}
	p.Payload = b
	return p
}

// OptionStripper removes the listed TCP option kinds from every segment —
// the classic enterprise/cellular middlebox behaviour that motivates
// moving options into the encrypted channel (§2.1, [35]).
type OptionStripper struct {
	// Kinds lists the TCP option kinds to remove.
	Kinds []uint8

	mu       sync.Mutex
	stripped int
}

// Process implements Middlebox.
func (s *OptionStripper) Process(p *wire.Packet, dir Direction) ([]*wire.Packet, []*wire.Packet) {
	seg := parseTCP(p)
	if seg == nil {
		return []*wire.Packet{p}, nil
	}
	before := len(seg.Options)
	seg.Options = wire.StripOptions(seg.Options, s.Kinds...)
	if len(seg.Options) == before {
		return []*wire.Packet{p}, nil
	}
	s.mu.Lock()
	s.stripped += before - len(seg.Options)
	s.mu.Unlock()
	return []*wire.Packet{reserialize(p, seg)}, nil
}

// Stripped reports how many options the middlebox has removed.
func (s *OptionStripper) Stripped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stripped
}

// RSTInjector forges a TCP reset toward the receiver (and optionally the
// sender) after a configurable number of data-bearing segments, emulating
// the middleboxes that "force the termination of TCP connections by
// sending RST packets" (§2.1, [24, 74]). The original segment is still
// forwarded: the reset is spurious.
type RSTInjector struct {
	// AfterSegments counts data-bearing segments before the reset fires.
	AfterSegments int
	// BothDirections also forges a reset toward the sender.
	BothDirections bool
	// Once fires a single reset and then goes quiet; otherwise it resets
	// again every AfterSegments segments.
	Once bool

	mu    sync.Mutex
	seen  int
	fired int
}

// Process implements Middlebox.
func (r *RSTInjector) Process(p *wire.Packet, dir Direction) ([]*wire.Packet, []*wire.Packet) {
	seg := parseTCP(p)
	if seg == nil || len(seg.Payload) == 0 {
		return []*wire.Packet{p}, nil
	}
	r.mu.Lock()
	r.seen++
	fire := r.seen >= r.AfterSegments && (!r.Once || r.fired == 0)
	if fire {
		r.fired++
		r.seen = 0
	}
	r.mu.Unlock()
	if !fire {
		return []*wire.Packet{p}, nil
	}
	fwdRST := forgeRST(p, seg, false)
	out := []*wire.Packet{p, fwdRST}
	var back []*wire.Packet
	if r.BothDirections {
		back = append(back, forgeRST(p, seg, true))
	}
	return out, back
}

// Fired reports how many resets have been injected.
func (r *RSTInjector) Fired() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fired
}

// forgeRST builds a reset that the victim will accept: sequence numbers
// are taken from the observed segment, exactly as an on-path attacker
// would.
func forgeRST(p *wire.Packet, seg *wire.Segment, towardSender bool) *wire.Packet {
	rst := &wire.Segment{Flags: wire.FlagRST | wire.FlagACK}
	q := &wire.Packet{Proto: wire.ProtoTCP, TTL: 64}
	if towardSender {
		q.Src, q.Dst = p.Dst, p.Src
		rst.SrcPort, rst.DstPort = seg.DstPort, seg.SrcPort
		rst.Seq = seg.Ack
		rst.Ack = seg.Seq + uint32(len(seg.Payload))
	} else {
		q.Src, q.Dst = p.Src, p.Dst
		rst.SrcPort, rst.DstPort = seg.SrcPort, seg.DstPort
		// The victim will have consumed the payload by the time the reset
		// arrives (the link is FIFO), so aim at its next expected seq.
		rst.Seq = seg.Seq + uint32(len(seg.Payload))
		rst.Ack = seg.Ack
	}
	b, _ := rst.Marshal(q.Src, q.Dst)
	q.Payload = b
	return q
}

// NAT rewrites the source address of packets flowing in the configured
// direction to a public address, and reverses the mapping for return
// traffic, recomputing checksums. Like real NATs it breaks any protocol
// that authenticates addresses in cleartext — but not TCPLS's encrypted
// control channel.
type NAT struct {
	// Inside is the private address to translate.
	Inside netip.Addr
	// Outside is the public address presented to the far side.
	Outside netip.Addr
	// Dir is the inside-to-outside direction on the link.
	Dir Direction
}

// Process implements Middlebox.
func (n *NAT) Process(p *wire.Packet, dir Direction) ([]*wire.Packet, []*wire.Packet) {
	if dir == n.Dir && p.Src == n.Inside {
		p.Src = n.Outside
		if seg := parseTCP(p); seg != nil {
			p = reserialize(p, seg) // checksum covers the pseudo-header
		}
	} else if dir != n.Dir && p.Dst == n.Outside {
		p.Dst = n.Inside
		if seg := parseTCP(p); seg != nil {
			p = reserialize(p, seg)
		}
	}
	return []*wire.Packet{p}, nil
}

// Mangler flips bits in TCP payloads with the given probability — a
// corrupting path that checksums (and AEAD tags above) must catch.
type Mangler struct {
	// EveryN corrupts one byte in every Nth data segment.
	EveryN int

	mu   sync.Mutex
	seen int
}

// Process implements Middlebox.
func (m *Mangler) Process(p *wire.Packet, dir Direction) ([]*wire.Packet, []*wire.Packet) {
	seg := parseTCP(p)
	if seg == nil || len(seg.Payload) == 0 {
		return []*wire.Packet{p}, nil
	}
	m.mu.Lock()
	m.seen++
	corrupt := m.EveryN > 0 && m.seen%m.EveryN == 0
	m.mu.Unlock()
	if corrupt {
		// Flip a payload bit but fix the TCP checksum, emulating a
		// middlebox that rewrites payloads "helpfully": only the
		// cryptographic layer can detect it.
		seg.Payload[len(seg.Payload)/2] ^= 0x01
		p = reserialize(p, seg)
	}
	return []*wire.Packet{p}, nil
}

// SYNOptionEcho records the TCP options seen on SYN segments, emulating
// the measurement view a middlebox detector needs (§4.5): tests compare
// what the sender put on the wire with what arrived.
type SYNOptionEcho struct {
	mu   sync.Mutex
	last []wire.Option
}

// Process implements Middlebox.
func (s *SYNOptionEcho) Process(p *wire.Packet, dir Direction) ([]*wire.Packet, []*wire.Packet) {
	if seg := parseTCP(p); seg != nil && seg.Flags.Has(wire.FlagSYN) {
		s.mu.Lock()
		s.last = append([]wire.Option(nil), seg.Options...)
		s.mu.Unlock()
	}
	return []*wire.Packet{p}, nil
}

// LastSYNOptions returns the options on the most recent SYN observed.
func (s *SYNOptionEcho) LastSYNOptions() []wire.Option {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]wire.Option(nil), s.last...)
}
