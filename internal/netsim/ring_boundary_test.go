package netsim

import (
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// TestLinkRingReleasesPooledBuffers audits bufpool ownership across the
// tcpnet↔netsim boundary now that a link direction's in-flight queue is
// a bounded MPSC ring: every pooled payload pushed into the ring must be
// released exactly once, whether it is delivered (receiver handler Puts
// it), dropped by the bandwidth backlog, or rejected by a full ring.
// The link is throttled hard so most of the burst takes the drop path.
func TestLinkRingReleasesPooledBuffers(t *testing.T) {
	lc := bufpool.StartLeakCheck()
	defer lc.Stop()

	n := New(WithSeed(7))
	defer n.Close()
	a, b := n.Host("a"), n.Host("b")
	l := n.AddLink(a, b, cAddr, sAddr, LinkConfig{
		BandwidthBps: 8e6, // 1 MB/s: a 1000-byte packet serializes in 1ms
		Delay:        time.Millisecond,
		QueueBytes:   5000, // ~5 packets of headroom, the rest must drop
	})

	b.Register(wire.ProtoTCP, func(p *wire.Packet) {
		bufpool.Put(p.Payload)
	})

	const pkts = 50
	seg := &wire.Segment{SrcPort: 1000, DstPort: 443, Flags: wire.FlagACK,
		Payload: make([]byte, 950)}
	raw, err := seg.Marshal(cAddr, sAddr)
	if err != nil {
		t.Fatal(err)
	}
	burst := make([]*wire.Packet, pkts)
	for i := range burst {
		payload := bufpool.Get(len(raw))
		copy(payload, raw)
		burst[i] = &wire.Packet{Src: cAddr, Dst: sAddr, Proto: wire.ProtoTCP, TTL: 64, Payload: payload}
	}
	if err := a.SendBatch(burst); err != nil {
		t.Fatal(err)
	}

	// Every packet must be accounted for: delivered or dropped, and in
	// either case its pooled buffer returned.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := l.Stats()
		if st.Delivered+st.Drops() == pkts && lc.Outstanding() == 0 {
			break
		}
		if time.Now().After(deadline) {
			gets, puts := lc.Stats()
			t.Fatalf("ring boundary leaked: delivered=%d drops=%d outstanding=%d (gets=%d puts=%d)",
				st.Delivered, st.Drops(), lc.Outstanding(), gets, puts)
		}
		time.Sleep(time.Millisecond)
	}

	st := l.Stats()
	if st.Delivered == 0 || st.DropQueue == 0 {
		t.Fatalf("want both delivery and queue-drop paths exercised: %+v", st)
	}
	// The doorbell must coalesce: one burst through the batch path rings
	// at most once per push and, with a sleeping consumer, far fewer.
	rs := l.ab.inflight.Stats()
	if rs.BellRings > rs.Pushes {
		t.Fatalf("doorbell rang %d times for %d pushes", rs.BellRings, rs.Pushes)
	}
}
