package netsim

import (
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// This file holds the stateful half of the middlebox catalogue: the
// interference models behind the paper's Table 1 (§2) that require
// per-flow state — NATs that expire and rebind mappings, stateful
// firewalls with per-direction idle expiry and hard state TTLs,
// transparently terminating proxies that re-originate both TCP sequence
// spaces, and a ClientHello mangler that neuters the TCPLS extension the
// way a TLS-inspecting box would. All are seedable (where they draw
// randomness) and chainable on a link via Link.Use, and all keep their
// flow clocks on the network's virtual time so expiry scales with the
// emulation.

// flowKey identifies one transport flow in its canonical (initiator →
// responder) orientation.
type flowKey struct {
	proto   uint8
	src     netip.Addr
	srcPort uint16
	dst     netip.Addr
	dstPort uint16
}

func (k flowKey) reversed() flowKey {
	return flowKey{proto: k.proto, src: k.dst, srcPort: k.dstPort, dst: k.src, dstPort: k.srcPort}
}

// parseUDP decodes the UDP datagram in p, returning nil for non-UDP or
// malformed packets.
func parseUDP(p *wire.Packet) *wire.Datagram {
	if p.Proto != wire.ProtoUDP {
		return nil
	}
	d, err := wire.UnmarshalDatagram(p.Payload)
	if err != nil {
		return nil
	}
	return d
}

// transportPorts extracts (srcPort, dstPort) from a TCP or UDP packet.
func transportPorts(p *wire.Packet) (src, dst uint16, ok bool) {
	if seg := parseTCP(p); seg != nil {
		return seg.SrcPort, seg.DstPort, true
	}
	if d := parseUDP(p); d != nil {
		return d.SrcPort, d.DstPort, true
	}
	return 0, 0, false
}

// rewritePorts rewrites the transport source/destination ports of p
// in place (TCP or UDP), recomputing the checksum. A negative value
// leaves the port untouched.
func rewritePorts(p *wire.Packet, srcPort, dstPort int) *wire.Packet {
	if seg := parseTCP(p); seg != nil {
		if srcPort >= 0 {
			seg.SrcPort = uint16(srcPort)
		}
		if dstPort >= 0 {
			seg.DstPort = uint16(dstPort)
		}
		return reserialize(p, seg)
	}
	if d := parseUDP(p); d != nil {
		if srcPort >= 0 {
			d.SrcPort = uint16(srcPort)
		}
		if dstPort >= 0 {
			d.DstPort = uint16(dstPort)
		}
		p.Payload = d.Marshal(p.Src, p.Dst)
	}
	return p
}

// StatefulNAT is a port-translating NAT with mapping expiry: outbound
// flows from Inside are rewritten to (Outside, external port) with a
// per-flow mapping; return traffic reverses the mapping. Mappings expire
// on idle (IdleTimeout since the last packet in either direction) and on
// age (RebindAfter since creation — the aggressive carrier-grade NAT
// behaviour "A QUIC(K) Way Through Your Firewall?" measures). An expired
// mapping is not an error: the next outbound packet simply allocates a
// fresh external port — a rebind — while inbound packets to the stale
// port are dropped, exactly the event that breaks protocols which pin a
// session to a 4-tuple.
type StatefulNAT struct {
	// Inside is the private address translated on the way out.
	Inside netip.Addr
	// Outside is the public address presented to the far side.
	Outside netip.Addr
	// Dir is the inside-to-outside direction on the link.
	Dir Direction
	// Net supplies the virtual clock driving mapping expiry.
	Net *Network
	// IdleTimeout expires a mapping with no traffic in either direction
	// for this long (virtual time; 0 = never).
	IdleTimeout time.Duration
	// RebindAfter expires a mapping unconditionally this long after
	// creation (virtual time; 0 = never), forcing periodic rebinds.
	RebindAfter time.Duration
	// Seed drives external-port allocation (0 = fixed default seed).
	Seed int64

	mu      sync.Mutex
	rng     *rand.Rand
	flows   map[flowKey]*natMapping // inside tuple -> mapping
	ext     map[flowKey]*natMapping // external tuple -> mapping
	rebinds int
	drops   int
}

// natMapping is one NAT translation entry.
type natMapping struct {
	in      flowKey // (proto, insideAddr, insidePort, remoteAddr, remotePort)
	extPort uint16
	created time.Duration // virtual creation time
	last    time.Duration // virtual last-activity time
}

func (n *StatefulNAT) now() time.Duration {
	if n.Net != nil {
		return n.Net.VirtualNow()
	}
	return 0
}

func (n *StatefulNAT) expired(m *natMapping, now time.Duration) bool {
	if n.IdleTimeout > 0 && now-m.last > n.IdleTimeout {
		return true
	}
	if n.RebindAfter > 0 && now-m.created > n.RebindAfter {
		return true
	}
	return false
}

// allocPort picks an unused external port. Caller holds n.mu.
func (n *StatefulNAT) allocPort(ext flowKey) uint16 {
	if n.rng == nil {
		seed := n.Seed
		if seed == 0 {
			seed = 42
		}
		n.rng = rand.New(rand.NewSource(seed))
	}
	for {
		port := uint16(20000 + n.rng.Intn(40000))
		ext.srcPort = port
		if _, taken := n.ext[ext]; !taken {
			return port
		}
	}
}

// Process implements Middlebox.
func (n *StatefulNAT) Process(p *wire.Packet, dir Direction) ([]*wire.Packet, []*wire.Packet) {
	if p.Proto != wire.ProtoTCP && p.Proto != wire.ProtoUDP {
		return []*wire.Packet{p}, nil
	}
	sport, dport, ok := transportPorts(p)
	if !ok {
		return []*wire.Packet{p}, nil
	}
	now := n.now()
	if dir == n.Dir && p.Src == n.Inside {
		// Outbound: translate (Inside, sport) -> (Outside, extPort).
		key := flowKey{proto: p.Proto, src: p.Src, srcPort: sport, dst: p.Dst, dstPort: dport}
		n.mu.Lock()
		if n.flows == nil {
			n.flows, n.ext = make(map[flowKey]*natMapping), make(map[flowKey]*natMapping)
		}
		m := n.flows[key]
		if m != nil && n.expired(m, now) {
			// Stale mapping: drop it and rebind to a fresh external port.
			delete(n.ext, n.extKey(m))
			delete(n.flows, key)
			m = nil
			n.rebinds++
		}
		if m == nil {
			ext := flowKey{proto: p.Proto, src: n.Outside, dst: p.Dst, dstPort: dport}
			m = &natMapping{in: key, extPort: n.allocPort(ext), created: now}
			n.flows[key] = m
			n.ext[n.extKey(m)] = m
		}
		m.last = now
		extPort := m.extPort
		n.mu.Unlock()
		p.Src = n.Outside
		return []*wire.Packet{rewritePorts(p, int(extPort), -1)}, nil
	}
	if dir != n.Dir && p.Dst == n.Outside {
		// Inbound: reverse-translate (Outside, dport) -> (Inside, inPort),
		// matching on the full external tuple (endpoint-dependent NAT).
		key := flowKey{proto: p.Proto, src: n.Outside, srcPort: dport, dst: p.Src, dstPort: sport}
		n.mu.Lock()
		m := n.ext[key]
		if m != nil && n.expired(m, now) {
			delete(n.flows, m.in)
			delete(n.ext, key)
			m = nil
		}
		if m == nil {
			// No (or stale) mapping: the NAT has nothing to deliver this to.
			n.drops++
			n.mu.Unlock()
			return nil, nil
		}
		m.last = now
		inPort := m.in.srcPort
		inside := m.in.src
		n.mu.Unlock()
		p.Dst = inside
		return []*wire.Packet{rewritePorts(p, -1, int(inPort))}, nil
	}
	return []*wire.Packet{p}, nil
}

func (n *StatefulNAT) extKey(m *natMapping) flowKey {
	return flowKey{proto: m.in.proto, src: n.Outside, srcPort: m.extPort, dst: m.in.dst, dstPort: m.in.dstPort}
}

// Rebinds reports how many mappings expired and were re-allocated.
func (n *StatefulNAT) Rebinds() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rebinds
}

// Dropped reports inbound packets discarded for lack of a mapping.
func (n *StatefulNAT) Dropped() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.drops
}

// StatefulFirewall admits only traffic belonging to flows initiated from
// the Inside direction. Flow state is created by an outbound TCP SYN (or
// any outbound UDP datagram) and dropped again on expiry. Two expiry
// mechanisms reproduce the failure modes measured against real stateful
// firewalls: per-direction idle expiry (IdleTimeout without a packet in
// one direction blocks that direction only — the asymmetric-path drops
// of half-broken state tables) and an absolute StateTTL after which the
// whole flow's state is evicted regardless of activity, silently
// blackholing an active connection mid-transfer.
type StatefulFirewall struct {
	// Inside is the trusted (state-creating) direction on the link.
	Inside Direction
	// Net supplies the virtual clock driving expiry.
	Net *Network
	// IdleTimeout expires one direction of a flow when that direction has
	// been quiet for this long (virtual time; 0 = never).
	IdleTimeout time.Duration
	// StateTTL evicts a flow's state this long after creation regardless
	// of activity (virtual time; 0 = never).
	StateTTL time.Duration
	// MaxFlows caps the state table; outbound SYNs past the cap are
	// dropped (0 = unlimited).
	MaxFlows int
	// RSTOnEvict answers TCP packets of evicted/unknown flows with a
	// forged RST toward the sender instead of a silent drop.
	RSTOnEvict bool

	mu      sync.Mutex
	flows   map[flowKey]*fwFlow
	dropped int
}

// fwFlow is one firewall state entry; last[0] is the inside->outside
// direction's last-activity time, last[1] the reverse.
type fwFlow struct {
	created time.Duration
	last    [2]time.Duration
}

func (f *StatefulFirewall) now() time.Duration {
	if f.Net != nil {
		return f.Net.VirtualNow()
	}
	return 0
}

// Process implements Middlebox.
func (f *StatefulFirewall) Process(p *wire.Packet, dir Direction) ([]*wire.Packet, []*wire.Packet) {
	if p.Proto != wire.ProtoTCP && p.Proto != wire.ProtoUDP {
		return []*wire.Packet{p}, nil
	}
	sport, dport, ok := transportPorts(p)
	if !ok {
		return []*wire.Packet{p}, nil
	}
	outbound := dir == f.Inside
	key := flowKey{proto: p.Proto, src: p.Src, srcPort: sport, dst: p.Dst, dstPort: dport}
	if !outbound {
		key = key.reversed()
	}
	di := 0
	if !outbound {
		di = 1
	}
	now := f.now()

	f.mu.Lock()
	if f.flows == nil {
		f.flows = make(map[flowKey]*fwFlow)
	}
	fl := f.flows[key]
	if fl != nil && f.StateTTL > 0 && now-fl.created > f.StateTTL {
		// Hard TTL: the whole flow's state is gone; a fresh outbound SYN
		// may recreate it.
		delete(f.flows, key)
		fl = nil
	}
	seg := parseTCP(p)
	isSYN := seg != nil && seg.Flags.Has(wire.FlagSYN) && !seg.Flags.Has(wire.FlagACK)
	if fl == nil {
		creates := outbound && (p.Proto == wire.ProtoUDP || isSYN)
		if creates && (f.MaxFlows <= 0 || len(f.flows) < f.MaxFlows) {
			fl = &fwFlow{created: now}
			fl.last[0], fl.last[1] = now, now
			f.flows[key] = fl
			f.mu.Unlock()
			return []*wire.Packet{p}, nil
		}
		f.dropped++
		f.mu.Unlock()
		return f.rejected(p, seg)
	}
	if f.IdleTimeout > 0 && now-fl.last[di] > f.IdleTimeout {
		// Per-direction idle expiry: this direction's state is gone while
		// the other may still flow — the asymmetric-drop failure mode. The
		// drop does not refresh the timer, so the direction stays blocked
		// until the endpoint opens a fresh flow.
		f.dropped++
		f.mu.Unlock()
		return f.rejected(p, seg)
	}
	fl.last[di] = now
	f.mu.Unlock()
	return []*wire.Packet{p}, nil
}

// rejected builds the response for an inadmissible packet: silent drop,
// or a forged RST toward the sender for TCP when RSTOnEvict is set.
func (f *StatefulFirewall) rejected(p *wire.Packet, seg *wire.Segment) ([]*wire.Packet, []*wire.Packet) {
	if f.RSTOnEvict && seg != nil && !seg.Flags.Has(wire.FlagRST) {
		return nil, []*wire.Packet{forgeRST(p, seg, true)}
	}
	return nil, nil
}

// Dropped reports how many packets the firewall rejected.
func (f *StatefulFirewall) Dropped() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Flows reports the current state-table size.
func (f *StatefulFirewall) Flows() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.flows)
}

// SpliceProxy emulates a transparently terminating proxy ([76] in the
// paper): the box accepts the client's TCP connection and opens its own
// toward the server, splicing the byte streams. From the endpoints'
// perspective the observable effect is that neither ever sees the
// other's TCP sequence space — each sees one the proxy re-originated.
// The model rewrites Seq/Ack (and SACK blocks, which live in the data
// sender's sequence space) by a per-flow random delta in each direction,
// and can strip options or clamp the MSS on SYNs the way a terminating
// proxy negotiating its own connections would. TLS bytes pass through
// untouched, so anything riding the record layer — TCPLS control frames
// included — survives; anything riding cleartext TCP fields does not.
type SpliceProxy struct {
	// Dir is the client-to-server direction (flows are created by SYNs
	// travelling this way).
	Dir Direction
	// Seed drives the per-flow sequence deltas (0 = fixed default seed).
	Seed int64
	// StripOptions lists TCP option kinds removed from SYN segments (the
	// proxy negotiates its own connections; exotic options don't survive).
	StripOptions []uint8
	// MSSClamp rewrites the MSS option on SYNs when > 0.
	MSSClamp uint16

	mu     sync.Mutex
	rng    *rand.Rand
	flows  map[flowKey]*spliceFlow
	splits int
}

// spliceFlow holds the per-direction sequence deltas. dFwd shifts
// client->server sequence numbers, dRev shifts server->client.
type spliceFlow struct {
	dFwd, dRev uint32
	revSet     bool
}

// Process implements Middlebox.
func (sp *SpliceProxy) Process(p *wire.Packet, dir Direction) ([]*wire.Packet, []*wire.Packet) {
	seg := parseTCP(p)
	if seg == nil {
		return []*wire.Packet{p}, nil
	}
	fwd := dir == sp.Dir
	key := flowKey{proto: p.Proto, src: p.Src, srcPort: seg.SrcPort, dst: p.Dst, dstPort: seg.DstPort}
	if !fwd {
		key = key.reversed()
	}

	sp.mu.Lock()
	if sp.flows == nil {
		sp.flows = make(map[flowKey]*spliceFlow)
	}
	if sp.rng == nil {
		seed := sp.Seed
		if seed == 0 {
			seed = 42
		}
		sp.rng = rand.New(rand.NewSource(seed))
	}
	fl := sp.flows[key]
	if fwd && seg.Flags.Has(wire.FlagSYN) && !seg.Flags.Has(wire.FlagACK) {
		// New client connection: the proxy re-originates toward the server
		// with its own ISN (a retransmitted SYN reuses the existing flow).
		if fl == nil {
			fl = &spliceFlow{dFwd: sp.rng.Uint32()}
			sp.flows[key] = fl
			sp.splits++
		}
	}
	if fl == nil {
		sp.mu.Unlock()
		return []*wire.Packet{p}, nil // not a proxied flow (e.g. stray RST)
	}
	if !fwd && seg.Flags.Has(wire.FlagSYN) && !fl.revSet {
		// Server's SYN|ACK: re-originate the server->client space too.
		fl.dRev = sp.rng.Uint32()
		fl.revSet = true
	}
	dFwd, dRev, revSet := fl.dFwd, fl.dRev, fl.revSet
	sp.mu.Unlock()

	if fwd {
		seg.Seq += dFwd
		if seg.Flags.Has(wire.FlagACK) && revSet {
			seg.Ack -= dRev
		}
		shiftSACK(seg, -int64(dRev))
		if seg.Flags.Has(wire.FlagSYN) {
			sp.rewriteSYNOptions(seg)
		}
	} else {
		if revSet {
			seg.Seq += dRev
		}
		if seg.Flags.Has(wire.FlagACK) {
			seg.Ack -= dFwd
		}
		shiftSACK(seg, -int64(dFwd))
		if seg.Flags.Has(wire.FlagSYN) {
			sp.rewriteSYNOptions(seg)
		}
	}
	return []*wire.Packet{reserialize(p, seg)}, nil
}

// rewriteSYNOptions applies the proxy's own option policy to a SYN.
func (sp *SpliceProxy) rewriteSYNOptions(seg *wire.Segment) {
	if len(sp.StripOptions) > 0 {
		seg.Options = wire.StripOptions(seg.Options, sp.StripOptions...)
	}
	if sp.MSSClamp > 0 {
		if o := wire.FindOption(seg.Options, wire.OptKindMSS); o != nil {
			if mss, ok := o.MSS(); ok && mss > sp.MSSClamp {
				clamped := wire.MSSOption(sp.MSSClamp)
				o.Data = clamped.Data
			}
		}
	}
}

// shiftSACK adds delta (mod 2^32) to every SACK block edge: the blocks
// describe the data sender's sequence space, which the proxy shifted.
func shiftSACK(seg *wire.Segment, delta int64) {
	o := wire.FindOption(seg.Options, wire.OptKindSACK)
	if o == nil {
		return
	}
	blocks, ok := o.SACKBlocks()
	if !ok {
		return
	}
	for i := range blocks {
		blocks[i].Left = uint32(int64(blocks[i].Left) + delta)
		blocks[i].Right = uint32(int64(blocks[i].Right) + delta)
	}
	shifted := wire.SACKOption(blocks)
	o.Data = shifted.Data
}

// Splits reports how many client connections the proxy re-originated.
func (sp *SpliceProxy) Splits() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.splits
}

// Default extension codepoints for HelloExtensionMangler: the TCPLS
// private-use extension (tls13.ExtTCPLS; duplicated here so netsim does
// not depend on the TLS package) and a GREASE replacement value.
const (
	mangleDefaultTarget  uint16 = 0xff5c
	mangleDefaultReplace uint16 = 0x8a8a
)

// HelloExtensionMangler rewrites the type of a target extension in TLS
// ClientHellos to a GREASE value — the closest a middlebox can get to
// "stripping" a ClientHello extension without changing segment lengths
// and breaking its own TCP bookkeeping. The rewrite is invisible to the
// TCP layer (length-preserving, checksum fixed) but not to TLS: the two
// ends now disagree on the handshake transcript, so the handshake fails
// — which is exactly the signal the TCPLS degradation machinery must
// turn into a plain-TLS fallback rather than a hard error.
type HelloExtensionMangler struct {
	// TargetExt is the extension type to overwrite (default: the TCPLS
	// codepoint 0xff5c).
	TargetExt uint16
	// ReplaceWith is the replacement type (default GREASE 0x8a8a).
	ReplaceWith uint16
	// SkipFlows leaves the first N flows' ClientHellos untouched — used
	// to interfere with JOIN handshakes while sparing the primary.
	SkipFlows int

	mu      sync.Mutex
	handled map[flowKey]bool
	seen    int
	mangled int
}

// Process implements Middlebox.
func (h *HelloExtensionMangler) Process(p *wire.Packet, dir Direction) ([]*wire.Packet, []*wire.Packet) {
	seg := parseTCP(p)
	if seg == nil || len(seg.Payload) == 0 {
		return []*wire.Packet{p}, nil
	}
	// Only the first TLS record of a flow can be a ClientHello: record
	// type 0x16 (handshake), message type 0x01.
	if len(seg.Payload) < 6 || seg.Payload[0] != 0x16 || seg.Payload[5] != 0x01 {
		return []*wire.Packet{p}, nil
	}
	key := flowKey{proto: p.Proto, src: p.Src, srcPort: seg.SrcPort, dst: p.Dst, dstPort: seg.DstPort}
	h.mu.Lock()
	if h.handled == nil {
		h.handled = make(map[flowKey]bool)
	}
	if h.handled[key] {
		h.mu.Unlock()
		return []*wire.Packet{p}, nil
	}
	h.handled[key] = true
	h.seen++
	skip := h.seen <= h.SkipFlows
	h.mu.Unlock()
	if skip {
		return []*wire.Packet{p}, nil
	}
	target, replace := h.TargetExt, h.ReplaceWith
	if target == 0 {
		target = mangleDefaultTarget
	}
	if replace == 0 {
		replace = mangleDefaultReplace
	}
	if mangleClientHelloExt(seg.Payload, target, replace) {
		h.mu.Lock()
		h.mangled++
		h.mu.Unlock()
		return []*wire.Packet{reserialize(p, seg)}, nil
	}
	return []*wire.Packet{p}, nil
}

// Mangled reports how many ClientHellos were rewritten.
func (h *HelloExtensionMangler) Mangled() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.mangled
}

// mangleClientHelloExt walks the extension list of the ClientHello at
// the start of payload (a TLS record) and overwrites the 2-byte type of
// the target extension in place. Every access is bounds-checked: a
// truncated or malformed hello mangles nothing and the packet passes
// through unmodified — middleboxes fail open.
func mangleClientHelloExt(payload []byte, target, replace uint16) bool {
	be := func(i int) int { return int(payload[i])<<8 | int(payload[i+1]) }
	// Record header (5) + handshake header (4).
	if len(payload) < 9 {
		return false
	}
	end := 5 + 4 + int(payload[6])<<16 + be(7)
	if end > len(payload) {
		end = len(payload) // hello continues in a later segment: scan what's here
	}
	i := 9
	// legacy_version (2) + random (32).
	i += 2 + 32
	if i+1 > end {
		return false
	}
	// legacy_session_id.
	i += 1 + int(payload[i])
	if i+2 > end {
		return false
	}
	// cipher_suites.
	i += 2 + be(i)
	if i+1 > end {
		return false
	}
	// legacy_compression_methods.
	i += 1 + int(payload[i])
	if i+2 > end {
		return false
	}
	// extensions.
	extEnd := i + 2 + be(i)
	if extEnd > end {
		extEnd = end
	}
	i += 2
	for i+4 <= extEnd {
		typ := be(i)
		length := be(i + 2)
		if typ == int(target) {
			payload[i] = byte(replace >> 8)
			payload[i+1] = byte(replace)
			return true
		}
		i += 4 + length
	}
	return false
}

// ProtoBlocker drops every packet of the listed IP protocols — the
// UDP-hostile networks (§2) where QUIC cannot pass but TCP-based
// transports can.
type ProtoBlocker struct {
	// Protos lists the blocked IP protocol numbers.
	Protos []uint8

	mu      sync.Mutex
	dropped int
}

// Process implements Middlebox.
func (b *ProtoBlocker) Process(p *wire.Packet, dir Direction) ([]*wire.Packet, []*wire.Packet) {
	for _, proto := range b.Protos {
		if p.Proto == proto {
			b.mu.Lock()
			b.dropped++
			b.mu.Unlock()
			return nil, nil
		}
	}
	return []*wire.Packet{p}, nil
}

// Dropped reports how many packets were blocked.
func (b *ProtoBlocker) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}
