package netsim

import (
	"testing"

	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// fuzzPacket wraps fuzz input as a TCP packet between the test addresses.
func fuzzPacket(data []byte) *wire.Packet {
	return &wire.Packet{Src: cAddr, Dst: sAddr, Proto: wire.ProtoTCP, TTL: 64,
		Payload: append([]byte(nil), data...)}
}

// fuzzSeedCorpus returns representative real segments: a SYN with
// options, a data segment carrying a ClientHello, and a SACK carrier.
func fuzzSeedCorpus() [][]byte {
	var out [][]byte
	syn := &wire.Segment{SrcPort: 1000, DstPort: 443, Seq: 100, Flags: wire.FlagSYN,
		Options: []wire.Option{wire.MSSOption(1460), wire.SACKPermittedOption(), wire.WindowScaleOption(7)}}
	if b, err := syn.Marshal(cAddr, sAddr); err == nil {
		out = append(out, b)
	}
	hello := &wire.Segment{SrcPort: 1000, DstPort: 443, Seq: 101, Ack: 201,
		Flags: wire.FlagACK | wire.FlagPSH, Payload: buildClientHello(0x002b, 0xff5c)}
	if b, err := hello.Marshal(cAddr, sAddr); err == nil {
		out = append(out, b)
	}
	sack := &wire.Segment{SrcPort: 443, DstPort: 1000, Seq: 201, Ack: 150, Flags: wire.FlagACK,
		Options: []wire.Option{wire.SACKOption([]wire.SACKBlock{{Left: 160, Right: 180}})}}
	if b, err := sack.Marshal(cAddr, sAddr); err == nil {
		out = append(out, b)
	}
	return out
}

// checkRewrite asserts the middlebox invariant on a fuzzed input: the
// rewrite must never panic, and when the input was a parseable segment
// every forwarded packet must still parse (a middlebox must not corrupt
// framing the receiving stack chokes on).
func checkRewrite(t *testing.T, m Middlebox, data []byte) {
	t.Helper()
	p := fuzzPacket(data)
	parsedIn := parseTCP(p) != nil
	fwd, rev := m.Process(p, AtoB)
	for _, q := range append(fwd, rev...) {
		if q == nil {
			t.Fatal("middlebox forwarded a nil packet")
		}
		if parsedIn && q.Proto == wire.ProtoTCP {
			if _, err := wire.UnmarshalSegment(q.Payload, q.Src, q.Dst, false); err != nil {
				t.Fatalf("rewritten segment no longer parses: %v", err)
			}
		}
	}
}

// FuzzOptionStripperRewrite feeds arbitrary bytes through the option
// stripper: fuzzed segment in, rewritten segment must still parse and
// never panic the receiving stack.
func FuzzOptionStripperRewrite(f *testing.F) {
	for _, seed := range fuzzSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		strip := &OptionStripper{Kinds: []uint8{wire.OptKindSACKPermitted, wire.OptKindWindowScale, wire.OptKindUserTimeout}}
		checkRewrite(t, strip, data)
	})
}

// FuzzSpliceProxyRewrite drives the terminating-proxy and ClientHello
// mangler rewrite paths with arbitrary segments, preceded by a handshake
// so stateful rewriting is actually exercised.
func FuzzSpliceProxyRewrite(f *testing.F) {
	for _, seed := range fuzzSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sp := &SpliceProxy{Dir: AtoB, Seed: 9, StripOptions: []uint8{wire.OptKindUserTimeout}, MSSClamp: 1300}
		// Establish a spliced flow matching the common seed tuple so
		// fuzzed follow-ups hit the rewrite path, not just the bypass.
		syn := &wire.Segment{SrcPort: 1000, DstPort: 443, Seq: 100, Flags: wire.FlagSYN}
		if raw, err := syn.Marshal(cAddr, sAddr); err == nil {
			sp.Process(fuzzPacket(raw), AtoB)
		}
		checkRewrite(t, sp, data)
		// Reverse direction too: acks/SACKs are rewritten on the way back.
		p := fuzzPacket(data)
		p.Src, p.Dst = sAddr, cAddr
		sp.Process(p, BtoA)

		checkRewrite(t, &HelloExtensionMangler{}, data)
	})
}
