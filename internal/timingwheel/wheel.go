// Package timingwheel is a hierarchical timing wheel: the shared timer
// substrate for the hot path. The Go runtime's timer heap is general
// but costs a heap node, a runtime lock pass and (for AfterFunc) an
// allocation per (re)arm — a price the TCP machinery pays on every
// segment it sends, because every transmit re-arms the retransmission
// timer. A wheel turns that into an array-slot relink: O(1) insert,
// O(1) cancel, and a Timer node that is allocated once per connection
// and rearmed in place forever after.
//
// The wheel has two halves:
//
//   - a purely virtual core (slots, cascade, ledger) advanced by an
//     explicit AdvanceTo call — this is what property tests drive
//     against a reference heap model, tick by tick, with no goroutines
//     and no wall clock anywhere; and
//   - an optional driver goroutine (Start) that maps wall time onto
//     ticks and sleeps until a conservative bound on the earliest
//     armed deadline, so an idle wheel costs zero wakeups — it is
//     *not* a fixed-rate ticker.
//
// Concurrency contract: Schedule/Stop may be called from any
// goroutine. Callbacks run without the wheel lock held, on the
// advancing goroutine (the driver, or the AdvanceTo caller in manual
// mode). As with time.AfterFunc, Stop does not wait for a running
// callback; callers that rearm from their own callback (the
// retransmission pattern) are safe because a fired timer is fully
// unlinked before its callback runs.
package timingwheel

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

const (
	wheelBits = 6
	slotsPer  = 1 << wheelBits // 64 slots per level
	slotMask  = slotsPer - 1
	numLevels = 4 // spans tick<<24 ≈ 55 min at 200µs ticks before horizon parking
)

// maxHorizon is the largest relative delay (in ticks) the wheel can
// represent directly; longer delays park at the horizon and re-park
// as they cascade, so they still fire, just via extra relinks.
const maxHorizon = int64(1) << (wheelBits * numLevels)

// Timer is one schedulable entry. The zero value is an unarmed timer
// bound to no wheel; Wheel.Schedule binds and arms it. A Timer must
// not be copied after first use and must not be armed on two wheels at
// once.
type Timer struct {
	next, prev *Timer // intrusive doubly-linked slot list

	wheel *Wheel
	fn    func()
	when  int64 // absolute tick of expiry
	lvl   int8  // placement level, valid while armed
	slot  int16 // placement slot, valid while armed
	armed bool
}

// Stop disarms the timer. It reports whether it was armed (like
// time.Timer.Stop: false means it already fired or was never armed).
// It does not wait for a concurrently running callback.
func (t *Timer) Stop() bool {
	w := t.wheel
	if w == nil {
		return false
	}
	w.mu.Lock()
	armed := t.armed
	if armed {
		w.unlink(t)
		t.armed = false
		w.ledger.canceled++
	}
	w.mu.Unlock()
	return armed
}

// Wheel is a hierarchical timing wheel. Create with New; drive it
// manually with AdvanceTo, or Start it to drive expiry from wall time.
type Wheel struct {
	tick time.Duration // wall duration of one tick

	mu     sync.Mutex
	cur    int64 // current tick; everything due <= cur has fired
	levels [numLevels][slotsPer]timerList
	count  int // armed timers

	// sleepTarget is the tick the driver intends to wake at;
	// math.MaxInt64 while the driver is awake or absent. Schedule
	// pokes the driver when arming something earlier than this.
	sleepTarget int64

	ledger ledger

	started atomic.Bool
	poke    chan struct{} // rings when an earlier deadline arrives
	done    chan struct{}
	base    time.Time // wall time of tick 0

	// fired is scratch for collecting one tick's expirations under the
	// lock and running them outside it; owned by the advancing
	// goroutine. The callbacks are captured at unlink time, not read
	// from the Timer at call time: a caller may Schedule (rearm) a
	// just-fired node before the advancing goroutine reaches it, and
	// the stale expiry must run the old callback, exactly as if each
	// arm had allocated a fresh timer.
	fired []func()
}

// ledger counts every scheduling outcome. Conservation invariant
// (asserted by tests whenever convenient):
//
//	scheduled == fired + canceled + pending
type ledger struct {
	scheduled uint64
	fired     uint64
	canceled  uint64
}

// Ledger is a snapshot of the wheel's scheduling ledger.
type Ledger struct {
	Scheduled, Fired, Canceled uint64
	Pending                    int
}

// Ledger snapshots the conservation counters.
func (w *Wheel) Ledger() Ledger {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Ledger{
		Scheduled: w.ledger.scheduled,
		Fired:     w.ledger.fired,
		Canceled:  w.ledger.canceled,
		Pending:   w.count,
	}
}

type timerList struct{ head *Timer }

// New creates a wheel with the given tick granularity. The wheel is
// inert until AdvanceTo (manual mode) or Start (driven mode) moves it.
func New(tick time.Duration) *Wheel {
	if tick <= 0 {
		tick = time.Millisecond
	}
	return &Wheel{
		tick:        tick,
		sleepTarget: math.MaxInt64,
		poke:        make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
}

// Tick returns the wheel's tick granularity.
func (w *Wheel) Tick() time.Duration { return w.tick }

// Pending reports the number of armed timers.
func (w *Wheel) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Cur returns the wheel's current tick (manual-mode test hook).
func (w *Wheel) Cur() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cur
}

// ticksFor converts a relative duration into a tick count, rounding up
// so a timer never fires early (matching time.AfterFunc's contract).
func (w *Wheel) ticksFor(d time.Duration) int64 {
	if d <= 0 {
		return 1 // expire on the next advance, never synchronously
	}
	n := (int64(d) + int64(w.tick) - 1) / int64(w.tick)
	if n < 1 {
		n = 1
	}
	return n
}

// Schedule arms t to run fn after d, binding it to the wheel. If t is
// already armed it is rescheduled — Schedule doubles as Reset. The
// Timer is reusable forever after; steady-state rearm does not
// allocate.
func (w *Wheel) Schedule(t *Timer, d time.Duration, fn func()) *Timer {
	w.mu.Lock()
	if t.armed {
		w.unlink(t)
		w.ledger.canceled++
	}
	t.wheel = w
	t.fn = fn
	t.when = w.cur + w.ticksFor(d)
	if w.started.Load() {
		// Driver mode: cur is floor(elapsed/tick), so cur+ceil(d/tick)
		// can undershoot wall-clock d by up to one tick — and callers
		// written against time.AfterFunc (deadline cond-loops that
		// re-check the clock and wait again) lose their only wakeup if
		// the timer fires early. Map the expiry absolutely instead:
		// when*tick >= elapsed+d means the driver cannot reach it before
		// d has truly passed.
		if abs := (int64(time.Since(w.base)) + int64(d) + int64(w.tick) - 1) / int64(w.tick); abs > t.when {
			t.when = abs
		}
	}
	t.armed = true
	w.place(t)
	w.count++
	w.ledger.scheduled++
	wake := t.when < w.sleepTarget
	w.mu.Unlock()
	if wake && w.started.Load() {
		select {
		case w.poke <- struct{}{}:
		default:
		}
	}
	return t
}

// AfterFunc allocates a fresh Timer and schedules it — the drop-in
// replacement for time.AfterFunc on one-shot paths. Reusable callers
// (per-connection timers) should hold a Timer and use Schedule.
func (w *Wheel) AfterFunc(d time.Duration, fn func()) *Timer {
	return w.Schedule(&Timer{}, d, fn)
}

// place links t into the slot for its expiry and records the placement
// coordinates on the timer so unlink is O(1). Caller holds w.mu.
func (w *Wheel) place(t *Timer) {
	delta := t.when - w.cur
	if delta < 1 {
		delta = 1
	}
	if delta >= maxHorizon {
		delta = maxHorizon - 1 // park at the horizon; re-place on cascade
	}
	for lvl := 0; lvl < numLevels; lvl++ {
		span := int64(1) << (wheelBits * (lvl + 1))
		if delta < span {
			idx := ((w.cur + delta) >> (wheelBits * lvl)) & slotMask
			t.lvl, t.slot = int8(lvl), int16(idx)
			l := &w.levels[lvl][idx]
			t.prev = nil
			t.next = l.head
			if l.head != nil {
				l.head.prev = t
			}
			l.head = t
			return
		}
	}
}

// unlink removes t from its slot list using the coordinates recorded
// by place. Caller holds w.mu; t must be armed.
func (w *Wheel) unlink(t *Timer) {
	l := &w.levels[t.lvl][t.slot]
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		l.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	}
	t.next, t.prev = nil, nil
	w.count--
}

// AdvanceTo moves virtual time forward to absolute tick target, firing
// every timer due on the way. Time advances strictly tick by tick (so
// cascades can never be skipped), and each tick's expirations run —
// outside the wheel lock — before the next tick begins, so a callback
// that schedules a short timer sees it fire later in the same advance,
// exactly like the reference heap model.
//
// Within one tick, expiration order is unspecified (like the runtime's
// timer heap under a coarse clock).
func (w *Wheel) AdvanceTo(target int64) {
	for {
		w.mu.Lock()
		if w.cur >= target {
			w.mu.Unlock()
			return
		}
		if w.count == 0 {
			// Empty wheel: jumping is safe, nothing can cascade.
			w.cur = target
			w.mu.Unlock()
			return
		}
		w.fired = w.fired[:0]
		for w.cur < target && len(w.fired) == 0 {
			w.cur++
			idx := w.cur & slotMask
			if idx == 0 {
				w.cascade()
			}
			l := &w.levels[0][idx]
			for t := l.head; t != nil; {
				nx := t.next
				// Level-0 entries are always within one lap of cur,
				// so everything in this slot is due now.
				w.unlink(t)
				t.armed = false
				w.ledger.fired++
				w.fired = append(w.fired, t.fn)
				t = nx
			}
		}
		fired := w.fired
		w.mu.Unlock()
		for _, fn := range fired {
			fn()
		}
		if len(fired) == 0 {
			return // reached target without further expirations
		}
	}
}

// cascade re-places entries from higher levels whose residual delay
// now fits a finer level, firing any whose expiry IS the boundary tick
// (re-placing those would delay them one tick). Called when level 0
// wraps (cur & 63 == 0). Caller holds w.mu.
func (w *Wheel) cascade() {
	for lvl := 1; lvl < numLevels; lvl++ {
		idx := (w.cur >> (wheelBits * lvl)) & slotMask
		l := &w.levels[lvl][idx]
		head := l.head
		l.head = nil
		for t := head; t != nil; {
			nx := t.next
			t.next, t.prev = nil, nil
			if t.when <= w.cur {
				t.armed = false
				w.count--
				w.ledger.fired++
				w.fired = append(w.fired, t.fn)
			} else {
				w.count-- // place re-links; keep count balanced
				w.place(t)
				w.count++
			}
			t = nx
		}
		if idx != 0 {
			return // this level did not wrap; higher levels unchanged
		}
	}
}

// wakeBound returns a conservative lower bound (in ticks) on the next
// moment anything can happen: the exact expiry tick for level-0
// entries, the cascade boundary for higher levels. Sleeping until the
// bound can wake the driver early (at a cascade), never late. Caller
// holds w.mu. Returns math.MaxInt64 when nothing is armed.
func (w *Wheel) wakeBound() int64 {
	bound := int64(math.MaxInt64)
	if w.count == 0 {
		return bound
	}
	// Level 0: entries fire exactly at the next occurrence of their
	// slot index after cur.
	for off := int64(1); off <= slotsPer; off++ {
		tick := w.cur + off
		if w.levels[0][tick&slotMask].head != nil {
			bound = tick
			break // offsets only grow
		}
	}
	// Levels >= 1: slot idx cascades at the next tick that is a
	// multiple of 2^(6*lvl) whose level-lvl index equals idx.
	for lvl := 1; lvl < numLevels; lvl++ {
		shift := uint(wheelBits * lvl)
		for idx := int64(0); idx < slotsPer; idx++ {
			if w.levels[lvl][idx].head == nil {
				continue
			}
			m := w.cur >> shift
			c := m - (m & slotMask) + idx
			for c<<shift <= w.cur {
				c += slotsPer
			}
			if b := c << shift; b < bound {
				bound = b
			}
		}
	}
	return bound
}

// --- wall-clock driver ---

// Start launches the driver goroutine: wall time maps onto ticks from
// the moment of the call, and the wheel sleeps until the earliest
// armed deadline (poked awake when an earlier one arrives). Start is
// idempotent and returns the wheel for chaining.
func (w *Wheel) Start() *Wheel {
	if !w.started.CompareAndSwap(false, true) {
		return w
	}
	w.base = time.Now()
	go w.run()
	return w
}

// StopDriver terminates the driver goroutine (no-op in manual mode or
// if already stopped). Armed timers stop firing; their ledger entries
// stay pending.
func (w *Wheel) StopDriver() {
	if w.started.CompareAndSwap(true, false) {
		close(w.done)
	}
}

// nowTick converts wall time to the wheel's tick clock.
func (w *Wheel) nowTick() int64 {
	return int64(time.Since(w.base) / w.tick)
}

// idleSleep bounds the driver's sleep when no timer is armed; a poke
// cuts it short, so the bound only caps clock-drift exposure.
const idleSleep = time.Second

func (w *Wheel) run() {
	sleep := time.NewTimer(idleSleep)
	defer sleep.Stop()
	for {
		w.AdvanceTo(w.nowTick())

		w.mu.Lock()
		bound := w.wakeBound()
		w.sleepTarget = bound
		w.mu.Unlock()

		d := idleSleep
		if bound != math.MaxInt64 {
			until := time.Duration(bound)*w.tick - time.Since(w.base)
			if until < w.tick {
				until = w.tick
			}
			if until < d {
				d = until
			}
		}
		if !sleep.Stop() {
			select {
			case <-sleep.C:
			default:
			}
		}
		sleep.Reset(d)
		select {
		case <-sleep.C:
		case <-w.poke:
		case <-w.done:
			return
		}
		w.mu.Lock()
		w.sleepTarget = math.MaxInt64 // awake: every Schedule pokes
		w.mu.Unlock()
	}
}

// --- process-default wheel ---

var (
	defaultOnce  sync.Once
	defaultWheel *Wheel
)

// DefaultTick is the default wheel's granularity: fine enough for
// millisecond-class protocol timers, coarse enough that a busy wheel
// batches many expirations per wakeup.
const DefaultTick = 200 * time.Microsecond

// Default returns the process-wide driven wheel, starting it on first
// use. Code without a Network-scoped wheel (real-clock sessions)
// schedules here; the driver goroutine is a per-process constant, like
// the runtime's own timer machinery.
func Default() *Wheel {
	defaultOnce.Do(func() {
		defaultWheel = New(DefaultTick)
		defaultWheel.Start()
	})
	return defaultWheel
}
