package timingwheel

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// --- reference model: a heap-based timer queue ---

type modelEntry struct {
	id    int
	when  int64
	seq   int // insertion order, to make heap order total
	alive bool
}

type modelHeap []*modelEntry

func (h modelHeap) Len() int { return len(h) }
func (h modelHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h modelHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *modelHeap) Push(x any)        { *h = append(*h, x.(*modelEntry)) }
func (h *modelHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// model is the reference implementation: a lazily-deleted binary heap
// over a virtual tick clock. Fire order within one tick is treated as
// unspecified (both implementations are compared as per-tick sets).
type model struct {
	h    modelHeap
	live map[int]*modelEntry
	seq  int
	cur  int64
}

func newModel() *model { return &model{live: make(map[int]*modelEntry)} }

func (m *model) schedule(id int, ticks int64) {
	if old, ok := m.live[id]; ok {
		old.alive = false
	}
	e := &modelEntry{id: id, when: m.cur + ticks, seq: m.seq, alive: true}
	m.seq++
	m.live[id] = e
	heap.Push(&m.h, e)
}

func (m *model) cancel(id int) bool {
	e, ok := m.live[id]
	if !ok {
		return false
	}
	e.alive = false
	delete(m.live, id)
	return true
}

// advance returns the fire events up to target as (tick, id) pairs in
// tick order.
func (m *model) advance(target int64) []fireEvent {
	var out []fireEvent
	for m.h.Len() > 0 && m.h[0].when <= target {
		e := heap.Pop(&m.h).(*modelEntry)
		if !e.alive {
			continue
		}
		e.alive = false
		delete(m.live, e.id)
		out = append(out, fireEvent{tick: e.when, id: e.id})
	}
	m.cur = target
	return out
}

type fireEvent struct {
	tick int64
	id   int
}

// sameFires compares two fire logs, requiring identical tick sequences
// and identical per-tick ID sets (within-tick order is unspecified).
func sameFires(a, b []fireEvent) error {
	if len(a) != len(b) {
		return fmt.Errorf("fire count mismatch: %d vs %d", len(a), len(b))
	}
	group := func(evs []fireEvent) map[int64]map[int]int {
		g := make(map[int64]map[int]int)
		for _, e := range evs {
			if g[e.tick] == nil {
				g[e.tick] = make(map[int]int)
			}
			g[e.tick][e.id]++
		}
		return g
	}
	ga, gb := group(a), group(b)
	if len(ga) != len(gb) {
		return fmt.Errorf("distinct fire ticks: %d vs %d", len(ga), len(gb))
	}
	for tick, ids := range ga {
		other, ok := gb[tick]
		if !ok {
			return fmt.Errorf("tick %d fired in one log only", tick)
		}
		if len(ids) != len(other) {
			return fmt.Errorf("tick %d: %d vs %d fires", tick, len(ids), len(other))
		}
		for id, n := range ids {
			if other[id] != n {
				return fmt.Errorf("tick %d id %d: count %d vs %d", tick, id, n, other[id])
			}
		}
	}
	return nil
}

// TestWheelVsHeapModel drives random schedule/cancel/reschedule/advance
// interleavings through the wheel (manual mode) and the reference heap
// simultaneously, requiring identical fire behaviour on the virtual
// clock and an exactly balanced ledger afterwards. Seeds are logged so
// any failure replays deterministically.
func TestWheelVsHeapModel(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		seed := time.Now().UnixNano() + int64(trial)*7919
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Logf("seed=%d", seed)
			rng := rand.New(rand.NewSource(seed))

			w := New(time.Millisecond)
			m := newModel()

			var wheelFires []fireEvent
			timers := make(map[int]*Timer)
			nextID := 0

			mkTimer := func(id int) func() {
				return func() {
					wheelFires = append(wheelFires, fireEvent{tick: w.Cur(), id: id})
				}
			}

			var modelFires []fireEvent
			for op := 0; op < 3000; op++ {
				switch r := rng.Intn(10); {
				case r < 4: // schedule a fresh timer
					id := nextID
					nextID++
					ticks := int64(1 + rng.Intn(5000))
					tm := &Timer{}
					timers[id] = tm
					w.Schedule(tm, time.Duration(ticks)*w.Tick(), mkTimer(id))
					m.schedule(id, ticks)
				case r < 6: // cancel a random live timer
					if len(m.live) == 0 {
						continue
					}
					id := randomLive(rng, m)
					got := timers[id].Stop()
					want := m.cancel(id)
					if got != want {
						t.Fatalf("seed=%d op=%d cancel(%d): wheel=%v model=%v", seed, op, id, got, want)
					}
				case r < 8: // reschedule a random live timer in place
					if len(m.live) == 0 {
						continue
					}
					id := randomLive(rng, m)
					ticks := int64(1 + rng.Intn(5000))
					w.Schedule(timers[id], time.Duration(ticks)*w.Tick(), mkTimer(id))
					m.schedule(id, ticks)
				default: // advance virtual time
					target := m.cur + int64(rng.Intn(400))
					w.AdvanceTo(target)
					modelFires = append(modelFires, m.advance(target)...)
				}
				if wp, mp := w.Pending(), len(m.live); wp != mp {
					t.Fatalf("seed=%d op=%d pending: wheel=%d model=%d", seed, op, wp, mp)
				}
			}

			// Drain: run both far enough that everything fires.
			final := m.cur + 3*5000
			w.AdvanceTo(final)
			modelFires = append(modelFires, m.advance(final)...)

			if err := sameFires(wheelFires, modelFires); err != nil {
				t.Fatalf("seed=%d: %v", seed, err)
			}
			assertLedger(t, w, 0)
		})
	}
}

func randomLive(rng *rand.Rand, m *model) int {
	// Sort so the pick depends only on the seed, not map iteration
	// order — failures replay deterministically.
	ids := make([]int, 0, len(m.live))
	for id := range m.live {
		ids = append(ids, id)
	}
	sortInts(ids)
	return ids[rng.Intn(len(ids))]
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// assertLedger checks scheduled == fired + canceled + pending and the
// expected pending count.
func assertLedger(t *testing.T, w *Wheel, wantPending int) {
	t.Helper()
	l := w.Ledger()
	if l.Pending != wantPending {
		t.Fatalf("pending=%d want %d (ledger %+v)", l.Pending, wantPending, l)
	}
	if l.Scheduled != l.Fired+l.Canceled+uint64(l.Pending) {
		t.Fatalf("ledger leak: scheduled=%d fired=%d canceled=%d pending=%d",
			l.Scheduled, l.Fired, l.Canceled, l.Pending)
	}
}

// TestWheelExactBoundaryFire pins the cascade-boundary case: a timer
// whose expiry tick is an exact multiple of a level span must fire AT
// that tick, not one tick later.
func TestWheelExactBoundaryFire(t *testing.T) {
	for _, ticks := range []int64{64, 128, 4096, 8192, 64 * 64 * 64} {
		w := New(time.Millisecond)
		fired := int64(-1)
		w.AfterFunc(time.Duration(ticks)*w.Tick(), func() { fired = w.Cur() })
		w.AdvanceTo(ticks)
		if fired != ticks {
			t.Fatalf("delay %d: fired at tick %d, want %d", ticks, fired, ticks)
		}
	}
}

// TestWheelHorizonParking verifies delays beyond the wheel's direct
// span still fire (parked at the horizon and re-placed by cascades).
func TestWheelHorizonParking(t *testing.T) {
	if testing.Short() {
		t.Skip("walks 2^24 ticks")
	}
	w := New(time.Millisecond)
	ticks := maxHorizon + 100 // beyond the representable span
	fired := int64(-1)
	w.AfterFunc(time.Duration(ticks)*w.Tick(), func() { fired = w.Cur() })
	w.AdvanceTo(ticks + slotsPer)
	if fired < 0 {
		t.Fatalf("horizon-parked timer never fired")
	}
	if fired < maxHorizon-1 {
		t.Fatalf("horizon-parked timer fired early at %d", fired)
	}
	assertLedger(t, w, 0)
}

// TestWheelCallbackReschedule exercises the retransmission pattern: a
// callback that rearms its own timer with backoff, all within a single
// AdvanceTo window.
func TestWheelCallbackReschedule(t *testing.T) {
	w := New(time.Millisecond)
	var tm Timer
	var fires []int64
	delay := int64(10)
	var rearm func()
	rearm = func() {
		fires = append(fires, w.Cur())
		if len(fires) < 5 {
			delay *= 2
			w.Schedule(&tm, time.Duration(delay)*w.Tick(), rearm)
		}
	}
	w.Schedule(&tm, time.Duration(delay)*w.Tick(), rearm)
	w.AdvanceTo(10 + 20 + 40 + 80 + 160 + 5)
	want := []int64{10, 30, 70, 150, 310}
	if len(fires) != len(want) {
		t.Fatalf("fires=%v want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires=%v want %v", fires, want)
		}
	}
	assertLedger(t, w, 0)
}

// TestWheelStopSemantics matches time.Timer.Stop's contract.
func TestWheelStopSemantics(t *testing.T) {
	w := New(time.Millisecond)
	var ran bool
	tm := w.AfterFunc(5*w.Tick(), func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop on armed timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	w.AdvanceTo(100)
	if ran {
		t.Fatal("stopped timer fired")
	}

	tm2 := w.AfterFunc(5*w.Tick(), func() {})
	w.AdvanceTo(200)
	if tm2.Stop() {
		t.Fatal("Stop after fire returned true")
	}
	if (&Timer{}).Stop() {
		t.Fatal("Stop on zero timer returned true")
	}
	assertLedger(t, w, 0)
}

// TestWheelRearmZeroAlloc is the steady-state allocation gate: once a
// Timer exists, rescheduling it (the per-segment retransmit pattern)
// must not allocate.
func TestWheelRearmZeroAlloc(t *testing.T) {
	w := New(time.Millisecond)
	var tm Timer
	fn := func() {}
	w.Schedule(&tm, 50*w.Tick(), fn)
	allocs := testing.AllocsPerRun(1000, func() {
		w.Schedule(&tm, 75*w.Tick(), fn)
	})
	if allocs != 0 {
		t.Fatalf("rearm allocates %.1f/op, want 0", allocs)
	}
	// Stop/arm cycling must also be allocation-free.
	allocs = testing.AllocsPerRun(1000, func() {
		tm.Stop()
		w.Schedule(&tm, 75*w.Tick(), fn)
	})
	if allocs != 0 {
		t.Fatalf("stop+arm allocates %.1f/op, want 0", allocs)
	}
}

// TestWheelDriven exercises the wall-clock driver end to end: fire,
// early-deadline poke, stop.
func TestWheelDriven(t *testing.T) {
	w := New(time.Millisecond).Start()
	defer w.StopDriver()

	done := make(chan int64, 1)
	start := time.Now()
	w.AfterFunc(20*time.Millisecond, func() { done <- int64(time.Since(start) / time.Millisecond) })

	select {
	case ms := <-done:
		if ms < 19 {
			t.Fatalf("fired early: %dms", ms)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("driven timer never fired")
	}

	// A long timer followed by a short one: the poke must cut the
	// driver's long sleep short.
	long := w.AfterFunc(30*time.Second, func() {})
	defer long.Stop()
	quick := make(chan struct{}, 1)
	w.AfterFunc(15*time.Millisecond, func() { quick <- struct{}{} })
	select {
	case <-quick:
	case <-time.After(2 * time.Second):
		t.Fatal("short timer blocked behind a long sleep (poke lost)")
	}
}

// TestWheelConcurrentScheduleStop hammers Schedule/Stop from many
// goroutines against the driver — run under -race in make check.
func TestWheelConcurrentScheduleStop(t *testing.T) {
	w := New(200 * time.Microsecond).Start()
	defer w.StopDriver()

	const workers = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	firedIDs := make(map[int]int)

	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var tm Timer
			for i := 0; i < 300; i++ {
				id := g*1000 + i
				w.Schedule(&tm, time.Duration(rng.Intn(3))*time.Millisecond, func() {
					mu.Lock()
					firedIDs[id]++
					mu.Unlock()
				})
				if rng.Intn(3) == 0 {
					tm.Stop()
				}
				if rng.Intn(5) == 0 {
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				}
			}
			tm.Stop()
		}(g)
	}
	wg.Wait()

	// Quiesce, then the ledger must balance exactly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		l := w.Ledger()
		if l.Pending == 0 || time.Now().After(deadline) {
			if l.Scheduled != l.Fired+l.Canceled+uint64(l.Pending) {
				t.Fatalf("ledger leak under concurrency: %+v", l)
			}
			if l.Pending != 0 {
				t.Fatalf("timers leaked: %+v", l)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
