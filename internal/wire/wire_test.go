package wire

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

var (
	addrA = netip.MustParseAddr("10.0.0.1")
	addrB = netip.MustParseAddr("10.0.0.2")
	addr6 = netip.MustParseAddr("fc00::1")
)

func TestSegmentRoundTrip(t *testing.T) {
	s := &Segment{
		SrcPort: 443, DstPort: 51000,
		Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: FlagSYN | FlagACK, Window: 65535,
		Options: []Option{MSSOption(1460), WindowScaleOption(7), SACKPermittedOption()},
		Payload: []byte("hello tcpls"),
	}
	b, err := s.Marshal(addrA, addrB)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSegment(b, addrA, addrB, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != s.SrcPort || got.DstPort != s.DstPort || got.Seq != s.Seq ||
		got.Ack != s.Ack || got.Flags != s.Flags || got.Window != s.Window {
		t.Fatalf("header mismatch: got %v want %v", got, s)
	}
	if !bytes.Equal(got.Payload, s.Payload) {
		t.Fatalf("payload mismatch")
	}
	if len(got.Options) != 3 {
		t.Fatalf("want 3 options, got %d", len(got.Options))
	}
	if mss, ok := got.Options[0].MSS(); !ok || mss != 1460 {
		t.Fatalf("mss option mangled: %v", got.Options[0])
	}
}

func TestSegmentRoundTripV6(t *testing.T) {
	s := &Segment{SrcPort: 1, DstPort: 2, Seq: 3, Ack: 4, Flags: FlagACK, Payload: []byte{9}}
	b, err := s.Marshal(addr6, addrB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSegment(b, addr6, addrB, true); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	s := &Segment{SrcPort: 80, DstPort: 8080, Seq: 1, Flags: FlagACK, Payload: []byte("abcdef")}
	b, err := s.Marshal(addrA, addrB)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 4, 13, len(b) - 1} {
		c := append([]byte(nil), b...)
		c[i] ^= 0x40
		if _, err := UnmarshalSegment(c, addrA, addrB, true); err != ErrChecksum {
			t.Fatalf("flipping byte %d: want ErrChecksum, got %v", i, err)
		}
	}
	// Wrong pseudo-header (e.g. after a buggy NAT) must also fail.
	if _, err := UnmarshalSegment(b, addrA, addr6, true); err != ErrChecksum {
		t.Fatalf("wrong pseudo-header: want ErrChecksum, got %v", err)
	}
}

// TestOptionSpaceCeiling pins the 40-byte option limit that motivates
// TCPLS §3.1: a SACK option with 4 blocks plus timestamps plus MSS cannot
// fit, while TCPLS can carry arbitrarily large options in TLS records.
func TestOptionSpaceCeiling(t *testing.T) {
	s := &Segment{
		Options: []Option{
			MSSOption(1460),                  // 4
			TimestampsOption(1, 2),           // 10
			SACKOption(make([]SACKBlock, 4)), // 34 -> 48 total
		},
	}
	if _, err := s.Marshal(addrA, addrB); err != ErrOptionSpace {
		t.Fatalf("want ErrOptionSpace, got %v", err)
	}
	// 3 SACK blocks + timestamps fits (the real-world squeeze).
	s.Options[2] = SACKOption(make([]SACKBlock, 3))
	if _, err := s.Marshal(addrA, addrB); err != nil {
		t.Fatalf("3 blocks should fit: %v", err)
	}
	// A big option payload (like a long TFO cookie chain) cannot fit at all.
	s.Options = []Option{{Kind: OptKindExperiment, Data: make([]byte, 41)}}
	if _, err := s.Marshal(addrA, addrB); err != ErrOptionSpace {
		t.Fatalf("want ErrOptionSpace for oversized option, got %v", err)
	}
}

func TestOptionCodecs(t *testing.T) {
	if o := MSSOption(1200); o.wireLen() != 4 {
		t.Fatal("mss wire len")
	}
	ts := TimestampsOption(0xaabbccdd, 0x11223344)
	v, e, ok := ts.Timestamps()
	if !ok || v != 0xaabbccdd || e != 0x11223344 {
		t.Fatal("timestamps codec")
	}
	for _, d := range []time.Duration{0, time.Second, 90 * time.Second, 9 * time.Hour} {
		o := UserTimeoutOption(d)
		got, ok := o.UserTimeout()
		if !ok {
			t.Fatalf("uto decode failed for %s", d)
		}
		// Minute granularity may round down.
		if got > d || d-got > time.Minute {
			t.Fatalf("uto %s decoded as %s", d, got)
		}
	}
	blocks := []SACKBlock{{1000, 2000}, {3000, 4000}}
	sackOpt := SACKOption(blocks)
	got, ok := sackOpt.SACKBlocks()
	if !ok || len(got) != 2 || got[0] != blocks[0] || got[1] != blocks[1] {
		t.Fatal("sack codec")
	}
	ws := WindowScaleOption(9)
	if sh, ok := ws.WindowScale(); !ok || sh != 9 {
		t.Fatal("wscale codec")
	}
}

func TestStripAndFindOptions(t *testing.T) {
	opts := []Option{MSSOption(1000), SACKPermittedOption(), TimestampsOption(1, 2)}
	if o := FindOption(opts, OptKindSACKPermitted); o == nil {
		t.Fatal("find failed")
	}
	if o := FindOption(opts, OptKindUserTimeout); o != nil {
		t.Fatal("found absent option")
	}
	stripped := StripOptions(opts, OptKindSACKPermitted, OptKindTimestamps)
	if len(stripped) != 1 || stripped[0].Kind != OptKindMSS {
		t.Fatalf("strip failed: %v", stripped)
	}
	// Original slice must be untouched (middleboxes clone packets).
	if len(opts) != 3 {
		t.Fatal("strip mutated input")
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	s := &Segment{SrcPort: 1, DstPort: 2, Options: []Option{MSSOption(1460)}}
	b, _ := s.Marshal(addrA, addrB)
	for n := 0; n < len(b); n++ {
		if _, err := UnmarshalSegment(b[:n], addrA, addrB, false); err == nil && n < BaseHeaderLen {
			t.Fatalf("accepted %d-byte segment", n)
		}
	}
	// Bogus data offset pointing past the end.
	c := append([]byte(nil), b...)
	c[12] = 15 << 4
	if len(c) < 60 {
		if _, err := UnmarshalSegment(c, addrA, addrB, false); err == nil {
			t.Fatal("accepted bogus data offset")
		}
	}
}

func TestMalformedOptionList(t *testing.T) {
	// Build a raw header whose option bytes declare a length running past
	// the end of the option area.
	raw := make([]byte, 24)
	raw[12] = 6 << 4 // 24-byte header -> 4 option bytes
	raw[20] = OptKindMSS
	raw[21] = 10 // claims 10 bytes, only 4 available
	if _, err := UnmarshalSegment(raw, addrA, addrB, false); err == nil {
		t.Fatal("accepted malformed option")
	}
	// Zero-length option (len < 2) must be rejected, not loop forever.
	raw[21] = 1
	if _, err := UnmarshalSegment(raw, addrA, addrB, false); err == nil {
		t.Fatal("accepted option with length 1")
	}
}

func TestNOPAndEOLHandling(t *testing.T) {
	raw := make([]byte, 28)
	raw[12] = 7 << 4 // 28-byte header -> 8 option bytes
	raw[20] = optNOP
	raw[21] = optNOP
	raw[22] = OptKindWindowScale
	raw[23] = 3
	raw[24] = 5
	raw[25] = optEOL
	s, err := UnmarshalSegment(raw, addrA, addrB, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Options) != 1 {
		t.Fatalf("want 1 option, got %d", len(s.Options))
	}
	if sh, ok := s.Options[0].WindowScale(); !ok || sh != 5 {
		t.Fatal("wscale after NOPs")
	}
}

func TestDatagramRoundTrip(t *testing.T) {
	d := &Datagram{SrcPort: 4433, DstPort: 9999, Payload: []byte("quic-lite")}
	b := d.Marshal(addrA, addrB)
	got, err := UnmarshalDatagram(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != d.SrcPort || got.DstPort != d.DstPort || !bytes.Equal(got.Payload, d.Payload) {
		t.Fatal("datagram mismatch")
	}
	if _, err := UnmarshalDatagram(b[:5]); err == nil {
		t.Fatal("accepted truncated datagram")
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{Src: addrA, Dst: addrB, Proto: ProtoTCP, TTL: 64, Payload: []byte{1, 2, 3}}
	q := p.Clone()
	q.Payload[0] = 9
	if p.Payload[0] != 1 {
		t.Fatal("clone shares payload")
	}
	if p.Len() != 3+40 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestFlagsString(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SYN|ACK" {
		t.Fatalf("got %q", s)
	}
	if s := Flags(0).String(); s != "none" {
		t.Fatalf("got %q", s)
	}
}

// Property: any segment with random fields and in-budget options survives
// a marshal/unmarshal round trip with checksum verification.
func TestSegmentRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(srcPort, dstPort uint16, seq, ack uint32, flags uint8, win uint16, payload []byte) bool {
		s := &Segment{
			SrcPort: srcPort, DstPort: dstPort, Seq: seq, Ack: ack,
			Flags: Flags(flags) & 0x3f, Window: win, Payload: payload,
		}
		if rng.Intn(2) == 0 {
			s.Options = append(s.Options, MSSOption(uint16(rng.Intn(9000))), TimestampsOption(rng.Uint32(), rng.Uint32()))
		}
		b, err := s.Marshal(addrA, addr6)
		if err != nil {
			return false
		}
		got, err := UnmarshalSegment(b, addrA, addr6, true)
		if err != nil {
			return false
		}
		return got.Seq == s.Seq && got.Ack == s.Ack && got.Flags == s.Flags &&
			bytes.Equal(got.Payload, s.Payload) && len(got.Options) == len(s.Options)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Internet checksum detects any single-bit flip in the
// segment bytes (guaranteed for 16-bit one's-complement sums).
func TestChecksumSingleBitProperty(t *testing.T) {
	f := func(payload []byte, bit uint16) bool {
		s := &Segment{SrcPort: 1, DstPort: 2, Seq: 3, Flags: FlagACK, Payload: payload}
		b, err := s.Marshal(addrA, addrB)
		if err != nil {
			return false
		}
		i := int(bit) % (len(b) * 8)
		b[i/8] ^= 1 << (i % 8)
		_, err = UnmarshalSegment(b, addrA, addrB, true)
		return err == ErrChecksum || err == ErrTruncated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
