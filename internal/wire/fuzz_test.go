package wire

import (
	"bytes"
	"net/netip"
	"testing"
)

// FuzzUnmarshalSegment throws raw bytes at the TCP segment parser — the
// first code to touch anything arriving off the emulated wire. Accepted
// segments must survive Marshal → Unmarshal (with checksum verification
// on) without changing any field: the parser and the serializer agree
// on the header layout, option framing, and padding.
func FuzzUnmarshalSegment(f *testing.F) {
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	seed := func(s *Segment) {
		b, err := s.Marshal(src, dst)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(&Segment{SrcPort: 1, DstPort: 443, Seq: 100, Flags: FlagSYN, Window: 65535,
		Options: []Option{MSSOption(1400), WindowScaleOption(7), SACKPermittedOption()}})
	seed(&Segment{SrcPort: 443, DstPort: 1, Seq: 5, Ack: 101, Flags: FlagACK | FlagPSH,
		Window: 1000, Payload: []byte("hello"),
		Options: []Option{SACKOption([]SACKBlock{{Left: 10, Right: 20}, {Left: 40, Right: 60}})}})
	seed(&Segment{Flags: FlagRST | FlagACK, Seq: 1 << 31})
	f.Add([]byte{0, 1, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0xf0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := UnmarshalSegment(b, src, dst, false)
		if err != nil {
			return
		}
		enc, err := s.Marshal(src, dst)
		if err != nil {
			// Parsed options always fit the space they were parsed from,
			// so re-marshalling may never run out of header room.
			t.Fatalf("accepted segment failed to marshal: %v", err)
		}
		again, err := UnmarshalSegment(enc, src, dst, true)
		if err != nil {
			t.Fatalf("re-unmarshal (checksummed) failed: %v", err)
		}
		if again.SrcPort != s.SrcPort || again.DstPort != s.DstPort ||
			again.Seq != s.Seq || again.Ack != s.Ack ||
			again.Flags != s.Flags || again.Window != s.Window ||
			!bytes.Equal(again.Payload, s.Payload) {
			t.Fatalf("round trip changed the segment:\n%v\n%v", s, again)
		}
		if len(again.Options) != len(s.Options) {
			t.Fatalf("option count changed: %d vs %d", len(s.Options), len(again.Options))
		}
		for i := range s.Options {
			if again.Options[i].Kind != s.Options[i].Kind ||
				!bytes.Equal(again.Options[i].Data, s.Options[i].Data) {
				t.Fatalf("option %d changed: %v vs %v", i, s.Options[i], again.Options[i])
			}
		}
	})
}
