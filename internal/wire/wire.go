// Package wire defines the on-the-wire representation of the packets that
// flow through the emulated network: an IP-like network header plus fully
// serialized TCP segments and UDP datagrams.
//
// TCP segments follow the RFC 793 layout, including the 4-bit data-offset
// field that caps the entire TCP header at 60 bytes and therefore the
// option space at 40 bytes. That cap is load-bearing for this repository:
// the TCPLS paper (§3.1) motivates moving TCP options into the encrypted
// TLS channel precisely because the cleartext header has run out of room.
// Middleboxes in internal/netsim operate on these serialized bytes, so
// option stripping, NAT rewriting and RST injection behave as they do on
// real networks.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Protocol numbers carried in the network header, mirroring IANA values.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// Packet is the unit the emulated network forwards: an IP-like header and
// an opaque transport payload (a serialized Segment or Datagram).
type Packet struct {
	Src     netip.Addr
	Dst     netip.Addr
	Proto   uint8
	TTL     uint8
	Payload []byte
}

// Clone returns a deep copy of the packet. Middleboxes mutate clones so a
// packet queued on several links is never shared.
func (p *Packet) Clone() *Packet {
	q := *p
	q.Payload = append([]byte(nil), p.Payload...)
	return &q
}

// Len returns the total emulated size of the packet in bytes, used by
// links for bandwidth accounting: transport payload plus a 40-byte
// network-header allowance (IPv4 20 plus margin; close enough to v6 too).
func (p *Packet) Len() int { return len(p.Payload) + 40 }

// String renders a compact one-line summary for traces.
func (p *Packet) String() string {
	return fmt.Sprintf("%s > %s proto=%d len=%d", p.Src, p.Dst, p.Proto, len(p.Payload))
}

// Flags is the TCP flag byte.
type Flags uint8

// TCP control flags.
const (
	FlagFIN Flags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Has reports whether every flag in f2 is set in f.
func (f Flags) Has(f2 Flags) bool { return f&f2 == f2 }

// String renders flags in tcpdump style, e.g. "SYN|ACK".
func (f Flags) String() string {
	names := []struct {
		f Flags
		s string
	}{
		{FlagSYN, "SYN"}, {FlagFIN, "FIN"}, {FlagRST, "RST"},
		{FlagPSH, "PSH"}, {FlagACK, "ACK"}, {FlagURG, "URG"},
	}
	out := ""
	for _, n := range names {
		if f.Has(n.f) {
			if out != "" {
				out += "|"
			}
			out += n.s
		}
	}
	if out == "" {
		out = "none"
	}
	return out
}

// TCP header geometry constants.
const (
	// BaseHeaderLen is the length of the fixed TCP header.
	BaseHeaderLen = 20
	// MaxHeaderLen is the maximum TCP header length expressible by the
	// 4-bit data-offset field (15 words): the famous 60-byte ceiling.
	MaxHeaderLen = 60
	// MaxOptionSpace is the room left for options: 40 bytes, shared by
	// every TCP extension ever standardized. TCPLS's motivation in one
	// constant.
	MaxOptionSpace = MaxHeaderLen - BaseHeaderLen
)

// ErrOptionSpace is returned by Segment.Marshal when the encoded options
// exceed the 40 bytes the TCP header can carry.
var ErrOptionSpace = errors.New("wire: TCP options exceed 40-byte header space")

// ErrTruncated is returned when unmarshalling runs out of bytes.
var ErrTruncated = errors.New("wire: truncated")

// ErrChecksum is returned by UnmarshalSegment when verification is
// requested and the checksum does not match.
var ErrChecksum = errors.New("wire: bad TCP checksum")

// Segment is a parsed TCP segment.
type Segment struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   Flags
	Window  uint16
	Options []Option
	Payload []byte
}

// String renders a tcpdump-like summary.
func (s *Segment) String() string {
	return fmt.Sprintf("%d>%d %s seq=%d ack=%d win=%d opts=%d len=%d",
		s.SrcPort, s.DstPort, s.Flags, s.Seq, s.Ack, s.Window, len(s.Options), len(s.Payload))
}

// HeaderLen returns the header length the segment will marshal to,
// including option padding to a 32-bit boundary.
func (s *Segment) HeaderLen() (int, error) {
	optLen := 0
	for i := range s.Options {
		optLen += s.Options[i].wireLen()
	}
	optLen = (optLen + 3) &^ 3 // pad to 32-bit words
	if optLen > MaxOptionSpace {
		return 0, ErrOptionSpace
	}
	return BaseHeaderLen + optLen, nil
}

// Marshal serializes the segment, computing the checksum over the
// RFC 793 pseudo-header built from src and dst.
func (s *Segment) Marshal(src, dst netip.Addr) ([]byte, error) {
	hdrLen, err := s.HeaderLen()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, hdrLen+len(s.Payload))
	if _, err := s.MarshalInto(buf, src, dst); err != nil {
		return nil, err
	}
	return buf, nil
}

// MarshalInto serializes the segment into b, which must hold at least
// HeaderLen()+len(Payload) bytes, and returns the number of bytes
// written. It lets callers marshal into pooled buffers without a
// per-segment allocation.
func (s *Segment) MarshalInto(b []byte, src, dst netip.Addr) (int, error) {
	hdrLen, err := s.HeaderLen()
	if err != nil {
		return 0, err
	}
	if len(b) < hdrLen+len(s.Payload) {
		return 0, ErrTruncated
	}
	buf := b[:hdrLen+len(s.Payload)]
	binary.BigEndian.PutUint16(buf[0:], s.SrcPort)
	binary.BigEndian.PutUint16(buf[2:], s.DstPort)
	binary.BigEndian.PutUint32(buf[4:], s.Seq)
	binary.BigEndian.PutUint32(buf[8:], s.Ack)
	buf[12] = uint8(hdrLen/4) << 4
	buf[13] = uint8(s.Flags)
	binary.BigEndian.PutUint16(buf[14:], s.Window)
	// buf[16:18] checksum, filled below; b may be recycled, so zero the
	// checksum and urgent-pointer fields rather than trusting make().
	buf[16], buf[17], buf[18], buf[19] = 0, 0, 0, 0
	off := BaseHeaderLen
	for i := range s.Options {
		off += s.Options[i].put(buf[off:])
	}
	for off < hdrLen {
		buf[off] = optEOL
		off++
	}
	copy(buf[hdrLen:], s.Payload)
	binary.BigEndian.PutUint16(buf[16:], Checksum(src, dst, ProtoTCP, buf))
	return len(buf), nil
}

// UnmarshalSegment parses b into a Segment. If verify is true the TCP
// checksum is validated against the pseudo-header for src/dst.
// The returned segment's Payload and Options[i].Data alias b.
func UnmarshalSegment(b []byte, src, dst netip.Addr, verify bool) (*Segment, error) {
	if len(b) < BaseHeaderLen {
		return nil, ErrTruncated
	}
	hdrLen := int(b[12]>>4) * 4
	if hdrLen < BaseHeaderLen || hdrLen > len(b) {
		return nil, ErrTruncated
	}
	if verify {
		if Checksum(src, dst, ProtoTCP, b) != 0 {
			return nil, ErrChecksum
		}
	}
	s := &Segment{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		Seq:     binary.BigEndian.Uint32(b[4:]),
		Ack:     binary.BigEndian.Uint32(b[8:]),
		Flags:   Flags(b[13]),
		Window:  binary.BigEndian.Uint16(b[14:]),
		Payload: b[hdrLen:],
	}
	opts, err := parseOptions(b[BaseHeaderLen:hdrLen])
	if err != nil {
		return nil, err
	}
	s.Options = opts
	return s, nil
}

// Checksum computes the Internet checksum of data prefixed by the
// pseudo-header (src, dst, proto, length). Computing it over a buffer
// whose checksum field is already populated yields 0 for a valid packet.
func Checksum(src, dst netip.Addr, proto uint8, data []byte) uint16 {
	var sum uint32
	add16 := func(v uint16) { sum += uint32(v) }
	addBytes := func(b []byte) {
		for i := 0; i+1 < len(b); i += 2 {
			add16(binary.BigEndian.Uint16(b[i:]))
		}
		if len(b)%2 == 1 {
			add16(uint16(b[len(b)-1]) << 8)
		}
	}
	sa, da := src.As16(), dst.As16()
	addBytes(sa[:])
	addBytes(da[:])
	add16(uint16(proto))
	add16(uint16(len(data) >> 16))
	add16(uint16(len(data) & 0xffff))
	addBytes(data)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Datagram is a parsed UDP datagram (used by the QUIC-like comparator).
type Datagram struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// Marshal serializes the datagram with an RFC 768 header.
func (d *Datagram) Marshal(src, dst netip.Addr) []byte {
	buf := make([]byte, 8+len(d.Payload))
	binary.BigEndian.PutUint16(buf[0:], d.SrcPort)
	binary.BigEndian.PutUint16(buf[2:], d.DstPort)
	binary.BigEndian.PutUint16(buf[4:], uint16(len(buf)))
	copy(buf[8:], d.Payload)
	binary.BigEndian.PutUint16(buf[6:], Checksum(src, dst, ProtoUDP, buf))
	return buf
}

// UnmarshalDatagram parses a UDP datagram. The Payload aliases b.
func UnmarshalDatagram(b []byte) (*Datagram, error) {
	if len(b) < 8 {
		return nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b[4:]))
	if n < 8 || n > len(b) {
		return nil, ErrTruncated
	}
	return &Datagram{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		Payload: b[8:n],
	}, nil
}
