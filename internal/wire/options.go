package wire

import (
	"encoding/binary"
	"fmt"
	"time"
)

// TCP option kinds (IANA registry values).
const (
	optEOL               = 0
	optNOP               = 1
	OptKindMSS           = 2
	OptKindWindowScale   = 3
	OptKindSACKPermitted = 4
	OptKindSACK          = 5
	OptKindTimestamps    = 8
	OptKindUserTimeout   = 28
	// OptKindExperiment is the shared experimental codepoint (RFC 6994);
	// our userspace stack uses it for stack-version negotiation in tests.
	OptKindExperiment = 254
)

// MaxWindowScale is the largest usable window-scale shift (RFC 7323
// §2.3). Received values above it must be clamped, not honored.
const MaxWindowScale = 14

// Option is a single TCP option as kind plus raw data. EOL and NOP are
// handled by the marshaller and never appear in Segment.Options.
type Option struct {
	Kind uint8
	Data []byte
}

// wireLen returns the encoded size of the option.
func (o *Option) wireLen() int { return 2 + len(o.Data) }

// put encodes the option into b and returns the number of bytes written.
func (o *Option) put(b []byte) int {
	b[0] = o.Kind
	b[1] = uint8(2 + len(o.Data))
	copy(b[2:], o.Data)
	return 2 + len(o.Data)
}

// String renders the option for traces.
func (o *Option) String() string {
	switch o.Kind {
	case OptKindMSS:
		if v, ok := o.MSS(); ok {
			return fmt.Sprintf("mss %d", v)
		}
	case OptKindWindowScale:
		if len(o.Data) == 1 {
			return fmt.Sprintf("wscale %d", o.Data[0])
		}
	case OptKindSACKPermitted:
		return "sackOK"
	case OptKindSACK:
		if blocks, ok := o.SACKBlocks(); ok {
			return fmt.Sprintf("sack %v", blocks)
		}
	case OptKindTimestamps:
		if v, e, ok := o.Timestamps(); ok {
			return fmt.Sprintf("ts val %d ecr %d", v, e)
		}
	case OptKindUserTimeout:
		if d, ok := o.UserTimeout(); ok {
			return fmt.Sprintf("uto %s", d)
		}
	}
	return fmt.Sprintf("opt%d(%d bytes)", o.Kind, len(o.Data))
}

// parseOptions decodes the option block. Each Option's Data aliases b —
// callers that retain options past the packet's lifetime (the buffer may
// be recycled) must deep-copy Data.
func parseOptions(b []byte) ([]Option, error) {
	var opts []Option
	for len(b) > 0 {
		switch b[0] {
		case optEOL:
			return opts, nil
		case optNOP:
			b = b[1:]
		default:
			if len(b) < 2 {
				return nil, ErrTruncated
			}
			n := int(b[1])
			if n < 2 || n > len(b) {
				return nil, ErrTruncated
			}
			opts = append(opts, Option{Kind: b[0], Data: b[2:n:n]})
			b = b[n:]
		}
	}
	return opts, nil
}

// MSSOption builds a Maximum Segment Size option.
func MSSOption(mss uint16) Option {
	d := make([]byte, 2)
	binary.BigEndian.PutUint16(d, mss)
	return Option{Kind: OptKindMSS, Data: d}
}

// MSS decodes an MSS option.
func (o *Option) MSS() (uint16, bool) {
	if o.Kind != OptKindMSS || len(o.Data) != 2 {
		return 0, false
	}
	return binary.BigEndian.Uint16(o.Data), true
}

// WindowScaleOption builds a window-scale option (RFC 7323).
func WindowScaleOption(shift uint8) Option {
	return Option{Kind: OptKindWindowScale, Data: []byte{shift}}
}

// WindowScale decodes a window-scale option.
func (o *Option) WindowScale() (uint8, bool) {
	if o.Kind != OptKindWindowScale || len(o.Data) != 1 {
		return 0, false
	}
	return o.Data[0], true
}

// SACKPermittedOption builds a SACK-permitted option.
func SACKPermittedOption() Option { return Option{Kind: OptKindSACKPermitted} }

// SACKBlock is one contiguous received range advertised in a SACK option.
type SACKBlock struct {
	Left  uint32 // first sequence number of the block
	Right uint32 // sequence number immediately past the block
}

// String renders the block as a half-open interval.
func (b SACKBlock) String() string { return fmt.Sprintf("[%d,%d)", b.Left, b.Right) }

// SACKOption builds a SACK option. At most 4 blocks fit in 34 bytes; real
// stacks usually carry at most 3 alongside timestamps — the exact squeeze
// §3.1 of the TCPLS paper complains about.
func SACKOption(blocks []SACKBlock) Option {
	if len(blocks) > 4 {
		blocks = blocks[:4]
	}
	d := make([]byte, 8*len(blocks))
	for i, bl := range blocks {
		binary.BigEndian.PutUint32(d[i*8:], bl.Left)
		binary.BigEndian.PutUint32(d[i*8+4:], bl.Right)
	}
	return Option{Kind: OptKindSACK, Data: d}
}

// SACKBlocks decodes a SACK option.
func (o *Option) SACKBlocks() ([]SACKBlock, bool) {
	if o.Kind != OptKindSACK || len(o.Data)%8 != 0 {
		return nil, false
	}
	blocks := make([]SACKBlock, len(o.Data)/8)
	for i := range blocks {
		blocks[i].Left = binary.BigEndian.Uint32(o.Data[i*8:])
		blocks[i].Right = binary.BigEndian.Uint32(o.Data[i*8+4:])
	}
	return blocks, true
}

// TimestampsOption builds an RFC 7323 timestamps option.
func TimestampsOption(val, ecr uint32) Option {
	d := make([]byte, 8)
	binary.BigEndian.PutUint32(d, val)
	binary.BigEndian.PutUint32(d[4:], ecr)
	return Option{Kind: OptKindTimestamps, Data: d}
}

// Timestamps decodes a timestamps option.
func (o *Option) Timestamps() (val, ecr uint32, ok bool) {
	if o.Kind != OptKindTimestamps || len(o.Data) != 8 {
		return 0, 0, false
	}
	return binary.BigEndian.Uint32(o.Data), binary.BigEndian.Uint32(o.Data[4:]), true
}

// UserTimeoutOption builds an RFC 5482 User Timeout option. The value is
// 15 bits with a granularity bit: seconds (g=0) or minutes (g=1).
func UserTimeoutOption(d time.Duration) Option {
	secs := uint32(d / time.Second)
	var v uint16
	if secs <= 0x7fff {
		v = uint16(secs)
	} else {
		mins := secs / 60
		if mins > 0x7fff {
			mins = 0x7fff
		}
		v = 1<<15 | uint16(mins)
	}
	buf := make([]byte, 2)
	binary.BigEndian.PutUint16(buf, v)
	return Option{Kind: OptKindUserTimeout, Data: buf}
}

// UserTimeout decodes an RFC 5482 User Timeout option.
func (o *Option) UserTimeout() (time.Duration, bool) {
	if o.Kind != OptKindUserTimeout || len(o.Data) != 2 {
		return 0, false
	}
	v := binary.BigEndian.Uint16(o.Data)
	if v&(1<<15) != 0 {
		return time.Duration(v&0x7fff) * time.Minute, true
	}
	return time.Duration(v) * time.Second, true
}

// FindOption returns the first option with the given kind, or nil.
func FindOption(opts []Option, kind uint8) *Option {
	for i := range opts {
		if opts[i].Kind == kind {
			return &opts[i]
		}
	}
	return nil
}

// StripOptions removes every option whose kind is in kinds, returning the
// filtered slice. Middleboxes use it to simulate option-stripping.
func StripOptions(opts []Option, kinds ...uint8) []Option {
	out := opts[:0:0]
	for _, o := range opts {
		keep := true
		for _, k := range kinds {
			if o.Kind == k {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, o)
		}
	}
	return out
}
