package ebpfvm

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble turns a small textual assembly dialect into a verified
// Program. One instruction per line; ';' and '#' start comments; labels
// end with ':'. Registers are r0..r10. Examples:
//
//	mov   r0, 0            ; 64-bit ALU with immediate
//	add   r0, r1           ; 64-bit ALU with register
//	mov32 r2, 7            ; 32-bit ALU
//	lddw  r1, 0x100000000  ; 64-bit immediate load (two slots)
//	ldxdw r2, [r1+8]       ; r2 = *(u64*)(r1+8)
//	stxw  [r1+16], r2      ; *(u32*)(r1+16) = r2
//	stdw  [r10-8], 5       ; *(u64*)(r10-8) = 5
//	jgt   r2, 100, done    ; conditional jump to label
//	ja    done
//	call  1                ; helper 1
//
// done:
//
//	exit
func Assemble(src string) (*Program, error) {
	type pending struct {
		insn  int
		label string
		line  int
	}
	var insns []Instruction
	labels := map[string]int{}
	var fixups []pending

	aluOps := map[string]uint8{
		"add": opAdd, "sub": opSub, "mul": opMul, "div": opDiv,
		"or": opOr, "and": opAnd, "lsh": opLsh, "rsh": opRsh,
		"mod": opMod, "xor": opXor, "mov": opMov, "arsh": opArsh,
	}
	jmpOps := map[string]uint8{
		"jeq": opJeq, "jne": opJne, "jgt": opJgt, "jge": opJge,
		"jlt": opJlt, "jle": opJle, "jset": opJset,
		"jsgt": opJsgt, "jsge": opJsge, "jslt": opJslt, "jsle": opJsle,
	}
	sizes := map[string]uint8{"b": sizeB, "h": sizeH, "w": sizeW, "dw": sizeDW}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSuffix(line, ":")
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("ebpfvm: line %d: duplicate label %q", lineNo+1, name)
			}
			labels[name] = len(insns)
			continue
		}
		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		mnem := strings.ToLower(fields[0])
		args := fields[1:]
		errf := func(format string, a ...any) error {
			return fmt.Errorf("ebpfvm: line %d: "+format, append([]any{lineNo + 1}, a...)...)
		}

		base := strings.TrimSuffix(mnem, "32")
		is32 := strings.HasSuffix(mnem, "32")
		cls := uint8(classALU64)
		if is32 {
			cls = classALU
		}

		switch {
		case mnem == "exit":
			insns = append(insns, Instruction{Op: classJMP | opExit})

		case mnem == "call":
			if len(args) != 1 {
				return nil, errf("call needs one immediate")
			}
			imm, err := parseImm(args[0])
			if err != nil {
				return nil, errf("%v", err)
			}
			insns = append(insns, Instruction{Op: classJMP | opCall, Imm: int32(imm)})

		case mnem == "ja":
			if len(args) != 1 {
				return nil, errf("ja needs a label")
			}
			fixups = append(fixups, pending{len(insns), args[0], lineNo + 1})
			insns = append(insns, Instruction{Op: classJMP | opJa})

		case mnem == "neg" || mnem == "neg32":
			dst, err := parseReg(args[0])
			if err != nil {
				return nil, errf("%v", err)
			}
			insns = append(insns, Instruction{Op: cls | opNeg, Dst: dst})

		case mnem == "lddw":
			if len(args) != 2 {
				return nil, errf("lddw needs register and immediate")
			}
			dst, err := parseReg(args[0])
			if err != nil {
				return nil, errf("%v", err)
			}
			v, err := strconv.ParseUint(strings.TrimPrefix(args[1], "+"), 0, 64)
			if err != nil {
				sv, serr := strconv.ParseInt(args[1], 0, 64)
				if serr != nil {
					return nil, errf("bad immediate %q", args[1])
				}
				v = uint64(sv)
			}
			insns = append(insns,
				Instruction{Op: 0x18, Dst: dst, Imm: int32(uint32(v))},
				Instruction{Imm: int32(uint32(v >> 32))})

		case aluOps[base] != 0 || base == "add": // add maps to 0
			op, ok := aluOps[base]
			if !ok {
				return nil, errf("unknown mnemonic %q", mnem)
			}
			if len(args) != 2 {
				return nil, errf("%s needs two operands", mnem)
			}
			dst, err := parseReg(args[0])
			if err != nil {
				return nil, errf("%v", err)
			}
			if r, err := parseReg(args[1]); err == nil {
				insns = append(insns, Instruction{Op: cls | op | srcX, Dst: dst, Src: r})
			} else {
				imm, err := parseImm(args[1])
				if err != nil {
					return nil, errf("%v", err)
				}
				insns = append(insns, Instruction{Op: cls | op, Dst: dst, Imm: int32(imm)})
			}

		case strings.HasPrefix(mnem, "ldx"):
			sz, ok := sizes[strings.TrimPrefix(mnem, "ldx")]
			if !ok {
				return nil, errf("unknown mnemonic %q", mnem)
			}
			if len(args) != 2 {
				return nil, errf("%s needs register and [reg+off]", mnem)
			}
			dst, err := parseReg(args[0])
			if err != nil {
				return nil, errf("%v", err)
			}
			src, off, err := parseMem(args[1])
			if err != nil {
				return nil, errf("%v", err)
			}
			insns = append(insns, Instruction{Op: classLDX | sz | modeMEM, Dst: dst, Src: src, Off: off})

		case strings.HasPrefix(mnem, "stx"):
			sz, ok := sizes[strings.TrimPrefix(mnem, "stx")]
			if !ok {
				return nil, errf("unknown mnemonic %q", mnem)
			}
			dst, off, err := parseMem(args[0])
			if err != nil {
				return nil, errf("%v", err)
			}
			src, err := parseReg(args[1])
			if err != nil {
				return nil, errf("%v", err)
			}
			insns = append(insns, Instruction{Op: classSTX | sz | modeMEM, Dst: dst, Src: src, Off: off})

		case strings.HasPrefix(mnem, "st"):
			sz, ok := sizes[strings.TrimPrefix(mnem, "st")]
			if !ok {
				return nil, errf("unknown mnemonic %q", mnem)
			}
			dst, off, err := parseMem(args[0])
			if err != nil {
				return nil, errf("%v", err)
			}
			imm, err := parseImm(args[1])
			if err != nil {
				return nil, errf("%v", err)
			}
			insns = append(insns, Instruction{Op: classST | sz | modeMEM, Dst: dst, Off: off, Imm: int32(imm)})

		case jmpOps[base] != 0:
			op := jmpOps[base]
			if len(args) != 3 {
				return nil, errf("%s needs dst, operand, label", mnem)
			}
			dst, err := parseReg(args[0])
			if err != nil {
				return nil, errf("%v", err)
			}
			in := Instruction{Op: classJMP | op, Dst: dst}
			if r, err := parseReg(args[1]); err == nil {
				in.Op |= srcX
				in.Src = r
			} else {
				imm, err := parseImm(args[1])
				if err != nil {
					return nil, errf("%v", err)
				}
				in.Imm = int32(imm)
			}
			fixups = append(fixups, pending{len(insns), args[2], lineNo + 1})
			insns = append(insns, in)

		default:
			return nil, errf("unknown mnemonic %q", mnem)
		}
	}

	for _, f := range fixups {
		tgt, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("ebpfvm: line %d: undefined label %q", f.line, f.label)
		}
		insns[f.insn].Off = int16(tgt - f.insn - 1)
	}
	p := &Program{insns: insns}
	if err := p.verify(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error, for tests and builtins.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble renders the program one instruction per line.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i := 0; i < len(p.insns); i++ {
		in := p.insns[i]
		fmt.Fprintf(&b, "%4d: ", i)
		cls := in.Op & 0x07
		switch cls {
		case classALU64, classALU:
			name := aluName(in.Op & 0xf0)
			if cls == classALU {
				name += "32"
			}
			if in.Op&srcX != 0 {
				fmt.Fprintf(&b, "%s r%d, r%d", name, in.Dst, in.Src)
			} else {
				fmt.Fprintf(&b, "%s r%d, %d", name, in.Dst, in.Imm)
			}
		case classJMP:
			switch in.Op & 0xf0 {
			case opExit:
				b.WriteString("exit")
			case opCall:
				fmt.Fprintf(&b, "call %d", in.Imm)
			case opJa:
				fmt.Fprintf(&b, "ja %+d", in.Off)
			default:
				if in.Op&srcX != 0 {
					fmt.Fprintf(&b, "%s r%d, r%d, %+d", jmpName(in.Op&0xf0), in.Dst, in.Src, in.Off)
				} else {
					fmt.Fprintf(&b, "%s r%d, %d, %+d", jmpName(in.Op&0xf0), in.Dst, in.Imm, in.Off)
				}
			}
		case classLD:
			var hi int32
			if i+1 < len(p.insns) {
				hi = p.insns[i+1].Imm
			}
			fmt.Fprintf(&b, "lddw r%d, %#x", in.Dst, uint64(uint32(in.Imm))|uint64(uint32(hi))<<32)
			i++
		case classLDX:
			fmt.Fprintf(&b, "ldx%s r%d, [r%d%+d]", sizeName(in.Op), in.Dst, in.Src, in.Off)
		case classSTX:
			fmt.Fprintf(&b, "stx%s [r%d%+d], r%d", sizeName(in.Op), in.Dst, in.Off, in.Src)
		case classST:
			fmt.Fprintf(&b, "st%s [r%d%+d], %d", sizeName(in.Op), in.Dst, in.Off, in.Imm)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func aluName(op uint8) string {
	names := map[uint8]string{
		opAdd: "add", opSub: "sub", opMul: "mul", opDiv: "div",
		opOr: "or", opAnd: "and", opLsh: "lsh", opRsh: "rsh",
		opNeg: "neg", opMod: "mod", opXor: "xor", opMov: "mov", opArsh: "arsh",
	}
	return names[op]
}

func jmpName(op uint8) string {
	names := map[uint8]string{
		opJeq: "jeq", opJne: "jne", opJgt: "jgt", opJge: "jge",
		opJlt: "jlt", opJle: "jle", opJset: "jset",
		opJsgt: "jsgt", opJsge: "jsge", opJslt: "jslt", opJsle: "jsle",
	}
	return names[op]
}

func sizeName(op uint8) string {
	switch op & 0x18 {
	case sizeB:
		return "b"
	case sizeH:
		return "h"
	case sizeW:
		return "w"
	default:
		return "dw"
	}
}

func parseReg(s string) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("not a register: %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 10 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v > 1<<31-1 || v < -(1<<31) {
		return 0, fmt.Errorf("immediate %q overflows 32 bits (use lddw)", s)
	}
	return v, nil
}

// parseMem parses "[rN+off]" or "[rN-off]" or "[rN]".
func parseMem(s string) (uint8, int16, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := parseReg(inner)
		return r, 0, err
	}
	r, err := parseReg(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	off, err := strconv.ParseInt(inner[sep:], 10, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", s)
	}
	return r, int16(off), nil
}
