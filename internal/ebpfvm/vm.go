// Package ebpfvm implements a small eBPF virtual machine: the classic
// 64-bit register machine (r0..r10, 512-byte stack) with the ALU, ALU32,
// jump, memory and call instruction classes, a static verifier, a text
// assembler/disassembler, and a helper-call mechanism.
//
// It reproduces the substrate behind §3(iii) and §4.3 of the TCPLS paper:
// the server ships congestion-control logic as eBPF bytecode over the
// encrypted channel and the client installs it into its TCP stack, so the
// protocol's extensibility is "not frozen by a given TCPLS version". The
// instruction encoding is the Linux one (8-byte instructions, LDDW taking
// two slots), so programs are plain bytes that can cross the wire.
package ebpfvm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Instruction classes (low 3 bits of the opcode).
const (
	classLD    = 0x00
	classLDX   = 0x01
	classST    = 0x02
	classSTX   = 0x03
	classALU   = 0x04
	classJMP   = 0x05
	classALU64 = 0x07
)

// ALU/JMP operation codes (high 4 bits).
const (
	opAdd  = 0x00
	opSub  = 0x10
	opMul  = 0x20
	opDiv  = 0x30
	opOr   = 0x40
	opAnd  = 0x50
	opLsh  = 0x60
	opRsh  = 0x70
	opNeg  = 0x80
	opMod  = 0x90
	opXor  = 0xa0
	opMov  = 0xb0
	opArsh = 0xc0

	opJa   = 0x00
	opJeq  = 0x10
	opJgt  = 0x20
	opJge  = 0x30
	opJset = 0x40
	opJne  = 0x50
	opJsgt = 0x60
	opJsge = 0x70
	opCall = 0x80
	opExit = 0x90
	opJlt  = 0xa0
	opJle  = 0xb0
	opJslt = 0xc0
	opJsle = 0xd0
)

// Source bit: K uses the immediate, X uses the source register.
const (
	srcK = 0x00
	srcX = 0x08
)

// Memory access sizes (bits 3-4 of load/store opcodes).
const (
	sizeW  = 0x00 // 4 bytes
	sizeH  = 0x08 // 2 bytes
	sizeB  = 0x10 // 1 byte
	sizeDW = 0x18 // 8 bytes
)

// mode bits for LD class.
const (
	modeIMM = 0x00
	modeMEM = 0x60
)

// InstructionSize is the encoded size of one instruction in bytes.
const InstructionSize = 8

// Instruction is one decoded eBPF instruction.
type Instruction struct {
	Op  uint8
	Dst uint8
	Src uint8
	Off int16
	Imm int32
}

// Program is a verified sequence of instructions.
type Program struct {
	insns []Instruction
}

// Errors reported by the VM and verifier.
var (
	ErrTooLong        = errors.New("ebpfvm: program too long")
	ErrBadInstruction = errors.New("ebpfvm: invalid instruction")
	ErrBadJump        = errors.New("ebpfvm: jump out of bounds")
	ErrBadRegister    = errors.New("ebpfvm: invalid register")
	ErrNoExit         = errors.New("ebpfvm: program does not end with exit")
	ErrOOB            = errors.New("ebpfvm: memory access out of bounds")
	ErrSteps          = errors.New("ebpfvm: instruction budget exhausted")
	ErrUnknownHelper  = errors.New("ebpfvm: unknown helper")
	ErrTruncated      = errors.New("ebpfvm: truncated bytecode")
)

// MaxInstructions bounds program length, like the kernel's limit.
const MaxInstructions = 4096

// MaxSteps bounds interpreted steps per run (runaway-loop protection; the
// kernel instead proves termination, which is beyond verifier-lite).
const MaxSteps = 100000

// StackSize is the per-invocation stack below r10.
const StackSize = 512

// Memory layout: the context buffer occupies [CtxBase, CtxBase+len) and
// the stack occupies [StackTop-StackSize, StackTop). r1 starts at CtxBase
// and r10 at StackTop. These are virtual addresses private to the VM.
const (
	CtxBase  = 0x1000
	StackTop = 0x8000_0000
)

// Helper is a function callable from bytecode via CALL imm.
type Helper func(vm *VM, r1, r2, r3, r4, r5 uint64) uint64

// VM executes verified programs against a context buffer.
type VM struct {
	helpers map[int32]Helper
	stack   [StackSize]byte
	ctx     []byte
	steps   int
}

// New creates a VM with no helpers registered.
func New() *VM {
	return &VM{helpers: make(map[int32]Helper)}
}

// RegisterHelper makes fn callable as CALL id.
func (vm *VM) RegisterHelper(id int32, fn Helper) { vm.helpers[id] = fn }

// Ctx returns the context buffer of the current run (for helpers).
func (vm *VM) Ctx() []byte { return vm.ctx }

// Unmarshal decodes raw little-endian bytecode and verifies it.
func Unmarshal(b []byte) (*Program, error) {
	if len(b)%InstructionSize != 0 {
		return nil, ErrTruncated
	}
	n := len(b) / InstructionSize
	insns := make([]Instruction, n)
	for i := 0; i < n; i++ {
		o := b[i*InstructionSize:]
		insns[i] = Instruction{
			Op:  o[0],
			Dst: o[1] & 0x0f,
			Src: o[1] >> 4,
			Off: int16(binary.LittleEndian.Uint16(o[2:])),
			Imm: int32(binary.LittleEndian.Uint32(o[4:])),
		}
	}
	p := &Program{insns: insns}
	if err := p.verify(); err != nil {
		return nil, err
	}
	return p, nil
}

// Marshal encodes the program as little-endian bytecode.
func (p *Program) Marshal() []byte {
	b := make([]byte, len(p.insns)*InstructionSize)
	for i, in := range p.insns {
		o := b[i*InstructionSize:]
		o[0] = in.Op
		o[1] = in.Dst&0x0f | in.Src<<4
		binary.LittleEndian.PutUint16(o[2:], uint16(in.Off))
		binary.LittleEndian.PutUint32(o[4:], uint32(in.Imm))
	}
	return b
}

// Len returns the number of instructions (LDDW counts as two).
func (p *Program) Len() int { return len(p.insns) }

// Run executes the program. ctx is mapped at CtxBase and mutations are
// visible to the caller. Returns r0.
func (vm *VM) Run(p *Program, ctx []byte) (uint64, error) {
	var r [11]uint64
	r[1] = CtxBase
	r[10] = StackTop
	vm.ctx = ctx
	vm.steps = 0
	for i := range vm.stack {
		vm.stack[i] = 0
	}

	pc := 0
	for {
		vm.steps++
		if vm.steps > MaxSteps {
			return 0, ErrSteps
		}
		if pc < 0 || pc >= len(p.insns) {
			return 0, ErrBadJump
		}
		in := p.insns[pc]
		cls := in.Op & 0x07
		switch cls {
		case classALU64, classALU:
			is64 := cls == classALU64
			var operand uint64
			if in.Op&srcX != 0 {
				operand = r[in.Src]
			} else {
				operand = uint64(int64(in.Imm))
			}
			res, err := aluOp(in.Op&0xf0, r[in.Dst], operand, is64)
			if err != nil {
				return 0, err
			}
			r[in.Dst] = res

		case classJMP:
			op := in.Op & 0xf0
			switch op {
			case opCall:
				fn := vm.helpers[in.Imm]
				if fn == nil {
					return 0, fmt.Errorf("%w: %d", ErrUnknownHelper, in.Imm)
				}
				r[0] = fn(vm, r[1], r[2], r[3], r[4], r[5])
			case opExit:
				vm.ctx = nil
				return r[0], nil
			default:
				var operand uint64
				if in.Op&srcX != 0 {
					operand = r[in.Src]
				} else {
					operand = uint64(int64(in.Imm))
				}
				if jumpTaken(op, r[in.Dst], operand) {
					pc += int(in.Off)
				}
			}

		case classLD: // LDDW only
			if in.Op != 0x18 {
				return 0, ErrBadInstruction
			}
			if pc+1 >= len(p.insns) {
				return 0, ErrTruncated
			}
			next := p.insns[pc+1]
			r[in.Dst] = uint64(uint32(in.Imm)) | uint64(uint32(next.Imm))<<32
			pc++

		case classLDX:
			v, err := vm.load(r[in.Src]+uint64(int64(in.Off)), sizeOf(in.Op))
			if err != nil {
				return 0, err
			}
			r[in.Dst] = v

		case classST, classSTX:
			var v uint64
			if cls == classSTX {
				v = r[in.Src]
			} else {
				v = uint64(int64(in.Imm))
			}
			if err := vm.store(r[in.Dst]+uint64(int64(in.Off)), sizeOf(in.Op), v); err != nil {
				return 0, err
			}

		default:
			return 0, ErrBadInstruction
		}
		pc++
	}
}

func aluOp(op uint8, dst, src uint64, is64 bool) (uint64, error) {
	if !is64 {
		dst, src = uint64(uint32(dst)), uint64(uint32(src))
	}
	var res uint64
	switch op {
	case opAdd:
		res = dst + src
	case opSub:
		res = dst - src
	case opMul:
		res = dst * src
	case opDiv:
		// eBPF defines division by zero as zero.
		if src == 0 {
			res = 0
		} else {
			res = dst / src
		}
	case opMod:
		if src == 0 {
			res = dst
		} else {
			res = dst % src
		}
	case opOr:
		res = dst | src
	case opAnd:
		res = dst & src
	case opLsh:
		res = dst << (src & 63)
	case opRsh:
		res = dst >> (src & 63)
	case opNeg:
		res = uint64(-int64(dst))
	case opXor:
		res = dst ^ src
	case opMov:
		res = src
	case opArsh:
		res = uint64(int64(dst) >> (src & 63))
	default:
		return 0, ErrBadInstruction
	}
	if !is64 {
		res = uint64(uint32(res))
	}
	return res, nil
}

func jumpTaken(op uint8, dst, src uint64) bool {
	switch op {
	case opJa:
		return true
	case opJeq:
		return dst == src
	case opJne:
		return dst != src
	case opJgt:
		return dst > src
	case opJge:
		return dst >= src
	case opJlt:
		return dst < src
	case opJle:
		return dst <= src
	case opJset:
		return dst&src != 0
	case opJsgt:
		return int64(dst) > int64(src)
	case opJsge:
		return int64(dst) >= int64(src)
	case opJslt:
		return int64(dst) < int64(src)
	case opJsle:
		return int64(dst) <= int64(src)
	}
	return false
}

func sizeOf(op uint8) int {
	switch op & 0x18 {
	case sizeB:
		return 1
	case sizeH:
		return 2
	case sizeW:
		return 4
	default:
		return 8
	}
}

// resolve maps a virtual address to a concrete slice.
func (vm *VM) resolve(addr uint64, n int) ([]byte, error) {
	switch {
	case addr >= CtxBase && addr+uint64(n) <= CtxBase+uint64(len(vm.ctx)):
		off := addr - CtxBase
		return vm.ctx[off : off+uint64(n)], nil
	case addr >= StackTop-StackSize && addr+uint64(n) <= StackTop:
		off := addr - (StackTop - StackSize)
		return vm.stack[off : off+uint64(n)], nil
	}
	return nil, fmt.Errorf("%w: addr %#x len %d", ErrOOB, addr, n)
}

func (vm *VM) load(addr uint64, n int) (uint64, error) {
	b, err := vm.resolve(addr, n)
	if err != nil {
		return 0, err
	}
	switch n {
	case 1:
		return uint64(b[0]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(b)), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(b)), nil
	default:
		return binary.LittleEndian.Uint64(b), nil
	}
}

func (vm *VM) store(addr uint64, n int, v uint64) error {
	b, err := vm.resolve(addr, n)
	if err != nil {
		return err
	}
	switch n {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
	return nil
}

// verify performs the static checks of verifier-lite: opcode validity,
// register ranges, jump targets, LDDW pairing, and a terminating EXIT.
// Unlike the kernel it does not prove termination; Run's step budget
// bounds runaway loops instead.
func (p *Program) verify() error {
	if len(p.insns) > MaxInstructions {
		return ErrTooLong
	}
	if len(p.insns) == 0 {
		return ErrNoExit
	}
	// First pass: mark the second slots of LDDW pairs so forward jumps
	// into them can be rejected in the main pass.
	isLDDWHigh := make([]bool, len(p.insns))
	for i := 0; i < len(p.insns); i++ {
		if p.insns[i].Op == 0x18 {
			if i+1 < len(p.insns) {
				isLDDWHigh[i+1] = true
			}
			i++
		}
	}
	sawExit := false
	for i := 0; i < len(p.insns); i++ {
		in := p.insns[i]
		if in.Dst > 10 || in.Src > 10 {
			return ErrBadRegister
		}
		cls := in.Op & 0x07
		switch cls {
		case classALU, classALU64:
			switch in.Op & 0xf0 {
			case opAdd, opSub, opMul, opDiv, opOr, opAnd, opLsh, opRsh,
				opNeg, opMod, opXor, opMov, opArsh:
			default:
				return fmt.Errorf("%w: opcode %#x at %d", ErrBadInstruction, in.Op, i)
			}
			if in.Dst == 10 {
				return fmt.Errorf("%w: write to r10 at %d", ErrBadRegister, i)
			}
		case classJMP:
			op := in.Op & 0xf0
			switch op {
			case opCall, opExit:
				if op == opExit {
					sawExit = true
				}
			case opJa, opJeq, opJne, opJgt, opJge, opJlt, opJle, opJset,
				opJsgt, opJsge, opJslt, opJsle:
				tgt := i + 1 + int(in.Off)
				if tgt < 0 || tgt >= len(p.insns) {
					return fmt.Errorf("%w: insn %d -> %d", ErrBadJump, i, tgt)
				}
				if isLDDWHigh[tgt] {
					return fmt.Errorf("%w: jump into LDDW at %d", ErrBadJump, tgt)
				}
			default:
				return fmt.Errorf("%w: opcode %#x at %d", ErrBadInstruction, in.Op, i)
			}
		case classLD:
			if in.Op != 0x18 {
				return fmt.Errorf("%w: opcode %#x at %d", ErrBadInstruction, in.Op, i)
			}
			if i+1 >= len(p.insns) {
				return ErrTruncated
			}
			if in.Dst == 10 {
				return fmt.Errorf("%w: write to r10 at %d", ErrBadRegister, i)
			}
			i++
		case classLDX:
			if in.Op&0xe0 != modeMEM {
				return fmt.Errorf("%w: opcode %#x at %d", ErrBadInstruction, in.Op, i)
			}
			if in.Dst == 10 {
				return fmt.Errorf("%w: write to r10 at %d", ErrBadRegister, i)
			}
		case classST, classSTX:
			if in.Op&0xe0 != modeMEM {
				return fmt.Errorf("%w: opcode %#x at %d", ErrBadInstruction, in.Op, i)
			}
		default:
			return fmt.Errorf("%w: class %#x at %d", ErrBadInstruction, cls, i)
		}
	}
	if !sawExit {
		return ErrNoExit
	}
	if last := p.insns[len(p.insns)-1]; last.Op&0x07 != classJMP ||
		(last.Op&0xf0 != opExit && last.Op&0xf0 != opJa) {
		return ErrNoExit
	}
	return nil
}
