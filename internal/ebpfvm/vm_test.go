package ebpfvm

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"testing/quick"
)

func run(t *testing.T, src string, ctx []byte) uint64 {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	v, err := New().Run(p, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want uint64
	}{
		{"mov r0, 7\nadd r0, 5\nexit", 12},
		{"mov r0, 7\nsub r0, 9\nexit", ^uint64(1)}, // -2
		{"mov r0, 6\nmul r0, 7\nexit", 42},
		{"mov r0, 100\ndiv r0, 7\nexit", 14},
		{"mov r0, 100\ndiv r0, 0\nexit", 0}, // eBPF semantics
		{"mov r0, 100\nmod r0, 7\nexit", 2},
		{"mov r0, 100\nmod r0, 0\nexit", 100},
		{"mov r0, 0xf0\nor r0, 0x0f\nexit", 0xff},
		{"mov r0, 0xff\nand r0, 0x0f\nexit", 0x0f},
		{"mov r0, 1\nlsh r0, 10\nexit", 1024},
		{"mov r0, 1024\nrsh r0, 3\nexit", 128},
		{"mov r0, 5\nneg r0\nexit", ^uint64(4)}, // -5
		{"mov r0, 0xff\nxor r0, 0xf0\nexit", 0x0f},
		{"mov r0, -8\narsh r0, 1\nexit", ^uint64(3)}, // -4
		{"mov r1, 3\nmov r0, r1\nadd r0, r1\nexit", 6},
	}
	for _, c := range cases {
		if got := run(t, c.src, nil); got != c.want {
			t.Errorf("%q = %#x, want %#x", c.src, got, c.want)
		}
	}
}

func TestALU32Truncates(t *testing.T) {
	if got := run(t, "lddw r0, 0x1ffffffff\nadd32 r0, 1\nexit", nil); got != 0 {
		t.Fatalf("add32 = %#x", got)
	}
	if got := run(t, "mov32 r0, -1\nexit", nil); got != 0xffffffff {
		t.Fatalf("mov32 -1 = %#x", got)
	}
}

func TestLDDW(t *testing.T) {
	if got := run(t, "lddw r0, 0x123456789abcdef0\nexit", nil); got != 0x123456789abcdef0 {
		t.Fatalf("lddw = %#x", got)
	}
}

func TestJumps(t *testing.T) {
	src := `
		mov r0, 0
		mov r1, 10
	loop:
		add r0, r1
		sub r1, 1
		jgt r1, 0, loop
		exit
	`
	if got := run(t, src, nil); got != 55 {
		t.Fatalf("sum = %d", got)
	}
	// Signed comparisons.
	if got := run(t, "mov r1, -5\nmov r0, 0\njsgt r1, 0, bad\nmov r0, 1\nbad:\nexit", nil); got != 1 {
		t.Fatal("jsgt treated -5 as unsigned")
	}
	if got := run(t, "mov r1, -5\nmov r0, 0\njgt r1, 0, big\nja done\nbig:\nmov r0, 1\ndone:\nexit", nil); got != 1 {
		t.Fatal("jgt should treat -5 as huge unsigned")
	}
	if got := run(t, "mov r1, 6\nmov r0, 0\njset r1, 2, yes\nja done\nyes:\nmov r0, 1\ndone:\nexit", nil); got != 1 {
		t.Fatal("jset")
	}
}

func TestContextLoadStore(t *testing.T) {
	ctx := make([]byte, 32)
	binary.LittleEndian.PutUint64(ctx[0:], 41)
	src := `
		ldxdw r2, [r1+0]
		add   r2, 1
		stxdw [r1+8], r2
		stw   [r1+16], 7
		stb   [r1+20], 9
		exit
	`
	run(t, src, ctx)
	if got := binary.LittleEndian.Uint64(ctx[8:]); got != 42 {
		t.Fatalf("ctx[8] = %d", got)
	}
	if got := binary.LittleEndian.Uint32(ctx[16:]); got != 7 {
		t.Fatalf("ctx[16] = %d", got)
	}
	if ctx[20] != 9 {
		t.Fatalf("ctx[20] = %d", ctx[20])
	}
}

func TestStack(t *testing.T) {
	src := `
		stdw  [r10-8], 1234
		ldxdw r0, [r10-8]
		exit
	`
	if got := run(t, src, nil); got != 1234 {
		t.Fatalf("stack = %d", got)
	}
}

func TestSubWordLoads(t *testing.T) {
	ctx := []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88}
	if got := run(t, "ldxb r0, [r1+1]\nexit", ctx); got != 0x22 {
		t.Fatalf("ldxb = %#x", got)
	}
	if got := run(t, "ldxh r0, [r1+2]\nexit", ctx); got != 0x4433 {
		t.Fatalf("ldxh = %#x", got)
	}
	if got := run(t, "ldxw r0, [r1+4]\nexit", ctx); got != 0x88776655 {
		t.Fatalf("ldxw = %#x", got)
	}
}

func TestOutOfBoundsRejected(t *testing.T) {
	p := MustAssemble("ldxdw r0, [r1+64]\nexit")
	if _, err := New().Run(p, make([]byte, 8)); err == nil {
		t.Fatal("OOB context read allowed")
	}
	p = MustAssemble("stdw [r10+8], 1\nexit") // above stack top
	if _, err := New().Run(p, nil); err == nil {
		t.Fatal("store above stack allowed")
	}
	p = MustAssemble("mov r2, 0\nldxdw r0, [r2+0]\nexit") // null deref
	if _, err := New().Run(p, nil); err == nil {
		t.Fatal("null deref allowed")
	}
}

func TestInfiniteLoopBudget(t *testing.T) {
	p := MustAssemble("loop:\nja loop\nexit")
	if _, err := New().Run(p, nil); err != ErrSteps {
		t.Fatalf("want ErrSteps, got %v", err)
	}
}

func TestHelpers(t *testing.T) {
	vm := New()
	vm.RegisterHelper(7, func(_ *VM, r1, r2, _, _, _ uint64) uint64 { return r1 * r2 })
	p := MustAssemble("mov r1, 6\nmov r2, 7\ncall 7\nexit")
	got, err := vm.Run(p, nil)
	if err != nil || got != 42 {
		t.Fatalf("helper = %d, %v", got, err)
	}
	if _, err := vm.Run(MustAssemble("call 99\nexit"), nil); err == nil {
		t.Fatal("unknown helper allowed")
	}
}

func TestVerifierRejects(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no exit", "mov r0, 1\nmov r0, 2"},
		{"jump out of range", "jeq r0, 0, nowhere\nexit"},
		{"write r10", "mov r10, 5\nexit"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Raw bytecode paths.
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("truncated bytecode accepted")
	}
	bad := make([]byte, 8)
	bad[0] = 0xff // bogus opcode
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bogus opcode accepted")
	}
	// Register out of range.
	raw := MustAssemble("mov r0, 1\nexit").Marshal()
	raw[1] = 0x0c // dst = r12
	if _, err := Unmarshal(raw); err == nil {
		t.Error("r12 accepted")
	}
	// Jump into the middle of an LDDW pair.
	src := "jeq r0, 0, mid\nlddw r1, 0x123456789\nmid:\nexit"
	p, err := Assemble(src)
	_ = p
	if err == nil {
		// The label lands after the LDDW pair; craft the bad jump by hand.
		raw := MustAssemble("mov r0, 0\nlddw r1, 0x123456789\nexit").Marshal()
		// Replace insn 0 with jeq +1 (into LDDW high half).
		raw[0] = classJMP | opJeq
		raw[1] = 0
		binary.LittleEndian.PutUint16(raw[2:], 1)
		if _, err := Unmarshal(raw); err == nil {
			t.Error("jump into LDDW accepted")
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := MustAssemble(`
		mov   r2, 5
		lddw  r3, 0xdeadbeefcafef00d
		stxdw [r10-16], r3
		ldxdw r0, [r10-16]
		jeq   r0, r3, ok
		mov   r0, 0
	ok:
		exit
	`)
	b := p.Marshal()
	q, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.Marshal(), b) {
		t.Fatal("marshal not stable")
	}
	got, err := New().Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xdeadbeefcafef00d {
		t.Fatalf("round-tripped program = %#x", got)
	}
}

func TestDisassemble(t *testing.T) {
	p := MustAssemble("mov r0, 1\nldxdw r2, [r1+8]\njeq r2, 0, done\nadd r0, r2\ndone:\nexit")
	dis := p.Disassemble()
	for _, want := range []string{"mov r0, 1", "ldxdw r2, [r1+8]", "jeq r2, 0", "exit"} {
		if !strings.Contains(dis, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestAssemblerErrors(t *testing.T) {
	for _, src := range []string{
		"bogus r0, 1\nexit",
		"mov r11, 1\nexit",
		"mov r0\nexit",
		"ldxdw r0, r1\nexit",
		"jeq r0, 1\nexit",
		"ja missing\nexit",
		"dup:\ndup:\nexit",
		"mov r0, 99999999999\nexit",
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

// Property: Marshal/Unmarshal of any valid assembled program round-trips.
func TestMarshalProperty(t *testing.T) {
	f := func(a, b uint8, imm int32) bool {
		src := "mov r1, " + itoa(int64(imm)) + "\nadd r1, r1\nmov r0, r1\nexit"
		p, err := Assemble(src)
		if err != nil {
			return false
		}
		q, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		v1, err1 := New().Run(p, nil)
		v2, err2 := New().Run(q, nil)
		return err1 == nil && err2 == nil && v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var digits []byte
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		digits = append([]byte{byte('0' + u%10)}, digits...)
		u /= 10
	}
	if neg {
		return "-" + string(digits)
	}
	return string(digits)
}
