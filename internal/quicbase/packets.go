package quicbase

import (
	"encoding/binary"
	"io"
	"sort"
	"sync"
	"time"
)

// Protected packet: [ptProtected][cid u64][pktnum u64][ciphertext]
// where plaintext is a sequence of frames. The packet number doubles as
// the AEAD nonce counter (XORed into the static IV) and the AAD is the
// 17-byte header.

func (c *Conn) seal(frames []byte) ([]byte, uint64) {
	c.mu.Lock()
	num := c.pktNum
	c.pktNum++
	aead, iv := c.sendAEAD, c.sendIV
	c.mu.Unlock()
	hdr := make([]byte, 17, 17+len(frames)+16)
	hdr[0] = ptProtected
	binary.BigEndian.PutUint64(hdr[1:], c.cid)
	binary.BigEndian.PutUint64(hdr[9:], num)
	nonce := make([]byte, len(iv))
	copy(nonce, iv)
	for i := 0; i < 8; i++ {
		nonce[len(nonce)-8+i] ^= hdr[9+i]
	}
	return aead.Seal(hdr, nonce, frames, hdr[:17]), num
}

// sendFrames seals and transmits one packet, registering it for loss
// recovery when ackEliciting. Retransmissions resend the sealed packet
// verbatim (same packet number), so the receiver's cumulative ack can
// pass the hole — quicbase's substitute for QUIC's ack ranges.
func (c *Conn) sendFrames(frames []byte, ackEliciting bool) {
	pkt, num := c.seal(frames)
	if ackEliciting {
		c.mu.Lock()
		c.inflight[num] = &sentPacket{num: num, raw: pkt, size: len(pkt), sentAt: time.Now()}
		c.bytesOut += len(pkt)
		c.mu.Unlock()
		c.armRetransmit()
	}
	c.endpoint.send(c.remoteAddr(), pkt)
}

func (c *Conn) armRetransmit() {
	clock := c.endpoint.host.Network()
	c.mu.Lock()
	clock.Schedule(&c.rtxTimer, 250*time.Millisecond, c.onRetransmit)
	c.mu.Unlock()
}

// onRetransmit resends everything outstanding verbatim (simplified PTO).
func (c *Conn) onRetransmit() {
	c.mu.Lock()
	if c.closed || len(c.inflight) == 0 {
		c.mu.Unlock()
		return
	}
	c.ctrl.OnRetransmitTimeout(c.bytesOut)
	pkts := make([]*sentPacket, 0, len(c.inflight))
	for _, sp := range c.inflight {
		pkts = append(pkts, sp)
	}
	c.mu.Unlock()
	sort.Slice(pkts, func(i, j int) bool { return pkts[i].num < pkts[j].num })
	for _, sp := range pkts {
		c.endpoint.send(c.remoteAddr(), sp.raw)
	}
	c.armRetransmit()
}

// inputProtected decrypts and dispatches one protected packet body
// (after type+cid: pktnum + ciphertext).
func (c *Conn) inputProtected(b []byte) {
	if len(b) < 8 {
		return
	}
	<-c.handshakeDone
	c.mu.Lock()
	aead, iv := c.recvAEAD, c.recvIV
	c.mu.Unlock()
	if aead == nil {
		return
	}
	num := binary.BigEndian.Uint64(b)
	hdr := make([]byte, 17)
	hdr[0] = ptProtected
	binary.BigEndian.PutUint64(hdr[1:], c.cid)
	binary.BigEndian.PutUint64(hdr[9:], num)
	nonce := make([]byte, len(iv))
	copy(nonce, iv)
	for i := 0; i < 8; i++ {
		nonce[len(nonce)-8+i] ^= b[i]
	}
	plain, err := aead.Open(nil, nonce, b[8:], hdr)
	if err != nil {
		return
	}
	c.mu.Lock()
	if num > c.largest {
		c.largest = num
	}
	// Duplicate suppression: retransmissions reuse packet numbers.
	if num < c.nextExpected || c.future[num] {
		cum := c.nextExpected
		c.mu.Unlock()
		var ack []byte
		ack = append(ack, frAck)
		ack = binary.BigEndian.AppendUint64(ack, cum)
		c.sendFrames(ack, false)
		return
	}
	// Contiguous cumulative accounting: only packets below nextExpected
	// are acknowledged, so losses keep being retransmitted.
	if num == c.nextExpected {
		c.nextExpected++
		for c.future[c.nextExpected] {
			delete(c.future, c.nextExpected)
			c.nextExpected++
		}
	} else if num > c.nextExpected {
		c.future[num] = true
	}
	cum := c.nextExpected
	c.mu.Unlock()
	ackEliciting := c.dispatchFrames(plain)
	if ackEliciting {
		var ack []byte
		ack = append(ack, frAck)
		ack = binary.BigEndian.AppendUint64(ack, cum)
		c.sendFrames(ack, false)
	}
}

// dispatchFrames walks the frames; reports whether any elicit an ack.
func (c *Conn) dispatchFrames(b []byte) bool {
	eliciting := false
	for len(b) > 0 {
		switch b[0] {
		case frStream:
			if len(b) < 16 {
				return eliciting
			}
			id := binary.BigEndian.Uint32(b[1:])
			off := binary.BigEndian.Uint64(b[5:])
			fin := b[13] == 1
			n := int(binary.BigEndian.Uint16(b[14:]))
			if len(b) < 16+n {
				return eliciting
			}
			data := b[16 : 16+n]
			c.streamDeliver(id, off, fin, data)
			b = b[16+n:]
			eliciting = true
		case frAck:
			if len(b) < 9 {
				return eliciting
			}
			c.handleAck(binary.BigEndian.Uint64(b[1:]))
			b = b[9:]
		case frPing:
			b = b[1:]
			eliciting = true
		case frClose:
			c.close(io.EOF)
			return false
		default:
			return eliciting
		}
	}
	return eliciting
}

// handleAck acknowledges all packets below cum (all-received-contiguous
// cumulative ack — a simplification of QUIC's ranges).
func (c *Conn) handleAck(cum uint64) {
	c.mu.Lock()
	acked := 0
	for num, sp := range c.inflight {
		if num < cum {
			acked += sp.size
			c.bytesOut -= sp.size
			delete(c.inflight, num)
		}
	}
	// Fast retransmit: three acks stuck at the same cumulative point
	// mean the packet at cum was lost — resend it without waiting for
	// the probe timeout.
	var fastRtx *sentPacket
	if cum == c.lastCum && len(c.inflight) > 0 {
		c.dupCum++
		if c.dupCum >= 3 {
			c.dupCum = 0
			var lowest *sentPacket
			for _, sp := range c.inflight {
				if lowest == nil || sp.num < lowest.num {
					lowest = sp
				}
			}
			if lowest != nil {
				fastRtx = lowest
				c.ctrl.OnFastRetransmit(c.bytesOut)
				c.ctrl.OnRecoveryExit()
			}
		}
	} else {
		c.lastCum = cum
		c.dupCum = 0
	}
	empty := len(c.inflight) == 0
	c.mu.Unlock()
	if fastRtx != nil {
		c.endpoint.send(c.remoteAddr(), fastRtx.raw)
	}
	if acked > 0 {
		c.ctrl.OnAck(acked, 0, c.bytesOut)
	}
	if empty {
		c.mu.Lock()
		c.rtxTimer.Stop()
		c.mu.Unlock()
	}
	// Wake writers blocked on the window.
	c.mu.Lock()
	for _, st := range c.streams {
		st.cond.Broadcast()
	}
	c.mu.Unlock()
}

func (c *Conn) close(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.closeErr = err
	c.rtxTimer.Stop()
	streams := make([]*Stream, 0, len(c.streams))
	for _, st := range c.streams {
		streams = append(streams, st)
	}
	close(c.accepts)
	c.mu.Unlock()
	c.hs.close()
	for _, st := range streams {
		st.mu.Lock()
		if st.err == nil {
			st.err = err
		}
		st.cond.Broadcast()
		st.mu.Unlock()
	}
	e := c.endpoint
	e.mu.Lock()
	delete(e.conns, c.cid)
	e.mu.Unlock()
}

// Close sends a CLOSE frame and tears down.
func (c *Conn) Close() error {
	c.sendFrames([]byte{frClose}, false)
	c.close(ErrClosed)
	return nil
}

// Rebind moves the client to a new local address family by simply
// sending from it — the server follows the connection ID (migration).
func (c *Conn) Rebind() {
	c.sendFrames([]byte{frPing}, true)
}

// Stream is a quicbase stream.
type Stream struct {
	id   uint32
	conn *Conn

	mu   sync.Mutex
	cond *sync.Cond

	sendOff uint64
	recvBuf []byte
	recvOff uint64
	ooo     map[uint64][]byte
	finOff  uint64
	finSet  bool
	err     error
}

func newQStream(c *Conn, id uint32) *Stream {
	st := &Stream{id: id, conn: c, ooo: make(map[uint64][]byte)}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// OpenStream creates a stream.
func (c *Conn) OpenStream() (*Stream, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	st := newQStream(c, c.nextID)
	c.nextID += 2
	c.streams[st.id] = st
	return st, nil
}

// AcceptStream waits for a peer-opened stream.
func (c *Conn) AcceptStream() (*Stream, error) {
	st, ok := <-c.accepts
	if !ok {
		return nil, ErrClosed
	}
	return st, nil
}

func (c *Conn) streamDeliver(id uint32, off uint64, fin bool, data []byte) {
	c.mu.Lock()
	st := c.streams[id]
	if st == nil {
		if c.closed {
			c.mu.Unlock()
			return
		}
		st = newQStream(c, id)
		c.streams[id] = st
		select {
		case c.accepts <- st:
		default:
		}
	}
	c.mu.Unlock()
	st.deliver(off, fin, data)
}

func (st *Stream) deliver(off uint64, fin bool, data []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if fin && !st.finSet {
		st.finSet = true
		st.finOff = off + uint64(len(data))
	}
	if off < st.recvOff {
		skip := st.recvOff - off
		if skip >= uint64(len(data)) {
			st.cond.Broadcast()
			return
		}
		data = data[skip:]
		off = st.recvOff
	}
	if off == st.recvOff {
		st.recvBuf = append(st.recvBuf, data...)
		st.recvOff += uint64(len(data))
		for {
			nxt, ok := st.ooo[st.recvOff]
			if !ok {
				break
			}
			delete(st.ooo, st.recvOff)
			st.recvBuf = append(st.recvBuf, nxt...)
			st.recvOff += uint64(len(nxt))
		}
	} else {
		st.ooo[off] = append([]byte(nil), data...)
	}
	st.cond.Broadcast()
}

// Write sends stream data under congestion control.
func (st *Stream) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		st.mu.Lock()
		if st.err != nil {
			err := st.err
			st.mu.Unlock()
			return total, err
		}
		st.mu.Unlock()
		// Window check: cap outstanding bytes to cwnd.
		c := st.conn
		c.mu.Lock()
		for c.bytesOut >= c.ctrl.CWnd() && !c.closed {
			c.mu.Unlock()
			time.Sleep(c.endpoint.host.Network().ScaleDuration(500 * time.Microsecond))
			c.mu.Lock()
		}
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return total, ErrClosed
		}
		n := min(len(p), 1200)
		st.mu.Lock()
		off := st.sendOff
		st.sendOff += uint64(n)
		st.mu.Unlock()
		st.conn.sendFrames(streamFrame(st.id, off, false, p[:n]), true)
		p = p[n:]
		total += n
	}
	return total, nil
}

// Close sends FIN.
func (st *Stream) Close() error {
	st.mu.Lock()
	off := st.sendOff
	st.mu.Unlock()
	st.conn.sendFrames(streamFrame(st.id, off, true, nil), true)
	return nil
}

// Read delivers in-order stream data.
func (st *Stream) Read(p []byte) (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if len(st.recvBuf) > 0 {
			n := copy(p, st.recvBuf)
			st.recvBuf = st.recvBuf[n:]
			return n, nil
		}
		if st.finSet && st.recvOff >= st.finOff {
			return 0, io.EOF
		}
		if st.err != nil {
			return 0, st.err
		}
		st.cond.Wait()
	}
}

func streamFrame(id uint32, off uint64, fin bool, data []byte) []byte {
	b := make([]byte, 0, 16+len(data))
	b = append(b, frStream)
	b = binary.BigEndian.AppendUint32(b, id)
	b = binary.BigEndian.AppendUint64(b, off)
	if fin {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(data)))
	return append(b, data...)
}
