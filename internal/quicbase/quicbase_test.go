package quicbase

import (
	"bytes"
	"crypto/rand"
	"io"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

var (
	qcV4 = netip.MustParseAddr("10.0.0.1")
	qsV4 = netip.MustParseAddr("10.0.0.2")
	qcV6 = netip.MustParseAddr("fc00::1")
	qsV6 = netip.MustParseAddr("fc00::2")
)

var qCert *tls13.Certificate

func init() {
	var err error
	qCert, err = tls13.GenerateSelfSigned("quicbase", nil, nil)
	if err != nil {
		panic(err)
	}
}

type qEnv struct {
	net    *netsim.Network
	linkV4 *netsim.Link
	client *Endpoint
	server *Endpoint
}

func qenv(t *testing.T, link netsim.LinkConfig) *qEnv {
	t.Helper()
	n := netsim.New()
	ch, sh := n.Host("client"), n.Host("server")
	l4 := n.AddLink(ch, sh, qcV4, qsV4, link)
	n.AddLink(ch, sh, qcV6, qsV6, link)
	client := NewEndpoint(ch, 4433, &tls13.Config{InsecureSkipVerify: true}, false)
	server := NewEndpoint(sh, 4433, &tls13.Config{Certificate: qCert, MaxEarlyData: 16384}, true)
	t.Cleanup(func() { client.Close(); server.Close(); n.Close() })
	return &qEnv{net: n, linkV4: l4, client: client, server: server}
}

func qpair(t *testing.T, e *qEnv) (*Conn, *Conn) {
	t.Helper()
	type res struct {
		c   *Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := e.server.Accept()
		ch <- res{c, err}
	}()
	cli, err := e.client.Dial(netip.AddrPortFrom(qsV4, 4433), 10*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("accept: %v", r.err)
	}
	return cli, r.c
}

func TestHandshakeAndEcho(t *testing.T) {
	e := qenv(t, netsim.LinkConfig{Delay: 2 * time.Millisecond})
	cli, srv := qpair(t, e)
	st, err := cli.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		sst, err := srv.AcceptStream()
		if err != nil {
			return
		}
		data, _ := io.ReadAll(sst)
		back, _ := srv.OpenStream()
		back.Write(bytes.ToUpper(data))
		back.Close()
	}()
	st.Write([]byte("quic-lite"))
	st.Close()
	back, err := cli.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(back)
	if err != nil || string(got) != "QUIC-LITE" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestBulkTransferOverLoss(t *testing.T) {
	e := qenv(t, netsim.LinkConfig{Delay: 2 * time.Millisecond, BandwidthBps: 50e6, Loss: 0.01})
	cli, srv := qpair(t, e)
	data := make([]byte, 300<<10)
	rand.Read(data)
	st, _ := cli.OpenStream()
	go func() {
		st.Write(data)
		st.Close()
	}()
	sst, err := srv.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(sst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("corruption: %d vs %d", len(got), len(data))
	}
}

func TestConnectionMigration(t *testing.T) {
	// The client's address changes mid-connection; the server keeps the
	// session keyed by connection ID.
	e := qenv(t, netsim.LinkConfig{Delay: 2 * time.Millisecond})
	cli, srv := qpair(t, e)
	st, _ := cli.OpenStream()
	st.Write([]byte("before"))
	time.Sleep(50 * time.Millisecond)
	// Simulate the address change by retargeting the client's remote to
	// the server's v6 address: subsequent packets leave from the v6
	// interface, arriving with a new source.
	cli.mu.Lock()
	cli.remote = netip.AddrPortFrom(qsV6, 4433)
	cli.mu.Unlock()
	cli.Rebind()
	st.Write([]byte(" after"))
	st.Close()
	sst, err := srv.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(sst)
	if err != nil || string(got) != "before after" {
		t.Fatalf("%q %v", got, err)
	}
	if srv.Migrations() == 0 {
		t.Fatal("server did not observe the migration")
	}
}

func TestResumptionHandshake(t *testing.T) {
	e := qenv(t, netsim.LinkConfig{Delay: 2 * time.Millisecond})
	// First connection: collect a ticket. quicbase's TLS runs over the
	// crypto pipe, so tickets arrive with the server flight; give the
	// session a moment.
	var sess atomic.Pointer[tls13.ClientSession]
	e.client.tlsCfg.OnNewSession = func(s *tls13.ClientSession) { sess.Store(s) }
	cli, srv := qpair(t, e)
	st, _ := cli.OpenStream()
	st.Write([]byte("x"))
	st.Close()
	sst, _ := srv.AcceptStream()
	io.ReadAll(sst)
	deadline := time.Now().Add(2 * time.Second)
	for sess.Load() == nil && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if sess.Load() == nil {
		t.Skip("no ticket surfaced through the crypto pipe")
	}
	cli.Close()
	e.client.tlsCfg.Session = sess.Load()
	cli2, _ := qpair(t, e)
	if !cli2.TLSState().Resumed {
		t.Fatal("second connection not resumed")
	}
}

func TestCloseDeliversError(t *testing.T) {
	e := qenv(t, netsim.LinkConfig{Delay: time.Millisecond})
	cli, srv := qpair(t, e)
	st, _ := cli.OpenStream()
	st.Write([]byte("hi"))
	sst, err := srv.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	sst.Read(buf)
	cli.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		srv.mu.Lock()
		closed := srv.closed
		srv.mu.Unlock()
		if closed {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server never saw the close")
}
