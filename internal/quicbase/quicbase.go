// Package quicbase is a deliberately small QUIC-like transport used as
// the comparator in the paper's Table 1: connection IDs over UDP, a real
// TLS 1.3 handshake (internal/tls13) carried in reliable CRYPTO
// exchanges, AEAD-protected packets, stream multiplexing with offsets,
// ack-driven loss recovery with the shared congestion controllers, and
// connection migration by connection ID.
//
// It is not RFC 9000 — it is the minimal honest implementation of the
// feature set Table 1 compares against: transport reliability, message
// confidentiality, connection reliability, streams, migration and
// resumption/0-RTT (inherited from the TLS stack).
package quicbase

import (
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/cc"
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/timingwheel"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// Errors.
var (
	ErrClosed    = errors.New("quicbase: connection closed")
	ErrTimeout   = errors.New("quicbase: handshake timeout")
	ErrNoStream  = errors.New("quicbase: unknown stream")
	ErrTooLarge  = errors.New("quicbase: datagram too large")
	errBadPacket = errors.New("quicbase: malformed packet")
)

// Packet types (first byte).
const (
	ptHandshake uint8 = 1 // plaintext CRYPTO carrier with mini-ARQ header
	ptProtected uint8 = 2 // AEAD-protected frames
)

// Frame types inside protected packets.
const (
	frStream uint8 = 1 // {id u32, off u64, fin u8, len u16, data}
	frAck    uint8 = 2 // {largest u64, nranges u8, {gap u64, len u64}...} (simplified: cumulative + bitmap-free)
	frPing   uint8 = 3
	frClose  uint8 = 4
)

// maxDatagram bounds a quicbase datagram payload.
const maxDatagram = 1350

// Endpoint is a UDP-like endpoint on the emulated network, demuxing
// datagrams to connections by connection ID.
type Endpoint struct {
	host *netsim.Host
	port uint16

	mu       sync.Mutex
	conns    map[uint64]*Conn // by connection id
	accepts  chan *Conn
	tlsCfg   *tls13.Config
	isServer bool
	closed   bool
}

// NewEndpoint attaches a quicbase endpoint to a host/port. Server
// endpoints need a TLS config with a certificate.
func NewEndpoint(h *netsim.Host, port uint16, tlsCfg *tls13.Config, server bool) *Endpoint {
	e := &Endpoint{
		host:     h,
		port:     port,
		conns:    make(map[uint64]*Conn),
		accepts:  make(chan *Conn, 16),
		tlsCfg:   tlsCfg,
		isServer: server,
	}
	h.Register(wire.ProtoUDP, e.input)
	return e
}

// Accept returns the next inbound connection (servers).
func (e *Endpoint) Accept() (*Conn, error) {
	c, ok := <-e.accepts
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

// Close shuts the endpoint down.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	conns := make([]*Conn, 0, len(e.conns))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	close(e.accepts)
	e.mu.Unlock()
	for _, c := range conns {
		c.close(ErrClosed)
	}
}

// Dial opens a connection to the server at raddr and completes the
// handshake.
func (e *Endpoint) Dial(raddr netip.AddrPort, timeout time.Duration) (*Conn, error) {
	cid := randomCID()
	c := newConn(e, cid, raddr, true)
	e.mu.Lock()
	e.conns[cid] = c
	e.mu.Unlock()
	go c.runHandshake()
	scaled := e.host.Network().ScaleDuration(timeout)
	select {
	case <-c.handshakeDone:
	case <-time.After(scaled):
		c.close(ErrTimeout)
		return nil, ErrTimeout
	}
	if c.hsErr != nil {
		return nil, c.hsErr
	}
	return c, nil
}

// input demuxes one UDP datagram.
func (e *Endpoint) input(p *wire.Packet) {
	dg, err := wire.UnmarshalDatagram(p.Payload)
	if err != nil || dg.DstPort != e.port {
		return
	}
	b := dg.Payload
	if len(b) < 9 {
		return
	}
	cid := binary.BigEndian.Uint64(b[1:9])
	from := netip.AddrPortFrom(p.Src, dg.SrcPort)

	e.mu.Lock()
	c := e.conns[cid]
	if c == nil && e.isServer && b[0] == ptHandshake && !e.closed {
		c = newConn(e, cid, from, false)
		e.conns[cid] = c
		go c.runHandshake()
		go func() {
			<-c.handshakeDone
			if c.hsErr == nil {
				select {
				case e.accepts <- c:
				default:
					c.close(ErrClosed)
				}
			}
		}()
	}
	e.mu.Unlock()
	if c == nil {
		return
	}
	// Connection migration: packets are identified by CID, so a new
	// source address simply becomes the new return path.
	c.mu.Lock()
	if from != c.remote && !c.isClient {
		c.remote = from
		c.migrations++
	}
	c.mu.Unlock()
	c.inputDatagram(b)
}

func (e *Endpoint) send(remote netip.AddrPort, payload []byte) error {
	if len(payload) > maxDatagram+64 {
		return ErrTooLarge
	}
	var local netip.Addr
	for _, a := range e.host.Addrs() {
		if a.Is4() == remote.Addr().Is4() {
			local = a
			break
		}
	}
	if !local.IsValid() {
		return fmt.Errorf("quicbase: no local address toward %s", remote)
	}
	dg := &wire.Datagram{SrcPort: e.port, DstPort: remote.Port(), Payload: payload}
	return e.host.Send(&wire.Packet{
		Src: local, Dst: remote.Addr(), Proto: wire.ProtoUDP, TTL: 64,
		Payload: dg.Marshal(local, remote.Addr()),
	})
}

func randomCID() uint64 {
	var b [8]byte
	rand.Read(b[:])
	return binary.BigEndian.Uint64(b[:])
}

// hsPipe adapts the datagram CRYPTO exchange into the net.Conn the TLS
// stack expects: writes are split into numbered, retransmitted
// handshake datagrams; reads deliver the peer's CRYPTO bytes in order.
type hsPipe struct {
	c *Conn

	mu      sync.Mutex
	cond    *sync.Cond
	recvBuf []byte
	nextSeq uint32 // next expected inbound crypto seq
	oo      map[uint32][]byte

	sendSeq  uint32
	unacked  map[uint32][]byte // outstanding crypto datagrams
	peerAck  uint32            // acked up to (exclusive)
	closed   bool
	rtxTimer timingwheel.Timer
}

func newHSPipe(c *Conn) *hsPipe {
	p := &hsPipe{c: c, oo: make(map[uint32][]byte), unacked: make(map[uint32][]byte)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// crypto datagram: [ptHandshake][cid u64][seq u32][ack u32][len u16][bytes]
func (p *hsPipe) Write(b []byte) (int, error) {
	total := len(b)
	for len(b) > 0 {
		n := min(len(b), 1200)
		p.mu.Lock()
		seq := p.sendSeq
		p.sendSeq++
		chunk := append([]byte(nil), b[:n]...)
		p.unacked[seq] = chunk
		p.mu.Unlock()
		p.sendCrypto(seq, chunk)
		b = b[n:]
	}
	p.armRetransmit()
	return total, nil
}

func (p *hsPipe) sendCrypto(seq uint32, chunk []byte) {
	p.mu.Lock()
	ack := p.nextSeq
	p.mu.Unlock()
	buf := make([]byte, 0, 19+len(chunk))
	buf = append(buf, ptHandshake)
	buf = binary.BigEndian.AppendUint64(buf, p.c.cid)
	buf = binary.BigEndian.AppendUint32(buf, seq)
	buf = binary.BigEndian.AppendUint32(buf, ack)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(chunk)))
	buf = append(buf, chunk...)
	p.c.endpoint.send(p.c.remoteAddr(), buf)
}

func (p *hsPipe) armRetransmit() {
	clock := p.c.endpoint.host.Network()
	p.mu.Lock()
	clock.Schedule(&p.rtxTimer, 200*time.Millisecond, func() {
		p.mu.Lock()
		if p.closed || len(p.unacked) == 0 {
			p.mu.Unlock()
			return
		}
		resend := make(map[uint32][]byte, len(p.unacked))
		for s, ch := range p.unacked {
			resend[s] = ch
		}
		p.mu.Unlock()
		for s, ch := range resend {
			p.sendCrypto(s, ch)
		}
		p.armRetransmit()
	})
	p.mu.Unlock()
}

func (p *hsPipe) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.recvBuf) == 0 && !p.closed {
		p.cond.Wait()
	}
	if len(p.recvBuf) == 0 {
		return 0, io.EOF
	}
	n := copy(b, p.recvBuf)
	p.recvBuf = p.recvBuf[n:]
	return n, nil
}

// input processes one inbound crypto datagram body (after type+cid).
func (p *hsPipe) input(b []byte) {
	if len(b) < 10 {
		return
	}
	seq := binary.BigEndian.Uint32(b)
	ack := binary.BigEndian.Uint32(b[4:])
	n := int(binary.BigEndian.Uint16(b[8:]))
	if len(b) < 10+n {
		return
	}
	data := append([]byte(nil), b[10:10+n]...)
	p.mu.Lock()
	for s := range p.unacked {
		if s < ack {
			delete(p.unacked, s)
		}
	}
	if n > 0 {
		if seq == p.nextSeq {
			p.recvBuf = append(p.recvBuf, data...)
			p.nextSeq++
			for {
				nxt, ok := p.oo[p.nextSeq]
				if !ok {
					break
				}
				delete(p.oo, p.nextSeq)
				p.recvBuf = append(p.recvBuf, nxt...)
				p.nextSeq++
			}
			p.cond.Broadcast()
		} else if seq > p.nextSeq {
			p.oo[seq] = data
		}
	}
	needAck := n > 0
	p.mu.Unlock()
	if needAck {
		// Pure ack (no data) so the peer stops retransmitting.
		p.sendCrypto(p.peekSendSeq(), nil)
	}
}

func (p *hsPipe) peekSendSeq() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sendSeq
}

func (p *hsPipe) close() {
	p.mu.Lock()
	p.closed = true
	p.rtxTimer.Stop()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// net.Conn boilerplate for the TLS layer.
func (p *hsPipe) Close() error                       { p.close(); return nil }
func (p *hsPipe) LocalAddr() net.Addr                { return hsAddr{} }
func (p *hsPipe) RemoteAddr() net.Addr               { return hsAddr{} }
func (p *hsPipe) SetDeadline(t time.Time) error      { return nil }
func (p *hsPipe) SetReadDeadline(t time.Time) error  { return nil }
func (p *hsPipe) SetWriteDeadline(t time.Time) error { return nil }

type hsAddr struct{}

func (hsAddr) Network() string { return "quicbase" }
func (hsAddr) String() string  { return "crypto" }

// Conn is one quicbase connection.
type Conn struct {
	endpoint *Endpoint
	cid      uint64
	isClient bool

	mu         sync.Mutex
	remote     netip.AddrPort
	migrations int

	hs            *hsPipe
	tls           *tls13.Conn
	handshakeDone chan struct{}
	hsErr         error

	sendAEAD cipher.AEAD
	sendIV   []byte
	recvAEAD cipher.AEAD
	recvIV   []byte
	pktNum   uint64
	largest  uint64 // largest received

	ctrl     cc.Controller
	inflight map[uint64]*sentPacket
	bytesOut int
	rtxTimer timingwheel.Timer

	// Receive-side packet accounting: every packet below nextExpected
	// has been received; future holds out-of-order arrivals.
	nextExpected uint64
	future       map[uint64]bool

	// Sender-side fast retransmit: repeated cumulative acks signal loss.
	lastCum uint64
	dupCum  int

	streams map[uint32]*Stream
	accepts chan *Stream
	nextID  uint32

	closed   bool
	closeErr error
}

type sentPacket struct {
	num    uint64
	raw    []byte // sealed datagram, retransmitted verbatim
	size   int
	sentAt time.Time
}

func newConn(e *Endpoint, cid uint64, remote netip.AddrPort, isClient bool) *Conn {
	ctrl := cc.NewNewReno()
	ctrl.Init(1200)
	c := &Conn{
		endpoint:      e,
		cid:           cid,
		isClient:      isClient,
		remote:        remote,
		handshakeDone: make(chan struct{}),
		ctrl:          ctrl,
		inflight:      make(map[uint64]*sentPacket),
		streams:       make(map[uint32]*Stream),
		accepts:       make(chan *Stream, 32),
		future:        make(map[uint64]bool),
		nextID:        1,
	}
	if !isClient {
		c.nextID = 2
	}
	c.hs = newHSPipe(c)
	return c
}

func (c *Conn) remoteAddr() netip.AddrPort {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remote
}

// Migrations counts observed peer address changes (servers).
func (c *Conn) Migrations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.migrations
}

// TLSState exposes the handshake summary (resumption, early data).
func (c *Conn) TLSState() tls13.ConnectionState {
	if c.tls == nil {
		return tls13.ConnectionState{}
	}
	return c.tls.ConnectionState()
}

// runHandshake performs TLS over the crypto pipe and derives packet keys.
func (c *Conn) runHandshake() {
	cfg := c.endpoint.tlsCfg
	if c.isClient {
		c.tls = tls13.Client(c.hs, cfg)
	} else {
		c.tls = tls13.Server(c.hs, cfg)
	}
	err := c.tls.Handshake()
	if err == nil {
		readSecret, writeSecret, suiteID, serr := c.tls.AppTrafficSecrets()
		if serr != nil {
			err = serr
		} else {
			suite, serr := tls13.SuiteByID(suiteID)
			if serr != nil {
				err = serr
			} else {
				c.mu.Lock()
				c.recvAEAD, c.recvIV = suite.NewAEAD(readSecret)
				c.sendAEAD, c.sendIV = suite.NewAEAD(writeSecret)
				c.mu.Unlock()
			}
		}
	}
	c.hsErr = err
	close(c.handshakeDone)
	if err == nil {
		c.hs.mu.Lock()
		c.hs.rtxTimer.Stop()
		c.hs.mu.Unlock()
		if c.isClient {
			// Drain post-handshake messages (session tickets) arriving
			// on the crypto channel.
			go func() {
				buf := make([]byte, 256)
				for {
					if _, err := c.tls.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}
}

// inputDatagram handles one datagram body addressed to this conn.
func (c *Conn) inputDatagram(b []byte) {
	switch b[0] {
	case ptHandshake:
		c.hs.input(b[9:])
	case ptProtected:
		c.inputProtected(b[9:])
	}
}

// SetRemote retargets the peer address (simulating the client moving to
// a new interface); subsequent packets leave toward it.
func (c *Conn) SetRemote(ap netip.AddrPort) {
	c.mu.Lock()
	c.remote = ap
	c.mu.Unlock()
}
