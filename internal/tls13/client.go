package tls13

import (
	"crypto/ecdh"
	"crypto/hmac"
	"errors"
	"fmt"
	"time"
)

// clientHandshake drives the client side of the TLS 1.3 handshake,
// including PSK resumption and 0-RTT early data.
func (c *Conn) clientHandshake() error {
	cfg := c.cfg
	priv, err := ecdh.X25519().GenerateKey(randReader())
	if err != nil {
		return err
	}

	offered := cfg.CipherSuites
	if len(offered) == 0 {
		offered = DefaultCipherSuites
	}
	sess := cfg.Session
	if sess != nil {
		if suites[sess.SuiteID] == nil {
			sess = nil
		} else {
			// The resumed suite must be offered first.
			reordered := []uint16{sess.SuiteID}
			for _, s := range offered {
				if s != sess.SuiteID {
					reordered = append(reordered, s)
				}
			}
			offered = reordered
		}
	}
	sendEarly := len(cfg.EarlyData) > 0 && sess != nil && sess.MaxEarlyData > 0
	if len(cfg.EarlyData) > 0 && !sendEarly {
		return errors.New("tls13: early data requires a session with MaxEarlyData")
	}

	ch := &clientHello{
		random:       randomBytes(32),
		sessionID:    randomBytes(32), // middlebox compatibility
		cipherSuites: offered,
	}
	var w builder
	// supported_versions
	w = builder{}
	w.vec(1, func(w *builder) { w.u16(VersionTLS13) })
	ch.extensions = append(ch.extensions, Extension{extSupportedVersions, w.b})
	// supported_groups
	w = builder{}
	w.vec(2, func(w *builder) { w.u16(groupX25519) })
	ch.extensions = append(ch.extensions, Extension{extSupportedGroups, w.b})
	// signature_algorithms
	w = builder{}
	w.vec(2, func(w *builder) { w.u16(sigECDSAP256SHA256) })
	ch.extensions = append(ch.extensions, Extension{extSignatureAlgorithms, w.b})
	// key_share
	w = builder{}
	w.vec(2, func(w *builder) {
		w.u16(groupX25519)
		w.vec(2, func(w *builder) { w.bytes(priv.PublicKey().Bytes()) })
	})
	ch.extensions = append(ch.extensions, Extension{extKeyShare, w.b})
	// server_name
	if cfg.ServerName != "" {
		w = builder{}
		w.vec(2, func(w *builder) {
			w.u8(0) // host_name
			w.vec(2, func(w *builder) { w.bytes([]byte(cfg.ServerName)) })
		})
		ch.extensions = append(ch.extensions, Extension{extServerName, w.b})
	}
	// alpn
	if len(cfg.ALPN) > 0 {
		w = builder{}
		w.vec(2, func(w *builder) {
			for _, proto := range cfg.ALPN {
				w.vec(1, func(w *builder) { w.bytes([]byte(proto)) })
			}
		})
		ch.extensions = append(ch.extensions, Extension{extALPN, w.b})
	}
	// TCPLS and other caller extensions.
	ch.extensions = append(ch.extensions, cfg.ExtraClientHello...)

	var ks *keySchedule
	var suite *suiteParams
	if sess != nil {
		suite = suites[sess.SuiteID]
		ks = newKeySchedule(suite, sess.PSK)
		// psk_key_exchange_modes
		w = builder{}
		w.vec(1, func(w *builder) { w.u8(pskModePSKDHE) })
		ch.extensions = append(ch.extensions, Extension{extPSKModes, w.b})
		if sendEarly {
			ch.extensions = append(ch.extensions, Extension{extEarlyData, nil})
		}
		// pre_shared_key MUST be last: placeholder binder, patched below.
		age := uint32(time.Since(sess.ReceivedAt)/time.Millisecond) + sess.AgeAdd
		w = builder{}
		w.vec(2, func(w *builder) { // identities
			w.vec(2, func(w *builder) { w.bytes(sess.Ticket) })
			w.u32(age)
		})
		w.vec(2, func(w *builder) { // binders
			w.vec(1, func(w *builder) { w.bytes(make([]byte, suite.hashLen)) })
		})
		ch.extensions = append(ch.extensions, Extension{extPreSharedKey, w.b})
	}

	raw := ch.marshal()
	if sess != nil {
		// Patch the binder: HMAC over the transcript of CH truncated
		// before the binders list (RFC 8446 §4.2.11.2).
		bindersLen := 2 + 1 + suite.hashLen
		truncated := raw[:len(raw)-bindersLen]
		th := suite.newHash()
		th.Write(truncated)
		binder := suite.finishedMAC(ks.binderKey(), th.Sum(nil))
		copy(raw[len(raw)-suite.hashLen:], binder)
	}

	if err := c.writeHandshakeRecord(raw); err != nil {
		return err
	}

	// 0-RTT: switch the write direction to the early traffic keys and
	// flush the early data before even hearing from the server.
	if sendEarly {
		ks.addMessage(raw)
		earlySecret := ks.clientEarlyTrafficSecret()
		c.rl.out.setKeys(suite, earlySecret)
		data := cfg.EarlyData
		for len(data) > 0 {
			n := min(len(data), MaxPlaintext)
			if err := c.rl.writeRecord(RecordTypeApplicationData, data[:n]); err != nil {
				return err
			}
			data = data[n:]
		}
	}

	// ServerHello.
	typ, body, rawSH, err := c.readHandshakeMessage()
	if err != nil {
		return err
	}
	if typ != typeServerHello {
		return fmt.Errorf("tls13: expected ServerHello, got message %d", typ)
	}
	sh, err := parseServerHello(body)
	if err != nil {
		return err
	}
	if v, ok := findExt(sh.extensions, extSupportedVersions); !ok || len(v) != 2 ||
		v[0] != 0x03 || v[1] != 0x04 {
		return errors.New("tls13: server did not negotiate TLS 1.3")
	}
	negotiated := suites[sh.cipherSuite]
	if negotiated == nil {
		return fmt.Errorf("tls13: server chose unknown suite %#04x", sh.cipherSuite)
	}
	if sh.keyShareX25519 == nil {
		return errors.New("tls13: server sent no X25519 key share")
	}
	resumed := sh.selectedPSK
	if resumed && sess == nil {
		return errors.New("tls13: server selected a PSK we did not offer")
	}
	if resumed && sh.cipherSuite != sess.SuiteID {
		return errors.New("tls13: server resumed with a different suite")
	}

	if ks == nil || negotiated != suite || !resumed {
		// Fresh (non-PSK) schedule with the negotiated suite.
		suite = negotiated
		ks = newKeySchedule(suite, nil)
		if resumed {
			ks = newKeySchedule(suite, sess.PSK)
		}
		ks.addMessage(raw)
	} else if !sendEarly {
		ks.addMessage(raw)
	}
	c.suite = suite
	ks.addMessage(rawSH)

	peerPub, err := ecdh.X25519().NewPublicKey(sh.keyShareX25519)
	if err != nil {
		return err
	}
	shared, err := priv.ECDH(peerPub)
	if err != nil {
		return err
	}
	ks.toHandshake(shared)
	clientHS, serverHS := ks.handshakeTrafficSecrets()
	c.rl.in.setKeys(suite, serverHS)

	// EncryptedExtensions.
	typ, body, rawMsg, err := c.readHandshakeMessage()
	if err != nil {
		return err
	}
	if typ != typeEncryptedExtensions {
		return fmt.Errorf("tls13: expected EncryptedExtensions, got %d", typ)
	}
	ee, err := parseEncryptedExtensions(body)
	if err != nil {
		return err
	}
	ks.addMessage(rawMsg)
	c.state.PeerEncryptedExtensions = ee
	if data, ok := findExt(ee, ExtTCPLS); ok {
		c.state.PeerTCPLS = data
	}
	if data, ok := findExt(ee, extALPN); ok {
		p := parser{data}
		var list []byte
		if p.vec(2, &list) {
			lp := parser{list}
			var proto []byte
			if lp.vec(1, &proto) {
				c.state.ALPN = string(proto)
			}
		}
	}
	_, earlyOK := findExt(ee, extEarlyData)
	earlyOK = earlyOK && sendEarly

	// Certificate + CertificateVerify (skipped under PSK).
	if !resumed {
		typ, body, rawMsg, err = c.readHandshakeMessage()
		if err != nil {
			return err
		}
		if typ != typeCertificate {
			return fmt.Errorf("tls13: expected Certificate, got %d", typ)
		}
		chain, err := parseCertificate(body)
		if err != nil {
			return err
		}
		leaf, err := verifyChain(chain, cfg.ServerName, cfg.RootCAs, cfg.InsecureSkipVerify)
		if err != nil {
			return err
		}
		c.peerCert = leaf
		ks.addMessage(rawMsg)
		certTranscript := ks.transcriptHash()

		typ, body, rawMsg, err = c.readHandshakeMessage()
		if err != nil {
			return err
		}
		if typ != typeCertificateVerify {
			return fmt.Errorf("tls13: expected CertificateVerify, got %d", typ)
		}
		scheme, sig, err := parseCertificateVerify(body)
		if err != nil {
			return err
		}
		if err := verifyHandshakeSignature(leaf, scheme, true, certTranscript, sig); err != nil {
			return err
		}
		ks.addMessage(rawMsg)
	}

	// Server Finished.
	typ, body, rawMsg, err = c.readHandshakeMessage()
	if err != nil {
		return err
	}
	if typ != typeFinished {
		return fmt.Errorf("tls13: expected Finished, got %d", typ)
	}
	expected := suite.finishedMAC(serverHS, ks.transcriptHash())
	if !hmac.Equal(expected, body) {
		return errors.New("tls13: server Finished verification failed")
	}
	ks.addMessage(rawMsg)

	// Application secrets are derived over the transcript through the
	// server Finished.
	ks.toMaster()
	cApp, sApp := ks.appTrafficSecrets()
	c.exporterSecret = ks.exporterMasterSecret()

	// EndOfEarlyData (only when the server accepted), then Finished.
	if earlyOK {
		eoed := handshakeMessage(typeEndOfEarlyData, nil)
		if err := c.writeHandshakeRecord(eoed); err != nil {
			return err
		}
		ks.addMessage(eoed)
	} else if sendEarly {
		// Early data was rejected; the bytes are lost unless the caller
		// retransmits them over the established connection.
		c.state.EarlyDataAccepted = false
	}
	c.rl.out.setKeys(suite, clientHS)

	fin := marshalFinished(suite.finishedMAC(clientHS, ks.transcriptHash()))
	if err := c.writeHandshakeRecord(fin); err != nil {
		return err
	}
	ks.addMessage(fin)
	c.resumptionMS = ks.resumptionMasterSecret()

	c.rl.in.setKeys(suite, sApp)
	c.rl.out.setKeys(suite, cApp)
	c.clientAppSecret, c.serverAppSecret = cApp, sApp
	c.ks = ks
	c.state.CipherSuite = suite.id
	c.state.Resumed = resumed
	c.state.EarlyDataAccepted = earlyOK
	c.state.ServerName = cfg.ServerName
	return nil
}
