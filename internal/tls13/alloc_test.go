package tls13

import (
	"net"
	"sync/atomic"
	"testing"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
)

// discardConn wraps a net.Conn and, once armed, swallows writes. It
// lets a handshake run over the real pipe and then measure the record
// write path without the pipe buffer's own growth showing up in the
// allocation counts.
type discardConn struct {
	net.Conn
	discard atomic.Bool
}

func (d *discardConn) Write(b []byte) (int, error) {
	if d.discard.Load() {
		return len(b), nil
	}
	return d.Conn.Write(b)
}

// TestRecordWriteSteadyStateAllocs gates the sealed-record send path:
// after warmup, sealing and writing an application-data record must not
// allocate (pooled record buffer, reused nonce scratch, in-place Seal).
func TestRecordWriteSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unreliable under -race")
	}
	cp, sp := bufferedPipe()
	dc := &discardConn{Conn: cp}
	client := Client(dc, clientConfig())
	server := Server(sp, serverConfig())
	errCh := make(chan error, 1)
	go func() { errCh <- server.Handshake() }()
	if err := client.Handshake(); err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	if err := client.AddStreamContext(7); err != nil {
		t.Fatalf("add context: %v", err)
	}
	dc.discard.Store(true)

	head := make([]byte, 13)
	payload := make([]byte, 4096)
	tail := []byte{2}

	for _, tc := range []struct {
		name string
		id   uint32
	}{
		{"default-context", DefaultContext},
		{"stream-context", 7},
	} {
		// Warm the pool classes before counting.
		for i := 0; i < 8; i++ {
			if err := client.WriteRecordParts(tc.id, head, payload, tail); err != nil {
				t.Fatalf("%s warmup write: %v", tc.name, err)
			}
		}
		allocs := testing.AllocsPerRun(200, func() {
			if err := client.WriteRecordParts(tc.id, head, payload, tail); err != nil {
				t.Fatalf("write: %v", err)
			}
		})
		if allocs > 0 {
			t.Errorf("%s: record write allocates %.1f per op in steady state", tc.name, allocs)
		}
	}
}

// TestRecordReadSteadyStateAllocs gates the receive path: reading a
// record buffered on the transport must only take a pooled plaintext
// buffer (returned here), not allocate.
func TestRecordReadSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unreliable under -race")
	}
	client, server := handshakePair(t, clientConfig(), serverConfig())
	for _, c := range []*Conn{client, server} {
		if err := c.AddStreamContext(7); err != nil {
			t.Fatalf("add context: %v", err)
		}
	}
	payload := make([]byte, 4096)

	const warmup, runs = 32, 200
	// Pre-buffer every record on the pipe so reads never block and the
	// writer's allocations land outside the measured window.
	for i := 0; i < warmup+runs+1; i++ {
		if err := server.WriteRecordContext(7, payload); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	read := func() {
		_, p, err := client.ReadRecordContext()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if len(p) != len(payload) {
			t.Fatalf("read %d bytes, want %d", len(p), len(payload))
		}
		bufpool.Put(p)
	}
	for i := 0; i < warmup; i++ {
		read() // grow the fill buffer and pool classes to steady state
	}
	allocs := testing.AllocsPerRun(runs, read)
	if allocs > 0 {
		t.Errorf("record read allocates %.1f per op in steady state", allocs)
	}
}
