package tls13

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"math/big"
	"net"
	"time"
)

// Certificate is a server identity: a DER chain and its private key.
type Certificate struct {
	// Chain is the DER-encoded certificate chain, leaf first.
	Chain [][]byte
	// Key signs the CertificateVerify. Only ECDSA P-256 is implemented.
	Key *ecdsa.PrivateKey

	leaf *x509.Certificate
}

// Leaf parses and caches the leaf certificate.
func (c *Certificate) Leaf() (*x509.Certificate, error) {
	if c.leaf != nil {
		return c.leaf, nil
	}
	if len(c.Chain) == 0 {
		return nil, errors.New("tls13: empty certificate chain")
	}
	leaf, err := x509.ParseCertificate(c.Chain[0])
	if err != nil {
		return nil, err
	}
	c.leaf = leaf
	return leaf, nil
}

// GenerateSelfSigned creates a self-signed ECDSA-P256 certificate for the
// given DNS names / IPs, valid for a year. Intended for tests, examples
// and the emulated testbed.
func GenerateSelfSigned(commonName string, dnsNames []string, ips []net.IP) (*Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: commonName},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
		DNSNames:              dnsNames,
		IPAddresses:           ips,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, err
	}
	return &Certificate{Chain: [][]byte{der}, Key: key}, nil
}

// signatureContext builds the RFC 8446 §4.4.3 signed content.
func signatureContext(server bool, transcriptHash []byte) []byte {
	pad := make([]byte, 64)
	for i := range pad {
		pad[i] = 0x20
	}
	label := "TLS 1.3, client CertificateVerify"
	if server {
		label = "TLS 1.3, server CertificateVerify"
	}
	var out []byte
	out = append(out, pad...)
	out = append(out, label...)
	out = append(out, 0)
	out = append(out, transcriptHash...)
	return out
}

// signHandshake produces the CertificateVerify signature.
func signHandshake(key *ecdsa.PrivateKey, server bool, transcriptHash []byte) ([]byte, error) {
	if key.Curve != elliptic.P256() {
		return nil, errors.New("tls13: only ECDSA P-256 keys supported")
	}
	digest := sha256.Sum256(signatureContext(server, transcriptHash))
	return ecdsa.SignASN1(rand.Reader, key, digest[:])
}

// verifyHandshakeSignature checks a CertificateVerify.
func verifyHandshakeSignature(cert *x509.Certificate, scheme uint16, server bool, transcriptHash, sig []byte) error {
	if scheme != sigECDSAP256SHA256 {
		return fmt.Errorf("tls13: unsupported signature scheme %#04x", scheme)
	}
	pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
	if !ok || pub.Curve != elliptic.P256() {
		return errors.New("tls13: certificate key is not ECDSA P-256")
	}
	digest := sha256.Sum256(signatureContext(server, transcriptHash))
	if !ecdsa.VerifyASN1(pub, digest[:], sig) {
		return errors.New("tls13: invalid CertificateVerify signature")
	}
	return nil
}

// verifyChain validates the peer chain against roots (or, with insecure
// set, only parses the leaf).
func verifyChain(chain [][]byte, serverName string, roots *x509.CertPool, insecure bool) (*x509.Certificate, error) {
	if len(chain) == 0 {
		return nil, errors.New("tls13: server sent no certificate")
	}
	leaf, err := x509.ParseCertificate(chain[0])
	if err != nil {
		return nil, err
	}
	if insecure {
		return leaf, nil
	}
	inter := x509.NewCertPool()
	for _, der := range chain[1:] {
		c, err := x509.ParseCertificate(der)
		if err != nil {
			return nil, err
		}
		inter.AddCert(c)
	}
	opts := x509.VerifyOptions{
		Roots:         roots,
		Intermediates: inter,
		DNSName:       serverName,
		KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	if _, err := leaf.Verify(opts); err != nil {
		return nil, fmt.Errorf("tls13: certificate verification: %w", err)
	}
	return leaf, nil
}
