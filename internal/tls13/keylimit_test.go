package tls13

import (
	"errors"
	"testing"
)

// TestAEADUsageLimits pins the enforcement of the AEAD confidentiality
// limits the paper cites ([31, 46]): once a direction has protected (or
// failed to open) ~2^24 records under one key, the connection refuses to
// continue rather than weaken.
func TestAEADUsageLimits(t *testing.T) {
	client, server := handshakePair(t, clientConfig(), serverConfig())

	// Sender side: fast-forward the write sequence to the limit.
	client.muWrite.Lock()
	client.rl.out.seq = aeadLimit
	client.muWrite.Unlock()
	if _, err := client.Write([]byte("x")); !errors.Is(err, ErrKeyLimit) {
		t.Fatalf("write past key limit: %v", err)
	}

	// Receiver side: forgeries count toward the limit too (§2.3's
	// note that each failed decryption is a forgery attempt).
	server.muRead.Lock()
	server.rl.in.forgery = aeadLimit
	server.muRead.Unlock()
	go func() {
		// A fresh client record arrives; the server must refuse it.
		c2 := client
		c2.muWrite.Lock()
		c2.rl.out.seq = 1 // reset below the limit so the write succeeds
		c2.muWrite.Unlock()
		c2.Write([]byte("y"))
	}()
	buf := make([]byte, 8)
	if _, err := server.Read(buf); !errors.Is(err, ErrKeyLimit) {
		t.Fatalf("read past forgery limit: %v", err)
	}
}

// TestForgeryCounter checks that unopenable records increment the
// forgery counter exposed to the TCPLS layer.
func TestForgeryCounter(t *testing.T) {
	client, server := handshakePair(t, clientConfig(), serverConfig())
	if server.ForgeryCount() != 0 {
		t.Fatalf("initial forgeries: %d", server.ForgeryCount())
	}
	// A record under a context the server does not know looks like a
	// forgery (that is exactly how trial decryption accounts it).
	if err := client.AddStreamContext(42); err != nil {
		t.Fatal(err)
	}
	if err := client.WriteRecordContext(42, []byte("mystery")); err != nil {
		t.Fatal(err)
	}
	_, _, err := server.ReadRecordContext()
	if !errors.Is(err, ErrNoContext) {
		t.Fatalf("want ErrNoContext, got %v", err)
	}
	if server.ForgeryCount() == 0 {
		t.Fatal("forgery not counted")
	}
}
