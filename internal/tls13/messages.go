package tls13

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Handshake message types (RFC 8446 §4).
const (
	typeClientHello         uint8 = 1
	typeServerHello         uint8 = 2
	typeNewSessionTicket    uint8 = 4
	typeEndOfEarlyData      uint8 = 5
	typeEncryptedExtensions uint8 = 8
	typeCertificate         uint8 = 11
	typeCertificateVerify   uint8 = 15
	typeFinished            uint8 = 20
)

// Extension types.
const (
	extServerName          uint16 = 0
	extSupportedGroups     uint16 = 10
	extSignatureAlgorithms uint16 = 13
	extALPN                uint16 = 16
	extEarlyData           uint16 = 42
	extPreSharedKey        uint16 = 41
	extSupportedVersions   uint16 = 43
	extCookie              uint16 = 44
	extPSKModes            uint16 = 45
	extKeyShare            uint16 = 51
	// ExtTCPLS is the private-use extension carrying the TCPLS transport
	// parameter (the client's willingness to speak TCPLS, §2.2) and, on
	// JOIN handshakes, the CONNID + cookie proof of Figure 2.
	ExtTCPLS uint16 = 0xff5c
)

// Named groups and signature schemes we implement.
const (
	groupX25519        uint16 = 29
	sigECDSAP256SHA256 uint16 = 0x0403
)

// pskModePSKDHE requires a fresh ECDHE exchange alongside the PSK.
const pskModePSKDHE uint8 = 1

// VersionTLS13 is the supported_versions codepoint.
const VersionTLS13 uint16 = 0x0304

// Extension is a raw TLS extension.
type Extension struct {
	Type uint16
	Data []byte
}

// ErrDecode reports a malformed handshake message.
var ErrDecode = errors.New("tls13: malformed message")

// --- little builder/parser helpers (no x/crypto/cryptobyte offline) ---

type builder struct{ b []byte }

func (w *builder) u8(v uint8)     { w.b = append(w.b, v) }
func (w *builder) u16(v uint16)   { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *builder) u32(v uint32)   { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *builder) bytes(p []byte) { w.b = append(w.b, p...) }

// vec appends a length-prefixed vector; lenBytes in {1,2,3}.
func (w *builder) vec(lenBytes int, fn func(*builder)) {
	start := len(w.b)
	for i := 0; i < lenBytes; i++ {
		w.b = append(w.b, 0)
	}
	fn(w)
	n := len(w.b) - start - lenBytes
	switch lenBytes {
	case 1:
		w.b[start] = uint8(n)
	case 2:
		binary.BigEndian.PutUint16(w.b[start:], uint16(n))
	case 3:
		w.b[start] = uint8(n >> 16)
		binary.BigEndian.PutUint16(w.b[start+1:], uint16(n))
	}
}

type parser struct{ b []byte }

func (p *parser) empty() bool { return len(p.b) == 0 }

func (p *parser) u8(v *uint8) bool {
	if len(p.b) < 1 {
		return false
	}
	*v = p.b[0]
	p.b = p.b[1:]
	return true
}

func (p *parser) u16(v *uint16) bool {
	if len(p.b) < 2 {
		return false
	}
	*v = binary.BigEndian.Uint16(p.b)
	p.b = p.b[2:]
	return true
}

func (p *parser) u32(v *uint32) bool {
	if len(p.b) < 4 {
		return false
	}
	*v = binary.BigEndian.Uint32(p.b)
	p.b = p.b[4:]
	return true
}

func (p *parser) take(n int, out *[]byte) bool {
	if n < 0 || len(p.b) < n {
		return false
	}
	*out = p.b[:n:n]
	p.b = p.b[n:]
	return true
}

func (p *parser) vec(lenBytes int, out *[]byte) bool {
	var n int
	switch lenBytes {
	case 1:
		var v uint8
		if !p.u8(&v) {
			return false
		}
		n = int(v)
	case 2:
		var v uint16
		if !p.u16(&v) {
			return false
		}
		n = int(v)
	case 3:
		var hi uint8
		var lo uint16
		if !p.u8(&hi) || !p.u16(&lo) {
			return false
		}
		n = int(hi)<<16 | int(lo)
	}
	return p.take(n, out)
}

func parseExtensions(b []byte) ([]Extension, error) {
	p := parser{b}
	var exts []Extension
	for !p.empty() {
		var typ uint16
		var data []byte
		if !p.u16(&typ) || !p.vec(2, &data) {
			return nil, ErrDecode
		}
		exts = append(exts, Extension{typ, data})
	}
	return exts, nil
}

func writeExtensions(w *builder, exts []Extension) {
	w.vec(2, func(w *builder) {
		for _, e := range exts {
			w.u16(e.Type)
			w.vec(2, func(w *builder) { w.bytes(e.Data) })
		}
	})
}

func findExt(exts []Extension, typ uint16) ([]byte, bool) {
	for _, e := range exts {
		if e.Type == typ {
			return e.Data, true
		}
	}
	return nil, false
}

// handshakeHeader prepends the 4-byte handshake message header.
func handshakeMessage(typ uint8, body []byte) []byte {
	out := make([]byte, 4+len(body))
	out[0] = typ
	out[1] = uint8(len(body) >> 16)
	binary.BigEndian.PutUint16(out[2:], uint16(len(body)))
	copy(out[4:], body)
	return out
}

// --- ClientHello ---

// clientHello is the decoded ClientHello message.
type clientHello struct {
	random       []byte // 32 bytes
	sessionID    []byte
	cipherSuites []uint16
	extensions   []Extension

	// Decoded extension views.
	versions       []uint16
	groups         []uint16
	keyShareX25519 []byte
	serverName     string
	alpn           []string
	pskModes       []uint8
	psk            *pskOffer
	earlyData      bool
	tcpls          []byte
}

// pskOffer is the pre_shared_key extension (single identity offered).
type pskOffer struct {
	identity   []byte
	obfAgeMS   uint32
	binder     []byte
	bindersLen int // encoded length of the binders vector incl. prefix
}

func (ch *clientHello) marshal() []byte {
	var w builder
	w.u16(0x0303) // legacy_version
	w.bytes(ch.random)
	w.vec(1, func(w *builder) { w.bytes(ch.sessionID) })
	w.vec(2, func(w *builder) {
		for _, cs := range ch.cipherSuites {
			w.u16(cs)
		}
	})
	w.vec(1, func(w *builder) { w.u8(0) }) // legacy_compression_methods: null
	writeExtensions(&w, ch.extensions)
	return handshakeMessage(typeClientHello, w.b)
}

func parseClientHello(body []byte) (*clientHello, error) {
	p := parser{body}
	ch := &clientHello{}
	var legacyVersion uint16
	var suitesRaw, compRaw, extRaw []byte
	if !p.u16(&legacyVersion) || !p.take(32, &ch.random) ||
		!p.vec(1, &ch.sessionID) || !p.vec(2, &suitesRaw) ||
		!p.vec(1, &compRaw) {
		return nil, ErrDecode
	}
	if len(suitesRaw)%2 != 0 {
		return nil, ErrDecode
	}
	for i := 0; i < len(suitesRaw); i += 2 {
		ch.cipherSuites = append(ch.cipherSuites, binary.BigEndian.Uint16(suitesRaw[i:]))
	}
	if !p.vec(2, &extRaw) || !p.empty() {
		return nil, ErrDecode
	}
	exts, err := parseExtensions(extRaw)
	if err != nil {
		return nil, err
	}
	ch.extensions = exts
	if err := ch.decodeExtensions(); err != nil {
		return nil, err
	}
	return ch, nil
}

func (ch *clientHello) decodeExtensions() error {
	for _, e := range ch.extensions {
		p := parser{e.Data}
		switch e.Type {
		case extSupportedVersions:
			var raw []byte
			if !p.vec(1, &raw) || len(raw)%2 != 0 {
				return ErrDecode
			}
			for i := 0; i < len(raw); i += 2 {
				ch.versions = append(ch.versions, binary.BigEndian.Uint16(raw[i:]))
			}
		case extSupportedGroups:
			var raw []byte
			if !p.vec(2, &raw) || len(raw)%2 != 0 {
				return ErrDecode
			}
			for i := 0; i < len(raw); i += 2 {
				ch.groups = append(ch.groups, binary.BigEndian.Uint16(raw[i:]))
			}
		case extKeyShare:
			var list []byte
			if !p.vec(2, &list) {
				return ErrDecode
			}
			lp := parser{list}
			for !lp.empty() {
				var group uint16
				var key []byte
				if !lp.u16(&group) || !lp.vec(2, &key) {
					return ErrDecode
				}
				if group == groupX25519 && len(key) == 32 {
					ch.keyShareX25519 = key
				}
			}
		case extServerName:
			var list []byte
			if !p.vec(2, &list) {
				return ErrDecode
			}
			lp := parser{list}
			var typ uint8
			var name []byte
			if !lp.u8(&typ) || !lp.vec(2, &name) {
				return ErrDecode
			}
			ch.serverName = string(name)
		case extALPN:
			var list []byte
			if !p.vec(2, &list) {
				return ErrDecode
			}
			lp := parser{list}
			for !lp.empty() {
				var proto []byte
				if !lp.vec(1, &proto) {
					return ErrDecode
				}
				ch.alpn = append(ch.alpn, string(proto))
			}
		case extPSKModes:
			var raw []byte
			if !p.vec(1, &raw) {
				return ErrDecode
			}
			ch.pskModes = raw
		case extEarlyData:
			ch.earlyData = true
		case ExtTCPLS:
			ch.tcpls = e.Data
		case extPreSharedKey:
			var ids, binders []byte
			if !p.vec(2, &ids) || !p.vec(2, &binders) {
				return ErrDecode
			}
			idp := parser{ids}
			var identity []byte
			var age uint32
			if !idp.vec(2, &identity) || !idp.u32(&age) {
				return ErrDecode
			}
			bp := parser{binders}
			var binder []byte
			if !bp.vec(1, &binder) {
				return ErrDecode
			}
			ch.psk = &pskOffer{
				identity:   identity,
				obfAgeMS:   age,
				binder:     binder,
				bindersLen: 2 + len(binders),
			}
		}
	}
	return nil
}

// --- ServerHello ---

type serverHello struct {
	random      []byte
	sessionID   []byte
	cipherSuite uint16
	extensions  []Extension

	keyShareX25519 []byte
	selectedPSK    bool
}

func (sh *serverHello) marshal() []byte {
	var w builder
	w.u16(0x0303)
	w.bytes(sh.random)
	w.vec(1, func(w *builder) { w.bytes(sh.sessionID) })
	w.u16(sh.cipherSuite)
	w.u8(0) // legacy compression
	writeExtensions(&w, sh.extensions)
	return handshakeMessage(typeServerHello, w.b)
}

func parseServerHello(body []byte) (*serverHello, error) {
	p := parser{body}
	sh := &serverHello{}
	var legacyVersion uint16
	var comp uint8
	var extRaw []byte
	if !p.u16(&legacyVersion) || !p.take(32, &sh.random) ||
		!p.vec(1, &sh.sessionID) || !p.u16(&sh.cipherSuite) || !p.u8(&comp) ||
		!p.vec(2, &extRaw) || !p.empty() {
		return nil, ErrDecode
	}
	exts, err := parseExtensions(extRaw)
	if err != nil {
		return nil, err
	}
	sh.extensions = exts
	for _, e := range exts {
		ep := parser{e.Data}
		switch e.Type {
		case extKeyShare:
			var group uint16
			var key []byte
			if !ep.u16(&group) || !ep.vec(2, &key) {
				return nil, ErrDecode
			}
			if group == groupX25519 {
				sh.keyShareX25519 = key
			}
		case extPreSharedKey:
			var idx uint16
			if !ep.u16(&idx) {
				return nil, ErrDecode
			}
			sh.selectedPSK = true
		}
	}
	return sh, nil
}

// --- EncryptedExtensions ---

func marshalEncryptedExtensions(exts []Extension) []byte {
	var w builder
	writeExtensions(&w, exts)
	return handshakeMessage(typeEncryptedExtensions, w.b)
}

func parseEncryptedExtensions(body []byte) ([]Extension, error) {
	p := parser{body}
	var extRaw []byte
	if !p.vec(2, &extRaw) || !p.empty() {
		return nil, ErrDecode
	}
	return parseExtensions(extRaw)
}

// --- Certificate ---

func marshalCertificate(chain [][]byte) []byte {
	var w builder
	w.vec(1, func(w *builder) {}) // empty certificate_request_context
	w.vec(3, func(w *builder) {
		for _, cert := range chain {
			w.vec(3, func(w *builder) { w.bytes(cert) })
			w.vec(2, func(w *builder) {}) // no per-cert extensions
		}
	})
	return handshakeMessage(typeCertificate, w.b)
}

func parseCertificate(body []byte) ([][]byte, error) {
	p := parser{body}
	var ctx, list []byte
	if !p.vec(1, &ctx) || !p.vec(3, &list) || !p.empty() {
		return nil, ErrDecode
	}
	lp := parser{list}
	var chain [][]byte
	for !lp.empty() {
		var cert, certExts []byte
		if !lp.vec(3, &cert) || !lp.vec(2, &certExts) {
			return nil, ErrDecode
		}
		chain = append(chain, cert)
	}
	return chain, nil
}

// --- CertificateVerify ---

func marshalCertificateVerify(scheme uint16, sig []byte) []byte {
	var w builder
	w.u16(scheme)
	w.vec(2, func(w *builder) { w.bytes(sig) })
	return handshakeMessage(typeCertificateVerify, w.b)
}

func parseCertificateVerify(body []byte) (uint16, []byte, error) {
	p := parser{body}
	var scheme uint16
	var sig []byte
	if !p.u16(&scheme) || !p.vec(2, &sig) || !p.empty() {
		return 0, nil, ErrDecode
	}
	return scheme, sig, nil
}

// --- Finished ---

func marshalFinished(verify []byte) []byte {
	return handshakeMessage(typeFinished, verify)
}

// --- NewSessionTicket ---

type sessionTicket struct {
	lifetime     uint32
	ageAdd       uint32
	nonce        []byte
	ticket       []byte
	maxEarlyData uint32
}

func (t *sessionTicket) marshal() []byte {
	var w builder
	w.u32(t.lifetime)
	w.u32(t.ageAdd)
	w.vec(1, func(w *builder) { w.bytes(t.nonce) })
	w.vec(2, func(w *builder) { w.bytes(t.ticket) })
	var exts []Extension
	if t.maxEarlyData > 0 {
		var ew builder
		ew.u32(t.maxEarlyData)
		exts = append(exts, Extension{extEarlyData, ew.b})
	}
	writeExtensions(&w, exts)
	return handshakeMessage(typeNewSessionTicket, w.b)
}

func parseNewSessionTicket(body []byte) (*sessionTicket, error) {
	p := parser{body}
	t := &sessionTicket{}
	var extRaw []byte
	if !p.u32(&t.lifetime) || !p.u32(&t.ageAdd) || !p.vec(1, &t.nonce) ||
		!p.vec(2, &t.ticket) || !p.vec(2, &extRaw) || !p.empty() {
		return nil, ErrDecode
	}
	exts, err := parseExtensions(extRaw)
	if err != nil {
		return nil, err
	}
	if data, ok := findExt(exts, extEarlyData); ok {
		ep := parser{data}
		if !ep.u32(&t.maxEarlyData) {
			return nil, ErrDecode
		}
	}
	return t, nil
}

// splitHandshakeMessage peels one handshake message off b, returning the
// message type, body, the full raw message (for the transcript) and the
// remainder.
func splitHandshakeMessage(b []byte) (typ uint8, body, raw, rest []byte, err error) {
	if len(b) < 4 {
		return 0, nil, nil, nil, fmt.Errorf("%w: short header", ErrDecode)
	}
	n := int(b[1])<<16 | int(binary.BigEndian.Uint16(b[2:]))
	if len(b) < 4+n {
		return 0, nil, nil, nil, fmt.Errorf("%w: truncated body", ErrDecode)
	}
	return b[0], b[4 : 4+n], b[:4+n], b[4+n:], nil
}
