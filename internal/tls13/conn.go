package tls13

import (
	"crypto/rand"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Config configures a Conn. The zero value is usable for a client that
// skips certificate verification only if InsecureSkipVerify is set.
type Config struct {
	// ServerName is sent in SNI and used for certificate verification.
	ServerName string
	// Certificate is the server identity (required on servers).
	Certificate *Certificate
	// RootCAs verifies the server chain on clients. nil means the host
	// pool would be used; in this self-contained stack nil with
	// InsecureSkipVerify unset is an error.
	RootCAs *x509.CertPool
	// InsecureSkipVerify disables chain validation (tests/emulation).
	InsecureSkipVerify bool
	// ALPN lists offered (client) or supported (server) protocols.
	ALPN []string
	// CipherSuites restricts the suites. Empty means defaults.
	CipherSuites []uint16

	// ExtraClientHello extensions are appended to the ClientHello — the
	// hook TCPLS uses for its transport parameter and JOIN (§2.2, Fig 2).
	ExtraClientHello []Extension
	// EncryptedExtensions lets the server append extensions to EE based
	// on the ClientHello — the hook for TCPLS CONNIDs, cookies and
	// address advertisements (Fig 2).
	EncryptedExtensions func(ClientHelloInfo) []Extension
	// OnClientHello lets the server inspect/reject a ClientHello before
	// answering (TCPLS JOIN validation). Returning an error aborts.
	OnClientHello func(ClientHelloInfo) error

	// Session resumes a previous session (client).
	Session *ClientSession
	// EarlyData is written as 0-RTT application data with the ClientHello
	// (client; requires Session with MaxEarlyData > 0).
	EarlyData []byte
	// MaxEarlyData advertises 0-RTT acceptance on issued tickets (server).
	MaxEarlyData uint32
	// NumTickets is how many session tickets the server sends after the
	// handshake (default 1; negative disables).
	NumTickets int
	// TicketKey encrypts session tickets (server). Zero means a random
	// per-Config key (tickets then only work against this process).
	TicketKey [32]byte

	// OnNewSession is invoked on clients for each ticket received.
	OnNewSession func(*ClientSession)

	ticketOnce  sync.Once
	ticketState *ticketKeys
	replay      replayFilter // sharded 0-RTT anti-replay set
}

// ClientHelloInfo is the server's view of a ClientHello.
type ClientHelloInfo struct {
	ServerName string
	ALPN       []string
	// TCPLS is the raw TCPLS extension payload, nil if absent.
	TCPLS []byte
	// Resumption reports whether a PSK was offered.
	Resumption bool
}

// ClientSession is a resumable session (one ticket's worth).
type ClientSession struct {
	Ticket       []byte
	PSK          []byte
	SuiteID      uint16
	MaxEarlyData uint32
	ALPN         string
	AgeAdd       uint32
	ReceivedAt   time.Time
}

// ConnectionState is the post-handshake summary.
type ConnectionState struct {
	HandshakeComplete bool
	CipherSuite       uint16
	ALPN              string
	Resumed           bool
	EarlyDataAccepted bool
	ServerName        string
	// PeerEncryptedExtensions are the EE extensions received (client).
	PeerEncryptedExtensions []Extension
	// PeerTCPLS is the TCPLS extension payload from the peer (either the
	// ClientHello on servers or EncryptedExtensions on clients).
	PeerTCPLS []byte
}

// Errors.
var (
	ErrHandshakeRequired = errors.New("tls13: handshake not complete")
	ErrEarlyDataRejected = errors.New("tls13: early data rejected by server")
	ErrNoCertificate     = errors.New("tls13: server config has no certificate")
)

// Conn is a TLS 1.3 connection over any net.Conn.
type Conn struct {
	conn     net.Conn
	cfg      *Config
	isClient bool

	rl    recordLayer
	hsBuf []byte // buffered handshake bytes across records

	muRead, muWrite sync.Mutex
	hsDone          bool
	hsErr           error
	closed          bool

	suite   *suiteParams
	ks      *keySchedule
	version uint16

	clientAppSecret []byte
	serverAppSecret []byte
	exporterSecret  []byte
	resumptionMS    []byte

	state    ConnectionState
	peerCert *x509.Certificate

	sessions []*ClientSession

	appReadBuf []byte

	// server-side early data bookkeeping
	earlyAccepted bool
	skipEarlyData bool
	earlyBudget   int
	earlyBuf      []byte
}

// Client wraps conn as the client side of a TLS 1.3 connection.
func Client(conn net.Conn, cfg *Config) *Conn {
	c := &Conn{conn: conn, cfg: cfg, isClient: true}
	c.rl.rw = conn
	return c
}

// Server wraps conn as the server side.
func Server(conn net.Conn, cfg *Config) *Conn {
	c := &Conn{conn: conn, cfg: cfg, isClient: false}
	c.rl.rw = conn
	return c
}

// Underlying returns the wrapped net.Conn (TCPLS uses it to reach the
// TCP introspection interface).
func (c *Conn) Underlying() net.Conn { return c.conn }

// Handshake runs the handshake if it has not run yet.
func (c *Conn) Handshake() error {
	c.muRead.Lock()
	defer c.muRead.Unlock()
	c.muWrite.Lock()
	defer c.muWrite.Unlock()
	return c.handshakeLocked()
}

func (c *Conn) handshakeLocked() error {
	if c.hsDone {
		return nil
	}
	if c.hsErr != nil {
		return c.hsErr
	}
	var err error
	if c.isClient {
		err = c.clientHandshake()
	} else {
		err = c.serverHandshake()
	}
	if err != nil {
		c.hsErr = err
		c.rl.sendAlert(alertHandshakeFail)
		return err
	}
	c.hsDone = true
	c.state.HandshakeComplete = true
	return nil
}

// ConnectionState returns the negotiated parameters.
func (c *Conn) ConnectionState() ConnectionState { return c.state }

// Sessions returns tickets received so far (client side).
func (c *Conn) Sessions() []*ClientSession {
	c.muRead.Lock()
	defer c.muRead.Unlock()
	return append([]*ClientSession(nil), c.sessions...)
}

// suiteID returns the negotiated suite id.
func (c *Conn) suiteID() uint16 {
	if c.suite == nil {
		return 0
	}
	return c.suite.id
}

// AppTrafficSecrets exposes (readSecret, writeSecret) and the suite for
// layering TCPLS's per-stream crypto contexts (§2.3) above this
// connection's application keys.
func (c *Conn) AppTrafficSecrets() (read, write []byte, suiteID uint16, err error) {
	if !c.hsDone {
		return nil, nil, 0, ErrHandshakeRequired
	}
	if c.isClient {
		return c.serverAppSecret, c.clientAppSecret, c.suite.id, nil
	}
	return c.clientAppSecret, c.serverAppSecret, c.suite.id, nil
}

// ExportSecret derives key material bound to this session (RFC 8446
// §7.5). TCPLS uses it for JOIN cookie binders and per-session ids.
func (c *Conn) ExportSecret(label string, context []byte, length int) ([]byte, error) {
	if !c.hsDone {
		return nil, ErrHandshakeRequired
	}
	h := c.suite.newHash()
	h.Write(context)
	derived := c.suite.deriveSecret(c.exporterSecret, label, c.suite.emptyHash())
	return c.suite.expandLabel(derived, "exporter", h.Sum(nil), length), nil
}

// ResumptionSecret exposes the resumption master secret; TCPLS derives
// JOIN authentication keys from it (the cookies of Fig. 2 prove
// possession of the session, like RFC 8446 resumption PSKs do).
func (c *Conn) ResumptionSecret() ([]byte, error) {
	if !c.hsDone {
		return nil, ErrHandshakeRequired
	}
	return c.resumptionMS, nil
}

// Read reads application data, handling post-handshake messages
// (session tickets) transparently.
func (c *Conn) Read(p []byte) (int, error) {
	c.muRead.Lock()
	defer c.muRead.Unlock()
	if err := c.handshakeNeeded(); err != nil {
		return 0, err
	}
	for len(c.appReadBuf) == 0 {
		typ, payload, err := c.rl.readRecord()
		if err != nil {
			return 0, err
		}
		switch typ {
		case RecordTypeApplicationData:
			c.appReadBuf = payload
		case RecordTypeHandshake:
			if err := c.handlePostHandshake(payload); err != nil {
				return 0, err
			}
		case RecordTypeAlert:
			return 0, alertToError(payload)
		default:
			return 0, fmt.Errorf("tls13: unexpected record type %d", typ)
		}
	}
	n := copy(p, c.appReadBuf)
	c.appReadBuf = c.appReadBuf[n:]
	return n, nil
}

// ReadRecord returns the next whole application-data record's plaintext.
// TCPLS consumes records, not a byte stream, so it uses this instead of
// Read. Post-handshake handshake messages are processed transparently.
func (c *Conn) ReadRecord() ([]byte, error) {
	c.muRead.Lock()
	defer c.muRead.Unlock()
	if err := c.handshakeNeeded(); err != nil {
		return nil, err
	}
	for {
		typ, payload, err := c.rl.readRecord()
		if err != nil {
			return nil, err
		}
		switch typ {
		case RecordTypeApplicationData:
			return payload, nil
		case RecordTypeHandshake:
			if err := c.handlePostHandshake(payload); err != nil {
				return nil, err
			}
		case RecordTypeAlert:
			return nil, alertToError(payload)
		default:
			return nil, fmt.Errorf("tls13: unexpected record type %d", typ)
		}
	}
}

// Write writes application data, fragmenting into records.
func (c *Conn) Write(p []byte) (int, error) {
	c.muWrite.Lock()
	defer c.muWrite.Unlock()
	if err := c.handshakeNeeded(); err != nil {
		return 0, err
	}
	total := 0
	for len(p) > 0 {
		n := min(len(p), MaxPlaintext)
		if err := c.rl.writeRecord(RecordTypeApplicationData, p[:n]); err != nil {
			return total, err
		}
		p = p[n:]
		total += n
	}
	return total, nil
}

// WriteRecord writes exactly one application-data record (TCPLS framing).
func (c *Conn) WriteRecord(payload []byte) error {
	c.muWrite.Lock()
	defer c.muWrite.Unlock()
	if err := c.handshakeNeeded(); err != nil {
		return err
	}
	return c.rl.writeRecord(RecordTypeApplicationData, payload)
}

func (c *Conn) handshakeNeeded() error {
	if c.hsDone {
		return nil
	}
	if c.hsErr != nil {
		return c.hsErr
	}
	return ErrHandshakeRequired
}

// Close sends close_notify and closes the underlying connection.
func (c *Conn) Close() error {
	c.muWrite.Lock()
	if !c.closed {
		c.closed = true
		if c.hsDone {
			c.rl.sendAlert(alertCloseNotify)
		}
	}
	c.muWrite.Unlock()
	return c.conn.Close()
}

// CloseWrite sends close_notify without closing the transport.
func (c *Conn) CloseWrite() error {
	c.muWrite.Lock()
	defer c.muWrite.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.rl.sendAlert(alertCloseNotify)
}

func alertToError(payload []byte) error {
	if len(payload) == 2 && payload[1] == alertCloseNotify {
		return io.EOF
	}
	if len(payload) == 2 {
		return &AlertError{Description: payload[1]}
	}
	return errors.New("tls13: malformed alert")
}

// handlePostHandshake processes handshake messages after the handshake
// (session tickets; anything else is an error).
func (c *Conn) handlePostHandshake(payload []byte) error {
	c.hsBuf = append(c.hsBuf, payload...)
	for len(c.hsBuf) >= 4 {
		typ, body, _, rest, err := splitHandshakeMessage(c.hsBuf)
		if err != nil {
			return nil // wait for more bytes
		}
		c.hsBuf = rest
		switch typ {
		case typeNewSessionTicket:
			if !c.isClient {
				return errors.New("tls13: unexpected NewSessionTicket from client")
			}
			t, err := parseNewSessionTicket(body)
			if err != nil {
				return err
			}
			psk := c.suite.expandLabel(c.resumptionMS, "resumption", t.nonce, c.suite.hashLen)
			sess := &ClientSession{
				Ticket:       t.ticket,
				PSK:          psk,
				SuiteID:      c.suite.id,
				MaxEarlyData: t.maxEarlyData,
				ALPN:         c.state.ALPN,
				AgeAdd:       t.ageAdd,
				ReceivedAt:   time.Now(),
			}
			c.sessions = append(c.sessions, sess)
			if c.cfg.OnNewSession != nil {
				c.cfg.OnNewSession(sess)
			}
		default:
			return fmt.Errorf("tls13: unexpected post-handshake message %d", typ)
		}
	}
	return nil
}

// readHandshakeMessage reads the next handshake message during the
// handshake, buffering across records. Alerts become errors.
func (c *Conn) readHandshakeMessage() (uint8, []byte, []byte, error) {
	for {
		if len(c.hsBuf) >= 4 {
			typ, body, raw, rest, err := splitHandshakeMessage(c.hsBuf)
			if err == nil {
				c.hsBuf = rest
				return typ, body, raw, nil
			}
		}
		rtyp, payload, err := c.rl.readRecord()
		if err != nil {
			return 0, nil, nil, err
		}
		switch rtyp {
		case RecordTypeHandshake:
			c.hsBuf = append(c.hsBuf, payload...)
		case RecordTypeAlert:
			return 0, nil, nil, alertToError(payload)
		case RecordTypeApplicationData:
			// Early data arriving while we expect handshake messages.
			if c.earlyAccepted {
				if len(c.earlyBuf)+len(payload) > c.earlyBudget {
					return 0, nil, nil, errors.New("tls13: early data exceeds budget")
				}
				c.earlyBuf = append(c.earlyBuf, payload...)
				continue
			}
			return 0, nil, nil, errors.New("tls13: unexpected application data during handshake")
		default:
			return 0, nil, nil, fmt.Errorf("tls13: unexpected record type %d during handshake", rtyp)
		}
	}
}

// EarlyData returns the 0-RTT bytes the server accepted before the
// handshake finished.
func (c *Conn) EarlyData() []byte { return c.earlyBuf }

// writeHandshakeRecord sends one handshake message as a record (or
// several when larger than a record).
func (c *Conn) writeHandshakeRecord(msg []byte) error {
	for len(msg) > 0 {
		n := min(len(msg), MaxPlaintext)
		if err := c.rl.writeRecord(RecordTypeHandshake, msg[:n]); err != nil {
			return err
		}
		msg = msg[n:]
	}
	return nil
}

func randomBytes(n int) []byte {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic("tls13: rand: " + err.Error())
	}
	return b
}
