package tls13

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

func randReader() io.Reader { return rand.Reader }

// serverHandshake drives the server side of the TLS 1.3 handshake.
func (c *Conn) serverHandshake() error {
	cfg := c.cfg

	// ClientHello.
	typ, body, rawCH, err := c.readHandshakeMessage()
	if err != nil {
		return err
	}
	if typ != typeClientHello {
		return fmt.Errorf("tls13: expected ClientHello, got %d", typ)
	}
	ch, err := parseClientHello(body)
	if err != nil {
		return err
	}
	has13 := false
	for _, v := range ch.versions {
		if v == VersionTLS13 {
			has13 = true
		}
	}
	if !has13 {
		return errors.New("tls13: client does not offer TLS 1.3")
	}
	if ch.keyShareX25519 == nil {
		return errors.New("tls13: client sent no X25519 key share")
	}

	info := ClientHelloInfo{
		ServerName: ch.serverName,
		ALPN:       ch.alpn,
		TCPLS:      ch.tcpls,
		Resumption: ch.psk != nil,
	}
	if cfg.OnClientHello != nil {
		if err := cfg.OnClientHello(info); err != nil {
			return err
		}
	}

	// Suite selection: first offered suite we support; under PSK it must
	// match the ticket's suite.
	var suite *suiteParams
	for _, cs := range ch.cipherSuites {
		if s := suites[cs]; s != nil {
			if len(cfg.CipherSuites) > 0 && !containsU16(cfg.CipherSuites, cs) {
				continue
			}
			suite = s
			break
		}
	}
	if suite == nil {
		return errors.New("tls13: no common cipher suite")
	}

	// PSK resumption.
	var psk []byte
	var ticket *ticketPayload
	resumed := false
	if ch.psk != nil {
		if tp, ok := cfg.decryptTicket(ch.psk.identity); ok && tp.suiteID == suite.id {
			// Verify the binder over the truncated ClientHello.
			ks := newKeySchedule(suite, tp.psk)
			truncated := rawCH[:len(rawCH)-ch.psk.bindersLen]
			th := suite.newHash()
			th.Write(truncated)
			expect := suite.finishedMAC(ks.binderKey(), th.Sum(nil))
			if hmac.Equal(expect, ch.psk.binder) {
				psk = tp.psk
				ticket = tp
				resumed = true
			}
		}
	}

	ks := newKeySchedule(suite, psk)
	ks.addMessage(rawCH)

	// Early data decision: valid PSK, client asked, we allow it, and the
	// ticket has not been replayed.
	earlyOK := resumed && ch.earlyData && ticket.maxEarlyData > 0 &&
		cfg.markTicketUsed(ch.psk.identity)
	var clientEarlySecret []byte
	if earlyOK {
		clientEarlySecret = ks.clientEarlyTrafficSecret()
	}

	// ServerHello.
	priv, err := ecdh.X25519().GenerateKey(randReader())
	if err != nil {
		return err
	}
	peerPub, err := ecdh.X25519().NewPublicKey(ch.keyShareX25519)
	if err != nil {
		return err
	}
	shared, err := priv.ECDH(peerPub)
	if err != nil {
		return err
	}
	sh := &serverHello{
		random:      randomBytes(32),
		sessionID:   ch.sessionID,
		cipherSuite: suite.id,
	}
	var w builder
	w.u16(VersionTLS13)
	sh.extensions = append(sh.extensions, Extension{extSupportedVersions, w.b})
	w = builder{}
	w.u16(groupX25519)
	w.vec(2, func(w *builder) { w.bytes(priv.PublicKey().Bytes()) })
	sh.extensions = append(sh.extensions, Extension{extKeyShare, w.b})
	if resumed {
		w = builder{}
		w.u16(0) // selected identity index
		sh.extensions = append(sh.extensions, Extension{extPreSharedKey, w.b})
	}
	rawSH := sh.marshal()
	if err := c.writeHandshakeRecord(rawSH); err != nil {
		return err
	}
	ks.addMessage(rawSH)

	ks.toHandshake(shared)
	clientHS, serverHS := ks.handshakeTrafficSecrets()
	c.rl.out.setKeys(suite, serverHS)

	// EncryptedExtensions: ALPN, early-data ack, and the TCPLS payload
	// from the caller (CONNID, cookies, addresses — Fig. 2).
	var ee []Extension
	alpn := ""
	for _, offered := range ch.alpn {
		for _, ours := range cfg.ALPN {
			if offered == ours {
				alpn = offered
				break
			}
		}
		if alpn != "" {
			break
		}
	}
	if alpn != "" {
		w = builder{}
		w.vec(2, func(w *builder) {
			w.vec(1, func(w *builder) { w.bytes([]byte(alpn)) })
		})
		ee = append(ee, Extension{extALPN, w.b})
	}
	if earlyOK {
		ee = append(ee, Extension{extEarlyData, nil})
	}
	if cfg.EncryptedExtensions != nil {
		ee = append(ee, cfg.EncryptedExtensions(info)...)
	}
	rawEE := marshalEncryptedExtensions(ee)
	if err := c.writeHandshakeRecord(rawEE); err != nil {
		return err
	}
	ks.addMessage(rawEE)

	// Certificate + CertificateVerify (full handshakes only).
	if !resumed {
		if cfg.Certificate == nil {
			return ErrNoCertificate
		}
		rawCert := marshalCertificate(cfg.Certificate.Chain)
		if err := c.writeHandshakeRecord(rawCert); err != nil {
			return err
		}
		ks.addMessage(rawCert)
		sig, err := signHandshake(cfg.Certificate.Key, true, ks.transcriptHash())
		if err != nil {
			return err
		}
		rawCV := marshalCertificateVerify(sigECDSAP256SHA256, sig)
		if err := c.writeHandshakeRecord(rawCV); err != nil {
			return err
		}
		ks.addMessage(rawCV)
	}

	// Server Finished.
	fin := marshalFinished(suite.finishedMAC(serverHS, ks.transcriptHash()))
	if err := c.writeHandshakeRecord(fin); err != nil {
		return err
	}
	ks.addMessage(fin)

	ks.toMaster()
	cApp, sApp := ks.appTrafficSecrets()
	c.exporterSecret = ks.exporterMasterSecret()

	// Read the client's remaining flight. With accepted early data the
	// read direction first runs under the early keys until EndOfEarlyData.
	c.suite = suite
	if earlyOK {
		c.earlyAccepted = true
		c.earlyBudget = int(ticket.maxEarlyData)
		c.rl.in.setKeys(suite, clientEarlySecret)
		typ, _, rawEOED, err := c.readHandshakeMessage()
		if err != nil {
			return err
		}
		if typ != typeEndOfEarlyData {
			return fmt.Errorf("tls13: expected EndOfEarlyData, got %d", typ)
		}
		ks.addMessage(rawEOED)
		c.earlyAccepted = false
	} else if ch.earlyData {
		// The client may have sent early records we cannot (or refuse
		// to) decrypt: skip undecryptable records, bounded.
		c.skipEarlyData = true
		c.earlyBudget = int(cfg.MaxEarlyData)
		if c.earlyBudget == 0 {
			c.earlyBudget = 128 << 10
		}
	}
	c.rl.in.setKeys(suite, clientHS)

	typ, body, rawFin, err := c.readClientFinished()
	if err != nil {
		return err
	}
	if typ != typeFinished {
		return fmt.Errorf("tls13: expected client Finished, got %d", typ)
	}
	expect := suite.finishedMAC(clientHS, ks.transcriptHash())
	if !hmac.Equal(expect, body) {
		return errors.New("tls13: client Finished verification failed")
	}
	ks.addMessage(rawFin)
	c.resumptionMS = ks.resumptionMasterSecret()

	c.rl.in.setKeys(suite, cApp)
	c.rl.out.setKeys(suite, sApp)
	c.clientAppSecret, c.serverAppSecret = cApp, sApp
	c.ks = ks
	c.state.CipherSuite = suite.id
	c.state.ALPN = alpn
	c.state.Resumed = resumed
	c.state.EarlyDataAccepted = earlyOK
	c.state.ServerName = ch.serverName
	c.state.PeerTCPLS = ch.tcpls
	c.skipEarlyData = false

	// Session tickets.
	n := cfg.NumTickets
	if n == 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		if err := c.sendSessionTicket(); err != nil {
			return err
		}
	}
	return nil
}

// readClientFinished reads the next handshake message, skipping
// undecryptable early-data records when the server rejected 0-RTT.
func (c *Conn) readClientFinished() (uint8, []byte, []byte, error) {
	for {
		typ, body, raw, err := c.readHandshakeMessage()
		if errors.Is(err, ErrBadRecordMAC) && c.skipEarlyData && c.earlyBudget > 0 {
			c.earlyBudget -= MaxPlaintext
			continue
		}
		return typ, body, raw, err
	}
}

func containsU16(list []uint16, v uint16) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}
