//go:build !race

package tls13

const raceEnabled = false
