package tls13

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// TestParsersNeverPanicOnGarbage throws random bytes at every handshake
// message parser: malformed input must return errors, not panic — these
// parsers face attacker-controlled bytes.
func TestParsersNeverPanicOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	parsers := []func([]byte){
		func(b []byte) { parseClientHello(b) },
		func(b []byte) { parseServerHello(b) },
		func(b []byte) { parseEncryptedExtensions(b) },
		func(b []byte) { parseCertificate(b) },
		func(b []byte) { parseCertificateVerify(b) },
		func(b []byte) { parseNewSessionTicket(b) },
		func(b []byte) { parseExtensions(b) },
		func(b []byte) { splitHandshakeMessage(b) },
	}
	for i := 0; i < 2000; i++ {
		n := rng.Intn(300)
		b := make([]byte, n)
		rng.Read(b)
		for _, p := range parsers {
			p(b) // must not panic
		}
	}
}

// TestClientHelloRoundTrip checks the CH codec against itself.
func TestClientHelloRoundTrip(t *testing.T) {
	ch := &clientHello{
		random:       randomBytes(32),
		sessionID:    randomBytes(32),
		cipherSuites: []uint16{TLS_AES_128_GCM_SHA256, TLS_AES_256_GCM_SHA384},
	}
	var w builder
	w.vec(1, func(w *builder) { w.u16(VersionTLS13) })
	ch.extensions = append(ch.extensions, Extension{extSupportedVersions, w.b})
	w = builder{}
	w.vec(2, func(w *builder) {
		w.u16(groupX25519)
		w.vec(2, func(w *builder) { w.bytes(make([]byte, 32)) })
	})
	ch.extensions = append(ch.extensions, Extension{extKeyShare, w.b})
	ch.extensions = append(ch.extensions, Extension{ExtTCPLS, []byte{1, 2, 3}})

	raw := ch.marshal()
	typ, body, full, rest, err := splitHandshakeMessage(raw)
	if err != nil || typ != typeClientHello || len(rest) != 0 || !bytes.Equal(full, raw) {
		t.Fatalf("split: %d %v", typ, err)
	}
	got, err := parseClientHello(body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.random, ch.random) || len(got.cipherSuites) != 2 {
		t.Fatal("round trip mismatch")
	}
	if got.keyShareX25519 == nil {
		t.Fatal("key share lost")
	}
	if !bytes.Equal(got.tcpls, []byte{1, 2, 3}) {
		t.Fatal("tcpls extension lost")
	}
	has13 := false
	for _, v := range got.versions {
		if v == VersionTLS13 {
			has13 = true
		}
	}
	if !has13 {
		t.Fatal("supported_versions lost")
	}
}

// TestVectorBuilders exercises the 1/2/3-byte vector builder/parser pair.
func TestVectorBuilders(t *testing.T) {
	f := func(payload []byte, lenBytesSeed uint8) bool {
		lenBytes := int(lenBytesSeed%3) + 1
		if lenBytes == 1 && len(payload) > 255 {
			payload = payload[:255]
		}
		var w builder
		w.vec(lenBytes, func(w *builder) { w.bytes(payload) })
		p := parser{w.b}
		var got []byte
		if !p.vec(lenBytes, &got) || !p.empty() {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTicketSealRoundTrip pins the ticket sealing: decrypts what it
// seals, rejects tampered identities, expires old tickets.
func TestTicketSealRoundTrip(t *testing.T) {
	cfg := &Config{}
	tp := &ticketPayload{
		suiteID:      TLS_AES_128_GCM_SHA256,
		psk:          randomBytes(32),
		maxEarlyData: 1024,
		issuedAt:     timeNowUnix(),
	}
	identity := cfg.sealTicket(tp)
	got, ok := cfg.decryptTicket(identity)
	if !ok || got.suiteID != tp.suiteID || !bytes.Equal(got.psk, tp.psk) || got.maxEarlyData != 1024 {
		t.Fatalf("round trip: %+v ok=%v", got, ok)
	}
	// Tampering flips a ciphertext byte: must be rejected.
	bad := append([]byte(nil), identity...)
	bad[len(bad)-1] ^= 1
	if _, ok := cfg.decryptTicket(bad); ok {
		t.Fatal("tampered ticket accepted")
	}
	// Expired tickets are rejected.
	old := &ticketPayload{suiteID: tp.suiteID, psk: tp.psk, issuedAt: timeNowUnix() - 8*24*3600}
	if _, ok := cfg.decryptTicket(cfg.sealTicket(old)); ok {
		t.Fatal("expired ticket accepted")
	}
	// A different Config (different random key) cannot open it.
	if _, ok := (&Config{}).decryptTicket(identity); ok {
		t.Fatal("foreign ticket key opened the ticket")
	}
}

// TestReplayFilterSingleUse pins the 0-RTT anti-replay set.
func TestReplayFilterSingleUse(t *testing.T) {
	cfg := &Config{}
	id := randomBytes(16)
	if !cfg.markTicketUsed(id) {
		t.Fatal("first use rejected")
	}
	if cfg.markTicketUsed(id) {
		t.Fatal("replay accepted")
	}
	if !cfg.markTicketUsed(randomBytes(16)) {
		t.Fatal("fresh ticket rejected")
	}
}

// TestReplayFilterConcurrent hammers the sharded anti-replay set from
// many goroutines: per identity exactly one caller may win, and
// distinct identities must never interfere — the single-use guarantee
// is what makes 0-RTT safe, so it must hold under handshake storms,
// not just sequentially.
func TestReplayFilterConcurrent(t *testing.T) {
	cfg := &Config{}
	const (
		identities = 64
		callers    = 8
	)
	ids := make([][]byte, identities)
	for i := range ids {
		ids[i] = randomBytes(16)
	}
	wins := make([]atomic.Int32, identities)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, id := range ids {
				if cfg.markTicketUsed(id) {
					wins[i].Add(1)
				}
			}
		}()
	}
	wg.Wait()
	for i := range wins {
		if n := wins[i].Load(); n != 1 {
			t.Fatalf("identity %d marked used %d times, want exactly 1", i, n)
		}
	}
	// Sanity: the identities landed on more than one shard (uniformly
	// random 16-byte identities across 16 shards miss a given shard with
	// probability ~(15/16)^64 ≈ 1.6%; all-on-one-shard is impossible in
	// practice and would mean the mixer is broken).
	shardsHit := 0
	for i := range cfg.replay.shards {
		if len(cfg.replay.shards[i].used) > 0 {
			shardsHit++
		}
	}
	if shardsHit < 2 {
		t.Fatalf("all %d identities hashed to %d shard(s); mixer broken", identities, shardsHit)
	}
}

func timeNowUnix() int64 {
	return time.Now().Unix()
}
