package tls13

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
)

// This file is the TCPLS attachment surface of the record layer (§2.3 of
// the paper): additional cryptographic contexts that share the
// direction's application traffic KEY but use a per-stream IV derived by
// HKDF-Expand-Label(secret, "tcpls iv", streamID). Each context has its
// own record sequence space starting at zero. The receiver does not
// learn the stream id from the wire — it trial-verifies the AEAD tag
// against its known contexts until one opens, exactly as the paper
// describes ("configure the AEAD cipher to check the authentication tag
// until we find the right stream").

// DefaultContext identifies the connection's base TLS context (the one
// the handshake established); TCPLS uses it for the control channel.
const DefaultContext uint32 = 0xffffffff

// streamCtx is one extra crypto context on a half connection. Nonces
// are derived into the owning halfConn's scratch (halfConn.ctxNonce).
type streamCtx struct {
	id  uint32
	iv  []byte
	seq uint64
}

// ErrNoContext reports an inbound record that no context could open.
var ErrNoContext = errors.New("tls13: no crypto context opens this record")

// streamIVLabel derives the per-stream IV.
func (s *suiteParams) streamIV(trafficSecret []byte, streamID uint32) []byte {
	var ctx [4]byte
	binary.BigEndian.PutUint32(ctx[:], streamID)
	return s.expandLabel(trafficSecret, "tcpls iv", ctx[:], s.ivLen)
}

// AddStreamContext derives read+write contexts for a stream id.
// Both directions share the stream id space in TCPLS. It intentionally
// avoids the read/write record locks: a blocked reader must not prevent
// context installation.
func (c *Conn) AddStreamContext(id uint32) error {
	if !c.hsDone {
		return ErrHandshakeRequired
	}
	readSecret, writeSecret := c.serverAppSecret, c.clientAppSecret
	if !c.isClient {
		readSecret, writeSecret = c.clientAppSecret, c.serverAppSecret
	}
	c.rl.in.addContext(id, c.suite.streamIV(readSecret, id))
	c.rl.out.addContext(id, c.suite.streamIV(writeSecret, id))
	return nil
}

// RemoveStreamContext drops a stream's contexts (stream closed).
func (c *Conn) RemoveStreamContext(id uint32) {
	c.rl.in.removeContext(id)
	c.rl.out.removeContext(id)
}

// WriteRecordContext writes one application-data record protected under
// the given context (DefaultContext means the base TLS context).
func (c *Conn) WriteRecordContext(id uint32, payload []byte) error {
	return c.WriteRecordParts(id, nil, payload, nil)
}

// WriteRecordParts writes one application-data record under the given
// context whose payload is the concatenation head||body||tail. The
// parts are gathered directly into the sealed-record buffer, so callers
// composing framing (record headers, type trailers) around a payload
// avoid an intermediate copy. Any part may be nil.
func (c *Conn) WriteRecordParts(id uint32, head, body, tail []byte) error {
	c.muWrite.Lock()
	defer c.muWrite.Unlock()
	if err := c.handshakeNeeded(); err != nil {
		return err
	}
	if len(head)+len(body)+len(tail) > MaxPlaintext {
		return ErrRecordOverflow
	}
	if id == DefaultContext {
		if c.rl.out.aead == nil {
			return ErrHandshakeRequired
		}
		if c.rl.out.seq >= aeadLimit {
			return ErrKeyLimit
		}
		err := c.rl.writeSealed(c.rl.out.nonce(), head, body, tail, RecordTypeApplicationData)
		c.rl.out.seq++
		return err
	}
	return c.rl.writeRecordContextParts(id, head, body, tail)
}

// ReadRecordContext reads the next application-data record, returning
// the context that opened it. Post-handshake messages (tickets) are
// handled transparently; alerts surface as errors.
//
// Ownership of the returned payload transfers to the caller: it is
// backed by a bufpool buffer (base pointer preserved), so callers that
// finish with it should pass it to bufpool.Put. Skipping the Put is
// safe — the buffer just falls back to the garbage collector.
func (c *Conn) ReadRecordContext() (uint32, []byte, error) {
	c.muRead.Lock()
	defer c.muRead.Unlock()
	if err := c.handshakeNeeded(); err != nil {
		return 0, nil, err
	}
	for {
		id, typ, payload, err := c.rl.readRecordAny()
		if err != nil {
			return 0, nil, err
		}
		switch typ {
		case RecordTypeApplicationData:
			return id, payload, nil
		case RecordTypeHandshake:
			if err := c.handlePostHandshake(payload); err != nil {
				return 0, nil, err
			}
		case RecordTypeAlert:
			return 0, nil, alertToError(payload)
		default:
			return 0, nil, fmt.Errorf("tls13: unexpected record type %d", typ)
		}
	}
}

// ForgeryCount reports failed AEAD openings on the read side — TCPLS
// tracks these against the AEAD usage limits ([31,46] in the paper).
func (c *Conn) ForgeryCount() uint64 {
	c.muRead.Lock()
	defer c.muRead.Unlock()
	return c.rl.in.forgery
}

// --- halfConn context management ---

func (hc *halfConn) addContext(id uint32, iv []byte) {
	hc.ctxMu.Lock()
	defer hc.ctxMu.Unlock()
	for _, sc := range hc.ctxs {
		if sc.id == id {
			return
		}
	}
	hc.ctxs = append(hc.ctxs, &streamCtx{id: id, iv: iv})
}

func (hc *halfConn) removeContext(id uint32) {
	hc.ctxMu.Lock()
	defer hc.ctxMu.Unlock()
	for i, sc := range hc.ctxs {
		if sc.id == id {
			hc.ctxs = append(hc.ctxs[:i], hc.ctxs[i+1:]...)
			return
		}
	}
}

func (hc *halfConn) context(id uint32) *streamCtx {
	hc.ctxMu.Lock()
	defer hc.ctxMu.Unlock()
	for _, sc := range hc.ctxs {
		if sc.id == id {
			return sc
		}
	}
	return nil
}

// trialOpen attempts to open a record under each stream context in
// attachment order, decrypting into dst (an empty slice with capacity
// for the plaintext). Holding ctxMu across the attempts is fine: the
// loop never blocks, and context installation is rare.
func (hc *halfConn) trialOpen(dst, body, ad []byte) ([]byte, uint32, bool) {
	hc.ctxMu.Lock()
	defer hc.ctxMu.Unlock()
	for _, sc := range hc.ctxs {
		if plain, err := hc.aead.Open(dst, hc.ctxNonce(sc), body, ad); err == nil {
			sc.seq++
			return plain, sc.id, true
		}
		hc.forgery++
	}
	return nil, 0, false
}

// writeRecordContextParts protects head||body||tail under a stream context.
func (rl *recordLayer) writeRecordContextParts(id uint32, head, body, tail []byte) error {
	sc := rl.out.context(id)
	if sc == nil {
		return fmt.Errorf("tls13: unknown write context %d", id)
	}
	if rl.out.aead == nil {
		return ErrHandshakeRequired
	}
	if sc.seq >= aeadLimit {
		return ErrKeyLimit
	}
	err := rl.writeSealed(rl.out.ctxNonce(sc), head, body, tail, RecordTypeApplicationData)
	sc.seq++
	return err
}

// readRecordAny reads one record and trial-decrypts: base context first,
// then every stream context. Returns the context id that opened it
// (DefaultContext for the base keys).
//
// Application-data plaintext is decrypted into a bufpool buffer whose
// ownership transfers to the caller: passing the returned slice to
// bufpool.Put when done recycles it (its base pointer is the buffer
// base). The ciphertext itself is a view into the read buffer and is
// never copied. Non-application records (handshake, alerts, records
// read before keys are installed) are returned as plain GC allocations
// since they are consumed internally.
func (rl *recordLayer) readRecordAny() (uint32, uint8, []byte, error) {
	for {
		hdr, err := rl.fill(recordHeader)
		if err != nil {
			return 0, 0, nil, err
		}
		n := int(binary.BigEndian.Uint16(hdr[3:]))
		if n > MaxCiphertext {
			return 0, 0, nil, ErrRecordOverflow
		}
		full, err := rl.fill(recordHeader + n)
		if err != nil {
			return 0, 0, nil, err
		}
		typ := full[0]
		body := full[recordHeader : recordHeader+n]

		if typ == RecordTypeChangeCipherSpec {
			rl.consume(recordHeader + n)
			continue
		}
		if rl.in.aead == nil || typ != RecordTypeApplicationData {
			out := append([]byte(nil), body...)
			rl.consume(recordHeader + n)
			return DefaultContext, typ, out, nil
		}
		if rl.in.seq+rl.in.forgery >= aeadLimit {
			return 0, 0, nil, ErrKeyLimit
		}
		hdrCopy := rl.in.adBuf[:]
		hdrCopy[0], hdrCopy[1], hdrCopy[2] = typ, 0x03, 0x03
		binary.BigEndian.PutUint16(hdrCopy[3:], uint16(n))

		// Decrypt into a pooled buffer: a failed trial zeroes only the
		// destination (the ciphertext view stays intact for the next
		// attempt), a successful one hands the buffer to the caller.
		plainBuf := bufpool.Get(n)

		// Base context first (control channel traffic dominates between
		// stream bursts), then the stream contexts in attachment order.
		if plain, err := rl.in.aead.Open(plainBuf[:0], rl.in.nonce(), body, hdrCopy[:]); err == nil {
			rl.in.seq++
			rl.consume(recordHeader + n)
			inner, ityp, ok := stripInner(plain)
			if !ok {
				bufpool.Put(plainBuf)
				return 0, 0, nil, ErrBadRecordMAC
			}
			return DefaultContext, ityp, inner, nil
		}
		rl.in.forgery++
		if plain, id, ok := rl.in.trialOpen(plainBuf[:0], body, hdrCopy[:]); ok {
			rl.consume(recordHeader + n)
			inner, ityp, ok := stripInner(plain)
			if !ok {
				bufpool.Put(plainBuf)
				return 0, 0, nil, ErrBadRecordMAC
			}
			return id, ityp, inner, nil
		}
		bufpool.Put(plainBuf)
		rl.consume(recordHeader + n)
		return 0, 0, nil, ErrNoContext
	}
}

// stripInner removes zero padding and the inner content type.
func stripInner(plain []byte) ([]byte, uint8, bool) {
	i := len(plain) - 1
	for i >= 0 && plain[i] == 0 {
		i--
	}
	if i < 0 {
		return nil, 0, false
	}
	return plain[:i], plain[i], true
}
