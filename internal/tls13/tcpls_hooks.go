package tls13

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file is the TCPLS attachment surface of the record layer (§2.3 of
// the paper): additional cryptographic contexts that share the
// direction's application traffic KEY but use a per-stream IV derived by
// HKDF-Expand-Label(secret, "tcpls iv", streamID). Each context has its
// own record sequence space starting at zero. The receiver does not
// learn the stream id from the wire — it trial-verifies the AEAD tag
// against its known contexts until one opens, exactly as the paper
// describes ("configure the AEAD cipher to check the authentication tag
// until we find the right stream").

// DefaultContext identifies the connection's base TLS context (the one
// the handshake established); TCPLS uses it for the control channel.
const DefaultContext uint32 = 0xffffffff

// streamCtx is one extra crypto context on a half connection.
type streamCtx struct {
	id  uint32
	iv  []byte
	seq uint64
}

func (sc *streamCtx) nonce(ivLen int) []byte {
	n := make([]byte, ivLen)
	copy(n, sc.iv)
	var seqb [8]byte
	binary.BigEndian.PutUint64(seqb[:], sc.seq)
	for i := 0; i < 8; i++ {
		n[ivLen-8+i] ^= seqb[i]
	}
	return n
}

// ErrNoContext reports an inbound record that no context could open.
var ErrNoContext = errors.New("tls13: no crypto context opens this record")

// streamIVLabel derives the per-stream IV.
func (s *suiteParams) streamIV(trafficSecret []byte, streamID uint32) []byte {
	var ctx [4]byte
	binary.BigEndian.PutUint32(ctx[:], streamID)
	return s.expandLabel(trafficSecret, "tcpls iv", ctx[:], s.ivLen)
}

// AddStreamContext derives read+write contexts for a stream id.
// Both directions share the stream id space in TCPLS. It intentionally
// avoids the read/write record locks: a blocked reader must not prevent
// context installation.
func (c *Conn) AddStreamContext(id uint32) error {
	if !c.hsDone {
		return ErrHandshakeRequired
	}
	readSecret, writeSecret := c.serverAppSecret, c.clientAppSecret
	if !c.isClient {
		readSecret, writeSecret = c.clientAppSecret, c.serverAppSecret
	}
	c.rl.in.addContext(id, c.suite.streamIV(readSecret, id))
	c.rl.out.addContext(id, c.suite.streamIV(writeSecret, id))
	return nil
}

// RemoveStreamContext drops a stream's contexts (stream closed).
func (c *Conn) RemoveStreamContext(id uint32) {
	c.rl.in.removeContext(id)
	c.rl.out.removeContext(id)
}

// WriteRecordContext writes one application-data record protected under
// the given context (DefaultContext means the base TLS context).
func (c *Conn) WriteRecordContext(id uint32, payload []byte) error {
	c.muWrite.Lock()
	defer c.muWrite.Unlock()
	if err := c.handshakeNeeded(); err != nil {
		return err
	}
	if id == DefaultContext {
		return c.rl.writeRecord(RecordTypeApplicationData, payload)
	}
	return c.rl.writeRecordContext(id, payload)
}

// ReadRecordContext reads the next application-data record, returning
// the context that opened it. Post-handshake messages (tickets) are
// handled transparently; alerts surface as errors.
func (c *Conn) ReadRecordContext() (uint32, []byte, error) {
	c.muRead.Lock()
	defer c.muRead.Unlock()
	if err := c.handshakeNeeded(); err != nil {
		return 0, nil, err
	}
	for {
		id, typ, payload, err := c.rl.readRecordAny()
		if err != nil {
			return 0, nil, err
		}
		switch typ {
		case RecordTypeApplicationData:
			return id, payload, nil
		case RecordTypeHandshake:
			if err := c.handlePostHandshake(payload); err != nil {
				return 0, nil, err
			}
		case RecordTypeAlert:
			return 0, nil, alertToError(payload)
		default:
			return 0, nil, fmt.Errorf("tls13: unexpected record type %d", typ)
		}
	}
}

// ForgeryCount reports failed AEAD openings on the read side — TCPLS
// tracks these against the AEAD usage limits ([31,46] in the paper).
func (c *Conn) ForgeryCount() uint64 {
	c.muRead.Lock()
	defer c.muRead.Unlock()
	return c.rl.in.forgery
}

// --- halfConn context management ---

func (hc *halfConn) addContext(id uint32, iv []byte) {
	hc.ctxMu.Lock()
	defer hc.ctxMu.Unlock()
	for _, sc := range hc.ctxs {
		if sc.id == id {
			return
		}
	}
	hc.ctxs = append(hc.ctxs, &streamCtx{id: id, iv: iv})
}

func (hc *halfConn) removeContext(id uint32) {
	hc.ctxMu.Lock()
	defer hc.ctxMu.Unlock()
	for i, sc := range hc.ctxs {
		if sc.id == id {
			hc.ctxs = append(hc.ctxs[:i], hc.ctxs[i+1:]...)
			return
		}
	}
}

func (hc *halfConn) context(id uint32) *streamCtx {
	hc.ctxMu.Lock()
	defer hc.ctxMu.Unlock()
	for _, sc := range hc.ctxs {
		if sc.id == id {
			return sc
		}
	}
	return nil
}

// snapshotContexts copies the context list for trial decryption.
func (hc *halfConn) snapshotContexts() []*streamCtx {
	hc.ctxMu.Lock()
	defer hc.ctxMu.Unlock()
	return append([]*streamCtx(nil), hc.ctxs...)
}

// writeRecordContext protects payload under a stream context.
func (rl *recordLayer) writeRecordContext(id uint32, payload []byte) error {
	if len(payload) > MaxPlaintext {
		return ErrRecordOverflow
	}
	sc := rl.out.context(id)
	if sc == nil {
		return fmt.Errorf("tls13: unknown write context %d", id)
	}
	if rl.out.aead == nil {
		return ErrHandshakeRequired
	}
	if sc.seq >= aeadLimit {
		return ErrKeyLimit
	}
	inner := make([]byte, 0, len(payload)+1)
	inner = append(inner, payload...)
	inner = append(inner, RecordTypeApplicationData)
	n := len(inner) + rl.out.aead.Overhead()
	out := make([]byte, recordHeader, recordHeader+n)
	out[0] = RecordTypeApplicationData
	binary.BigEndian.PutUint16(out[1:], 0x0303)
	binary.BigEndian.PutUint16(out[3:], uint16(n))
	out = rl.out.aead.Seal(out, sc.nonce(len(rl.out.iv)), inner, out[:recordHeader])
	sc.seq++
	_, err := rl.rw.Write(out)
	return err
}

// readRecordAny reads one record and trial-decrypts: base context first,
// then every stream context. Returns the context id that opened it
// (DefaultContext for the base keys).
func (rl *recordLayer) readRecordAny() (uint32, uint8, []byte, error) {
	for {
		hdr, err := rl.fill(recordHeader)
		if err != nil {
			return 0, 0, nil, err
		}
		n := int(binary.BigEndian.Uint16(hdr[3:]))
		if n > MaxCiphertext {
			return 0, 0, nil, ErrRecordOverflow
		}
		full, err := rl.fill(recordHeader + n)
		if err != nil {
			return 0, 0, nil, err
		}
		typ := full[0]
		body := append([]byte(nil), full[recordHeader:recordHeader+n]...)
		rl.consume(recordHeader + n)

		if typ == RecordTypeChangeCipherSpec {
			continue
		}
		if rl.in.aead == nil || typ != RecordTypeApplicationData {
			return DefaultContext, typ, body, nil
		}
		if rl.in.seq+rl.in.forgery >= aeadLimit {
			return 0, 0, nil, ErrKeyLimit
		}
		hdrCopy := [recordHeader]byte{typ, 0x03, 0x03}
		binary.BigEndian.PutUint16(hdrCopy[3:], uint16(n))

		// Base context first (control channel traffic dominates between
		// stream bursts), then the stream contexts in attachment order.
		if plain, err := rl.in.aead.Open(nil, rl.in.nonce(), body, hdrCopy[:]); err == nil {
			rl.in.seq++
			inner, ityp, ok := stripInner(plain)
			if !ok {
				return 0, 0, nil, ErrBadRecordMAC
			}
			return DefaultContext, ityp, inner, nil
		}
		rl.in.forgery++
		opened := false
		for _, sc := range rl.in.snapshotContexts() {
			if plain, err := rl.in.aead.Open(nil, sc.nonce(len(rl.in.iv)), body, hdrCopy[:]); err == nil {
				sc.seq++
				inner, ityp, ok := stripInner(plain)
				if !ok {
					return 0, 0, nil, ErrBadRecordMAC
				}
				opened = true
				return sc.id, ityp, inner, nil
			}
			rl.in.forgery++
		}
		if !opened {
			return 0, 0, nil, ErrNoContext
		}
	}
}

// stripInner removes zero padding and the inner content type.
func stripInner(plain []byte) ([]byte, uint8, bool) {
	i := len(plain) - 1
	for i >= 0 && plain[i] == 0 {
		i--
	}
	if i < 0 {
		return nil, 0, false
	}
	return plain[:i], plain[i], true
}
