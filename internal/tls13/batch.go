package tls13

import (
	"encoding/binary"
	"fmt"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
)

// This file is the GSO-style batch surface of the record layer: seal N
// records into one pooled buffer with one transport write, and drain
// every complete buffered record with one lock acquisition. The batch
// paths reuse the exact sealing/opening primitives of the single-record
// paths (same nonce derivation, same additional data, same sequence
// bookkeeping), so the wire bytes are identical by construction — and
// pinned byte-identical by the differential tests in batch_test.go.

// OutRecord describes one outbound record of a batch: a crypto context
// (DefaultContext or a stream context id) and a payload gathered from
// up to three parts (framing head, body, trailer), any of which may be
// nil. The concatenated parts must not exceed MaxPlaintext.
type OutRecord struct {
	Ctx              uint32
	Head, Body, Tail []byte
}

// InRecord is one inbound record drained by ReadRecordContextBatch.
// Payload is backed by a bufpool buffer whose ownership transfers to
// the caller (pass it to bufpool.Put when done; skipping the Put just
// falls back to the garbage collector).
type InRecord struct {
	Ctx     uint32
	Payload []byte
}

// batchBufCap is the sealed-batch staging buffer size — the largest
// bufpool class, holding ~15 cwnd-matched 4K records or 3 max-size
// ones. Batches larger than the buffer flush mid-batch and keep going;
// the amortization loss is negligible at that size.
const batchBufCap = 64 << 10

// WriteRecordBatch seals every record of recs under its context and
// writes them with as few transport writes as possible (one, for any
// batch whose sealed bytes fit the staging buffer). It returns the
// number of records sealed; on error, records [0, n) are on the wire
// (or spent their sequence numbers) and the rest were not started.
//
// Wire bytes are identical to issuing WriteRecordParts per record.
func (c *Conn) WriteRecordBatch(recs []OutRecord) (int, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	c.muWrite.Lock()
	defer c.muWrite.Unlock()
	if err := c.handshakeNeeded(); err != nil {
		return 0, err
	}
	if c.rl.out.aead == nil {
		return 0, ErrHandshakeRequired
	}
	return c.rl.writeSealedBatch(recs)
}

// writeSealedBatch is the record-layer half of WriteRecordBatch.
// Caller holds muWrite and has verified out.aead != nil. Written
// closure-free so the steady-state batch write stays zero-alloc.
func (rl *recordLayer) writeSealedBatch(recs []OutRecord) (sealed int, err error) {
	overhead := rl.out.aead.Overhead()
	buf := bufpool.Get(batchBufCap)
	used := 0

	for i := range recs {
		r := &recs[i]
		plen := len(r.Head) + len(r.Body) + len(r.Tail)
		if plen > MaxPlaintext {
			err = ErrRecordOverflow
			break
		}
		n := plen + 1 + overhead
		if used+recordHeader+n > len(buf) {
			// Staging buffer full: flush what's sealed and keep going.
			if _, err = rl.rw.Write(buf[:used]); err != nil {
				used = 0
				break
			}
			used = 0
		}

		// Resolve the context and check its key budget before spending
		// a nonce, exactly like the single-record path.
		var nonce []byte
		if r.Ctx == DefaultContext {
			if rl.out.seq >= aeadLimit {
				err = ErrKeyLimit
				break
			}
			nonce = rl.out.nonce()
			rl.out.seq++
		} else {
			sc := rl.out.context(r.Ctx)
			if sc == nil {
				err = fmt.Errorf("tls13: unknown write context %d", r.Ctx)
				break
			}
			if sc.seq >= aeadLimit {
				err = ErrKeyLimit
				break
			}
			nonce = rl.out.ctxNonce(sc)
			sc.seq++
		}

		rec := buf[used : used+recordHeader+n]
		rec[0] = RecordTypeApplicationData
		binary.BigEndian.PutUint16(rec[1:], 0x0303)
		binary.BigEndian.PutUint16(rec[3:], uint16(n))
		p := rec[recordHeader:recordHeader]
		p = append(p, r.Head...)
		p = append(p, r.Body...)
		p = append(p, r.Tail...)
		p = append(p, RecordTypeApplicationData)
		rl.out.aead.Seal(rec[:recordHeader], nonce, p, rec[:recordHeader])
		used += recordHeader + n
		sealed++
	}

	// Flush whatever sealed, even on the error paths: those records
	// spent their nonces and belong on the wire.
	if used > 0 {
		if _, ferr := rl.rw.Write(buf[:used]); ferr != nil && err == nil {
			err = ferr
		}
	}
	bufpool.Put(buf)
	return sealed, err
}

// recordBuffered reports whether a complete record is already sitting
// in the read buffer, i.e. whether another readRecordAny is guaranteed
// not to touch the transport.
func (rl *recordLayer) recordBuffered() bool {
	avail := len(rl.buf) - rl.off
	if avail < recordHeader {
		return false
	}
	n := int(binary.BigEndian.Uint16(rl.buf[rl.off+3:]))
	return avail >= recordHeader+n
}

// ReadRecordContextBatch drains application-data records into out: it
// blocks for the first record like ReadRecordContext, then keeps
// appending records that are already complete in the receive buffer —
// one lock acquisition and zero extra transport reads for a whole
// burst. Post-handshake messages are handled transparently mid-batch.
//
// It returns the number of records filled. n > 0 with a non-nil error
// means records [0, n) are valid AND the stream then failed; callers
// must consume the records before acting on the error. Each Payload's
// ownership transfers to the caller as in ReadRecordContext.
func (c *Conn) ReadRecordContextBatch(out []InRecord) (int, error) {
	if len(out) == 0 {
		return 0, nil
	}
	c.muRead.Lock()
	defer c.muRead.Unlock()
	if err := c.handshakeNeeded(); err != nil {
		return 0, err
	}
	n := 0
	for n < len(out) {
		if n > 0 && !c.rl.recordBuffered() {
			break // would block; deliver what we have
		}
		id, typ, payload, err := c.rl.readRecordAny()
		if err != nil {
			return n, err
		}
		switch typ {
		case RecordTypeApplicationData:
			out[n] = InRecord{Ctx: id, Payload: payload}
			n++
			if id == DefaultContext {
				// Default-context records can carry control frames that
				// register new crypto contexts. Later records of the same
				// burst may only decrypt after the caller processes this
				// one, so the batch must stop here — draining on would
				// trial-open them against a context set that is about to
				// change and misreport them as undecryptable.
				return n, nil
			}
		case RecordTypeHandshake:
			if err := c.handlePostHandshake(payload); err != nil {
				return n, err
			}
		case RecordTypeAlert:
			return n, alertToError(payload)
		default:
			return n, fmt.Errorf("tls13: unexpected record type %d", typ)
		}
	}
	return n, nil
}
