// Package tls13 is a from-scratch TLS 1.3 (RFC 8446) implementation on
// the Go standard library's crypto primitives: X25519 key exchange,
// HKDF key schedule, AES-GCM record protection, ECDSA-P256 certificates,
// session tickets with PSK resumption and 0-RTT early data.
//
// It plays the role picotls plays for the TCPLS prototype: a TLS stack
// open enough to host the TCPLS extensions — extra ClientHello /
// EncryptedExtensions contents, exported secrets for per-stream crypto
// contexts and JOIN cookies, and record-layer hooks for the hidden
// record type of Figure 1. Everything TCPLS-specific lives above, in
// internal/record and internal/core; this package is plain TLS 1.3.
package tls13

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hkdf"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/sha512"
	"encoding/binary"
	"fmt"
	"hash"
)

// CipherSuite identifiers (RFC 8446 §B.4).
const (
	TLS_AES_128_GCM_SHA256 uint16 = 0x1301
	TLS_AES_256_GCM_SHA384 uint16 = 0x1302
)

// suiteParams describes a cipher suite's primitives.
type suiteParams struct {
	id      uint16
	keyLen  int
	ivLen   int
	hashLen int
	newHash func() hash.Hash
}

var suites = map[uint16]*suiteParams{
	TLS_AES_128_GCM_SHA256: {TLS_AES_128_GCM_SHA256, 16, 12, 32, sha256.New},
	TLS_AES_256_GCM_SHA384: {TLS_AES_256_GCM_SHA384, 32, 12, 48, sha512.New384},
}

// DefaultCipherSuites is the offer order.
var DefaultCipherSuites = []uint16{TLS_AES_128_GCM_SHA256, TLS_AES_256_GCM_SHA384}

// CipherSuiteName renders the suite for diagnostics.
func CipherSuiteName(id uint16) string {
	switch id {
	case TLS_AES_128_GCM_SHA256:
		return "TLS_AES_128_GCM_SHA256"
	case TLS_AES_256_GCM_SHA384:
		return "TLS_AES_256_GCM_SHA384"
	default:
		return fmt.Sprintf("unknown(%#04x)", id)
	}
}

// hkdfExtract is HKDF-Extract with the suite hash.
func (s *suiteParams) extract(salt, ikm []byte) []byte {
	if salt == nil {
		salt = make([]byte, s.hashLen)
	}
	if ikm == nil {
		ikm = make([]byte, s.hashLen)
	}
	out, err := hkdf.Extract(s.newHash, ikm, salt)
	if err != nil {
		panic("tls13: hkdf extract: " + err.Error())
	}
	return out
}

// expandLabel implements HKDF-Expand-Label (RFC 8446 §7.1).
func (s *suiteParams) expandLabel(secret []byte, label string, context []byte, length int) []byte {
	var info []byte
	info = binary.BigEndian.AppendUint16(info, uint16(length))
	full := "tls13 " + label
	info = append(info, byte(len(full)))
	info = append(info, full...)
	info = append(info, byte(len(context)))
	info = append(info, context...)
	out, err := hkdf.Expand(s.newHash, secret, string(info), length)
	if err != nil {
		panic("tls13: hkdf expand: " + err.Error())
	}
	return out
}

// deriveSecret is Derive-Secret (RFC 8446 §7.1): transcript is the raw
// hash output of the messages so far (may be of an empty transcript).
func (s *suiteParams) deriveSecret(secret []byte, label string, transcript []byte) []byte {
	return s.expandLabel(secret, label, transcript, s.hashLen)
}

// emptyHash returns Hash("").
func (s *suiteParams) emptyHash() []byte {
	h := s.newHash()
	return h.Sum(nil)
}

// finishedMAC computes the Finished verify_data over the transcript.
func (s *suiteParams) finishedMAC(baseKey, transcript []byte) []byte {
	finishedKey := s.expandLabel(baseKey, "finished", nil, s.hashLen)
	m := hmac.New(s.newHash, finishedKey)
	m.Write(transcript)
	return m.Sum(nil)
}

// aead builds the record-protection AEAD for a traffic secret.
func (s *suiteParams) aead(trafficSecret []byte) (cipher.AEAD, []byte) {
	key := s.expandLabel(trafficSecret, "key", nil, s.keyLen)
	iv := s.expandLabel(trafficSecret, "iv", nil, s.ivLen)
	block, err := aes.NewCipher(key)
	if err != nil {
		panic("tls13: aes: " + err.Error())
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		panic("tls13: gcm: " + err.Error())
	}
	return gcm, iv
}

// keySchedule tracks the RFC 8446 §7.1 schedule through the handshake.
type keySchedule struct {
	suite      *suiteParams
	transcript hash.Hash
	secret     []byte // current extract output
	stage      int    // 0 = early, 1 = handshake, 2 = master
}

func newKeySchedule(suite *suiteParams, psk []byte) *keySchedule {
	ks := &keySchedule{suite: suite, transcript: suite.newHash()}
	ks.secret = suite.extract(nil, psk) // early secret
	return ks
}

// addMessage feeds a raw handshake message into the transcript.
func (ks *keySchedule) addMessage(msg []byte) { ks.transcript.Write(msg) }

// transcriptHash returns the hash of the transcript so far.
func (ks *keySchedule) transcriptHash() []byte { return ks.transcript.Sum(nil) }

// earlySecrets derives the 0-RTT secrets; call before any ServerHello is
// in the transcript (i.e. right after ClientHello).
func (ks *keySchedule) clientEarlyTrafficSecret() []byte {
	return ks.suite.deriveSecret(ks.secret, "c e traffic", ks.transcriptHash())
}

// binderKey derives the PSK binder key (resumption flavor).
func (ks *keySchedule) binderKey() []byte {
	return ks.suite.deriveSecret(ks.secret, "res binder", ks.suite.emptyHash())
}

// toHandshake mixes in the ECDHE shared secret.
func (ks *keySchedule) toHandshake(ecdhe []byte) {
	derived := ks.suite.deriveSecret(ks.secret, "derived", ks.suite.emptyHash())
	ks.secret = ks.suite.extract(derived, ecdhe)
	ks.stage = 1
}

// handshakeTrafficSecrets returns (client, server) handshake secrets.
func (ks *keySchedule) handshakeTrafficSecrets() ([]byte, []byte) {
	th := ks.transcriptHash()
	return ks.suite.deriveSecret(ks.secret, "c hs traffic", th),
		ks.suite.deriveSecret(ks.secret, "s hs traffic", th)
}

// toMaster finishes the schedule.
func (ks *keySchedule) toMaster() {
	derived := ks.suite.deriveSecret(ks.secret, "derived", ks.suite.emptyHash())
	ks.secret = ks.suite.extract(derived, nil)
	ks.stage = 2
}

// appTrafficSecrets returns (client, server) application secrets; the
// transcript must cover ClientHello..server Finished.
func (ks *keySchedule) appTrafficSecrets() ([]byte, []byte) {
	th := ks.transcriptHash()
	return ks.suite.deriveSecret(ks.secret, "c ap traffic", th),
		ks.suite.deriveSecret(ks.secret, "s ap traffic", th)
}

// resumptionMasterSecret needs the transcript through client Finished.
func (ks *keySchedule) resumptionMasterSecret() []byte {
	return ks.suite.deriveSecret(ks.secret, "res master", ks.transcriptHash())
}

// exporterMasterSecret needs the transcript through server Finished.
func (ks *keySchedule) exporterMasterSecret() []byte {
	return ks.suite.deriveSecret(ks.secret, "exp master", ks.transcriptHash())
}

// Suite is the public handle on a cipher suite's key-derivation
// primitives, for layers (TCPLS records, quicbase packets) that build
// their own AEAD protection from exported traffic secrets.
type Suite struct{ p *suiteParams }

// SuiteByID resolves a cipher suite.
func SuiteByID(id uint16) (*Suite, error) {
	p := suites[id]
	if p == nil {
		return nil, fmt.Errorf("tls13: unknown suite %#04x", id)
	}
	return &Suite{p}, nil
}

// NewAEAD derives (key, iv) from a traffic secret per RFC 8446 §7.3 and
// returns the record-protection AEAD with its static IV.
func (s *Suite) NewAEAD(trafficSecret []byte) (cipher.AEAD, []byte) {
	return s.p.aead(trafficSecret)
}

// ExpandLabel exposes HKDF-Expand-Label for higher layers.
func (s *Suite) ExpandLabel(secret []byte, label string, context []byte, length int) []byte {
	return s.p.expandLabel(secret, label, context, length)
}

// HashLen returns the suite hash length.
func (s *Suite) HashLen() int { return s.p.hashLen }
