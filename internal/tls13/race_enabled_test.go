//go:build race

package tls13

// raceEnabled disables alloc-count assertions: the race runtime
// allocates on instrumented paths.
const raceEnabled = true
