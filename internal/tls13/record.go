package tls13

import (
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Record content types.
const (
	RecordTypeChangeCipherSpec uint8 = 20
	RecordTypeAlert            uint8 = 21
	RecordTypeHandshake        uint8 = 22
	RecordTypeApplicationData  uint8 = 23
)

// Record-layer limits (RFC 8446 §5.1/§5.2).
const (
	MaxPlaintext  = 16384
	MaxCiphertext = MaxPlaintext + 256
	recordHeader  = 5
)

// Record-layer errors.
var (
	ErrRecordOverflow = errors.New("tls13: record overflows limit")
	ErrBadRecordMAC   = errors.New("tls13: bad record MAC")
	ErrKeyLimit       = errors.New("tls13: AEAD usage limit reached")
)

// aeadLimit is the confidentiality limit on records per key for AES-GCM
// (2^24.5 per the AEAD-limits analysis the paper cites [31, 46]; we round
// down). Hitting it returns ErrKeyLimit rather than weakening.
const aeadLimit = 1 << 24

// halfConn protects one direction of a connection.
type halfConn struct {
	aead    cipher.AEAD
	iv      []byte
	seq     uint64
	forgery uint64 // failed decryptions count toward the limit too

	// TCPLS per-stream contexts (tcpls_hooks.go). ctxMu guards the slice
	// only: per-context sequence numbers are mutated exclusively by the
	// direction's single record path (muRead for in, muWrite for out).
	ctxMu sync.Mutex
	ctxs  []*streamCtx
}

// setKeys installs a traffic secret (nil aead means plaintext).
func (hc *halfConn) setKeys(s *suiteParams, trafficSecret []byte) {
	hc.aead, hc.iv = s.aead(trafficSecret)
	hc.seq = 0
}

// nonce XORs the sequence number into the static IV (RFC 8446 §5.3).
func (hc *halfConn) nonce() []byte {
	n := make([]byte, len(hc.iv))
	copy(n, hc.iv)
	var seqb [8]byte
	binary.BigEndian.PutUint64(seqb[:], hc.seq)
	for i := 0; i < 8; i++ {
		n[len(n)-8+i] ^= seqb[i]
	}
	return n
}

// recordLayer frames, protects and deprotects TLS records over an
// io.ReadWriter (typically a TCP connection — kernel or tcpnet).
type recordLayer struct {
	rw  io.ReadWriter
	in  halfConn
	out halfConn
	buf []byte // read buffer with partial record bytes
}

// writeRecord writes one record. If the write direction is encrypted,
// payload is wrapped as TLSInnerPlaintext with the given inner type and
// the outer type becomes application_data; otherwise typ goes on the
// wire directly.
func (rl *recordLayer) writeRecord(typ uint8, payload []byte) error {
	if len(payload) > MaxPlaintext {
		return ErrRecordOverflow
	}
	var out []byte
	if rl.out.aead == nil {
		out = make([]byte, recordHeader+len(payload))
		out[0] = typ
		binary.BigEndian.PutUint16(out[1:], 0x0301)
		binary.BigEndian.PutUint16(out[3:], uint16(len(payload)))
		copy(out[recordHeader:], payload)
	} else {
		if rl.out.seq >= aeadLimit {
			return ErrKeyLimit
		}
		inner := make([]byte, 0, len(payload)+1)
		inner = append(inner, payload...)
		inner = append(inner, typ)
		n := len(inner) + rl.out.aead.Overhead()
		out = make([]byte, recordHeader, recordHeader+n)
		out[0] = RecordTypeApplicationData
		binary.BigEndian.PutUint16(out[1:], 0x0303)
		binary.BigEndian.PutUint16(out[3:], uint16(n))
		out = rl.out.aead.Seal(out, rl.out.nonce(), inner, out[:recordHeader])
		rl.out.seq++
	}
	_, err := rl.rw.Write(out)
	return err
}

// readRecord returns the next record's (inner) content type and payload.
// ChangeCipherSpec records are skipped transparently.
func (rl *recordLayer) readRecord() (uint8, []byte, error) {
	for {
		hdr, err := rl.fill(recordHeader)
		if err != nil {
			return 0, nil, err
		}
		n := int(binary.BigEndian.Uint16(hdr[3:]))
		if n > MaxCiphertext {
			return 0, nil, ErrRecordOverflow
		}
		full, err := rl.fill(recordHeader + n)
		if err != nil {
			return 0, nil, err
		}
		typ := full[0]
		body := append([]byte(nil), full[recordHeader:recordHeader+n]...)
		rl.consume(recordHeader + n)

		if typ == RecordTypeChangeCipherSpec {
			continue // middlebox-compat CCS: ignore
		}
		if rl.in.aead == nil || typ != RecordTypeApplicationData {
			return typ, body, nil
		}
		if rl.in.seq+rl.in.forgery >= aeadLimit {
			return 0, nil, ErrKeyLimit
		}
		hdrCopy := [recordHeader]byte{typ, 0x03, 0x03}
		binary.BigEndian.PutUint16(hdrCopy[3:], uint16(n))
		plain, err := rl.in.aead.Open(body[:0], rl.in.nonce(), body, hdrCopy[:])
		if err != nil {
			rl.in.forgery++
			return 0, nil, ErrBadRecordMAC
		}
		rl.in.seq++
		// Strip zero padding and the inner content type.
		i := len(plain) - 1
		for i >= 0 && plain[i] == 0 {
			i--
		}
		if i < 0 {
			return 0, nil, fmt.Errorf("%w: all-zero plaintext", ErrBadRecordMAC)
		}
		return plain[i], plain[:i], nil
	}
}

// fill ensures n buffered bytes and returns them without consuming.
func (rl *recordLayer) fill(n int) ([]byte, error) {
	for len(rl.buf) < n {
		chunk := make([]byte, 8192)
		m, err := rl.rw.Read(chunk)
		if m > 0 {
			rl.buf = append(rl.buf, chunk[:m]...)
			continue
		}
		if err != nil {
			return nil, err
		}
	}
	return rl.buf[:n], nil
}

func (rl *recordLayer) consume(n int) { rl.buf = rl.buf[n:] }

// Alert descriptions we emit or interpret.
const (
	alertCloseNotify     uint8 = 0
	alertHandshakeFail   uint8 = 40
	alertBadCertificate  uint8 = 42
	alertDecryptError    uint8 = 51
	alertProtocolVersion uint8 = 70
	alertInternalError   uint8 = 80
	alertUnexpectedMsg   uint8 = 10
)

// AlertError is a fatal alert received from the peer.
type AlertError struct {
	Description uint8
}

// Error implements error.
func (a *AlertError) Error() string {
	return fmt.Sprintf("tls13: alert %d from peer", a.Description)
}

// sendAlert writes a fatal (or close_notify) alert.
func (rl *recordLayer) sendAlert(desc uint8) error {
	level := uint8(2)
	if desc == alertCloseNotify {
		level = 1
	}
	return rl.writeRecord(RecordTypeAlert, []byte{level, desc})
}
