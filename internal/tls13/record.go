package tls13

import (
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
)

// Record content types.
const (
	RecordTypeChangeCipherSpec uint8 = 20
	RecordTypeAlert            uint8 = 21
	RecordTypeHandshake        uint8 = 22
	RecordTypeApplicationData  uint8 = 23
)

// Record-layer limits (RFC 8446 §5.1/§5.2).
const (
	MaxPlaintext  = 16384
	MaxCiphertext = MaxPlaintext + 256
	recordHeader  = 5
)

// Record-layer errors.
var (
	ErrRecordOverflow = errors.New("tls13: record overflows limit")
	ErrBadRecordMAC   = errors.New("tls13: bad record MAC")
	ErrKeyLimit       = errors.New("tls13: AEAD usage limit reached")
)

// aeadLimit is the confidentiality limit on records per key for AES-GCM
// (2^24.5 per the AEAD-limits analysis the paper cites [31, 46]; we round
// down). Hitting it returns ErrKeyLimit rather than weakening.
const aeadLimit = 1 << 24

// halfConn protects one direction of a connection.
type halfConn struct {
	aead    cipher.AEAD
	iv      []byte
	seq     uint64
	forgery uint64 // failed decryptions count toward the limit too

	// nonceBuf and adBuf are scratch for nonce derivation and the
	// additional-data record header, valid until the next record on
	// this half. Safe because each direction's record path is
	// serialized (muRead for in, muWrite for out). Stack arrays would
	// do, but passed through the cipher.AEAD interface they escape and
	// cost an allocation per record.
	nonceBuf [16]byte
	adBuf    [recordHeader]byte

	// TCPLS per-stream contexts (tcpls_hooks.go). ctxMu guards the slice
	// only: per-context sequence numbers are mutated exclusively by the
	// direction's single record path (muRead for in, muWrite for out).
	ctxMu sync.Mutex
	ctxs  []*streamCtx
}

// setKeys installs a traffic secret (nil aead means plaintext).
func (hc *halfConn) setKeys(s *suiteParams, trafficSecret []byte) {
	hc.aead, hc.iv = s.aead(trafficSecret)
	hc.seq = 0
}

// nonceInto XORs the sequence number into the static IV (RFC 8446
// §5.3), writing the result into dst. dst must hold len(iv) bytes.
func nonceInto(dst, iv []byte, seq uint64) []byte {
	n := dst[:len(iv)]
	copy(n, iv)
	var seqb [8]byte
	binary.BigEndian.PutUint64(seqb[:], seq)
	for i := 0; i < 8; i++ {
		n[len(n)-8+i] ^= seqb[i]
	}
	return n
}

// nonce returns the base-context nonce in the half's scratch buffer.
func (hc *halfConn) nonce() []byte {
	return nonceInto(hc.nonceBuf[:], hc.iv, hc.seq)
}

// ctxNonce returns a stream context's nonce in the half's scratch buffer.
func (hc *halfConn) ctxNonce(sc *streamCtx) []byte {
	return nonceInto(hc.nonceBuf[:], sc.iv, sc.seq)
}

// recordLayer frames, protects and deprotects TLS records over an
// io.ReadWriter (typically a TCP connection — kernel or tcpnet).
//
// Outbound records are assembled and sealed in place inside a pooled
// buffer that is recycled right after rw.Write returns: the transport
// must not retain the write slice past the call (tcpnet and kernel
// sockets both copy into their send buffers).
type recordLayer struct {
	rw  io.ReadWriter
	in  halfConn
	out halfConn
	buf []byte // read buffer: buf[off:] holds unconsumed record bytes
	off int
}

// writeRecord writes one record. If the write direction is encrypted,
// payload is wrapped as TLSInnerPlaintext with the given inner type and
// the outer type becomes application_data; otherwise typ goes on the
// wire directly.
func (rl *recordLayer) writeRecord(typ uint8, payload []byte) error {
	if len(payload) > MaxPlaintext {
		return ErrRecordOverflow
	}
	if rl.out.aead == nil {
		out := bufpool.Get(recordHeader + len(payload))
		out[0] = typ
		binary.BigEndian.PutUint16(out[1:], 0x0301)
		binary.BigEndian.PutUint16(out[3:], uint16(len(payload)))
		copy(out[recordHeader:], payload)
		_, err := rl.rw.Write(out)
		bufpool.Put(out)
		return err
	}
	if rl.out.seq >= aeadLimit {
		return ErrKeyLimit
	}
	err := rl.writeSealed(rl.out.nonce(), nil, payload, nil, typ)
	rl.out.seq++ // the nonce is spent even if the transport write failed
	return err
}

// writeSealed seals and writes one application-data record whose inner
// plaintext is head||body||tail||innerType. The parts are gathered into
// a pooled buffer and encrypted in place (dst overlapping plaintext
// exactly, which AES-GCM permits), so callers can hand down framing
// headers and payload separately without assembling them first.
func (rl *recordLayer) writeSealed(nonce []byte, head, body, tail []byte, innerType uint8) error {
	plen := len(head) + len(body) + len(tail) + 1
	n := plen + rl.out.aead.Overhead()
	buf := bufpool.Get(recordHeader + n)
	buf[0] = RecordTypeApplicationData
	binary.BigEndian.PutUint16(buf[1:], 0x0303)
	binary.BigEndian.PutUint16(buf[3:], uint16(n))
	p := buf[recordHeader:recordHeader]
	p = append(p, head...)
	p = append(p, body...)
	p = append(p, tail...)
	p = append(p, innerType)
	rl.out.aead.Seal(buf[:recordHeader], nonce, p, buf[:recordHeader])
	_, err := rl.rw.Write(buf)
	bufpool.Put(buf)
	return err
}

// readRecord returns the next record's (inner) content type and payload.
// ChangeCipherSpec records are skipped transparently.
func (rl *recordLayer) readRecord() (uint8, []byte, error) {
	for {
		hdr, err := rl.fill(recordHeader)
		if err != nil {
			return 0, nil, err
		}
		n := int(binary.BigEndian.Uint16(hdr[3:]))
		if n > MaxCiphertext {
			return 0, nil, ErrRecordOverflow
		}
		full, err := rl.fill(recordHeader + n)
		if err != nil {
			return 0, nil, err
		}
		typ := full[0]
		body := append([]byte(nil), full[recordHeader:recordHeader+n]...)
		rl.consume(recordHeader + n)

		if typ == RecordTypeChangeCipherSpec {
			continue // middlebox-compat CCS: ignore
		}
		if rl.in.aead == nil || typ != RecordTypeApplicationData {
			return typ, body, nil
		}
		if rl.in.seq+rl.in.forgery >= aeadLimit {
			return 0, nil, ErrKeyLimit
		}
		hdrCopy := rl.in.adBuf[:]
		hdrCopy[0], hdrCopy[1], hdrCopy[2] = typ, 0x03, 0x03
		binary.BigEndian.PutUint16(hdrCopy[3:], uint16(n))
		plain, err := rl.in.aead.Open(body[:0], rl.in.nonce(), body, hdrCopy)
		if err != nil {
			rl.in.forgery++
			return 0, nil, ErrBadRecordMAC
		}
		rl.in.seq++
		// Strip zero padding and the inner content type.
		i := len(plain) - 1
		for i >= 0 && plain[i] == 0 {
			i--
		}
		if i < 0 {
			return 0, nil, fmt.Errorf("%w: all-zero plaintext", ErrBadRecordMAC)
		}
		return plain[i], plain[:i], nil
	}
}

// readChunk is the transport read size for the record buffer, and
// rbufSize the buffer's fixed capacity: it always fits the largest
// fill request (one whole record) plus a full transport read after
// compaction, so the buffer is allocated once per connection and
// steady-state reads never allocate.
const (
	readChunk = 8192
	rbufSize  = 2*(MaxCiphertext+recordHeader) + readChunk
)

// fill ensures n unconsumed buffered bytes and returns a view of them.
// The view is valid until the next fill call (a refill may compact the
// buffer in place).
func (rl *recordLayer) fill(n int) ([]byte, error) {
	if rl.buf == nil {
		rl.buf = make([]byte, 0, rbufSize)
	}
	for len(rl.buf)-rl.off < n {
		if rl.off > 0 && cap(rl.buf)-len(rl.buf) < readChunk {
			unread := copy(rl.buf, rl.buf[rl.off:])
			rl.buf = rl.buf[:unread]
			rl.off = 0
		}
		m, err := rl.rw.Read(rl.buf[len(rl.buf):cap(rl.buf)])
		if m > 0 {
			rl.buf = rl.buf[:len(rl.buf)+m]
			continue
		}
		if err != nil {
			return nil, err
		}
	}
	return rl.buf[rl.off : rl.off+n], nil
}

func (rl *recordLayer) consume(n int) {
	rl.off += n
	if rl.off == len(rl.buf) {
		rl.buf = rl.buf[:0]
		rl.off = 0
	}
}

// Alert descriptions we emit or interpret.
const (
	alertCloseNotify     uint8 = 0
	alertHandshakeFail   uint8 = 40
	alertBadCertificate  uint8 = 42
	alertDecryptError    uint8 = 51
	alertProtocolVersion uint8 = 70
	alertInternalError   uint8 = 80
	alertUnexpectedMsg   uint8 = 10
)

// AlertError is a fatal alert received from the peer.
type AlertError struct {
	Description uint8
}

// Error implements error.
func (a *AlertError) Error() string {
	return fmt.Sprintf("tls13: alert %d from peer", a.Description)
}

// sendAlert writes a fatal (or close_notify) alert.
func (rl *recordLayer) sendAlert(desc uint8) error {
	level := uint8(2)
	if desc == alertCloseNotify {
		level = 1
	}
	return rl.writeRecord(RecordTypeAlert, []byte{level, desc})
}
