package tls13

import (
	"bytes"
	"crypto/rand"
	"crypto/x509"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

var testCert *Certificate

func init() {
	var err error
	testCert, err = GenerateSelfSigned("tcpls-test", []string{"server.test"}, nil)
	if err != nil {
		panic(err)
	}
}

func testRoots() *x509.CertPool {
	pool := x509.NewCertPool()
	leaf, _ := testCert.Leaf()
	pool.AddCert(leaf)
	return pool
}

// handshakePair runs a client/server handshake over an in-memory pipe.
func handshakePair(t *testing.T, clientCfg, serverCfg *Config) (*Conn, *Conn) {
	t.Helper()
	cp, sp := bufferedPipe()
	client := Client(cp, clientCfg)
	server := Server(sp, serverCfg)
	errCh := make(chan error, 1)
	go func() { errCh <- server.Handshake() }()
	if err := client.Handshake(); err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func clientConfig() *Config {
	return &Config{ServerName: "server.test", RootCAs: testRoots()}
}

func serverConfig() *Config {
	return &Config{Certificate: testCert}
}

func TestFullHandshakeAndData(t *testing.T) {
	client, server := handshakePair(t, clientConfig(), serverConfig())
	cs := client.ConnectionState()
	if !cs.HandshakeComplete || cs.Resumed {
		t.Fatalf("state: %+v", cs)
	}
	if cs.CipherSuite != TLS_AES_128_GCM_SHA256 {
		t.Fatalf("suite: %s", CipherSuiteName(cs.CipherSuite))
	}
	go func() {
		buf := make([]byte, 64)
		n, _ := server.Read(buf)
		server.Write(bytes.ToUpper(buf[:n]))
	}()
	client.Write([]byte("over tls"))
	buf := make([]byte, 64)
	n, err := client.Read(buf)
	if err != nil || string(buf[:n]) != "OVER TLS" {
		t.Fatalf("echo: %q, %v", buf[:n], err)
	}
}

func TestAES256Suite(t *testing.T) {
	cc := clientConfig()
	cc.CipherSuites = []uint16{TLS_AES_256_GCM_SHA384}
	client, _ := handshakePair(t, cc, serverConfig())
	if client.ConnectionState().CipherSuite != TLS_AES_256_GCM_SHA384 {
		t.Fatal("suite not honored")
	}
}

func TestCertificateRejectedWithoutTrust(t *testing.T) {
	cp, sp := bufferedPipe()
	client := Client(cp, &Config{ServerName: "server.test", RootCAs: x509.NewCertPool()})
	server := Server(sp, serverConfig())
	go server.Handshake()
	if err := client.Handshake(); err == nil {
		t.Fatal("untrusted certificate accepted")
	}
}

func TestWrongServerNameRejected(t *testing.T) {
	cp, sp := bufferedPipe()
	client := Client(cp, &Config{ServerName: "other.test", RootCAs: testRoots()})
	server := Server(sp, serverConfig())
	go server.Handshake()
	if err := client.Handshake(); err == nil {
		t.Fatal("wrong name accepted")
	}
}

func TestALPNNegotiation(t *testing.T) {
	cc := clientConfig()
	cc.ALPN = []string{"h2", "http/1.1"}
	sc := serverConfig()
	sc.ALPN = []string{"http/1.1"}
	client, server := handshakePair(t, cc, sc)
	if client.ConnectionState().ALPN != "http/1.1" || server.ConnectionState().ALPN != "http/1.1" {
		t.Fatalf("alpn: %q / %q", client.ConnectionState().ALPN, server.ConnectionState().ALPN)
	}
}

func TestTCPLSExtensionsRoundTrip(t *testing.T) {
	cc := clientConfig()
	cc.ExtraClientHello = []Extension{{ExtTCPLS, []byte{1, 2, 3}}}
	sc := serverConfig()
	var sawCH []byte
	sc.OnClientHello = func(info ClientHelloInfo) error {
		sawCH = info.TCPLS
		return nil
	}
	sc.EncryptedExtensions = func(info ClientHelloInfo) []Extension {
		return []Extension{{ExtTCPLS, []byte{9, 8, 7, 6}}}
	}
	client, server := handshakePair(t, cc, sc)
	if !bytes.Equal(sawCH, []byte{1, 2, 3}) {
		t.Fatalf("server saw %v", sawCH)
	}
	if !bytes.Equal(client.ConnectionState().PeerTCPLS, []byte{9, 8, 7, 6}) {
		t.Fatalf("client saw %v", client.ConnectionState().PeerTCPLS)
	}
	if !bytes.Equal(server.ConnectionState().PeerTCPLS, []byte{1, 2, 3}) {
		t.Fatalf("server state %v", server.ConnectionState().PeerTCPLS)
	}
}

func TestOnClientHelloReject(t *testing.T) {
	sc := serverConfig()
	sc.OnClientHello = func(info ClientHelloInfo) error {
		return errors.New("go away")
	}
	cp, sp := bufferedPipe()
	client := Client(cp, clientConfig())
	server := Server(sp, sc)
	errCh := make(chan error, 1)
	go func() { errCh <- server.Handshake() }()
	if err := client.Handshake(); err == nil {
		t.Fatal("client handshake succeeded against rejecting server")
	}
	if err := <-errCh; err == nil {
		t.Fatal("server accepted")
	}
}

// sessionFor runs one full handshake and returns a resumable session.
func sessionFor(t *testing.T, serverCfg *Config, maxEarly uint32) *ClientSession {
	t.Helper()
	serverCfg.MaxEarlyData = maxEarly
	cc := clientConfig()
	client, server := handshakePair(t, cc, serverCfg)
	// Tickets arrive as post-handshake messages: trigger a read.
	go server.Write([]byte("x"))
	buf := make([]byte, 8)
	if _, err := client.Read(buf); err != nil {
		t.Fatal(err)
	}
	sessions := client.Sessions()
	if len(sessions) == 0 {
		t.Fatal("no session ticket received")
	}
	return sessions[0]
}

func TestResumption(t *testing.T) {
	sc := serverConfig()
	sess := sessionFor(t, sc, 0)
	cc := clientConfig()
	cc.Session = sess
	client, server := handshakePair(t, cc, sc)
	if !client.ConnectionState().Resumed || !server.ConnectionState().Resumed {
		t.Fatal("session not resumed")
	}
	// Data still flows.
	go server.Write([]byte("resumed"))
	buf := make([]byte, 16)
	n, err := client.Read(buf)
	if err != nil || string(buf[:n]) != "resumed" {
		t.Fatalf("%q %v", buf[:n], err)
	}
}

func TestResumptionWithForeignTicketFallsBack(t *testing.T) {
	scA := serverConfig()
	sess := sessionFor(t, scA, 0)
	// A different server (different ticket key) can't decrypt the ticket;
	// the handshake must fall back to a full one.
	scB := serverConfig()
	var kb [32]byte
	rand.Read(kb[:])
	scB.TicketKey = kb
	cc := clientConfig()
	cc.Session = sess
	client, _ := handshakePair(t, cc, scB)
	if client.ConnectionState().Resumed {
		t.Fatal("resumed with a foreign ticket")
	}
}

func TestEarlyData(t *testing.T) {
	sc := serverConfig()
	sess := sessionFor(t, sc, 16384)
	if sess.MaxEarlyData != 16384 {
		t.Fatalf("ticket maxEarly = %d", sess.MaxEarlyData)
	}
	cc := clientConfig()
	cc.Session = sess
	cc.EarlyData = []byte("zero rtt payload")
	client, server := handshakePair(t, cc, sc)
	if !client.ConnectionState().EarlyDataAccepted {
		t.Fatal("early data not accepted")
	}
	if got := server.EarlyData(); string(got) != "zero rtt payload" {
		t.Fatalf("server early data: %q", got)
	}
	// 1-RTT data still works after.
	go client.Write([]byte("post"))
	buf := make([]byte, 8)
	n, err := server.Read(buf)
	if err != nil || string(buf[:n]) != "post" {
		t.Fatalf("%q %v", buf[:n], err)
	}
}

func TestEarlyDataReplayRejected(t *testing.T) {
	sc := serverConfig()
	sess := sessionFor(t, sc, 16384)
	cc := clientConfig()
	cc.Session = sess
	cc.EarlyData = []byte("once")
	client, _ := handshakePair(t, cc, sc)
	if !client.ConnectionState().EarlyDataAccepted {
		t.Fatal("first use rejected")
	}
	// Same ticket again: anti-replay must reject 0-RTT (handshake still
	// completes, resumed, but without early data).
	cc2 := clientConfig()
	cc2.Session = sess
	cc2.EarlyData = []byte("again")
	client2, server2 := handshakePair(t, cc2, sc)
	if client2.ConnectionState().EarlyDataAccepted {
		t.Fatal("replayed early data accepted")
	}
	if len(server2.EarlyData()) != 0 {
		t.Fatal("server kept replayed early bytes")
	}
}

func TestEarlyDataWithoutTicketFails(t *testing.T) {
	cc := clientConfig()
	cc.EarlyData = []byte("no ticket")
	cp, _ := bufferedPipe()
	client := Client(cp, cc)
	if err := client.Handshake(); err == nil {
		t.Fatal("early data without session accepted")
	}
}

func TestLargeTransferFragmentation(t *testing.T) {
	client, server := handshakePair(t, clientConfig(), serverConfig())
	data := make([]byte, 100000)
	rand.Read(data)
	go func() {
		client.Write(data)
		client.CloseWrite()
	}()
	var got []byte
	buf := make([]byte, 4096)
	for {
		n, err := server.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("corruption: %d vs %d bytes", len(got), len(data))
	}
}

func TestRecordAPI(t *testing.T) {
	client, server := handshakePair(t, clientConfig(), serverConfig())
	go client.WriteRecord([]byte("record-one"))
	rec, err := server.ReadRecord()
	if err != nil || string(rec) != "record-one" {
		t.Fatalf("%q %v", rec, err)
	}
	// Record boundaries are preserved (unlike the byte stream).
	go func() {
		client.WriteRecord([]byte("a"))
		client.WriteRecord([]byte("bb"))
	}()
	r1, _ := server.ReadRecord()
	r2, _ := server.ReadRecord()
	if string(r1) != "a" || string(r2) != "bb" {
		t.Fatalf("boundaries lost: %q %q", r1, r2)
	}
}

func TestExportSecretAgreement(t *testing.T) {
	client, server := handshakePair(t, clientConfig(), serverConfig())
	a, err := client.ExportSecret("tcpls join", []byte("ctx"), 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := server.ExportSecret("tcpls join", []byte("ctx"), 32)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("exporters disagree")
	}
	c, _ := client.ExportSecret("tcpls join", []byte("other"), 32)
	if bytes.Equal(a, c) {
		t.Fatal("exporter ignores context")
	}
	rc, err := client.ResumptionSecret()
	rs, err2 := server.ResumptionSecret()
	if err != nil || err2 != nil || !bytes.Equal(rc, rs) {
		t.Fatal("resumption secrets disagree")
	}
}

func TestAppSecretsExposed(t *testing.T) {
	client, server := handshakePair(t, clientConfig(), serverConfig())
	cr, cw, suite, err := client.AppTrafficSecrets()
	if err != nil {
		t.Fatal(err)
	}
	sr, sw, suite2, err := server.AppTrafficSecrets()
	if err != nil {
		t.Fatal(err)
	}
	if suite != suite2 {
		t.Fatal("suite mismatch")
	}
	if !bytes.Equal(cr, sw) || !bytes.Equal(cw, sr) {
		t.Fatal("traffic secrets do not cross-match")
	}
}

func TestCloseNotify(t *testing.T) {
	client, server := handshakePair(t, clientConfig(), serverConfig())
	go client.CloseWrite()
	buf := make([]byte, 8)
	if _, err := server.Read(buf); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReadBeforeHandshake(t *testing.T) {
	cp, _ := bufferedPipe()
	c := Client(cp, clientConfig())
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrHandshakeRequired) {
		t.Fatalf("got %v", err)
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrHandshakeRequired) {
		t.Fatalf("got %v", err)
	}
	if _, _, _, err := c.AppTrafficSecrets(); !errors.Is(err, ErrHandshakeRequired) {
		t.Fatalf("got %v", err)
	}
}

// tamperConn flips a byte in the nth record flowing client -> server.
type tamperConn struct {
	net.Conn
	n     int
	count int
}

func (tc *tamperConn) Write(p []byte) (int, error) {
	tc.count++
	if tc.count == tc.n && len(p) > 20 {
		q := append([]byte(nil), p...)
		q[len(q)-1] ^= 0x01
		return tc.Conn.Write(q)
	}
	return tc.Conn.Write(p)
}

func TestTamperedRecordDetected(t *testing.T) {
	cp, sp := bufferedPipe()
	client := Client(&tamperConn{Conn: cp, n: 100}, clientConfig()) // no tampering during handshake
	server := Server(sp, serverConfig())
	go server.Handshake()
	if err := client.Handshake(); err != nil {
		t.Fatal(err)
	}
	// Now tamper with the next client record.
	client.conn.(*tamperConn).n = client.conn.(*tamperConn).count + 1
	go client.Write([]byte("tampered"))
	_, err := server.Read(make([]byte, 32))
	if !errors.Is(err, ErrBadRecordMAC) {
		t.Fatalf("want ErrBadRecordMAC, got %v", err)
	}
}

func TestHandshakeKeyScheduleVectors(t *testing.T) {
	// Sanity-pin HKDF-Expand-Label against RFC 8448 §3 (simple 1-RTT
	// handshake): derive the early secret from a zero PSK and check the
	// "derived" output matches the published vector.
	s := suites[TLS_AES_128_GCM_SHA256]
	early := s.extract(nil, nil)
	derived := s.deriveSecret(early, "derived", s.emptyHash())
	want := "6f2615a108c702c5678f54fc9dbab69716c076189c48250cebeac3576c3611ba"
	got := hexStr(derived)
	if got != want {
		t.Fatalf("derived = %s, want %s", got, want)
	}
}

func hexStr(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, len(b)*2)
	for _, x := range b {
		out = append(out, digits[x>>4], digits[x&0xf])
	}
	return string(out)
}

func TestConcurrentDuplex(t *testing.T) {
	client, server := handshakePair(t, clientConfig(), serverConfig())
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 1024)
		for i := 0; i < 50; i++ {
			if _, err := server.Read(buf); err != nil {
				t.Error(err)
				return
			}
			if _, err := server.Write([]byte("pong")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	buf := make([]byte, 1024)
	for i := 0; i < 50; i++ {
		if _, err := client.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Read(buf); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("duplex deadlock")
	}
}
