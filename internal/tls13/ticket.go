package tls13

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"sync"
	"time"
)

// ticketPayload is the server-side state sealed inside a session ticket.
type ticketPayload struct {
	suiteID      uint16
	psk          []byte
	maxEarlyData uint32
	issuedAt     int64 // unix seconds
}

// ticketKeys holds the server's sealing AEAD.
type ticketKeys struct {
	aead cipher.AEAD
}

// defaultTicketLifetime is 7 days, the RFC 8446 maximum.
const defaultTicketLifetime = 7 * 24 * time.Hour

func (cfg *Config) ticketKeys() *ticketKeys {
	cfg.ticketOnce.Do(func() {
		key := cfg.TicketKey
		var zero [32]byte
		if key == zero {
			if _, err := rand.Read(key[:]); err != nil {
				panic("tls13: rand: " + err.Error())
			}
		}
		block, err := aes.NewCipher(key[:16])
		if err != nil {
			panic(err)
		}
		aead, err := cipher.NewGCM(block)
		if err != nil {
			panic(err)
		}
		cfg.ticketState = &ticketKeys{aead: aead}
	})
	return cfg.ticketState
}

// sealTicket encrypts the payload into an opaque ticket identity.
func (cfg *Config) sealTicket(tp *ticketPayload) []byte {
	tk := cfg.ticketKeys()
	var plain []byte
	plain = binary.BigEndian.AppendUint16(plain, tp.suiteID)
	plain = binary.BigEndian.AppendUint32(plain, tp.maxEarlyData)
	plain = binary.BigEndian.AppendUint64(plain, uint64(tp.issuedAt))
	plain = append(plain, uint8(len(tp.psk)))
	plain = append(plain, tp.psk...)
	nonce := randomBytes(12)
	out := append([]byte(nil), nonce...)
	return tk.aead.Seal(out, nonce, plain, nil)
}

// decryptTicket opens a ticket identity; reports false for garbage,
// foreign, or expired tickets.
func (cfg *Config) decryptTicket(identity []byte) (*ticketPayload, bool) {
	tk := cfg.ticketKeys()
	if len(identity) < 12 {
		return nil, false
	}
	plain, err := tk.aead.Open(nil, identity[:12], identity[12:], nil)
	if err != nil {
		return nil, false
	}
	if len(plain) < 15 {
		return nil, false
	}
	tp := &ticketPayload{
		suiteID:      binary.BigEndian.Uint16(plain),
		maxEarlyData: binary.BigEndian.Uint32(plain[2:]),
		issuedAt:     int64(binary.BigEndian.Uint64(plain[6:])),
	}
	n := int(plain[14])
	if len(plain) != 15+n {
		return nil, false
	}
	tp.psk = plain[15:]
	if time.Since(time.Unix(tp.issuedAt, 0)) > defaultTicketLifetime {
		return nil, false
	}
	return tp, true
}

// replayShards splits the 0-RTT anti-replay set: ticket identities are
// AEAD ciphertext (uniformly distributed), so a cheap FNV mix spreads
// them evenly and concurrent resumption handshakes only collide on a
// lock when they land in the same shard — a Config-global mutex here
// serializes every 0-RTT attempt on a busy listener.
const replayShards = 16

// replayFilter is the sharded single-use set behind markTicketUsed.
type replayFilter struct {
	shards [replayShards]replayShard
}

type replayShard struct {
	mu   sync.Mutex
	used map[string]bool
}

func (f *replayFilter) shardFor(identity []byte) *replayShard {
	// FNV-1a over the identity; any byte slice hashes, including empty.
	h := uint32(2166136261)
	for _, b := range identity {
		h ^= uint32(b)
		h *= 16777619
	}
	return &f.shards[h&(replayShards-1)]
}

func (f *replayFilter) markUsed(identity []byte) bool {
	sh := f.shardFor(identity)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.used == nil {
		sh.used = make(map[string]bool)
	}
	key := string(identity)
	if sh.used[key] {
		return false
	}
	sh.used[key] = true
	return true
}

// markTicketUsed implements single-use anti-replay for 0-RTT: the first
// caller wins, replays are rejected. The window is the Config's lifetime.
func (cfg *Config) markTicketUsed(identity []byte) bool {
	return cfg.replay.markUsed(identity)
}

// sendSessionTicket issues one NewSessionTicket post-handshake.
func (c *Conn) sendSessionTicket() error {
	nonce := randomBytes(8)
	psk := c.suite.expandLabel(c.resumptionMS, "resumption", nonce, c.suite.hashLen)
	identity := c.cfg.sealTicket(&ticketPayload{
		suiteID:      c.suite.id,
		psk:          psk,
		maxEarlyData: c.cfg.MaxEarlyData,
		issuedAt:     time.Now().Unix(),
	})
	ageAddBytes := randomBytes(4)
	t := &sessionTicket{
		lifetime:     uint32(defaultTicketLifetime / time.Second),
		ageAdd:       binary.BigEndian.Uint32(ageAddBytes),
		nonce:        nonce,
		ticket:       identity,
		maxEarlyData: c.cfg.MaxEarlyData,
	}
	return c.writeHandshakeRecord(t.marshal())
}
