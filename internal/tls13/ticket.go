package tls13

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"time"
)

// ticketPayload is the server-side state sealed inside a session ticket.
type ticketPayload struct {
	suiteID      uint16
	psk          []byte
	maxEarlyData uint32
	issuedAt     int64 // unix seconds
}

// ticketKeys holds the server's sealing AEAD.
type ticketKeys struct {
	aead cipher.AEAD
}

// defaultTicketLifetime is 7 days, the RFC 8446 maximum.
const defaultTicketLifetime = 7 * 24 * time.Hour

func (cfg *Config) ticketKeys() *ticketKeys {
	cfg.ticketOnce.Do(func() {
		key := cfg.TicketKey
		var zero [32]byte
		if key == zero {
			if _, err := rand.Read(key[:]); err != nil {
				panic("tls13: rand: " + err.Error())
			}
		}
		block, err := aes.NewCipher(key[:16])
		if err != nil {
			panic(err)
		}
		aead, err := cipher.NewGCM(block)
		if err != nil {
			panic(err)
		}
		cfg.ticketState = &ticketKeys{aead: aead}
	})
	return cfg.ticketState
}

// sealTicket encrypts the payload into an opaque ticket identity.
func (cfg *Config) sealTicket(tp *ticketPayload) []byte {
	tk := cfg.ticketKeys()
	var plain []byte
	plain = binary.BigEndian.AppendUint16(plain, tp.suiteID)
	plain = binary.BigEndian.AppendUint32(plain, tp.maxEarlyData)
	plain = binary.BigEndian.AppendUint64(plain, uint64(tp.issuedAt))
	plain = append(plain, uint8(len(tp.psk)))
	plain = append(plain, tp.psk...)
	nonce := randomBytes(12)
	out := append([]byte(nil), nonce...)
	return tk.aead.Seal(out, nonce, plain, nil)
}

// decryptTicket opens a ticket identity; reports false for garbage,
// foreign, or expired tickets.
func (cfg *Config) decryptTicket(identity []byte) (*ticketPayload, bool) {
	tk := cfg.ticketKeys()
	if len(identity) < 12 {
		return nil, false
	}
	plain, err := tk.aead.Open(nil, identity[:12], identity[12:], nil)
	if err != nil {
		return nil, false
	}
	if len(plain) < 15 {
		return nil, false
	}
	tp := &ticketPayload{
		suiteID:      binary.BigEndian.Uint16(plain),
		maxEarlyData: binary.BigEndian.Uint32(plain[2:]),
		issuedAt:     int64(binary.BigEndian.Uint64(plain[6:])),
	}
	n := int(plain[14])
	if len(plain) != 15+n {
		return nil, false
	}
	tp.psk = plain[15:]
	if time.Since(time.Unix(tp.issuedAt, 0)) > defaultTicketLifetime {
		return nil, false
	}
	return tp, true
}

// markTicketUsed implements single-use anti-replay for 0-RTT: the first
// caller wins, replays are rejected. The window is the Config's lifetime.
func (cfg *Config) markTicketUsed(identity []byte) bool {
	cfg.replayMu.Lock()
	defer cfg.replayMu.Unlock()
	if cfg.replayUsed == nil {
		cfg.replayUsed = make(map[string]bool)
	}
	key := string(identity)
	if cfg.replayUsed[key] {
		return false
	}
	cfg.replayUsed[key] = true
	return true
}

// sendSessionTicket issues one NewSessionTicket post-handshake.
func (c *Conn) sendSessionTicket() error {
	nonce := randomBytes(8)
	psk := c.suite.expandLabel(c.resumptionMS, "resumption", nonce, c.suite.hashLen)
	identity := c.cfg.sealTicket(&ticketPayload{
		suiteID:      c.suite.id,
		psk:          psk,
		maxEarlyData: c.cfg.MaxEarlyData,
		issuedAt:     time.Now().Unix(),
	})
	ageAddBytes := randomBytes(4)
	t := &sessionTicket{
		lifetime:     uint32(defaultTicketLifetime / time.Second),
		ageAdd:       binary.BigEndian.Uint32(ageAddBytes),
		nonce:        nonce,
		ticket:       identity,
		maxEarlyData: c.cfg.MaxEarlyData,
	}
	return c.writeHandshakeRecord(t.marshal())
}
