package tls13

import (
	"io"
	"net"
	"sync"
	"time"
)

// bufferedPipe returns an in-memory full-duplex connection pair with
// buffered writes, matching TCP semantics (net.Pipe is synchronous,
// which deadlocks against post-handshake ticket writes).
func bufferedPipe() (net.Conn, net.Conn) {
	a2b := &pipeBuf{}
	b2a := &pipeBuf{}
	a2b.cond = sync.NewCond(&a2b.mu)
	b2a.cond = sync.NewCond(&b2a.mu)
	return &pipeEnd{r: b2a, w: a2b}, &pipeEnd{r: a2b, w: b2a}
}

type pipeBuf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	data   []byte
	closed bool
}

type pipeEnd struct {
	r, w *pipeBuf
}

func (p *pipeEnd) Read(b []byte) (int, error) {
	p.r.mu.Lock()
	defer p.r.mu.Unlock()
	for len(p.r.data) == 0 && !p.r.closed {
		p.r.cond.Wait()
	}
	if len(p.r.data) == 0 {
		return 0, io.EOF
	}
	n := copy(b, p.r.data)
	p.r.data = p.r.data[n:]
	return n, nil
}

func (p *pipeEnd) Write(b []byte) (int, error) {
	p.w.mu.Lock()
	defer p.w.mu.Unlock()
	if p.w.closed {
		return 0, io.ErrClosedPipe
	}
	p.w.data = append(p.w.data, b...)
	p.w.cond.Broadcast()
	return len(b), nil
}

func (p *pipeEnd) Close() error {
	for _, buf := range []*pipeBuf{p.r, p.w} {
		buf.mu.Lock()
		buf.closed = true
		buf.cond.Broadcast()
		buf.mu.Unlock()
	}
	return nil
}

func (p *pipeEnd) LocalAddr() net.Addr                { return pipeAddr{} }
func (p *pipeEnd) RemoteAddr() net.Addr               { return pipeAddr{} }
func (p *pipeEnd) SetDeadline(t time.Time) error      { return nil }
func (p *pipeEnd) SetReadDeadline(t time.Time) error  { return nil }
func (p *pipeEnd) SetWriteDeadline(t time.Time) error { return nil }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }
