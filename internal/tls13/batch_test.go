package tls13

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
)

// rwPair glues a separate Reader and Writer into the io.ReadWriter the
// record layer wants.
type rwPair struct {
	io.Reader
	io.Writer
}

// fixedKeyLayer builds a record layer with deterministic keys over the
// given transport, plus matching stream contexts — the fixture for
// differential wire comparisons, where both sides must share exact
// cipher state without a (randomized) handshake.
func fixedKeyLayer(rw io.ReadWriter, streamIDs ...uint32) *recordLayer {
	key := bytes.Repeat([]byte{0x42}, 16)
	iv := bytes.Repeat([]byte{0x24}, 12)
	block, err := aes.NewCipher(key)
	if err != nil {
		panic(err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		panic(err)
	}
	rl := &recordLayer{rw: rw}
	rl.out.aead, rl.out.iv = gcm, iv
	rl.in.aead, rl.in.iv = gcm, iv
	for _, id := range streamIDs {
		sIV := bytes.Repeat([]byte{byte(id) ^ 0x5a}, 12)
		rl.out.addContext(id, sIV)
		rl.in.addContext(id, sIV)
	}
	return rl
}

// writeSingle replays the exact WriteRecordParts logic (minus the Conn
// locking) one record at a time — the reference implementation the
// batch path must match byte for byte.
func writeSingle(rl *recordLayer, r OutRecord) error {
	if len(r.Head)+len(r.Body)+len(r.Tail) > MaxPlaintext {
		return ErrRecordOverflow
	}
	if r.Ctx == DefaultContext {
		if rl.out.seq >= aeadLimit {
			return ErrKeyLimit
		}
		err := rl.writeSealed(rl.out.nonce(), r.Head, r.Body, r.Tail, RecordTypeApplicationData)
		rl.out.seq++
		return err
	}
	return rl.writeRecordContextParts(r.Ctx, r.Head, r.Body, r.Tail)
}

// randomRecords generates a batch with adversarial shape variety:
// empty, tiny, cwnd-sized and limit-sized payloads, random part splits
// and random context selection.
func randomRecords(rng *rand.Rand, n int, ctxs []uint32) []OutRecord {
	recs := make([]OutRecord, n)
	for i := range recs {
		var size int
		switch rng.Intn(6) {
		case 0:
			size = rng.Intn(4) // empty-ish
		case 1:
			size = MaxPlaintext - rng.Intn(4) // at the record limit
		case 2:
			size = 4096 // the cwnd-matched shape core produces
		default:
			size = rng.Intn(2000) + 1
		}
		payload := make([]byte, size)
		rng.Read(payload)
		// Random three-way split into head|body|tail.
		a := rng.Intn(size + 1)
		b := a + rng.Intn(size-a+1)
		recs[i] = OutRecord{
			Ctx:  ctxs[rng.Intn(len(ctxs))],
			Head: payload[:a],
			Body: payload[a:b],
			Tail: payload[b:],
		}
	}
	return recs
}

// TestBatchSealMatchesSingleWire is the differential property test: for
// random batch shapes, record sizes and context mixes, the batched
// sealer must emit wire bytes identical to the single-record path, and
// the batch opener must return the identical plaintexts and context
// ids. Seeds are logged for replay.
func TestBatchSealMatchesSingleWire(t *testing.T) {
	ctxs := []uint32{DefaultContext, 3, 9}
	for trial := 0; trial < 6; trial++ {
		seed := time.Now().UnixNano() + int64(trial)*104729
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Logf("seed=%d", seed)
			rng := rand.New(rand.NewSource(seed))

			var wireSingle, wireBatch bytes.Buffer
			rlS := fixedKeyLayer(&wireSingle, 3, 9)
			rlB := fixedKeyLayer(&wireBatch, 3, 9)

			var all []OutRecord
			for round := 0; round < 8; round++ {
				recs := randomRecords(rng, 1+rng.Intn(9), ctxs)
				for _, r := range recs {
					if err := writeSingle(rlS, r); err != nil {
						t.Fatalf("seed=%d single write: %v", seed, err)
					}
				}
				n, err := rlB.writeSealedBatch(recs)
				if err != nil || n != len(recs) {
					t.Fatalf("seed=%d batch write: n=%d err=%v", seed, n, err)
				}
				all = append(all, recs...)
			}

			if !bytes.Equal(wireSingle.Bytes(), wireBatch.Bytes()) {
				t.Fatalf("seed=%d: batched wire differs from single-record wire (%d vs %d bytes)",
					seed, wireSingle.Len(), wireBatch.Len())
			}

			// Open the batched wire and compare plaintexts + contexts.
			rlR := fixedKeyLayer(&wireBatch, 3, 9)
			for i, want := range all {
				id, typ, payload, err := rlR.readRecordAny()
				if err != nil {
					t.Fatalf("seed=%d record %d: open: %v", seed, i, err)
				}
				if typ != RecordTypeApplicationData {
					t.Fatalf("seed=%d record %d: type %d", seed, i, typ)
				}
				if id != want.Ctx {
					t.Fatalf("seed=%d record %d: ctx %d want %d", seed, i, id, want.Ctx)
				}
				full := append(append(append([]byte{}, want.Head...), want.Body...), want.Tail...)
				if !bytes.Equal(payload, full) {
					t.Fatalf("seed=%d record %d: payload mismatch (%d vs %d bytes)",
						seed, i, len(payload), len(full))
				}
				bufpool.Put(payload)
			}
		})
	}
}

// TestBatchKeyLimitMidBatch pins behaviour at the AEAD usage limit
// crossing inside a batch: the records before the boundary are sealed
// and on the wire, the rest are refused with ErrKeyLimit, and the
// receiver opens exactly the sealed prefix.
func TestBatchKeyLimitMidBatch(t *testing.T) {
	var wire bytes.Buffer
	rl := fixedKeyLayer(&wire)
	rl.out.seq = aeadLimit - 2

	recs := make([]OutRecord, 5)
	for i := range recs {
		recs[i] = OutRecord{Ctx: DefaultContext, Body: []byte{byte(i), 1, 2, 3}}
	}
	n, err := rl.writeSealedBatch(recs)
	if n != 2 || !errors.Is(err, ErrKeyLimit) {
		t.Fatalf("n=%d err=%v, want 2, ErrKeyLimit", n, err)
	}

	rlR := fixedKeyLayer(&wire)
	rlR.in.seq = aeadLimit - 2
	for i := 0; i < 2; i++ {
		_, _, payload, err := rlR.readRecordAny()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if payload[0] != byte(i) {
			t.Fatalf("record %d: got marker %d", i, payload[0])
		}
		bufpool.Put(payload)
	}
	if wire.Len() != 0 {
		t.Fatalf("%d stray wire bytes after the limit", wire.Len())
	}

	// Same boundary on a stream context.
	var wire2 bytes.Buffer
	rl2 := fixedKeyLayer(&wire2, 7)
	rl2.out.context(7).seq = aeadLimit - 1
	recs2 := []OutRecord{
		{Ctx: 7, Body: []byte("ok")},
		{Ctx: 7, Body: []byte("over")},
		{Ctx: DefaultContext, Body: []byte("never")},
	}
	n, err = rl2.writeSealedBatch(recs2)
	if n != 1 || !errors.Is(err, ErrKeyLimit) {
		t.Fatalf("stream ctx: n=%d err=%v, want 1, ErrKeyLimit", n, err)
	}
}

// TestBatchSpillsOverStagingBuffer checks a batch bigger than the
// staging buffer flushes mid-batch and still produces the identical
// wire stream.
func TestBatchSpillsOverStagingBuffer(t *testing.T) {
	var wireSingle, wireBatch bytes.Buffer
	rlS := fixedKeyLayer(&wireSingle)
	rlB := fixedKeyLayer(&wireBatch)

	// 6 max-size records ≈ 100KB sealed — does not fit 64K staging.
	payload := bytes.Repeat([]byte{0xab}, MaxPlaintext-1)
	var recs []OutRecord
	for i := 0; i < 6; i++ {
		recs = append(recs, OutRecord{Ctx: DefaultContext, Body: payload})
	}
	for _, r := range recs {
		if err := writeSingle(rlS, r); err != nil {
			t.Fatal(err)
		}
	}
	n, err := rlB.writeSealedBatch(recs)
	if n != 6 || err != nil {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !bytes.Equal(wireSingle.Bytes(), wireBatch.Bytes()) {
		t.Fatal("spilled batch wire differs from single-record wire")
	}
}

// TestBatchReadStopsAtDefaultContext pins the ordering contract the
// TCPLS core depends on: default-context records can carry control
// frames that register new crypto contexts, so a batch read must end
// at one — records behind it stay buffered until the caller has
// processed it. Draining past it would trial-open later records
// against a stale context set and drop them as undecryptable.
func TestBatchReadStopsAtDefaultContext(t *testing.T) {
	client, server := handshakePair(t, clientConfig(), serverConfig())
	for _, c := range []*Conn{client, server} {
		if err := c.AddStreamContext(4); err != nil {
			t.Fatal(err)
		}
	}
	recs := []OutRecord{
		{Ctx: 4, Body: []byte("data-0")},
		{Ctx: 4, Body: []byte("data-1")},
		{Ctx: DefaultContext, Body: []byte("control")},
		{Ctx: 4, Body: []byte("data-2")},
	}
	if n, err := server.WriteRecordBatch(recs); n != len(recs) || err != nil {
		t.Fatalf("write batch: n=%d err=%v", n, err)
	}
	buf := make([]InRecord, 8)
	n, err := client.ReadRecordContextBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	// The whole burst is buffered (one transport write), yet the batch
	// must stop at the default-context record even with room left.
	if n != 3 || buf[2].Ctx != DefaultContext {
		t.Fatalf("first drain n=%d lastCtx=%d, want 3 ending at the default context", n, buf[n-1].Ctx)
	}
	for i := 0; i < n; i++ {
		bufpool.Put(buf[i].Payload)
	}
	n, err = client.ReadRecordContextBatch(buf)
	if err != nil || n != 1 || buf[0].Ctx != 4 || !bytes.Equal(buf[0].Payload, []byte("data-2")) {
		t.Fatalf("second drain n=%d err=%v, want the trailing data record", n, err)
	}
	bufpool.Put(buf[0].Payload)
}

// TestBatchReadDrainsBurst exercises the Conn-level batch read over a
// real handshaked pair: a burst lands in one ReadRecordContextBatch
// call (modulo transport fragmentation), with payload and context
// fidelity, including post-handshake ticket records arriving mid-read.
func TestBatchReadDrainsBurst(t *testing.T) {
	client, server := handshakePair(t, clientConfig(), serverConfig())
	if err := client.AddStreamContext(4); err != nil {
		t.Fatal(err)
	}
	if err := server.AddStreamContext(4); err != nil {
		t.Fatal(err)
	}

	recs := []OutRecord{
		{Ctx: DefaultContext, Body: []byte("control-0")},
		{Ctx: 4, Body: bytes.Repeat([]byte{1}, 4096)},
		{Ctx: 4, Body: bytes.Repeat([]byte{2}, 4096)},
		{Ctx: DefaultContext, Body: []byte("control-1")},
		{Ctx: 4, Body: bytes.Repeat([]byte{3}, 4096)},
	}
	if n, err := server.WriteRecordBatch(recs); n != len(recs) || err != nil {
		t.Fatalf("write batch: n=%d err=%v", n, err)
	}

	// The client side also absorbs the server's NewSessionTicket
	// records transparently during the drain.
	var got []InRecord
	buf := make([]InRecord, 8)
	for len(got) < len(recs) {
		n, err := client.ReadRecordContextBatch(buf)
		if err != nil {
			t.Fatalf("batch read after %d records: %v", len(got), err)
		}
		got = append(got, buf[:n]...)
	}
	for i, want := range recs {
		if got[i].Ctx != want.Ctx {
			t.Fatalf("record %d: ctx %d want %d", i, got[i].Ctx, want.Ctx)
		}
		if !bytes.Equal(got[i].Payload, want.Body) {
			t.Fatalf("record %d: payload mismatch", i)
		}
		bufpool.Put(got[i].Payload)
	}
}

// TestBatchWriteSteadyStateAllocs is the alloc gate for the batched
// sender: sealing a 4-record cwnd-shaped burst must not allocate.
func TestBatchWriteSteadyStateAllocs(t *testing.T) {
	rl := fixedKeyLayer(rwPair{bytes.NewReader(nil), io.Discard})
	body := bytes.Repeat([]byte{0x17}, 4096)
	head := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	recs := []OutRecord{
		{Ctx: DefaultContext, Head: head, Body: body},
		{Ctx: DefaultContext, Head: head, Body: body},
		{Ctx: DefaultContext, Head: head, Body: body},
		{Ctx: DefaultContext, Head: head, Body: body},
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := rl.writeSealedBatch(recs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("batched seal allocates %.1f/op, want 0", allocs)
	}
}

// FuzzBatchOpenFraming feeds arbitrary bytes to the batch-open framing
// path (recordBuffered + readRecordAny drain loop) over keyed state: no
// input may panic, loop forever, or smuggle a record through with a bad
// tag.
func FuzzBatchOpenFraming(f *testing.F) {
	// Seed with a genuine sealed batch, a truncation and raw noise.
	var wire bytes.Buffer
	rl := fixedKeyLayer(&wire, 5)
	rl.writeSealedBatch([]OutRecord{
		{Ctx: DefaultContext, Body: []byte("seed-record-one")},
		{Ctx: 5, Body: bytes.Repeat([]byte{9}, 600)},
	})
	valid := append([]byte(nil), wire.Bytes()...)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{23, 3, 3, 0, 1, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 300))

	f.Fuzz(func(t *testing.T, data []byte) {
		rl := fixedKeyLayer(rwPair{bytes.NewReader(data), io.Discard}, 5)
		for i := 0; i < 64; i++ {
			if i > 0 && !rl.recordBuffered() {
				break // batch drain stops exactly where blocking starts
			}
			_, typ, payload, err := rl.readRecordAny()
			if err != nil {
				return // framing/MAC rejection is the expected outcome
			}
			if typ == RecordTypeApplicationData && payload != nil {
				bufpool.Put(payload)
			}
		}
	})
}
