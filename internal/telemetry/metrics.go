package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is an expvar-style metrics registry: named vars backed by
// atomics, readable at any time without stopping the stack, exported
// as JSON (WriteJSON / Handler). Names are dot-separated paths; the
// convention across the repo is
//
//	tcp.<host>.<counter>        stack-wide TCP counters
//	netsim.link.<name>.<ctr>    per-link emulator counters
//	record.codec.<ctr>          record codec counters
//	session.<n>.<ctr>           per-session counters
//	session.<n>.path.<id>.<g>   per-path gauges
//
// Get-or-create accessors (Counter, Gauge, Histogram) make wiring
// cheap: layers ask for their vars by name and share them naturally.
type Registry struct {
	mu   sync.RWMutex
	vars map[string]any
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{vars: make(map[string]any)}
}

// Counter returns the counter registered under name, creating it if
// needed. Panics if the name is taken by a different var type —
// that is a wiring bug, not a runtime condition.
func (r *Registry) Counter(name string) *Counter {
	v := r.getOrCreate(name, func() any { return new(Counter) })
	c, ok := v.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q registered as %T, not Counter", name, v))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	v := r.getOrCreate(name, func() any { return new(Gauge) })
	g, ok := v.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q registered as %T, not Gauge", name, v))
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// if needed.
func (r *Registry) Histogram(name string) *Histogram {
	v := r.getOrCreate(name, func() any { return new(Histogram) })
	h, ok := v.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q registered as %T, not Histogram", name, v))
	}
	return h
}

// Func registers a pull-style gauge: fn is invoked at export time.
// Use it to expose values that already live elsewhere (atomic stack
// counters, health snapshots) without double bookkeeping.
func (r *Registry) Func(name string, fn func() int64) {
	r.mu.Lock()
	r.vars[name] = FuncVar(fn)
	r.mu.Unlock()
}

// Unregister removes the var with the given name.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	delete(r.vars, name)
	r.mu.Unlock()
}

// UnregisterPrefix removes every var whose name starts with prefix —
// how per-path vars are retired when a path closes.
func (r *Registry) UnregisterPrefix(prefix string) {
	r.mu.Lock()
	for name := range r.vars {
		if strings.HasPrefix(name, prefix) {
			delete(r.vars, name)
		}
	}
	r.mu.Unlock()
}

func (r *Registry) getOrCreate(name string, mk func() any) any {
	r.mu.RLock()
	v, ok := r.vars[name]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[name]; ok {
		return v
	}
	v = mk()
	r.vars[name] = v
	return v
}

// Len returns the number of registered vars — the cardinality bound
// the churn/overload gauntlets assert against.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.vars)
}

// Names returns the sorted names of every registered var.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.vars))
	for name := range r.vars {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Snapshot returns the current value of every var. Counters and
// gauges map to int64; histograms map to HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	names := make([]string, 0, len(r.vars))
	vars := make(map[string]any, len(r.vars))
	for name, v := range r.vars {
		names = append(names, name)
		vars[name] = v
	}
	r.mu.RUnlock()
	out := make(map[string]any, len(names))
	for _, name := range names {
		switch v := vars[name].(type) {
		case *Counter:
			out[name] = int64(v.Value())
		case *Gauge:
			out[name] = v.Value()
		case *Histogram:
			out[name] = v.Snapshot()
		case FuncVar:
			out[name] = v()
		}
	}
	return out
}

// WriteJSON writes every var as one sorted JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf []byte
	buf = append(buf, "{\n"...)
	for i, name := range names {
		if i > 0 {
			buf = append(buf, ",\n"...)
		}
		buf = append(buf, "  "...)
		buf = appendJSONString(buf, name)
		buf = append(buf, ": "...)
		switch v := snap[name].(type) {
		case int64:
			buf = fmt.Appendf(buf, "%d", v)
		case HistogramSnapshot:
			buf = fmt.Appendf(buf, `{"count":%d,"sum":%d,"min":%d,"max":%d,"mean":%.1f,"p50":%d,"p90":%d,"p99":%d}`,
				v.Count, v.Sum, v.Min, v.Max, v.Mean, v.P50, v.P90, v.P99)
		default:
			buf = append(buf, "null"...)
		}
	}
	buf = append(buf, "\n}\n"...)
	_, err := w.Write(buf)
	return err
}

// --- var types ---

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

func (c *Counter) Inc()          { c.v.Add(1) }
func (c *Counter) Add(n uint64)  { c.v.Add(n) }
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

func (g *Gauge) Set(n int64)  { g.v.Store(n) }
func (g *Gauge) Add(n int64)  { g.v.Add(n) }
func (g *Gauge) Value() int64 { return g.v.Load() }

// SetMax raises the gauge to n if n is larger — a lock-free
// high-water mark.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// FuncVar is a pull-style gauge evaluated at export time.
type FuncVar func() int64

// Histogram is a lock-free histogram with power-of-two buckets:
// bucket i counts values v with 2^(i-1) <= v < 2^i (bucket 0 counts
// v <= 0). Good enough for RTTs and sizes at ~2x resolution, with
// exact count/sum/min/max.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64 // stored as offset by initialization; 0 count means unset
	max     atomic.Int64
	minSet  atomic.Bool
	buckets [64]atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	// Only the CAS winner seeds min; late racers fall through to the
	// lower-only CAS loop, so min can never move upward.
	if h.minSet.CompareAndSwap(false, true) {
		h.min.Store(v)
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...
}

// bucketUpper returns the inclusive upper bound represented by bucket i.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<i - 1
}

// Buckets returns a point-in-time copy of the raw power-of-two bucket
// counts (bucket i counts values with bucketIndex(v) == i). Used by the
// Prometheus text exposition to render cumulative le buckets.
func (h *Histogram) Buckets() [64]uint64 {
	var out [64]uint64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// HistogramSnapshot is a point-in-time summary; quantiles are upper
// bounds of the bucket containing the quantile (~2x resolution).
type HistogramSnapshot struct {
	Count         uint64
	Sum, Min, Max int64
	Mean          float64
	P50, P90, P99 int64
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	var counts [64]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	q := func(p float64) int64 {
		target := uint64(math.Ceil(p * float64(total)))
		if target == 0 {
			target = 1
		}
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum >= target {
				u := bucketUpper(i)
				if u > s.Max {
					u = s.Max
				}
				return u
			}
		}
		return s.Max
	}
	s.P50, s.P90, s.P99 = q(0.50), q(0.90), q(0.99)
	return s
}
