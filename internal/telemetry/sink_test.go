package telemetry

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// Dedicated sink.go coverage: wraparound ordering across several full
// revolutions, tee fan-out when one branch's Close errors, and the
// file-sink close-then-emit race every teardown path can hit.

func TestRingSinkWraparoundOrdering(t *testing.T) {
	const capacity = 8
	ring := NewRingSink(capacity)
	// Three full revolutions plus a partial one: the ring must always
	// return exactly the last `capacity` events, oldest first.
	const total = 3*capacity + 5
	for i := 0; i < total; i++ {
		ring.Emit(Event{Kind: EvRecordSent, A: int64(i)})
	}
	evs := ring.Events()
	if len(evs) != capacity {
		t.Fatalf("len = %d, want %d", len(evs), capacity)
	}
	for i, ev := range evs {
		if want := int64(total - capacity + i); ev.A != want {
			t.Fatalf("event %d: A = %d, want %d (emission order violated)", i, ev.A, want)
		}
	}
	if got, want := ring.Dropped(), uint64(total-capacity); got != want {
		t.Fatalf("dropped = %d, want %d", got, want)
	}
	if ring.Len() != capacity {
		t.Fatalf("len = %d, want %d", ring.Len(), capacity)
	}
}

func TestRingSinkPartialFill(t *testing.T) {
	ring := NewRingSink(16)
	for i := 0; i < 5; i++ {
		ring.Emit(Event{Kind: EvHealthPing, A: int64(i)})
	}
	evs := ring.Events()
	if len(evs) != 5 || ring.Dropped() != 0 {
		t.Fatalf("partial fill: len=%d dropped=%d", len(evs), ring.Dropped())
	}
	for i, ev := range evs {
		if ev.A != int64(i) {
			t.Fatalf("event %d out of order: A=%d", i, ev.A)
		}
	}
}

// errCloseSink records emits and fails on Close.
type errCloseSink struct {
	emits  int
	closed bool
}

func (e *errCloseSink) Emit(Event) { e.emits++ }
func (e *errCloseSink) Close() error {
	e.closed = true
	return errors.New("branch close failed")
}

func TestTeeSinkBranchError(t *testing.T) {
	bad := &errCloseSink{}
	good := NewRingSink(8)
	tee := TeeSink{bad, good}

	// Fan-out reaches every branch, in order, even with a branch that
	// will later fail to close.
	tee.Emit(Event{Kind: EvStreamOpen, Stream: 1})
	tee.Emit(Event{Kind: EvStreamClose, Stream: 1})
	if bad.emits != 2 || good.Len() != 2 {
		t.Fatalf("fan-out: bad=%d good=%d, want 2,2", bad.emits, good.Len())
	}

	// Close returns the first branch error but still visits every
	// branch (the bad sink must actually have been closed).
	if err := tee.Close(); err == nil {
		t.Fatal("tee close swallowed branch error")
	}
	if !bad.closed {
		t.Fatal("failing branch was not closed")
	}
}

func TestTeeSinkFirstErrorWins(t *testing.T) {
	a := &errCloseSink{}
	b := &errCloseSink{}
	err := TeeSink{a, b}.Close()
	if err == nil || err.Error() != "branch close failed" {
		t.Fatalf("close error = %v", err)
	}
	if !a.closed || !b.closed {
		t.Fatalf("not all branches closed: a=%v b=%v", a.closed, b.closed)
	}
}

func TestFileSinkCloseThenEmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	sink.Emit(Event{Kind: EvSessionStart, A: 0x42, S: "client"})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	// Emits after Close must be safe no-ops (tracing is best-effort):
	// no panic, and the file content written before Close is intact.
	sink.Emit(Event{Kind: EvSessionClose, S: "late"})
	sink.Emit(Event{Kind: EvSessionClose, S: "later"})

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := ParseJSONL(f)
	if err != nil {
		t.Fatalf("trace corrupted by post-close emit: %v", err)
	}
	if len(evs) != 1 || evs[0].Kind != EvSessionStart {
		t.Fatalf("file trace = %+v, want single session:started", evs)
	}

	// Double close is safe too.
	if err := sink.Close(); err == nil {
		// os.File.Close on an already-closed file errors; either way
		// it must not panic. Accept both.
		t.Log("second close returned nil")
	}
}

func TestDiscardAndFuncSinks(t *testing.T) {
	var d DiscardSink
	d.Emit(Event{Kind: EvHealthPing})
	d.Emit(Event{Kind: EvHealthPong})
	if d.Count() != 2 {
		t.Fatalf("discard count = %d", d.Count())
	}
	var got []EventKind
	fs := FuncSink(func(ev Event) { got = append(got, ev.Kind) })
	fs.Emit(Event{Kind: EvPathJoin})
	if len(got) != 1 || got[0] != EvPathJoin {
		t.Fatalf("func sink got %v", got)
	}
}
