package telemetry

import (
	"testing"
	"time"
)

// BenchmarkTracerDisabled measures the no-sink emit path — the cost
// every hot path pays when tracing is off. `make check` runs it with
// -benchtime 10000x as the overhead guard; the real bound is the
// paired zero-alloc test (TestDisabledTracerZeroAlloc).
func BenchmarkTracerDisabled(b *testing.B) {
	tr := NewTracer(WithEndpoint("client"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: EvTCPCwnd, Path: 1, A: int64(i), B: 20, C: 5})
	}
}

// BenchmarkTracerNil measures the nil-tracer path (layer compiled with
// no tracer configured at all).
func BenchmarkTracerNil(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: EvRecordSent, Stream: 1, A: 1400, B: int64(i)})
	}
}

// BenchmarkTracerDiscard measures the enabled path minus sink I/O:
// clock stamp + atomic counters + interface dispatch.
func BenchmarkTracerDiscard(b *testing.B) {
	tr := NewTracer(
		WithSink(&DiscardSink{}),
		WithClock(func() time.Duration { return 42 }),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: EvTCPCwnd, Path: 1, A: int64(i), B: 20, C: 5})
	}
}

// BenchmarkTracerRing measures the test-harness configuration.
func BenchmarkTracerRing(b *testing.B) {
	tr := NewTracer(
		WithSink(NewRingSink(1<<16)),
		WithClock(func() time.Duration { return 42 }),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: EvRecordRecv, Stream: 1, A: 1400, B: int64(i)})
	}
}

// Tracing-overhead suite (wired into `make telemetry`): per-event cost
// of the session emit path — flight-recorder record plus the sampled
// tracer forward — with tracing off, 1-in-100 session sampling, and
// full-fidelity tracing. ns/op inverts to events/sec.
func benchmarkTracingOverhead(b *testing.B, sampleRate int, sink Sink) {
	const sessions = 100
	tracers := make([]*Tracer, sessions)
	flights := make([]*FlightRecorder, sessions)
	for i := range tracers {
		tr := NewTracer(
			WithEndpoint("server"),
			WithClock(func() time.Duration { return 42 }),
		)
		// Session-level sampling: full fidelity on 1-in-sampleRate
		// sessions, flight recorder on all (mirrors core's wiring).
		if sink != nil && (sampleRate <= 1 || i%sampleRate == 0) {
			tr.SetSink(sink)
		}
		tracers[i] = tr
		flights[i] = NewFlightRecorder(256)
	}
	ev := Event{Kind: EvRecordSent, Stream: 1, A: 1400, B: 1 << 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := i % sessions
		ev.Time = tracers[s].Now()
		flights[s].Record(ev)
		tracers[s].Emit(ev)
		ev.Time = 0
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

func BenchmarkTracingOverheadOff(b *testing.B) {
	benchmarkTracingOverhead(b, 0, nil)
}

func BenchmarkTracingOverheadSampled1in100(b *testing.B) {
	benchmarkTracingOverhead(b, 100, NewRingSink(1<<16))
}

func BenchmarkTracingOverheadFull(b *testing.B) {
	benchmarkTracingOverhead(b, 1, NewRingSink(1<<16))
}

// BenchmarkEventAppendJSON measures serialization (paid only by
// writer-backed sinks).
func BenchmarkEventAppendJSON(b *testing.B) {
	ev := Event{
		Time: 123456789, Kind: EvHealthPong, EP: "client",
		Path: 2, A: 7, B: 1700000, C: 1650000,
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = ev.AppendJSON(buf[:0])
	}
}
