package telemetry

import (
	"sync/atomic"
	"time"
)

// Sampler decides whether an event is recorded. It runs only when a
// sink is attached, so it can be used to thin high-frequency kinds
// (e.g. keep every Nth cwnd sample) without touching emit sites.
type Sampler func(Event) bool

// Tracer is a structured event tracer. The zero value is unusable —
// construct with NewTracer — but a nil *Tracer is a valid, fully
// disabled tracer: every method is nil-safe, and the nil/no-sink path
// performs zero heap allocations per event (enforced by test and
// benchmark).
//
// Concurrency: Emit may be called from any goroutine. The sink is held
// behind an atomic pointer so it can be attached/detached while the
// stack is running; sinks must themselves be safe for concurrent Emit
// calls (all sinks in this package are).
type Tracer struct {
	ep         string
	epoch      time.Time
	clock      atomic.Pointer[func() time.Duration]
	sink       atomic.Pointer[sinkBox]
	sampler    atomic.Pointer[Sampler]
	emitted    atomic.Uint64
	sampledOut atomic.Uint64
}

// sinkBox wraps the Sink interface value so it can live in an
// atomic.Pointer (interfaces are two words and not directly atomic).
type sinkBox struct{ s Sink }

// TracerOption configures a Tracer at construction.
type TracerOption func(*Tracer)

// WithEndpoint labels every event emitted by this tracer with an
// endpoint name ("client", "server", "net", ...). Traces from several
// tracers sharing one sink are distinguished by this label.
func WithEndpoint(ep string) TracerOption {
	return func(t *Tracer) { t.ep = ep }
}

// WithClock supplies the timestamp source: a function returning the
// elapsed (possibly virtual) time since the trace epoch. Under netsim,
// pass the network's VirtualNow so timestamps are in virtual time and
// tracers on both endpoints share one timeline.
func WithClock(now func() time.Duration) TracerOption {
	return func(t *Tracer) { t.clock.Store(&now) }
}

// WithSink attaches the initial sink.
func WithSink(s Sink) TracerOption {
	return func(t *Tracer) { t.setSink(s) }
}

// WithSampler installs the initial sampling hook.
func WithSampler(f Sampler) TracerOption {
	return func(t *Tracer) { t.sampler.Store(&f) }
}

// NewTracer builds a tracer. Without WithClock, timestamps are
// wall-clock time since construction.
func NewTracer(opts ...TracerOption) *Tracer {
	t := &Tracer{epoch: time.Now()}
	for _, o := range opts {
		o(t)
	}
	return t
}

// SetSink attaches (or, with nil, detaches) the sink. Detaching
// returns the tracer to the zero-cost disabled state.
func (t *Tracer) SetSink(s Sink) {
	if t == nil {
		return
	}
	t.setSink(s)
}

func (t *Tracer) setSink(s Sink) {
	if s == nil {
		t.sink.Store(nil)
		return
	}
	t.sink.Store(&sinkBox{s: s})
}

// SetClock replaces the timestamp source; see WithClock. Useful when
// the tracer must exist before the (virtual) clock does.
func (t *Tracer) SetClock(now func() time.Duration) {
	if t == nil || now == nil {
		return
	}
	t.clock.Store(&now)
}

// SetSampler replaces the sampling hook (nil removes it).
func (t *Tracer) SetSampler(f Sampler) {
	if t == nil {
		return
	}
	if f == nil {
		t.sampler.Store(nil)
		return
	}
	t.sampler.Store(&f)
}

// Enabled reports whether a sink is attached. Emit sites with
// expensive arguments (string formatting, snapshot assembly) should
// guard on it; plain emit sites can call Emit unconditionally.
func (t *Tracer) Enabled() bool {
	return t != nil && t.sink.Load() != nil
}

// Emit records one event. On the disabled path (nil tracer or no sink)
// it is a few loads and a branch — no allocation, no locks.
//
// The tracer stamps Time (unless the caller pre-filled it) and EP.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	box := t.sink.Load()
	if box == nil {
		return
	}
	if ev.Time == 0 {
		ev.Time = t.now()
	}
	if ev.EP == "" {
		ev.EP = t.ep
	}
	if sp := t.sampler.Load(); sp != nil && !(*sp)(ev) {
		t.sampledOut.Add(1)
		return
	}
	t.emitted.Add(1)
	box.s.Emit(ev)
}

// Now returns the tracer's current trace-clock reading (virtual time
// under netsim, wall time since construction otherwise). Nil-safe: a
// nil tracer reads 0, so callers stamping events for a flight recorder
// can use it unconditionally.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.now()
}

// Endpoint returns the tracer's endpoint label (nil-safe: a nil tracer
// reads ""). Callers stamping events for a flight recorder use it to
// label events identically to the tracer's own Emit path.
func (t *Tracer) Endpoint() string {
	if t == nil {
		return ""
	}
	return t.ep
}

// Stats reports the number of events recorded and sampled away.
func (t *Tracer) Stats() (emitted, sampledOut uint64) {
	if t == nil {
		return 0, 0
	}
	return t.emitted.Load(), t.sampledOut.Load()
}

func (t *Tracer) now() time.Duration {
	if c := t.clock.Load(); c != nil {
		return (*c)()
	}
	return time.Since(t.epoch)
}
