package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
)

// Prometheus text exposition (format version 0.0.4) for the registry:
// the pull surface scrapers expect, mounted next to the JSON and pprof
// debug endpoints by ServeDebug. Dotted metric names become underscore
// names under a tcpls_ prefix; histograms export their power-of-two
// buckets as cumulative le series.

// WritePrometheus writes every var in Prometheus text exposition
// format. Counters map to counter, gauges and pull-funcs to gauge,
// histograms to histogram with cumulative buckets at the power-of-two
// upper bounds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.vars))
	vars := make(map[string]any, len(r.vars))
	for name, v := range r.vars {
		names = append(names, name)
		vars[name] = v
	}
	r.mu.RUnlock()
	sort.Strings(names)
	var buf []byte
	for _, name := range names {
		pn := promName(name)
		switch v := vars[name].(type) {
		case *Counter:
			buf = fmt.Appendf(buf, "# TYPE %s counter\n%s %d\n", pn, pn, v.Value())
		case *Gauge:
			buf = fmt.Appendf(buf, "# TYPE %s gauge\n%s %d\n", pn, pn, v.Value())
		case FuncVar:
			buf = fmt.Appendf(buf, "# TYPE %s gauge\n%s %d\n", pn, pn, v())
		case *Histogram:
			counts := v.Buckets()
			sum := v.sum.Load()
			buf = fmt.Appendf(buf, "# TYPE %s histogram\n", pn)
			var cum uint64
			for i, c := range counts {
				if c == 0 {
					continue
				}
				cum += c
				buf = fmt.Appendf(buf, "%s_bucket{le=\"%d\"} %d\n", pn, bucketUpper(i), cum)
			}
			buf = fmt.Appendf(buf, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
			buf = fmt.Appendf(buf, "%s_sum %d\n%s_count %d\n", pn, sum, pn, cum)
		}
	}
	_, err := w.Write(buf)
	return err
}

// promName converts a dotted registry name into a valid Prometheus
// metric name: tcpls_ prefix, every non-[a-zA-Z0-9_] byte mapped to _.
func promName(name string) string {
	out := make([]byte, 0, len(name)+6)
	out = append(out, "tcpls_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// PrometheusHandler returns an http.Handler serving the registry in
// text exposition format.
func (r *Registry) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
