package telemetry

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tcp.a.segs_sent").Add(7)
	reg.Gauge("sessions.live").Set(3)
	reg.Func("server.goroutines", func() int64 { return 42 })
	h := reg.Histogram("sessions.handshake_ns.client")
	for _, v := range []int64{1000, 2000, 3000, 1 << 20} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE tcpls_tcp_a_segs_sent counter\ntcpls_tcp_a_segs_sent 7\n",
		"# TYPE tcpls_sessions_live gauge\ntcpls_sessions_live 3\n",
		"# TYPE tcpls_server_goroutines gauge\ntcpls_server_goroutines 42\n",
		"# TYPE tcpls_sessions_handshake_ns_client histogram\n",
		`tcpls_sessions_handshake_ns_client_bucket{le="+Inf"} 4`,
		"tcpls_sessions_handshake_ns_client_count 4\n",
		"tcpls_sessions_handshake_ns_client_sum 1054576\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Cumulative buckets must be monotonically non-decreasing and end
	// at the total count.
	var last uint64
	var bucketLines int
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "tcpls_sessions_handshake_ns_client_bucket") {
			continue
		}
		bucketLines++
		v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("cumulative bucket decreased: %q after %d", line, last)
		}
		last = v
	}
	if bucketLines < 3 || last != 4 {
		t.Fatalf("bucket series: %d lines, final %d (want >=3 lines ending at 4)", bucketLines, last)
	}
}

func TestPromNameMangling(t *testing.T) {
	for in, want := range map[string]string{
		"tcp.a.segs_sent":       "tcpls_tcp_a_segs_sent",
		"session.3.path.2.srtt": "tcpls_session_3_path_2_srtt",
		"weird-name/with:stuff": "tcpls_weird_name_with_stuff",
		"sessions.handshake_ns": "tcpls_sessions_handshake_ns",
	} {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
