package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersGaugesFuncs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("tcp.a.segs_sent")
	c.Add(5)
	reg.Counter("tcp.a.segs_sent").Inc() // get-or-create returns same var
	if c.Value() != 6 {
		t.Fatalf("counter = %d, want 6", c.Value())
	}
	g := reg.Gauge("netsim.link.v4.queue_hwm")
	g.SetMax(100)
	g.SetMax(50) // lower: ignored
	g.SetMax(200)
	if g.Value() != 200 {
		t.Fatalf("gauge high-water = %d, want 200", g.Value())
	}
	reg.Func("session.1.paths", func() int64 { return 2 })

	snap := reg.Snapshot()
	if snap["tcp.a.segs_sent"] != int64(6) {
		t.Fatalf("snapshot counter = %v", snap["tcp.a.segs_sent"])
	}
	if snap["session.1.paths"] != int64(2) {
		t.Fatalf("snapshot func = %v", snap["session.1.paths"])
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type conflict")
		}
	}()
	reg.Gauge("x")
}

func TestRegistryUnregisterPrefix(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("session.1.path.2.probes")
	reg.Counter("session.1.path.3.probes")
	reg.Counter("session.1.records_sent")
	reg.UnregisterPrefix("session.1.path.2.")
	snap := reg.Snapshot()
	if _, ok := snap["session.1.path.2.probes"]; ok {
		t.Fatal("prefix not unregistered")
	}
	if _, ok := snap["session.1.path.3.probes"]; !ok {
		t.Fatal("sibling wrongly unregistered")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 4, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Sum != 1110 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.P50 < 3 || s.P50 > 7 {
		t.Fatalf("p50 = %d, want within bucket of 3..4", s.P50)
	}
	if s.P99 != 1000 {
		t.Fatalf("p99 = %d, want clamped to max 1000", s.P99)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				h.Observe(int64(i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
}

// TestHistogramObserveZeroAlloc is the latency-instrumentation gate:
// Observe runs on connection-establishment and data paths, so it must
// not allocate. `make check` runs this by name (without -race, so the
// count is exact).
func TestHistogramObserveZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("sessions.handshake_ns.client")
	v := int64(1)
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v += 1009 // walk the buckets; Observe cost must not depend on value
	}); n != 0 {
		t.Fatalf("histogram: %v allocs per Observe, want 0", n)
	}
}

func TestRegistryLenAndNames(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.two")
	reg.Counter("a.one")
	reg.Gauge("c.three")
	if reg.Len() != 3 {
		t.Fatalf("len = %d, want 3", reg.Len())
	}
	names := reg.Names()
	if len(names) != 3 || names[0] != "a.one" || names[1] != "b.two" || names[2] != "c.three" {
		t.Fatalf("names = %v", names)
	}
	reg.UnregisterPrefix("a.")
	if reg.Len() != 2 {
		t.Fatalf("len after unregister = %d, want 2", reg.Len())
	}
}

func TestWriteJSONIsValidJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.b").Add(7)
	reg.Gauge("a.g").Set(-3)
	reg.Histogram("a.h").Observe(int64(2 * time.Millisecond))
	reg.Func("a.f", func() int64 { return 11 })
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if m["a.b"] != float64(7) || m["a.g"] != float64(-3) || m["a.f"] != float64(11) {
		t.Fatalf("values = %v", m)
	}
	h, ok := m["a.h"].(map[string]any)
	if !ok || h["count"] != float64(1) {
		t.Fatalf("histogram export = %v", m["a.h"])
	}
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up").Inc()
	ds, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	resp, err := http.Get("http://" + ds.Addr + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"up": 1`) {
		t.Fatalf("metrics endpoint: %d %s", resp.StatusCode, body)
	}

	// Prometheus text exposition rides next to the JSON endpoint.
	resp, err = http.Get("http://" + ds.Addr + "/debug/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "# TYPE tcpls_up counter") {
		t.Fatalf("prometheus endpoint: %d %s", resp.StatusCode, body)
	}

	// pprof is mounted on the private mux.
	resp, err = http.Get("http://" + ds.Addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof endpoint: %d", resp.StatusCode)
	}
}
