package telemetry

import "time"

// TimelineBin is one bin of a goodput/cwnd timeline built from a
// trace; see Timeline.
type TimelineBin struct {
	Start   time.Duration // bin start (relative trace time)
	Bytes   int64         // payload bytes delivered in this bin
	Goodput float64       // bits per second over the bin width
	CwndMax int64         // largest cwnd sample seen in the bin (0 if none)
	Events  int           // events that contributed bytes
	Markers []string      // names of lifecycle events landing in this bin
}

// Timeline bins a trace into fixed-width goodput samples — the Fig. 4
// view. Bytes come from EvRecordRecv events whose EP matches recvEP
// (the downloading endpoint); cwnd comes from EvTCPCwnd events whose
// EP matches sendEP (the endpoint whose congestion window governs the
// transfer). Path lifecycle events (degraded/join/failover/close) are
// recorded as markers so plots can annotate the dip.
//
// The returned bins cover [0, ceil(maxTime/bin)) contiguously; empty
// bins are present with zero bytes, which is what makes the dip
// visible.
func Timeline(events []Event, bin time.Duration, recvEP, sendEP string) []TimelineBin {
	if bin <= 0 {
		bin = 100 * time.Millisecond
	}
	var maxT time.Duration
	for _, ev := range events {
		if ev.Time > maxT {
			maxT = ev.Time
		}
	}
	n := int(maxT/bin) + 1
	if n <= 0 || len(events) == 0 {
		return nil
	}
	bins := make([]TimelineBin, n)
	for i := range bins {
		bins[i].Start = time.Duration(i) * bin
	}
	idx := func(t time.Duration) int {
		i := int(t / bin)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}
	for _, ev := range events {
		switch ev.Kind {
		case EvRecordRecv:
			if recvEP == "" || ev.EP == recvEP {
				b := &bins[idx(ev.Time)]
				b.Bytes += ev.A
				b.Events++
			}
		case EvTCPCwnd:
			if sendEP == "" || ev.EP == sendEP {
				b := &bins[idx(ev.Time)]
				if ev.A > b.CwndMax {
					b.CwndMax = ev.A
				}
			}
		case EvPathDegraded, EvPathFailover, EvPathJoin, EvPathClose:
			b := &bins[idx(ev.Time)]
			b.Markers = append(b.Markers, ev.Kind.Name())
		}
	}
	secs := bin.Seconds()
	for i := range bins {
		bins[i].Goodput = float64(bins[i].Bytes) * 8 / secs
	}
	return bins
}
