package telemetry

import (
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Sink receives events from one or more tracers. Implementations must
// be safe for concurrent Emit calls. Emit should be fast: it runs on
// protocol hot paths (though only when tracing is enabled).
type Sink interface {
	Emit(Event)
}

// A sink that holds resources can implement io.Closer; CloseSink
// closes it if so.
func CloseSink(s Sink) error {
	if c, ok := s.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// --- WriterSink: JSONL to an io.Writer ---

// WriterSink serializes events as JSONL to an io.Writer under a
// mutex, reusing one buffer across events.
type WriterSink struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	c   io.Closer // closed by Close when the writer owns the resource
}

// NewWriterSink wraps w. The caller retains ownership of w unless it
// was opened by NewFileSink.
func NewWriterSink(w io.Writer) *WriterSink {
	return &WriterSink{w: w, buf: make([]byte, 0, 512)}
}

// NewFileSink creates (truncating) path and returns a sink writing
// JSONL to it. Close flushes and closes the file.
func NewFileSink(path string) (*WriterSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := NewWriterSink(f)
	s.c = f
	return s, nil
}

func (s *WriterSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = ev.AppendJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	s.w.Write(s.buf) // best-effort: tracing must not fail the protocol
}

// Close closes the underlying file if the sink owns one.
func (s *WriterSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}

// --- RingSink: fixed-capacity in-memory ring for tests ---

// RingSink keeps the most recent cap events in memory. When full, the
// oldest events are overwritten and counted as dropped. It is the sink
// of choice for tests and the chaos harness: no I/O on the hot path,
// and Events() returns a stable snapshot afterwards.
type RingSink struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
}

// NewRingSink builds a ring holding up to capacity events
// (default 65536 if capacity <= 0).
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &RingSink{buf: make([]Event, capacity)}
}

func (r *RingSink) Emit(ev Event) {
	r.mu.Lock()
	if r.wrapped {
		r.dropped++
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Events returns the buffered events in emission order.
func (r *RingSink) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped reports how many events were overwritten.
func (r *RingSink) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len reports the number of buffered events.
func (r *RingSink) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrapped {
		return len(r.buf)
	}
	return r.next
}

// --- DiscardSink: counts and drops ---

// DiscardSink drops every event, counting them. It measures enabled-
// path overhead without I/O (used by benchmarks) and can serve as a
// "count only" sink.
type DiscardSink struct {
	n atomic.Uint64
}

func (d *DiscardSink) Emit(Event) { d.n.Add(1) }

// Count reports how many events were discarded.
func (d *DiscardSink) Count() uint64 { return d.n.Load() }

// --- FuncSink: adapter ---

// FuncSink adapts a function to the Sink interface. The function must
// be safe for concurrent calls.
type FuncSink func(Event)

func (f FuncSink) Emit(ev Event) { f(ev) }

// --- TeeSink: fan-out ---

// TeeSink forwards each event to every child sink in order.
type TeeSink []Sink

func (t TeeSink) Emit(ev Event) {
	for _, s := range t {
		s.Emit(ev)
	}
}

func (t TeeSink) Close() error {
	var first error
	for _, s := range t {
		if err := CloseSink(s); err != nil && first == nil {
			first = err
		}
	}
	return first
}
