package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func sampleEvent() Event {
	return Event{
		Kind: EvHealthPong,
		Path: 3,
		A:    42,
		B:    int64(17 * time.Millisecond),
		C:    int64(16 * time.Millisecond),
	}
}

// TestDisabledTracerZeroAlloc is the hard allocation bound from the
// issue: the no-sink path (and the nil-tracer path) must not allocate.
// `make check` runs this test by name.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var nilTracer *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		nilTracer.Emit(Event{Kind: EvTCPCwnd, Path: 1, A: 10, B: 20, C: 5})
	}); n != 0 {
		t.Fatalf("nil tracer: %v allocs per Emit, want 0", n)
	}

	tr := NewTracer(WithEndpoint("client"))
	if tr.Enabled() {
		t.Fatal("tracer without sink reports Enabled")
	}
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Kind: EvRecordSent, Stream: 1, A: 1400, B: 4096, S: "x"})
	}); n != 0 {
		t.Fatalf("no-sink tracer: %v allocs per Emit, want 0", n)
	}

	// Detach must restore the zero-alloc property.
	tr.SetSink(&DiscardSink{})
	tr.SetSink(nil)
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(sampleEvent())
	}); n != 0 {
		t.Fatalf("detached tracer: %v allocs per Emit, want 0", n)
	}
}

func TestTracerEmitStampsTimeAndEndpoint(t *testing.T) {
	ring := NewRingSink(16)
	var now time.Duration = 5 * time.Second
	tr := NewTracer(
		WithEndpoint("server"),
		WithClock(func() time.Duration { return now }),
		WithSink(ring),
	)
	tr.Emit(Event{Kind: EvStreamOpen, Stream: 2, A: 1})
	now = 6 * time.Second
	tr.Emit(Event{Kind: EvStreamClose, Stream: 2, A: 999})

	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Time != 5*time.Second || evs[1].Time != 6*time.Second {
		t.Fatalf("timestamps not stamped from clock: %v, %v", evs[0].Time, evs[1].Time)
	}
	if evs[0].EP != "server" {
		t.Fatalf("endpoint not stamped: %q", evs[0].EP)
	}
	if emitted, _ := tr.Stats(); emitted != 2 {
		t.Fatalf("emitted count = %d, want 2", emitted)
	}
}

func TestTracerSampler(t *testing.T) {
	ring := NewRingSink(16)
	tr := NewTracer(WithSink(ring), WithSampler(func(ev Event) bool {
		return ev.Kind != EvTCPCwnd // drop cwnd samples
	}))
	tr.Emit(Event{Kind: EvTCPCwnd, A: 1})
	tr.Emit(Event{Kind: EvPathDegraded, Path: 1})
	tr.Emit(Event{Kind: EvTCPCwnd, A: 2})
	if got := ring.Len(); got != 1 {
		t.Fatalf("ring has %d events, want 1", got)
	}
	if _, dropped := tr.Stats(); dropped != 2 {
		t.Fatalf("sampledOut = %d, want 2", dropped)
	}
}

func TestRingSinkWraps(t *testing.T) {
	ring := NewRingSink(4)
	for i := 0; i < 10; i++ {
		ring.Emit(Event{Kind: EvHealthPing, A: int64(i)})
	}
	evs := ring.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.A != want {
			t.Fatalf("event %d: A = %d, want %d (oldest overwritten)", i, ev.A, want)
		}
	}
	if ring.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", ring.Dropped())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{Time: 10 * time.Millisecond, Kind: EvSessionStart, EP: "client", A: 0x1234, S: "client"},
		{Time: 15 * time.Millisecond, Kind: EvPathJoin, EP: "server", Path: 2, A: 1, S: `10.0.0.2:443 "quoted"`},
		{Time: 20 * time.Millisecond, Kind: EvRecordRecv, EP: "client", Path: 1, Stream: 1, A: 1400, B: 8192, C: 0},
		{Time: 25 * time.Millisecond, Kind: EvTCPDrop, EP: "server", Path: 1, A: 512, S: "ooo-overflow"},
		{Time: 30 * time.Millisecond, Kind: EvHealthPong, EP: "client", Path: 1, A: 7, B: 1700000, C: 1650000},
		{Time: 35 * time.Millisecond, Kind: EvLinkDropQueue, EP: "net", A: 1460, S: "v4"},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestParseJSONLSkipsUnknownNames(t *testing.T) {
	trace := `{"time":1,"name":"future:event","ep":"client","data":{"x":1}}
{"time":2,"name":"health:ping","ep":"client","path":1,"data":{"seq":9}}
`
	evs, err := ParseJSONL(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != EvHealthPing || evs[0].A != 9 {
		t.Fatalf("got %+v, want single health:ping", evs)
	}
}

func TestFileSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(WithEndpoint("client"), WithSink(sink))
	tr.Emit(Event{Kind: EvPathDegraded, Path: 1, A: 3})
	tr.Emit(Event{Kind: EvPathFailover, Path: 1, A: 2})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := ParseJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Kind != EvPathDegraded || evs[1].Kind != EvPathFailover {
		t.Fatalf("file trace = %+v", evs)
	}
}

func TestTeeSink(t *testing.T) {
	a, b := NewRingSink(8), NewRingSink(8)
	tr := NewTracer(WithSink(TeeSink{a, b}))
	tr.Emit(Event{Kind: EvHealthPing, A: 1})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("tee fan-out failed: %d, %d", a.Len(), b.Len())
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	ring := NewRingSink(1 << 12)
	tr := NewTracer(WithSink(ring))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(Event{Kind: EvTCPCwnd, A: int64(i)})
			}
		}()
	}
	wg.Wait()
	if got := ring.Len(); got != 800 {
		t.Fatalf("ring has %d events, want 800", got)
	}
}

func TestTimeline(t *testing.T) {
	mk := func(t time.Duration, kind EventKind, ep string, a int64) Event {
		return Event{Time: t, Kind: kind, EP: ep, A: a}
	}
	events := []Event{
		mk(10*time.Millisecond, EvRecordRecv, "client", 1000),
		mk(50*time.Millisecond, EvRecordRecv, "client", 2000),
		mk(60*time.Millisecond, EvTCPCwnd, "server", 30000),
		mk(110*time.Millisecond, EvPathDegraded, "client", 3),
		// nothing delivered in bin 1 (the dip)
		mk(210*time.Millisecond, EvRecordRecv, "client", 4000),
		mk(220*time.Millisecond, EvRecordRecv, "server", 99999), // other direction: excluded
	}
	bins := Timeline(events, 100*time.Millisecond, "client", "server")
	if len(bins) != 3 {
		t.Fatalf("got %d bins, want 3", len(bins))
	}
	if bins[0].Bytes != 3000 || bins[1].Bytes != 0 || bins[2].Bytes != 4000 {
		t.Fatalf("bytes per bin = %d,%d,%d", bins[0].Bytes, bins[1].Bytes, bins[2].Bytes)
	}
	if bins[0].CwndMax != 30000 {
		t.Fatalf("cwnd max = %d", bins[0].CwndMax)
	}
	if len(bins[1].Markers) != 1 || bins[1].Markers[0] != "path:degraded" {
		t.Fatalf("markers = %v", bins[1].Markers)
	}
	wantGoodput := float64(3000*8) / 0.1
	if bins[0].Goodput != wantGoodput {
		t.Fatalf("goodput = %v, want %v", bins[0].Goodput, wantGoodput)
	}
}
