package telemetry

import (
	"bytes"
	"testing"
	"time"
)

func TestFlightRecorderWrapsAndDumps(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 7; i++ {
		fr.Record(Event{
			Time: time.Duration(i) * time.Millisecond,
			Kind: EvRecordSent, EP: "server", Stream: 1,
			A: int64(100 + i),
		})
	}
	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(103 + i); ev.A != want {
			t.Fatalf("event %d: A = %d, want %d", i, ev.A, want)
		}
	}
	if fr.Dropped() != 3 || fr.Len() != 4 {
		t.Fatalf("dropped=%d len=%d", fr.Dropped(), fr.Len())
	}

	// The dump artifact is JSONL that round-trips through ParseJSONL.
	var buf bytes.Buffer
	if n, err := fr.WriteTo(&buf); err != nil || n != int64(buf.Len()) {
		t.Fatalf("WriteTo: n=%d err=%v buf=%d", n, err, buf.Len())
	}
	back, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 4 || back[0].A != 103 || back[3].A != 106 {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(Event{Kind: EvHealthPing}) // must not panic
	if fr.Events() != nil || fr.Len() != 0 || fr.Dropped() != 0 {
		t.Fatal("nil recorder not inert")
	}
}

// TestFlightRecorderZeroAlloc is the steady-state gate from the issue:
// recording into the per-session ring must not allocate, on both the
// live and nil recorder. `make check` runs this by name.
func TestFlightRecorderZeroAlloc(t *testing.T) {
	fr := NewFlightRecorder(256)
	ev := Event{Kind: EvRecordSent, EP: "server", Stream: 3, A: 1400, B: 1 << 20, S: "x"}
	if n := testing.AllocsPerRun(1000, func() {
		fr.Record(ev)
	}); n != 0 {
		t.Fatalf("flight recorder: %v allocs per Record, want 0", n)
	}
	var nilFR *FlightRecorder
	if n := testing.AllocsPerRun(1000, func() {
		nilFR.Record(ev)
	}); n != 0 {
		t.Fatalf("nil flight recorder: %v allocs per Record, want 0", n)
	}
}
