package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry as JSON
// (expvar-style, one object, sorted keys).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
}

// DebugServer is a running debug HTTP endpoint; see ServeDebug.
type DebugServer struct {
	Addr string // actual listen address (useful with ":0")
	ln   net.Listener
	srv  *http.Server
}

// ServeDebug starts an HTTP server on addr exposing:
//
//	/debug/metrics              the registry as JSON
//	/debug/metrics/prometheus   the registry in Prometheus text format
//	/debug/pprof/*              the standard net/http/pprof handlers
//
// The pprof handlers are mounted explicitly on a private mux — nothing
// is registered on http.DefaultServeMux, so importing this package
// never leaks debug endpoints into an application's own server.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/metrics", reg.Handler())
	mux.Handle("/debug/metrics/prometheus", reg.PrometheusHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux},
	}
	go ds.srv.Serve(ln)
	return ds, nil
}

// Close stops the server.
func (d *DebugServer) Close() error {
	return d.srv.Close()
}
