package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func qlogSampleTrace() []Event {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Event{
		{Time: ms(1), Kind: EvSessionStart, EP: "client", A: 0x1234, S: "client"},
		{Time: ms(1), Kind: EvSessionStart, EP: "server", A: 0x1234, S: "server"},
		{Time: ms(2), Kind: EvStreamOpen, EP: "client", Stream: 1},
		{Time: ms(3), Kind: EvRecordSent, EP: "client", Path: 1, Stream: 1, A: 1400, B: 0},
		{Time: ms(4), Kind: EvRecordRecv, EP: "server", Path: 1, Stream: 1, A: 1400, B: 0},
		{Time: ms(5), Kind: EvTCPCwnd, EP: "server", Path: 1, A: 28000, B: 1 << 20, C: 14000},
		{Time: ms(6), Kind: EvHealthPong, EP: "client", Path: 1, A: 3, B: int64(ms(17)), C: int64(ms(16))},
		{Time: ms(7), Kind: EvPathJoin, EP: "server", Path: 2, A: 1, S: "10.1.0.2:443"},
		{Time: ms(8), Kind: EvPathFailover, EP: "client", Path: 1, A: 2},
		{Time: ms(9), Kind: EvSessionDegraded, EP: "client", A: 3, S: "fresh: option stripped"},
		{Time: ms(10), Kind: EvSessionShed, EP: "server", A: 0x99, S: "idle"},
		{Time: ms(11), Kind: EvSessionClose, EP: "client", S: "orderly"},
	}
}

// TestQlogExportValidates is the acceptance round trip: the exporter's
// output must pass the structural schema check and carry the expected
// standard-qlog names.
func TestQlogExportValidates(t *testing.T) {
	in := qlogSampleTrace()
	var buf bytes.Buffer
	if err := WriteQlog(&buf, in, "unit"); err != nil {
		t.Fatal(err)
	}
	traces, events, err := ValidateQlog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("schema check failed: %v\n%s", err, buf.String())
	}
	if traces != 2 {
		t.Fatalf("traces = %d, want 2 (client, server)", traces)
	}
	if events != len(in) {
		t.Fatalf("events = %d, want %d", events, len(in))
	}

	out := buf.String()
	for _, want := range []string{
		`"qlog_version": "0.3"`,
		`"transport:packet_sent"`,
		`"transport:packet_received"`,
		`"recovery:metrics_updated"`,
		`"connectivity:connection_started"`,
		`"connectivity:path_assigned"`,
		// TCPLS-specific kinds pass through under their own category.
		`"session:degraded"`,
		`"session:shed"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %s:\n%s", want, out)
		}
	}
}

func TestQlogDataMapping(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteQlog(&buf, qlogSampleTrace(), ""); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Traces []struct {
			Title        string `json:"title"`
			VantagePoint struct {
				Type string `json:"type"`
			} `json:"vantage_point"`
			Events []struct {
				Time float64        `json:"time"`
				Name string         `json:"name"`
				Data map[string]any `json:"data"`
			} `json:"events"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Traces[0].VantagePoint.Type != "client" || doc.Traces[1].VantagePoint.Type != "server" {
		t.Fatalf("vantage types: %+v", doc.Traces)
	}
	// record:sent became a packet_sent with a stream frame.
	var found bool
	for _, ev := range doc.Traces[0].Events {
		if ev.Name != "transport:packet_sent" {
			continue
		}
		frames, ok := ev.Data["frames"].([]any)
		if !ok || len(frames) != 1 {
			t.Fatalf("packet_sent frames = %v", ev.Data["frames"])
		}
		fr := frames[0].(map[string]any)
		if fr["frame_type"] != "stream" || fr["length"] != float64(1400) {
			t.Fatalf("stream frame = %v", fr)
		}
		found = true
	}
	if !found {
		t.Fatal("no transport:packet_sent in client trace")
	}
	// health:pong became metrics_updated with RTTs in ms.
	found = false
	for _, ev := range doc.Traces[0].Events {
		if ev.Name == "recovery:metrics_updated" {
			if ev.Data["latest_rtt"] != float64(17) {
				t.Fatalf("latest_rtt = %v, want 17ms", ev.Data["latest_rtt"])
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no recovery:metrics_updated in client trace")
	}
}

func TestValidateQlogRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`not json`,
		`{"traces":[]}`,
		`{"qlog_version":"0.3","traces":[]}`,
		`{"qlog_version":"0.3","traces":[{"events":[]}]}`,
		`{"qlog_version":"0.3","traces":[{"vantage_point":{"type":"client"},"events":[{"name":"noseparator","time":1}]}]}`,
	} {
		if _, _, err := ValidateQlog(strings.NewReader(bad)); err == nil {
			t.Fatalf("ValidateQlog accepted %s", bad)
		}
	}
}
