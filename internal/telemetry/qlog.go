package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// qlog export: serialize a trace into the qlog JSON container format
// (draft-ietf-quic-qlog-main-schema) so TCPLS traces load in standard
// qlog viewers. Our native event vocabulary is already qlog-shaped
// ("category:event" names, relative times, small data objects); this
// file maps the kinds with a standard qlog equivalent onto it
// (transport:packet_sent, recovery:metrics_updated, connectivity:*)
// and passes the TCPLS-specific kinds through under their own
// categories, which qlog explicitly permits.
//
// This is an offline surface (tcplstrace qlog); allocation is fine.

// QlogVersion is the schema draft version stamped on exports.
const QlogVersion = "0.3"

type qlogDoc struct {
	QlogVersion string      `json:"qlog_version"`
	QlogFormat  string      `json:"qlog_format"`
	Title       string      `json:"title,omitempty"`
	Traces      []qlogTrace `json:"traces"`
}

type qlogTrace struct {
	Title        string         `json:"title"`
	VantagePoint qlogVantage    `json:"vantage_point"`
	CommonFields map[string]any `json:"common_fields"`
	Events       []qlogEvent    `json:"events"`
}

type qlogVantage struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type qlogEvent struct {
	Time float64        `json:"time"` // milliseconds, relative
	Name string         `json:"name"`
	Data map[string]any `json:"data,omitempty"`
}

// qlogNames maps event kinds with a standard qlog equivalent; kinds
// not listed keep their native "category:event" name.
var qlogNames = map[EventKind]string{
	EvRecordSent:   "transport:packet_sent",
	EvRecordRecv:   "transport:packet_received",
	EvCtrlSent:     "transport:packet_sent",
	EvCtrlRecv:     "transport:packet_received",
	EvTCPCwnd:      "recovery:metrics_updated",
	EvHealthPong:   "recovery:metrics_updated",
	EvSessionStart: "connectivity:connection_started",
	EvSessionClose: "connectivity:connection_closed",
	EvStreamOpen:   "transport:stream_state_updated",
	EvStreamClose:  "transport:stream_state_updated",
	EvPathJoin:     "connectivity:path_assigned",
	EvPathClose:    "connectivity:path_updated",
	EvPathDegraded: "connectivity:path_updated",
	EvPathFailover: "connectivity:path_updated",
}

// QlogName returns the qlog event name used for kind in exports.
func QlogName(k EventKind) string {
	if n, ok := qlogNames[k]; ok {
		return n
	}
	return k.Name()
}

// qlogData builds the qlog data object for one event, using standard
// qlog keys for the mapped kinds and the native payload keys otherwise.
func qlogData(ev Event) map[string]any {
	d := make(map[string]any, 4)
	switch ev.Kind {
	case EvRecordSent, EvRecordRecv:
		d["raw"] = map[string]any{"length": ev.A}
		d["frames"] = []any{map[string]any{
			"frame_type": "stream",
			"stream_id":  ev.Stream,
			"offset":     ev.B,
			"length":     ev.A,
			"fin":        ev.C != 0,
		}}
	case EvCtrlSent, EvCtrlRecv:
		d["frames"] = []any{map[string]any{"frame_type": ev.S}}
	case EvTCPCwnd:
		d["congestion_window"] = ev.A
		d["ssthresh"] = ev.B
		d["bytes_in_flight"] = ev.C
	case EvHealthPong:
		d["latest_rtt"] = float64(ev.B) / 1e6 // ms
		d["smoothed_rtt"] = float64(ev.C) / 1e6
	case EvSessionStart:
		d["connection_id"] = fmt.Sprintf("%08x", uint64(ev.A))
		d["role"] = ev.S
	case EvSessionClose:
		d["trigger"] = ev.S
	case EvStreamOpen:
		d["stream_id"] = ev.Stream
		d["new"] = "open"
		if ev.A != 0 {
			d["trigger"] = "remote"
		}
	case EvStreamClose:
		d["stream_id"] = ev.Stream
		d["new"] = "closed"
		d["final_offset"] = ev.A
	case EvPathJoin:
		d["path_id"] = ev.Path
		d["remote"] = ev.S
		if ev.A != 0 {
			d["trigger"] = "join"
		}
	case EvPathClose, EvPathDegraded, EvPathFailover:
		d["path_id"] = ev.Path
		switch ev.Kind {
		case EvPathClose:
			d["state"] = "closed"
			d["failed"] = ev.A != 0
			if ev.S != "" {
				d["trigger"] = ev.S
			}
		case EvPathDegraded:
			d["state"] = "degraded"
			d["outstanding_probes"] = ev.A
		case EvPathFailover:
			d["state"] = "failed_over"
			d["survivor_path_id"] = ev.A
		}
	default:
		// Native payload keys, as in the JSONL encoding.
		info := kindInfo{}
		if int(ev.Kind) < len(kinds) {
			info = kinds[ev.Kind]
		}
		if info.a != "" {
			d[info.a] = ev.A
		}
		if info.b != "" {
			d[info.b] = ev.B
		}
		if info.c != "" {
			d[info.c] = ev.C
		}
		if info.s != "" && ev.S != "" {
			d[info.s] = ev.S
		}
	}
	if ev.Path != 0 {
		if _, ok := d["path_id"]; !ok {
			d["path_id"] = ev.Path
		}
	}
	if ev.Stream != 0 {
		if _, ok := d["stream_id"]; !ok {
			d["stream_id"] = ev.Stream
		}
	}
	return d
}

func vantageType(ep string) string {
	switch {
	case strings.Contains(ep, "client"):
		return "client"
	case strings.Contains(ep, "server"):
		return "server"
	case ep == "net" || strings.Contains(ep, "net"):
		return "network"
	default:
		return "unknown"
	}
}

// WriteQlog serializes events as one qlog JSON document: one trace per
// endpoint label, events in their original order, times in relative
// milliseconds on the shared (virtual) timeline.
func WriteQlog(w io.Writer, events []Event, title string) error {
	order := make([]string, 0, 4)
	byEP := make(map[string][]qlogEvent)
	for _, ev := range events {
		ep := ev.EP
		if ep == "" {
			ep = "unknown"
		}
		if _, ok := byEP[ep]; !ok {
			order = append(order, ep)
		}
		byEP[ep] = append(byEP[ep], qlogEvent{
			Time: float64(ev.Time) / 1e6,
			Name: QlogName(ev.Kind),
			Data: qlogData(ev),
		})
	}
	doc := qlogDoc{
		QlogVersion: QlogVersion,
		QlogFormat:  "JSON",
		Title:       title,
		Traces:      make([]qlogTrace, 0, len(order)),
	}
	for _, ep := range order {
		doc.Traces = append(doc.Traces, qlogTrace{
			Title:        ep,
			VantagePoint: qlogVantage{Name: ep, Type: vantageType(ep)},
			CommonFields: map[string]any{
				"time_format":    "relative",
				"reference_time": 0,
				"protocol_type":  []string{"TCPLS"},
			},
			Events: byEP[ep],
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ValidateQlog checks that r holds a structurally valid qlog document
// (the JSON schema check tcplstrace and the tests run exports through):
// a qlog_version, at least one trace, each with a typed vantage point
// and events carrying a numeric time and a "category:event" name.
// It returns the trace and event counts.
func ValidateQlog(r io.Reader) (traces, events int, err error) {
	var doc map[string]any
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, 0, fmt.Errorf("qlog: not valid JSON: %w", err)
	}
	ver, _ := doc["qlog_version"].(string)
	if ver == "" {
		return 0, 0, fmt.Errorf("qlog: missing qlog_version")
	}
	trs, ok := doc["traces"].([]any)
	if !ok || len(trs) == 0 {
		return 0, 0, fmt.Errorf("qlog: missing or empty traces array")
	}
	for i, t := range trs {
		tr, ok := t.(map[string]any)
		if !ok {
			return 0, 0, fmt.Errorf("qlog: trace %d is not an object", i)
		}
		vp, ok := tr["vantage_point"].(map[string]any)
		if !ok {
			return 0, 0, fmt.Errorf("qlog: trace %d: missing vantage_point", i)
		}
		if vt, _ := vp["type"].(string); vt == "" {
			return 0, 0, fmt.Errorf("qlog: trace %d: vantage_point has no type", i)
		}
		evs, ok := tr["events"].([]any)
		if !ok {
			return 0, 0, fmt.Errorf("qlog: trace %d: missing events array", i)
		}
		for j, e := range evs {
			evo, ok := e.(map[string]any)
			if !ok {
				return 0, 0, fmt.Errorf("qlog: trace %d event %d: not an object", i, j)
			}
			if _, ok := evo["time"].(float64); !ok {
				return 0, 0, fmt.Errorf("qlog: trace %d event %d: missing numeric time", i, j)
			}
			name, _ := evo["name"].(string)
			if !strings.Contains(name, ":") {
				return 0, 0, fmt.Errorf("qlog: trace %d event %d: name %q is not category:event", i, j, name)
			}
			events++
		}
		traces++
	}
	return traces, events, nil
}
