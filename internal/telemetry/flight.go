package telemetry

import "io"

// FlightRecorder is a fixed-size per-session event ring built on the
// RingSink machinery: every session records its last N events into one
// of these at zero steady-state cost (one mutex, one struct copy, no
// allocation — enforced by TestFlightRecorderZeroAlloc), regardless of
// whether full-fidelity tracing is sampled in for the session. When the
// session hits an anomaly (stall, shed, degradation, abort) the ring is
// dumped as a structured JSONL artifact that ParseJSONL round-trips.
//
// Unlike a Tracer, a FlightRecorder never samples and never stamps:
// callers pre-fill Event.Time (e.g. from Tracer.Now) and Event.EP so
// the dump lines up with the shared trace timeline.
type FlightRecorder struct {
	ring RingSink
}

// NewFlightRecorder builds a recorder holding the last capacity events
// (default 256 if capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 256
	}
	return &FlightRecorder{ring: RingSink{buf: make([]Event, capacity)}}
}

// Record appends one event, overwriting the oldest when full. Nil-safe
// and zero-alloc: sessions with recording disabled hold a nil recorder
// and pay only the nil check.
func (f *FlightRecorder) Record(ev Event) {
	if f == nil {
		return
	}
	f.ring.Emit(ev)
}

// Events returns the recorded events in emission order (a copy; safe
// to retain).
func (f *FlightRecorder) Events() []Event {
	if f == nil {
		return nil
	}
	return f.ring.Events()
}

// Len reports the number of buffered events.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	return f.ring.Len()
}

// Dropped reports how many events were overwritten — how far back the
// recording horizon has moved past the ring capacity.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	return f.ring.Dropped()
}

// WriteTo dumps the ring as JSONL (the structured flight-dump
// artifact). The output round-trips through ParseJSONL.
func (f *FlightRecorder) WriteTo(w io.Writer) (int64, error) {
	evs := f.Events()
	cw := &countingWriter{w: w}
	err := WriteJSONL(cw, evs)
	return cw.n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
