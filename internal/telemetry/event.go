// Package telemetry provides the observability layer for the TCPLS
// stack: a qlog-flavored structured event tracer and an expvar-style
// metrics registry.
//
// The tracer is designed for hot paths. Events are flat structs passed
// by value, the Tracer is nil-safe (a nil *Tracer is a valid, disabled
// tracer), and the no-sink path performs zero heap allocations — a
// property enforced by TestDisabledTracerZeroAlloc and the
// BenchmarkTracerDisabled benchmark wired into `make check`.
//
// The schema follows qlog's shape without its ceremony: each event is
// one JSON object per line (JSONL) with a "category:event" name, a
// relative timestamp, the emitting endpoint, and a small data object.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// EventKind enumerates every traced event across the stack. Kinds are
// grouped by layer: tcp (userspace TCP machinery), record (TCPLS
// record/control codec), session/stream/path/health (the core TCPLS
// layer), and netsim (the packet-level emulator).
type EventKind uint8

const (
	EvNone EventKind = iota

	// tcpnet layer.
	EvTCPState          // S=new state
	EvTCPRetransmit     // A=seq, B=bytes
	EvTCPFastRetransmit // A=snd_una
	EvTCPRTO            // A=backoff, B=rto_ns
	EvTCPCwnd           // A=cwnd, B=ssthresh, C=bytes_in_flight
	EvTCPChallengeAck   // A=seg_seq
	EvTCPDrop           // S=cause, A=bytes

	// record layer (as used by core's paths).
	EvRecordSent // Stream, A=len, B=offset, C=fin(0/1)
	EvRecordRecv // Stream, A=len, B=offset, C=fin(0/1)
	EvCtrlSent   // S=frame kind
	EvCtrlRecv   // S=frame kind

	// core session/stream lifecycle.
	EvSessionStart // S=role, A=conn_id
	EvSessionClose // S=reason
	EvStreamOpen   // Stream, A=remote(0/1)
	EvStreamClose  // Stream, A=final_offset

	// core multipath lifecycle.
	EvPathJoin     // Path, A=join(0=initial,1=JOIN), S=remote addr
	EvPathClose    // Path, A=failed(0/1), S=reason
	EvPathDegraded // Path, A=outstanding probes
	EvPathFailover // Path=dead path, A=survivor path id (0 if none)

	// core health monitor.
	EvHealthPing // Path, A=seq
	EvHealthPong // Path, A=seq, B=rtt_ns, C=srtt_ns

	// core graceful degradation (middlebox interference).
	EvSessionDegraded // A=capability bits, S=cause
	EvPathRevalidate  // Path, A=probe seq, S=cause

	// core overload resilience (admission control, shedding, watchdogs).
	EvSessionShed // A=conn_id, S=class ("idle"/"degraded")
	EvAdmission   // A=open(0/1), S=cause
	EvStreamStall // Stream/Path, A=unacked bytes, S=kind

	// netsim links.
	EvLinkQueue     // S=link, A=queued bytes (new high-water mark)
	EvLinkDropQueue // S=link, A=bytes
	EvLinkDropLoss  // S=link, A=bytes
	EvLinkDropDown  // S=link, A=bytes
	EvLinkDropStall // S=link, A=bytes
	EvLinkDropMbox  // S=link, A=bytes

	evMax // sentinel
)

// Event is a single trace record. It is a flat value type on purpose:
// emitting one must never allocate when tracing is disabled, and the
// struct is small enough (~80 bytes) to pass by value through the
// Sink interface without boxing.
//
// The A/B/C fields are kind-specific integer payloads and S is a
// kind-specific string payload; the per-kind meaning is documented on
// the EventKind constants and reflected in the JSON field names.
type Event struct {
	Time   time.Duration // relative to the tracer's epoch (virtual time under netsim)
	Kind   EventKind
	EP     string // endpoint label ("client", "server", "net", ...)
	Path   uint32 // path / connection trace id, 0 if n/a
	Stream uint32 // stream id, 0 if n/a
	A      int64
	B      int64
	C      int64
	S      string
}

// kindInfo maps a kind to its qlog-style name and the JSON keys of its
// payload fields (empty key = field unused for this kind).
type kindInfo struct {
	name    string
	a, b, c string
	s       string
}

var kinds = [evMax]kindInfo{
	EvTCPState:          {name: "tcp:state_updated", s: "new"},
	EvTCPRetransmit:     {name: "tcp:retransmit", a: "seq", b: "bytes", s: "kind"},
	EvTCPFastRetransmit: {name: "tcp:fast_retransmit", a: "snd_una"},
	EvTCPRTO:            {name: "tcp:rto_expired", a: "backoff", b: "rto_ns"},
	EvTCPCwnd:           {name: "tcp:metrics_updated", a: "cwnd", b: "ssthresh", c: "bytes_in_flight"},
	EvTCPChallengeAck:   {name: "tcp:challenge_ack", a: "seq"},
	EvTCPDrop:           {name: "tcp:segment_dropped", a: "bytes", s: "cause"},
	EvRecordSent:        {name: "record:sent", a: "len", b: "offset", c: "fin"},
	EvRecordRecv:        {name: "record:received", a: "len", b: "offset", c: "fin"},
	EvCtrlSent:          {name: "record:control_sent", s: "frame"},
	EvCtrlRecv:          {name: "record:control_received", s: "frame"},
	EvSessionStart:      {name: "session:started", a: "conn_id", s: "role"},
	EvSessionClose:      {name: "session:closed", s: "reason"},
	EvStreamOpen:        {name: "stream:opened", a: "remote"},
	EvStreamClose:       {name: "stream:closed", a: "final_offset"},
	EvPathJoin:          {name: "path:joined", a: "join", s: "remote"},
	EvPathClose:         {name: "path:closed", a: "failed", s: "reason"},
	EvPathDegraded:      {name: "path:degraded", a: "outstanding"},
	EvPathFailover:      {name: "path:failover", a: "survivor"},
	EvHealthPing:        {name: "health:ping", a: "seq"},
	EvHealthPong:        {name: "health:pong", a: "seq", b: "rtt_ns", c: "srtt_ns"},
	EvSessionDegraded:   {name: "session:degraded", a: "capability", s: "cause"},
	EvPathRevalidate:    {name: "path:revalidate", a: "seq", s: "cause"},
	EvSessionShed:       {name: "session:shed", a: "conn_id", s: "class"},
	EvAdmission:         {name: "server:admission", a: "open", s: "cause"},
	EvStreamStall:       {name: "stream:stalled", a: "unacked", s: "kind"},
	EvLinkQueue:         {name: "netsim:queue_high_water", a: "bytes", s: "link"},
	EvLinkDropQueue:     {name: "netsim:drop_queue", a: "bytes", s: "link"},
	EvLinkDropLoss:      {name: "netsim:drop_loss", a: "bytes", s: "link"},
	EvLinkDropDown:      {name: "netsim:drop_down", a: "bytes", s: "link"},
	EvLinkDropStall:     {name: "netsim:drop_stall", a: "bytes", s: "link"},
	EvLinkDropMbox:      {name: "netsim:drop_mbox", a: "bytes", s: "link"},
}

// nameToKind is the reverse mapping used by ParseJSONL.
var nameToKind = func() map[string]EventKind {
	m := make(map[string]EventKind, evMax)
	for k, info := range kinds {
		if info.name != "" {
			m[info.name] = EventKind(k)
		}
	}
	return m
}()

// Name returns the qlog-style "category:event" name of the kind.
func (k EventKind) Name() string {
	if int(k) < len(kinds) && kinds[k].name != "" {
		return kinds[k].name
	}
	return "unknown:" + strconv.Itoa(int(k))
}

func (k EventKind) String() string { return k.Name() }

// AppendJSON appends the event as a single JSON object (no trailing
// newline) to buf and returns the extended slice. The encoder is
// hand-rolled so sinks can serialize without reflection; offline
// tooling uses ParseJSONL to get the events back.
func (ev Event) AppendJSON(buf []byte) []byte {
	info := kindInfo{name: ev.Kind.Name()}
	if int(ev.Kind) < len(kinds) && kinds[ev.Kind].name != "" {
		info = kinds[ev.Kind]
	}
	buf = append(buf, `{"time":`...)
	buf = strconv.AppendInt(buf, int64(ev.Time), 10)
	buf = append(buf, `,"name":"`...)
	buf = append(buf, info.name...)
	buf = append(buf, '"')
	if ev.EP != "" {
		buf = append(buf, `,"ep":`...)
		buf = appendJSONString(buf, ev.EP)
	}
	if ev.Path != 0 {
		buf = append(buf, `,"path":`...)
		buf = strconv.AppendUint(buf, uint64(ev.Path), 10)
	}
	if ev.Stream != 0 {
		buf = append(buf, `,"stream":`...)
		buf = strconv.AppendUint(buf, uint64(ev.Stream), 10)
	}
	buf = append(buf, `,"data":{`...)
	first := true
	field := func(key string, v int64) {
		if key == "" {
			return
		}
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = append(buf, '"')
		buf = append(buf, key...)
		buf = append(buf, `":`...)
		buf = strconv.AppendInt(buf, v, 10)
	}
	field(info.a, ev.A)
	field(info.b, ev.B)
	field(info.c, ev.C)
	if info.s != "" && ev.S != "" {
		if !first {
			buf = append(buf, ',')
		}
		buf = append(buf, '"')
		buf = append(buf, info.s...)
		buf = append(buf, `":`...)
		buf = appendJSONString(buf, ev.S)
	}
	buf = append(buf, "}}"...)
	return buf
}

// appendJSONString appends s as a quoted JSON string, escaping the
// characters that matter for the strings we emit (no exotic control
// characters reach the tracer).
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			buf = append(buf, `\u00`...)
			const hex = "0123456789abcdef"
			buf = append(buf, hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

// WriteJSONL serializes events as JSONL to w. It is the offline
// counterpart used by tools and tests; allocation here is fine.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 256)
	for _, ev := range events {
		buf = ev.AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJSONL reconstructs events from a JSONL trace produced by
// AppendJSON/WriteJSONL. Unknown event names are skipped (forward
// compatibility); malformed lines are an error.
func ParseJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		ev, ok, err := parseEventLine(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
		}
		if ok {
			out = append(out, ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseEventLine decodes one JSONL line. It uses a tiny purpose-built
// scanner rather than encoding/json so the package stays dependency-
// free and the decode survives data objects with unknown keys.
func parseEventLine(line string) (Event, bool, error) {
	var ev Event
	obj, err := parseJSONObject(line)
	if err != nil {
		return ev, false, err
	}
	name, _ := obj["name"].(string)
	kind, ok := nameToKind[name]
	if !ok {
		return ev, false, nil
	}
	ev.Kind = kind
	if v, ok := obj["time"].(int64); ok {
		ev.Time = time.Duration(v)
	}
	if s, ok := obj["ep"].(string); ok {
		ev.EP = s
	}
	if v, ok := obj["path"].(int64); ok {
		ev.Path = uint32(v)
	}
	if v, ok := obj["stream"].(int64); ok {
		ev.Stream = uint32(v)
	}
	data, _ := obj["data"].(map[string]any)
	info := kinds[kind]
	if v, ok := data[info.a].(int64); ok && info.a != "" {
		ev.A = v
	}
	if v, ok := data[info.b].(int64); ok && info.b != "" {
		ev.B = v
	}
	if v, ok := data[info.c].(int64); ok && info.c != "" {
		ev.C = v
	}
	if s, ok := data[info.s].(string); ok && info.s != "" {
		ev.S = s
	}
	return ev, true, nil
}

// --- minimal JSON object parser (flat objects with one level of
// nesting for "data"; values are strings or integers) ---

type jsonScanner struct {
	s   string
	pos int
}

func parseJSONObject(s string) (map[string]any, error) {
	js := &jsonScanner{s: s}
	js.ws()
	v, err := js.object()
	if err != nil {
		return nil, err
	}
	return v, nil
}

func (j *jsonScanner) ws() {
	for j.pos < len(j.s) && (j.s[j.pos] == ' ' || j.s[j.pos] == '\t') {
		j.pos++
	}
}

func (j *jsonScanner) expect(c byte) error {
	j.ws()
	if j.pos >= len(j.s) || j.s[j.pos] != c {
		return fmt.Errorf("expected %q at %d", c, j.pos)
	}
	j.pos++
	return nil
}

func (j *jsonScanner) object() (map[string]any, error) {
	if err := j.expect('{'); err != nil {
		return nil, err
	}
	m := make(map[string]any)
	j.ws()
	if j.pos < len(j.s) && j.s[j.pos] == '}' {
		j.pos++
		return m, nil
	}
	for {
		key, err := j.str()
		if err != nil {
			return nil, err
		}
		if err := j.expect(':'); err != nil {
			return nil, err
		}
		val, err := j.value()
		if err != nil {
			return nil, err
		}
		m[key] = val
		j.ws()
		if j.pos < len(j.s) && j.s[j.pos] == ',' {
			j.pos++
			continue
		}
		if err := j.expect('}'); err != nil {
			return nil, err
		}
		return m, nil
	}
}

func (j *jsonScanner) value() (any, error) {
	j.ws()
	if j.pos >= len(j.s) {
		return nil, fmt.Errorf("unexpected end of input")
	}
	switch c := j.s[j.pos]; {
	case c == '"':
		return j.str()
	case c == '{':
		return j.object()
	case c == '-' || (c >= '0' && c <= '9'):
		start := j.pos
		j.pos++
		for j.pos < len(j.s) {
			d := j.s[j.pos]
			if (d >= '0' && d <= '9') || d == '.' || d == 'e' || d == 'E' || d == '+' || d == '-' {
				j.pos++
				continue
			}
			break
		}
		lit := j.s[start:j.pos]
		if n, err := strconv.ParseInt(lit, 10, 64); err == nil {
			return n, nil
		}
		f, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", lit)
		}
		return int64(f), nil
	default:
		return nil, fmt.Errorf("unexpected character %q at %d", c, j.pos)
	}
}

func (j *jsonScanner) str() (string, error) {
	if err := j.expect('"'); err != nil {
		return "", err
	}
	var sb strings.Builder
	for j.pos < len(j.s) {
		c := j.s[j.pos]
		if c == '"' {
			j.pos++
			return sb.String(), nil
		}
		if c == '\\' {
			j.pos++
			if j.pos >= len(j.s) {
				break
			}
			e := j.s[j.pos]
			switch e {
			case '"', '\\', '/':
				sb.WriteByte(e)
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case 'u':
				if j.pos+4 < len(j.s) {
					if n, err := strconv.ParseUint(j.s[j.pos+1:j.pos+5], 16, 32); err == nil {
						sb.WriteRune(rune(n))
						j.pos += 4
					}
				}
			default:
				sb.WriteByte(e)
			}
			j.pos++
			continue
		}
		sb.WriteByte(c)
		j.pos++
	}
	return "", fmt.Errorf("unterminated string")
}
