package tcpnet

// Packetdrill-style scripted conformance tests: a raw peer (a netsim
// host with no TCP stack) injects hand-built segments at the stack under
// test and asserts, segment by segment, what comes back on the wire and
// when. Where the rest of the suite checks behaviour end-to-end between
// two copies of this stack (which would agree with each other even if
// both were wrong), these scripts pin the stack against the RFCs
// themselves: RTO backoff doubling (RFC 6298), fast retransmit on the
// third duplicate ACK (RFC 5681), SACK-driven retransmit selection
// (RFC 6675), the RFC 5961 challenge-ACK defenses, and zero-window
// persist probing (RFC 9293 §3.8.6.1).
//
// The DSL is a table of steps executed strictly in order:
//
//	inject  — marshal a segment on the peer and send it to the stack
//	expect  — the NEXT segment the stack emits must satisfy the matcher
//	quiet   — the stack must emit nothing for the given duration
//	do      — an application-level action (Write, state assertion, ...)
//
// Strict next-segment matching is the point: an unexpected segment is a
// conformance failure, not noise to be skipped.

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

const (
	scriptPeerPort  = 9000
	scriptStackPort = 443
	scriptPeerISS   = 1000
	scriptMSS       = 1400
)

// capture is one segment observed at the peer, stamped with its virtual
// arrival time.
type capture struct {
	seg *wire.Segment
	at  time.Duration
}

type scriptStep struct {
	name   string
	inject func(h *scriptHarness) *wire.Segment
	expect func(h *scriptHarness, c capture) error
	within time.Duration // expect window; default 2s
	quiet  time.Duration
	do     func(h *scriptHarness) error
}

type scriptHarness struct {
	t        *testing.T
	net      *netsim.Network
	stack    *Stack
	peer     *netsim.Host
	out      chan capture
	acceptCh chan *Conn
	conn     *Conn // the connection under test, set by the accept step

	iss uint32 // stack's initial send sequence, learned from its SYN-ACK
}

func newScriptHarness(t *testing.T, cfg Config) *scriptHarness {
	t.Helper()
	n := netsim.New()
	peerH, stackH := n.Host("peer"), n.Host("stack")
	n.AddLink(peerH, stackH, clientAddr, serverAddr, netsim.LinkConfig{Delay: time.Millisecond})
	s := NewStack(stackH, cfg)
	lst, err := s.Listen(netip.Addr{}, scriptStackPort)
	if err != nil {
		t.Fatal(err)
	}
	h := &scriptHarness{
		t: t, net: n, stack: s, peer: peerH,
		out:      make(chan capture, 256),
		acceptCh: make(chan *Conn, 1),
	}
	// The peer is a raw packet tap, not a Stack: every segment the stack
	// sends is deep-copied (the packet buffer is pooled) and queued for
	// the script to assert on.
	peerH.Register(wire.ProtoTCP, func(p *wire.Packet) {
		seg, err := wire.UnmarshalSegment(p.Payload, p.Src, p.Dst, false)
		if err != nil {
			return
		}
		cp := *seg
		cp.Payload = append([]byte(nil), seg.Payload...)
		cp.Options = make([]wire.Option, len(seg.Options))
		for i, o := range seg.Options {
			cp.Options[i] = wire.Option{Kind: o.Kind, Data: append([]byte(nil), o.Data...)}
		}
		select {
		case h.out <- capture{&cp, n.VirtualNow()}:
		default:
			panic("script capture overflow")
		}
	})
	go func() {
		if c, err := lst.AcceptTCP(); err == nil {
			h.acceptCh <- c
		}
	}()
	t.Cleanup(func() { s.Close(); n.Close() })
	return h
}

// seg builds a peer->stack segment; the payload is n filler bytes.
func (h *scriptHarness) seg(flags wire.Flags, seq, ack uint32, n int, opts ...wire.Option) *wire.Segment {
	var payload []byte
	if n > 0 {
		payload = make([]byte, n)
		for i := range payload {
			payload[i] = byte('a' + i%26)
		}
	}
	return &wire.Segment{
		SrcPort: scriptPeerPort, DstPort: scriptStackPort,
		Seq: seq, Ack: ack, Flags: flags, Window: 65535,
		Options: opts, Payload: payload,
	}
}

func (h *scriptHarness) run(steps []scriptStep) {
	h.t.Helper()
	for _, st := range steps {
		switch {
		case st.inject != nil:
			seg := st.inject(h)
			buf, err := seg.Marshal(clientAddr, serverAddr)
			if err != nil {
				h.t.Fatalf("%s: marshal: %v", st.name, err)
			}
			pkt := &wire.Packet{Src: clientAddr, Dst: serverAddr, Proto: wire.ProtoTCP, TTL: 64, Payload: buf}
			if err := h.peer.Send(pkt); err != nil {
				h.t.Fatalf("%s: send: %v", st.name, err)
			}
		case st.expect != nil:
			within := st.within
			if within == 0 {
				within = 2 * time.Second
			}
			select {
			case c := <-h.out:
				if err := st.expect(h, c); err != nil {
					h.t.Fatalf("%s: got %s: %v", st.name, c.seg, err)
				}
			case <-time.After(within):
				h.t.Fatalf("%s: no segment within %v", st.name, within)
			}
		case st.quiet > 0:
			select {
			case c := <-h.out:
				h.t.Fatalf("%s: expected silence for %v, got %s", st.name, st.quiet, c.seg)
			case <-time.After(st.quiet):
			}
		case st.do != nil:
			if err := st.do(h); err != nil {
				h.t.Fatalf("%s: %v", st.name, err)
			}
		default:
			h.t.Fatalf("%s: empty step", st.name)
		}
	}
}

// expectData matches a data segment at the given stack sequence/length.
// PSH is ignored (it varies with burst position); SYN/RST/FIN must be
// clear.
func expectData(seq func(h *scriptHarness) uint32, n int) func(*scriptHarness, capture) error {
	return func(h *scriptHarness, c capture) error {
		s := c.seg
		if s.Flags.Has(wire.FlagSYN) || s.Flags.Has(wire.FlagRST) || s.Flags.Has(wire.FlagFIN) {
			return fmt.Errorf("unexpected control flags %s", s.Flags)
		}
		if !s.Flags.Has(wire.FlagACK) {
			return fmt.Errorf("data segment without ACK")
		}
		if want := seq(h); s.Seq != want {
			return fmt.Errorf("seq = %d, want %d", s.Seq, want)
		}
		if len(s.Payload) != n {
			return fmt.Errorf("payload = %d bytes, want %d", len(s.Payload), n)
		}
		return nil
	}
}

// expectPureAck matches an empty ACK acknowledging the given peer
// sequence — the shape of every RFC 5961 challenge ACK.
func expectPureAck(ack func(h *scriptHarness) uint32) func(*scriptHarness, capture) error {
	return func(h *scriptHarness, c capture) error {
		s := c.seg
		if s.Flags.Has(wire.FlagSYN) || s.Flags.Has(wire.FlagRST) || s.Flags.Has(wire.FlagFIN) {
			return fmt.Errorf("unexpected control flags %s", s.Flags)
		}
		if !s.Flags.Has(wire.FlagACK) || len(s.Payload) != 0 {
			return fmt.Errorf("not a pure ACK")
		}
		if want := ack(h); s.Ack != want {
			return fmt.Errorf("ack = %d, want %d", s.Ack, want)
		}
		return nil
	}
}

// handshakeSteps performs the passive-open three-way handshake: the
// peer's SYN advertises MSS and SACK-permitted but no window scaling,
// so all windows in the script are literal 16-bit values.
func handshakeSteps() []scriptStep {
	return []scriptStep{
		{name: "inject SYN", inject: func(h *scriptHarness) *wire.Segment {
			return h.seg(wire.FlagSYN, scriptPeerISS, 0, 0,
				wire.MSSOption(scriptMSS), wire.SACKPermittedOption())
		}},
		{name: "expect SYN-ACK", expect: func(h *scriptHarness, c capture) error {
			s := c.seg
			if !s.Flags.Has(wire.FlagSYN | wire.FlagACK) {
				return fmt.Errorf("flags = %s, want SYN|ACK", s.Flags)
			}
			if s.Ack != scriptPeerISS+1 {
				return fmt.Errorf("ack = %d, want %d", s.Ack, scriptPeerISS+1)
			}
			h.iss = s.Seq
			return nil
		}},
		{name: "inject ACK of SYN-ACK", inject: func(h *scriptHarness) *wire.Segment {
			return h.seg(wire.FlagACK, scriptPeerISS+1, h.iss+1, 0)
		}},
		{name: "accept", do: func(h *scriptHarness) error {
			select {
			case h.conn = <-h.acceptCh:
				return nil
			case <-time.After(2 * time.Second):
				return fmt.Errorf("listener never accepted")
			}
		}},
	}
}

// primeRTTSteps sends and acks a small write so the stack has an RTT
// sample: RTO collapses from the 1 s initial value to minRTO, and the
// tail-loss probe arms. Scripts that time retransmissions start here.
func primeRTTSteps(primeLen int) []scriptStep {
	return []scriptStep{
		{name: "write prime", do: func(h *scriptHarness) error {
			_, err := h.conn.Write(make([]byte, primeLen))
			return err
		}},
		{name: "expect prime data", expect: expectData(func(h *scriptHarness) uint32 { return h.iss + 1 }, primeLen)},
		{name: "inject prime ack", inject: func(h *scriptHarness) *wire.Segment {
			return h.seg(wire.FlagACK, scriptPeerISS+1, h.iss+1+uint32(primeLen), 0)
		}},
	}
}

func requireState(want state) func(h *scriptHarness) error {
	return func(h *scriptHarness) error {
		st, err := connState(h.conn)
		if st != want {
			return fmt.Errorf("state = %v (err %v), want %v", st, err, want)
		}
		return nil
	}
}

// TestScriptRTOBackoffDoubling (RFC 6298 §5.5): with the peer silent,
// successive retransmission timeouts must double. After the RTT-primed
// flight, the first resend is the tail-loss probe; the RTO retransmits
// that follow must show gaps in a ~2x ratio.
func TestScriptRTOBackoffDoubling(t *testing.T) {
	const flight = 600
	h := newScriptHarness(t, Config{})
	var times []time.Duration
	record := func(m func(*scriptHarness, capture) error) func(*scriptHarness, capture) error {
		return func(h *scriptHarness, c capture) error {
			if err := m(h, c); err != nil {
				return err
			}
			times = append(times, c.at)
			return nil
		}
	}
	dataSeq := func(h *scriptHarness) uint32 { return h.iss + 101 }
	steps := append(handshakeSteps(), primeRTTSteps(100)...)
	steps = append(steps,
		scriptStep{name: "write flight", do: func(h *scriptHarness) error {
			_, err := h.conn.Write(make([]byte, flight))
			return err
		}},
		scriptStep{name: "expect original", expect: expectData(dataSeq, flight)},
		scriptStep{name: "expect TLP retransmit", within: time.Second,
			expect: record(expectData(dataSeq, flight))},
		scriptStep{name: "expect RTO retransmit 1", within: 2 * time.Second,
			expect: record(expectData(dataSeq, flight))},
		scriptStep{name: "expect RTO retransmit 2", within: 3 * time.Second,
			expect: record(expectData(dataSeq, flight))},
		scriptStep{name: "expect RTO retransmit 3", within: 5 * time.Second,
			expect: record(expectData(dataSeq, flight))},
		scriptStep{name: "check doubling", do: func(h *scriptHarness) error {
			g1, g2, g3 := times[1]-times[0], times[2]-times[1], times[3]-times[2]
			for _, r := range []float64{float64(g2) / float64(g1), float64(g3) / float64(g2)} {
				// Nominal ratio is 2.0; timers only ever fire late, so a
				// loaded machine skews it, but not past these bounds.
				if r < 1.3 || r > 3.2 {
					return fmt.Errorf("backoff ratio %.2f outside [1.3, 3.2] (gaps %v %v %v)", r, g1, g2, g3)
				}
			}
			return nil
		}},
	)
	h.run(steps)
}

// TestScriptFastRetransmit (RFC 5681 §3.2): the third duplicate ACK —
// not the first, not the second — triggers an immediate retransmission
// of the first unacked segment, long before the RTO (left at its 1 s
// initial value by skipping RTT priming).
func TestScriptFastRetransmit(t *testing.T) {
	h := newScriptHarness(t, Config{})
	firstSeq := func(h *scriptHarness) uint32 { return h.iss + 1 }
	dupAck := func(h *scriptHarness) *wire.Segment {
		return h.seg(wire.FlagACK, scriptPeerISS+1, h.iss+1, 0)
	}
	steps := append(handshakeSteps(),
		scriptStep{name: "write 5 MSS", do: func(h *scriptHarness) error {
			_, err := h.conn.Write(make([]byte, 5*scriptMSS))
			return err
		}},
	)
	for i := 0; i < 5; i++ {
		i := i
		steps = append(steps, scriptStep{
			name:   fmt.Sprintf("expect data segment %d", i),
			expect: expectData(func(h *scriptHarness) uint32 { return h.iss + 1 + uint32(i*scriptMSS) }, scriptMSS),
		})
	}
	steps = append(steps,
		scriptStep{name: "inject dupack 1", inject: dupAck},
		scriptStep{name: "inject dupack 2", inject: dupAck},
		scriptStep{name: "quiet below threshold", quiet: 50 * time.Millisecond},
		scriptStep{name: "inject dupack 3", inject: dupAck},
		scriptStep{name: "expect fast retransmit", within: 500 * time.Millisecond,
			expect: expectData(firstSeq, scriptMSS)},
		scriptStep{name: "check counters", do: func(h *scriptHarness) error {
			if st := connStats(h.conn); st.FastRetransmits != 1 {
				return fmt.Errorf("FastRetransmits = %d, want 1", st.FastRetransmits)
			}
			return nil
		}},
	)
	h.run(steps)
}

// TestScriptSACKRetransmitSelection (RFC 6675): when the duplicate ACKs
// carry SACK blocks covering segments 3-5, recovery must resend only the
// holes — segment 1 on entering recovery, segment 2 on the partial ack —
// and nothing after the cumulative ack.
func TestScriptSACKRetransmitSelection(t *testing.T) {
	h := newScriptHarness(t, Config{})
	seqAt := func(seg int) func(h *scriptHarness) uint32 {
		return func(h *scriptHarness) uint32 { return h.iss + 1 + uint32(seg*scriptMSS) }
	}
	sackDup := func(h *scriptHarness) *wire.Segment {
		blocks := []wire.SACKBlock{{Left: h.iss + 1 + 2*scriptMSS, Right: h.iss + 1 + 5*scriptMSS}}
		return h.seg(wire.FlagACK, scriptPeerISS+1, h.iss+1, 0, wire.SACKOption(blocks))
	}
	steps := append(handshakeSteps(),
		scriptStep{name: "write 5 MSS", do: func(h *scriptHarness) error {
			_, err := h.conn.Write(make([]byte, 5*scriptMSS))
			return err
		}},
	)
	for i := 0; i < 5; i++ {
		steps = append(steps, scriptStep{
			name:   fmt.Sprintf("expect data segment %d", i),
			expect: expectData(seqAt(i), scriptMSS),
		})
	}
	steps = append(steps,
		scriptStep{name: "inject sack dupack 1", inject: sackDup},
		scriptStep{name: "inject sack dupack 2", inject: sackDup},
		scriptStep{name: "inject sack dupack 3", inject: sackDup},
		scriptStep{name: "expect retransmit of hole 1", within: 500 * time.Millisecond,
			expect: expectData(seqAt(0), scriptMSS)},
		scriptStep{name: "inject partial ack", inject: func(h *scriptHarness) *wire.Segment {
			blocks := []wire.SACKBlock{{Left: h.iss + 1 + 2*scriptMSS, Right: h.iss + 1 + 5*scriptMSS}}
			return h.seg(wire.FlagACK, scriptPeerISS+1, h.iss+1+scriptMSS, 0, wire.SACKOption(blocks))
		}},
		scriptStep{name: "expect retransmit of hole 2", within: 500 * time.Millisecond,
			expect: expectData(seqAt(1), scriptMSS)},
		scriptStep{name: "inject cumulative ack", inject: func(h *scriptHarness) *wire.Segment {
			return h.seg(wire.FlagACK, scriptPeerISS+1, h.iss+1+5*scriptMSS, 0)
		}},
		scriptStep{name: "no spurious retransmits", quiet: 300 * time.Millisecond},
	)
	h.run(steps)
}

// TestScriptChallengeAckOnWindowRST (RFC 5961 §3.2): a RST inside the
// receive window but not at exactly rcvNxt must elicit a challenge ACK
// and leave the connection alive.
func TestScriptChallengeAckOnWindowRST(t *testing.T) {
	h := newScriptHarness(t, Config{})
	steps := append(handshakeSteps(),
		scriptStep{name: "inject in-window RST", inject: func(h *scriptHarness) *wire.Segment {
			return h.seg(wire.FlagRST, scriptPeerISS+1+50, 0, 0)
		}},
		scriptStep{name: "expect challenge ACK",
			expect: expectPureAck(func(h *scriptHarness) uint32 { return scriptPeerISS + 1 })},
		scriptStep{name: "still established", do: requireState(stateEstablished)},
	)
	h.run(steps)
}

// TestScriptChallengeAckOnWindowSYN (RFC 5961 §4.2): a SYN on a
// synchronized connection — wherever it lands — gets a challenge ACK
// and changes nothing; only the RST the genuine peer would answer with
// may tear the connection down.
func TestScriptChallengeAckOnWindowSYN(t *testing.T) {
	h := newScriptHarness(t, Config{})
	steps := append(handshakeSteps(),
		scriptStep{name: "inject in-window SYN", inject: func(h *scriptHarness) *wire.Segment {
			return h.seg(wire.FlagSYN, scriptPeerISS+1+10, 0, 0)
		}},
		scriptStep{name: "expect challenge ACK",
			expect: expectPureAck(func(h *scriptHarness) uint32 { return scriptPeerISS + 1 })},
		scriptStep{name: "still established", do: requireState(stateEstablished)},
	)
	h.run(steps)
}

// TestScriptExactRSTTearsDown (RFC 5961 §3.2): the one sequence number a
// RST is honored at is exactly rcvNxt — then the connection dies, with
// no challenge.
func TestScriptExactRSTTearsDown(t *testing.T) {
	h := newScriptHarness(t, Config{})
	steps := append(handshakeSteps(),
		scriptStep{name: "inject exact RST", inject: func(h *scriptHarness) *wire.Segment {
			return h.seg(wire.FlagRST, scriptPeerISS+1, 0, 0)
		}},
		scriptStep{name: "no challenge", quiet: 200 * time.Millisecond},
		scriptStep{name: "closed", do: func(h *scriptHarness) error {
			deadline := time.Now().Add(time.Second)
			for {
				st, err := connState(h.conn)
				if st == stateClosed {
					if err != ErrReset {
						return fmt.Errorf("err = %v, want %v", err, ErrReset)
					}
					return nil
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("state = %v, want closed", st)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}},
	)
	h.run(steps)
}

// TestScriptChallengeAckOnFutureAck (RFC 5961 §5): an ACK for data never
// sent is a blind-injection signature; the stack must challenge-ACK,
// and the segment's payload must never reach the receive queue.
func TestScriptChallengeAckOnFutureAck(t *testing.T) {
	h := newScriptHarness(t, Config{})
	steps := append(handshakeSteps(),
		scriptStep{name: "inject future ack with payload", inject: func(h *scriptHarness) *wire.Segment {
			return h.seg(wire.FlagACK, scriptPeerISS+1, h.iss+1+5000, 64)
		}},
		scriptStep{name: "expect challenge ACK",
			expect: expectPureAck(func(h *scriptHarness) uint32 { return scriptPeerISS + 1 })},
		scriptStep{name: "payload rejected", do: func(h *scriptHarness) error {
			if st := connStats(h.conn); st.BytesRcvd != 0 {
				return fmt.Errorf("BytesRcvd = %d, want 0 (injected payload accepted)", st.BytesRcvd)
			}
			return requireState(stateEstablished)(h)
		}},
	)
	h.run(steps)
}

// TestScriptZeroWindowPersist (RFC 9293 §3.8.6.1): against a zero
// window the stack must hold data back and probe with a single byte on
// the persist timer, then release the rest the moment the window opens.
func TestScriptZeroWindowPersist(t *testing.T) {
	const flight = 1000
	h := newScriptHarness(t, Config{})
	steps := append(handshakeSteps(), primeRTTSteps(100)...)
	steps = append(steps,
		scriptStep{name: "inject zero-window ack", inject: func(h *scriptHarness) *wire.Segment {
			s := h.seg(wire.FlagACK, scriptPeerISS+1, h.iss+101, 0)
			s.Window = 0
			return s
		}},
		// The quiet step doubles as settling time: the zero-window ack
		// must cross the 1 ms link before the write below, or the data
		// would legitimately go out under the old window.
		scriptStep{name: "zero-window ack lands", quiet: 50 * time.Millisecond},
		scriptStep{name: "write against closed window", do: func(h *scriptHarness) error {
			_, err := h.conn.Write(make([]byte, flight))
			return err
		}},
		scriptStep{name: "window respected", quiet: 100 * time.Millisecond},
		scriptStep{name: "expect 1-byte persist probe", within: 2 * time.Second,
			expect: expectData(func(h *scriptHarness) uint32 { return h.iss + 101 }, 1)},
		scriptStep{name: "inject window open", inject: func(h *scriptHarness) *wire.Segment {
			return h.seg(wire.FlagACK, scriptPeerISS+1, h.iss+102, 0)
		}},
		scriptStep{name: "expect remaining data", within: time.Second,
			expect: expectData(func(h *scriptHarness) uint32 { return h.iss + 102 }, flight-1)},
	)
	h.run(steps)
}
