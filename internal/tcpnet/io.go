package tcpnet

import (
	"io"
	"os"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// Read implements net.Conn: it blocks until data, EOF (peer FIN after the
// buffer drains), an error, or the read deadline. This copy out of the
// queued packet buffers is the receive path's single copy; each buffer
// returns to the pool once fully consumed.
func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.rcvQBytes > 0 {
			n := 0
			for n < len(b) && len(c.rcvQ) > 0 {
				s := &c.rcvQ[0]
				k := copy(b[n:], s.data)
				n += k
				if k == len(s.data) {
					bufpool.Put(s.owner)
					c.rcvQ[0] = rxSeg{}
					c.rcvQ = c.rcvQ[1:]
				} else {
					s.data = s.data[k:]
				}
			}
			if len(c.rcvQ) == 0 {
				c.rcvQ = nil // let the drained backing array go
			}
			c.rcvQBytes -= n
			// Window update: if we had closed the window, reopen it.
			if c.lastAdvW < c.mss && c.recvWindow() >= 2*c.mss && c.st == stateEstablished {
				c.sendAck()
			}
			return n, nil
		}
		if c.peerFin {
			return 0, io.EOF
		}
		if c.err != nil {
			return 0, c.err
		}
		if c.st == stateClosed || c.st == stateTimeWait {
			return 0, io.EOF
		}
		if !c.readDeadline.IsZero() && !time.Now().Before(c.readDeadline) {
			return 0, os.ErrDeadlineExceeded
		}
		c.readCond.Wait()
	}
}

// Write implements net.Conn: it queues data into the send buffer,
// blocking while the buffer is full, and triggers transmission.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for len(b) > 0 {
		if c.err != nil {
			return total, c.err
		}
		if c.closePending || c.finSent || c.st == stateClosed ||
			c.st == stateFinWait1 || c.st == stateFinWait2 ||
			c.st == stateClosing || c.st == stateLastAck || c.st == stateTimeWait {
			return total, ErrClosed
		}
		if !c.writeDeadline.IsZero() && !time.Now().Before(c.writeDeadline) {
			return total, os.ErrDeadlineExceeded
		}
		space := c.stack.config.SendBuf - len(c.sndBuf)
		if space <= 0 || c.st == stateSynSent || c.st == stateSynRcvd {
			c.writeCond.Wait()
			continue
		}
		n := min(space, len(b))
		if c.bytesInFlight() == 0 && len(c.sndBuf) == 0 {
			c.oldestTx = time.Now()
		}
		c.sndBuf = append(c.sndBuf, b[:n]...)
		b = b[n:]
		total += n
		c.maybeSendLocked()
	}
	return total, nil
}

// maybeSendLocked pushes as much buffered data as the congestion and flow
// control windows allow, then a FIN if one is pending. The segments of one
// call are collected into a burst and handed to the stack together, so a
// full ACK-clocked flight costs one route lookup and one link-queue pass.
// Caller holds c.mu.
func (c *Conn) maybeSendLocked() {
	if c.st != stateEstablished && c.st != stateCloseWait &&
		c.st != stateFinWait1 && c.st != stateClosing && c.st != stateLastAck {
		return
	}
	for {
		offset := int(c.sndNxt - c.sndUna) // first unsent byte in sndBuf
		if c.finSent {
			break
		}
		unsent := len(c.sndBuf) - offset
		if unsent <= 0 {
			break
		}
		wnd := min(c.ctrl.CWnd(), c.sndWnd)
		usable := wnd - int(c.sndNxt-c.sndUna)
		if usable <= 0 {
			if c.sndWnd == 0 && c.bytesInFlight() == 0 {
				c.armPersist()
			}
			break
		}
		n := min(unsent, min(usable, c.mss))
		seg := wire.Segment{
			SrcPort: c.local.Port(), DstPort: c.remote.Port(),
			Seq: c.sndNxt, Ack: c.rcvNxt,
			Flags:   wire.FlagACK,
			Window:  c.windowField(),
			Payload: c.sndBuf[offset : offset+n],
		}
		if n == unsent {
			seg.Flags |= wire.FlagPSH
		}
		isNew := !seqLT(c.sndNxt, c.sndMax)
		c.sndNxt += uint32(n)
		if seqLT(c.sndMax, c.sndNxt) {
			c.sndMax = c.sndNxt
		}
		c.stats.BytesSent += uint64(n)
		c.stack.ctr.bytesSent.Add(uint64(n))
		if isNew {
			if !c.rttPending {
				c.rttPending = true
				c.rttSeq = c.sndNxt
				c.rttStart = time.Now()
			}
			if len(c.txLog) < 4096 {
				c.txLog = append(c.txLog, txEntry{end: c.sndNxt, at: time.Now()})
			}
		}
		if c.oldestTx.IsZero() {
			c.oldestTx = time.Now()
		}
		c.txSegs = append(c.txSegs, seg)
	}
	if len(c.txSegs) > 0 {
		c.transmitBatch()
		c.armRetransmit()
	}
	// FIN once everything is sent.
	if c.closePending && !c.finSent && int(c.sndNxt-c.sndUna) == len(c.sndBuf) {
		c.sendFIN()
	}
}

// sendFIN emits our FIN and moves the state machine. Caller holds c.mu.
func (c *Conn) sendFIN() {
	c.finSent = true
	c.finSeq = c.sndNxt
	seg := &wire.Segment{
		SrcPort: c.local.Port(), DstPort: c.remote.Port(),
		Seq: c.sndNxt, Ack: c.rcvNxt,
		Flags:  wire.FlagFIN | wire.FlagACK,
		Window: c.windowField(),
	}
	c.sndNxt++
	if seqLT(c.sndMax, c.sndNxt) {
		c.sndMax = c.sndNxt
	}
	c.transmit(seg)
	c.armRetransmit()
	switch c.st {
	case stateEstablished:
		c.setState(stateFinWait1)
	case stateCloseWait:
		c.setState(stateLastAck)
	}
}

// Close implements net.Conn: orderly release (FIN handshake). It does not
// wait for delivery.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.st {
	case stateClosed, stateTimeWait, stateLastAck, stateFinWait1, stateFinWait2, stateClosing:
		return nil
	case stateSynSent, stateSynRcvd:
		c.teardown(ErrClosed)
		return nil
	}
	c.closePending = true
	c.maybeSendLocked()
	return nil
}

// CloseWrite half-closes: sends FIN after the buffered data, but keeps
// receiving.
func (c *Conn) CloseWrite() error { return c.Close() }

// Abort resets the connection immediately (RST), discarding buffers.
func (c *Conn) Abort() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.st == stateClosed {
		return
	}
	seg := &wire.Segment{
		SrcPort: c.local.Port(), DstPort: c.remote.Port(),
		Seq: c.sndNxt, Ack: c.rcvNxt, Flags: wire.FlagRST | wire.FlagACK,
	}
	c.transmit(seg)
	c.teardown(ErrClosed)
}

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	return c.SetWriteDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.readDeadline = t
	if t.IsZero() {
		c.readDLTimer.Stop()
		return nil
	}
	d := time.Until(t)
	if d < 0 {
		d = 0
	}
	// Deadlines are wall-clock instants: WallSchedule bypasses the
	// emulation time scale, and rearming the embedded timer replaces
	// any previous deadline's wakeup.
	c.stack.clock.WallSchedule(&c.readDLTimer, d, func() {
		c.mu.Lock()
		c.readCond.Broadcast()
		c.mu.Unlock()
	})
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writeDeadline = t
	if t.IsZero() {
		c.writeDLTimer.Stop()
		return nil
	}
	d := time.Until(t)
	if d < 0 {
		d = 0
	}
	c.stack.clock.WallSchedule(&c.writeDLTimer, d, func() {
		c.mu.Lock()
		c.writeCond.Broadcast()
		c.mu.Unlock()
	})
	return nil
}

// --- Retransmission machinery ---

// updateRTO folds an RTT sample into srtt/rttvar per RFC 6298.
// Caller holds c.mu.
func (c *Conn) updateRTO(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
	} else {
		d := c.srtt - rtt
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < minRTO {
		c.rto = minRTO
	}
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
}

// currentRTO returns the RTO with exponential backoff applied.
// Caller holds c.mu.
func (c *Conn) currentRTO() time.Duration {
	r := c.rto << c.rtoBackoff
	if r > maxRTO {
		r = maxRTO
	}
	return r
}

// armRetransmit (re)arms the retransmission timer. Caller holds c.mu.
// While a flight has not yet had a tail-loss probe, the timer fires after
// a probe timeout (2*SRTT, RACK-TLP style) instead of the full RTO: a
// retransmission of the last segment converts tail loss into dupack-driven
// recovery instead of an RTO collapse.
func (c *Conn) armRetransmit() {
	c.persistQ = false
	d := c.currentRTO()
	cb := c.onRetransmitTimeout
	if !c.tlpFired && c.rtoBackoff == 0 && c.srtt > 0 && c.st == stateEstablished {
		if pto := 2*c.srtt + 10*time.Millisecond; pto < d {
			d = pto
			cb = c.onProbeTimeout
		}
	}
	c.stack.clock.Schedule(&c.rtxTimer, d, cb)
	c.rtxArmed = true
}

// onProbeTimeout sends a tail-loss probe: the highest unacked segment is
// retransmitted without collapsing the congestion window.
func (c *Conn) onProbeTimeout() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.st == stateClosed || c.st == stateTimeWait {
		return
	}
	c.tlpFired = true
	if c.bytesInFlight() > 0 && len(c.sndBuf) > 0 {
		endOff := int(c.sndNxt - c.sndUna)
		if c.finSent {
			endOff = int(c.finSeq - c.sndUna)
		}
		if endOff > len(c.sndBuf) {
			endOff = len(c.sndBuf)
		}
		n := min(c.mss, endOff)
		if n > 0 {
			startOff := endOff - n
			seg := &wire.Segment{
				SrcPort: c.local.Port(), DstPort: c.remote.Port(),
				Seq: c.sndUna + uint32(startOff), Ack: c.rcvNxt,
				Flags:   wire.FlagACK | wire.FlagPSH,
				Window:  c.windowField(),
				Payload: c.sndBuf[startOff:endOff],
			}
			c.stats.Retransmits++
			c.stack.ctr.retransmits.Add(1)
			c.trace().Emit(telemetry.Event{
				Kind: telemetry.EvTCPRetransmit,
				Path: c.traceID,
				A:    int64(seg.Seq),
				B:    int64(n),
				S:    "tlp",
			})
			c.rttPending = false
			c.txLog = nil
			c.transmit(seg)
		}
	}
	c.armRetransmit() // now at full RTO
}

// armPersist arms the timer in zero-window-probe mode. Caller holds c.mu.
func (c *Conn) armPersist() {
	if c.persistQ {
		return
	}
	c.persistQ = true
	c.stack.clock.Schedule(&c.rtxTimer, c.currentRTO(), c.onPersistTimeout)
}

func (c *Conn) cancelRetransmit() {
	c.rtxTimer.Stop()
	c.rtxArmed = false
	c.persistQ = false
}

// onRetransmitTimeout fires on RTO expiry.
func (c *Conn) onRetransmitTimeout() {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.st {
	case stateClosed, stateTimeWait:
		return
	case stateSynSent, stateSynRcvd:
		c.synTries++
		if c.synTries > c.stack.config.SYNRetries {
			c.teardown(ErrTimeout)
			return
		}
		c.rtoBackoff++
		c.sendSYN(c.st == stateSynRcvd)
		c.armRetransmit()
		return
	}
	if c.bytesInFlight() == 0 && !(c.finSent && seqLT(c.sndUna, c.sndNxt)) {
		return // everything acked since the timer was armed
	}
	// User timeout (RFC 5482).
	if c.userTO > 0 && !c.oldestTx.IsZero() &&
		c.stack.clock.VirtualSince(c.oldestTx) >= c.userTO {
		c.teardown(ErrUserTimeout)
		return
	}
	if c.rtoBackoff > 10 {
		c.teardown(ErrTimeout)
		return
	}
	c.stats.Timeouts++
	c.stack.ctr.timeouts.Add(1)
	c.rtoBackoff++
	c.trace().Emit(telemetry.Event{
		Kind: telemetry.EvTCPRTO,
		Path: c.traceID,
		A:    int64(c.rtoBackoff),
		B:    int64(c.currentRTO()),
	})
	c.rttPending = false // Karn's algorithm
	c.sacked = nil
	c.inRecovery = false
	c.dupAcks = 0
	c.ctrl.OnRetransmitTimeout(c.bytesInFlight())
	// Go-back-N: treat everything in flight as lost and let the normal
	// send path resend it under the collapsed window. Duplicate arrivals
	// are trimmed by the receiver.
	c.stats.Retransmits++
	c.stack.ctr.retransmits.Add(1)
	c.txLog = nil
	c.rtoRecover = c.sndMax
	c.sndNxt = c.sndUna
	if c.finSent {
		c.finSent = false
	}
	c.maybeSendLocked()
	c.armRetransmit()
}

// onPersistTimeout probes a zero window.
func (c *Conn) onPersistTimeout() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.st == stateClosed || c.sndWnd > 0 {
		return
	}
	offset := int(c.sndNxt - c.sndUna)
	if offset < len(c.sndBuf) {
		// Send a single probe byte beyond the advertised window.
		seg := &wire.Segment{
			SrcPort: c.local.Port(), DstPort: c.remote.Port(),
			Seq: c.sndNxt, Ack: c.rcvNxt,
			Flags:   wire.FlagACK | wire.FlagPSH,
			Window:  c.windowField(),
			Payload: c.sndBuf[offset : offset+1],
		}
		c.sndNxt++
		if seqLT(c.sndMax, c.sndNxt) {
			c.sndMax = c.sndNxt
		}
		c.transmit(seg)
	}
	c.rtoBackoff++
	c.persistQ = false
	c.armPersist()
}

// enterFastRecovery handles the third duplicate ack. Caller holds c.mu.
func (c *Conn) enterFastRecovery() {
	c.inRecovery = true
	c.recoveryEnd = c.sndNxt
	c.rtxNext = c.sndUna
	c.stats.FastRetransmits++
	c.stack.ctr.fastRetransmits.Add(1)
	c.trace().Emit(telemetry.Event{
		Kind: telemetry.EvTCPFastRetransmit,
		Path: c.traceID,
		A:    int64(c.sndUna),
	})
	c.ctrl.OnFastRetransmit(c.bytesInFlight())
	c.sackRetransmit(2)
}

// sackRetransmit resends up to budget segments of un-sacked holes during
// fast recovery, walking rtxNext forward through the scoreboard — a
// simplified RFC 6675 pipe refill. Without SACK it degenerates into
// sequential go-back-N across ack events. Caller holds c.mu.
func (c *Conn) sackRetransmit(budget int) {
	// RFC 6675-style pipe control: retransmissions must fit within the
	// congestion window after crediting SACKed bytes, otherwise recovery
	// floods the bottleneck and loses its own repairs.
	pipe := int(c.sndNxt-c.sndUna) - c.sackedBytes()
	wrapped := false
	first := true
	for budget > 0 {
		// The first hole always goes out (RFC 6675 retransmits the first
		// unsacked segment unconditionally); later ones are pipe-gated so
		// recovery does not flood the bottleneck it is trying to drain.
		if !(first && c.rtxNext == c.sndUna) && pipe+c.mss > c.ctrl.CWnd() {
			return
		}
		first = false
		// Skip sacked ranges (scoreboard is sorted and merged).
		for _, b := range c.sacked {
			if seqLEQ(b.Left, c.rtxNext) && seqLT(c.rtxNext, b.Right) {
				c.rtxNext = b.Right
			}
		}
		if !seqLT(c.rtxNext, c.recoveryEnd) || !seqLT(c.rtxNext, c.sndNxt) {
			// The walker reached the end of the recovery window but holes
			// may remain below (their retransmissions were lost too).
			// Wrap once per event so persistent holes are retried by
			// dupacks instead of waiting for the RTO.
			if wrapped || !seqLT(c.sndUna, c.rtxNext) {
				return
			}
			wrapped = true
			c.rtxNext = c.sndUna
			continue
		}
		off := int(c.rtxNext - c.sndUna)
		if off < 0 || off >= len(c.sndBuf) {
			return
		}
		n := min(c.mss, len(c.sndBuf)-off)
		for _, b := range c.sacked {
			if seqLT(c.rtxNext, b.Left) {
				if hole := int(b.Left - c.rtxNext); hole < n {
					n = hole
				}
				break
			}
		}
		seg := &wire.Segment{
			SrcPort: c.local.Port(), DstPort: c.remote.Port(),
			Seq: c.rtxNext, Ack: c.rcvNxt,
			Flags:   wire.FlagACK | wire.FlagPSH,
			Window:  c.windowField(),
			Payload: c.sndBuf[off : off+n],
		}
		c.stats.Retransmits++
		c.stack.ctr.retransmits.Add(1)
		c.trace().Emit(telemetry.Event{
			Kind: telemetry.EvTCPRetransmit,
			Path: c.traceID,
			A:    int64(c.rtxNext),
			B:    int64(n),
			S:    "sack",
		})
		c.rttPending = false // Karn
		c.txLog = nil
		c.transmit(seg)
		c.rtxNext += uint32(n)
		pipe += n
		budget--
	}
}

// sackedBytes sums the scoreboard ranges within [sndUna, sndNxt).
// Caller holds c.mu.
func (c *Conn) sackedBytes() int {
	total := 0
	for _, b := range c.sacked {
		l, r := b.Left, b.Right
		if seqLT(l, c.sndUna) {
			l = c.sndUna
		}
		if seqLT(c.sndNxt, r) {
			r = c.sndNxt
		}
		if seqLT(l, r) {
			total += int(r - l)
		}
	}
	return total
}

// retransmitOne resends the first unsacked segment at sndUna.
// Caller holds c.mu.
func (c *Conn) retransmitOne() {
	if len(c.sndBuf) == 0 {
		if c.finSent && seqLT(c.sndUna, c.sndNxt) {
			// Retransmit the FIN.
			seg := &wire.Segment{
				SrcPort: c.local.Port(), DstPort: c.remote.Port(),
				Seq: c.finSeq, Ack: c.rcvNxt,
				Flags:  wire.FlagFIN | wire.FlagACK,
				Window: c.windowField(),
			}
			c.stats.Retransmits++
			c.stack.ctr.retransmits.Add(1)
			c.trace().Emit(telemetry.Event{
				Kind: telemetry.EvTCPRetransmit,
				Path: c.traceID,
				A:    int64(c.finSeq),
				B:    0,
				S:    "fin",
			})
			c.transmit(seg)
		}
		return
	}
	c.txLog = nil // Karn
	n := min(len(c.sndBuf), c.mss)
	// Honor the SACK scoreboard: do not resend past the first sacked block.
	if len(c.sacked) > 0 && seqLT(c.sndUna, c.sacked[0].Left) {
		hole := int(c.sacked[0].Left - c.sndUna)
		if hole < n {
			n = hole
		}
	}
	seg := &wire.Segment{
		SrcPort: c.local.Port(), DstPort: c.remote.Port(),
		Seq: c.sndUna, Ack: c.rcvNxt,
		Flags:   wire.FlagACK | wire.FlagPSH,
		Window:  c.windowField(),
		Payload: c.sndBuf[:n],
	}
	c.stats.Retransmits++
	c.stack.ctr.retransmits.Add(1)
	c.trace().Emit(telemetry.Event{
		Kind: telemetry.EvTCPRetransmit,
		Path: c.traceID,
		A:    int64(c.sndUna),
		B:    int64(n),
		S:    "rto",
	})
	c.rttPending = false // Karn
	c.transmit(seg)
}
