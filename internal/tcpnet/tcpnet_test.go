package tcpnet

import (
	"bytes"
	"crypto/rand"
	"errors"
	"io"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

var (
	clientAddr = netip.MustParseAddr("10.0.0.1")
	serverAddr = netip.MustParseAddr("10.0.0.2")
)

type testEnv struct {
	net      *netsim.Network
	link     *netsim.Link
	client   *Stack
	server   *Stack
	listener *Listener
}

// env builds a two-host topology with one link and a listening server.
func env(t *testing.T, link netsim.LinkConfig, cfg Config, netOpts ...netsim.Option) *testEnv {
	t.Helper()
	n := netsim.New(netOpts...)
	ch, sh := n.Host("client"), n.Host("server")
	l := n.AddLink(ch, sh, clientAddr, serverAddr, link)
	cs, ss := NewStack(ch, cfg), NewStack(sh, cfg)
	lst, err := ss.Listen(netip.Addr{}, 443)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cs.Close(); ss.Close() })
	return &testEnv{net: n, link: l, client: cs, server: ss, listener: lst}
}

// connect dials and accepts, returning both ends.
func (e *testEnv) connect(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	type res struct {
		c   *Conn
		err error
	}
	acceptCh := make(chan res, 1)
	go func() {
		c, err := e.listener.AcceptTCP()
		acceptCh <- res{c, err}
	}()
	cc, err := e.client.Dial(netip.Addr{}, netip.AddrPortFrom(serverAddr, 443), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r := <-acceptCh
	if r.err != nil {
		t.Fatalf("accept: %v", r.err)
	}
	return cc, r.c
}

func TestHandshakeAndEcho(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	c, s := e.connect(t)
	go func() {
		buf := make([]byte, 64)
		n, _ := s.Read(buf)
		s.Write(bytes.ToUpper(buf[:n]))
	}()
	if _, err := c.Write([]byte("hello tcpls")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "HELLO TCPLS" {
		t.Fatalf("got %q", buf[:n])
	}
	if c.State() != "Established" || s.State() != "Established" {
		t.Fatalf("states: %s / %s", c.State(), s.State())
	}
}

func TestAddrAccessors(t *testing.T) {
	e := env(t, netsim.LinkConfig{}, Config{})
	c, s := e.connect(t)
	if c.RemoteAddrPort() != netip.AddrPortFrom(serverAddr, 443) {
		t.Fatalf("remote %v", c.RemoteAddrPort())
	}
	if s.RemoteAddrPort() != c.LocalAddrPort() {
		t.Fatal("address mismatch")
	}
	if c.LocalAddr().Network() != "tcpsim" {
		t.Fatal("network name")
	}
}

// transfer pushes size bytes one way and verifies integrity.
func transfer(t *testing.T, src, dst *Conn, size int, timeout time.Duration) {
	t.Helper()
	data := make([]byte, size)
	rand.Read(data)
	errCh := make(chan error, 1)
	go func() {
		_, err := src.Write(data)
		if err == nil {
			err = src.Close()
		}
		errCh <- err
	}()
	dst.SetReadDeadline(time.Now().Add(timeout))
	got, err := io.ReadAll(dst)
	if err != nil {
		t.Fatalf("read: %v (got %d of %d)", err, len(got), size)
	}
	if werr := <-errCh; werr != nil {
		t.Fatalf("write: %v", werr)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("corruption: got %d bytes want %d", len(got), size)
	}
}

func TestBulkTransfer(t *testing.T) {
	e := env(t, netsim.LinkConfig{BandwidthBps: 100e6, Delay: 2 * time.Millisecond}, Config{})
	c, s := e.connect(t)
	transfer(t, c, s, 1<<20, 20*time.Second)
}

func TestBulkTransferServerToClient(t *testing.T) {
	e := env(t, netsim.LinkConfig{BandwidthBps: 100e6, Delay: 2 * time.Millisecond}, Config{})
	c, s := e.connect(t)
	transfer(t, s, c, 1<<20, 20*time.Second)
}

func TestTransferOverLossyLink(t *testing.T) {
	e := env(t, netsim.LinkConfig{BandwidthBps: 50e6, Delay: time.Millisecond, Loss: 0.02},
		Config{}, netsim.WithSeed(3))
	c, s := e.connect(t)
	transfer(t, c, s, 300<<10, 30*time.Second)
	if inf := c.Info(); inf.Stats.Retransmits == 0 {
		t.Fatal("expected retransmissions on a 2% loss link")
	}
}

func TestTransferWithHeavyLossAndSACK(t *testing.T) {
	e := env(t, netsim.LinkConfig{BandwidthBps: 20e6, Delay: 2 * time.Millisecond, Loss: 0.05},
		Config{}, netsim.WithSeed(11))
	c, s := e.connect(t)
	transfer(t, c, s, 100<<10, 30*time.Second)
}

func TestBidirectionalSimultaneous(t *testing.T) {
	e := env(t, netsim.LinkConfig{BandwidthBps: 50e6, Delay: time.Millisecond}, Config{})
	c, s := e.connect(t)
	dataA, dataB := make([]byte, 200<<10), make([]byte, 200<<10)
	rand.Read(dataA)
	rand.Read(dataB)
	var wg sync.WaitGroup
	var gotA, gotB []byte
	var errA, errB error
	wg.Add(4)
	go func() { defer wg.Done(); c.Write(dataA); c.Close() }()
	go func() { defer wg.Done(); s.Write(dataB); s.Close() }()
	go func() { defer wg.Done(); gotA, errA = io.ReadAll(s) }()
	go func() { defer wg.Done(); gotB, errB = io.ReadAll(c) }()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("timeout")
	}
	if errA != nil || errB != nil {
		t.Fatalf("read errors: %v %v", errA, errB)
	}
	if !bytes.Equal(gotA, dataA) || !bytes.Equal(gotB, dataB) {
		t.Fatal("bidirectional corruption")
	}
}

func TestCloseDeliversEOF(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	c, s := e.connect(t)
	c.Write([]byte("bye"))
	c.Close()
	s.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := io.ReadAll(s)
	if err != nil || string(got) != "bye" {
		t.Fatalf("got %q err %v", got, err)
	}
	// Server can still write (half close), then close.
	if _, err := s.Write([]byte("ack")); err != nil {
		t.Fatalf("write after peer FIN: %v", err)
	}
	s.Close()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err = io.ReadAll(c)
	if err != nil || string(got) != "ack" {
		t.Fatalf("got %q err %v", got, err)
	}
	// Both sides should wind down to Closed/TimeWait.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		cs, ss := c.State(), s.State()
		if (cs == "TimeWait" || cs == "Closed") && (ss == "Closed" || ss == "TimeWait") {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("teardown stuck: %s / %s", c.State(), s.State())
}

func TestConnectionRefused(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	_, err := e.client.Dial(netip.Addr{}, netip.AddrPortFrom(serverAddr, 9999), 5*time.Second)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("want ErrRefused, got %v", err)
	}
}

func TestDialTimeoutOnBlackhole(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	e.link.SetDown(true)
	start := time.Now()
	_, err := e.client.Dial(netip.Addr{}, netip.AddrPortFrom(serverAddr, 443), 300*time.Millisecond)
	if err == nil {
		t.Fatal("dial succeeded over dead link")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("timeout not honored")
	}
}

func TestRSTAbortsPeer(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	c, s := e.connect(t)
	c.Abort()
	s.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	_, err := s.Read(buf)
	if !errors.Is(err, ErrReset) {
		t.Fatalf("want ErrReset, got %v", err)
	}
}

// TestSpuriousRSTFromMiddlebox covers both halves of RFC 5961 §3.2 at
// the middlebox level: a reset forged from *observed* sequence numbers
// (exactly rcvNxt) still kills the connection — that is what the TCPLS
// session layer's failover reacts to — while the offset-guess variant is
// covered by TestSpuriousRSTChallengeFromMiddlebox and only elicits a
// challenge ACK.
func TestSpuriousRSTFromMiddlebox(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	inj := &netsim.RSTInjector{AfterSegments: 2, Once: true}
	e.link.Use(inj)
	c, s := e.connect(t)
	go func() {
		buf := make([]byte, 1024)
		for {
			if _, err := s.Read(buf); err != nil {
				return
			}
		}
	}()
	var lastErr error
	for i := 0; i < 50; i++ {
		if _, lastErr = c.Write(make([]byte, 512)); lastErr != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// One of the two directions saw the forged RST.
	if lastErr == nil {
		s.mu.Lock()
		serr := s.err
		s.mu.Unlock()
		if !errors.Is(serr, ErrReset) {
			t.Fatalf("no reset observed (client err=%v server err=%v, injector fired=%d)",
				lastErr, serr, inj.Fired())
		}
	} else if !errors.Is(lastErr, ErrReset) {
		t.Fatalf("want ErrReset, got %v", lastErr)
	}
}

func TestUserTimeout(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	c, s := e.connect(t)
	_ = s
	c.SetUserTimeout(500 * time.Millisecond)
	if got := c.UserTimeout(); got != 500*time.Millisecond {
		t.Fatalf("UserTimeout() = %s", got)
	}
	// Write some data, then cut the link: the UTO must abort the conn.
	c.Write(make([]byte, 2048))
	time.Sleep(20 * time.Millisecond)
	e.link.SetDown(true)
	c.Write(make([]byte, 2048))
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err != nil {
			if !errors.Is(err, ErrUserTimeout) {
				t.Fatalf("want ErrUserTimeout, got %v", err)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("user timeout never fired")
}

func TestWindowScalingLargeBDP(t *testing.T) {
	// 100 Mbps * 40 ms RTT = 500 KB BDP: only reachable with wscale.
	// Self-calibrating: the same transfer with the wscale option stripped
	// by a middlebox is capped at 64KB/RTT = 1.6 MB/s; scaling must beat
	// that control by a wide margin regardless of host load.
	// The transfer must be long enough that sustained rate dominates the
	// slow-start transient (on short transfers the 64 KB clamp can even
	// win by never overrunning the queue).
	const size = 10 << 20
	run := func(strip bool) time.Duration {
		e := env(t, netsim.LinkConfig{BandwidthBps: 100e6, Delay: 20 * time.Millisecond, QueueBytes: 512 << 10},
			Config{SendBuf: 2 << 20, RecvBuf: 2 << 20})
		if strip {
			e.link.Use(&netsim.OptionStripper{Kinds: []uint8{3 /* wscale */}})
		}
		c, s := e.connect(t)
		start := time.Now()
		transfer(t, c, s, size, 60*time.Second)
		return time.Since(start)
	}
	scaled := run(false)
	unscaled := run(true)
	// Without scaling the rate is capped at 64KB/40ms = 13 Mbps -> ~6.4s
	// for 10 MB; with scaling the 100 Mbps link is reachable. Require a
	// 1.5x margin (load-independent: both runs share the host).
	if scaled*15/10 > unscaled {
		t.Fatalf("window scaling ineffective: %s with wscale vs %s without", scaled, unscaled)
	}
}

func TestFlowControlSlowReader(t *testing.T) {
	e := env(t, netsim.LinkConfig{BandwidthBps: 100e6, Delay: time.Millisecond},
		Config{RecvBuf: 16 << 10, SendBuf: 16 << 10})
	c, s := e.connect(t)
	data := make([]byte, 300<<10)
	rand.Read(data)
	go func() {
		c.Write(data)
		c.Close()
	}()
	// Read slowly in small chunks; flow control must prevent loss.
	var got []byte
	buf := make([]byte, 4096)
	s.SetReadDeadline(time.Now().Add(30 * time.Second))
	for {
		n, err := s.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("slow-reader corruption: %d vs %d bytes", len(got), len(data))
	}
}

func TestZeroWindowProbe(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond},
		Config{RecvBuf: 8 << 10, SendBuf: 64 << 10})
	c, s := e.connect(t)
	// Fill the receiver completely; reader asleep -> zero window.
	data := make([]byte, 32<<10)
	rand.Read(data)
	done := make(chan struct{})
	go func() {
		c.Write(data)
		c.Close()
		close(done)
	}()
	time.Sleep(500 * time.Millisecond) // let the window close
	// Now drain; the persist probe must revive the transfer.
	s.SetReadDeadline(time.Now().Add(30 * time.Second))
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("zero-window corruption: %d vs %d", len(got), len(data))
	}
	<-done
}

func TestIntrospectionInfo(t *testing.T) {
	e := env(t, netsim.LinkConfig{BandwidthBps: 50e6, Delay: 5 * time.Millisecond}, Config{})
	c, s := e.connect(t)
	transfer(t, c, s, 256<<10, 20*time.Second)
	inf := c.Info()
	if inf.MSS != 1400 {
		t.Fatalf("MSS = %d", inf.MSS)
	}
	if inf.CWnd < inf.MSS {
		t.Fatalf("CWnd = %d", inf.CWnd)
	}
	if inf.SRTT <= 0 {
		t.Fatal("no RTT estimate")
	}
	// Virtual RTT should be ~10ms (2*5ms) regardless of time scale.
	if inf.SRTT < 5*time.Millisecond || inf.SRTT > 100*time.Millisecond {
		t.Fatalf("SRTT = %s, want ~10ms", inf.SRTT)
	}
	if inf.Stats.SegsSent == 0 || inf.Stats.BytesSent == 0 {
		t.Fatal("stats not counted")
	}
	if inf.CongestionControl != "newreno" {
		t.Fatalf("cc = %s", inf.CongestionControl)
	}
}

func TestCongestionControlSwap(t *testing.T) {
	e := env(t, netsim.LinkConfig{BandwidthBps: 50e6, Delay: 2 * time.Millisecond}, Config{})
	c, s := e.connect(t)
	if err := c.SetCongestionControl("cubic"); err != nil {
		t.Fatal(err)
	}
	if got := c.CongestionControlName(); got != "cubic" {
		t.Fatalf("cc = %s", got)
	}
	if err := c.SetCongestionControl("nope"); err == nil {
		t.Fatal("accepted unknown cc")
	}
	transfer(t, c, s, 256<<10, 20*time.Second)
}

func TestCubicTransfer(t *testing.T) {
	e := env(t, netsim.LinkConfig{BandwidthBps: 30e6, Delay: 5 * time.Millisecond, Loss: 0.01},
		Config{CongestionControl: "cubic"}, netsim.WithSeed(5))
	c, s := e.connect(t)
	transfer(t, c, s, 200<<10, 30*time.Second)
}

func TestListenerClose(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	e.listener.Close()
	if _, err := e.listener.Accept(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	// New dials are refused.
	if _, err := e.client.Dial(netip.Addr{}, netip.AddrPortFrom(serverAddr, 443), 2*time.Second); err == nil {
		t.Fatal("dial succeeded after listener close")
	}
}

func TestListenerRebind(t *testing.T) {
	e := env(t, netsim.LinkConfig{}, Config{})
	if _, err := e.server.Listen(netip.Addr{}, 443); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("want ErrAddrInUse, got %v", err)
	}
	e.listener.Close()
	l2, err := e.server.Listen(netip.Addr{}, 443)
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	l2.Close()
}

func TestManyParallelConnections(t *testing.T) {
	e := env(t, netsim.LinkConfig{BandwidthBps: 200e6, Delay: time.Millisecond}, Config{})
	const N = 12
	go func() {
		for {
			conn, err := e.listener.AcceptTCP()
			if err != nil {
				return
			}
			go func() {
				io.Copy(io.Discard, conn)
				conn.Close()
			}()
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := e.client.Dial(netip.Addr{}, netip.AddrPortFrom(serverAddr, 443), 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if _, err := c.Write(make([]byte, 32<<10)); err != nil {
				errs <- err
				return
			}
			c.Close()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestReadDeadline(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	c, _ := e.connect(t)
	c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 8)
	start := time.Now()
	_, err := c.Read(buf)
	if err == nil {
		t.Fatal("read returned without data")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline ignored")
	}
}

func TestWriteAfterClose(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	c, _ := e.connect(t)
	c.Close()
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestTimeScaledTransfer(t *testing.T) {
	// The same 30 Mbps transfer under 4x compression: virtual goodput must
	// still be ~30 Mbps.
	e := env(t, netsim.LinkConfig{BandwidthBps: 30e6, Delay: 5 * time.Millisecond},
		Config{}, netsim.WithTimeScale(0.25))
	c, s := e.connect(t)
	const size = 2 << 20
	start := time.Now()
	transfer(t, c, s, size, 30*time.Second)
	virt := e.net.VirtualSince(start)
	goodput := float64(size*8) / virt.Seconds() / 1e6
	// NewReno over a drop-tail queue sustains roughly 2/3 of the link
	// under these parameters; the point here is that the *virtual* rate
	// is preserved under time compression (a wall-clock measurement would
	// read 4x higher) and bounded by the link rate.
	if goodput < 10 || goodput > 31 {
		t.Fatalf("virtual goodput %.1f Mbps, want within (10, 31)", goodput)
	}
}

func TestOptionStrippingDisablesScaling(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	e.link.Use(&netsim.OptionStripper{Kinds: []uint8{3 /* wscale */}})
	c, s := e.connect(t)
	// Connection still works, just without scaling.
	transfer(t, c, s, 64<<10, 20*time.Second)
	c2, _ := e.connect(t)
	inf := c2.Info()
	if inf.State != "Established" {
		t.Fatal("handshake failed under option stripping")
	}
}

func TestStackClose(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	c, _ := e.connect(t)
	e.client.Close()
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write on closed stack")
	}
	if _, err := e.client.Dial(netip.Addr{}, netip.AddrPortFrom(serverAddr, 443), time.Second); err == nil {
		t.Fatal("dial on closed stack")
	}
}

// TestMiddleboxDetectionViaSYNOptions reproduces §4.5 of the TCPLS
// paper: the client knows what options it put on its SYN; the server
// sees what arrived. On a clean path they match; with an option-
// stripping middlebox they differ — the comparison (which TCPLS carries
// over the encrypted channel) reliably reveals the middlebox.
func TestMiddleboxDetectionViaSYNOptions(t *testing.T) {
	compare := func(sent, got []wire.Option) bool {
		if len(sent) != len(got) {
			return false
		}
		for i := range sent {
			if sent[i].Kind != got[i].Kind {
				return false
			}
		}
		return true
	}
	_ = compare

	// Clean path: received == sent.
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	c, s := e.connect(t)
	if len(s.PeerSYNOptions()) != len(c.SYNOptions()) {
		t.Fatalf("clean path altered SYN options: sent %d, got %d",
			len(c.SYNOptions()), len(s.PeerSYNOptions()))
	}

	// Interfered path: the stripper removes sackOK; the mismatch is the
	// middlebox detector.
	e2 := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	e2.link.Use(&netsim.OptionStripper{Kinds: []uint8{4 /* sackOK */}})
	c2, s2 := e2.connect(t)
	if len(s2.PeerSYNOptions()) == len(c2.SYNOptions()) {
		t.Fatal("middlebox interference went undetected")
	}
}
