package tcpnet

import (
	"net"
	"net/netip"
	"sync"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
	"github.com/pluginized-protocols/gotcpls/internal/cc"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
	"github.com/pluginized-protocols/gotcpls/internal/timingwheel"
	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// state is the TCP connection state (RFC 793 §3.2).
type state int

const (
	stateClosed state = iota
	stateListen
	stateSynSent
	stateSynRcvd
	stateEstablished
	stateFinWait1
	stateFinWait2
	stateCloseWait
	stateClosing
	stateLastAck
	stateTimeWait
)

var stateNames = [...]string{
	"Closed", "Listen", "SynSent", "SynRcvd", "Established", "FinWait1",
	"FinWait2", "CloseWait", "Closing", "LastAck", "TimeWait",
}

func (s state) String() string { return stateNames[s] }

// Sequence-number comparison modulo 2^32.
func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// RTO bounds in virtual time (RFC 6298 with the common 200 ms floor).
const (
	minRTO     = 200 * time.Millisecond
	maxRTO     = 60 * time.Second
	initialRTO = 1 * time.Second
	timeWaitD  = 1 * time.Second // shortened 2*MSL, virtual
)

// oooSeg is one out-of-order segment awaiting reassembly. data aliases
// owner, the pooled packet buffer; whichever path removes the segment
// from the queue (drain, replacement, eviction) must return owner to the
// pool. A nil owner marks data the pool does not manage.
type oooSeg struct {
	seq   uint32
	data  []byte
	owner []byte
	fin   bool
}

// rxSeg is one in-order span queued for Read. data aliases owner (the
// pooled packet buffer); Read recycles owner once data is fully copied
// out at the API boundary — the only copy on the receive path.
type rxSeg struct {
	data  []byte
	owner []byte
}

// txEntry records when the segment ending at end was first transmitted.
// The log is cleared on any retransmission (Karn's algorithm), so every
// entry that survives until its ack yields a valid RTT sample.
type txEntry struct {
	end uint32
	at  time.Time // wall clock
}

// Conn is a userspace TCP connection. It implements net.Conn.
type Conn struct {
	stack    *Stack
	listener *Listener // non-nil on passively opened conns until offered

	mu        sync.Mutex
	readCond  *sync.Cond
	writeCond *sync.Cond

	local, remote netip.AddrPort
	active        bool
	st            state
	err           error
	established   chan struct{}
	estOnce       sync.Once

	// Send state.
	iss      uint32
	sndUna   uint32
	sndNxt   uint32
	sndMax   uint32 // highest sequence ever sent (for Karn after go-back-N)
	sndBuf   []byte // bytes [sndUna, sndUna+len)
	sndWnd   int    // peer's advertised window, scaled
	sndScale uint8  // peer's window scale
	mss      int
	ctrl     cc.Controller

	closePending bool // Close/CloseWrite called: send FIN once drained
	finSent      bool
	finSeq       uint32 // sequence number of our FIN

	dupAcks     int
	inRecovery  bool
	recoveryEnd uint32
	rtxNext     uint32           // next candidate for SACK-driven recovery retransmit
	rtoRecover  uint32           // after an RTO, no fast recovery below this seq
	sacked      []wire.SACKBlock // peer-reported sacked ranges
	sackOK      bool

	// RTT estimation (virtual time).
	srtt, rttvar time.Duration
	rto          time.Duration
	rtoBackoff   int
	rttPending   bool
	rttSeq       uint32
	rttStart     time.Time // wall clock
	txLog        []txEntry // per-segment send times for dense RTT samples

	// rtxTimer is an intrusive node on the stack's timing wheel,
	// embedded so the RTO/TLP/persist rearm cycle — the hottest timer
	// churn in the stack — never allocates.
	rtxTimer timingwheel.Timer
	rtxArmed bool
	tlpFired bool      // a tail-loss probe was sent for the current flight
	oldestTx time.Time // wall time the oldest unacked byte was first sent
	userTO   time.Duration
	synTries int
	persistQ bool // retransmit timer armed in persist (zero-window) mode

	// Receive state.
	peerSYNOpts []wire.Option // options observed on the peer's SYN (§4.5 detection)
	irs         uint32
	rcvNxt      uint32
	rcvQ        []rxSeg // in-order data, one pooled buffer per segment
	rcvQBytes   int     // total bytes queued in rcvQ
	ooo         []oooSeg
	rcvScale    uint8
	peerFin     bool // FIN consumed into the stream (EOF after rcvQ drains)
	lastAdvW    int

	// txSegs is the per-burst transmit scratch: maybeSendLocked collects
	// every segment the windows allow, then hands the whole burst to the
	// stack in one call. Reused across bursts (guarded by c.mu).
	txSegs []wire.Segment

	readDeadline  time.Time
	writeDeadline time.Time
	readDLTimer   timingwheel.Timer // wakes readers at the deadline (wall time)
	writeDLTimer  timingwheel.Timer

	timeWaitTimer timingwheel.Timer

	stats Stats

	// traceID labels this connection's telemetry events. It defaults to
	// a stack-local id in a reserved range; the TCPLS session layer
	// overrides it (SetTraceID) with the path id so TCP events line up
	// with path events in one trace.
	traceID uint32
}

// traceIDBase keeps default conn trace ids out of the small-integer
// space used by TCPLS path ids.
const traceIDBase = 1 << 30

// trace returns the stack's tracer; nil (disabled) is a valid result.
func (c *Conn) trace() *telemetry.Tracer { return c.stack.config.Tracer }

// setState transitions the RFC 793 state machine, tracing the change.
// Caller holds c.mu.
func (c *Conn) setState(s state) {
	if c.st == s {
		return
	}
	c.st = s
	c.trace().Emit(telemetry.Event{Kind: telemetry.EvTCPState, Path: c.traceID, S: stateNames[s]})
}

// SetTraceID relabels this connection's telemetry events — the
// cross-layer hook letting the TCPLS session layer stamp TCP events
// with the owning path's id.
func (c *Conn) SetTraceID(id uint32) {
	c.mu.Lock()
	c.traceID = id
	c.mu.Unlock()
}

// noteChallengeAck books an RFC 5961 challenge ACK in the per-conn and
// stack counters and the trace. Caller holds c.mu.
func (c *Conn) noteChallengeAck(seq uint32) {
	c.stats.ChallengeAcks++
	c.stack.ctr.challengeAcks.Add(1)
	c.trace().Emit(telemetry.Event{Kind: telemetry.EvTCPChallengeAck, Path: c.traceID, A: int64(seq)})
}

// noteDrop traces a hardening drop with its cause. Caller holds c.mu.
func (c *Conn) noteDrop(cause string, bytes int) {
	c.trace().Emit(telemetry.Event{Kind: telemetry.EvTCPDrop, Path: c.traceID, A: int64(bytes), S: cause})
}

// Stats counts protocol events for introspection and tests.
type Stats struct {
	SegsSent        uint64
	SegsRcvd        uint64
	BytesSent       uint64
	BytesRcvd       uint64
	Retransmits     uint64
	FastRetransmits uint64
	Timeouts        uint64
	DupAcksRcvd     uint64
	SpuriousRsts    uint64
	// ChallengeAcks counts RFC 5961 challenge ACKs sent in response to
	// suspicious RST/SYN/ACK segments (blind-injection attempts).
	ChallengeAcks uint64
	// RstsDropped counts RSTs discarded for being outside the receive
	// window entirely.
	RstsDropped uint64
	// OOODrops counts out-of-order segments discarded because buffering
	// them would exceed the receive buffer or the segment-count cap.
	OOODrops uint64
	// WindowDrops counts bytes-bearing segments truncated for arriving
	// beyond the advertised receive window (a compliant sender never
	// triggers this).
	WindowDrops uint64
}

// Info is a cross-layer snapshot of the connection — the introspection
// interface the TCPLS session layer builds on (record sizing per §4.6,
// state for failover decisions).
type Info struct {
	State             string
	CongestionControl string
	MSS               int
	CWnd              int
	Ssthresh          int
	BytesInFlight     int
	PeerWindow        int
	SendQueue         int
	RecvQueue         int
	SRTT              time.Duration
	RTTVar            time.Duration
	RTO               time.Duration
	SackedBytes       int
	InRecovery        bool
	Stats             Stats
}

func newConn(s *Stack, local, remote netip.AddrPort, active bool) *Conn {
	ctrl, err := cc.New(s.config.CongestionControl)
	if err != nil {
		ctrl = cc.NewNewReno()
	}
	c := &Conn{
		stack:       s,
		local:       local,
		remote:      remote,
		active:      active,
		established: make(chan struct{}),
		mss:         s.config.MSS,
		ctrl:        ctrl,
		rto:         initialRTO,
		sndWnd:      s.config.MSS, // until the peer tells us
	}
	c.readCond = sync.NewCond(&c.mu)
	c.writeCond = sync.NewCond(&c.mu)
	s.mu.Lock()
	c.iss = s.rng.Uint32()
	s.mu.Unlock()
	c.sndUna, c.sndNxt, c.sndMax = c.iss, c.iss, c.iss
	// Anchor the post-RTO fast-recovery guard at the ISS. Left at zero,
	// the seqLT(sndUna, rtoRecover) comparison is against an arbitrary
	// point in sequence space and suppresses fast retransmit entirely
	// for any connection whose ISS has the high bit set.
	c.rtoRecover = c.iss
	c.traceID = traceIDBase | s.connSeq.Add(1)
	s.ctr.connsOpened.Add(1)
	if !active {
		c.st = stateListen
	}
	c.ctrl.Init(c.mss)
	return c
}

// startConnect sends the initial SYN (active open).
func (c *Conn) startConnect() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setState(stateSynSent)
	c.sendSYN(false)
	c.armRetransmit()
}

func (c *Conn) synOptions() []wire.Option {
	return []wire.Option{
		wire.MSSOption(uint16(c.stack.config.MSS)),
		wire.WindowScaleOption(c.stack.config.WindowScale),
		wire.SACKPermittedOption(),
	}
}

// sendSYN emits SYN or SYN+ACK. Caller holds c.mu.
func (c *Conn) sendSYN(ack bool) {
	w := min(c.recvWindow(), 65535) // unscaled in SYN
	c.lastAdvW = w                  // RFC 5961 in-window checks need it pre-data
	seg := &wire.Segment{
		SrcPort: c.local.Port(), DstPort: c.remote.Port(),
		Seq:     c.iss,
		Flags:   wire.FlagSYN,
		Window:  uint16(w),
		Options: c.synOptions(),
	}
	if ack {
		seg.Flags |= wire.FlagACK
		seg.Ack = c.rcvNxt
	}
	c.sndNxt = c.iss + 1
	if seqLT(c.sndMax, c.sndNxt) {
		c.sndMax = c.sndNxt
	}
	c.transmit(seg)
}

// input processes one inbound segment. owner, when non-nil, is the
// pooled packet buffer backing seg.Payload; ownership transfers here —
// the receive path either queues the payload (recycling the buffer when
// Read drains it) or returns it to the pool before dropping the segment.
func (c *Conn) input(seg *wire.Segment, owner []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.SegsRcvd++
	c.stack.ctr.segsRcvd.Add(1)
	if !c.inputLocked(seg, owner) {
		bufpool.Put(owner)
	}
}

// inputLocked runs the state machine on one segment and reports whether
// ownership of the payload buffer moved into the receive path.
// Caller holds c.mu.
func (c *Conn) inputLocked(seg *wire.Segment, owner []byte) bool {
	switch c.st {
	case stateListen:
		// Freshly created by a listener: this segment is the peer's SYN.
		if !seg.Flags.Has(wire.FlagSYN) || seg.Flags.Has(wire.FlagACK|wire.FlagRST) {
			return false
		}
		c.irs = seg.Seq
		c.rcvNxt = seg.Seq + 1
		c.processSynOptions(seg)
		c.sndWnd = int(seg.Window) // unscaled in SYN
		c.setState(stateSynRcvd)
		c.sendSYN(true)
		c.armRetransmit()
		return false
	case stateClosed:
		return false
	case stateSynSent:
		c.inputSynSent(seg)
		return false
	case stateSynRcvd:
		if seg.Flags.Has(wire.FlagSYN) && !seg.Flags.Has(wire.FlagACK) {
			// Retransmitted SYN: repeat our SYN+ACK.
			c.processSynOptions(seg)
			c.sendSYN(true)
			return false
		}
	}

	if seg.Flags.Has(wire.FlagRST) {
		c.handleRST(seg)
		return false
	}
	if seg.Flags.Has(wire.FlagSYN) {
		// SYN on a synchronized connection (RFC 5961 §4): send a
		// challenge ACK and drop. If the peer genuinely restarted, the
		// ACK elicits a RST at the exact sequence handleRST accepts; a
		// blind injector gets nothing.
		c.noteChallengeAck(seg.Seq)
		c.sendAck()
		return false
	}
	if !seg.Flags.Has(wire.FlagACK) {
		return false
	}

	if !c.processAck(seg) {
		return false
	}
	consumed := false
	if len(seg.Payload) > 0 || seg.Flags.Has(wire.FlagFIN) {
		c.processData(seg, owner)
		consumed = true
	}
	c.maybeSendLocked()
	return consumed
}

// inputSynSent handles segments in SYN-SENT. Caller holds c.mu.
func (c *Conn) inputSynSent(seg *wire.Segment) {
	if seg.Flags.Has(wire.FlagRST) {
		if seg.Flags.Has(wire.FlagACK) && seg.Ack == c.sndNxt {
			c.failLocked(ErrRefused)
		}
		return
	}
	if !seg.Flags.Has(wire.FlagSYN) || !seg.Flags.Has(wire.FlagACK) || seg.Ack != c.sndNxt {
		return
	}
	c.irs = seg.Seq
	c.rcvNxt = seg.Seq + 1
	c.sndUna = seg.Ack
	c.processSynOptions(seg)
	c.sndWnd = int(seg.Window) // SYN windows are unscaled
	c.setState(stateEstablished)
	c.cancelRetransmit()
	c.rtoBackoff = 0
	c.sendAck()
	c.estOnce.Do(func() { close(c.established) })
	c.readCond.Broadcast()
	c.writeCond.Broadcast()
}

// processSynOptions applies MSS/WScale/SACK from the peer's SYN.
// Caller holds c.mu.
func (c *Conn) processSynOptions(seg *wire.Segment) {
	// Deep-copy: the option Data slices alias the packet buffer, which
	// returns to the pool when this segment is done, but peerSYNOpts
	// lives for the connection (§4.5 middlebox detection reads it later).
	c.peerSYNOpts = make([]wire.Option, len(seg.Options))
	for i, o := range seg.Options {
		c.peerSYNOpts[i] = wire.Option{Kind: o.Kind, Data: append([]byte(nil), o.Data...)}
	}
	sawScale := false
	for i := range seg.Options {
		o := &seg.Options[i]
		switch o.Kind {
		case wire.OptKindMSS:
			if v, ok := o.MSS(); ok && int(v) < c.mss {
				c.mss = int(v)
				c.ctrl.Init(c.mss)
			}
		case wire.OptKindWindowScale:
			if v, ok := o.WindowScale(); ok {
				if v > wire.MaxWindowScale {
					// RFC 7323 §2.3: shifts above 14 must be clamped, not
					// honored — an attacker-supplied 255 would otherwise
					// corrupt every window computation.
					v = wire.MaxWindowScale
				}
				c.sndScale = v
				sawScale = true
			}
		case wire.OptKindSACKPermitted:
			c.sackOK = true
		}
	}
	if sawScale {
		c.rcvScale = c.stack.config.WindowScale
	} else {
		// Peer did not negotiate scaling (or a middlebox stripped it):
		// neither side scales.
		c.rcvScale, c.sndScale = 0, 0
	}
}

// handleRST applies RFC 5961 §3.2 validation before honoring a reset:
// only a RST at exactly rcvNxt tears the connection down. A RST that
// lands elsewhere inside the receive window gets a challenge ACK — a
// blind off-path attacker must now hit one sequence number instead of
// any of the ~window many — and everything out of window is dropped.
// Caller holds c.mu.
func (c *Conn) handleRST(seg *wire.Segment) {
	if c.st == stateSynRcvd {
		// Not yet synchronized: the peer (or a stale duplicate) aborted
		// in response to our SYN+ACK. Require the exact expected sequence.
		if seg.Seq == c.rcvNxt {
			c.stats.SpuriousRsts++
			c.stack.ctr.spuriousRsts.Add(1)
			c.failLocked(ErrReset)
		} else {
			c.stats.RstsDropped++
			c.stack.ctr.rstsDropped.Add(1)
			c.noteDrop("rst-out-of-window", 0)
		}
		return
	}
	wnd := uint32(c.lastAdvW)
	switch {
	case seg.Seq == c.rcvNxt:
		c.stats.SpuriousRsts++
		c.stack.ctr.spuriousRsts.Add(1)
		c.failLocked(ErrReset)
	case wnd > 0 && seqLT(c.rcvNxt, seg.Seq) && seqLT(seg.Seq, c.rcvNxt+wnd):
		// In-window but not exact: challenge ACK. A legitimate peer that
		// really did reset answers our ACK with another RST, now at the
		// sequence the ACK told it; a forger learns nothing.
		c.noteChallengeAck(seg.Seq)
		c.sendAck()
	default:
		c.stats.RstsDropped++
		c.stack.ctr.rstsDropped.Add(1)
		c.noteDrop("rst-out-of-window", 0)
	}
}

// processAck advances the send side. It reports whether the segment is
// acceptable — a false return means the caller must not process its
// payload either (RFC 5961 §5 blind-data protection). Caller holds c.mu.
func (c *Conn) processAck(seg *wire.Segment) bool {
	if c.st == stateSynRcvd {
		if seg.Ack == c.sndNxt {
			c.setState(stateEstablished)
			c.cancelRetransmit()
			c.rtoBackoff = 0
			c.estOnce.Do(func() { close(c.established) })
			if c.listener != nil {
				l := c.listener
				c.listener = nil
				l.releaseHalfOpen()
				// Offer outside the lock: the listener may Abort us.
				go l.offer(c)
			}
		} else {
			return false
		}
	}

	if seqLT(c.sndMax, seg.Ack) {
		// Acknowledges data we never sent (RFC 5961 §5): a blind
		// injection signature. Challenge-ACK so a legitimate but
		// desynchronized peer can resynchronize, and drop the segment —
		// payload included — so injected data never reaches the stream.
		c.noteChallengeAck(seg.Seq)
		c.sendAck()
		return false
	}

	// Record SACK information.
	if opt := wire.FindOption(seg.Options, wire.OptKindSACK); opt != nil {
		if blocks, ok := opt.SACKBlocks(); ok {
			c.mergeSACK(blocks)
		}
	}

	ack := seg.Ack
	newWnd := int(seg.Window) << c.sndScale

	switch {
	case seqLT(c.sndUna, ack) && seqLEQ(ack, c.sndMax):
		// Note the comparison against sndMax, not sndNxt: after a
		// go-back-N timeout reset, acks for data sent before the reset
		// must still count.
		acked := int(ack - c.sndUna)
		finAcked := c.finSent && seqLT(c.finSeq, ack)
		dataAcked := acked
		if finAcked {
			dataAcked-- // the FIN's sequence slot
		}
		if dataAcked > len(c.sndBuf) {
			dataAcked = len(c.sndBuf)
		}
		c.sndBuf = c.sndBuf[dataAcked:]
		c.sndUna = ack
		if seqLT(c.sndNxt, c.sndUna) {
			c.sndNxt = c.sndUna // ack overtook a go-back-N reset point
		}
		c.pruneSACK()
		c.dupAcks = 0
		c.sndWnd = newWnd

		// RTT sample (Karn: only if the timed segment was never
		// retransmitted — rttPending is cleared on any retransmission).
		var rtt time.Duration
		if c.rttPending && seqLEQ(c.rttSeq, ack) {
			rtt = c.stack.clock.VirtualSince(c.rttStart)
			c.updateRTO(rtt)
			c.rttPending = false
		}
		// Dense per-segment samples from the transmit log feed the
		// congestion controller (HyStart needs per-ack delay signals).
		for len(c.txLog) > 0 && seqLEQ(c.txLog[0].end, ack) {
			e := c.txLog[0]
			c.txLog = c.txLog[1:]
			if e.end == ack {
				rtt = c.stack.clock.VirtualSince(e.at)
			}
		}

		if c.inRecovery {
			if seqLEQ(c.recoveryEnd, ack) {
				c.inRecovery = false
				c.ctrl.OnRecoveryExit()
			} else {
				// Partial ack: the byte at the new sndUna is a hole
				// (RFC 6582); retransmit it and keep the pipe full from
				// the SACK scoreboard.
				if seqLT(c.rtxNext, c.sndUna) {
					c.rtxNext = c.sndUna
				}
				c.sackRetransmit(4)
			}
		} else {
			c.ctrl.OnAck(acked, rtt, c.bytesInFlight())
		}
		c.trace().Emit(telemetry.Event{
			Kind: telemetry.EvTCPCwnd,
			Path: c.traceID,
			A:    int64(c.ctrl.CWnd()),
			B:    int64(c.ctrl.Ssthresh()),
			C:    int64(c.bytesInFlight()),
		})

		if c.bytesInFlight() == 0 && !c.finSent {
			c.cancelRetransmit()
		} else {
			c.armRetransmit() // restart for the next oldest segment
		}
		c.oldestTx = time.Time{}
		if c.bytesInFlight() > 0 {
			c.oldestTx = time.Now()
		}
		c.rtoBackoff = 0
		c.tlpFired = false
		c.writeCond.Broadcast()

		if finAcked {
			c.ourFinAcked()
		}

	case ack == c.sndUna:
		c.sndWnd = newWnd
		isDup := len(seg.Payload) == 0 && !seg.Flags.Has(wire.FlagSYN|wire.FlagFIN) &&
			c.bytesInFlight() > 0
		if isDup {
			c.dupAcks++
			c.stats.DupAcksRcvd++
			c.stack.ctr.dupAcksRcvd.Add(1)
			if c.dupAcks == 3 && !c.inRecovery && !seqLT(c.sndUna, c.rtoRecover) {
				// The rtoRecover guard (RFC 5681 §4.3 spirit) stops the
				// dupacks generated by go-back-N resends of delivered
				// data from re-crushing ssthresh after a timeout.
				c.enterFastRecovery()
			} else if c.inRecovery {
				c.ctrl.OnDupAck()
				c.sackRetransmit(4)
			}
		}
	default:
		// Old ACK: ignore the ack field, but the payload may still be
		// valid retransmitted data.
	}
	if c.sndWnd > 0 {
		c.writeCond.Broadcast()
	}
	return true
}

// ourFinAcked advances teardown after the peer acknowledged our FIN.
// Caller holds c.mu.
func (c *Conn) ourFinAcked() {
	switch c.st {
	case stateFinWait1:
		c.setState(stateFinWait2)
		c.cancelRetransmit()
	case stateClosing:
		c.enterTimeWait()
	case stateLastAck:
		c.teardown(nil)
	}
}

// processData handles the payload and FIN of a segment, consuming owner:
// it is either queued (aliased by the trimmed payload) or returned to the
// pool here. Caller holds c.mu.
func (c *Conn) processData(seg *wire.Segment, owner []byte) {
	seq := seg.Seq
	data := seg.Payload
	fin := seg.Flags.Has(wire.FlagFIN)

	// Trim data already received (the trimmed view still aliases owner).
	if seqLT(seq, c.rcvNxt) {
		skip := int(c.rcvNxt - seq)
		if skip >= len(data) {
			if !fin || seqLT(seq+uint32(len(data)), c.rcvNxt) {
				c.sendAck() // pure duplicate: re-ack
				bufpool.Put(owner)
				return
			}
			data = nil
			seq = c.rcvNxt
		} else {
			data = data[skip:]
			seq = c.rcvNxt
		}
	}

	// Enforce the receive buffer. Data beyond the window is dropped; the
	// ACK below tells the peer where we stand. Compliant senders respect
	// the advertised window, so count these.
	if avail := c.recvSpace(); len(data) > avail {
		c.stats.WindowDrops++
		c.stack.ctr.windowDrops.Add(1)
		c.noteDrop("window", len(data)-avail)
		data = data[:avail]
		fin = false
	}

	if seq == c.rcvNxt {
		c.ingest(data, fin, owner)
		c.drainOOO()
	} else if len(data) > 0 || fin {
		c.insertOOO(oooSeg{seq: seq, data: data, owner: owner, fin: fin})
	} else {
		bufpool.Put(owner)
	}
	c.sendAck()
	c.readCond.Broadcast()
}

// ingest queues in-order data (and FIN) for Read. The data slice and its
// backing owner buffer transfer into rcvQ without a copy; a segment with
// no usable data releases owner. Caller holds c.mu.
func (c *Conn) ingest(data []byte, fin bool, owner []byte) {
	if len(data) > 0 {
		c.rcvQ = append(c.rcvQ, rxSeg{data: data, owner: owner})
		c.rcvQBytes += len(data)
		c.rcvNxt += uint32(len(data))
		c.stats.BytesRcvd += uint64(len(data))
		c.stack.ctr.bytesRcvd.Add(uint64(len(data)))
	} else {
		bufpool.Put(owner)
	}
	if fin && !c.peerFin {
		c.peerFin = true
		c.rcvNxt++
		switch c.st {
		case stateEstablished:
			c.setState(stateCloseWait)
		case stateFinWait1:
			// Our FIN is unacked: simultaneous close.
			c.setState(stateClosing)
		case stateFinWait2:
			c.enterTimeWait()
		}
	}
}

// insertOOO buffers an out-of-order segment. Buffering is bounded two
// ways: total bytes held (in-order plus out-of-order) never exceed the
// receive buffer — i.e. the advertised window — and the segment count is
// capped so a peer spraying one-byte fragments cannot amplify the
// per-segment bookkeeping overhead. Overflow evicts the newcomer (the
// sender retransmits; nothing is owed to data we never acked).
// Caller holds c.mu.
func (c *Conn) insertOOO(s oooSeg) {
	total := c.rcvQBytes
	for _, o := range c.ooo {
		total += len(o.data)
	}
	if total+len(s.data) > c.stack.config.RecvBuf {
		c.stats.OOODrops++
		c.stack.ctr.oooDrops.Add(1)
		c.noteDrop("ooo-overflow", len(s.data))
		bufpool.Put(s.owner)
		return
	}
	for i, o := range c.ooo {
		if seqLT(s.seq, o.seq) {
			if len(c.ooo) >= c.stack.config.MaxOOOSegments {
				c.stats.OOODrops++
				c.stack.ctr.oooDrops.Add(1)
				c.noteDrop("ooo-overflow", len(s.data))
				bufpool.Put(s.owner)
				return
			}
			c.ooo = append(c.ooo[:i], append([]oooSeg{s}, c.ooo[i:]...)...)
			return
		}
		if s.seq == o.seq {
			if len(s.data) > len(o.data) {
				bufpool.Put(c.ooo[i].owner)
				c.ooo[i] = s
			} else {
				bufpool.Put(s.owner)
			}
			return
		}
	}
	if len(c.ooo) >= c.stack.config.MaxOOOSegments {
		c.stats.OOODrops++
		c.stack.ctr.oooDrops.Add(1)
		c.noteDrop("ooo-overflow", len(s.data))
		bufpool.Put(s.owner)
		return
	}
	c.ooo = append(c.ooo, s)
}

func (c *Conn) drainOOO() {
	for len(c.ooo) > 0 {
		o := c.ooo[0]
		if seqLT(c.rcvNxt, o.seq) {
			return
		}
		c.ooo[0] = oooSeg{}
		c.ooo = c.ooo[1:]
		if skip := int(c.rcvNxt - o.seq); skip < len(o.data) {
			c.ingest(o.data[skip:], o.fin, o.owner)
		} else if o.fin && seqLEQ(o.seq+uint32(len(o.data)), c.rcvNxt) {
			c.ingest(nil, true, o.owner)
		} else {
			bufpool.Put(o.owner) // fully overtaken by the in-order stream
		}
	}
}

// sackBlocks builds up to 3 SACK blocks from the out-of-order queue.
// Caller holds c.mu.
func (c *Conn) sackBlocks() []wire.SACKBlock {
	if !c.sackOK || len(c.ooo) == 0 {
		return nil
	}
	var blocks []wire.SACKBlock
	for _, o := range c.ooo {
		r := wire.SACKBlock{Left: o.seq, Right: o.seq + uint32(len(o.data))}
		if n := len(blocks); n > 0 && blocks[n-1].Right == r.Left {
			blocks[n-1].Right = r.Right
			continue
		}
		if len(blocks) == 3 {
			break
		}
		blocks = append(blocks, r)
	}
	return blocks
}

// maxSACKScoreboard bounds the scoreboard entry count. Legitimate SACK
// reports describe holes in ≤ the send window, but a hostile receiver
// can spray disjoint one-byte blocks; beyond this many entries the
// newest are discarded (SACK is advisory — the worst case is a
// retransmit we could have avoided).
const maxSACKScoreboard = 256

// mergeSACK folds peer-reported blocks into the scoreboard. Blocks
// outside (sndUna, sndMax] acknowledge data we never sent — a forgery
// or corruption signature — and are ignored rather than stored.
// Caller holds c.mu.
func (c *Conn) mergeSACK(blocks []wire.SACKBlock) {
	for _, b := range blocks {
		if seqLEQ(b.Right, c.sndUna) || !seqLT(b.Left, b.Right) ||
			seqLT(c.sndMax, b.Right) || len(c.sacked) >= maxSACKScoreboard {
			continue
		}
		c.sacked = append(c.sacked, b)
	}
	// Normalize: sort by Left and merge overlaps.
	for i := 1; i < len(c.sacked); i++ {
		for j := i; j > 0 && seqLT(c.sacked[j].Left, c.sacked[j-1].Left); j-- {
			c.sacked[j], c.sacked[j-1] = c.sacked[j-1], c.sacked[j]
		}
	}
	out := c.sacked[:0]
	for _, b := range c.sacked {
		if n := len(out); n > 0 && seqLEQ(b.Left, out[n-1].Right) {
			if seqLT(out[n-1].Right, b.Right) {
				out[n-1].Right = b.Right
			}
			continue
		}
		out = append(out, b)
	}
	c.sacked = out
}

// pruneSACK drops scoreboard entries at or below sndUna. Caller holds c.mu.
func (c *Conn) pruneSACK() {
	out := c.sacked[:0]
	for _, b := range c.sacked {
		if seqLT(c.sndUna, b.Right) {
			out = append(out, b)
		}
	}
	c.sacked = out
}

func (c *Conn) bytesInFlight() int {
	n := int(c.sndNxt - c.sndUna)
	if c.finSent && n > 0 {
		n-- // FIN occupies a sequence slot but no bytes
	}
	return n
}

func (c *Conn) recvSpace() int {
	used := c.rcvQBytes
	for _, o := range c.ooo {
		used += len(o.data)
	}
	if used >= c.stack.config.RecvBuf {
		return 0
	}
	return c.stack.config.RecvBuf - used
}

// recvWindow is the window to advertise, in unscaled bytes.
func (c *Conn) recvWindow() int { return c.recvSpace() }

func (c *Conn) windowField() uint16 {
	w := c.recvWindow() >> c.rcvScale
	if w > 65535 {
		w = 65535
	}
	c.lastAdvW = w << c.rcvScale
	return uint16(w)
}

// sendAck emits a pure ACK (with SACK blocks if any). Caller holds c.mu.
func (c *Conn) sendAck() {
	seg := &wire.Segment{
		SrcPort: c.local.Port(), DstPort: c.remote.Port(),
		Seq: c.sndNxt, Ack: c.rcvNxt,
		Flags:  wire.FlagACK,
		Window: c.windowField(),
	}
	if blocks := c.sackBlocks(); blocks != nil {
		seg.Options = append(seg.Options, wire.SACKOption(blocks))
	}
	c.transmit(seg)
}

// transmit serializes and hands the segment to the host. Caller holds c.mu.
func (c *Conn) transmit(seg *wire.Segment) {
	c.stats.SegsSent++
	c.stack.ctr.segsSent.Add(1)
	c.stack.sendSegment(c.local.Addr(), c.remote.Addr(), seg)
}

// transmitBatch sends the accumulated txSegs burst in one stack call —
// one route lookup and one link-queue lock for the whole ACK-clocked
// flight instead of per segment. Caller holds c.mu.
func (c *Conn) transmitBatch() {
	n := len(c.txSegs)
	c.stats.SegsSent += uint64(n)
	c.stack.ctr.segsSent.Add(uint64(n))
	c.stack.sendSegments(c.local.Addr(), c.remote.Addr(), c.txSegs)
	for i := range c.txSegs {
		c.txSegs[i] = wire.Segment{} // drop sndBuf references
	}
	c.txSegs = c.txSegs[:0]
}

// failLocked terminates with err. Caller holds c.mu.
func (c *Conn) failLocked(err error) { c.teardown(err) }

// teardown finalizes the connection. Caller holds c.mu.
func (c *Conn) teardown(err error) {
	if c.st == stateClosed && c.err != nil {
		return
	}
	if c.st != stateClosed {
		c.stack.ctr.connsClosed.Add(1)
	}
	c.setState(stateClosed)
	if c.err == nil {
		c.err = err
	}
	// Out-of-order segments can never drain now; recycle their buffers.
	// rcvQ stays — already-received data remains readable after teardown.
	for i := range c.ooo {
		bufpool.Put(c.ooo[i].owner)
	}
	c.ooo = nil
	c.cancelRetransmit()
	c.timeWaitTimer.Stop()
	if c.listener != nil {
		// Died before establishment completed: give the half-open slot
		// back so a SYN flood cannot pin the backlog forever.
		c.listener.releaseHalfOpen()
		c.listener = nil
	}
	c.estOnce.Do(func() { close(c.established) })
	c.readCond.Broadcast()
	c.writeCond.Broadcast()
	c.stack.unregister(c)
}

// fail is the exported-path teardown with locking.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.st == stateEstablished || c.st == stateClosed {
		return // dial timeout racing establishment
	}
	c.teardown(err)
}

func (c *Conn) enterTimeWait() {
	c.setState(stateTimeWait)
	c.cancelRetransmit()
	c.stack.clock.Schedule(&c.timeWaitTimer, timeWaitD, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.st == stateTimeWait {
			c.teardown(nil)
		}
	})
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return Addr{c.local} }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return Addr{c.remote} }

// LocalAddrPort returns the local address as a netip.AddrPort.
func (c *Conn) LocalAddrPort() netip.AddrPort { return c.local }

// RemoteAddrPort returns the remote address as a netip.AddrPort.
func (c *Conn) RemoteAddrPort() netip.AddrPort { return c.remote }

// State returns the connection state name (cross-layer introspection).
func (c *Conn) State() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.String()
}

// Info returns a cross-layer snapshot.
func (c *Conn) Info() Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Info{
		State:             c.st.String(),
		CongestionControl: c.ctrl.Name(),
		MSS:               c.mss,
		CWnd:              c.ctrl.CWnd(),
		Ssthresh:          c.ctrl.Ssthresh(),
		BytesInFlight:     c.bytesInFlight(),
		PeerWindow:        c.sndWnd,
		SendQueue:         len(c.sndBuf),
		RecvQueue:         c.rcvQBytes,
		SRTT:              c.srtt,
		RTTVar:            c.rttvar,
		RTO:               c.rto,
		SackedBytes:       c.sackedBytes(),
		InRecovery:        c.inRecovery,
		Stats:             c.stats,
	}
}

// PeerWindow returns the peer's currently advertised receive window.
// Zero means the peer has closed its window (persist territory) — the
// cross-layer signal the TCPLS stall watchdog reads to distinguish a
// slow-drain peer from a merely slow network.
func (c *Conn) PeerWindow() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sndWnd
}

// CWndInfo returns (cwnd, bytesInFlight, mss) — the cross-layer
// introspection TCPLS uses to size records to the congestion window
// (§4.6 of the paper).
func (c *Conn) CWndInfo() (int, int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctrl.CWnd(), c.bytesInFlight(), c.mss
}

// SetUserTimeout installs the RFC 5482 user timeout: if unacknowledged
// data stays outstanding this long, the connection aborts with
// ErrUserTimeout. Zero disables. This is the local effect of the TCP_USER_
// TIMEOUT socket option — and the action the server takes when a TCPLS
// User Timeout option arrives over the encrypted channel (§3.1).
func (c *Conn) SetUserTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.userTO = d
}

// UserTimeout returns the configured user timeout.
func (c *Conn) UserTimeout() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.userTO
}

// SetCongestionControl swaps the congestion controller by registered
// name, live. The new controller starts from its initial window.
func (c *Conn) SetCongestionControl(name string) error {
	ctrl, err := cc.New(name)
	if err != nil {
		return err
	}
	c.SetCongestionControlImpl(ctrl)
	return nil
}

// SetCongestionControlImpl swaps in a concrete controller instance —
// the installation hook for eBPF-delivered controllers (§3(iii)).
func (c *Conn) SetCongestionControlImpl(ctrl cc.Controller) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctrl.Init(c.mss)
	c.ctrl = ctrl
	c.inRecovery = false
	c.dupAcks = 0
}

// PeerSYNOptions returns the TCP options observed on the peer's SYN, as
// they arrived — i.e. after any middlebox interference. Comparing them
// with what the peer claims to have sent (over the TCPLS secure channel)
// "immediately and reliably detects the presence of NAT, transparent
// proxies or other types of middleboxes" (§4.5 of the TCPLS paper).
func (c *Conn) PeerSYNOptions() []wire.Option {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]wire.Option(nil), c.peerSYNOpts...)
}

// SYNOptions returns the options this endpoint sent on its own SYN —
// the "original header" a TCPLS client would copy into the encrypted
// channel for middlebox detection.
func (c *Conn) SYNOptions() []wire.Option { return c.synOptions() }

// CongestionControlName returns the active controller's name.
func (c *Conn) CongestionControlName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctrl.Name()
}
