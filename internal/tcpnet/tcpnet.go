// Package tcpnet is a userspace TCP implementation running over the
// packet network in internal/netsim. It provides net.Conn / net.Listener
// semantics with a faithful protocol engine: three-way handshake,
// cumulative and selective acknowledgments, retransmission with RFC 6298
// RTO estimation and fast retransmit, receive-side reassembly, window
// scaling and flow control, FIN/RST teardown, the RFC 5482 user timeout,
// and pluggable congestion control (internal/cc, including eBPF-delivered
// controllers).
//
// It exists because the TCPLS paper's cross-layer features need a TCP the
// upper layer can see into and reach into: matching TLS record sizes to
// the congestion window (§4.6), installing a User Timeout received over
// the encrypted channel (§3.1), swapping the congestion controller for
// one shipped as eBPF bytecode (§3(iii)), and reacting to spurious resets
// (§2.1). Conn implements the Introspector interface consumed by the
// TCPLS session layer; code that runs over kernel TCP simply does without
// those extras.
package tcpnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
	"github.com/pluginized-protocols/gotcpls/internal/timingwheel"
	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// Errors returned by connections and listeners.
var (
	// ErrReset reports that the connection was torn down by a RST
	// segment — possibly a spurious, middlebox-forged one (§2.1). The
	// TCPLS session layer matches on it to trigger failover.
	ErrReset = errors.New("tcpnet: connection reset")
	// ErrUserTimeout reports that unacknowledged data stayed outstanding
	// longer than the RFC 5482 user timeout.
	ErrUserTimeout = errors.New("tcpnet: user timeout")
	// ErrTimeout reports handshake retransmission exhaustion.
	ErrTimeout = errors.New("tcpnet: connection timed out")
	// ErrClosed reports use of a closed connection, listener or stack.
	ErrClosed = errors.New("tcpnet: closed")
	// ErrRefused reports a RST in response to our SYN.
	ErrRefused = errors.New("tcpnet: connection refused")
	// ErrAddrInUse reports a bind conflict.
	ErrAddrInUse = errors.New("tcpnet: address in use")
)

// Addr is the net.Addr implementation for the emulated network.
type Addr struct{ AP netip.AddrPort }

// Network implements net.Addr.
func (Addr) Network() string { return "tcpsim" }

// String implements net.Addr.
func (a Addr) String() string { return a.AP.String() }

// Stack is one host's TCP instance: it demultiplexes segments delivered
// by the netsim host to connections and listeners.
type Stack struct {
	host  *netsim.Host
	clock *netsim.Network

	// ctr aggregates protocol counters across every connection the
	// stack ever carried. Unlike the per-conn Stats (snapshot via
	// Conn.Info() under the conn mutex), these are plain atomics:
	// readable at any time, from any goroutine, without touching a
	// connection's lock — and they survive the connection itself.
	ctr     stackCounters
	connSeq atomic.Uint32

	// connectHist, when metrics are registered, records TCP connect
	// latency (SYN sent to ESTABLISHED) in virtual nanoseconds under
	// tcp.<name>.connect_ns.
	connectHist atomic.Pointer[telemetry.Histogram]

	mu        sync.Mutex
	conns     map[fourTuple]*Conn
	listeners map[uint16]*Listener
	nextPort  uint16
	rng       *rand.Rand
	closed    bool

	// Config defaults applied to new connections.
	config Config
}

// stackCounters mirrors the per-conn Stats fields as stack-wide
// atomics, plus connection churn.
type stackCounters struct {
	segsSent, segsRcvd, bytesSent, bytesRcvd atomic.Uint64
	retransmits, fastRetransmits, timeouts   atomic.Uint64
	dupAcksRcvd, spuriousRsts                atomic.Uint64
	challengeAcks, rstsDropped               atomic.Uint64
	oooDrops, windowDrops, synDrops          atomic.Uint64
	connsOpened, connsClosed                 atomic.Uint64
}

// StackStats is a snapshot of the stack-wide aggregates, including the
// hostile-peer hardening counters (challenge ACKs and drops by cause).
type StackStats struct {
	SegsSent, SegsRcvd, BytesSent, BytesRcvd uint64
	Retransmits, FastRetransmits, Timeouts   uint64
	DupAcksRcvd, SpuriousRsts                uint64
	ChallengeAcks, RstsDropped               uint64
	OOODrops, WindowDrops, SYNDrops          uint64
	ConnsOpened, ConnsClosed                 uint64
}

// Stats snapshots the stack-wide counters.
func (s *Stack) Stats() StackStats {
	return StackStats{
		SegsSent:        s.ctr.segsSent.Load(),
		SegsRcvd:        s.ctr.segsRcvd.Load(),
		BytesSent:       s.ctr.bytesSent.Load(),
		BytesRcvd:       s.ctr.bytesRcvd.Load(),
		Retransmits:     s.ctr.retransmits.Load(),
		FastRetransmits: s.ctr.fastRetransmits.Load(),
		Timeouts:        s.ctr.timeouts.Load(),
		DupAcksRcvd:     s.ctr.dupAcksRcvd.Load(),
		SpuriousRsts:    s.ctr.spuriousRsts.Load(),
		ChallengeAcks:   s.ctr.challengeAcks.Load(),
		RstsDropped:     s.ctr.rstsDropped.Load(),
		OOODrops:        s.ctr.oooDrops.Load(),
		WindowDrops:     s.ctr.windowDrops.Load(),
		SYNDrops:        s.ctr.synDrops.Load(),
		ConnsOpened:     s.ctr.connsOpened.Load(),
		ConnsClosed:     s.ctr.connsClosed.Load(),
	}
}

// RegisterMetrics exposes the stack-wide counters as pull-style vars
// under tcp.<name>.* in the registry (name defaults to the host name).
// Called automatically by NewStack when Config.Metrics is set.
func (s *Stack) RegisterMetrics(reg *telemetry.Registry, name string) {
	if reg == nil {
		return
	}
	if name == "" {
		name = s.host.Name()
	}
	prefix := "tcp." + name + "."
	u := func(field string, v *atomic.Uint64) {
		reg.Func(prefix+field, func() int64 { return int64(v.Load()) })
	}
	u("segs_sent", &s.ctr.segsSent)
	u("segs_rcvd", &s.ctr.segsRcvd)
	u("bytes_sent", &s.ctr.bytesSent)
	u("bytes_rcvd", &s.ctr.bytesRcvd)
	u("retransmits", &s.ctr.retransmits)
	u("fast_retransmits", &s.ctr.fastRetransmits)
	u("timeouts", &s.ctr.timeouts)
	u("dup_acks_rcvd", &s.ctr.dupAcksRcvd)
	u("spurious_rsts", &s.ctr.spuriousRsts)
	u("challenge_acks", &s.ctr.challengeAcks)
	u("rsts_dropped", &s.ctr.rstsDropped)
	u("ooo_drops", &s.ctr.oooDrops)
	u("window_drops", &s.ctr.windowDrops)
	u("syn_backlog_drops", &s.ctr.synDrops)
	u("conns_opened", &s.ctr.connsOpened)
	u("conns_closed", &s.ctr.connsClosed)
	s.connectHist.Store(reg.Histogram(prefix + "connect_ns"))
}

// Config carries stack-wide defaults for new connections.
type Config struct {
	// MSS is the maximum segment size. Default 1400.
	MSS int
	// SendBuf / RecvBuf bound the socket buffers. Default 512 KiB.
	SendBuf int
	RecvBuf int
	// CongestionControl names the cc algorithm. Default "newreno".
	CongestionControl string
	// WindowScale is the wscale shift advertised. Default 8.
	WindowScale uint8
	// DisableSACK turns off selective acknowledgments.
	DisableSACK bool
	// SYNRetries bounds handshake retransmissions. Default 6.
	SYNRetries int
	// SYNBacklog caps half-open (SYN received, handshake incomplete)
	// connections per listener; SYNs beyond it are dropped, starving a
	// SYN flood instead of the host. Default 128.
	SYNBacklog int
	// MaxOOOSegments caps the out-of-order reassembly queue length per
	// connection, independent of its byte bound — the byte bound alone
	// lets a peer spraying one-byte fragments amplify per-segment
	// bookkeeping. Default RecvBuf/512 (at least 1024), which is far
	// above anything MSS-sized segments can legitimately reach.
	MaxOOOSegments int
	// Tracer receives structured protocol events (state changes,
	// retransmissions, cwnd updates, hardening drops). A nil tracer —
	// or one with no sink — is disabled at zero per-event cost.
	Tracer *telemetry.Tracer
	// Metrics, when set, receives the stack-wide counter registration
	// (under tcp.<MetricsName or host name>.*).
	Metrics *telemetry.Registry
	// MetricsName overrides the host name in registered metric names.
	MetricsName string
}

func (c *Config) fill() {
	if c.MSS == 0 {
		c.MSS = 1400
	}
	if c.SendBuf == 0 {
		c.SendBuf = 512 << 10
	}
	if c.RecvBuf == 0 {
		c.RecvBuf = 512 << 10
	}
	if c.CongestionControl == "" {
		c.CongestionControl = "newreno"
	}
	if c.WindowScale == 0 {
		c.WindowScale = 8
	}
	if c.WindowScale > wire.MaxWindowScale {
		c.WindowScale = wire.MaxWindowScale // RFC 7323 §2.3
	}
	if c.SYNRetries == 0 {
		c.SYNRetries = 6
	}
	if c.SYNBacklog == 0 {
		c.SYNBacklog = 128
	}
	if c.MaxOOOSegments == 0 {
		c.MaxOOOSegments = max(1024, c.RecvBuf/512)
	}
}

type fourTuple struct {
	local, remote netip.AddrPort
}

// NewStack attaches a TCP stack to a netsim host.
func NewStack(h *netsim.Host, config Config) *Stack {
	config.fill()
	s := &Stack{
		host:      h,
		clock:     h.Network(),
		conns:     make(map[fourTuple]*Conn),
		listeners: make(map[uint16]*Listener),
		nextPort:  49152,
		rng:       rand.New(rand.NewSource(time.Now().UnixNano())),
		config:    config,
	}
	h.Register(wire.ProtoTCP, s.input)
	if config.Metrics != nil {
		s.RegisterMetrics(config.Metrics, config.MetricsName)
	}
	return s
}

// Host returns the underlying netsim host.
func (s *Stack) Host() *netsim.Host { return s.host }

// Close aborts every connection and closes every listener.
func (s *Stack) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*Conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	listeners := make([]*Listener, 0, len(s.listeners))
	for _, l := range s.listeners {
		listeners = append(listeners, l)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Abort()
	}
	for _, l := range listeners {
		l.Close()
	}
	return nil
}

func (s *Stack) allocPort() uint16 {
	// Caller holds s.mu.
	for i := 0; i < 1<<14; i++ {
		p := s.nextPort
		s.nextPort++
		if s.nextPort == 0 {
			s.nextPort = 49152
		}
		if _, busy := s.listeners[p]; busy {
			continue
		}
		inUse := false
		for t := range s.conns {
			if t.local.Port() == p {
				inUse = true
				break
			}
		}
		if !inUse {
			return p
		}
	}
	return 0
}

func (s *Stack) register(c *Conn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	t := fourTuple{c.local, c.remote}
	if _, dup := s.conns[t]; dup {
		return ErrAddrInUse
	}
	s.conns[t] = c
	return nil
}

func (s *Stack) unregister(c *Conn) {
	s.mu.Lock()
	delete(s.conns, fourTuple{c.local, c.remote})
	s.mu.Unlock()
}

// input demultiplexes one delivered packet. It runs on netsim delivery
// goroutines. The packet's payload buffer is pooled: exactly one of the
// branches below consumes it (Conn.input takes ownership); every other
// outcome returns it to the pool here.
func (s *Stack) input(p *wire.Packet) {
	owner := p.Payload
	seg, err := wire.UnmarshalSegment(p.Payload, p.Src, p.Dst, true)
	if err != nil {
		bufpool.Put(owner)
		return // checksum or framing failure: drop silently like a NIC
	}
	local := netip.AddrPortFrom(p.Dst, seg.DstPort)
	remote := netip.AddrPortFrom(p.Src, seg.SrcPort)

	s.mu.Lock()
	c := s.conns[fourTuple{local, remote}]
	var l *Listener
	if c == nil {
		l = s.listeners[seg.DstPort]
	}
	closed := s.closed
	s.mu.Unlock()
	if closed {
		bufpool.Put(owner)
		return
	}
	switch {
	case c != nil:
		c.input(seg, owner)
	case l != nil && seg.Flags.Has(wire.FlagSYN) && !seg.Flags.Has(wire.FlagACK):
		// SYN payloads are never queued; the buffer is done once the
		// handshake state (with deep-copied options) is set up.
		l.inputSYN(local, remote, seg)
		bufpool.Put(owner)
	case seg.Flags.Has(wire.FlagRST):
		bufpool.Put(owner) // RST to nobody: ignore.
	default:
		// No socket: answer with RST (unless it's an old ACK).
		s.sendRST(local, remote, seg)
		bufpool.Put(owner)
	}
}

func (s *Stack) sendRST(local, remote netip.AddrPort, in *wire.Segment) {
	rst := &wire.Segment{
		SrcPort: local.Port(), DstPort: remote.Port(),
		Flags: wire.FlagRST | wire.FlagACK,
		Ack:   in.Seq + uint32(len(in.Payload)),
	}
	if in.Flags.Has(wire.FlagSYN) {
		rst.Ack++
	}
	if in.Flags.Has(wire.FlagACK) {
		rst.Seq = in.Ack
	}
	s.sendSegment(local.Addr(), remote.Addr(), rst)
}

// sendSegment marshals seg into a pooled buffer and hands it to the
// host. Ownership of the buffer follows the packet: the receiving stack
// (or a netsim drop site) returns it to the pool.
func (s *Stack) sendSegment(src, dst netip.Addr, seg *wire.Segment) {
	hdrLen, err := seg.HeaderLen()
	if err != nil {
		return
	}
	buf := bufpool.Get(hdrLen + len(seg.Payload))
	if _, err := seg.MarshalInto(buf, src, dst); err != nil {
		bufpool.Put(buf)
		return
	}
	pkt := &wire.Packet{Src: src, Dst: dst, Proto: wire.ProtoTCP, TTL: 64, Payload: buf}
	if s.host.Send(pkt) != nil {
		bufpool.Put(buf) // no route: the packet never entered the network
	}
}

// sendSegments is the burst variant of sendSegment: every segment is
// marshalled into its own pooled buffer, then the whole batch enters the
// network through one SendBatch call (one route lookup, one link-queue
// lock). All segments of a burst share one source and destination.
func (s *Stack) sendSegments(src, dst netip.Addr, segs []wire.Segment) {
	pkts := make([]*wire.Packet, 0, len(segs))
	for i := range segs {
		seg := &segs[i]
		hdrLen, err := seg.HeaderLen()
		if err != nil {
			continue
		}
		buf := bufpool.Get(hdrLen + len(seg.Payload))
		if _, err := seg.MarshalInto(buf, src, dst); err != nil {
			bufpool.Put(buf)
			continue
		}
		pkts = append(pkts, &wire.Packet{Src: src, Dst: dst, Proto: wire.ProtoTCP, TTL: 64, Payload: buf})
	}
	if len(pkts) == 0 {
		return
	}
	if s.host.SendBatch(pkts) != nil {
		for _, p := range pkts {
			bufpool.Put(p.Payload)
		}
	}
}

// Listener accepts inbound connections on a local port.
type Listener struct {
	stack *Stack
	addr  netip.AddrPort

	mu      sync.Mutex
	backlog chan *Conn
	closed  bool

	// Half-open accounting (SYN-flood defense). Atomics, not l.mu:
	// conn teardown releases a slot while holding the conn lock, and
	// offer() takes conn locks while holding l.mu — a mutex here would
	// create a lock-order cycle.
	halfOpen atomic.Int32
	synDrops atomic.Uint64
}

// releaseHalfOpen returns a pending-handshake slot, called when a
// half-open connection either completes establishment or dies.
func (l *Listener) releaseHalfOpen() { l.halfOpen.Add(-1) }

// HalfOpen reports connections in the SYN-received state awaiting
// handshake completion.
func (l *Listener) HalfOpen() int { return int(l.halfOpen.Load()) }

// SYNDrops reports SYNs discarded because the pending-handshake backlog
// was full.
func (l *Listener) SYNDrops() uint64 { return l.synDrops.Load() }

// Listen binds a listener to the given port on addr. A zero addr accepts
// connections to any of the host's addresses.
func (s *Stack) Listen(addr netip.Addr, port uint16) (*Listener, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, busy := s.listeners[port]; busy {
		return nil, ErrAddrInUse
	}
	l := &Listener{
		stack:   s,
		addr:    netip.AddrPortFrom(addr, port),
		backlog: make(chan *Conn, 128),
	}
	s.listeners[port] = l
	return l, nil
}

// Accept waits for the next established connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, ok := <-l.backlog
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

// AcceptTCP is Accept returning the concrete type.
func (l *Listener) AcceptTCP() (*Conn, error) {
	c, ok := <-l.backlog
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

// AcceptBatch drains up to len(dst) already-established connections
// without blocking and reports how many it wrote. Callers that just
// woke from a blocking Accept use it to swallow a whole connection
// burst in one scheduler wakeup instead of one round-trip per conn.
func (l *Listener) AcceptBatch(dst []net.Conn) int {
	n := 0
	for n < len(dst) {
		select {
		case c, ok := <-l.backlog:
			if !ok {
				return n
			}
			dst[n] = c
			n++
		default:
			return n
		}
	}
	return n
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return Addr{l.addr} }

// Close implements net.Listener.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.backlog)
	l.mu.Unlock()
	l.stack.mu.Lock()
	delete(l.stack.listeners, l.addr.Port())
	l.stack.mu.Unlock()
	return nil
}

// inputSYN handles a SYN for this listener: create the half-open conn and
// answer SYN+ACK. If the conn already exists (retransmitted SYN) the
// stack demux routes it there instead.
func (l *Listener) inputSYN(local, remote netip.AddrPort, seg *wire.Segment) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()
	if l.addr.Addr().IsValid() && !l.addr.Addr().IsUnspecified() && local.Addr() != l.addr.Addr() {
		return // bound to a specific address
	}
	// Reserve a pending-handshake slot before allocating anything. Under
	// a SYN flood the backlog fills and further SYNs cost one atomic op
	// each — no conn state, no SYN+ACK, no timers. Legitimate clients
	// retransmit their SYN and get in once flooded entries time out.
	if l.halfOpen.Add(1) > int32(l.stack.config.SYNBacklog) {
		l.halfOpen.Add(-1)
		l.synDrops.Add(1)
		l.stack.ctr.synDrops.Add(1)
		l.stack.config.Tracer.Emit(telemetry.Event{
			Kind: telemetry.EvTCPDrop, A: int64(len(seg.Payload)), S: "syn-backlog",
		})
		return
	}
	c := newConn(l.stack, local, remote, false)
	if err := l.stack.register(c); err != nil {
		l.releaseHalfOpen()
		return
	}
	c.listener = l
	c.input(seg, nil) // owner stays with Stack.input; SYN data is not queued
}

// offer queues an established connection for Accept; drops it if the
// backlog is full or the listener closed (the peer will retransmit or
// reset).
func (l *Listener) offer(c *Conn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		c.Abort()
		return
	}
	select {
	case l.backlog <- c:
	default:
		c.Abort()
	}
}

// Dial opens a connection from laddr to raddr. A zero laddr picks the
// host's first address of raddr's family; port 0 allocates an ephemeral
// port. Dial blocks until the handshake completes, the timeout elapses
// (0 means the stack's handshake retransmission limit) or the peer
// refuses.
func (s *Stack) Dial(laddr netip.Addr, raddr netip.AddrPort, timeout time.Duration) (*Conn, error) {
	if !laddr.IsValid() || laddr.IsUnspecified() {
		for _, a := range s.host.Addrs() {
			if a.Is4() == raddr.Addr().Is4() {
				laddr = a
				break
			}
		}
		if !laddr.IsValid() || laddr.IsUnspecified() {
			return nil, fmt.Errorf("tcpnet: no local address for %s", raddr)
		}
	}
	s.mu.Lock()
	port := s.allocPort()
	s.mu.Unlock()
	if port == 0 {
		return nil, ErrAddrInUse
	}
	c := newConn(s, netip.AddrPortFrom(laddr, port), raddr, true)
	if err := s.register(c); err != nil {
		return nil, err
	}
	connectStart := time.Now()
	c.startConnect()
	var timer *timingwheel.Timer
	if timeout > 0 {
		timer = s.clock.AfterFunc(timeout, func() {
			c.fail(ErrTimeout)
		})
	}
	<-c.established
	if timer != nil {
		timer.Stop()
	}
	c.mu.Lock()
	err := c.err
	st := c.st
	c.mu.Unlock()
	if st != stateEstablished && err != nil {
		return nil, err
	}
	if h := s.connectHist.Load(); h != nil {
		h.Observe(s.clock.VirtualSince(connectStart).Nanoseconds())
	}
	return c, nil
}

// Dialer adapts the stack to interfaces that expect net.Conn results
// (core.Dialer); Go method values cannot re-type *Conn to net.Conn.
type Dialer struct{ Stack *Stack }

// Dial implements the core.Dialer contract over this stack.
func (d Dialer) Dial(laddr netip.Addr, raddr netip.AddrPort, timeout time.Duration) (net.Conn, error) {
	c, err := d.Stack.Dial(laddr, raddr, timeout)
	if err != nil {
		return nil, err // avoid a typed-nil net.Conn
	}
	return c, nil
}
