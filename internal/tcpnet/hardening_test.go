package tcpnet

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// inject delivers a hand-crafted segment to s as if it arrived from s's
// peer, bypassing the link — the blind-attacker's-eye view used by the
// RFC 5961 tests below.
func inject(s *Conn, mutate func(seg *wire.Segment)) {
	s.mu.Lock()
	seg := &wire.Segment{
		SrcPort: s.remote.Port(), DstPort: s.local.Port(),
		Seq: s.rcvNxt, Ack: s.sndUna,
		Flags:  wire.FlagACK,
		Window: 65535,
	}
	s.mu.Unlock()
	mutate(seg)
	s.input(seg, nil)
}

func connStats(c *Conn) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func connState(c *Conn) (state, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st, c.err
}

// TestRSTChallengeAck covers RFC 5961 §3.2: a reset inside the receive
// window but not at exactly rcvNxt must not kill the connection — it is
// answered with a challenge ACK and the transfer proceeds.
func TestRSTChallengeAck(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	c, s := e.connect(t)

	inject(s, func(seg *wire.Segment) {
		seg.Seq += 100 // in-window, not exact
		seg.Flags = wire.FlagRST
	})

	if st, err := connState(s); st != stateEstablished {
		t.Fatalf("conn died on offset RST: state %s err %v", st, err)
	}
	if st := connStats(s); st.ChallengeAcks == 0 {
		t.Fatalf("no challenge ACK recorded: %+v", st)
	}
	transfer(t, c, s, 32<<10, 10*time.Second)
}

// TestRSTOutOfWindowDropped: a reset outside the receive window is
// discarded without a challenge (no amplification for wild guesses).
func TestRSTOutOfWindowDropped(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	c, s := e.connect(t)

	inject(s, func(seg *wire.Segment) {
		seg.Seq += 1 << 30 // far outside any window
		seg.Flags = wire.FlagRST
	})

	if st, err := connState(s); st != stateEstablished {
		t.Fatalf("conn died on out-of-window RST: state %s err %v", st, err)
	}
	st := connStats(s)
	if st.RstsDropped == 0 {
		t.Fatalf("drop not recorded: %+v", st)
	}
	if st.ChallengeAcks != 0 {
		t.Fatalf("out-of-window RST must not be challenged: %+v", st)
	}
	transfer(t, c, s, 8<<10, 10*time.Second)
}

// TestBlindSYNChallenge covers RFC 5961 §4: a SYN on a synchronized
// connection elicits a challenge ACK instead of any state change.
func TestBlindSYNChallenge(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	c, s := e.connect(t)

	inject(s, func(seg *wire.Segment) {
		seg.Seq += 7
		seg.Flags = wire.FlagSYN
	})

	if st, err := connState(s); st != stateEstablished {
		t.Fatalf("conn died on blind SYN: state %s err %v", st, err)
	}
	if st := connStats(s); st.ChallengeAcks == 0 {
		t.Fatalf("no challenge ACK recorded: %+v", st)
	}
	transfer(t, c, s, 8<<10, 10*time.Second)
}

// TestBlindDataChallenge covers RFC 5961 §5: a segment acknowledging
// data we never sent is a blind injection — its payload must not reach
// the stream, and a challenge ACK resynchronizes honest peers.
func TestBlindDataChallenge(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	c, s := e.connect(t)

	before := connStats(s)
	inject(s, func(seg *wire.Segment) {
		seg.Ack += 90000 // beyond anything s ever sent
		seg.Payload = []byte("injected payload")
	})

	st := connStats(s)
	if st.ChallengeAcks == 0 {
		t.Fatalf("no challenge ACK recorded: %+v", st)
	}
	if st.BytesRcvd != before.BytesRcvd {
		t.Fatalf("injected payload was ingested: %d -> %d bytes", before.BytesRcvd, st.BytesRcvd)
	}
	transfer(t, c, s, 8<<10, 10*time.Second)
}

// TestOOOSegmentCountCap: a peer spraying small out-of-order fragments
// hits the reassembly segment cap; overflow is dropped and counted, and
// the connection survives.
func TestOOOSegmentCountCap(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{MaxOOOSegments: 4})
	c, s := e.connect(t)

	for i := 2; i < 14; i++ {
		off := uint32(i * 500)
		inject(s, func(seg *wire.Segment) {
			seg.Seq += off // leave a gap at rcvNxt so nothing drains
			seg.Payload = make([]byte, 100)
		})
	}

	s.mu.Lock()
	oooLen := len(s.ooo)
	drops := s.stats.OOODrops
	s.mu.Unlock()
	if oooLen > 4 {
		t.Fatalf("ooo queue grew past the cap: %d segments", oooLen)
	}
	if drops == 0 {
		t.Fatal("no OOO drops recorded")
	}
	if st, err := connState(s); st != stateEstablished {
		t.Fatalf("conn died: state %s err %v", st, err)
	}
	transfer(t, c, s, 8<<10, 10*time.Second)
}

// TestOOOWindowBound: data beyond the advertised receive window is
// truncated and counted — the reassembly queue cannot outgrow the
// receive buffer no matter what the peer sends.
func TestOOOWindowBound(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{RecvBuf: 8 << 10})
	_, s := e.connect(t)

	// 16 KiB sprayed at a conn with an 8 KiB receive buffer.
	for i := 1; i < 16; i++ {
		off := uint32(i * 1024)
		inject(s, func(seg *wire.Segment) {
			seg.Seq += off
			seg.Payload = make([]byte, 1024)
		})
	}

	s.mu.Lock()
	held := s.rcvQBytes
	for _, o := range s.ooo {
		held += len(o.data)
	}
	windowDrops := s.stats.WindowDrops
	s.mu.Unlock()
	if held > 8<<10 {
		t.Fatalf("buffered %d bytes, receive buffer is %d", held, 8<<10)
	}
	if windowDrops == 0 {
		t.Fatal("no window drops recorded")
	}
}

// TestWindowScaleClamp: an attacker-supplied wscale above the RFC 7323
// maximum of 14 is clamped, not honored.
func TestWindowScaleClamp(t *testing.T) {
	e := env(t, netsim.LinkConfig{}, Config{})
	c := newConn(e.client, netip.AddrPortFrom(clientAddr, 1), netip.AddrPortFrom(serverAddr, 2), true)
	c.mu.Lock()
	c.processSynOptions(&wire.Segment{Options: []wire.Option{
		wire.MSSOption(1400),
		wire.WindowScaleOption(30),
		wire.SACKPermittedOption(),
	}})
	scale := c.sndScale
	c.mu.Unlock()
	if scale != wire.MaxWindowScale {
		t.Fatalf("sndScale = %d, want clamp to %d", scale, wire.MaxWindowScale)
	}
}

// TestSACKBeyondSndMaxIgnored: SACK blocks acknowledging data never
// sent are forged and must not enter the scoreboard.
func TestSACKBeyondSndMaxIgnored(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	c, _ := e.connect(t)

	c.mu.Lock()
	c.mergeSACK([]wire.SACKBlock{{Left: c.sndMax + 1000, Right: c.sndMax + 2000}})
	entries := len(c.sacked)
	c.mu.Unlock()
	if entries != 0 {
		t.Fatalf("forged SACK block entered the scoreboard (%d entries)", entries)
	}
}

// TestSYNBacklogCap floods the listener with SYNs from spoofed,
// unroutable sources: half-open connections must stay at the backlog
// cap, with the overflow dropped and counted.
func TestSYNBacklogCap(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{SYNBacklog: 16})
	spoofed := netip.MustParseAddr("10.9.9.9") // no route back: SYN+ACKs vanish
	h := e.client.Host()
	const flood = 200
	for i := 0; i < flood; i++ {
		seg := &wire.Segment{
			SrcPort: uint16(10000 + i), DstPort: 443,
			Seq:   uint32(i) * 100000,
			Flags: wire.FlagSYN, Window: 65535,
		}
		b, err := seg.Marshal(spoofed, serverAddr)
		if err != nil {
			t.Fatal(err)
		}
		h.Send(&wire.Packet{Src: spoofed, Dst: serverAddr, Proto: wire.ProtoTCP, TTL: 64, Payload: b})
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if e.listener.SYNDrops() >= flood-16 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := e.listener.HalfOpen(); got > 16 {
		t.Fatalf("half-open connections grew past the backlog: %d", got)
	}
	if drops := e.listener.SYNDrops(); drops < flood-16 {
		t.Fatalf("SYN drops = %d, want >= %d", drops, flood-16)
	}
}

// TestSpuriousRSTChallengeFromMiddlebox is the middlebox variant of the
// challenge path: an on-path box that forges resets with a sequence
// offset (it guessed, rather than observed, the exact value) no longer
// kills the connection — the transfer completes under continuous fire.
func TestSpuriousRSTChallengeFromMiddlebox(t *testing.T) {
	e := env(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{})
	injected := 0
	e.link.Use(netsim.MiddleboxFunc(func(p *wire.Packet, dir netsim.Direction) ([]*wire.Packet, []*wire.Packet) {
		seg, err := wire.UnmarshalSegment(p.Payload, p.Src, p.Dst, false)
		if err != nil || len(seg.Payload) == 0 || injected >= 8 {
			return []*wire.Packet{p}, nil
		}
		injected++
		rst := &wire.Segment{
			SrcPort: seg.SrcPort, DstPort: seg.DstPort,
			// In-window but past rcvNxt: the pre-RFC-5961 code accepted
			// this; now it must only elicit a challenge ACK.
			Seq:   seg.Seq + uint32(len(seg.Payload)) + 512,
			Ack:   seg.Ack,
			Flags: wire.FlagRST | wire.FlagACK,
		}
		b, _ := rst.Marshal(p.Src, p.Dst)
		q := &wire.Packet{Src: p.Src, Dst: p.Dst, Proto: wire.ProtoTCP, TTL: 64, Payload: b}
		return []*wire.Packet{p, q}, nil
	}))
	c, s := e.connect(t)
	transfer(t, c, s, 64<<10, 15*time.Second)

	if st := connStats(s); st.ChallengeAcks == 0 {
		t.Fatalf("offset RSTs never challenged: %+v (injected %d)", st, injected)
	}
	if _, err := connState(s); errors.Is(err, ErrReset) {
		t.Fatal("offset RST killed the connection")
	}
}
