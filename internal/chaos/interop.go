package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"sort"
	"strings"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/core"
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/quicbase"
	"github.com/pluginized-protocols/gotcpls/internal/tcpnet"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// The interop gauntlet measures the paper's Table 1 instead of asserting
// it: three stacks — TCPLS, plain TLS-over-TCP, and the QUIC-like
// comparator — each run through a gallery of middlebox interference
// models, producing a pass/degrade/fail matrix. "Degrade" is the TCPLS
// ladder working as designed: the transfer completed, but the session
// shed capabilities (or fell back to plain TLS) to get there. The matrix
// is checked against a golden file so a row silently getting worse
// (pass -> degrade, degrade -> fail) fails the build.

// InteropOutcome is one cell of the matrix.
type InteropOutcome string

const (
	// OutcomePass: transfer completed with full protocol capability.
	OutcomePass InteropOutcome = "pass"
	// OutcomeDegrade: transfer completed, but the stack shed capabilities
	// (TCPLS degradation ladder: lost paths, disabled multipath, or the
	// full plain-TLS fallback).
	OutcomeDegrade InteropOutcome = "degrade"
	// OutcomeFail: the transfer errored, corrupted data, or timed out.
	OutcomeFail InteropOutcome = "fail"
)

// rank orders outcomes for regression checks: higher is better.
func (o InteropOutcome) rank() int {
	switch o {
	case OutcomePass:
		return 2
	case OutcomeDegrade:
		return 1
	default:
		return 0
	}
}

// InteropStacks lists the compared stacks, in matrix column order.
var InteropStacks = []string{"tcpls", "tls", "quic"}

// InteropRow is one middlebox configuration of the gauntlet.
type InteropRow struct {
	Name string
	// Middleboxes builds the row's interference chain against the run's
	// network (stateful models need its virtual clock).
	Middleboxes func(n *netsim.Network) []netsim.Middlebox
	// Note documents what the row models.
	Note string
}

// Interop timing (virtual unless noted). The traffic pattern is
// half/pause/half so age- and idle-based middlebox state expiry fires
// mid-connection, between the two halves.
const (
	interopTimeScale  = 0.05             // 20x compression
	interopExpiry     = time.Second      // NAT RebindAfter / firewall StateTTL
	interopPause      = 2 * time.Second  // mid-transfer quiet period
	interopPayload    = 64 << 10         // total transfer (echoed back)
	interopWallBudget = 20 * time.Second // per-run wall-clock abort
	interopIODeadline = 8 * time.Second  // wall-clock socket deadline (plain TLS)
)

// natOutside is the NAT's public face — inside the link's /24 so
// reverse-path routing reaches the translator.
var natOutside = netip.MustParseAddr("10.0.0.77")

// InteropRows is the canonical gauntlet, the measured analogue of the
// paper's Table 1 rows.
func InteropRows() []InteropRow {
	return []InteropRow{
		{
			Name:        "clean",
			Middleboxes: func(n *netsim.Network) []netsim.Middlebox { return nil },
			Note:        "no interference — every stack must pass",
		},
		{
			Name: "option-strip",
			Middleboxes: func(n *netsim.Network) []netsim.Middlebox {
				return []netsim.Middlebox{
					&netsim.HelloExtensionMangler{},
					&netsim.OptionStripper{Kinds: []uint8{wire.OptKindSACKPermitted, wire.OptKindUserTimeout}},
				}
			},
			Note: "TLS-aware scrubber mangles the TCPLS ClientHello extension and strips TCP options",
		},
		{
			Name: "nat-rebind",
			Middleboxes: func(n *netsim.Network) []netsim.Middlebox {
				return []netsim.Middlebox{
					&netsim.StatefulNAT{
						Inside: ClientV4, Outside: natOutside, Dir: netsim.AtoB,
						Net: n, RebindAfter: interopExpiry, Seed: 7,
					},
				}
			},
			Note: "carrier-grade NAT rebinds the 4-tuple mid-connection",
		},
		{
			Name: "firewall-ttl",
			Middleboxes: func(n *netsim.Network) []netsim.Middlebox {
				return []netsim.Middlebox{
					&netsim.StatefulFirewall{Inside: netsim.AtoB, Net: n, StateTTL: interopExpiry},
				}
			},
			Note: "stateful firewall silently evicts flow state after a TTL (blackhole, no RST)",
		},
		{
			Name: "splice-proxy",
			Middleboxes: func(n *netsim.Network) []netsim.Middlebox {
				return []netsim.Middlebox{
					&netsim.SpliceProxy{
						Dir: netsim.AtoB, Seed: 11,
						StripOptions: []uint8{wire.OptKindUserTimeout}, MSSClamp: 1300,
					},
				}
			},
			Note: "terminating proxy re-originates sequence numbers, clamps MSS, strips SYN options",
		},
		{
			Name: "udp-blocked",
			Middleboxes: func(n *netsim.Network) []netsim.Middlebox {
				return []netsim.Middlebox{&netsim.ProtoBlocker{Protos: []uint8{wire.ProtoUDP}}}
			},
			Note: "enterprise firewall drops all UDP — the reason TCP fallbacks exist",
		},
		{
			Name: "join-mangle",
			Middleboxes: func(n *netsim.Network) []netsim.Middlebox {
				return []netsim.Middlebox{&netsim.HelloExtensionMangler{SkipFlows: 1}}
			},
			Note: "scrubber spares the first connection but mangles every secondary (JOIN) handshake",
		},
	}
}

// InteropCell is one matrix entry plus its diagnostic detail.
type InteropCell struct {
	Outcome InteropOutcome
	Detail  string
}

// InteropResult is the full measured matrix.
type InteropResult struct {
	Rows  []string
	Cells map[string]map[string]InteropCell
	// Events holds the TCPLS run's full trace per row, for asserting the
	// typed degrade events actually fired.
	Events map[string][]telemetry.Event
}

// Matrix renders the pass/degrade/fail table (golden-file format).
func (r *InteropResult) Matrix() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "row")
	for _, s := range InteropStacks {
		fmt.Fprintf(&b, " %-8s", s)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s", row)
		for _, s := range InteropStacks {
			fmt.Fprintf(&b, " %-8s", r.Cells[row][s].Outcome)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Details renders the per-cell diagnostics (for logs, not the golden).
func (r *InteropResult) Details() string {
	var b strings.Builder
	for _, row := range r.Rows {
		for _, s := range InteropStacks {
			c := r.Cells[row][s]
			if c.Detail != "" {
				fmt.Fprintf(&b, "%s/%s: %s (%s)\n", row, s, c.Outcome, c.Detail)
			}
		}
	}
	return b.String()
}

// RunInterop executes the whole gauntlet: every row, every stack, each
// in a fresh emulated network.
func RunInterop() *InteropResult {
	res := &InteropResult{
		Cells:  make(map[string]map[string]InteropCell),
		Events: make(map[string][]telemetry.Event),
	}
	for _, row := range InteropRows() {
		res.Rows = append(res.Rows, row.Name)
		cells := make(map[string]InteropCell)
		cell, events := runInteropTCPLS(row)
		cells["tcpls"] = cell
		res.Events[row.Name] = events
		cells["tls"] = runInteropTLS(row)
		cells["quic"] = runInteropQUIC(row)
		res.Cells[row.Name] = cells
	}
	return res
}

// interopPayloadHalves builds the deterministic two-phase payload.
func interopPayloadHalves(seed int64) (a, b []byte) {
	buf := make([]byte, interopPayload)
	rand.New(rand.NewSource(seed)).Read(buf)
	return buf[:interopPayload/2], buf[interopPayload/2:]
}

// interopEnv is one run's emulated world: two hosts, one link carrying
// the row's middlebox chain, one shared trace ring.
type interopEnv struct {
	n    *netsim.Network
	ch   *netsim.Host
	sh   *netsim.Host
	link *netsim.Link
	ring *telemetry.RingSink
	cliT *telemetry.Tracer
	srvT *telemetry.Tracer
}

func newInteropEnv(row InteropRow) *interopEnv {
	n := netsim.New(netsim.WithSeed(1), netsim.WithTimeScale(interopTimeScale))
	ch, sh := n.Host("client"), n.Host("server")
	link := n.AddLink(ch, sh, ClientV4, ServerV4,
		netsim.LinkConfig{Name: "v4", Delay: time.Millisecond, BandwidthBps: 50e6})
	if mb := row.Middleboxes(n); len(mb) > 0 {
		link.Use(mb...)
	}
	ring := telemetry.NewRingSink(1 << 15)
	mk := func(ep string) *telemetry.Tracer {
		return telemetry.NewTracer(
			telemetry.WithEndpoint(ep),
			telemetry.WithClock(n.VirtualNow),
			telemetry.WithSink(ring),
		)
	}
	return &interopEnv{n: n, ch: ch, sh: sh, link: link, ring: ring,
		cliT: mk("client"), srvT: mk("server")}
}

// --- TCPLS ---

type tcplsRunResult struct {
	err   error
	plain bool
	caps  core.Capability
}

func runInteropTCPLS(row InteropRow) (InteropCell, []telemetry.Event) {
	env := newInteropEnv(row)
	defer env.n.Close()
	halfA, halfB := interopPayloadHalves(2)

	cs := tcpnet.NewStack(env.ch, tcpnet.Config{})
	ss := tcpnet.NewStack(env.sh, tcpnet.Config{})
	defer cs.Close()
	defer ss.Close()
	tl, err := ss.Listen(netip.Addr{}, 443)
	if err != nil {
		return InteropCell{OutcomeFail, "listen: " + err.Error()}, nil
	}
	retry := core.RetryPolicy{
		Base: 25 * time.Millisecond, Cap: 200 * time.Millisecond,
		MaxAttempts: 8, DialTimeout: 500 * time.Millisecond,
	}
	lst := core.NewListener(tl, &core.Config{
		TLS:                 &tls13.Config{Certificate: serverCert()},
		Clock:               env.n,
		Multipath:           true,
		AllowDegraded:       true,
		HealthProbeInterval: 100 * time.Millisecond,
		HealthFailAfter:     3,
		RevalidateTimeout:   300 * time.Millisecond,
		Retry:               retry,
		Tracer:              env.srvT,
	})
	defer lst.Close()
	cli := core.NewClient(&core.Config{
		TLS:                 &tls13.Config{InsecureSkipVerify: true},
		Clock:               env.n,
		Multipath:           true,
		AllowDegraded:       true,
		JoinFailLimit:       3,
		HealthProbeInterval: 100 * time.Millisecond,
		HealthFailAfter:     3,
		Retry:               retry,
		RetrySeed:           1,
		Tracer:              env.cliT,
	}, tcpnet.Dialer{Stack: cs})
	defer cli.Close()

	done := make(chan tcplsRunResult, 1)
	go func() {
		done <- func() tcplsRunResult {
			acceptCh := make(chan *core.Session, 1)
			go func() {
				s, _ := lst.Accept()
				acceptCh <- s
			}()
			if _, err := cli.Connect(netip.Addr{}, netip.AddrPortFrom(ServerV4, 443), 2*time.Second); err != nil {
				return tcplsRunResult{err: fmt.Errorf("connect: %w", err)}
			}
			if err := cli.Handshake(); err != nil {
				return tcplsRunResult{err: fmt.Errorf("handshake: %w", err)}
			}
			srv := <-acceptCh
			if srv == nil {
				return tcplsRunResult{err: errors.New("accept failed")}
			}
			defer srv.Close()
			go func() {
				st, err := srv.AcceptStream()
				if err != nil {
					return
				}
				data, err := readAll(st)
				if err != nil {
					return
				}
				st.Write(data)
				st.Close()
			}()
			// Exercise multipath: try to add a second path. Failures here
			// are interference, not fatal — the degradation machinery
			// decides when to stop trying.
			if !cli.PlainMode() {
				for i := 0; i < 4; i++ {
					_, err := cli.Connect(netip.Addr{}, netip.AddrPortFrom(ServerV4, 443), time.Second)
					if err == nil || errors.Is(err, core.ErrCapabilityDisabled) {
						break
					}
				}
			}
			st, err := cli.NewStream()
			if err != nil {
				return tcplsRunResult{err: fmt.Errorf("stream: %w", err)}
			}
			if _, err := st.Write(halfA); err != nil {
				return tcplsRunResult{err: fmt.Errorf("write: %w", err)}
			}
			time.Sleep(env.n.ScaleDuration(interopPause))
			if _, err := st.Write(halfB); err != nil {
				return tcplsRunResult{err: fmt.Errorf("write after pause: %w", err)}
			}
			if err := st.Close(); err != nil {
				return tcplsRunResult{err: fmt.Errorf("close: %w", err)}
			}
			echo, err := readAll(st)
			if err != nil {
				return tcplsRunResult{err: fmt.Errorf("read echo: %w", err)}
			}
			if !bytes.Equal(echo, append(append([]byte(nil), halfA...), halfB...)) {
				return tcplsRunResult{err: fmt.Errorf("echo mismatch: %d bytes", len(echo))}
			}
			res := tcplsRunResult{plain: cli.PlainMode(), caps: cli.DegradedCaps()}
			cli.Close()
			srv.Close()
			return res
		}()
	}()

	var res tcplsRunResult
	select {
	case res = <-done:
	case <-time.After(interopWallBudget):
		res = tcplsRunResult{err: errors.New("wall-clock timeout")}
		cli.Close()
		lst.Close()
		cs.Close()
		ss.Close()
	}
	events := env.ring.Events()
	return classifyTCPLS(res, events), events
}

// classifyTCPLS folds the run result and its trace into a cell. The
// degrade signals are exactly the typed events the degradation ladder
// emits plus the session's own capability state.
func classifyTCPLS(res tcplsRunResult, events []telemetry.Event) InteropCell {
	if res.err != nil {
		return InteropCell{OutcomeFail, res.err.Error()}
	}
	var signals []string
	if res.plain {
		signals = append(signals, "plain-tls fallback")
	} else if res.caps != 0 {
		signals = append(signals, "caps shed: "+res.caps.String())
	}
	seen := map[telemetry.EventKind]bool{}
	for _, ev := range events {
		switch ev.Kind {
		case telemetry.EvSessionDegraded, telemetry.EvPathFailover, telemetry.EvPathDegraded:
			if !seen[ev.Kind] {
				seen[ev.Kind] = true
			}
		}
	}
	var kinds []string
	for k := range seen {
		kinds = append(kinds, k.Name())
	}
	sort.Strings(kinds)
	signals = append(signals, kinds...)
	if len(signals) > 0 {
		return InteropCell{OutcomeDegrade, strings.Join(signals, ", ")}
	}
	return InteropCell{OutcomePass, ""}
}

// --- plain TLS over TCP ---

func runInteropTLS(row InteropRow) InteropCell {
	env := newInteropEnv(row)
	defer env.n.Close()
	halfA, halfB := interopPayloadHalves(3)

	cs := tcpnet.NewStack(env.ch, tcpnet.Config{})
	ss := tcpnet.NewStack(env.sh, tcpnet.Config{})
	defer cs.Close()
	defer ss.Close()
	tl, err := ss.Listen(netip.Addr{}, 443)
	if err != nil {
		return InteropCell{OutcomeFail, "listen: " + err.Error()}
	}
	go func() {
		conn, err := tl.Accept()
		if err != nil {
			return
		}
		conn.SetDeadline(time.Now().Add(interopIODeadline))
		tc := tls13.Server(conn, &tls13.Config{Certificate: serverCert()})
		if err := tc.Handshake(); err != nil {
			conn.Close()
			return
		}
		data, err := io.ReadAll(tc) // until the client's close_notify
		if err != nil {
			conn.Close()
			return
		}
		tc.Write(data)
		tc.CloseWrite()
	}()

	conn, err := cs.Dial(netip.Addr{}, netip.AddrPortFrom(ServerV4, 443), 2*time.Second)
	if err != nil {
		return InteropCell{OutcomeFail, "dial: " + err.Error()}
	}
	defer conn.Close()
	// Wall-clock deadline doubles as the run's failure detector: on a
	// blackholed path every read/write below errors out instead of
	// hanging the gauntlet.
	conn.SetDeadline(time.Now().Add(interopIODeadline))
	tc := tls13.Client(conn, &tls13.Config{InsecureSkipVerify: true})
	if err := tc.Handshake(); err != nil {
		return InteropCell{OutcomeFail, "handshake: " + err.Error()}
	}
	if _, err := tc.Write(halfA); err != nil {
		return InteropCell{OutcomeFail, "write: " + err.Error()}
	}
	time.Sleep(env.n.ScaleDuration(interopPause))
	if _, err := tc.Write(halfB); err != nil {
		return InteropCell{OutcomeFail, "write after pause: " + err.Error()}
	}
	if err := tc.CloseWrite(); err != nil {
		return InteropCell{OutcomeFail, "close-write: " + err.Error()}
	}
	echo, err := io.ReadAll(tc)
	if err != nil {
		return InteropCell{OutcomeFail, "read echo: " + err.Error()}
	}
	if !bytes.Equal(echo, append(append([]byte(nil), halfA...), halfB...)) {
		return InteropCell{OutcomeFail, fmt.Sprintf("echo mismatch: %d bytes", len(echo))}
	}
	// Plain TLS has no capabilities to shed: completion is a pass.
	return InteropCell{OutcomePass, ""}
}

// --- quicbase (QUIC-like comparator) ---

func runInteropQUIC(row InteropRow) InteropCell {
	env := newInteropEnv(row)
	defer env.n.Close()
	halfA, halfB := interopPayloadHalves(4)

	srvEP := quicbase.NewEndpoint(env.sh, 443, &tls13.Config{Certificate: serverCert()}, true)
	cliEP := quicbase.NewEndpoint(env.ch, 443, &tls13.Config{InsecureSkipVerify: true}, false)
	defer srvEP.Close()
	defer cliEP.Close()

	done := make(chan InteropCell, 1)
	go func() {
		done <- func() InteropCell {
			go func() {
				conn, err := srvEP.Accept()
				if err != nil {
					return
				}
				st, err := conn.AcceptStream()
				if err != nil {
					return
				}
				data, err := io.ReadAll(st)
				if err != nil {
					return
				}
				st.Write(data)
				st.Close()
			}()
			conn, err := cliEP.Dial(netip.AddrPortFrom(ServerV4, 443), 2*time.Second)
			if err != nil {
				return InteropCell{OutcomeFail, "dial: " + err.Error()}
			}
			st, err := conn.OpenStream()
			if err != nil {
				return InteropCell{OutcomeFail, "stream: " + err.Error()}
			}
			if _, err := st.Write(halfA); err != nil {
				return InteropCell{OutcomeFail, "write: " + err.Error()}
			}
			time.Sleep(env.n.ScaleDuration(interopPause))
			if _, err := st.Write(halfB); err != nil {
				return InteropCell{OutcomeFail, "write after pause: " + err.Error()}
			}
			st.Close()
			echo, err := io.ReadAll(st)
			if err != nil {
				return InteropCell{OutcomeFail, "read echo: " + err.Error()}
			}
			if !bytes.Equal(echo, append(append([]byte(nil), halfA...), halfB...)) {
				return InteropCell{OutcomeFail, fmt.Sprintf("echo mismatch: %d bytes", len(echo))}
			}
			return InteropCell{OutcomePass, ""}
		}()
	}()
	select {
	case cell := <-done:
		return cell
	case <-time.After(interopWallBudget):
		cliEP.Close()
		srvEP.Close()
		return InteropCell{OutcomeFail, "wall-clock timeout"}
	}
}
