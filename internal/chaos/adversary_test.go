package chaos

import "testing"

// TestAdversarialPeer runs the full hostile-peer gauntlet: spoofed SYN
// flood, slowloris stall, malformed-record spray from an authenticated
// peer, and a stream-open flood past the server's budget. Every bound
// must hold, every rejection must be a typed error, an honest client
// must still be served afterwards, and no goroutine may leak.
func TestAdversarialPeer(t *testing.T) {
	res, err := RunAdversarial(AdversarialScenario{Seed: 3})
	if err != nil {
		t.Fatalf("adversarial run failed: %v", err)
	}
	t.Logf("adversarial: synDrops=%d halfOpenPeak=%d sprayed=%d floodStreams=%d echo=%d",
		res.SYNDrops, res.HalfOpenPeak, res.SprayRecords, res.FloodStreams, res.EchoBytes)
	if res.SYNDrops == 0 {
		t.Fatal("SYN flood was never rate-limited")
	}
	if res.EchoBytes == 0 {
		t.Fatal("honest client transferred nothing")
	}
}
