package chaos

import (
	"fmt"
	"math/rand"
	"net/netip"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/core"
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/tcpnet"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

// Flock gauntlet: the C50K acceptance run for the sharded server
// runtime. Thousands of emulated clients arrive with Poisson
// interarrivals, transfer a payload, and hold their sessions to a
// concurrency peak; a churn cohort arrives and departs throughout;
// a migration cohort moves v4→v6 mid-life; a failover cohort rides out
// a v6 link flap on its standby path. The run asserts the scaling
// budgets the sharded runtime exists to meet:
//
//  1. Goroutines are O(1) per session with a small constant: at peak,
//     the process goroutine count stays under
//     floor + per_session × live_sessions (budgeted in
//     testdata/FLOCK_BUDGET.json; the exact per-session constant is
//     pinned separately by TestGoroutineBudgetExact).
//  2. Memory is bounded: heap-in-use per live session at peak stays
//     under the budget.
//  3. Throughput floors hold: sessions/sec (admission rate over the
//     ramp) and bytes/sec (payload drain rate), both in virtual time,
//     meet the checked-in minimums — a regression fails the run the
//     same way bench-check does.
//  4. The budgets are fed from the telemetry registry: runtime.enrolled
//     and listener.sessions must agree with the accounting gauges, and
//     the per-shard maximum must show the table actually spreading.
//  5. Full recovery: after drain every gauge returns to zero, no
//     goroutines leak, and no per-session metric outlives its session.
type FlockScenario struct {
	// Name labels the run in logs.
	Name string
	// Seed drives arrivals, payloads and jitter. Default 1.
	Seed int64
	// TimeScale compresses virtual time (default 0.5).
	TimeScale float64

	// Hold is the held cohort: clients that connect, transfer, and hold
	// their session open to the concurrency peak (default 936).
	Hold int
	// Churn clients arrive Poisson, transfer, live an exponential
	// lifetime, and depart (default Hold/5).
	Churn int
	// Migrators are held clients that JOIN a v6 path after their
	// transfer and close the v4 path they arrived on (default 32).
	Migrators int
	// Failovers are held clients with a v6 primary and a v4 standby; a
	// mid-run v6 flap must degrade the primary without killing the
	// session (default 32).
	Failovers int

	// PayloadBytes per client (default 4 KiB).
	PayloadBytes int
	// MeanArrival is the Poisson interarrival mean, virtual (default 1ms).
	MeanArrival time.Duration
	// HoldMean is the churn cohort's mean lifetime, virtual (default 80ms).
	HoldMean time.Duration

	// Shards / AcceptWorkers configure the listener (0 = core defaults).
	Shards        int
	AcceptWorkers int
	// MaxSessions is the server budget (default: peak demand + slack —
	// the flock tests scale, not admission; the overload gauntlet owns
	// rejection behavior).
	MaxSessions int

	// Budget is the pass/fail envelope (normally loaded from
	// testdata/FLOCK_BUDGET.json).
	Budget FlockBudget
	// Timeout bounds the whole run in wall-clock time (default 300s).
	Timeout time.Duration
	// TraceCapacity bounds the shared event ring (default 1<<16).
	TraceCapacity int
}

// FlockBudget is the checked-in pass/fail envelope (FLOCK_BUDGET.json).
// Regressions against it fail the run like bench-check.
type FlockBudget struct {
	// MinSessionsPerSec floors the admission rate over the ramp,
	// sessions per virtual second.
	MinSessionsPerSec float64 `json:"min_sessions_per_sec"`
	// MinBytesPerSec floors the payload drain rate, bytes per virtual
	// second measured over the whole run.
	MinBytesPerSec float64 `json:"min_bytes_per_sec"`
	// MaxHeapPerSessionBytes caps (heap_inuse_peak - heap_inuse_base) /
	// live_sessions at the concurrency peak.
	MaxHeapPerSessionBytes int64 `json:"max_heap_per_session_bytes"`
	// MaxGoroutinesPerSession + GoroutineFloor cap the process goroutine
	// count at peak: goroutines <= floor + per_session * live_sessions.
	// The steady-state cost per held session is 3 (client read loop,
	// server read loop, server app drain) — the budget adds headroom for
	// transients (handshakes in flight, churn drivers, probe fallbacks).
	MaxGoroutinesPerSession float64 `json:"max_goroutines_per_session"`
	GoroutineFloor          int     `json:"goroutine_floor"`
}

// FlockResult summarizes a successful run.
type FlockResult struct {
	Seed                       int64
	Admitted                   int
	ChurnDeparted, ChurnFailed int
	Migrated                   int
	FailoverSurvivors          int

	PeakSessions     int
	SessionsPerSec   float64 // admissions over the ramp, virtual time
	BytesPerSec      float64 // payload drain over the run, virtual time
	BytesDrained     int64
	GoroutinesAtPeak int
	HeapPerSession   int64
	VirtualElapsed   time.Duration

	Stats   core.AccountingStats
	Metrics map[string]any
}

func (sc FlockScenario) withDefaults() FlockScenario {
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.TimeScale <= 0 {
		sc.TimeScale = 0.5
	}
	if sc.Hold <= 0 {
		sc.Hold = 936
	}
	if sc.Churn <= 0 {
		sc.Churn = sc.Hold / 5
	}
	if sc.Migrators <= 0 {
		sc.Migrators = 32
	}
	if sc.Failovers <= 0 {
		sc.Failovers = 32
	}
	if sc.PayloadBytes <= 0 {
		sc.PayloadBytes = 4 << 10
	}
	if sc.MeanArrival <= 0 {
		sc.MeanArrival = time.Millisecond
	}
	if sc.HoldMean <= 0 {
		sc.HoldMean = 80 * time.Millisecond
	}
	if sc.MaxSessions <= 0 {
		sc.MaxSessions = sc.Hold + sc.Migrators + sc.Failovers + sc.Churn + 64
	}
	if sc.Timeout <= 0 {
		sc.Timeout = 300 * time.Second
	}
	if sc.TraceCapacity <= 0 {
		sc.TraceCapacity = 1 << 16
	}
	return sc
}

// heapInUse forces a GC and reports live heap bytes, so before/after
// comparisons measure retained state, not float.
func heapInUse() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapInuse)
}

// RunFlock executes the flock gauntlet.
func RunFlock(sc FlockScenario) (*FlockResult, error) {
	sc = sc.withDefaults()
	baseGoroutines := runtime.NumGoroutine()
	baseHeap := heapInUse()
	wallDeadline := time.Now().Add(sc.Timeout)

	n := netsim.New(netsim.WithSeed(sc.Seed), netsim.WithTimeScale(sc.TimeScale))
	ch, sh := n.Host("client"), n.Host("server")
	// Fat, short links: the flock tests runtime scaling, not congestion.
	l4 := n.AddLink(ch, sh, ClientV4, ServerV4,
		netsim.LinkConfig{Name: "v4", Delay: 200 * time.Microsecond, BandwidthBps: 1e9})
	l6 := n.AddLink(ch, sh, ClientV6, ServerV6,
		netsim.LinkConfig{Name: "v6", Delay: 300 * time.Microsecond, BandwidthBps: 1e9})
	_ = l4

	ring := telemetry.NewRingSink(sc.TraceCapacity)
	reg := telemetry.NewRegistry()
	mkTracer := func(ep string) *telemetry.Tracer {
		return telemetry.NewTracer(
			telemetry.WithEndpoint(ep),
			telemetry.WithClock(n.VirtualNow),
			telemetry.WithSink(ring),
		)
	}
	srvTracer := mkTracer("server")
	cs := tcpnet.NewStack(ch, tcpnet.Config{})
	ss := tcpnet.NewStack(sh, tcpnet.Config{Metrics: reg})

	res := &FlockResult{Seed: sc.Seed}
	acct := core.NewAccounting(core.ServerBudgets{
		MaxSessions: sc.MaxSessions,
		IdleAfter:   10 * time.Minute, // held sessions are idle by design; never shed them
	})
	fail := func(format string, args ...any) (*FlockResult, error) {
		args = append(args, acct.Stats(), sc.Seed)
		return nil, fmt.Errorf(format+" — stats=%+v (replay: seed=%d)", args...)
	}

	tl, err := ss.Listen(netip.Addr{}, 443)
	if err != nil {
		return fail("listen: %v", err)
	}
	retry := core.RetryPolicy{
		Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond,
		MaxAttempts: 3, DialTimeout: 500 * time.Millisecond,
	}
	srvCfg := &core.Config{
		TLS:        &tls13.Config{Certificate: serverCert()},
		Clock:      n,
		Accounting: acct,
		Retry:      retry,
		RetrySeed:  sc.Seed,
		Tracer:     srvTracer,
		Metrics:    reg,
		// The shared-runtime timers must be live at scale — their
		// sweeps, not their firing, are what the gauntlet exercises. The
		// probe interval is deliberately long: N sessions probing every
		// interval is N/interval writes per second of pure background
		// load, and the flock measures session scaling, not probe storms.
		HealthProbeInterval: 60 * time.Second,
		HealthFailAfter:     3,
		StallTimeout:        120 * time.Second,
		// Keep full-fidelity tracing sampled and black boxes small:
		// observability must not dominate the per-session footprint.
		TraceSampleRate:    128,
		FlightRecorderSize: 64,
		Shards:             sc.Shards,
		AcceptWorkers:      sc.AcceptWorkers,
	}
	lst := core.NewListener(tl, srvCfg)

	// Server app: one drain goroutine per session (the app's own cost —
	// the protocol itself adds exactly one read loop per path). Clients
	// open streams sequentially, so draining them in-line suffices. The
	// payload's first byte tags its cohort: held-cohort bytes feed the
	// exact delivery watermark; churn bytes are best-effort (a churn
	// client closing early legitimately abandons undelivered data).
	var heldDrained, churnDrained atomic.Int64
	var servedMu sync.Mutex
	var served []*core.Session
	go func() {
		for {
			s, err := lst.Accept()
			if err != nil {
				return
			}
			servedMu.Lock()
			served = append(served, s)
			servedMu.Unlock()
			go func(s *core.Session) {
				buf := make([]byte, 16<<10)
				for {
					st, err := s.AcceptStream()
					if err != nil {
						return
					}
					tag, first := byte(0), true
					for {
						n, err := st.Read(buf)
						if n > 0 {
							if first {
								tag, first = buf[0], false
							}
							if tag == 'C' {
								churnDrained.Add(int64(n))
							} else {
								heldDrained.Add(int64(n))
							}
						}
						if err != nil {
							break
						}
					}
				}
			}(s)
		}
	}()

	var cleanupOnce sync.Once
	cleanup := func() {
		cleanupOnce.Do(func() {
			lst.Close()
			servedMu.Lock()
			ss2 := append([]*core.Session(nil), served...)
			servedMu.Unlock()
			for _, s := range ss2 {
				s.Close()
			}
			cs.Close()
			ss.Close()
			n.Close()
		})
	}
	defer cleanup()

	newClient := func(seed int64, health bool, tracer *telemetry.Tracer) *core.Session {
		cfg := &core.Config{
			TLS:       &tls13.Config{InsecureSkipVerify: true},
			Clock:     n,
			Retry:     retry,
			RetrySeed: seed,
			Tracer:    tracer,
			// Black boxes off on the client side: 10k client-side ring
			// buffers are harness weight, not system under test.
			FlightRecorderSize: -1,
		}
		if health {
			// Only the failover cohort needs client-side liveness probing
			// (it is what detects the flapped primary); everyone else
			// stays at the 1-goroutine-per-session floor.
			cfg.HealthProbeInterval = 250 * time.Millisecond
			cfg.HealthFailAfter = 3
		}
		return core.NewClient(cfg, tcpnet.Dialer{Stack: cs})
	}
	dialVia := func(c *core.Session, laddr netip.Addr, raddr netip.AddrPort) error {
		if _, err := c.Connect(laddr, raddr, 10*time.Second); err != nil {
			return err
		}
		return c.Handshake()
	}
	// dialRetry absorbs transient pre-TLS rejections (accept-queue
	// overflow during an arrival burst): the client's contract is that a
	// shed connection may simply retry a moment later. Backoff is
	// wall-clock — overload is a wall-clock condition (handshake CPU),
	// not a virtual-time one — and long enough to outlast a burst.
	dialRetry := func(mk func() *core.Session, laddr netip.Addr, raddr netip.AddrPort) (*core.Session, error) {
		var lastErr error
		for attempt := 0; attempt < 7 && time.Now().Before(wallDeadline); attempt++ {
			c := mk()
			err := dialVia(c, laddr, raddr)
			if err == nil {
				return c, nil
			}
			c.Close()
			lastErr = err
			time.Sleep(time.Duration(20<<attempt) * time.Millisecond)
		}
		return nil, lastErr
	}

	heldPayload := make([]byte, sc.PayloadBytes)
	rand.New(rand.NewSource(sc.Seed + 7)).Read(heldPayload)
	heldPayload[0] = 'H'
	churnPayload := append([]byte(nil), heldPayload...)
	churnPayload[0] = 'C'
	var heldWritten atomic.Int64
	transfer := func(c *core.Session, payload []byte, written *atomic.Int64) error {
		st, err := c.NewStream()
		if err != nil {
			return err
		}
		if _, err := st.Write(payload); err != nil {
			return err
		}
		if err := st.Close(); err != nil {
			return err
		}
		if written != nil {
			written.Add(int64(len(payload)))
		}
		return nil
	}

	// ---- Ramp: Poisson arrivals into the held + churn cohorts. ----
	heldTotal := sc.Hold + sc.Migrators + sc.Failovers
	var heldMu sync.Mutex
	held := make([]*core.Session, 0, heldTotal)
	addHeld := func(c *core.Session) {
		heldMu.Lock()
		held = append(held, c)
		heldMu.Unlock()
	}
	var failoverMu sync.Mutex
	var failoverSessions []*core.Session
	var rampErrs atomic.Int64
	var firstErr atomic.Pointer[error]
	noteErr := func(err error) {
		rampErrs.Add(1)
		firstErr.CompareAndSwap(nil, &err)
	}
	var migrated atomic.Int64
	var churnOK, churnFail atomic.Int64
	var churnWG, heldWG sync.WaitGroup

	foTracer := mkTracer("client-failover")
	start := time.Now()
	arrivals := rand.New(rand.NewSource(sc.Seed + 999))
	churnEvery := heldTotal / max(sc.Churn, 1)
	churnLaunched := 0
	for i := 0; i < heldTotal; i++ {
		d := time.Duration(arrivals.ExpFloat64() * float64(sc.MeanArrival))
		time.Sleep(n.ScaleDuration(d))
		kind := "hold"
		switch {
		case i < sc.Failovers:
			kind = "failover" // early arrivals: standby must exist before the flap
		case i < sc.Failovers+sc.Migrators:
			kind = "migrate"
		}
		heldWG.Add(1)
		go func(i int, kind string) {
			defer heldWG.Done()
			seed := sc.Seed + int64(i) + 1000
			switch kind {
			case "failover":
				// v6 primary + v4 standby: the flap kills the primary out
				// from under live sessions; the standby is the rescue.
				c, err := dialRetry(func() *core.Session { return newClient(seed, true, foTracer) },
					ClientV6, netip.AddrPortFrom(ServerV6, 443))
				if err != nil {
					noteErr(fmt.Errorf("failover client %d: %w", i, err))
					return
				}
				if _, err := c.Connect(netip.Addr{}, netip.AddrPortFrom(ServerV4, 443), 10*time.Second); err != nil {
					noteErr(fmt.Errorf("failover client %d standby join: %w", i, err))
					c.Close()
					return
				}
				if err := transfer(c, heldPayload, &heldWritten); err != nil {
					noteErr(fmt.Errorf("failover client %d transfer: %w", i, err))
					c.Close()
					return
				}
				failoverMu.Lock()
				failoverSessions = append(failoverSessions, c)
				failoverMu.Unlock()
				addHeld(c)
			case "migrate":
				c, err := dialRetry(func() *core.Session { return newClient(seed, false, nil) },
					netip.Addr{}, netip.AddrPortFrom(ServerV4, 443))
				if err != nil {
					noteErr(fmt.Errorf("migrator %d: %w", i, err))
					return
				}
				if err := transfer(c, heldPayload, &heldWritten); err != nil {
					noteErr(fmt.Errorf("migrator %d transfer: %w", i, err))
					c.Close()
					return
				}
				// The migration: JOIN on v6, abandon the v4 path the
				// session arrived on (its id was minted in the handshake).
				v4Path := c.PathIDs()[0]
				if _, err := c.Connect(ClientV6, netip.AddrPortFrom(ServerV6, 443), 10*time.Second); err != nil {
					noteErr(fmt.Errorf("migrator %d join v6: %w", i, err))
					c.Close()
					return
				}
				if err := c.ClosePath(v4Path); err != nil {
					noteErr(fmt.Errorf("migrator %d close v4: %w", i, err))
					c.Close()
					return
				}
				migrated.Add(1)
				addHeld(c)
			default:
				c, err := dialRetry(func() *core.Session { return newClient(seed, false, nil) },
					netip.Addr{}, netip.AddrPortFrom(ServerV4, 443))
				if err != nil {
					noteErr(fmt.Errorf("held client %d: %w", i, err))
					return
				}
				if err := transfer(c, heldPayload, &heldWritten); err != nil {
					noteErr(fmt.Errorf("held client %d transfer: %w", i, err))
					c.Close()
					return
				}
				addHeld(c)
			}
		}(i, kind)

		// Interleave churn arrivals through the ramp.
		if churnLaunched < sc.Churn && churnEvery > 0 && i%churnEvery == 0 {
			churnLaunched++
			churnWG.Add(1)
			go func(i int) {
				defer churnWG.Done()
				c, err := dialRetry(func() *core.Session { return newClient(sc.Seed+int64(i)+500_000, false, nil) },
					netip.Addr{}, netip.AddrPortFrom(ServerV4, 443))
				if err != nil {
					churnFail.Add(1)
					return
				}
				defer c.Close()
				if err := transfer(c, churnPayload, nil); err != nil {
					churnFail.Add(1)
					return
				}
				life := time.Duration(rand.New(rand.NewSource(sc.Seed+int64(i))).ExpFloat64()*
					float64(sc.HoldMean)) + 20*time.Millisecond
				time.Sleep(n.ScaleDuration(life))
				churnOK.Add(1)
			}(i)
		}
	}
	heldWG.Wait()
	rampElapsed := n.VirtualSince(start)
	if rampErrs.Load() > 0 {
		return fail("%d flock clients failed to establish (first: %v)", rampErrs.Load(), *firstErr.Load())
	}

	// ---- Peak checkpoint: every budget is checked here. ----
	heldMu.Lock()
	live := len(held)
	heldMu.Unlock()
	if live != heldTotal {
		return fail("held cohort: %d of %d established", live, heldTotal)
	}
	res.PeakSessions = live
	res.Admitted = heldTotal + sc.Churn
	res.SessionsPerSec = float64(heldTotal) / rampElapsed.Seconds()

	// Budgets are fed from the telemetry registry, not private state:
	// the same vars an operator would scrape. A client finishes TLS one
	// flight before the server registers the session, so give the last
	// few server-side enrolls a moment to land before asserting.
	var snap map[string]any
	regGauge := func(name string) int64 {
		v, ok := snap[name].(int64)
		if !ok {
			return -1
		}
		return v
	}
	settleUntil := time.Now().Add(15 * time.Second)
	var enrolled, tableSessions int64
	for {
		snap = reg.Snapshot()
		enrolled = regGauge("runtime.enrolled")
		tableSessions = regGauge("listener.sessions")
		if (enrolled >= int64(live) && tableSessions >= int64(live)) || time.Now().After(settleUntil) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if enrolled < int64(live) {
		deadHeld, firstDead := 0, error(nil)
		for _, c := range held {
			if c.Closed() {
				deadHeld++
				if firstDead == nil {
					firstDead = c.Err()
				}
			}
		}
		return fail("runtime.enrolled = %d with %d held sessions live (%d held closed client-side, first err: %v)",
			enrolled, live, deadHeld, firstDead)
	}
	if tableSessions < int64(live) {
		return fail("listener.sessions = %d with %d held sessions live", tableSessions, live)
	}
	// The shard table must actually spread: with uniform random conn
	// ids, the fullest shard at these densities stays within a few
	// multiples of the mean; a broken mixer collapses into one shard.
	shards := sc.Shards
	if shards <= 0 {
		shards = 64
	}
	meanPerShard := float64(tableSessions) / float64(shards)
	if maxShard := regGauge("listener.shard_max_sessions"); float64(maxShard) > 4*meanPerShard+8 {
		return fail("shard imbalance: fullest shard holds %d sessions, mean %.1f", maxShard, meanPerShard)
	}

	res.GoroutinesAtPeak = runtime.NumGoroutine()
	gBudget := sc.Budget.GoroutineFloor + int(sc.Budget.MaxGoroutinesPerSession*float64(live))
	if sc.Budget.MaxGoroutinesPerSession > 0 && res.GoroutinesAtPeak > gBudget {
		return fail("goroutines at peak: %d > budget %d (floor %d + %.1f/session × %d)",
			res.GoroutinesAtPeak, gBudget, sc.Budget.GoroutineFloor,
			sc.Budget.MaxGoroutinesPerSession, live)
	}
	peakHeap := heapInUse()
	res.HeapPerSession = (peakHeap - baseHeap) / int64(live)
	if maxH := sc.Budget.MaxHeapPerSessionBytes; maxH > 0 && res.HeapPerSession > maxH {
		return fail("heap per session at peak: %d bytes > budget %d", res.HeapPerSession, maxH)
	}
	if minS := sc.Budget.MinSessionsPerSec; minS > 0 && res.SessionsPerSec < minS {
		return fail("sessions/sec regression: %.1f < budget floor %.1f (ramp %v virtual for %d sessions)",
			res.SessionsPerSec, minS, rampElapsed, heldTotal)
	}

	// ---- Flap: kill the v6 link under the failover cohort. ----
	l6.SetDown(true)
	// Long enough for client-side probes to hit HealthFailAfter.
	time.Sleep(n.ScaleDuration(1500 * time.Millisecond))
	l6.SetDown(false)
	failoverMu.Lock()
	fos := append([]*core.Session(nil), failoverSessions...)
	failoverMu.Unlock()
	for i, c := range fos {
		if c.Closed() {
			return fail("failover client %d died in the v6 flap: %v", i, c.Err())
		}
		res.FailoverSurvivors++
	}
	degraded := 0
	for _, ev := range ring.Events() {
		if ev.Kind == telemetry.EvPathDegraded && ev.EP == "client-failover" {
			degraded++
		}
	}
	if degraded == 0 {
		return fail("v6 flap degraded no failover-cohort path (cohort %d)", len(fos))
	}

	// ---- Drain watermark: every held-cohort byte reaches the server,
	// migrations and failovers included (their unacked data replays onto
	// the surviving path). Churn bytes are excluded: a churn client that
	// closes early legitimately abandons whatever was still in flight.
	for heldDrained.Load() < heldWritten.Load() {
		if time.Now().After(wallDeadline) {
			return fail("server drained %d of %d held-cohort payload bytes",
				heldDrained.Load(), heldWritten.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	churnWG.Wait()
	res.ChurnDeparted = int(churnOK.Load())
	res.ChurnFailed = int(churnFail.Load())
	res.Migrated = int(migrated.Load())
	res.BytesDrained = heldDrained.Load() + churnDrained.Load()
	res.VirtualElapsed = n.VirtualSince(start)
	res.BytesPerSec = float64(res.BytesDrained) / res.VirtualElapsed.Seconds()
	if minB := sc.Budget.MinBytesPerSec; minB > 0 && res.BytesPerSec < minB {
		return fail("bytes/sec regression: %.0f < budget floor %.0f (%d bytes over %v virtual)",
			res.BytesPerSec, minB, res.BytesDrained, res.VirtualElapsed)
	}
	if res.Migrated != sc.Migrators {
		return fail("migrated %d of %d", res.Migrated, sc.Migrators)
	}

	// The ledger invariant holds at scale, batching and all.
	st := acct.Stats()
	if st.ConnsSeen != st.HandshakesStarted+st.RejectedPreTLS {
		return fail("accounting invariant broken: conns_seen=%d != handshakes_started=%d + rejected_pre_tls=%d",
			st.ConnsSeen, st.HandshakesStarted, st.RejectedPreTLS)
	}

	// ---- Drain: close the flock, then assert full recovery. The close
	// fans out (a sequential loop over 10k sessions would dominate the
	// drain clock), and the recovery deadline scales with flock size:
	// teardown is real work — path closes, metric unregisters, runtime
	// unenrolls — and on a small machine 10k of everything takes a while.
	heldMu.Lock()
	hs := append([]*core.Session(nil), held...)
	heldMu.Unlock()
	closeSem := make(chan struct{}, 256)
	var closeWG sync.WaitGroup
	for _, c := range hs {
		closeWG.Add(1)
		closeSem <- struct{}{}
		go func(c *core.Session) {
			defer closeWG.Done()
			c.Close()
			<-closeSem
		}(c)
	}
	closeWG.Wait()
	cleanup()

	drainTimeout := 60*time.Second + time.Duration(len(hs))*15*time.Millisecond
	if err := waitGoroutines(baseGoroutines, drainTimeout); err != nil {
		return fail("goroutine leak after drain: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st = acct.Stats()
		if st.Sessions == 0 && st.Paths == 0 && st.Streams == 0 && st.Handshakes == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fail("server gauges never drained: sessions=%d paths=%d streams=%d handshakes=%d",
				st.Sessions, st.Paths, st.Streams, st.Handshakes)
		}
		time.Sleep(10 * time.Millisecond)
	}
	snap = reg.Snapshot()
	if v, ok := snap["runtime.enrolled"].(int64); ok && v != 0 {
		return fail("runtime.enrolled = %d after drain", v)
	}
	if v, ok := snap["listener.sessions"].(int64); ok && v != 0 {
		return fail("listener.sessions = %d after drain", v)
	}
	for _, name := range reg.Names() {
		if strings.HasPrefix(name, "session.") {
			return fail("per-session metric %q leaked past teardown", name)
		}
	}

	res.Stats = st
	res.Metrics = snap
	return res, nil
}
