package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
	"github.com/pluginized-protocols/gotcpls/internal/core"
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/tcpnet"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

// Overload/churn gauntlet: hundreds of emulated clients arrive and
// depart (Poisson), a demand spike pushes past the server's configured
// session budget, and the run asserts the overload-resilience
// invariants end to end:
//
//  1. Admission is enforced and cheap: the session high-water mark
//     never exceeds the budget, and every rejected connection is closed
//     pre-TLS (conns_seen == handshakes_started + rejected_pre_tls, so
//     overload cannot be amplified into key-schedule work).
//  2. Shedding is prioritized: only idle and degraded sessions are
//     evicted — never the mid-transfer "elephant" sessions, which must
//     complete byte-exact despite the storm.
//  3. The process stays within its goroutine and pooled-buffer budgets
//     at peak.
//  4. The server recovers: admission reopens at the low-water mark, a
//     fresh client is admitted after the spike, and once the run drains
//     every server gauge returns to zero with no leaked goroutines.

// OverloadScenario describes one churn/overload run. Zero values take
// defaults sized so the default run finishes in a few wall seconds.
type OverloadScenario struct {
	// Name labels the scenario in logs.
	Name string
	// Seed drives arrivals, payloads and jitter. Default 1.
	Seed int64
	// TimeScale compresses virtual time (default 0.5).
	TimeScale float64

	// MaxSessions is the server session budget (default 16).
	MaxSessions int
	// LowWaterFrac positions the admission low-water mark (default 0.5).
	LowWaterFrac float64
	// IdleAfter is the idle-shedding threshold, virtual time (default
	// 150ms — sessions idle longer than this are first-wave victims).
	IdleAfter time.Duration
	// MaxBufferedBytes is the pooled-buffer budget (default 64 MiB).
	MaxBufferedBytes int64
	// StallTimeout arms the server's per-session stall watchdogs
	// (default 2s virtual).
	StallTimeout time.Duration

	// Elephants is how many long-lived bulk transfers run through the
	// whole gauntlet and must complete byte-exact (default 2).
	Elephants int
	// ElephantChunk / ElephantInterval shape the elephant write cadence
	// (default 4 KiB every 5ms virtual — always mid-transfer, never idle).
	ElephantChunk    int
	ElephantInterval time.Duration
	// Lingerers is how many sessions transfer once and then sit idle —
	// the first-wave shedding victims (default 6).
	Lingerers int
	// ChurnClients is how many short-lived clients arrive with Poisson
	// interarrivals of MeanInterarrival (virtual), transfer ChurnBytes,
	// and leave (defaults 40, 8ms, 4 KiB).
	ChurnClients     int
	MeanInterarrival time.Duration
	ChurnBytes       int
	// SpikeClients is the concurrent demand spike (default 2×MaxSessions).
	SpikeClients int

	// GoroutineBudget bounds peak goroutines above the pre-run baseline
	// (default 2500 — generous: the emulator and every live session cost
	// goroutines; the point is a ceiling, not a tight fit).
	GoroutineBudget int
	// BufferedSlack is how far the final pooled-buffer gauge may sit
	// above the pre-run value (default 256 KiB).
	BufferedSlack int64
	// Timeout bounds the whole run in wall-clock time (default 120s).
	Timeout time.Duration
	// TraceCapacity bounds the shared event ring (default 1<<17).
	TraceCapacity int
}

func (sc OverloadScenario) withDefaults() OverloadScenario {
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.TimeScale <= 0 {
		sc.TimeScale = 0.5
	}
	if sc.MaxSessions <= 0 {
		sc.MaxSessions = 16
	}
	if sc.LowWaterFrac <= 0 {
		sc.LowWaterFrac = 0.5
	}
	if sc.IdleAfter <= 0 {
		sc.IdleAfter = 150 * time.Millisecond
	}
	if sc.MaxBufferedBytes == 0 {
		sc.MaxBufferedBytes = 64 << 20
	}
	if sc.StallTimeout <= 0 {
		sc.StallTimeout = 2 * time.Second
	}
	if sc.Elephants <= 0 {
		sc.Elephants = 2
	}
	if sc.ElephantChunk <= 0 {
		sc.ElephantChunk = 4 << 10
	}
	if sc.ElephantInterval <= 0 {
		sc.ElephantInterval = 5 * time.Millisecond
	}
	if sc.Lingerers <= 0 {
		sc.Lingerers = 6
	}
	if sc.ChurnClients <= 0 {
		sc.ChurnClients = 40
	}
	if sc.MeanInterarrival <= 0 {
		sc.MeanInterarrival = 8 * time.Millisecond
	}
	if sc.ChurnBytes <= 0 {
		sc.ChurnBytes = 4 << 10
	}
	if sc.SpikeClients <= 0 {
		sc.SpikeClients = 2 * sc.MaxSessions
	}
	if sc.GoroutineBudget <= 0 {
		sc.GoroutineBudget = 2500
	}
	if sc.BufferedSlack <= 0 {
		sc.BufferedSlack = 256 << 10
	}
	if sc.Timeout <= 0 {
		sc.Timeout = 120 * time.Second
	}
	if sc.TraceCapacity <= 0 {
		sc.TraceCapacity = 1 << 17
	}
	return sc
}

// OverloadResult summarizes a successful gauntlet.
type OverloadResult struct {
	Seed  int64
	Stats core.AccountingStats
	// Churn/spike admission outcomes as the clients saw them. SpikeHeld
	// counts wave A clients whose handshake completed and who then hold
	// their session through the storm (the server may still have refused
	// the slot post-handshake and torn the session down — clients only
	// learn by the conn dying); SpikeRejected is wave B, refused at the
	// closed admission gate before any TLS work.
	ChurnAdmitted, ChurnFailed int
	SpikeHeld, SpikeFailed     int
	SpikeRejected              int
	// ShedClasses lists the session:shed classes in event order.
	ShedClasses []string
	// ElephantBytes is the total bulk payload verified byte-exact.
	ElephantBytes int64
	// PeakGoroutines / PeakBufferedBytes are the sampled process peaks.
	PeakGoroutines    int
	PeakBufferedBytes int64
	VirtualElapsed    time.Duration
	Trace             []telemetry.Event
	Metrics           map[string]any
	// FlightDumps are the flight-recorder artifacts published by
	// anomalously ended server sessions (sheds, stalls) during the run.
	FlightDumps []core.SessionDump
}

// digest is one fully-drained server-side stream: length and FNV-64a.
type digest struct {
	n   int64
	sum uint64
}

func digestKey(connID, streamID uint32) uint64 {
	return uint64(connID)<<32 | uint64(streamID)
}

// RunOverload executes the churn/overload gauntlet.
func RunOverload(sc OverloadScenario) (*OverloadResult, error) {
	sc = sc.withDefaults()
	baseGoroutines := runtime.NumGoroutine()
	baseBuffered := bufpool.InUseBytes()
	wallDeadline := time.Now().Add(sc.Timeout)

	n := netsim.New(netsim.WithSeed(sc.Seed), netsim.WithTimeScale(sc.TimeScale))
	ch, sh := n.Host("client"), n.Host("server")
	link := n.AddLink(ch, sh, ClientV4, ServerV4,
		netsim.LinkConfig{Name: "v4", Delay: time.Millisecond, BandwidthBps: 200e6})

	ring := telemetry.NewRingSink(sc.TraceCapacity)
	reg := telemetry.NewRegistry()
	mkTracer := func(ep string) *telemetry.Tracer {
		return telemetry.NewTracer(
			telemetry.WithEndpoint(ep),
			telemetry.WithClock(n.VirtualNow),
			telemetry.WithSink(ring),
		)
	}
	srvTracer := mkTracer("server")
	n.SetTracer(mkTracer("net"))
	link.RegisterMetrics(reg)
	cs := tcpnet.NewStack(ch, tcpnet.Config{})
	ss := tcpnet.NewStack(sh, tcpnet.Config{Tracer: srvTracer, Metrics: reg})

	res := &OverloadResult{Seed: sc.Seed}
	acct := core.NewAccounting(core.ServerBudgets{
		MaxSessions:      sc.MaxSessions,
		LowWaterFrac:     sc.LowWaterFrac,
		IdleAfter:        sc.IdleAfter,
		MaxBufferedBytes: sc.MaxBufferedBytes,
	})
	fail := func(format string, args ...any) (*OverloadResult, error) {
		args = append(args, acct.Stats(), sc.Seed)
		return nil, fmt.Errorf(format+" — stats=%+v (replay: seed=%d)", args...)
	}

	tl, err := ss.Listen(netip.Addr{}, 443)
	if err != nil {
		return fail("listen: %v", err)
	}
	retry := core.RetryPolicy{
		Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond,
		MaxAttempts: 2, DialTimeout: 300 * time.Millisecond,
	}
	// Every anomalous session end (shed, stall, overload abort) dumps
	// its flight recorder here; the gauntlet asserts the black boxes
	// actually fired and their contents parse.
	var dumpMu sync.Mutex
	var flightDumps []core.SessionDump
	srvCfg := &core.Config{
		TLS:          &tls13.Config{Certificate: serverCert()},
		Clock:        n,
		Accounting:   acct,
		StallTimeout: sc.StallTimeout,
		Retry:        retry,
		RetrySeed:    sc.Seed,
		Tracer:       srvTracer,
		Metrics:      reg,
		Callbacks: core.Callbacks{
			FlightDump: func(d core.SessionDump) {
				dumpMu.Lock()
				flightDumps = append(flightDumps, d)
				dumpMu.Unlock()
			},
		},
	}
	lst := core.NewListener(tl, srvCfg)

	// Server app: drain every stream of every accepted session, folding
	// each into an FNV digest keyed by (conn id, stream id) so elephant
	// transfers can be verified byte-exact from the server's view.
	var digests sync.Map // uint64 -> digest
	var servedMu sync.Mutex
	var served []*core.Session
	go func() {
		for {
			s, err := lst.Accept()
			if err != nil {
				return
			}
			servedMu.Lock()
			served = append(served, s)
			servedMu.Unlock()
			go func(s *core.Session) {
				for {
					st, err := s.AcceptStream()
					if err != nil {
						return
					}
					go func(st *core.Stream) {
						h := fnv.New64a()
						var total int64
						buf := make([]byte, 32<<10)
						for {
							n, err := st.Read(buf)
							if n > 0 {
								h.Write(buf[:n])
								total += int64(n)
							}
							if err != nil {
								digests.Store(digestKey(s.ConnID(), st.ID()), digest{n: total, sum: h.Sum64()})
								return
							}
						}
					}(st)
				}
			}(s)
		}
	}()

	// Process-peak sampler (goroutines, pooled-buffer bytes).
	var peakG atomic.Int64
	var peakB atomic.Int64
	samplerStop := make(chan struct{})
	var samplerDone sync.WaitGroup
	samplerDone.Add(1)
	go func() {
		defer samplerDone.Done()
		for {
			if g := int64(runtime.NumGoroutine()); g > peakG.Load() {
				peakG.Store(g)
			}
			if b := bufpool.InUseBytes(); b > peakB.Load() {
				peakB.Store(b)
			}
			select {
			case <-samplerStop:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()

	var cleanupOnce sync.Once
	cleanup := func() {
		cleanupOnce.Do(func() {
			lst.Close()
			servedMu.Lock()
			ss2 := append([]*core.Session(nil), served...)
			servedMu.Unlock()
			for _, s := range ss2 {
				s.Close()
			}
			cs.Close()
			ss.Close()
			n.Close()
			close(samplerStop)
			samplerDone.Wait()
		})
	}
	defer cleanup()

	newClient := func(seed int64, tracer *telemetry.Tracer) *core.Session {
		return core.NewClient(&core.Config{
			TLS:       &tls13.Config{InsecureSkipVerify: true},
			Clock:     n,
			Retry:     retry,
			RetrySeed: seed,
			Tracer:    tracer,
		}, tcpnet.Dialer{Stack: cs})
	}
	dial := func(c *core.Session) error {
		if _, err := c.Connect(netip.Addr{}, netip.AddrPortFrom(ServerV4, 443), 5*time.Second); err != nil {
			return err
		}
		return c.Handshake()
	}
	start := time.Now()

	// Phase 1 — elephants: long bulk transfers that must ride out the
	// whole gauntlet. Steady writes keep them classified mid-transfer.
	type elephant struct {
		sess *core.Session
		st   *core.Stream
		hash uint64 // final FNV-64a once done
		n    int64
		err  error
		done chan struct{}
	}
	elephantStop := make(chan struct{})
	elephants := make([]*elephant, sc.Elephants)
	for i := range elephants {
		el := &elephant{sess: newClient(sc.Seed+int64(i)+100, mkTracer("client")), done: make(chan struct{})}
		if err := dial(el.sess); err != nil {
			return fail("elephant %d handshake: %v", i, err)
		}
		st, err := el.sess.NewStream()
		if err != nil {
			return fail("elephant %d stream: %v", i, err)
		}
		el.st = st
		elephants[i] = el
		go func(el *elephant, seed int64) {
			defer close(el.done)
			h := fnv.New64a()
			rng := rand.New(rand.NewSource(seed))
			chunk := make([]byte, sc.ElephantChunk)
			for {
				select {
				case <-elephantStop:
					el.hash = h.Sum64()
					el.err = el.st.Close()
					return
				default:
				}
				rng.Read(chunk)
				if _, err := el.st.Write(chunk); err != nil {
					el.err = err
					return
				}
				h.Write(chunk)
				el.n += int64(sc.ElephantChunk)
				time.Sleep(n.ScaleDuration(sc.ElephantInterval))
			}
		}(el, sc.Seed+int64(i)*7919)
	}

	// Phase 2 — lingerers: transfer once, then sit idle. These are the
	// sessions prioritized shedding exists to reclaim.
	lingerers := make([]*core.Session, 0, sc.Lingerers)
	for i := 0; i < sc.Lingerers; i++ {
		c := newClient(sc.Seed+int64(i)+200, nil)
		if err := dial(c); err != nil {
			return fail("lingerer %d handshake: %v", i, err)
		}
		st, err := c.NewStream()
		if err != nil {
			return fail("lingerer %d stream: %v", i, err)
		}
		if _, err := st.Write(make([]byte, 1<<10)); err != nil {
			return fail("lingerer %d write: %v", i, err)
		}
		st.Close()
		lingerers = append(lingerers, c)
	}
	// Let the lingerers cross the idle threshold (virtual time).
	time.Sleep(n.ScaleDuration(sc.IdleAfter)*3/2 + 20*time.Millisecond)

	// Phase 3 — churn: Poisson arrivals, short transfers, departures.
	// Departing clients orphan their server-side session state (servers
	// hold it for a failover rescue that never comes), so sustained churn
	// is itself admission pressure — exactly what shedding must absorb.
	var churnOK, churnFail atomic.Int64
	var churnWG sync.WaitGroup
	arrivals := rand.New(rand.NewSource(sc.Seed + 999))
	for i := 0; i < sc.ChurnClients; i++ {
		d := time.Duration(arrivals.ExpFloat64() * float64(sc.MeanInterarrival))
		time.Sleep(n.ScaleDuration(d))
		churnWG.Add(1)
		go func(i int) {
			defer churnWG.Done()
			c := newClient(sc.Seed+int64(i)+300, nil)
			defer c.Close()
			if err := dial(c); err != nil {
				churnFail.Add(1)
				return
			}
			st, err := c.NewStream()
			if err != nil {
				churnFail.Add(1)
				return
			}
			if _, err := st.Write(make([]byte, sc.ChurnBytes)); err != nil {
				churnFail.Add(1)
				return
			}
			st.Close()
			churnOK.Add(1)
			time.Sleep(n.ScaleDuration(5 * time.Millisecond)) // let the FIN drain
		}(i)
	}
	churnWG.Wait()
	res.ChurnAdmitted = int(churnOK.Load())
	res.ChurnFailed = int(churnFail.Load())

	// Phase 4 — spike, wave A: a concurrent burst that fills the budget
	// and HOLDS its sessions open. Departing sessions release their slot
	// immediately, so sustained overload needs sessions that stay; these
	// holders are what forces the gate closed.
	var holdMu sync.Mutex
	var holders []*core.Session
	var spikeOK, spikeFail atomic.Int64
	var waveAWG sync.WaitGroup
	for i := 0; i < sc.MaxSessions+sc.MaxSessions/2; i++ {
		waveAWG.Add(1)
		go func(i int) {
			defer waveAWG.Done()
			c := newClient(sc.Seed+int64(i)+10_000, nil)
			if err := dial(c); err != nil {
				c.Close()
				spikeFail.Add(1)
				return
			}
			holdMu.Lock()
			holders = append(holders, c)
			holdMu.Unlock()
			spikeOK.Add(1)
		}(i)
	}
	waveAWG.Wait()
	res.SpikeHeld = int(spikeOK.Load())
	res.SpikeFailed = int(spikeFail.Load())

	// Wave B: a second burst against a full server. The gate is closed
	// and every slot is held, so these must be rejected before any TLS
	// work — the cheap pre-TLS path under test.
	var waveBRejected atomic.Int64
	var waveBWG sync.WaitGroup
	for i := 0; i < sc.SpikeClients; i++ {
		waveBWG.Add(1)
		go func(i int) {
			defer waveBWG.Done()
			c := newClient(sc.Seed+int64(i)+20_000, nil)
			defer c.Close()
			if err := dial(c); err != nil {
				waveBRejected.Add(1)
			}
		}(i)
	}
	waveBWG.Wait()
	res.SpikeRejected = int(waveBRejected.Load())

	// Invariant 1 — admission enforced, rejection pre-TLS.
	st := acct.Stats()
	if st.SessionsHWM > int64(sc.MaxSessions) {
		return fail("session high-water mark %d exceeds budget %d", st.SessionsHWM, sc.MaxSessions)
	}
	if st.RejectedPreTLS == 0 {
		return fail("the spike was never rejected (churn=%d held=%d waveB-rejected=%d)",
			res.ChurnAdmitted, res.SpikeHeld, res.SpikeRejected)
	}
	if st.ConnsSeen != st.HandshakesStarted+st.RejectedPreTLS {
		return fail("handshake work leaked past the gate: conns_seen=%d != handshakes_started=%d + rejected_pre_tls=%d",
			st.ConnsSeen, st.HandshakesStarted, st.RejectedPreTLS)
	}
	if st.AdmissionCloses == 0 {
		return fail("admission gate never closed under a %dx spike", sc.SpikeClients/sc.MaxSessions)
	}

	// Invariant 4a — recovery: orphaned sessions age into idleness, the
	// rejection-triggered shed passes reclaim them, the gate reopens, and
	// a fresh client gets in. Retry until the wall deadline.
	var admitted bool
	for time.Now().Before(wallDeadline) {
		c := newClient(sc.Seed+50_000, nil)
		if err := dial(c); err == nil {
			admitted = true
			st, err := c.NewStream()
			if err == nil {
				st.Write(make([]byte, 512))
				st.Close()
			}
			time.Sleep(n.ScaleDuration(5 * time.Millisecond))
			c.Close()
			break
		}
		c.Close()
		time.Sleep(n.ScaleDuration(sc.IdleAfter / 4))
	}
	if !admitted {
		return fail("no client admitted after the spike — admission never recovered")
	}
	if st := acct.Stats(); !st.GateOpen {
		return fail("admission gate still closed after recovery")
	}

	// Invariant 2 — the elephants rode out the whole storm.
	for i, el := range elephants {
		if el.sess.Closed() {
			return fail("elephant %d was killed mid-transfer: %v", i, el.sess.Err())
		}
	}
	close(elephantStop)
	for i, el := range elephants {
		select {
		case <-el.done:
		case <-time.After(time.Until(wallDeadline)):
			return fail("elephant %d never finished", i)
		}
		if el.err != nil {
			return fail("elephant %d transfer error: %v", i, el.err)
		}
		key := digestKey(el.sess.ConnID(), el.st.ID())
		deadline := time.Now().Add(10 * time.Second)
		var d digest
		for {
			if v, ok := digests.Load(key); ok {
				d = v.(digest)
				if d.n >= el.n {
					break
				}
			}
			if time.Now().After(deadline) {
				return fail("elephant %d: server drained %d of %d bytes", i, d.n, el.n)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if d.n != el.n || d.sum != el.hash {
			return fail("elephant %d corrupted: server got %d bytes sum %x, client sent %d sum %x",
				i, d.n, d.sum, el.n, el.hash)
		}
		res.ElephantBytes += el.n
	}

	// Invariant 2b — shedding hit only idle/degraded sessions, never an
	// elephant. Asserted on the trace, which names every victim.
	elephantIDs := make(map[int64]bool, len(elephants))
	for _, el := range elephants {
		elephantIDs[int64(el.sess.ConnID())] = true
	}
	for _, ev := range ring.Events() {
		if ev.Kind != telemetry.EvSessionShed {
			continue
		}
		if ev.S != "idle" && ev.S != "degraded" {
			return fail("shed a %q session — only idle/degraded are eligible", ev.S)
		}
		if elephantIDs[ev.A] {
			return fail("shed elephant session conn_id=%d", ev.A)
		}
		res.ShedClasses = append(res.ShedClasses, ev.S)
	}
	if len(res.ShedClasses) == 0 {
		return fail("nothing was shed — recovery should have required evictions")
	}

	// Drain: close every client, then the server side, then the world.
	for _, el := range elephants {
		el.sess.Close()
	}
	for _, c := range lingerers {
		c.Close()
	}
	holdMu.Lock()
	hs := append([]*core.Session(nil), holders...)
	holdMu.Unlock()
	for _, c := range hs {
		c.Close()
	}
	res.VirtualElapsed = n.VirtualSince(start)
	cleanup()

	// Invariant 3 — peaks within budget.
	res.PeakGoroutines = int(peakG.Load())
	res.PeakBufferedBytes = peakB.Load()
	if res.PeakGoroutines > baseGoroutines+sc.GoroutineBudget {
		return fail("goroutine peak %d exceeds baseline %d + budget %d",
			res.PeakGoroutines, baseGoroutines, sc.GoroutineBudget)
	}
	if res.PeakBufferedBytes > sc.MaxBufferedBytes {
		return fail("pooled-buffer peak %d exceeds budget %d", res.PeakBufferedBytes, sc.MaxBufferedBytes)
	}

	// Invariant 4b — full recovery: gauges at zero, no leaked goroutines,
	// pooled memory back at its pre-run level.
	if err := waitGoroutines(baseGoroutines, 10*time.Second); err != nil {
		return fail("goroutine leak after drain: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st = acct.Stats()
		if st.Sessions == 0 && st.Paths == 0 && st.Streams == 0 && st.Handshakes == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fail("server gauges never drained: sessions=%d paths=%d streams=%d handshakes=%d",
				st.Sessions, st.Paths, st.Streams, st.Handshakes)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !st.GateOpen {
		return fail("admission gate closed at rest")
	}
	if b := bufpool.InUseBytes(); b > baseBuffered+sc.BufferedSlack {
		return fail("pooled buffers did not return to baseline: %d in use, started at %d (slack %d)",
			b, baseBuffered, sc.BufferedSlack)
	}

	// Invariant 5 — bounded metric cardinality: every session.<n>.* var
	// dies with its session, so after a full drain the registry holds
	// only the durable aggregates (sessions.*, server.*, tcp.*, link
	// vars). A leak here is unbounded registry growth at C50K.
	for _, name := range reg.Names() {
		if strings.HasPrefix(name, "session.") {
			return fail("per-session metric %q leaked past teardown", name)
		}
	}

	// Invariant 6 — the flight recorders fired: every shed is an
	// anomalous teardown, so at least one black box must have been
	// published, carrying the events that led to the eviction.
	dumpMu.Lock()
	res.FlightDumps = append([]core.SessionDump(nil), flightDumps...)
	dumpMu.Unlock()
	if len(res.FlightDumps) == 0 {
		return fail("no flight-recorder dump despite %d sheds", len(res.ShedClasses))
	}
	for _, d := range res.FlightDumps {
		if len(d.Events) == 0 {
			return fail("flight dump for session %d (%q) is empty", d.Seq, d.Reason)
		}
	}

	res.Stats = st
	res.Trace = ring.Events()
	res.Metrics = reg.Snapshot()
	return res, nil
}
