package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"runtime"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/core"
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/record"
	"github.com/pluginized-protocols/gotcpls/internal/tcpnet"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// AdversarialScenario drives a hostile peer against a TCPLS server: a
// spoofed-source SYN flood, a slowloris mid-handshake stall, a spray of
// malformed records from an authenticated peer, and a stream-open flood
// past the server's budget. Unlike Scenario (which asserts survival of
// *network* faults), this asserts graceful degradation under *attack*:
// every resource stays at its configured bound, every rejection is a
// typed error, the listener keeps serving honest clients, and no
// goroutine outlives the run.
type AdversarialScenario struct {
	// Seed drives the junk-record generator. Default 1.
	Seed int64
	// TimeScale compresses virtual time (default 0.25).
	TimeScale float64
	// SYNFlood is how many spoofed SYNs to fire (default 200).
	SYNFlood int
	// SYNBacklog is the victim listener's half-open cap (default 16).
	SYNBacklog int
	// MaxStreams is the server session's stream budget (default 8).
	MaxStreams int
	// HandshakeTimeout is the server's slowloris bound (default 200ms
	// virtual).
	HandshakeTimeout time.Duration
	// SprayRecords is how many malformed records the hostile peer sends
	// (default 200).
	SprayRecords int
}

func (sc AdversarialScenario) withDefaults() AdversarialScenario {
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.TimeScale <= 0 {
		sc.TimeScale = 0.25
	}
	if sc.SYNFlood <= 0 {
		sc.SYNFlood = 200
	}
	if sc.SYNBacklog <= 0 {
		sc.SYNBacklog = 16
	}
	if sc.MaxStreams <= 0 {
		sc.MaxStreams = 8
	}
	if sc.HandshakeTimeout <= 0 {
		sc.HandshakeTimeout = 200 * time.Millisecond
	}
	if sc.SprayRecords <= 0 {
		sc.SprayRecords = 200
	}
	return sc
}

// AdversarialResult summarizes a successful adversarial run.
type AdversarialResult struct {
	SYNDrops     uint64 // flood SYNs dropped at the backlog cap
	HalfOpenPeak int    // worst observed half-open count (≤ backlog)
	SprayRecords int    // malformed records survived
	FloodStreams int    // streams the server held at teardown (≤ budget)
	EchoBytes    int    // honest-client bytes served after the attacks
}

// RunAdversarial executes the hostile-peer scenario. Any bound that
// fails to hold is returned as an error naming the attack stage.
func RunAdversarial(sc AdversarialScenario) (*AdversarialResult, error) {
	sc = sc.withDefaults()
	baseline := runtime.NumGoroutine()
	res := &AdversarialResult{}

	n := netsim.New(netsim.WithSeed(sc.Seed), netsim.WithTimeScale(sc.TimeScale))
	ch, sh := n.Host("client"), n.Host("server")
	n.AddLink(ch, sh, ClientV4, ServerV4, netsim.LinkConfig{Name: "v4", Delay: time.Millisecond, BandwidthBps: 50e6})
	cs := tcpnet.NewStack(ch, tcpnet.Config{})
	ss := tcpnet.NewStack(sh, tcpnet.Config{SYNBacklog: sc.SYNBacklog})
	defer func() {
		cs.Close()
		ss.Close()
		n.Close()
	}()

	// Port 443: the TCPLS service under test. Port 444: the SYN-flood
	// victim (its own half-open budget, so the flood assertions don't
	// race the TCPLS handshakes).
	tl, err := ss.Listen(netip.Addr{}, 443)
	if err != nil {
		return nil, fmt.Errorf("listen 443: %v", err)
	}
	floodTl, err := ss.Listen(netip.Addr{}, 444)
	if err != nil {
		return nil, fmt.Errorf("listen 444: %v", err)
	}
	defer floodTl.Close()

	srvCfg := &core.Config{
		TLS:   &tls13.Config{Certificate: serverCert()},
		Clock: n,
		Limits: core.ResourceLimits{
			MaxStreams:       sc.MaxStreams,
			HandshakeTimeout: sc.HandshakeTimeout,
		},
	}
	lst := core.NewListener(tl, srvCfg)
	defer lst.Close()

	// --- Stage 1: spoofed-source SYN flood -------------------------------
	// SYN+ACKs to the spoofed source have no route and vanish, so each
	// flood SYN would pin a half-open connection forever without the cap.
	spoofed := netip.MustParseAddr("10.9.9.9")
	for i := 0; i < sc.SYNFlood; i++ {
		seg := &wire.Segment{
			SrcPort: uint16(20000 + i), DstPort: 444,
			Seq: uint32(i) * 101, Flags: wire.FlagSYN, Window: 65535,
		}
		b, err := seg.Marshal(spoofed, ServerV4)
		if err != nil {
			return nil, fmt.Errorf("syn flood: marshal: %v", err)
		}
		ch.Send(&wire.Packet{Src: spoofed, Dst: ServerV4, Proto: wire.ProtoTCP, TTL: 64, Payload: b})
		if ho := floodTl.HalfOpen(); ho > res.HalfOpenPeak {
			res.HalfOpenPeak = ho
		}
	}
	wantDrops := uint64(sc.SYNFlood - sc.SYNBacklog)
	deadline := time.Now().Add(10 * time.Second)
	for floodTl.SYNDrops() < wantDrops && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ho := floodTl.HalfOpen(); ho > res.HalfOpenPeak {
		res.HalfOpenPeak = ho
	}
	if res.HalfOpenPeak > sc.SYNBacklog {
		return nil, fmt.Errorf("syn flood: half-open grew to %d, backlog is %d", res.HalfOpenPeak, sc.SYNBacklog)
	}
	res.SYNDrops = floodTl.SYNDrops()
	if res.SYNDrops < wantDrops {
		return nil, fmt.Errorf("syn flood: only %d drops recorded, want >= %d", res.SYNDrops, wantDrops)
	}

	// --- Stage 2: slowloris (connect, then silence) ----------------------
	// The server's handshake deadline must reap the connection; without
	// it, each such client pins an accept goroutine forever.
	loris, err := (tcpnet.Dialer{Stack: cs}).Dial(netip.Addr{}, netip.AddrPortFrom(ServerV4, 443), 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("slowloris: dial: %v", err)
	}
	lorisDone := make(chan error, 1)
	go func() {
		var b [1]byte
		_, err := loris.Read(b[:])
		lorisDone <- err
	}()
	select {
	case err := <-lorisDone:
		if err == nil {
			return nil, errors.New("slowloris: read returned data; want deadline close")
		}
	case <-time.After(30 * time.Second):
		loris.Close()
		return nil, errors.New("slowloris: connection never reaped by the handshake deadline")
	}
	loris.Close()

	// --- Stage 3: malformed-record spray from an authenticated peer ------
	// The peer completes a real TCPLS handshake, then sprays garbage
	// records. Each must be dropped in the read loop; a Ping afterwards
	// proves the session (and its connection) survived the spray.
	sprayConn, spraySess, err := adversaryHandshake(cs, lst)
	if err != nil {
		return nil, fmt.Errorf("spray: handshake: %v", err)
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	for i := 0; i < sc.SprayRecords; i++ {
		var junk []byte
		switch i % 3 {
		case 0: // unknown true type: ignored whole
			junk = make([]byte, 1+rng.Intn(64))
			rng.Read(junk)
			junk[len(junk)-1] = 0xff
		case 1: // control record with an unknown frame type
			junk = []byte{0xee, 0xff, 0xff, byte(record.TTypeControl)}
		case 2: // truncated stream chunk
			junk = []byte{0, 0, 1, 2, 3, byte(record.TTypeStreamData)}
		}
		if err := sprayConn.WriteRecordContext(tls13.DefaultContext, junk); err != nil {
			return nil, fmt.Errorf("spray: write %d: %v", i, err)
		}
		res.SprayRecords++
	}
	if err := pingPong(sprayConn); err != nil {
		return nil, fmt.Errorf("spray: liveness ping after spray: %v", err)
	}
	if spraySess.Closed() {
		return nil, fmt.Errorf("spray: session died on malformed records: %v", spraySess.Err())
	}
	sprayConn.Close()

	// --- Stage 4: stream-open flood past the budget ----------------------
	// Opening streams past MaxStreams is a protocol violation: the
	// session must end with a typed error while holding at most the
	// budgeted number of streams.
	floodConn, floodSess, err := adversaryHandshake(cs, lst)
	if err != nil {
		return nil, fmt.Errorf("stream flood: handshake: %v", err)
	}
	for i := 0; i < 4*sc.MaxStreams; i++ {
		id := uint32(2*i + 1)
		if err := floodConn.WriteRecordContext(tls13.DefaultContext,
			record.EncodeControl(record.StreamOpen{StreamID: id})); err != nil {
			break // server already slammed the door
		}
	}
	deadline = time.Now().Add(10 * time.Second)
	for !floodSess.Closed() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !errors.Is(floodSess.Err(), core.ErrLimitExceeded) {
		floodConn.Close()
		return nil, fmt.Errorf("stream flood: session error = %v, want ErrLimitExceeded", floodSess.Err())
	}
	res.FloodStreams = len(floodSess.Streams())
	if res.FloodStreams > sc.MaxStreams {
		floodConn.Close()
		return nil, fmt.Errorf("stream flood: server held %d streams, budget is %d", res.FloodStreams, sc.MaxStreams)
	}
	floodConn.Close()

	// --- Stage 5: an honest client is still served -----------------------
	honest := core.NewClient(&core.Config{
		TLS:   &tls13.Config{InsecureSkipVerify: true},
		Clock: n,
	}, tcpnet.Dialer{Stack: cs})
	acceptCh := make(chan *core.Session, 1)
	go func() {
		s, err := lst.Accept()
		if err != nil {
			acceptCh <- nil
			return
		}
		acceptCh <- s
	}()
	if _, err := honest.Connect(netip.Addr{}, netip.AddrPortFrom(ServerV4, 443), 5*time.Second); err != nil {
		return nil, fmt.Errorf("honest client: connect: %v", err)
	}
	if err := honest.Handshake(); err != nil {
		return nil, fmt.Errorf("honest client: handshake: %v", err)
	}
	honestSrv := <-acceptCh
	if honestSrv == nil {
		return nil, errors.New("honest client: accept failed")
	}
	payload := make([]byte, 64<<10)
	rng.Read(payload)
	st, err := honest.NewStream()
	if err != nil {
		return nil, fmt.Errorf("honest client: stream: %v", err)
	}
	go func() {
		st.Write(payload)
		st.Close()
	}()
	sst, err := honestSrv.AcceptStream()
	if err != nil {
		return nil, fmt.Errorf("honest client: server accept stream: %v", err)
	}
	got, err := readAll(sst)
	if err != nil {
		return nil, fmt.Errorf("honest client: read: %v", err)
	}
	if idx := firstMismatch(got, payload); len(got) != len(payload) || idx >= 0 {
		return nil, fmt.Errorf("honest client: payload corrupted (len %d/%d, mismatch %d)", len(got), len(payload), idx)
	}
	res.EchoBytes = len(got)
	honest.Close()
	honestSrv.Close()

	// --- Teardown: nothing may leak --------------------------------------
	spraySess.Close()
	floodSess.Close()
	lst.Close()
	floodTl.Close()
	cs.Close()
	ss.Close()
	n.Close()
	if err := waitGoroutines(baseline, 5*time.Second); err != nil {
		return nil, fmt.Errorf("goroutine leak after adversarial run: %v", err)
	}
	return res, nil
}

// adversaryHandshake opens a raw TCPLS connection: a real TLS handshake
// carrying the TCPLS extension, but driven byte-by-byte by the attacker
// rather than by the core session machinery. Returns the attacker's TLS
// conn and the server-side session it created.
func adversaryHandshake(cs *tcpnet.Stack, lst *core.Listener) (*tls13.Conn, *core.Session, error) {
	acceptCh := make(chan *core.Session, 1)
	go func() {
		s, err := lst.Accept()
		if err != nil {
			acceptCh <- nil
			return
		}
		acceptCh <- s
	}()
	tcp, err := (tcpnet.Dialer{Stack: cs}).Dial(netip.Addr{}, netip.AddrPortFrom(ServerV4, 443), 5*time.Second)
	if err != nil {
		return nil, nil, err
	}
	hello := &record.ClientHelloTCPLS{Version: record.Version}
	tc := tls13.Client(tcp, &tls13.Config{
		InsecureSkipVerify: true,
		ExtraClientHello:   []tls13.Extension{{Type: tls13.ExtTCPLS, Data: hello.Encode()}},
	})
	if err := tc.Handshake(); err != nil {
		tcp.Close()
		return nil, nil, err
	}
	sess := <-acceptCh
	if sess == nil {
		tcp.Close()
		return nil, nil, errors.New("listener refused the adversary handshake")
	}
	return tc, sess, nil
}

// pingPong sends a TCPLS Ping on the default context and waits for the
// matching Pong — the attacker-visible liveness probe.
func pingPong(tc *tls13.Conn) error {
	const seq = 0x5eed
	if err := tc.WriteRecordContext(tls13.DefaultContext, record.EncodeControl(record.Ping{Seq: seq})); err != nil {
		return err
	}
	for i := 0; i < 32; i++ {
		_, plain, err := tc.ReadRecordContext()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return errors.New("connection closed before pong")
			}
			return err
		}
		tt, content, err := record.Decode(plain)
		if err != nil || tt != record.TTypeControl {
			continue
		}
		frames, err := record.DecodeControl(content)
		if err != nil {
			continue
		}
		for _, f := range frames {
			if pong, ok := f.(record.Pong); ok && pong.Seq == seq {
				return nil
			}
		}
	}
	return errors.New("no pong within 32 records")
}
