//go:build race

package chaos

// raceEnabled relaxes the flock gauntlet's throughput floors: the race
// runtime slows the handshake and data paths by an order of magnitude,
// which says nothing about the budgets the gauntlet exists to enforce.
const raceEnabled = true
