package chaos

import (
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/netsim"
)

// Fig. 4 of the TCPLS paper plots application goodput over time while
// the network drops out from under the connection: throughput climbs,
// collapses to zero when the active path dies, and recovers once the
// session fails over to the second path. Fig4Scenario reproduces that
// experiment shape in the emulator: a dual-stack session with a
// standing second path, one long download, and an administrative kill
// of the v4 link partway through. The health monitor detects the dead
// path, the session replays unacked data onto v6, and the transfer
// completes — the recorded trace carries the whole story
// (record:received gaps, path:degraded, path:closed, path:failover)
// so the goodput timeline can be rebuilt offline from the JSONL alone.

// Fig4Scenario builds the failover scenario: transferBytes on a single
// stream (default 4 MB), v4 cut permanently at failAt virtual time
// (default 250ms). The transfer must outlive the cut for the dip to be
// visible, so pick transferBytes well above failAt times the link rate.
func Fig4Scenario(seed int64, transferBytes int, failAt time.Duration) Scenario {
	if transferBytes <= 0 {
		transferBytes = 4 << 20
	}
	if failAt <= 0 {
		failAt = 250 * time.Millisecond
	}
	return Scenario{
		Name:           "fig4",
		Seed:           seed,
		TransferBytes:  transferBytes,
		NumStreams:     1,
		JoinSecondPath: true,
		// Bufferbloat control. With tcpnet's 512 KiB default buffers a
		// saturated 50 Mbps link inflates probe RTTs to ~150ms (probes
		// queue behind the bulk data), which false-degrades the busy
		// path. 128 KiB buffers keep the loaded probe RTT around 50ms;
		// 6 unanswered probes at 40ms (240ms tolerance) then rides out
		// any transient while still detecting the dead link well before
		// the transfer would otherwise finish — and the small receive
		// backlog makes the goodput collapse land right at the cut.
		SendBuf:         128 << 10,
		RecvBuf:         128 << 10,
		ProbeInterval:   40 * time.Millisecond,
		HealthFailAfter: 6,
		Schedule: func(e *Env) *netsim.FaultSchedule {
			fs := &netsim.FaultSchedule{}
			fs.At(failAt, "fig4-kill-v4", func() { e.LinkV4.SetDown(true) })
			return fs
		},
	}
}

// RunFig4 executes the Fig. 4 failover scenario and returns the result
// with its full trace. Zero transferBytes/failAt take the defaults.
func RunFig4(seed int64, transferBytes int, failAt time.Duration) (*Result, error) {
	return Run(Fig4Scenario(seed, transferBytes, failAt))
}
