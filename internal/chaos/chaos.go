// Package chaos is the fault-injection harness for the TCPLS session
// layer: it wires a client/server session pair over the netsim emulator,
// executes a (seeded) fault schedule against the links — flaps, silent
// stalls, forged RSTs, loss ramps, duplication, reordering — and asserts
// the end-to-end invariants behind the paper's §2.1 headline claim that
// a TCPLS session outlives the TCP connections beneath it:
//
//  1. Every stream's bytes arrive exactly once, in order (no loss, no
//     duplication, no reordering above the session layer).
//  2. The session survives any schedule that leaves at least one viable
//     address, recovering within the scenario's virtual-time bound.
//  3. Teardown is clean: no goroutine outlives the scenario.
//
// Every scenario is reproducible: the seed drives the emulator's loss
// draws, the payload bytes, the backoff jitter and (for generated
// schedules) the fault sequence itself, and failures always carry the
// seed and the rendered schedule so the exact run can be replayed.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/core"
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/tcpnet"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

// Emulated addresses (the paper's dual-stack testbed shape).
var (
	ClientV4 = netip.MustParseAddr("10.0.0.1")
	ServerV4 = netip.MustParseAddr("10.0.0.2")
	ClientV6 = netip.MustParseAddr("fc00::1")
	ServerV6 = netip.MustParseAddr("fc00::2")
)

var (
	certOnce sync.Once
	cert     *tls13.Certificate
)

func serverCert() *tls13.Certificate {
	certOnce.Do(func() {
		var err error
		cert, err = tls13.GenerateSelfSigned("tcpls-chaos", nil, nil)
		if err != nil {
			panic(err)
		}
	})
	return cert
}

// Scenario describes one chaos run. Zero values take defaults.
type Scenario struct {
	// Name labels the scenario in logs.
	Name string
	// Seed drives every random choice (emulator loss, payloads, jitter,
	// generated schedules). Default 1.
	Seed int64
	// TimeScale compresses virtual time (default 0.25: 4x faster than
	// real time).
	TimeScale float64
	// TransferBytes is the total payload across all streams (default 1 MB).
	TransferBytes int
	// NumStreams is how many concurrent streams carry the transfer
	// (default 4).
	NumStreams int
	// V4 and V6 configure the two links (defaults: 50 Mbps, 1/2 ms).
	V4, V6 netsim.LinkConfig
	// JoinSecondPath joins the v6 address right after the handshake, so
	// proactive failover has a standing target.
	JoinSecondPath bool
	// ProbeInterval is the health-probe cadence (default 15ms virtual;
	// set <0 to disable monitoring).
	ProbeInterval time.Duration
	// HealthFailAfter is the unanswered-probe threshold (default 3).
	HealthFailAfter int
	// Retry overrides the reconnect policy (default: 25ms base, 300ms
	// cap, 12 attempts, 400ms dial timeout — tuned to emulated RTTs).
	Retry core.RetryPolicy
	// Schedule builds the fault schedule against the constructed
	// environment. Nil uses RandomSchedule(Seed, RandomFaults).
	Schedule func(*Env) *netsim.FaultSchedule
	// RandomFaults is how many events RandomSchedule generates when
	// Schedule is nil (default 6).
	RandomFaults int
	// MaxVirtual bounds the whole transfer in virtual time (default 30s).
	MaxVirtual time.Duration
	// Timeout bounds the whole run in wall-clock time (default 90s).
	Timeout time.Duration
	// TraceCapacity bounds the in-memory event ring the run records into
	// (default 1<<17 events). Client, server and emulator tracers share
	// one ring and one virtual clock, so Result.Trace is a single
	// ordered timeline.
	TraceCapacity int
	// SendBuf / RecvBuf override the transport socket buffers on both
	// stacks (0 keeps tcpnet's 512 KiB defaults). Scenarios sensitive to
	// bufferbloat — probe RTTs queue behind bulk data — shrink these.
	SendBuf, RecvBuf int
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.TimeScale <= 0 {
		sc.TimeScale = 0.25
	}
	if sc.TransferBytes <= 0 {
		sc.TransferBytes = 1 << 20
	}
	if sc.NumStreams <= 0 {
		sc.NumStreams = 4
	}
	if sc.V4 == (netsim.LinkConfig{}) {
		sc.V4 = netsim.LinkConfig{Name: "v4", Delay: time.Millisecond, BandwidthBps: 50e6}
	}
	if sc.V6 == (netsim.LinkConfig{}) {
		sc.V6 = netsim.LinkConfig{Name: "v6", Delay: 2 * time.Millisecond, BandwidthBps: 50e6}
	}
	if sc.ProbeInterval == 0 {
		sc.ProbeInterval = 15 * time.Millisecond
	}
	if sc.HealthFailAfter <= 0 {
		sc.HealthFailAfter = 3
	}
	if sc.Retry == (core.RetryPolicy{}) {
		sc.Retry = core.RetryPolicy{
			Base:        25 * time.Millisecond,
			Cap:         300 * time.Millisecond,
			MaxAttempts: 12,
			DialTimeout: 400 * time.Millisecond,
		}
	}
	if sc.RandomFaults <= 0 {
		sc.RandomFaults = 6
	}
	if sc.MaxVirtual <= 0 {
		sc.MaxVirtual = 30 * time.Second
	}
	if sc.Timeout <= 0 {
		sc.Timeout = 90 * time.Second
	}
	if sc.TraceCapacity <= 0 {
		sc.TraceCapacity = 1 << 17
	}
	return sc
}

// Env is the constructed chaos environment handed to schedule builders.
type Env struct {
	Net            *netsim.Network
	LinkV4, LinkV6 *netsim.Link
	Client         *core.Session
	Server         *core.Session
}

// Result summarizes a successful run. The failure counters are all
// derived from Trace — the run asserts on the event stream, not on
// side-channel callbacks — so anything Result reports can also be
// reproduced offline from the exported JSONL.
type Result struct {
	Seed     int64
	Schedule string
	// Degraded counts proactive health-probe failovers: path:degraded
	// events across both endpoints.
	Degraded int
	// Joins counts JOIN attachments the server observed (initial extra
	// path + failover reconnections): server path:join events with the
	// joined flag set.
	Joins int
	// ReadLoopFailovers counts failed path closes (path:close with the
	// failed flag, both endpoints) — deaths surfaced by transport errors
	// or probe timeouts rather than orderly teardown.
	ReadLoopFailovers int
	// VirtualElapsed is the transfer's duration in emulated time.
	VirtualElapsed time.Duration
	// BytesTransferred is the total payload verified end-to-end.
	BytesTransferred int
	// Trace is the full event timeline (virtual time, endpoints
	// "client"/"server"/"net") captured during the run.
	Trace []telemetry.Event
	// TraceDropped is how many events the ring evicted; 0 unless the run
	// outgrew TraceCapacity.
	TraceDropped uint64
	// Metrics is the final registry snapshot (tcp.<host>.*,
	// netsim.link.<name>.*, session.<n>.*).
	Metrics map[string]any
}

// Replay renders the reproduction recipe embedded in failure messages.
func (r *Result) Replay() string {
	return fmt.Sprintf("seed=%d schedule=%q", r.Seed, r.Schedule)
}

// Run executes the scenario and checks every invariant. The returned
// error always embeds the seed and rendered schedule for exact replay.
func Run(sc Scenario) (*Result, error) {
	sc = sc.withDefaults()
	baseline := runtime.NumGoroutine()

	n := netsim.New(netsim.WithSeed(sc.Seed), netsim.WithTimeScale(sc.TimeScale))
	ch, sh := n.Host("client"), n.Host("server")
	l4 := n.AddLink(ch, sh, ClientV4, ServerV4, sc.V4)
	l6 := n.AddLink(ch, sh, ClientV6, ServerV6, sc.V6)

	// One ring, one virtual clock, three endpoint labels: every layer of
	// both endpoints plus the emulator lands on a single ordered
	// timeline, which is what lets invariants be asserted on the trace.
	ring := telemetry.NewRingSink(sc.TraceCapacity)
	reg := telemetry.NewRegistry()
	mkTracer := func(ep string) *telemetry.Tracer {
		return telemetry.NewTracer(
			telemetry.WithEndpoint(ep),
			telemetry.WithClock(n.VirtualNow),
			telemetry.WithSink(ring),
		)
	}
	cliTracer, srvTracer := mkTracer("client"), mkTracer("server")
	n.SetTracer(mkTracer("net"))
	l4.RegisterMetrics(reg)
	l6.RegisterMetrics(reg)
	cs := tcpnet.NewStack(ch, tcpnet.Config{
		Tracer: cliTracer, Metrics: reg,
		SendBuf: sc.SendBuf, RecvBuf: sc.RecvBuf,
	})
	ss := tcpnet.NewStack(sh, tcpnet.Config{
		Tracer: srvTracer, Metrics: reg,
		SendBuf: sc.SendBuf, RecvBuf: sc.RecvBuf,
	})

	res := &Result{Seed: sc.Seed}
	var cliRef, srvRef *core.Session
	fail := func(format string, args ...any) (*Result, error) {
		diag := ""
		if cliRef != nil {
			diag += fmt.Sprintf(" client[conns=%d cookies=%d closed=%v err=%v streams=%+v]",
				cliRef.NumConns(), cliRef.CookiesLeft(), cliRef.Closed(), cliRef.Err(), cliRef.StreamStates())
		}
		if srvRef != nil {
			diag += fmt.Sprintf(" server[conns=%d closed=%v err=%v streams=%+v]",
				srvRef.NumConns(), srvRef.Closed(), srvRef.Err(), srvRef.StreamStates())
		}
		args = append(args, diag, res.Replay())
		return nil, fmt.Errorf(format+" —%s (replay: %s)", args...)
	}

	tl, err := ss.Listen(netip.Addr{}, 443)
	if err != nil {
		return fail("listen: %v", err)
	}

	probe := sc.ProbeInterval
	if probe < 0 {
		probe = 0
	}
	srvCfg := &core.Config{
		TLS:                 &tls13.Config{Certificate: serverCert()},
		AdvertiseAddresses:  []netip.AddrPort{netip.AddrPortFrom(ServerV4, 443), netip.AddrPortFrom(ServerV6, 443)},
		Clock:               n,
		HealthProbeInterval: probe,
		HealthFailAfter:     sc.HealthFailAfter,
		Retry:               sc.Retry,
		RetrySeed:           sc.Seed,
		Tracer:              srvTracer,
		Metrics:             reg,
	}
	lst := core.NewListener(tl, srvCfg)
	defer func() {
		lst.Close()
		cs.Close()
		ss.Close()
		n.Close()
	}()

	cliCfg := &core.Config{
		TLS:                 &tls13.Config{InsecureSkipVerify: true},
		Clock:               n,
		HealthProbeInterval: probe,
		HealthFailAfter:     sc.HealthFailAfter,
		Retry:               sc.Retry,
		RetrySeed:           sc.Seed + 1,
		Tracer:              cliTracer,
		Metrics:             reg,
	}
	cli := core.NewClient(cliCfg, tcpnet.Dialer{Stack: cs})
	cliRef = cli
	defer cli.Close()

	type acceptRes struct {
		s   *core.Session
		err error
	}
	acceptCh := make(chan acceptRes, 1)
	go func() {
		s, err := lst.Accept()
		acceptCh <- acceptRes{s, err}
	}()
	if _, err := cli.Connect(netip.Addr{}, netip.AddrPortFrom(ServerV4, 443), 5*time.Second); err != nil {
		return fail("connect: %v", err)
	}
	if err := cli.Handshake(); err != nil {
		return fail("handshake: %v", err)
	}
	ar := <-acceptCh
	if ar.err != nil {
		return fail("accept: %v", ar.err)
	}
	srv := ar.s
	srvRef = srv
	defer srv.Close()

	if sc.JoinSecondPath {
		if _, err := cli.Connect(ClientV6, netip.AddrPortFrom(ServerV6, 443), 5*time.Second); err != nil {
			return fail("join v6: %v", err)
		}
	}

	env := &Env{Net: n, LinkV4: l4, LinkV6: l6, Client: cli, Server: srv}

	var schedule *netsim.FaultSchedule
	if sc.Schedule != nil {
		schedule = sc.Schedule(env)
	} else {
		schedule = RandomSchedule(sc.Seed, env, sc.RandomFaults)
	}
	res.Schedule = schedule.String()

	// Deterministic per-stream payloads.
	perStream := sc.TransferBytes / sc.NumStreams
	payloads := make([][]byte, sc.NumStreams)
	for i := range payloads {
		payloads[i] = make([]byte, perStream)
		rand.New(rand.NewSource(sc.Seed + int64(i)*7919)).Read(payloads[i])
	}

	start := time.Now()
	schedule.Start(n)
	defer schedule.Stop()

	// Client uploads every stream concurrently; the server reads them
	// all back and we verify byte-exactness per stream.
	type streamErr struct {
		id  uint32
		err error
	}
	writeErrs := make(chan streamErr, sc.NumStreams)
	wantByID := make(map[uint32][]byte, sc.NumStreams)
	for i := 0; i < sc.NumStreams; i++ {
		st, err := cli.NewStream()
		if err != nil {
			return fail("new stream: %v", err)
		}
		wantByID[st.ID()] = payloads[i]
		go func(st *core.Stream, p []byte) {
			_, err := st.Write(p)
			if err == nil {
				err = st.Close()
			}
			writeErrs <- streamErr{st.ID(), err}
		}(st, payloads[i])
	}

	type recvRes struct {
		id   uint32
		data []byte
		err  error
	}
	recvCh := make(chan recvRes, sc.NumStreams)
	for i := 0; i < sc.NumStreams; i++ {
		go func() {
			sst, err := srv.AcceptStream()
			if err != nil {
				recvCh <- recvRes{0, nil, err}
				return
			}
			data, err := readAll(sst)
			recvCh <- recvRes{sst.ID(), data, err}
		}()
	}

	// Invariant 2: completion within the virtual-time bound (wall-clock
	// guard on top, in case the emulator wedges entirely).
	wallDeadline := time.After(sc.Timeout)
	got := make(map[uint32][]byte, sc.NumStreams)
	for done := 0; done < 2*sc.NumStreams; done++ {
		select {
		case we := <-writeErrs:
			if we.err != nil {
				return fail("stream %d write failed: %v", we.id, we.err)
			}
		case rr := <-recvCh:
			if rr.err != nil {
				return fail("stream %d read failed: %v", rr.id, rr.err)
			}
			got[rr.id] = rr.data
		case <-wallDeadline:
			return fail("transfer incomplete after %s wall-clock: client conns=%d server conns=%d",
				sc.Timeout, cli.NumConns(), srv.NumConns())
		}
		if v := n.VirtualSince(start); v > sc.MaxVirtual {
			return fail("transfer exceeded the virtual bound %s (elapsed %s)", sc.MaxVirtual, v)
		}
	}
	res.VirtualElapsed = n.VirtualSince(start)

	// Invariant 1: exactly-once, in-order bytes per stream.
	for id, want := range wantByID {
		data, ok := got[id]
		if !ok {
			return fail("stream %d never arrived", id)
		}
		if len(data) != len(want) {
			return fail("stream %d length %d, want %d (loss or duplication)", id, len(data), len(want))
		}
		if idx := firstMismatch(data, want); idx >= 0 {
			return fail("stream %d corrupted at offset %d", id, idx)
		}
		res.BytesTransferred += len(data)
	}

	// Invariant 2b: the session must still be alive — it survived the
	// schedule, it didn't limp home on a torn-down error path.
	if cli.Closed() {
		return fail("client session died during the run: %v", cli.Err())
	}
	if srv.Closed() {
		return fail("server session died during the run: %v", srv.Err())
	}

	// Orderly teardown, then invariant 3: no goroutine leaks.
	schedule.Stop()
	clearFaults(l4, l6)
	cli.Close()
	srv.Close()
	lst.Close()
	cs.Close()
	ss.Close()
	n.Close()
	if err := waitGoroutines(baseline, 5*time.Second); err != nil {
		return fail("goroutine leak: %v", err)
	}

	res.Trace = ring.Events()
	res.TraceDropped = ring.Dropped()
	res.Metrics = reg.Snapshot()
	res.Degraded, res.Joins, res.ReadLoopFailovers = traceFailoverCounts(res.Trace)
	return res, nil
}

// traceFailoverCounts derives the failure counters from the event
// stream alone: degraded paths (path:degraded, both endpoints), server
// JOIN attachments (path:join with the joined flag on the server), and
// failed path closes (path:close with the failed flag, both endpoints).
func traceFailoverCounts(events []telemetry.Event) (degraded, joins, failedCloses int) {
	for _, ev := range events {
		switch ev.Kind {
		case telemetry.EvPathDegraded:
			degraded++
		case telemetry.EvPathJoin:
			if ev.EP == "server" && ev.A == 1 {
				joins++
			}
		case telemetry.EvPathClose:
			if ev.A == 1 {
				failedCloses++
			}
		}
	}
	return
}

// clearFaults returns the links to a clean state so teardown traffic
// (FINs, session close records) is not blackholed.
func clearFaults(links ...*netsim.Link) {
	for _, l := range links {
		l.SetDown(false)
		l.StallBoth(false)
		l.SetLoss(0)
	}
}

func readAll(st *core.Stream) ([]byte, error) {
	var out []byte
	buf := make([]byte, 64<<10)
	for {
		n, err := st.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, err
		}
	}
}

func firstMismatch(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

func waitGoroutines(baseline int, timeout time.Duration) error {
	const slack = 4
	deadline := time.Now().Add(timeout)
	var now int
	for time.Now().Before(deadline) {
		now = runtime.NumGoroutine()
		if now <= baseline+slack {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("%d goroutines alive, baseline %d (+%d slack)", now, baseline, slack)
}
