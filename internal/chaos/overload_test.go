package chaos

import (
	"testing"
	"time"
)

// TestOverloadGauntlet: the full churn/overload storm against a small
// session budget — admission enforced pre-TLS, only idle/degraded
// sessions shed, elephants complete byte-exact, process budgets hold,
// and every gauge returns to baseline afterwards.
func TestOverloadGauntlet(t *testing.T) {
	res, err := RunOverload(OverloadScenario{Name: "overload-default", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("overload: churn %d/%d admitted, spike held=%d waveB rejected=%d/%d, shed=%v, "+
		"elephants=%d bytes, peak goroutines=%d, peak buffered=%d, virtual=%s",
		res.ChurnAdmitted, res.ChurnAdmitted+res.ChurnFailed,
		res.SpikeHeld, res.SpikeRejected, res.SpikeRejected+res.SpikeFailed,
		res.ShedClasses, res.ElephantBytes,
		res.PeakGoroutines, res.PeakBufferedBytes, res.VirtualElapsed)
	if res.Stats.SessionsHWM == 0 || res.ElephantBytes == 0 {
		t.Fatalf("degenerate run: %+v", res.Stats)
	}
}

// TestOverloadGauntletTinyBudget: a harsher shape — budget 8, a 4x
// spike, longer idle threshold — to check the invariants are not tuned
// to one operating point.
func TestOverloadGauntletTinyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("gauntlet variant skipped in -short")
	}
	res, err := RunOverload(OverloadScenario{
		Name:         "overload-tiny",
		Seed:         11,
		MaxSessions:  8,
		SpikeClients: 32,
		Lingerers:    4,
		ChurnClients: 24,
		IdleAfter:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tiny budget: hwm=%d rejected=%d shed=%v",
		res.Stats.SessionsHWM, res.Stats.RejectedPreTLS, res.ShedClasses)
}
