package chaos

import (
	"bytes"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// TestOverloadGauntlet: the full churn/overload storm against a small
// session budget — admission enforced pre-TLS, only idle/degraded
// sessions shed, elephants complete byte-exact, process budgets hold,
// and every gauge returns to baseline afterwards.
func TestOverloadGauntlet(t *testing.T) {
	res, err := RunOverload(OverloadScenario{Name: "overload-default", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("overload: churn %d/%d admitted, spike held=%d waveB rejected=%d/%d, shed=%v, "+
		"elephants=%d bytes, peak goroutines=%d, peak buffered=%d, virtual=%s",
		res.ChurnAdmitted, res.ChurnAdmitted+res.ChurnFailed,
		res.SpikeHeld, res.SpikeRejected, res.SpikeRejected+res.SpikeFailed,
		res.ShedClasses, res.ElephantBytes,
		res.PeakGoroutines, res.PeakBufferedBytes, res.VirtualElapsed)
	if res.Stats.SessionsHWM == 0 || res.ElephantBytes == 0 {
		t.Fatalf("degenerate run: %+v", res.Stats)
	}

	// The server-side latency histograms saw the storm: every admitted
	// session fed the handshake histogram, and the admission/shed
	// machinery recorded its own decision cost (wall-clock ns — these
	// measure CPU work, not emulated network time).
	if h := metricsHist(t, res.Metrics, "sessions.handshake_ns.server"); h.Count < 1 || h.Max <= 0 {
		t.Fatalf("server handshake histogram empty: %+v", h)
	}
	if h := metricsHist(t, res.Metrics, "server.admit_ns"); h.Count < uint64(res.ChurnAdmitted) {
		t.Fatalf("admit_ns count %d below admitted sessions %d", h.Count, res.ChurnAdmitted)
	}
	if h := metricsHist(t, res.Metrics, "server.shed_pass_ns"); h.Count < 1 {
		t.Fatalf("shed_pass_ns never observed despite sheds %v", res.ShedClasses)
	}

	// At least one flight-recorder dump was published (sheds guarantee
	// anomalous teardowns), carries the shed event that killed the
	// session, and survives the JSONL round trip.
	if len(res.FlightDumps) == 0 {
		t.Fatal("no flight dumps captured")
	}
	sawShed := false
	for _, d := range res.FlightDumps {
		var buf bytes.Buffer
		if err := d.WriteJSONL(&buf); err != nil {
			t.Fatalf("dump for session %d does not serialize: %v", d.Seq, err)
		}
		events, err := telemetry.ParseJSONL(&buf)
		if err != nil {
			t.Fatalf("dump for session %d does not parse: %v", d.Seq, err)
		}
		if len(events) != len(d.Events) {
			t.Fatalf("dump round trip lost events: %d -> %d", len(d.Events), len(events))
		}
		for _, ev := range events {
			if ev.Kind == telemetry.EvSessionShed {
				sawShed = true
			}
		}
	}
	if !sawShed {
		t.Fatalf("no session:shed event inside any of %d flight dumps", len(res.FlightDumps))
	}
}

// TestOverloadGauntletTinyBudget: a harsher shape — budget 8, a 4x
// spike, longer idle threshold — to check the invariants are not tuned
// to one operating point.
func TestOverloadGauntletTinyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("gauntlet variant skipped in -short")
	}
	res, err := RunOverload(OverloadScenario{
		Name:         "overload-tiny",
		Seed:         11,
		MaxSessions:  8,
		SpikeClients: 32,
		Lingerers:    4,
		ChurnClients: 24,
		IdleAfter:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tiny budget: hwm=%d rejected=%d shed=%v",
		res.Stats.SessionsHWM, res.Stats.RejectedPreTLS, res.ShedClasses)
}
