package chaos

import (
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/netsim"
)

// TestChaosSmoke is the acceptance scenario: a 1 MB multi-stream
// transfer over a dual-stack pair where the v4 link carries 2% loss,
// silently stalls mid-transfer (so only the health probes can notice),
// a forged RST kills the v6 rescue path, and the v6 link flaps late.
// The session must deliver every byte exactly once and the first
// failover must be proactive — triggered by probe timeout, not by a
// read-loop error.
func TestChaosSmoke(t *testing.T) {
	sc := Scenario{
		Name:           "smoke-flap-stall-rst-loss",
		Seed:           7,
		TransferBytes:  1 << 20,
		NumStreams:     4,
		V4:             netsim.LinkConfig{Name: "v4", Delay: time.Millisecond, BandwidthBps: 50e6, Loss: 0.02},
		JoinSecondPath: true,
		Schedule: func(env *Env) *netsim.FaultSchedule {
			fs := &netsim.FaultSchedule{}
			// Silent blackhole on v4: the read loop sees nothing, only
			// the unanswered probes can flag the path. Health probes run
			// every 15ms with failAfter=3, so degrade lands ~45-60ms in.
			fs.StallBoth(env.LinkV4, 40*time.Millisecond, 250*time.Millisecond)
			// While traffic rides the v6 rescue path, a middlebox forges
			// an RST there — the classic §2.1 failure TCPLS survives.
			fs.At(60*time.Millisecond, "arm-rst(v6,after=100)", func() {
				env.LinkV6.Use(&netsim.RSTInjector{AfterSegments: 100, Once: true, BothDirections: true})
			})
			// Late v6 flap: by now v4 is back; the session hops again.
			fs.FlapLink(env.LinkV6, 400*time.Millisecond, 470*time.Millisecond)
			return fs
		},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("chaos smoke failed: %v", err)
	}
	t.Logf("smoke: %s degraded=%d joins=%d readLoopFailovers=%d virtual=%s bytes=%d",
		res.Replay(), res.Degraded, res.Joins, res.ReadLoopFailovers, res.VirtualElapsed, res.BytesTransferred)
	if res.BytesTransferred != sc.TransferBytes {
		t.Fatalf("transferred %d bytes, want %d (replay: %s)", res.BytesTransferred, sc.TransferBytes, res.Replay())
	}
	// The stall produces no transport error, so the failover away from
	// the stalled v4 path can only have been proactive: a health-probe
	// degrade, not a read-loop death.
	if res.Degraded < 1 {
		t.Fatalf("no proactive health-probe failover engaged: degraded=%d (replay: %s)", res.Degraded, res.Replay())
	}
	if res.Joins < 1 {
		t.Fatalf("server observed no JOIN attachments: joins=%d (replay: %s)", res.Joins, res.Replay())
	}
}

// TestChaosRandomSchedules drives seeded random fault schedules
// (hard faults confined to v4, so v6 always remains viable) and
// asserts the survival invariants for each. Failures log the seed and
// rendered schedule for exact replay.
func TestChaosRandomSchedules(t *testing.T) {
	seeds := []int64{1, 2, 3, 5}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			sc := Scenario{
				Name:           "random",
				Seed:           seed,
				TransferBytes:  256 << 10,
				NumStreams:     2,
				JoinSecondPath: true,
				RandomFaults:   6,
			}
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("random schedule seed=%d failed: %v", seed, err)
			}
			t.Logf("random: %s degraded=%d joins=%d readLoopFailovers=%d virtual=%s",
				res.Replay(), res.Degraded, res.Joins, res.ReadLoopFailovers, res.VirtualElapsed)
			if res.BytesTransferred != sc.TransferBytes {
				t.Fatalf("transferred %d bytes, want %d (replay: %s)", res.BytesTransferred, sc.TransferBytes, res.Replay())
			}
		})
	}
}

// TestChaosSinglePathRecovery exercises the reconnect path with no
// standing rescue path: the only connection is stalled until the
// health monitor degrades it, and the client must JOIN back through
// the cancelable-backoff loop once the link heals.
func TestChaosSinglePathRecovery(t *testing.T) {
	sc := Scenario{
		Name:          "single-path-stall-reconnect",
		Seed:          11,
		TransferBytes: 512 << 10, // ~82ms of transmission: the stall lands mid-flight
		NumStreams:    2,
		Schedule: func(env *Env) *netsim.FaultSchedule {
			fs := &netsim.FaultSchedule{}
			// Blackhole the only path long enough for the health monitor
			// to degrade it (~100ms in), then RST the first retransmission
			// once the stall lifts: the emulator's TCP would otherwise
			// gracefully drain the degraded connection's send buffer, and
			// the zombie would beat the JOIN rescue to the finish line.
			fs.StallBoth(env.LinkV4, 15*time.Millisecond, 150*time.Millisecond)
			fs.At(140*time.Millisecond, "arm-rst(v4,after=1)", func() {
				env.LinkV4.Use(&netsim.RSTInjector{AfterSegments: 1, Once: true, BothDirections: true})
			})
			return fs
		},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("single-path recovery failed: %v", err)
	}
	t.Logf("single-path: %s degraded=%d joins=%d virtual=%s",
		res.Replay(), res.Degraded, res.Joins, res.VirtualElapsed)
	if res.Degraded < 1 {
		t.Fatalf("stall was not detected proactively: degraded=%d (replay: %s)", res.Degraded, res.Replay())
	}
	if res.Joins < 1 {
		t.Fatalf("client never rejoined after the stall: joins=%d (replay: %s)", res.Joins, res.Replay())
	}
}

// TestSessionSurvivesForgedRSTSinglePath is the session-level RFC 5961
// complement: a middlebox that *observed* the stream forges an RST with
// the exact expected sequence number, which no in-TCP validation can
// reject — the connection dies. TCPLS absorbs even that: the client
// JOINs back on a fresh connection, replays unacked data, and the
// transfer completes exactly once.
func TestSessionSurvivesForgedRSTSinglePath(t *testing.T) {
	sc := Scenario{
		Name:          "single-path-forged-rst",
		Seed:          13,
		TransferBytes: 512 << 10,
		NumStreams:    2,
		Schedule: func(env *Env) *netsim.FaultSchedule {
			fs := &netsim.FaultSchedule{}
			// No stall, no loss: the only fault is a perfectly-aimed RST
			// mid-transfer on the session's only path.
			fs.At(20*time.Millisecond, "arm-rst(v4,after=30)", func() {
				env.LinkV4.Use(&netsim.RSTInjector{AfterSegments: 30, Once: true, BothDirections: true})
			})
			return fs
		},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("forged-RST recovery failed: %v", err)
	}
	t.Logf("forged-rst: %s joins=%d readLoopFailovers=%d virtual=%s",
		res.Replay(), res.Joins, res.ReadLoopFailovers, res.VirtualElapsed)
	if res.ReadLoopFailovers < 1 {
		t.Fatalf("the forged RST never killed the connection: readLoopFailovers=%d (replay: %s)",
			res.ReadLoopFailovers, res.Replay())
	}
	if res.Joins < 1 {
		t.Fatalf("client never rejoined after the RST: joins=%d (replay: %s)", res.Joins, res.Replay())
	}
}

// TestRandomScheduleDeterministic pins the replay contract: the same
// (seed, n) must render the identical schedule.
func TestRandomScheduleDeterministic(t *testing.T) {
	mk := func() string {
		n := netsim.New(netsim.WithSeed(42))
		defer n.Close()
		ch, sh := n.Host("c"), n.Host("s")
		l4 := n.AddLink(ch, sh, ClientV4, ServerV4, netsim.LinkConfig{Name: "v4"})
		l6 := n.AddLink(ch, sh, ClientV6, ServerV6, netsim.LinkConfig{Name: "v6"})
		env := &Env{Net: n, LinkV4: l4, LinkV6: l6}
		return RandomSchedule(42, env, 8).String()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("same seed rendered different schedules:\n%s\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty schedule rendered")
	}
}
