package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/netsim"
)

// RandomSchedule generates a seeded fault schedule of n events. The v4
// link takes the hard faults — flaps, silent stalls, forged RSTs, loss
// bursts — while the v6 link only ever suffers survivable interference
// (duplication, reordering, light loss), so every generated schedule
// leaves at least one viable address and the survival invariant must
// hold. The same (seed, n) always yields the same schedule.
func RandomSchedule(seed int64, env *Env, n int) *netsim.FaultSchedule {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	fs := &netsim.FaultSchedule{}
	for i := 0; i < n; i++ {
		at := time.Duration(20+rng.Intn(700)) * time.Millisecond
		switch rng.Intn(6) {
		case 0: // link flap: administrative down, visible drops
			down := time.Duration(30+rng.Intn(90)) * time.Millisecond
			fs.FlapLink(env.LinkV4, at, at+down)
		case 1: // silent stall: blackhole both directions
			stall := time.Duration(40+rng.Intn(120)) * time.Millisecond
			fs.StallBoth(env.LinkV4, at, at+stall)
		case 2: // one-direction stall: data flows, acks vanish
			dir := netsim.AtoB
			if rng.Intn(2) == 1 {
				dir = netsim.BtoA
			}
			stall := time.Duration(40+rng.Intn(120)) * time.Millisecond
			fs.StallDir(env.LinkV4, dir, at, at+stall)
		case 3: // forged RST after a burst of data segments
			after := 10 + rng.Intn(40)
			both := rng.Intn(2) == 1
			link := env.LinkV4
			fs.At(at, fmt.Sprintf("arm-rst(%s,after=%d)", link.Name(), after), func() {
				link.Use(&netsim.RSTInjector{AfterSegments: after, Once: true, BothDirections: both})
			})
		case 4: // loss burst on v4, then back to the baseline
			p := 0.01 + rng.Float64()*0.04
			burst := time.Duration(50+rng.Intn(150)) * time.Millisecond
			base := env.LinkV4.Loss()
			fs.LossAt(env.LinkV4, at, p)
			fs.LossAt(env.LinkV4, at+burst, base)
		case 5: // survivable interference on v6: dup or reorder
			link := env.LinkV6
			if rng.Intn(2) == 0 {
				every := 10 + rng.Intn(30)
				fs.At(at, fmt.Sprintf("arm-dup(%s,every=%d)", link.Name(), every), func() {
					link.Use(&netsim.Duplicator{EveryN: every})
				})
			} else {
				every := 8 + rng.Intn(24)
				fs.At(at, fmt.Sprintf("arm-reorder(%s,every=%d)", link.Name(), every), func() {
					link.Use(&netsim.Reorderer{EveryN: every})
				})
			}
		}
	}
	return fs
}
