package chaos

import (
	"net/netip"
	"runtime"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/core"
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/tcpnet"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

// TestGoroutineBudgetExact pins the per-session goroutine bill of the
// sharded runtime to an exact number — not a leak bound, an equality.
// The contract under test:
//
//   - A listener costs exactly SteadyGoroutines() goroutines, sessions
//     or not: 1 accept loop + AcceptWorkers handshake workers + the
//     shared runtime (1 timer loop + its event-loop workers).
//   - Each idle established session then costs exactly 2 more: one
//     client-side read loop and one server-side read loop. No
//     per-session timer, health, watchdog, or writer goroutine — that
//     is what the shared runtime collapsed.
//   - Both bills are fully refunded: closing the sessions returns the
//     process to listener-only, closing the listener to the baseline.
//
// If a future change attaches even one goroutine to the steady state of
// a session (or forgets to retire one), the equalities here move and
// the test fails. Wired into `make test-matrix`.
func TestGoroutineBudgetExact(t *testing.T) {
	if raceEnabled {
		// Exact-equality goroutine counts are what `make test-matrix`
		// pins on its dedicated non-race line; under -race the sessions
		// created here bloat the race runtime's sync shadow tables and
		// slow every later test in the package. The same code paths run
		// under -race via the core package and the overload gauntlet.
		t.Skip("goroutine equalities are gated on the non-race test-matrix line")
	}
	const nClients = 64

	n := netsim.New(netsim.WithSeed(11), netsim.WithTimeScale(1))
	defer n.Close()
	ch, sh := n.Host("client"), n.Host("server")
	n.AddLink(ch, sh, ClientV4, ServerV4,
		netsim.LinkConfig{Name: "v4", Delay: 200 * time.Microsecond, BandwidthBps: 1e9})
	cs := tcpnet.NewStack(ch, tcpnet.Config{})
	ss := tcpnet.NewStack(sh, tcpnet.Config{})
	defer cs.Close()
	defer ss.Close()
	tl, err := ss.Listen(netip.Addr{}, 443)
	if err != nil {
		t.Fatal(err)
	}

	// Everything above is harness; everything below is billed exactly.
	base := settledGoroutines(t)

	srvCfg := &core.Config{
		TLS:                &tls13.Config{Certificate: serverCert()},
		Clock:              n,
		FlightRecorderSize: -1,
	}
	lst := core.NewListener(tl, srvCfg)
	defer lst.Close()

	// The declared steady cost with default workers: 1 accept loop +
	// 32 handshake workers + 1 shared timer loop + 4 event-loop workers.
	const wantSteady = 1 + 32 + 1 + 4
	if sg := lst.SteadyGoroutines(); sg != wantSteady {
		t.Fatalf("SteadyGoroutines() = %d, want %d", sg, wantSteady)
	}
	// And the declaration must match the process: the listener may not
	// cost a single goroutine more than it claims.
	waitExactGoroutines(t, base+wantSteady, "after listener start")

	go func() { // app accept loop: +1, billed below
		for {
			if _, err := lst.Accept(); err != nil {
				return
			}
		}
	}()
	waitExactGoroutines(t, base+wantSteady+1, "after app accept loop")

	clients := make([]*core.Session, 0, nClients)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < nClients; i++ {
		c := core.NewClient(&core.Config{
			TLS:                &tls13.Config{InsecureSkipVerify: true},
			Clock:              n,
			FlightRecorderSize: -1,
		}, tcpnet.Dialer{Stack: cs})
		if _, err := c.Connect(netip.Addr{}, netip.AddrPortFrom(ServerV4, 443), 10*time.Second); err != nil {
			t.Fatalf("client %d connect: %v", i, err)
		}
		if err := c.Handshake(); err != nil {
			t.Fatalf("client %d handshake: %v", i, err)
		}
		clients = append(clients, c)
	}

	// The heart of the budget: exactly 2 goroutines per idle session —
	// client read loop + server read loop — and nothing else.
	waitExactGoroutines(t, base+wantSteady+1+2*nClients,
		"with 64 idle sessions (want exactly 2 per session)")

	// Full refund on session close: back to listener + app loop only.
	for _, c := range clients {
		c.Close()
	}
	clients = nil
	waitExactGoroutines(t, base+wantSteady+1, "after closing all sessions")

	// Full refund on listener close: the shared runtime drains (no
	// sessions are enrolled), workers exit, the app loop unblocks.
	lst.Close()
	waitExactGoroutines(t, base, "after listener close")
}

// settledGoroutines waits for the goroutine count to hold still across
// consecutive samples, then returns it.
func settledGoroutines(t *testing.T) int {
	t.Helper()
	last, stable := runtime.NumGoroutine(), 0
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur == last {
			if stable++; stable >= 5 {
				return cur
			}
		} else {
			last, stable = cur, 0
		}
	}
	t.Fatalf("goroutine count never settled (last %d)", last)
	return 0
}

// waitExactGoroutines waits for the count to reach want, then verifies
// it stays there — catching both a miss and a transient pass-through.
func waitExactGoroutines(t *testing.T, want int, when string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for runtime.NumGoroutine() != want {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count %s: %d, want exactly %d", when, runtime.NumGoroutine(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	if got := runtime.NumGoroutine(); got != want {
		t.Fatalf("goroutine count %s: %d, want exactly %d", when, got, want)
	}
}
