package chaos

import (
	"bytes"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// TestFig4FailoverTrace reruns the paper's Figure 4 experiment and
// asserts the failover story from the recorded trace alone — no
// callbacks, no session introspection: the v4 path degrades after the
// cut, closes as failed, and delivery resumes on the surviving path.
func TestFig4FailoverTrace(t *testing.T) {
	const failAt = 250 * time.Millisecond
	res, err := RunFig4(7, 4<<20, failAt)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceDropped != 0 {
		t.Fatalf("ring evicted %d events; raise TraceCapacity", res.TraceDropped)
	}
	if res.Joins < 1 {
		t.Fatalf("no JOIN recorded: joins=%d (replay: %s)", res.Joins, res.Replay())
	}

	// The schedule runs relative to the transfer start and the virtual
	// clock stretches under load (race detector, CI contention), so the
	// cut's trace-time is read off the trace itself: the emulator's
	// first drop_down event is the dead link eating a segment.
	cutT := time.Duration(-1)
	for _, ev := range res.Trace {
		if ev.Kind == telemetry.EvLinkDropDown {
			cutT = ev.Time
			break
		}
	}
	if cutT < 0 {
		t.Fatalf("no netsim:drop_down event — the v4 cut never bit (replay: %s)", res.Replay())
	}

	// 1. A path degrades, and only after the link went down.
	degIdx := -1
	for i, ev := range res.Trace {
		if ev.Kind == telemetry.EvPathDegraded {
			degIdx = i
			break
		}
	}
	if degIdx < 0 {
		t.Fatalf("no path:degraded event in %d-event trace (replay: %s)", len(res.Trace), res.Replay())
	}
	deg := res.Trace[degIdx]
	if deg.Time < cutT {
		t.Fatalf("path degraded at %v, before the v4 cut bit at %v", deg.Time, cutT)
	}

	// 2. The degraded endpoint closes that path as failed.
	closeIdx := -1
	for i := degIdx; i < len(res.Trace); i++ {
		ev := res.Trace[i]
		if ev.Kind == telemetry.EvPathClose && ev.EP == deg.EP && ev.Path == deg.Path && ev.A == 1 {
			closeIdx = i
			break
		}
	}
	if closeIdx < 0 {
		t.Fatalf("degraded path %d on %q never closed as failed (replay: %s)", deg.Path, deg.EP, res.Replay())
	}

	// 3. Delivery resumes: the server keeps receiving records after the
	// failed close, on a path other than its dead one.
	var deadSrvPath uint32
	for _, ev := range res.Trace {
		if ev.EP == "server" && ev.Kind == telemetry.EvPathClose && ev.A == 1 {
			deadSrvPath = ev.Path
			break
		}
	}
	resumed := false
	for _, ev := range res.Trace[closeIdx:] {
		if ev.EP == "server" && ev.Kind == telemetry.EvRecordRecv && ev.Path != deadSrvPath {
			resumed = true
			break
		}
	}
	if !resumed {
		t.Fatalf("no record:received on a surviving server path after the failed close (replay: %s)", res.Replay())
	}

	// 4. The goodput timeline shows the Fig. 4 shape: ramp-up, a dip to
	// zero after the cut, then recovery on the surviving path.
	const bin = 20 * time.Millisecond
	tl := telemetry.Timeline(res.Trace, bin, "server", "client")
	if len(tl) == 0 {
		t.Fatal("empty timeline")
	}
	var peakBefore, peakAfter int64
	dip := false
	for _, b := range tl {
		switch {
		case b.Start+bin <= cutT:
			if b.Bytes > peakBefore {
				peakBefore = b.Bytes
			}
		case b.Start >= cutT:
			if b.Bytes == 0 && !dip && b.Start < cutT+time.Second {
				dip = true
			}
			if dip && b.Bytes > peakAfter {
				peakAfter = b.Bytes
			}
		}
	}
	if peakBefore == 0 {
		t.Fatalf("no goodput before the cut (replay: %s)", res.Replay())
	}
	if !dip {
		t.Fatalf("no zero-goodput bin after the cut — failover dip missing (replay: %s)", res.Replay())
	}
	if peakAfter < peakBefore/2 {
		t.Fatalf("goodput never recovered: peak %d B/bin after dip vs %d before (replay: %s)",
			peakAfter, peakBefore, res.Replay())
	}

	// 5. The trace survives the JSONL round trip byte-for-byte, so the
	// same assertions hold offline on the exported file.
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, res.Trace); err != nil {
		t.Fatal(err)
	}
	back, err := telemetry.ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Trace) {
		t.Fatalf("round trip lost events: %d -> %d", len(res.Trace), len(back))
	}
	d2, j2, f2 := traceFailoverCounts(back)
	if d2 != res.Degraded || j2 != res.Joins || f2 != res.ReadLoopFailovers {
		t.Fatalf("counters diverge after round trip: %d/%d/%d vs %d/%d/%d",
			d2, j2, f2, res.Degraded, res.Joins, res.ReadLoopFailovers)
	}

	// 6. The latency histograms captured the run: handshake phases on
	// both roles plus the JOIN, time-to-first-byte, TCP connects, and —
	// this being the failover experiment — a non-empty blackout window
	// (last byte before the cut to first byte after recovery). All are
	// virtual-time nanoseconds, so bounds are deterministic modulo the
	// emulated link parameters: nothing in this run can legitimately
	// take longer than the whole (virtual) experiment.
	maxSane := int64(30 * time.Second)
	for _, name := range []string{
		"sessions.handshake_ns.client",
		"sessions.handshake_ns.server",
		"sessions.handshake_ns.join",
		"sessions.connect_ns",
		"sessions.tls_handshake_ns",
		"sessions.tcpls_ready_ns",
		"sessions.ttfb_ns",
		"sessions.failover_blackout_ns",
		"tcp.client.connect_ns",
	} {
		h := metricsHist(t, res.Metrics, name)
		if h.Count < 1 {
			t.Fatalf("%s never observed (replay: %s)", name, res.Replay())
		}
		if h.Min < 0 || h.Max <= 0 || h.Max > maxSane {
			t.Fatalf("%s out of sane bounds: min=%d max=%d (replay: %s)", name, h.Min, h.Max, res.Replay())
		}
	}
	if h := metricsHist(t, res.Metrics, "sessions.handshake_ns.join"); h.Count < 1 {
		t.Fatalf("JOIN handshake latency missing despite joins=%d", res.Joins)
	}
	// The blackout is bounded below too: the health monitor needs
	// several unanswered probe intervals before it degrades the path,
	// so a sub-probe-interval blackout would mean the window is wrong.
	if h := metricsHist(t, res.Metrics, "sessions.failover_blackout_ns"); h.Max < int64(time.Millisecond) {
		t.Fatalf("failover blackout %dns implausibly short (replay: %s)", h.Max, res.Replay())
	}
}

// metricsHist extracts a histogram snapshot from a Result.Metrics map,
// failing the test when the name is absent or not a histogram.
func metricsHist(t *testing.T, m map[string]any, name string) telemetry.HistogramSnapshot {
	t.Helper()
	v, ok := m[name]
	if !ok {
		t.Fatalf("metric %q not in snapshot", name)
	}
	h, ok := v.(telemetry.HistogramSnapshot)
	if !ok {
		t.Fatalf("metric %q is %T, not a histogram", name, v)
	}
	return h
}
