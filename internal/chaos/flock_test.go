package chaos

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// TestFlockGauntlet is the scale gate for the sharded server runtime.
// By default it runs the 1k-client smoke profile (part of `make check`
// via `make flock`); set FLOCK=1 for the full 10k-client run. Both
// profiles enforce the checked-in budgets in testdata/FLOCK_BUDGET.json
// — sessions/sec, bytes/sec, heap per session, goroutines per session —
// so a scaling regression fails CI the same way bench-check does.
func TestFlockGauntlet(t *testing.T) {
	if raceEnabled {
		// The budgets are calibrated for uninstrumented builds, and the
		// thousand sessions this creates bloat the race runtime's sync
		// shadow tables enough to flip marginal probe timings in the
		// gauntlets that run after it. Concurrency coverage of the same
		// code paths comes from the overload/adversary gauntlets and the
		// core package, all of which run under -race; the budgets are
		// enforced by the dedicated non-race `make flock` line.
		t.Skip("flock budgets are not meaningful under the race detector")
	}
	raw, err := os.ReadFile("testdata/FLOCK_BUDGET.json")
	if err != nil {
		t.Fatalf("flock budgets missing: %v", err)
	}
	var budgetFile struct {
		Comment  string                 `json:"comment"`
		Profiles map[string]FlockBudget `json:"profiles"`
	}
	if err := json.Unmarshal(raw, &budgetFile); err != nil {
		t.Fatalf("parse FLOCK_BUDGET.json: %v", err)
	}
	budgets := budgetFile.Profiles

	profile := "smoke"
	sc := FlockScenario{Name: "flock-smoke", Seed: 1}
	if os.Getenv("FLOCK") == "1" {
		profile = "full"
		sc = FlockScenario{
			Name:      "flock-full",
			Seed:      1,
			Hold:      9936, // + 32 migrators + 32 failovers = 10k held at peak
			Churn:     1000,
			Migrators: 32,
			Failovers: 32,
			TimeScale: 0.25,
			// ~2ms wall between arrivals keeps the offered handshake
			// load near (not past) the worker pool's service rate; the
			// overload gauntlet owns the past-saturation regime.
			MeanArrival: 8 * time.Millisecond,
			Timeout:     600 * time.Second,
		}
	}
	budget, ok := budgets[profile]
	if !ok {
		t.Fatalf("no %q profile in FLOCK_BUDGET.json", profile)
	}
	sc.Budget = budget

	res, err := RunFlock(sc)
	if err != nil {
		t.Fatalf("flock %s: %v", profile, err)
	}
	t.Logf("flock %s: peak=%d sessions, %.1f sessions/s, %.0f bytes/s virtual, "+
		"%d goroutines at peak, %d heap bytes/session, %d migrated, %d failover survivors, "+
		"%d churn departed (%d failed), %d bytes drained in %v virtual",
		profile, res.PeakSessions, res.SessionsPerSec, res.BytesPerSec,
		res.GoroutinesAtPeak, res.HeapPerSession, res.Migrated, res.FailoverSurvivors,
		res.ChurnDeparted, res.ChurnFailed, res.BytesDrained, res.VirtualElapsed)

	// Cross-checks beyond the budget envelope RunFlock enforces.
	if res.FailoverSurvivors != sc.withDefaults().Failovers {
		t.Fatalf("failover survivors = %d, want %d", res.FailoverSurvivors, sc.withDefaults().Failovers)
	}
	if res.ChurnFailed > 0 {
		t.Fatalf("%d churn clients failed to establish", res.ChurnFailed)
	}
	st := res.Stats
	if st.ConnsSeen != st.HandshakesStarted+st.RejectedPreTLS {
		t.Fatalf("accounting invariant: conns_seen=%d != handshakes_started=%d + rejected_pre_tls=%d",
			st.ConnsSeen, st.HandshakesStarted, st.RejectedPreTLS)
	}
}
