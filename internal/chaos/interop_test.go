package chaos

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

var updateInterop = flag.Bool("update", false, "rewrite the interop golden matrix")

const interopGoldenPath = "testdata/interop_golden.txt"

// parseInteropGolden reads a matrix in the Matrix() rendering back into
// cells. Unknown rows or stacks are an error — the golden and the code
// must agree on the gauntlet's shape.
func parseInteropGolden(t *testing.T, data string) map[string]map[string]InteropOutcome {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(data), "\n")
	if len(lines) < 2 {
		t.Fatalf("golden matrix too short: %d lines", len(lines))
	}
	header := strings.Fields(lines[0])
	if header[0] != "row" || len(header) != 1+len(InteropStacks) {
		t.Fatalf("golden header mismatch: %q", lines[0])
	}
	for i, s := range InteropStacks {
		if header[1+i] != s {
			t.Fatalf("golden stack column %d is %q, want %q", i, header[1+i], s)
		}
	}
	out := make(map[string]map[string]InteropOutcome)
	for _, line := range lines[1:] {
		f := strings.Fields(line)
		if len(f) != 1+len(InteropStacks) {
			t.Fatalf("golden row malformed: %q", line)
		}
		cells := make(map[string]InteropOutcome)
		for i, s := range InteropStacks {
			o := InteropOutcome(f[1+i])
			switch o {
			case OutcomePass, OutcomeDegrade, OutcomeFail:
			default:
				t.Fatalf("golden row %q: bad outcome %q", f[0], f[1+i])
			}
			cells[s] = o
		}
		out[f[0]] = cells
	}
	return out
}

func hasKind(events []telemetry.Event, kind telemetry.EventKind) bool {
	for _, ev := range events {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}

// TestInteropMatrix runs the middlebox gauntlet across all three stacks
// and enforces three properties:
//
//  1. Regression against the golden: no cell may get worse than the
//     checked-in matrix (pass > degrade > fail). Getting better is fine —
//     run with -update to ratchet the golden forward.
//  2. The paper's core claim, measured: TCPLS never does worse than
//     plain TLS/TCP in any row.
//  3. The degradations are the *typed* ladder, not luck: the
//     option-strip row's TCPLS trace carries session:degraded, and the
//     nat-rebind row's carries path:revalidate.
func TestInteropMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("interop gauntlet is not a -short test")
	}
	res := RunInterop()
	matrix := res.Matrix()
	t.Logf("measured interop matrix:\n%s", matrix)
	if d := res.Details(); d != "" {
		t.Logf("cell details:\n%s", d)
	}

	if *updateInterop {
		if err := os.MkdirAll(filepath.Dir(interopGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(interopGoldenPath, []byte(matrix), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", interopGoldenPath)
	}

	raw, err := os.ReadFile(interopGoldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	golden := parseInteropGolden(t, string(raw))

	// Shape check both ways: a row added to the gauntlet must be added to
	// the golden, and a deleted row must be removed from it.
	for _, row := range res.Rows {
		if _, ok := golden[row]; !ok {
			t.Errorf("row %q missing from golden — run with -update", row)
		}
	}
	for row := range golden {
		found := false
		for _, r := range res.Rows {
			if r == row {
				found = true
			}
		}
		if !found {
			t.Errorf("golden row %q no longer in the gauntlet", row)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	for _, row := range res.Rows {
		for _, stack := range InteropStacks {
			got := res.Cells[row][stack]
			want := golden[row][stack]
			if got.Outcome.rank() < want.rank() {
				t.Errorf("REGRESSION %s/%s: %s (was %s) — %s",
					row, stack, got.Outcome, want, got.Detail)
			}
		}
		// Paper claim: wherever plain TLS/TCP completes the transfer,
		// TCPLS must complete it too — degrading (shedding the extra
		// capabilities TLS never had) is allowed, failing is not.
		if res.Cells[row]["tls"].Outcome != OutcomeFail &&
			res.Cells[row]["tcpls"].Outcome == OutcomeFail {
			t.Errorf("row %s: tcpls failed where plain tls completed (%s) — %s",
				row, res.Cells[row]["tls"].Outcome, res.Cells[row]["tcpls"].Detail)
		}
	}

	// The option-strip degradation must be the typed fallback, visible in
	// the trace — not a silently tolerated corruption.
	if res.Cells["option-strip"]["tcpls"].Outcome == OutcomeDegrade {
		if !hasKind(res.Events["option-strip"], telemetry.EvSessionDegraded) {
			t.Error("option-strip degraded without a session:degraded trace event")
		}
	}
	// And the NAT-rebind row must show the re-validation probe machinery.
	if res.Cells["nat-rebind"]["tcpls"].Outcome != OutcomeFail {
		if !hasKind(res.Events["nat-rebind"], telemetry.EvPathRevalidate) {
			t.Error("nat-rebind row has no path:revalidate trace event")
		}
	}
}

// TestInteropGoldenInvariant re-checks the committed golden itself:
// every row must already encode "TCPLS >= plain TLS". This guards the
// -update path against ratcheting in a matrix that violates the claim.
func TestInteropGoldenInvariant(t *testing.T) {
	raw, err := os.ReadFile(interopGoldenPath)
	if err != nil {
		t.Skipf("no golden yet: %v", err)
	}
	golden := parseInteropGolden(t, string(raw))
	for row, cells := range golden {
		if cells["tls"] != OutcomeFail && cells["tcpls"] == OutcomeFail {
			t.Errorf("golden row %s: tcpls fails where plain tls completes (%s)",
				row, cells["tls"])
		}
	}
}
