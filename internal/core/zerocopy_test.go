package core

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
	"github.com/pluginized-protocols/gotcpls/internal/record"
)

// propertySeed returns the randomness seed for a property test and logs
// it so a failure can be replayed by hardcoding the value.
func propertySeed(t *testing.T) int64 {
	seed := time.Now().UnixNano()
	t.Logf("property seed: %d (set propertySeed to replay)", seed)
	return seed
}

// TestStreamNoBufferAliasing pins the copy-at-API-boundary rule on both
// ends of the data path. Send side: the caller's Write buffer must be
// safe to reuse the moment Write returns (the replay buffer would
// otherwise retransmit corrupted data after failover). Receive side:
// bytes returned by Read must not alias the pooled decrypted-record
// buffers, so clobbering them cannot corrupt data still queued.
func TestStreamNoBufferAliasing(t *testing.T) {
	v4, v6 := fastLinks()
	cliCfg, srvCfg := &Config{}, &Config{}
	e := dualStackEnv(t, v4, v6, cliCfg, srvCfg)
	cli, srv := e.connect(t, cliCfg)
	defer cli.Close()

	st, err := cli.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 8192)
	rng := rand.New(rand.NewSource(propertySeed(t)))
	rng.Read(msg)
	want := append([]byte(nil), msg...)

	if _, err := st.Write(msg); err != nil {
		t.Fatal(err)
	}
	// Send-side aliasing: the 1-2ms link means Write returns well before
	// delivery; if the stream retained msg, this clobber would arrive.
	for i := range msg {
		msg[i] = 0xAA
	}

	waitFor(t, 5*time.Second, func() bool { return len(srv.Streams()) > 0 },
		"stream never reached the server")
	sst := srv.Streams()[0]

	// Receive-side aliasing: read a prefix, clobber the returned bytes,
	// then read the rest. If Read handed out views into the record
	// buffers (or recycled a buffer still queued), the clobber or the
	// pool reuse would corrupt the remainder.
	got := make([]byte, len(want))
	if _, err := io.ReadFull(sst, got[:100]); err != nil {
		t.Fatal(err)
	}
	head := append([]byte(nil), got[:100]...)
	for i := 0; i < 100; i++ {
		got[i] = 0x55
	}
	if _, err := io.ReadFull(sst, got[100:]); err != nil {
		t.Fatal(err)
	}
	copy(got[:100], head)
	if !bytes.Equal(got, want) {
		t.Fatal("received bytes differ from the original Write input")
	}
}

// TestReassemblyRandomizedProperty drives the receive queue white-box
// with a randomized segmentation of a reference buffer — reordered,
// duplicated, and overlapping, every chunk backed by its own pooled
// buffer — and checks the application reads back the exact bytes. Run
// with the bufpool leak checker to catch lost or double-recycled
// buffers on the trim/duplicate paths.
func TestReassemblyRandomizedProperty(t *testing.T) {
	v4, v6 := fastLinks()
	// Acks off on the server so white-box deliver(nil, ...) never needs a
	// path connection to write an Ack on.
	cliCfg, srvCfg := &Config{DisableAcks: true}, &Config{DisableAcks: true}
	e := dualStackEnv(t, v4, v6, cliCfg, srvCfg)
	cli, srv := e.connect(t, cliCfg)
	defer cli.Close()

	st, err := cli.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("x")); err != nil { // establish the peer stream
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return len(srv.Streams()) > 0 },
		"stream never reached the server")
	sst := srv.Streams()[0]
	var skip [1]byte
	if _, err := io.ReadFull(sst, skip[:]); err != nil {
		t.Fatal(err)
	}
	const base = uint64(1) // recvNext after the establishment byte

	rng := rand.New(rand.NewSource(propertySeed(t)))
	ref := make([]byte, 64<<10)
	rng.Read(ref)

	// Cut ref into contiguous segments, then build a delivery schedule:
	// every segment once, plus duplicates and random overlapping slices.
	type span struct{ off, end int }
	var spans []span
	for off := 0; off < len(ref); {
		n := 1 + rng.Intn(2048)
		if off+n > len(ref) {
			n = len(ref) - off
		}
		spans = append(spans, span{off, off + n})
		off += n
	}
	sched := append([]span(nil), spans...)
	for i := 0; i < len(spans)/4; i++ {
		sched = append(sched, spans[rng.Intn(len(spans))]) // duplicate
		o := rng.Intn(len(ref))
		n := 1 + rng.Intn(4096)
		if o+n > len(ref) {
			n = len(ref) - o
		}
		sched = append(sched, span{o, o + n}) // overlapping slice
	}
	rng.Shuffle(len(sched), func(i, j int) { sched[i], sched[j] = sched[j], sched[i] })

	for _, sp := range sched {
		owner := bufpool.Get(sp.end - sp.off)
		copy(owner, ref[sp.off:sp.end])
		sst.deliver(nil, &record.StreamChunk{
			StreamID: sst.ID(), Offset: base + uint64(sp.off), Data: owner,
		}, owner)
	}
	sst.deliver(nil, &record.StreamChunk{
		StreamID: sst.ID(), Offset: base + uint64(len(ref)), Fin: true,
	}, nil)

	got := make([]byte, len(ref))
	if _, err := io.ReadFull(sst, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("reassembled stream differs from the reference bytes")
	}
	if _, err := sst.Read(got[:1]); err != io.EOF {
		t.Fatalf("read past FIN = %v, want io.EOF", err)
	}
	if s := sst.state(); s.OOO != 0 || s.OOOBytes != 0 || s.RecvBuffered != 0 {
		t.Fatalf("receive state not drained: %+v", s)
	}
}
