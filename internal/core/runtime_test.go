package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeOwner is a minimal loopOwner for event-loop tests.
type fakeOwner struct {
	closed atomic.Bool
}

func (o *fakeOwner) Closed() bool { return o.closed.Load() }

// TestEventLoopAccountingExact pins the delivery ledger: after the loop
// goes idle, every submitted task is accounted for exactly once as
// delivered, skipped, or dropped.
func TestEventLoopAccountingExact(t *testing.T) {
	e := newEventLoop(4, 64)
	owner := &fakeOwner{}
	var ran atomic.Uint64
	const n = 500
	fallbacks := 0
	for i := 0; i < n; i++ {
		if !e.submit(owner, func() { ran.Add(1) }) {
			fallbacks++ // queue momentarily full; asyncExec would go fn()
		}
	}
	e.stop() // drains the queue, waits for workers
	sub, del, skip, drop := e.submitted.Load(), e.delivered.Load(), e.skipped.Load(), e.dropped.Load()
	if sub != n {
		t.Fatalf("submitted = %d, want %d", sub, n)
	}
	if sub != del+skip+drop {
		t.Fatalf("ledger leak: submitted %d != delivered %d + skipped %d + dropped %d",
			sub, del, skip, drop)
	}
	if drop != uint64(fallbacks) {
		t.Fatalf("dropped = %d but submit returned false %d times", drop, fallbacks)
	}
	if ran.Load() != del {
		t.Fatalf("%d fns executed but %d counted delivered", ran.Load(), del)
	}
}

// TestEventLoopPropertyInterleaving is the randomized-interleaving
// property test for the shared event loop: several owners each receive
// a random script of timer-fire / readable / writable / close events
// from concurrent submitters, and for every seed it must hold that
//
//   - the ledger is exact (submitted == delivered + skipped + dropped),
//   - no event is lost: every submit either executes, is counted
//     skipped, or is counted dropped (the asyncExec fallback's cue),
//   - nothing is delivered after its owner closed: a task submitted
//     after close must never execute.
//
// The seed is logged so a failing interleaving replays exactly.
func TestEventLoopPropertyInterleaving(t *testing.T) {
	seed := time.Now().UnixNano()
	t.Logf("interleaving seed: %d (rerun with eventLoopProperty(t, %d))", seed, seed)
	eventLoopProperty(t, seed)
}

// TestEventLoopPropertyPinnedSeeds replays a few fixed interleavings so
// the property is exercised deterministically on every run too.
func TestEventLoopPropertyPinnedSeeds(t *testing.T) {
	for _, seed := range []int64{1, 42, 0xC50C50} {
		eventLoopProperty(t, seed)
	}
}

type loopEventKind int

const (
	evTimerFire loopEventKind = iota
	evReadable
	evWritable
	evClose
	numLoopEventKinds
)

func eventLoopProperty(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// Small worker pool + small queue: overflow (drop) and post-close
	// (skip) paths are both routinely hit, not just the happy path.
	e := newEventLoop(2, 8)
	const owners = 6
	var lateDelivered atomic.Uint64
	var executed atomic.Uint64
	fallbacks := uint64(0)
	var fallbackMu sync.Mutex

	var wg sync.WaitGroup
	for o := 0; o < owners; o++ {
		wg.Add(1)
		script := make([]loopEventKind, 30+rng.Intn(50))
		closeAt := rng.Intn(len(script))
		for i := range script {
			script[i] = loopEventKind(rng.Intn(int(numLoopEventKinds - 1))) // close is positional
		}
		script[closeAt] = evClose
		jitter := rng.Int63()
		go func(script []loopEventKind, jitter int64) {
			defer wg.Done()
			lrng := rand.New(rand.NewSource(jitter))
			owner := &fakeOwner{}
			for _, ev := range script {
				if ev == evClose {
					owner.closed.Store(true)
					continue
				}
				// Captured before submit: closed here happens-before the
				// worker's Closed() check, so execution would be a real
				// after-close delivery, not a benign race.
				closedAtSubmit := owner.Closed()
				ok := e.submit(owner, func() {
					executed.Add(1)
					if closedAtSubmit {
						lateDelivered.Add(1)
					}
				})
				if !ok {
					fallbackMu.Lock()
					fallbacks++
					fallbackMu.Unlock()
				}
				if lrng.Intn(4) == 0 {
					time.Sleep(time.Duration(lrng.Intn(50)) * time.Microsecond)
				}
			}
		}(script, jitter)
	}
	wg.Wait()
	e.stop()

	sub, del, skip, drop := e.submitted.Load(), e.delivered.Load(), e.skipped.Load(), e.dropped.Load()
	if sub != del+skip+drop {
		t.Fatalf("seed %d: ledger leak: submitted %d != delivered %d + skipped %d + dropped %d",
			seed, sub, del, skip, drop)
	}
	if drop != fallbacks {
		t.Fatalf("seed %d: dropped = %d but submit refused %d times — a refused submit must be countable so asyncExec can fall back",
			seed, drop, fallbacks)
	}
	if n := lateDelivered.Load(); n != 0 {
		t.Fatalf("seed %d: %d events delivered after their owner closed", seed, n)
	}
	if executed.Load() != del {
		t.Fatalf("seed %d: %d fns executed but %d counted delivered", seed, executed.Load(), del)
	}
}

// TestEventLoopStopRefusesNewWork: submits after stop are counted
// drops, not silently lost and not executed.
func TestEventLoopStopRefusesNewWork(t *testing.T) {
	e := newEventLoop(1, 4)
	e.stop()
	var ran atomic.Bool
	if e.submit(&fakeOwner{}, func() { ran.Store(true) }) {
		t.Fatal("submit accepted after stop")
	}
	if ran.Load() {
		t.Fatal("task ran after stop")
	}
	if e.dropped.Load() != 1 {
		t.Fatalf("dropped = %d, want 1", e.dropped.Load())
	}
}

// TestServerRuntimeDrainsAfterLastSession: shutdown marks the runtime
// draining but the loops keep running while any session is enrolled —
// sessions outlive their listener by design — and exit only after the
// last one unenrolls.
func TestServerRuntimeDrainsAfterLastSession(t *testing.T) {
	cfg := &Config{Clock: realClock{}, FlightRecorderSize: -1}
	rt := newServerRuntime(cfg)
	cfg.runtime = rt
	s := newSession(RoleServer, cfg, nil)
	rt.enroll(s)
	rt.shutdown()

	// Still serving the enrolled session: the loop must not stop.
	time.Sleep(4 * rt.tick)
	if rt.loop.stopped.Load() {
		t.Fatal("runtime stopped while a session was still enrolled")
	}

	s.teardown(ErrSessionClosed) // unenrolls via cfg.runtime
	waitFor(t, 5*time.Second, func() bool {
		return rt.loop.stopped.Load()
	}, "runtime did not drain after the last session ended")
}

// TestServerRuntimeEnrollIdempotent: re-enrolling a session neither
// duplicates its entry nor inflates the enroll counter.
func TestServerRuntimeEnrollIdempotent(t *testing.T) {
	cfg := &Config{Clock: realClock{}, FlightRecorderSize: -1}
	rt := newServerRuntime(cfg)
	defer rt.shutdown()
	s := newSession(RoleServer, cfg, nil)
	rt.enroll(s)
	rt.enroll(s)
	rt.mu.Lock()
	n := len(rt.entries)
	rt.mu.Unlock()
	if n != 1 {
		t.Fatalf("double enroll left %d entries, want 1", n)
	}
	if rt.enrolls.Load() != 1 {
		t.Fatalf("enrolls = %d, want 1", rt.enrolls.Load())
	}
	rt.unenroll(s)
}
