package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// TestOverloadErrorWrapping: every admission rejection must match the
// ErrServerOverloaded sentinel through errors.Is and expose its budget
// through errors.As, even when wrapped.
func TestOverloadErrorWrapping(t *testing.T) {
	base := &OverloadError{Resource: "sessions", Limit: 256}
	if !errors.Is(base, ErrServerOverloaded) {
		t.Fatal("OverloadError does not match ErrServerOverloaded")
	}
	wrapped := fmt.Errorf("accept: %w", base)
	if !errors.Is(wrapped, ErrServerOverloaded) {
		t.Fatal("wrapped OverloadError does not match the sentinel")
	}
	var oe *OverloadError
	if !errors.As(wrapped, &oe) || oe.Resource != "sessions" || oe.Limit != 256 {
		t.Fatalf("errors.As lost the budget: %#v", oe)
	}
	if errors.Is(base, ErrLimitExceeded) {
		t.Fatal("server overload must not alias the per-session limit sentinel")
	}
}

// TestServerBudgetsDefaults: zero fields take documented defaults, set
// fields are preserved, and derived budgets scale off MaxSessions.
func TestServerBudgetsDefaults(t *testing.T) {
	b := ServerBudgets{}.withDefaults()
	if b.MaxSessions != DefaultMaxSessions {
		t.Fatalf("MaxSessions = %d, want %d", b.MaxSessions, DefaultMaxSessions)
	}
	if b.MaxTotalPaths != 4*DefaultMaxSessions || b.MaxTotalStreams != 64*DefaultMaxSessions {
		t.Fatalf("derived budgets wrong: paths=%d streams=%d", b.MaxTotalPaths, b.MaxTotalStreams)
	}
	if b.MaxHandshakes != DefaultMaxHandshakes || b.MaxBufferedBytes != DefaultMaxBufferedBytes {
		t.Fatalf("handshakes=%d buffered=%d", b.MaxHandshakes, b.MaxBufferedBytes)
	}
	if b.LowWaterFrac != DefaultLowWaterFrac || b.IdleAfter != DefaultIdleAfter {
		t.Fatalf("lowWater=%v idleAfter=%v", b.LowWaterFrac, b.IdleAfter)
	}
	if b.MaxGoroutines != 0 {
		t.Fatal("goroutine budget must default to disabled")
	}

	p := ServerBudgets{MaxSessions: 10, MaxBufferedBytes: -1, LowWaterFrac: 1.5}.withDefaults()
	if p.MaxSessions != 10 || p.MaxTotalPaths != 40 || p.MaxTotalStreams != 640 {
		t.Fatalf("partial defaults wrong: %+v", p)
	}
	if p.MaxBufferedBytes != -1 {
		t.Fatal("negative MaxBufferedBytes (disabled) must be preserved")
	}
	if p.LowWaterFrac != DefaultLowWaterFrac {
		t.Fatalf("out-of-range LowWaterFrac not defaulted: %v", p.LowWaterFrac)
	}
}

// TestNilAccountingDisablesChecks: a nil ledger is the documented
// client/single-session configuration — every operation must be a no-op.
func TestNilAccountingDisablesChecks(t *testing.T) {
	var a *Accounting
	if err := a.admitConn(); err != nil {
		t.Fatal(err)
	}
	if err := a.beginHandshake(); err != nil {
		t.Fatal(err)
	}
	a.endHandshake()
	if err := a.admitSession(nil); err != nil {
		t.Fatal(err)
	}
	if err := a.acquirePath(); err != nil {
		t.Fatal(err)
	}
	a.releasePath()
	if err := a.acquireStream(); err != nil {
		t.Fatal(err)
	}
	a.releaseStreams(1)
	if !a.hasPathCapacity() {
		t.Fatal("nil ledger must always report path capacity")
	}
	if st := a.Stats(); !st.GateOpen {
		t.Fatal("nil ledger must report an open gate")
	}
}

// acctSession builds a bare admitted session for ledger tests (no
// network, no listener).
func acctSession(t *testing.T, a *Accounting) *Session {
	t.Helper()
	s := newSession(RoleServer, &Config{Accounting: a}, nil)
	if err := a.admitSession(s); err != nil {
		t.Fatalf("admitSession: %v", err)
	}
	t.Cleanup(func() { s.teardown(ErrSessionClosed) })
	return s
}

// TestAdmissionHysteresis: the gate closes at MaxSessions and reopens
// only at the low-water mark, not one session below the cap — a server
// at the boundary must not thrash open/closed per connection.
func TestAdmissionHysteresis(t *testing.T) {
	a := NewAccounting(ServerBudgets{MaxSessions: 4, LowWaterFrac: 0.5, IdleAfter: time.Hour})
	var ss []*Session
	for i := 0; i < 4; i++ {
		if err := a.admitConn(); err != nil {
			t.Fatalf("admitConn %d below cap: %v", i, err)
		}
		ss = append(ss, acctSession(t, a))
	}
	err := a.admitConn()
	if !errors.Is(err, ErrServerOverloaded) {
		t.Fatalf("admitConn at cap: got %v, want ErrServerOverloaded", err)
	}
	if st := a.Stats(); st.GateOpen || st.AdmissionCloses != 1 {
		t.Fatalf("gate should have closed once: %+v", st)
	}

	// 4 -> 3: still above low water (2); the gate must stay closed.
	ss[0].teardown(ErrSessionClosed)
	if err := a.admitConn(); !errors.Is(err, ErrServerOverloaded) {
		t.Fatalf("gate reopened above low water: %v", err)
	}

	// 3 -> 2: at low water; the gate reopens and admissions resume.
	ss[1].teardown(ErrSessionClosed)
	if st := a.Stats(); !st.GateOpen {
		t.Fatalf("gate still closed at low water: %+v", st)
	}
	if err := a.admitConn(); err != nil {
		t.Fatalf("admitConn after reopen: %v", err)
	}
	if st := a.Stats(); st.AdmissionCloses != 1 || st.SessionsHWM != 4 {
		t.Fatalf("counters wrong after episode: %+v", st)
	}
}

// TestAdmitSessionExactCap: the increment-then-check slot claim is
// exact — racing admissions past the cap roll back instead of leaking a
// phantom session into the gauge.
func TestAdmitSessionExactCap(t *testing.T) {
	a := NewAccounting(ServerBudgets{MaxSessions: 2, IdleAfter: time.Hour})
	acctSession(t, a)
	acctSession(t, a)
	s := newSession(RoleServer, &Config{Accounting: a}, nil)
	defer s.teardown(ErrSessionClosed)
	err := a.admitSession(s)
	if !errors.Is(err, ErrServerOverloaded) {
		t.Fatalf("admitSession past cap: %v", err)
	}
	if n := a.Stats().Sessions; n != 2 {
		t.Fatalf("rejected admission leaked into the gauge: %d", n)
	}
	// The loser was never admitted: its teardown must not decrement.
	s.teardown(ErrSessionClosed)
	if n := a.Stats().Sessions; n != 2 {
		t.Fatalf("unadmitted teardown decremented the gauge: %d", n)
	}
}

// TestHandshakeBudget: handshakes-in-flight is a guaranteed reserve
// with rollback, released however the handshake ends.
func TestHandshakeBudget(t *testing.T) {
	a := NewAccounting(ServerBudgets{MaxHandshakes: 2})
	if err := a.beginHandshake(); err != nil {
		t.Fatal(err)
	}
	if err := a.beginHandshake(); err != nil {
		t.Fatal(err)
	}
	err := a.beginHandshake()
	if !errors.Is(err, ErrServerOverloaded) {
		t.Fatalf("3rd handshake: %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Resource != "handshakes" || oe.Limit != 2 {
		t.Fatalf("wrong budget named: %#v", oe)
	}
	if hs := a.Stats().Handshakes; hs != 2 {
		t.Fatalf("rejected reserve leaked: %d", hs)
	}
	a.endHandshake()
	if err := a.beginHandshake(); err != nil {
		t.Fatalf("slot not released: %v", err)
	}
}

// TestPathStreamBudgets: global path/stream slots are exact, typed, and
// the JOIN pre-check refuses without consuming anything.
func TestPathStreamBudgets(t *testing.T) {
	a := NewAccounting(ServerBudgets{MaxSessions: 8, MaxTotalPaths: 2, MaxTotalStreams: 3})
	for i := 0; i < 2; i++ {
		if err := a.acquirePath(); err != nil {
			t.Fatalf("path %d: %v", i, err)
		}
	}
	if !errors.Is(a.acquirePath(), ErrServerOverloaded) {
		t.Fatal("3rd path slot granted past budget")
	}
	if a.hasPathCapacity() {
		t.Fatal("JOIN pre-check claims capacity at the cap")
	}
	if rj := a.Stats().RejectedJoins; rj != 1 {
		t.Fatalf("rejected_joins = %d, want 1", rj)
	}
	a.releasePath()
	if !a.hasPathCapacity() {
		t.Fatal("JOIN pre-check stuck after release")
	}

	for i := 0; i < 3; i++ {
		if err := a.acquireStream(); err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
	}
	err := a.acquireStream()
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Resource != "streams" {
		t.Fatalf("4th stream: %v", err)
	}
	a.releaseStreams(3)
	if n := a.Stats().Streams; n != 0 {
		t.Fatalf("stream gauge after release = %d", n)
	}
}

// TestShedNewestIdleFirst: within the idle wave the youngest session
// goes first — it has the least invested state — and the pass stops at
// the low-water mark instead of draining every candidate.
func TestShedNewestIdleFirst(t *testing.T) {
	a := NewAccounting(ServerBudgets{MaxSessions: 4, LowWaterFrac: 0.76, IdleAfter: time.Hour})
	idleOld := acctSession(t, a)
	idleNew := acctSession(t, a)
	busy := acctSession(t, a)
	fresh := acctSession(t, a)

	stale := time.Now().Add(-2 * time.Hour).UnixNano()
	idleOld.lastActive.Store(stale)
	idleNew.lastActive.Store(stale)
	// busy is stale too, but holds unacked data: a mid-transfer session
	// is protected no matter how long the peer pauses.
	busy.lastActive.Store(stale)
	st, err := busy.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	st.unackedLen = 100
	st.mu.Unlock()
	_ = fresh // recent data activity: protected

	a.shedPass() // low water = int(0.76*4) = 3: shed exactly one

	if !idleNew.Closed() {
		t.Fatal("newest idle session survived the pass")
	}
	if !errors.Is(idleNew.Err(), ErrServerOverloaded) {
		t.Fatalf("shed error = %v, want ErrServerOverloaded", idleNew.Err())
	}
	if idleOld.Closed() || busy.Closed() || fresh.Closed() {
		t.Fatal("pass shed beyond the low-water mark")
	}
	if st := a.Stats(); st.ShedIdle != 1 || st.ShedDegraded != 0 || st.Sessions != 3 {
		t.Fatalf("stats after pass: %+v", st)
	}
}

// TestShedPriorityOrder: idle sessions go before degraded ones, and a
// healthy session with data in flight is never shed even when the pass
// cannot reach the low-water mark. Event order proves the waves.
func TestShedPriorityOrder(t *testing.T) {
	ring := telemetry.NewRingSink(64)
	tr := telemetry.NewTracer(telemetry.WithSink(ring))
	a := NewAccounting(ServerBudgets{MaxSessions: 4, LowWaterFrac: 0.1, IdleAfter: time.Hour})
	a.attachTracer(tr)

	idle := acctSession(t, a)
	degraded := acctSession(t, a)
	busy := acctSession(t, a)

	idle.lastActive.Store(time.Now().Add(-2 * time.Hour).UnixNano())
	degraded.mu.Lock()
	degraded.plainMode = true // recent activity, but running degraded
	degraded.mu.Unlock()
	busy.lastActive.Store(time.Now().Add(-2 * time.Hour).UnixNano())
	st, err := busy.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	st.unackedLen = 1
	st.mu.Unlock()

	a.shedPass() // low water 0: sheds everything eligible

	if !idle.Closed() || !degraded.Closed() {
		t.Fatal("eligible sessions survived")
	}
	if busy.Closed() {
		t.Fatal("shed a healthy session with data in flight")
	}
	var shedClasses []string
	for _, ev := range ring.Events() {
		if ev.Kind == telemetry.EvSessionShed {
			shedClasses = append(shedClasses, ev.S)
		}
	}
	if len(shedClasses) != 2 || shedClasses[0] != "idle" || shedClasses[1] != "degraded" {
		t.Fatalf("shed order = %v, want [idle degraded]", shedClasses)
	}
	if st := a.Stats(); st.ShedIdle != 1 || st.ShedDegraded != 1 || st.Sessions != 1 {
		t.Fatalf("stats after pass: %+v", st)
	}
}

// TestShedReleasesReopensGate: an overload episode end to end — cap
// hit, gate closed, shed pass reclaims idle sessions, the release
// crosses the low-water mark and the gate reopens on its own.
func TestShedReleasesReopensGate(t *testing.T) {
	a := NewAccounting(ServerBudgets{MaxSessions: 4, LowWaterFrac: 0.5, IdleAfter: time.Hour})
	stale := time.Now().Add(-2 * time.Hour).UnixNano()
	for i := 0; i < 4; i++ {
		acctSession(t, a).lastActive.Store(stale)
	}
	if err := a.admitConn(); !errors.Is(err, ErrServerOverloaded) {
		t.Fatalf("cap not enforced: %v", err)
	}
	// admitConn closed the gate and requested a background shed pass.
	waitFor(t, 5*time.Second, func() bool { return a.Stats().GateOpen },
		"shed pass never reopened the admission gate")
	st := a.Stats()
	if st.Sessions != 2 { // low water = 2
		t.Fatalf("sessions after shed = %d, want 2", st.Sessions)
	}
	if st.ShedIdle != 2 {
		t.Fatalf("shed_idle = %d, want 2", st.ShedIdle)
	}
	if err := a.admitConn(); err != nil {
		t.Fatalf("admission still refused after recovery: %v", err)
	}
}
