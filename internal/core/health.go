package core

import (
	"sync"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/record"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// Path health monitoring: lightweight PING/PONG probes over the secure
// channel give every path an RTT estimate and a liveness signal. A path
// that stops answering probes is failed over *proactively* — the paper's
// §2.1 failover triggered by a health timeout instead of waiting for the
// transport's read loop to error, which on a silently blackholed path
// (stalled middlebox, dead link with no RST) can take many retransmission
// timeouts.

// defaultHealthFailAfter is how many consecutive unanswered probes mark
// a path dead when Config.HealthFailAfter is 0.
const defaultHealthFailAfter = 3

// pathHealth is the probe bookkeeping for one pathConn. All times are
// wall-clock internally; snapshots convert to virtual time.
type pathHealth struct {
	mu          sync.Mutex
	outstanding map[uint32]time.Time // probe seq -> send time
	srtt        time.Duration        // EWMA of probe RTTs (wall)
	probesSent  uint64
	pongsRecv   uint64
	degraded    bool
}

// PathHealth is a snapshot of one path's probe state. Durations are in
// virtual time when the session clock supports conversion.
type PathHealth struct {
	PathID        uint32
	SRTT          time.Duration
	ProbesSent    uint64
	PongsReceived uint64
	// Outstanding counts probes sent but not yet answered — the health
	// monitor degrades the path when this reaches HealthFailAfter.
	Outstanding int
	Degraded    bool
}

func (h *pathHealth) noteSent(seq uint32, now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.outstanding == nil {
		h.outstanding = make(map[uint32]time.Time)
	}
	h.outstanding[seq] = now
	h.probesSent++
}

// notePong matches a pong to its probe and returns the wall-clock RTT
// sample (ok=false for unmatched/duplicate pongs).
func (h *pathHealth) notePong(seq uint32, now time.Time) (time.Duration, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sent, ok := h.outstanding[seq]
	if !ok {
		return 0, false
	}
	delete(h.outstanding, seq)
	h.pongsRecv++
	rtt := now.Sub(sent)
	if rtt < 0 {
		rtt = 0
	}
	if h.srtt == 0 {
		h.srtt = rtt
	} else {
		h.srtt = (7*h.srtt + rtt) / 8 // RFC 6298-style smoothing
	}
	return rtt, true
}

// isOutstanding reports whether a specific probe is still unanswered —
// the re-validation deadline checks exactly the probe it sent.
func (h *pathHealth) isOutstanding(seq uint32) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.outstanding[seq]
	return ok
}

func (h *pathHealth) outstandingCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.outstanding)
}

func (h *pathHealth) markDegraded() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.degraded {
		return false
	}
	h.degraded = true
	return true
}

// startHealthMonitor launches the probe loop once, if enabled.
func (s *Session) startHealthMonitor() {
	if s.cfg.HealthProbeInterval <= 0 {
		return
	}
	s.healthOnce.Do(func() { go s.healthLoop() })
}

// healthLoop probes every live path each interval and degrades paths
// whose unanswered-probe count crosses the threshold. It exits when the
// session closes. Sessions enrolled in a server runtime never run this
// loop — the runtime's shared timer loop calls healthSweep instead.
func (s *Session) healthLoop() {
	for {
		if !s.sleepCancelable(s.cfg.HealthProbeInterval) {
			return // session closed
		}
		s.healthSweep()
	}
}

// healthSweep runs one probe round over the live paths: shared by the
// standalone healthLoop and the server runtime's timer loop, so it must
// never block. Probes are noted outstanding *here*, not when the write
// executes — a probe whose write never happens (wedged pool, stalled
// path) is exactly as unanswered as one the network ate, and counting
// it is what guarantees the degrade threshold is still reached when the
// write side is the broken part.
func (s *Session) healthSweep() {
	failAfter := s.cfg.HealthFailAfter
	if failAfter <= 0 {
		failAfter = defaultHealthFailAfter
	}
	for _, pc := range s.livePaths() {
		if pc.plain {
			// A plain path has no control channel to probe; its only
			// liveness signal is the TLS read loop erroring.
			continue
		}
		if pc.health.outstandingCount() >= failAfter {
			// Degrade on a dedicated goroutine: it aborts the path and may
			// replay onto a survivor — blocking work that must wedge
			// neither the timer loop nor the worker pool (whose workers
			// may themselves be blocked writing to this very path; the
			// abort is what frees them). markDegraded dedupes re-spawns.
			go s.degradePath(pc)
			continue
		}
		seq := s.probeSeq.Add(1)
		pc.health.noteSent(seq, time.Now())
		s.emit(telemetry.Event{
			Kind: telemetry.EvHealthPing,
			Path: pc.id,
			A:    int64(seq),
		})
		// The write goes to the shared worker pool (or, without a runtime
		// or with a full queue, a transient goroutine): on a stalled path
		// the transport's send buffer eventually fills and the write
		// blocks until the path is closed — the sweep itself never wedges.
		s.asyncExec(func() { pc.writeControl(record.Ping{Seq: seq}) })
	}
}

// degradePath proactively fails over a path that stopped answering
// probes: close it with ErrPathUnhealthy and run the ordinary failure
// path (replay onto a survivor, or reconnect).
func (s *Session) degradePath(pc *pathConn) {
	if !pc.health.markDegraded() {
		return
	}
	s.ctr.degraded.Add(1)
	s.emit(telemetry.Event{
		Kind: telemetry.EvPathDegraded,
		Path: pc.id,
		A:    int64(pc.health.outstandingCount()),
	})
	if cb := s.cfg.Callbacks.PathDegraded; cb != nil {
		cb(pc.id, ErrPathUnhealthy)
	}
	pc.close(ErrPathUnhealthy)
	s.handleConnFailure(pc, ErrPathUnhealthy, false)
}

// handlePong ingests a probe answer on pc.
func (pc *pathConn) handlePong(seq uint32) {
	rtt, ok := pc.health.notePong(seq, time.Now())
	if !ok {
		return
	}
	s := pc.session
	pc.health.mu.Lock()
	srtt := pc.health.srtt
	pc.health.mu.Unlock()
	s.emit(telemetry.Event{
		Kind: telemetry.EvHealthPong,
		Path: pc.id,
		A:    int64(seq),
		B:    int64(s.scaleToVirtual(rtt)),
		C:    int64(s.scaleToVirtual(srtt)),
	})
}

// virtualSince converts a wall-clock elapsed time into virtual time when
// the session clock knows the emulation scale (netsim.Network does).
func (s *Session) virtualSince(t time.Time) time.Duration {
	return virtualSinceClock(s.cfg.Clock, t)
}

// scaleToVirtual converts a wall-clock duration into virtual time.
func (s *Session) scaleToVirtual(d time.Duration) time.Duration {
	// ScaleDuration maps virtual -> wall; invert via a unit probe.
	unit := s.cfg.Clock.ScaleDuration(time.Second)
	if unit <= 0 {
		return d
	}
	return time.Duration(float64(d) * float64(time.Second) / float64(unit))
}

// PathHealthSnapshot reports the probe state of one live path.
func (s *Session) PathHealthSnapshot(pathID uint32) (PathHealth, bool) {
	pc := s.path(pathID)
	if pc == nil {
		return PathHealth{}, false
	}
	return pc.healthSnapshot(s), true
}

// PathHealths reports the probe state of every live path.
func (s *Session) PathHealths() []PathHealth {
	var out []PathHealth
	for _, pc := range s.livePaths() {
		out = append(out, pc.healthSnapshot(s))
	}
	return out
}

func (pc *pathConn) healthSnapshot(s *Session) PathHealth {
	h := &pc.health
	h.mu.Lock()
	defer h.mu.Unlock()
	return PathHealth{
		PathID:        pc.id,
		SRTT:          s.scaleToVirtual(h.srtt),
		ProbesSent:    h.probesSent,
		PongsReceived: h.pongsRecv,
		Outstanding:   len(h.outstanding),
		Degraded:      h.degraded,
	}
}
