package core

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

// TestStallErrorWrapping: watchdog teardowns carry a typed error that
// matches the sentinel and names what stalled.
func TestStallErrorWrapping(t *testing.T) {
	base := &StallError{Kind: "write-stall", Stream: 7}
	if !errors.Is(base, ErrPeerStalled) {
		t.Fatal("StallError does not match ErrPeerStalled")
	}
	wrapped := fmt.Errorf("session: %w", base)
	var se *StallError
	if !errors.As(wrapped, &se) || se.Stream != 7 || se.Kind != "write-stall" {
		t.Fatalf("errors.As lost the stall detail: %#v", se)
	}
	if errors.Is(base, ErrServerOverloaded) || errors.Is(base, ErrLimitExceeded) {
		t.Fatal("stall must not alias other sentinels")
	}
}

// TestWriteStallTearsDown: a peer that accepts a stream and then never
// drains it pins the sender's replay buffer forever; with StallTimeout
// set, the sender detects the frozen cumulative ack and tears the
// session down with a typed error instead of leaking the buffers.
func TestWriteStallTearsDown(t *testing.T) {
	v4, v6 := fastLinks()
	// Tiny server receive budget: the server app never reads, so its
	// read loop parks almost immediately and stops acking.
	srvCfg := &Config{Limits: ResourceLimits{MaxStreamRecvBuffer: 8 << 10}}
	cliCfg := &Config{
		StallTimeout:       400 * time.Millisecond,
		StallCheckInterval: 50 * time.Millisecond,
	}
	e := dualStackEnv(t, v4, v6, cliCfg, srvCfg)
	cli, srv := e.connect(t, cliCfg)

	st, err := cli.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	go st.Write(make([]byte, 256<<10)) // blocks once the peer stops draining

	waitFor(t, 15*time.Second, func() bool {
		return errors.Is(cli.Err(), ErrPeerStalled)
	}, "watchdog never declared the stall")
	var se *StallError
	if !errors.As(cli.Err(), &se) {
		t.Fatalf("client error = %v, want *StallError", cli.Err())
	}
	if se.Kind != "write-stall" && se.Kind != "zero-window" {
		t.Fatalf("unexpected stall kind %q", se.Kind)
	}
	if n := cli.ctr.stalls.Load(); n != 1 {
		t.Fatalf("stall counter = %d, want 1", n)
	}
	srv.Close()
}

// TestNoStallOnHealthyTransfer: a transfer that keeps making ack
// progress — however slowly — must never trip the watchdog.
func TestNoStallOnHealthyTransfer(t *testing.T) {
	v4, v6 := fastLinks()
	cliCfg := &Config{
		StallTimeout:       500 * time.Millisecond,
		StallCheckInterval: 50 * time.Millisecond,
	}
	e := dualStackEnv(t, v4, v6, cliCfg, &Config{})
	cli, srv := e.connect(t, cliCfg)

	st, err := cli.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sst, err := srv.AcceptStream()
		if err != nil {
			return
		}
		buf := make([]byte, 4<<10)
		for {
			if _, err := sst.Read(buf); err != nil {
				return
			}
		}
	}()
	// Drip data for several stall windows; the reader drains everything,
	// acks advance, and the session must stay up.
	chunk := make([]byte, 8<<10)
	deadline := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := st.Write(chunk); err != nil {
			t.Fatalf("write failed mid-transfer: %v (session err %v)", err, cli.Err())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cli.Closed() {
		t.Fatalf("watchdog killed a healthy transfer: %v", cli.Err())
	}
	st.Close()
	cli.Close()
	<-done
}

// fakeWindowConn is a net.Conn stub whose peer receive window is pinned
// at zero — the transport-level signature of a peer that stopped
// draining its kernel buffer.
type fakeWindowConn struct {
	closed chan struct{}
}

func newFakeWindowConn() *fakeWindowConn {
	return &fakeWindowConn{closed: make(chan struct{})}
}

func (c *fakeWindowConn) PeerWindow() int { return 0 }

func (c *fakeWindowConn) Read(b []byte) (int, error) {
	<-c.closed
	return 0, net.ErrClosed
}

func (c *fakeWindowConn) Write(b []byte) (int, error) { return len(b), nil }

func (c *fakeWindowConn) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return nil
}

func (c *fakeWindowConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *fakeWindowConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *fakeWindowConn) SetDeadline(t time.Time) error      { return nil }
func (c *fakeWindowConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *fakeWindowConn) SetWriteDeadline(t time.Time) error { return nil }

// TestZeroWindowStall: the zero-window arm fires on its own — here with
// acks disabled, so the write-stall arm is provably out of the picture —
// when the peer advertises a zero receive window for the whole timeout
// while data is waiting.
func TestZeroWindowStall(t *testing.T) {
	cfg := &Config{
		DisableAcks:        true,
		StallTimeout:       100 * time.Millisecond,
		StallCheckInterval: 10 * time.Millisecond,
	}
	s := newSession(RoleServer, cfg, nil)
	fw := newFakeWindowConn()
	pc := newPathConn(s, fw, nil)
	s.mu.Lock()
	s.conns[pc.id] = pc
	s.mu.Unlock()

	st, err := s.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	st.unackedLen = 64 // data waiting for a peer that will never drain
	st.mu.Unlock()

	s.startStallWatchdog()
	waitFor(t, 5*time.Second, func() bool {
		return errors.Is(s.Err(), ErrPeerStalled)
	}, "zero-window stall never detected")
	var se *StallError
	if !errors.As(s.Err(), &se) || se.Kind != "zero-window" || se.Path != pc.id {
		t.Fatalf("error = %v, want zero-window on path %d", s.Err(), pc.id)
	}
	select {
	case <-fw.closed:
	default:
		t.Fatal("teardown did not close the stalled path's transport")
	}
}

// TestZeroWindowNeedsPendingData: a zero window with nothing to send is
// normal flow control, not a stall — the watchdog must not fire.
func TestZeroWindowNeedsPendingData(t *testing.T) {
	cfg := &Config{
		DisableAcks:        true,
		StallTimeout:       60 * time.Millisecond,
		StallCheckInterval: 10 * time.Millisecond,
	}
	s := newSession(RoleServer, cfg, nil)
	defer s.teardown(ErrSessionClosed)
	fw := newFakeWindowConn()
	pc := newPathConn(s, fw, nil)
	s.mu.Lock()
	s.conns[pc.id] = pc
	s.mu.Unlock()
	if _, err := s.NewStream(); err != nil { // no unacked data on it
		t.Fatal(err)
	}
	s.startStallWatchdog()
	time.Sleep(300 * time.Millisecond) // several timeouts worth
	if s.Closed() {
		t.Fatalf("watchdog fired with no data in flight: %v", s.Err())
	}
}
