package core

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/tcpnet"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// ringTracer builds a tracer whose events the test can inspect.
func ringTracer() (*telemetry.Tracer, *telemetry.RingSink) {
	sink := telemetry.NewRingSink(4096)
	return telemetry.NewTracer(telemetry.WithSink(sink)), sink
}

func hasEvent(sink *telemetry.RingSink, kind telemetry.EventKind) bool {
	for _, ev := range sink.Events() {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}

// TestDegradeToPlainOnMangledHello is the paper's Table 1 "option
// stripped" row in miniature: a middlebox rewrites the TCPLS ClientHello
// extension in flight, which corrupts the TLS transcript and kills the
// handshake. With AllowDegraded on both ends the client redials without
// the extension and both sides run a plain-TLS single-stream session
// instead of failing.
func TestDegradeToPlainOnMangledHello(t *testing.T) {
	v4, v6 := fastLinks()
	tracer, sink := ringTracer()
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{AllowDegraded: true})
	e.linkV4.Use(&netsim.HelloExtensionMangler{})

	cfg := &Config{AllowDegraded: true, Tracer: tracer}
	cli, srv := e.connect(t, cfg)

	if !cli.PlainMode() {
		t.Fatal("client did not degrade to plain mode")
	}
	if !srv.PlainMode() {
		t.Fatal("server session is not in plain mode")
	}
	if cli.DegradedCaps() != CapAll {
		t.Fatalf("degraded caps: %v, want all", cli.DegradedCaps())
	}
	if !hasEvent(sink, telemetry.EvSessionDegraded) {
		t.Fatal("no session:degraded event in trace")
	}

	// Data still flows, bidirectionally, on the single plain stream.
	st, err := cli.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		sst, err := srv.AcceptStream()
		if err != nil {
			return
		}
		data, _ := io.ReadAll(sst)
		sst.Write(bytes.ToUpper(data))
		sst.Close()
	}()
	st.Write([]byte("degraded but alive"))
	st.Close()
	got, err := io.ReadAll(st)
	if err != nil || string(got) != "DEGRADED BUT ALIVE" {
		t.Fatalf("echo over plain fallback: %q %v", got, err)
	}

	// Plain TLS multiplexes nothing: a second stream is refused.
	if _, err := cli.NewStream(); !errors.Is(err, ErrCapabilityDisabled) {
		t.Fatalf("second stream on plain session: %v", err)
	}
	// And so is multipath.
	if _, err := cli.Connect(cV6, netip.AddrPortFrom(sV6, 443), time.Second); err == nil {
		t.Fatal("join succeeded on a plain session")
	}
}

// TestDegradeDisabledFailsClosed: without the opt-in, interference stays
// a hard handshake error — no silent downgrade.
func TestDegradeDisabledFailsClosed(t *testing.T) {
	v4, v6 := fastLinks()
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{})
	e.linkV4.Use(&netsim.HelloExtensionMangler{})
	cfg := &Config{Clock: e.net}
	cli := NewClient(cfg, tcpnet.Dialer{Stack: e.client})
	if _, err := cli.Connect(netip.Addr{}, netip.AddrPortFrom(sV4, 443), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := cli.Handshake(); err == nil {
		t.Fatal("mangled handshake succeeded without AllowDegraded")
	}
	if cli.PlainMode() {
		t.Fatal("degraded without opt-in")
	}
}

// TestJoinFailuresShedMultipath: a middlebox that only interferes with
// secondary connections (mangling their ClientHellos) must not be
// retried forever. After JoinFailLimit consecutive failures the session
// sheds multipath, keeps the healthy primary, and refuses further joins
// with a typed error.
func TestJoinFailuresShedMultipath(t *testing.T) {
	v4, v6 := fastLinks()
	tracer, sink := ringTracer()
	e := dualStackEnv(t, v4, v6, &Config{Multipath: true}, &Config{Multipath: true})
	e.linkV6.Use(&netsim.HelloExtensionMangler{})

	cfg := &Config{Multipath: true, AllowDegraded: true, JoinFailLimit: 2, Tracer: tracer}
	cli, srv := e.connect(t, cfg)

	for i := 0; i < 2; i++ {
		if _, err := cli.Connect(cV6, netip.AddrPortFrom(sV6, 443), 2*time.Second); err == nil {
			t.Fatalf("join %d succeeded through the mangler", i)
		}
	}
	if cli.DegradedCaps()&CapMultipath == 0 {
		t.Fatalf("multipath not shed after repeated join failures: %v", cli.DegradedCaps())
	}
	if !hasEvent(sink, telemetry.EvSessionDegraded) {
		t.Fatal("no session:degraded event in trace")
	}
	// Further joins are refused up front, without burning a cookie.
	before := cli.CookiesLeft()
	if _, err := cli.Connect(cV6, netip.AddrPortFrom(sV6, 443), 2*time.Second); !errors.Is(err, ErrCapabilityDisabled) {
		t.Fatalf("join after shed: %v", err)
	}
	if cli.CookiesLeft() != before {
		t.Fatal("refused join burned a cookie")
	}
	// The primary path is untouched: data still flows.
	st, _ := cli.NewStream()
	go func() {
		sst, err := srv.AcceptStream()
		if err != nil {
			return
		}
		io.Copy(io.Discard, sst)
	}()
	if _, err := st.Write([]byte("still here")); err != nil {
		t.Fatal(err)
	}
	st.Close()
}

// TestRevalidateProbeDegradesSilentPath: a re-validation probe on a
// blackholed path (the NAT-rebind suspicion) degrades it within the
// bounded revalidate timeout instead of the health monitor's slower
// consecutive-failure budget — and a healthy path survives the probe.
func TestRevalidateProbeDegradesSilentPath(t *testing.T) {
	v4, v6 := fastLinks()
	tracer, sink := ringTracer()
	e := dualStackEnv(t, v4, v6, &Config{Multipath: true}, &Config{Multipath: true})
	cfg := &Config{Multipath: true, RevalidateTimeout: 200 * time.Millisecond, Tracer: tracer}
	cli, srv := e.connect(t, cfg)
	if _, err := cli.Connect(cV6, netip.AddrPortFrom(sV6, 443), 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Pick the v4 path explicitly (PathIDs order is not defined).
	var pc *pathConn
	for _, p := range cli.livePaths() {
		if ap, ok := remoteAddrPort(p); ok && ap.Addr() == sV4 {
			pc = p
		}
	}
	if pc == nil {
		t.Fatal("no v4 path")
	}

	// Healthy path: the probe is answered and nothing degrades.
	cli.revalidatePath(pc, "healthy-probe")
	time.Sleep(400 * time.Millisecond)
	if len(cli.PathIDs()) != 2 {
		t.Fatalf("healthy revalidation degraded a path: %v", cli.PathIDs())
	}

	// Blackhole v4 (silently — no RST) and re-validate: the path must be
	// degraded and the stream carried by v6.
	e.linkV4.SetDown(true)
	cli.revalidatePath(pc, "test-blackhole")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(cli.PathIDs()) > 1 {
		time.Sleep(10 * time.Millisecond)
	}
	if n := len(cli.PathIDs()); n != 1 {
		t.Fatalf("blackholed path not degraded: %d live paths", n)
	}
	if !hasEvent(sink, telemetry.EvPathRevalidate) {
		t.Fatal("no path:revalidate event in trace")
	}
	st, _ := cli.NewStream()
	go func() {
		sst, err := srv.AcceptStream()
		if err != nil {
			return
		}
		io.Copy(io.Discard, sst)
	}()
	if _, err := st.Write([]byte("over the survivor")); err != nil {
		t.Fatal(err)
	}
	st.Close()
}

// TestServerDetectsRebindOnJoin: when a JOIN arrives from the same host
// on a new port while an older sibling path is still "live", the server
// treats the old 4-tuple as rebound and re-validates it immediately.
func TestServerDetectsRebindOnJoin(t *testing.T) {
	v4, v6 := fastLinks()
	tracer, sink := ringTracer()
	e := dualStackEnv(t, v4, v6, &Config{Multipath: true},
		&Config{Multipath: true, RevalidateTimeout: 200 * time.Millisecond, Tracer: tracer})
	cli, srv := e.connect(t, &Config{Multipath: true})

	// Second connection from the same client address, different source
	// port (tcpnet allocates a fresh ephemeral port per dial) — exactly
	// what a server sees after a NAT rebinding.
	if _, err := cli.Connect(cV4, netip.AddrPortFrom(sV4, 443), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !hasEvent(sink, telemetry.EvPathRevalidate) {
		time.Sleep(10 * time.Millisecond)
	}
	if !hasEvent(sink, telemetry.EvPathRevalidate) {
		t.Fatal("server did not re-validate the suspect sibling path")
	}
	// Here the old path is healthy (no NAT actually dropped it), so the
	// probe answer keeps it alive: no false-positive degrade.
	time.Sleep(400 * time.Millisecond)
	if n := srv.NumConns(); n != 2 {
		t.Fatalf("healthy sibling degraded after rebind probe: %d conns", n)
	}
}
