package core

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// Shared server event loops. Per-session timer goroutines do not
// survive contact with C50K: a health monitor and a stall watchdog per
// session, plus a transient goroutine per health probe, put the
// steady-state goroutine count at 3-4× the session count before any
// data moves. The server runtime collapses all of it into a constant
// number of goroutines per *listener*:
//
//   - one timer loop that sweeps every enrolled session on the shared
//     cadence, driving health probing and the stall watchdog, and
//   - a small fixed pool of event-loop workers executing the async work
//     those sweeps generate (probe writes, proactive degrades, stall
//     teardowns) off the timer goroutine, so one slow path cannot stall
//     every session's timers.
//
// With the runtime in place a server session's steady-state goroutine
// cost is exactly one read loop per path — O(1) with constant 1 — and
// the listener's own overhead is a fixed constant independent of the
// session count (see Listener.SteadyGoroutines).
//
// Ownership rules:
//
//   - The timer loop owns every runtimeEntry's mutable state; nothing
//     else touches it after enroll.
//   - Event-loop tasks carry their owner; a task whose owner closed
//     between submit and execution is skipped, never run — nothing is
//     delivered after session close.
//   - Blocking work (anything that writes to a path) must go through
//     asyncExec, never run on the timer loop. A full task queue falls
//     back to a transient goroutine rather than dropping work, so a
//     wedged worker pool degrades to the old per-event cost instead of
//     losing probes or teardowns.
//   - The runtime drains, it does not abandon: shutdown() marks the
//     runtime draining, and the loops exit only once the last enrolled
//     session is gone, so sessions that outlive their listener keep
//     their timers.

// runtimeWriters is the event-loop worker-pool size per listener.
const runtimeWriters = 4

// runtimeBacklog is the event-loop task queue depth; overflow falls
// back to a transient goroutine (counted, never dropped).
const runtimeBacklog = 1024

// loopOwner gates task delivery: tasks for a closed owner are skipped.
// *Session implements it; tests substitute fakes.
type loopOwner interface {
	Closed() bool
}

type loopTask struct {
	owner loopOwner
	fn    func()
}

// eventLoop is a bounded multi-worker task executor with exact
// delivery accounting: submitted == delivered + skipped + dropped once
// idle, where skipped tasks are those whose owner closed before
// execution.
type eventLoop struct {
	tasks   chan loopTask
	stopCh  chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup

	submitted atomic.Uint64
	delivered atomic.Uint64
	skipped   atomic.Uint64
	dropped   atomic.Uint64
}

func newEventLoop(workers, backlog int) *eventLoop {
	if workers <= 0 {
		workers = 1
	}
	if backlog <= 0 {
		backlog = 1
	}
	e := &eventLoop{
		tasks:  make(chan loopTask, backlog),
		stopCh: make(chan struct{}),
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// submit queues fn for execution on behalf of owner. It returns false
// — counting a drop — when the queue is full or the loop stopped; the
// caller decides whether to fall back or let the event go.
func (e *eventLoop) submit(owner loopOwner, fn func()) bool {
	e.submitted.Add(1)
	if e.stopped.Load() {
		e.dropped.Add(1)
		return false
	}
	select {
	case e.tasks <- loopTask{owner: owner, fn: fn}:
		return true
	default:
		e.dropped.Add(1)
		return false
	}
}

func (e *eventLoop) worker() {
	defer e.wg.Done()
	for {
		select {
		case t := <-e.tasks:
			e.run(t)
		case <-e.stopCh:
			// Drain what was queued before the stop; owners are almost
			// certainly closed by now, so most of this is skips.
			for {
				select {
				case t := <-e.tasks:
					e.run(t)
				default:
					return
				}
			}
		}
	}
}

func (e *eventLoop) run(t loopTask) {
	if t.owner != nil && t.owner.Closed() {
		e.skipped.Add(1)
		return
	}
	t.fn()
	e.delivered.Add(1)
}

// stop ends the workers after draining the queue and blocks until they
// exit. Further submits are counted as drops.
func (e *eventLoop) stop() {
	if !e.stopped.CompareAndSwap(false, true) {
		return
	}
	close(e.stopCh)
	e.wg.Wait()
}

// runtimeEntry is the timer loop's per-session state. Owned by the
// timer goroutine exclusively after enroll.
type runtimeEntry struct {
	s         *Session
	lastProbe time.Time // wall; compared in virtual time
	lastStall time.Time
	watchdog  watchdogState
}

// serverRuntime is one listener's shared timer/event machinery.
type serverRuntime struct {
	clock Clock
	loop  *eventLoop

	probeEvery time.Duration // virtual; 0 disables health sweeps
	stallEvery time.Duration // virtual; 0 disables watchdog sweeps
	stallAfter time.Duration // virtual stall timeout
	tick       time.Duration // wall tick of the timer loop

	mu       sync.Mutex
	entries  map[*Session]*runtimeEntry
	draining bool

	enrolls atomic.Uint64
}

// newServerRuntime derives the shared cadence from the listener config
// and starts the timer loop and worker pool. The constant goroutine
// cost is 1 (timer) + runtimeWriters.
func newServerRuntime(cfg *Config) *serverRuntime {
	rt := &serverRuntime{
		clock:   cfg.Clock,
		loop:    newEventLoop(runtimeWriters, runtimeBacklog),
		entries: make(map[*Session]*runtimeEntry),
	}
	if cfg.HealthProbeInterval > 0 {
		rt.probeEvery = cfg.HealthProbeInterval
	}
	if cfg.StallTimeout > 0 {
		rt.stallAfter = cfg.StallTimeout
		rt.stallEvery = cfg.StallCheckInterval
		if rt.stallEvery <= 0 {
			rt.stallEvery = cfg.StallTimeout / 4
		}
		if rt.stallEvery <= 0 {
			rt.stallEvery = time.Millisecond
		}
	}
	// The wall tick is the finest enabled cadence; sessions are swept no
	// more often than their own (virtual) intervals regardless. With
	// nothing enabled the loop only polls for drain.
	finest := time.Duration(0)
	for _, d := range []time.Duration{rt.probeEvery, rt.stallEvery} {
		if d > 0 && (finest == 0 || d < finest) {
			finest = d
		}
	}
	if finest > 0 {
		rt.tick = rt.clock.ScaleDuration(finest) / 2
	}
	if rt.tick < 500*time.Microsecond {
		rt.tick = 500 * time.Microsecond
	}
	if rt.tick > 25*time.Millisecond || finest == 0 {
		rt.tick = 25 * time.Millisecond
	}
	go rt.timerLoop()
	return rt
}

// steadyGoroutines is the runtime's constant goroutine cost.
func (rt *serverRuntime) steadyGoroutines() int { return 1 + runtimeWriters }

// enroll registers a session for shared sweeps (idempotent).
func (rt *serverRuntime) enroll(s *Session) {
	now := time.Now()
	rt.mu.Lock()
	if _, ok := rt.entries[s]; !ok {
		rt.entries[s] = &runtimeEntry{s: s, lastProbe: now, lastStall: now}
		rt.enrolls.Add(1)
	}
	rt.mu.Unlock()
}

// unenroll drops a session; called from teardown.
func (rt *serverRuntime) unenroll(s *Session) {
	rt.mu.Lock()
	delete(rt.entries, s)
	rt.mu.Unlock()
}

// shutdown marks the runtime draining; the loops exit once the last
// enrolled session is gone. Called by Listener.Close — existing
// sessions keep running, and keep their timers, until they end.
func (rt *serverRuntime) shutdown() {
	rt.mu.Lock()
	rt.draining = true
	rt.mu.Unlock()
}

func (rt *serverRuntime) timerLoop() {
	t := time.NewTimer(rt.tick)
	defer t.Stop()
	for range t.C {
		if rt.sweep() {
			rt.loop.stop()
			return
		}
		t.Reset(rt.tick)
	}
}

// sweep runs one timer pass over every enrolled session and reports
// whether the runtime is fully drained (draining and empty).
func (rt *serverRuntime) sweep() (drained bool) {
	rt.mu.Lock()
	entries := make([]*runtimeEntry, 0, len(rt.entries))
	for _, e := range rt.entries {
		entries = append(entries, e)
	}
	draining := rt.draining
	rt.mu.Unlock()

	now := time.Now()
	for _, e := range entries {
		s := e.s
		if s.Closed() {
			rt.unenroll(s) // teardown also unenrolls; belt and braces
			continue
		}
		if rt.probeEvery > 0 && virtualSinceClock(rt.clock, e.lastProbe) >= rt.probeEvery {
			e.lastProbe = now
			s.healthSweep()
		}
		if rt.stallEvery > 0 && virtualSinceClock(rt.clock, e.lastStall) >= rt.stallEvery {
			e.lastStall = now
			if serr, unacked := e.watchdog.sweep(s, rt.stallAfter, now); serr != nil {
				rt.unenroll(s)
				// Teardown on a dedicated goroutine, not the worker pool:
				// it aborts paths — the very act that frees pool workers
				// wedged on those paths' send buffers — so it must never
				// queue behind them.
				go s.stallTeardown(serr, unacked)
			}
		}
	}

	if !draining {
		return false
	}
	rt.mu.Lock()
	drained = rt.draining && len(rt.entries) == 0
	rt.mu.Unlock()
	return drained
}

// registerMetrics publishes the runtime's counters (the flock gauntlet
// budgets feed from these).
func (rt *serverRuntime) registerMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Func("runtime.enrolled", func() int64 {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		return int64(len(rt.entries))
	})
	reg.Func("runtime.enrolls", func() int64 { return int64(rt.enrolls.Load()) })
	reg.Func("runtime.tasks_submitted", func() int64 { return int64(rt.loop.submitted.Load()) })
	reg.Func("runtime.tasks_delivered", func() int64 { return int64(rt.loop.delivered.Load()) })
	reg.Func("runtime.tasks_skipped", func() int64 { return int64(rt.loop.skipped.Load()) })
	reg.Func("runtime.tasks_dropped", func() int64 { return int64(rt.loop.dropped.Load()) })
}

// asyncExec runs fn off the caller's goroutine: on the server runtime's
// worker pool when the session has one, else on a transient goroutine
// (the pre-runtime behavior, and the overflow fallback — async work is
// never dropped, only its execution vehicle changes).
func (s *Session) asyncExec(fn func()) {
	if rt := s.cfg.runtime; rt != nil && rt.loop.submit(s, fn) {
		return
	}
	go fn()
}
