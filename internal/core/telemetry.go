package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// sessionSeq numbers sessions process-wide so each gets a distinct
// metrics namespace (session.<n>.*) even when several share a registry
// (a chaos run has at least a client and a server session).
var sessionSeq atomic.Uint32

// sessionCounters aggregates per-session activity for the registry.
// Trace events answer "what happened when"; these answer "how much".
type sessionCounters struct {
	recordsSent  atomic.Uint64
	recordsRcvd  atomic.Uint64
	bytesSent    atomic.Uint64
	bytesRcvd    atomic.Uint64
	ctrlSent     atomic.Uint64
	ctrlRcvd     atomic.Uint64
	failovers    atomic.Uint64
	degraded     atomic.Uint64
	replays      atomic.Uint64
	capsDegraded atomic.Uint64
	stalls       atomic.Uint64
}

// trace returns the session's tracer; nil (a valid disabled tracer)
// when the config carries none.
func (s *Session) trace() *telemetry.Tracer { return s.cfg.Tracer }

// emit stamps and fans out one session-level event: always into the
// per-session flight recorder (one mutex and a struct copy, no
// allocation), and into the configured tracer when this session was
// selected for full-fidelity tracing (Config.TraceSampleRate).
func (s *Session) emit(ev telemetry.Event) {
	tr := s.trace()
	if s.flight == nil && (tr == nil || !s.traceSampled) {
		return
	}
	if ev.Time == 0 {
		if tr != nil {
			ev.Time = tr.Now()
		} else {
			ev.Time = time.Since(s.startWall)
		}
	}
	if ev.EP == "" {
		if ep := tr.Endpoint(); ep != "" {
			ev.EP = ep
		} else if s.role == RoleServer {
			ev.EP = "server"
		} else {
			ev.EP = "client"
		}
	}
	s.flight.Record(ev)
	if s.traceSampled {
		tr.Emit(ev)
	}
}

// tracing reports whether any event consumer exists; emit sites with
// expensive arguments (string formatting, per-frame loops) guard on it.
func (s *Session) tracing() bool {
	return s.flight != nil || (s.traceSampled && s.trace().Enabled())
}

// SessionDump is the flight recorder's structured artifact: the last N
// events of one session, captured at an anomaly (or on demand).
type SessionDump struct {
	Seq     uint32 // process-wide session number
	ConnID  uint32 // TCPLS session identifier (0 before the handshake)
	Role    Role
	Reason  string            // what triggered the dump
	Time    time.Duration     // trace-clock time of capture
	Dropped uint64            // events that fell off the ring before capture
	Events  []telemetry.Event // oldest first
}

// WriteJSONL writes the dump's events as JSON lines — the format file
// sinks write, so tcplstrace pretty/qlog read the artifact directly.
func (d SessionDump) WriteJSONL(w io.Writer) error {
	return telemetry.WriteJSONL(w, d.Events)
}

// SessionDump snapshots the session's flight recorder on demand. The
// event slice is a copy; the recorder keeps running.
func (s *Session) SessionDump(reason string) SessionDump {
	d := SessionDump{
		Seq:    s.seq,
		ConnID: s.ConnID(),
		Role:   s.role,
		Reason: reason,
	}
	if tr := s.trace(); tr != nil {
		d.Time = tr.Now()
	} else {
		d.Time = time.Since(s.startWall)
	}
	if s.flight != nil {
		d.Events = s.flight.Events()
		d.Dropped = s.flight.Dropped()
	}
	return d
}

// flightDump captures and publishes the flight recorder at an anomaly:
// the FlightDump callback receives the structured dump, and
// FlightDumpDir (when set) receives a JSONL artifact named after the
// session. A session with neither configured pays nothing here.
func (s *Session) flightDump(reason string) {
	if s.flight == nil {
		return
	}
	cb := s.cfg.Callbacks.FlightDump
	dir := s.cfg.FlightDumpDir
	if cb == nil && dir == "" {
		return
	}
	d := s.SessionDump(reason)
	if cb != nil {
		cb(d)
	}
	if dir != "" {
		name := filepath.Join(dir, fmt.Sprintf("flight-s%d-%08x.jsonl", d.Seq, d.ConnID))
		if f, err := os.Create(name); err == nil {
			d.WriteJSONL(f)
			f.Close()
		}
	}
}

// virtualSinceClock converts a wall-clock elapsed time into virtual
// time when the clock knows the emulation scale (netsim.Network does).
func virtualSinceClock(clock Clock, t time.Time) time.Duration {
	if v, ok := clock.(interface{ VirtualSince(time.Time) time.Duration }); ok {
		return v.VirtualSince(t)
	}
	return time.Since(t)
}

// observeLatency records one phase duration into an aggregate latency
// histogram. Aggregate names (sessions.*, server.*, tcp.*) are never
// unregistered, so harnesses can assert them after session teardown —
// unlike the session.<n>.* vars, which die with their session.
func observeLatency(reg *telemetry.Registry, clock Clock, name string, since time.Time) {
	if reg == nil {
		return
	}
	if clock == nil {
		clock = realClock{}
	}
	reg.Histogram(name).Observe(int64(virtualSinceClock(clock, since)))
}

// observePhase records a session phase duration under sessions.<name>.
func (s *Session) observePhase(name string, since time.Time) {
	observeLatency(s.cfg.Metrics, s.cfg.Clock, "sessions."+name, since)
}

// noteBlackoutStart records the failover blackout start: the wall time
// of the last data record before an unplanned path loss. The first
// failure wins until data flows again.
func (s *Session) noteBlackoutStart() {
	s.blackoutStart.CompareAndSwap(0, s.lastActive.Load())
}

// noteBlackoutEnd closes an open blackout window at the first data
// record after the loss, feeding sessions.failover_blackout_ns
// (last-byte-before to first-byte-after, virtual time). The steady
// state — no failover pending — is one atomic load.
func (s *Session) noteBlackoutEnd() {
	start := s.blackoutStart.Load()
	if start == 0 || !s.blackoutStart.CompareAndSwap(start, 0) {
		return
	}
	s.observePhase("failover_blackout_ns", time.Unix(0, start))
}

// rollupSessionMetrics folds the session's lifetime counters into the
// never-unregistered sessions.* aggregate namespace at teardown: the
// per-session session.<n>.* vars are unregistered on close (bounding
// registry cardinality by live sessions), while the totals survive for
// post-run assertions and long-lived dashboards.
func (s *Session) rollupSessionMetrics() {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	reg.Counter("sessions.closed").Inc()
	reg.Gauge("sessions.live").Add(-1)
	for _, c := range []struct {
		name string
		v    uint64
	}{
		{"sessions.records_sent", s.ctr.recordsSent.Load()},
		{"sessions.records_rcvd", s.ctr.recordsRcvd.Load()},
		{"sessions.bytes_sent", s.ctr.bytesSent.Load()},
		{"sessions.bytes_rcvd", s.ctr.bytesRcvd.Load()},
		{"sessions.ctrl_sent", s.ctr.ctrlSent.Load()},
		{"sessions.ctrl_rcvd", s.ctr.ctrlRcvd.Load()},
		{"sessions.failovers", s.ctr.failovers.Load()},
		{"sessions.paths_degraded", s.ctr.degraded.Load()},
		{"sessions.replays", s.ctr.replays.Load()},
		{"sessions.caps_degraded", s.ctr.capsDegraded.Load()},
		{"sessions.stalls", s.ctr.stalls.Load()},
	} {
		if c.v > 0 {
			reg.Counter(c.name).Add(c.v)
		}
	}
}

// metricsPrefix is the session's registry namespace.
func (s *Session) metricsPrefix() string {
	return fmt.Sprintf("session.%d.", s.seq)
}

// registerSessionMetrics publishes the session's pull-mode vars. Called
// once from newSession when a registry is configured.
func (s *Session) registerSessionMetrics() {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	p := s.metricsPrefix()
	reg.Func(p+"conns", func() int64 { return int64(s.NumConns()) })
	reg.Func(p+"streams", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.streams))
	})
	reg.Func(p+"cookies_left", func() int64 { return int64(s.CookiesLeft()) })
	reg.Func(p+"records_sent", func() int64 { return int64(s.ctr.recordsSent.Load()) })
	reg.Func(p+"records_rcvd", func() int64 { return int64(s.ctr.recordsRcvd.Load()) })
	reg.Func(p+"bytes_sent", func() int64 { return int64(s.ctr.bytesSent.Load()) })
	reg.Func(p+"bytes_rcvd", func() int64 { return int64(s.ctr.bytesRcvd.Load()) })
	reg.Func(p+"ctrl_sent", func() int64 { return int64(s.ctr.ctrlSent.Load()) })
	reg.Func(p+"ctrl_rcvd", func() int64 { return int64(s.ctr.ctrlRcvd.Load()) })
	reg.Func(p+"failovers", func() int64 { return int64(s.ctr.failovers.Load()) })
	reg.Func(p+"paths_degraded", func() int64 { return int64(s.ctr.degraded.Load()) })
	reg.Func(p+"replays", func() int64 { return int64(s.ctr.replays.Load()) })
	reg.Func(p+"caps_degraded", func() int64 { return int64(s.ctr.capsDegraded.Load()) })
	reg.Func(p+"stalls", func() int64 { return int64(s.ctr.stalls.Load()) })
}

// registerPathMetrics publishes one path's health gauges under
// session.<n>.path.<id>.*; unregisterPathMetrics removes them when the
// path dies so a long-lived session does not accumulate dead vars.
func (s *Session) registerPathMetrics(pc *pathConn) {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	p := fmt.Sprintf("%spath.%d.", s.metricsPrefix(), pc.id)
	reg.Func(p+"srtt_ns", func() int64 {
		return int64(pc.healthSnapshot(s).SRTT)
	})
	reg.Func(p+"probes_sent", func() int64 {
		return int64(pc.healthSnapshot(s).ProbesSent)
	})
	reg.Func(p+"pongs_recv", func() int64 {
		return int64(pc.healthSnapshot(s).PongsReceived)
	})
	reg.Func(p+"outstanding_probes", func() int64 {
		return int64(pc.healthSnapshot(s).Outstanding)
	})
}

func (s *Session) unregisterPathMetrics(pc *pathConn) {
	if reg := s.cfg.Metrics; reg != nil {
		reg.UnregisterPrefix(fmt.Sprintf("%spath.%d.", s.metricsPrefix(), pc.id))
	}
}

// unregisterSessionMetrics drops everything under the session's
// namespace; called from teardown.
func (s *Session) unregisterSessionMetrics() {
	if reg := s.cfg.Metrics; reg != nil {
		reg.UnregisterPrefix(s.metricsPrefix())
	}
}

// traceIDSetter is the optional transport hook (tcpnet.Conn has it)
// that labels the TCP connection's own trace events with the TCPLS path
// id, so tcp:* and path:* events correlate on one timeline.
type traceIDSetter interface {
	SetTraceID(id uint32)
}
