package core

import (
	"fmt"
	"sync/atomic"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// sessionSeq numbers sessions process-wide so each gets a distinct
// metrics namespace (session.<n>.*) even when several share a registry
// (a chaos run has at least a client and a server session).
var sessionSeq atomic.Uint32

// sessionCounters aggregates per-session activity for the registry.
// Trace events answer "what happened when"; these answer "how much".
type sessionCounters struct {
	recordsSent  atomic.Uint64
	recordsRcvd  atomic.Uint64
	bytesSent    atomic.Uint64
	bytesRcvd    atomic.Uint64
	ctrlSent     atomic.Uint64
	ctrlRcvd     atomic.Uint64
	failovers    atomic.Uint64
	degraded     atomic.Uint64
	replays      atomic.Uint64
	capsDegraded atomic.Uint64
	stalls       atomic.Uint64
}

// trace returns the session's tracer; nil (a valid disabled tracer)
// when the config carries none.
func (s *Session) trace() *telemetry.Tracer { return s.cfg.Tracer }

// metricsPrefix is the session's registry namespace.
func (s *Session) metricsPrefix() string {
	return fmt.Sprintf("session.%d.", s.seq)
}

// registerSessionMetrics publishes the session's pull-mode vars. Called
// once from newSession when a registry is configured.
func (s *Session) registerSessionMetrics() {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	p := s.metricsPrefix()
	reg.Func(p+"conns", func() int64 { return int64(s.NumConns()) })
	reg.Func(p+"streams", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.streams))
	})
	reg.Func(p+"cookies_left", func() int64 { return int64(s.CookiesLeft()) })
	reg.Func(p+"records_sent", func() int64 { return int64(s.ctr.recordsSent.Load()) })
	reg.Func(p+"records_rcvd", func() int64 { return int64(s.ctr.recordsRcvd.Load()) })
	reg.Func(p+"bytes_sent", func() int64 { return int64(s.ctr.bytesSent.Load()) })
	reg.Func(p+"bytes_rcvd", func() int64 { return int64(s.ctr.bytesRcvd.Load()) })
	reg.Func(p+"ctrl_sent", func() int64 { return int64(s.ctr.ctrlSent.Load()) })
	reg.Func(p+"ctrl_rcvd", func() int64 { return int64(s.ctr.ctrlRcvd.Load()) })
	reg.Func(p+"failovers", func() int64 { return int64(s.ctr.failovers.Load()) })
	reg.Func(p+"paths_degraded", func() int64 { return int64(s.ctr.degraded.Load()) })
	reg.Func(p+"replays", func() int64 { return int64(s.ctr.replays.Load()) })
	reg.Func(p+"caps_degraded", func() int64 { return int64(s.ctr.capsDegraded.Load()) })
	reg.Func(p+"stalls", func() int64 { return int64(s.ctr.stalls.Load()) })
}

// registerPathMetrics publishes one path's health gauges under
// session.<n>.path.<id>.*; unregisterPathMetrics removes them when the
// path dies so a long-lived session does not accumulate dead vars.
func (s *Session) registerPathMetrics(pc *pathConn) {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	p := fmt.Sprintf("%spath.%d.", s.metricsPrefix(), pc.id)
	reg.Func(p+"srtt_ns", func() int64 {
		return int64(pc.healthSnapshot(s).SRTT)
	})
	reg.Func(p+"probes_sent", func() int64 {
		return int64(pc.healthSnapshot(s).ProbesSent)
	})
	reg.Func(p+"pongs_recv", func() int64 {
		return int64(pc.healthSnapshot(s).PongsReceived)
	})
	reg.Func(p+"outstanding_probes", func() int64 {
		return int64(pc.healthSnapshot(s).Outstanding)
	})
}

func (s *Session) unregisterPathMetrics(pc *pathConn) {
	if reg := s.cfg.Metrics; reg != nil {
		reg.UnregisterPrefix(fmt.Sprintf("%spath.%d.", s.metricsPrefix(), pc.id))
	}
}

// unregisterSessionMetrics drops everything under the session's
// namespace; called from teardown.
func (s *Session) unregisterSessionMetrics() {
	if reg := s.cfg.Metrics; reg != nil {
		reg.UnregisterPrefix(s.metricsPrefix())
	}
}

// traceIDSetter is the optional transport hook (tcpnet.Conn has it)
// that labels the TCP connection's own trace events with the TCPLS path
// id, so tcp:* and path:* events correlate on one timeline.
type traceIDSetter interface {
	SetTraceID(id uint32)
}
