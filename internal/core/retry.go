package core

import (
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy is the session's unified reconnection backoff: capped
// exponential growth with proportional jitter, driven by the session
// clock and aborted the instant the session closes. The zero value means
// "use defaults".
type RetryPolicy struct {
	// Base is the first backoff (default 50ms, virtual time).
	Base time.Duration
	// Cap bounds any single backoff (default 2s).
	Cap time.Duration
	// Factor multiplies the backoff per attempt (default 2).
	Factor float64
	// Jitter randomizes each backoff within ±Jitter fraction of its
	// nominal value (default 0.5). Zero-jitter retries from many clients
	// synchronize into reconnection storms; jitter spreads them.
	Jitter float64
	// MaxAttempts bounds reconnection sweeps before the session gives up
	// (default 8).
	MaxAttempts int
	// DialTimeout bounds each dial attempt (default 2s, virtual time).
	DialTimeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 2 * time.Second
	}
	if p.Factor < 1 {
		p.Factor = 2
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = 0.5
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = 2 * time.Second
	}
	return p
}

// Backoff returns the jittered, capped backoff for the given attempt
// (0-based). rng may be nil for unjittered deterministic output.
func (p RetryPolicy) Backoff(attempt int, rng *rand.Rand) time.Duration {
	p = p.withDefaults()
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= p.Factor
		if d >= float64(p.Cap) {
			d = float64(p.Cap)
			break
		}
	}
	if rng != nil && p.Jitter > 0 {
		// Uniform in [d*(1-j), d*(1+j)], then re-capped.
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	if d > float64(p.Cap) {
		d = float64(p.Cap)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// jitterRNG is the session's backoff randomness, seeded for reproducible
// chaos runs via Config.RetrySeed.
type jitterRNG struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newJitterRNG(seed int64) *jitterRNG {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &jitterRNG{rng: rand.New(rand.NewSource(seed))}
}

func (j *jitterRNG) backoff(p RetryPolicy, attempt int) time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	return p.Backoff(attempt, j.rng)
}

// sleepCancelable blocks for virtual duration d, returning false
// immediately if the session closes first — Close() must interrupt an
// in-flight backoff, not wait it out.
func (s *Session) sleepCancelable(d time.Duration) bool {
	t := time.NewTimer(s.cfg.Clock.ScaleDuration(d))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.closeCh:
		return false
	}
}
