package core

import (
	"net/netip"
	"time"
)

// handleConnFailure reacts to the death of a TCP connection (§2.1):
// if other connections exist, unacked data replays there immediately;
// a client whose last connection died — e.g. a middlebox-forged RST —
// automatically re-establishes a TCP connection (JOIN) and replays, so
// the TCPLS session survives events that kill plain TCP/TLS.
func (s *Session) handleConnFailure(pc *pathConn, err error, orderly bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.primary == pc {
		s.primary = nil
		for _, cand := range s.conns {
			if !cand.isClosed() {
				s.primary = cand
				break
			}
		}
	}
	delete(s.conns, pc.id)
	s.mu.Unlock()

	if orderly {
		// Peer closed this connection deliberately (migration or session
		// end). If it was the last one and the session saw SessionClose,
		// teardown already ran; if streams remain open with no paths and
		// no close, treat as failure below.
		if s.primaryPath() != nil || !s.hasOpenStreams() {
			return
		}
	}

	if next := s.primaryPath(); next != nil {
		// Fast failover: surviving connection takes over.
		s.replayAll(next)
		return
	}

	if s.role == RoleServer {
		// Servers cannot reconnect (the client is behind NATs etc.);
		// they hold the session state and wait for a JOIN rescue.
		return
	}

	go s.reconnect(err)
}

// hasOpenStreams reports whether any stream still expects data.
func (s *Session) hasOpenStreams() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.streams {
		st.mu.Lock()
		open := !(st.finKnown && st.recvNext >= st.finalOffset && st.finSent)
		st.mu.Unlock()
		if open {
			return true
		}
	}
	return false
}

// reconnect dials the peer's known addresses and JOINs, with bounded
// exponential backoff. On success the replay buffers flush onto the new
// connection ("reestablishing a new TCP connection to continue the
// transfer of data and replay the records that have been lost", §2.1).
func (s *Session) reconnect(cause error) {
	backoff := 50 * time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		if s.Closed() {
			return
		}
		for _, addr := range s.reconnectCandidates() {
			tcp, err := s.dialer.Dial(netip.Addr{}, addr, 2*time.Second)
			if err != nil {
				continue
			}
			pc, err := s.join(tcp)
			if err != nil {
				tcp.Close()
				continue
			}
			s.replayAll(pc)
			return
		}
		time.Sleep(s.cfg.Clock.ScaleDuration(backoff))
		backoff *= 2
	}
	s.teardown(cause)
}

// reconnectCandidates lists addresses to try: advertised addresses
// first (primary-flagged ones before others), then the remote of any
// connection we ever had.
func (s *Session) reconnectCandidates() []netip.AddrPort {
	s.mu.Lock()
	defer s.mu.Unlock()
	var primary, rest []netip.AddrPort
	for _, a := range s.peerAddrs {
		ap := netip.AddrPortFrom(a.Addr, a.Port)
		if a.Primary {
			primary = append(primary, ap)
		} else {
			rest = append(rest, ap)
		}
	}
	out := append(primary, rest...)
	if s.lastRemote.IsValid() {
		out = append(out, s.lastRemote)
	}
	return out
}
