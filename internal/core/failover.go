package core

import (
	"net/netip"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// handleConnFailure reacts to the death of a TCP connection (§2.1):
// if other connections exist, unacked data replays there immediately;
// a client whose last connection died — e.g. a middlebox-forged RST —
// automatically re-establishes a TCP connection (JOIN) and replays, so
// the TCPLS session survives events that kill plain TCP/TLS.
//
// The health monitor and the read loop can both report the same death
// (proactive degrade closes the conn, which then errors the read loop);
// the per-path once-guard makes whichever arrives first the only one
// that acts.
func (s *Session) handleConnFailure(pc *pathConn, err error, orderly bool) {
	pc.failOnce.Do(func() { s.connFailed(pc, err, orderly) })
}

func (s *Session) connFailed(pc *pathConn, err error, orderly bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	plain := s.plainMode
	if s.primary == pc {
		s.primary = nil
		for _, cand := range s.conns {
			if cand != pc && !cand.isClosed() {
				s.primary = cand
				break
			}
		}
	}
	delete(s.conns, pc.id)
	s.mu.Unlock()

	if !orderly {
		s.ctr.failovers.Add(1)
		// Open the blackout window: it closes (and feeds the
		// sessions.failover_blackout_ns histogram) at the first data
		// record sent or received after this loss.
		s.noteBlackoutStart()
		survivor := int64(0)
		if next := s.primaryPath(); next != nil {
			survivor = int64(next.id)
		}
		s.emit(telemetry.Event{
			Kind: telemetry.EvPathFailover,
			Path: pc.id,
			A:    survivor,
		})
	}

	if plain {
		// A degraded plain-TLS session has exactly one path and no JOIN
		// machinery to rescue it: an orderly close ends the session
		// quietly, anything else tears it down with the error.
		if !orderly {
			s.teardown(err)
		}
		return
	}

	if orderly {
		// Peer closed this connection deliberately (migration, proactive
		// degrade on its side, or session end). Deliberate does not mean
		// empty: records in flight on this connection may have died in
		// its buffers, so a surviving path still gets a replay — the
		// receiver deduplicates, making this idempotent. Without it an
		// orderly EOF with a survivor silently strands unacked data and
		// the transfer wedges with every connection healthy.
		if next := s.primaryPath(); next != nil {
			s.replayAll(next)
			return
		}
		if !s.hasOpenStreams() {
			return
		}
	}

	if next := s.primaryPath(); next != nil {
		// Fast failover: surviving connection takes over.
		s.replayAll(next)
		return
	}

	if s.role == RoleServer {
		// Servers cannot reconnect (the client is behind NATs etc.);
		// they hold the session state and wait for a JOIN rescue.
		return
	}

	// Single-flight: several paths dying near-simultaneously must not
	// spawn competing reconnect loops burning cookies against each other.
	s.mu.Lock()
	already := s.reconnecting
	s.reconnecting = true
	s.mu.Unlock()
	if already {
		return
	}
	go s.reconnect(err)
}

// hasOpenStreams reports whether any stream still expects data.
func (s *Session) hasOpenStreams() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.streams {
		st.mu.Lock()
		open := !(st.finKnown && st.recvNext >= st.finalOffset && st.finSent)
		st.mu.Unlock()
		if open {
			return true
		}
	}
	return false
}

// reconnect dials the peer's known addresses and JOINs under the
// session's retry policy: jittered, capped exponential backoff on the
// session clock, aborted immediately by Close(). On success the replay
// buffers flush onto the new connection ("reestablishing a new TCP
// connection to continue the transfer of data and replay the records
// that have been lost", §2.1). If a rescue path appears by other means
// mid-backoff (the application Connect()ing a fresh path), the loop
// adopts it instead of dialing.
func (s *Session) reconnect(cause error) {
	for {
		exhausted := s.reconnectRound(cause)
		if exhausted {
			s.mu.Lock()
			s.reconnecting = false
			s.mu.Unlock()
			s.teardown(cause)
			return
		}
		// Releasing the single-flight flag races with the rescue path
		// dying: a connFailed that ran while we still held the flag was
		// swallowed. Re-check liveness under the same lock that clears
		// the flag — if nothing survived, take the failure back and run
		// another round instead of stranding the session with no paths
		// and no reconnect loop.
		s.mu.Lock()
		live := false
		for _, pc := range s.conns {
			if !pc.isClosed() {
				live = true
				break
			}
		}
		if live || s.closed {
			s.reconnecting = false
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
	}
}

// reconnectRound runs one budget of dial attempts. It returns true when
// the budget is exhausted (the session should tear down), false when a
// live path was (re)established or the session is closing.
func (s *Session) reconnectRound(cause error) (exhausted bool) {
	pol := s.cfg.Retry.withDefaults()
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if s.Closed() {
			return false
		}
		if pc := s.primaryPath(); pc != nil {
			// Rescued while backing off: a path joined through another
			// avenue. Replay onto it (receiver deduplicates) and stop.
			s.replayAll(pc)
			return false
		}
		for _, addr := range s.reconnectCandidates() {
			tcp, err := s.dialer.Dial(netip.Addr{}, addr, pol.DialTimeout)
			if err != nil {
				continue
			}
			pc, err := s.join(tcp)
			if err != nil {
				tcp.Close()
				continue
			}
			s.replayAll(pc)
			return false
		}
		if !s.sleepCancelable(s.jitter.backoff(pol, attempt)) {
			return false // Close() interrupted the backoff
		}
	}
	return true
}

// reconnectCandidates lists addresses to try: advertised addresses
// first (primary-flagged ones before others), then the remote of any
// connection we ever had.
func (s *Session) reconnectCandidates() []netip.AddrPort {
	s.mu.Lock()
	defer s.mu.Unlock()
	var primary, rest []netip.AddrPort
	for _, a := range s.peerAddrs {
		ap := netip.AddrPortFrom(a.Addr, a.Port)
		if a.Primary {
			primary = append(primary, ap)
		} else {
			rest = append(rest, ap)
		}
	}
	out := append(primary, rest...)
	if s.lastRemote.IsValid() {
		seen := false
		for _, ap := range out {
			if ap == s.lastRemote {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, s.lastRemote)
		}
	}
	return out
}
