package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// Server-wide overload resilience. Per-session ResourceLimits bound what
// one peer can make the process spend, but a flock of clients can
// exhaust the server while each individual session stays within budget.
// Accounting rolls the per-session limits up to process-level budgets
// (sessions, paths, streams, pooled-buffer bytes, goroutines,
// handshakes-in-flight) and enforces them at the three admission points:
// pre-TLS accept, handshake start, and JOIN.
//
// Design rules:
//
//   - Rejection is cheap. An overloaded server closes the TCP connection
//     before any key-schedule work — the pre-TLS gate costs a few atomic
//     loads, so overload cannot be amplified into handshake CPU.
//   - Admission has hysteresis. Once the session budget is hit the gate
//     closes and reopens only below the low-water mark, so a server at
//     the boundary flips once per overload episode instead of thrashing
//     per connection.
//   - Shedding is prioritized. Under pressure the server evicts idle
//     sessions first (newest first), then degraded/plain-TLS fallback
//     sessions, and never a healthy session with data in flight.

// ErrServerOverloaded is the sentinel for every server-wide admission
// rejection; match with errors.Is. The concrete error is always an
// *OverloadError naming the exhausted budget.
var ErrServerOverloaded = errors.New("tcpls: server overloaded")

// OverloadError reports which server-wide budget an admission or
// shedding decision hit.
type OverloadError struct {
	Resource string // exhausted budget ("sessions", "handshakes", ...)
	Limit    int64  // its configured value
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("tcpls: server overloaded: %s budget exhausted (max %d)", e.Resource, e.Limit)
}

// Is makes errors.Is(err, ErrServerOverloaded) match any OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrServerOverloaded }

// ServerBudgets bounds what the whole process may consume across every
// session it serves. Zero fields take the defaults below; a negative
// MaxGoroutines or MaxBufferedBytes disables that check.
type ServerBudgets struct {
	// MaxSessions caps concurrent sessions. At the cap the admission
	// gate closes (rejecting new connections pre-TLS) and reopens only
	// when the session count falls below LowWaterFrac×MaxSessions.
	MaxSessions int
	// MaxTotalPaths caps live TCP connections across all sessions
	// (default 4×MaxSessions). JOINs past it are rejected before the
	// one-time cookie is consumed.
	MaxTotalPaths int
	// MaxTotalStreams caps concurrent streams across all sessions
	// (default 64×MaxSessions).
	MaxTotalStreams int
	// MaxHandshakes caps TLS handshakes in flight (default 64): a
	// connection storm queues at the accept gate instead of pinning one
	// handshake goroutine per SYN.
	MaxHandshakes int
	// MaxBufferedBytes caps pooled-buffer bytes in use process-wide (via
	// bufpool accounting, default 1 GiB; negative disables).
	MaxBufferedBytes int64
	// MaxGoroutines, when positive, rejects new connections while the
	// process goroutine count is at or above it (default disabled: the
	// right value depends on what else shares the process).
	MaxGoroutines int
	// LowWaterFrac positions the admission low-water mark as a fraction
	// of MaxSessions (default 0.75). The gate, once closed, reopens only
	// at or below this level.
	LowWaterFrac float64
	// IdleAfter is how long (virtual time) a session must go without
	// data activity — and hold no unacked data — to be eligible for
	// first-wave shedding (default 30s).
	IdleAfter time.Duration
}

// Default server budgets.
const (
	DefaultMaxSessions      = 256
	DefaultMaxHandshakes    = 64
	DefaultMaxBufferedBytes = 1 << 30
	DefaultLowWaterFrac     = 0.75
	DefaultIdleAfter        = 30 * time.Second
)

func (b ServerBudgets) withDefaults() ServerBudgets {
	if b.MaxSessions <= 0 {
		b.MaxSessions = DefaultMaxSessions
	}
	if b.MaxTotalPaths <= 0 {
		b.MaxTotalPaths = 4 * b.MaxSessions
	}
	if b.MaxTotalStreams <= 0 {
		b.MaxTotalStreams = 64 * b.MaxSessions
	}
	if b.MaxHandshakes <= 0 {
		b.MaxHandshakes = DefaultMaxHandshakes
	}
	if b.MaxBufferedBytes == 0 {
		b.MaxBufferedBytes = DefaultMaxBufferedBytes
	}
	if b.LowWaterFrac <= 0 || b.LowWaterFrac >= 1 {
		b.LowWaterFrac = DefaultLowWaterFrac
	}
	if b.IdleAfter <= 0 {
		b.IdleAfter = DefaultIdleAfter
	}
	return b
}

// Accounting is the server-wide resource ledger shared by a listener
// and every session it admits (Config.Accounting). All gauges are
// atomics — admission decisions on the accept path are a handful of
// loads, never a lock — and the member set (needed only for shedding)
// is touched once per session lifetime.
//
// A nil *Accounting is valid and disables every check, so single-session
// and client configs pay nothing.
type Accounting struct {
	budgets ServerBudgets

	sessions   atomic.Int64
	paths      atomic.Int64
	streams    atomic.Int64
	handshakes atomic.Int64

	sessionsHWM atomic.Int64 // high-water mark of the sessions gauge

	connsSeen         atomic.Uint64 // connections that reached the pre-TLS gate
	handshakesStarted atomic.Uint64 // connections that began TLS handshake work
	admitted          atomic.Uint64 // sessions admitted
	rejectedPreTLS    atomic.Uint64 // connections closed before any TLS work
	rejectedJoins     atomic.Uint64 // JOINs refused on the global path budget
	shedIdle          atomic.Uint64 // sessions evicted as idle
	shedDegraded      atomic.Uint64 // sessions evicted as degraded
	admissionCloses   atomic.Uint64 // gate close transitions (overload episodes)

	gateClosed atomic.Bool // hysteresis: closed at MaxSessions, reopens at low water
	shedding   atomic.Bool // single-flight guard for shed passes

	tracer atomic.Pointer[telemetry.Tracer]

	// Decision-latency histograms (set by RegisterMetrics; nil = off).
	// Deliberately wall-clock nanoseconds, not virtual time: they measure
	// the CPU cost of the admission/shedding machinery itself.
	admitHist atomic.Pointer[telemetry.Histogram] // server.admit_ns
	shedHist  atomic.Pointer[telemetry.Histogram] // server.shed_pass_ns

	// The member set (shedding candidates) is sharded by session seq so
	// concurrent admissions and teardowns — once per session lifetime,
	// but C50K lifetimes overlap heavily under churn — only contend when
	// they land on the same shard. Session seqs are monotonic, so the
	// mask round-robins perfectly.
	members [memberShards]memberShard
}

// memberShards is the member-set shard count (power of two).
const memberShards = 16

type memberShard struct {
	mu  sync.Mutex
	set map[*Session]struct{}
}

func (a *Accounting) memberShard(s *Session) *memberShard {
	return &a.members[s.seq&(memberShards-1)]
}

// memberSnapshot copies the admitted sessions across every shard.
func (a *Accounting) memberSnapshot() []*Session {
	var out []*Session
	for i := range a.members {
		sh := &a.members[i]
		sh.mu.Lock()
		for s := range sh.set {
			out = append(out, s)
		}
		sh.mu.Unlock()
	}
	return out
}

// NewAccounting builds a server-wide ledger with the given budgets
// (zero fields take defaults). Share one Accounting per process — or
// per listener, if listeners should be isolated from each other.
func NewAccounting(b ServerBudgets) *Accounting {
	a := &Accounting{budgets: b.withDefaults()}
	for i := range a.members {
		a.members[i].set = make(map[*Session]struct{})
	}
	return a
}

// Budgets returns the effective (defaulted) budgets.
func (a *Accounting) Budgets() ServerBudgets { return a.budgets }

// attachTracer wires the admission/shed trace events to a tracer (the
// listener passes its own); the first non-nil tracer wins.
func (a *Accounting) attachTracer(t *telemetry.Tracer) {
	if a == nil || t == nil {
		return
	}
	a.tracer.CompareAndSwap(nil, t)
}

func (a *Accounting) trace() *telemetry.Tracer {
	if a == nil {
		return nil
	}
	return a.tracer.Load() // nil is a valid disabled tracer
}

// lowWater is the session count at or below which a closed admission
// gate reopens. Always strictly below MaxSessions.
func (a *Accounting) lowWater() int64 {
	lw := int64(a.budgets.LowWaterFrac * float64(a.budgets.MaxSessions))
	if lw >= int64(a.budgets.MaxSessions) {
		lw = int64(a.budgets.MaxSessions) - 1
	}
	if lw < 0 {
		lw = 0
	}
	return lw
}

// admitConn is the cheap pre-TLS admission gate: it runs before any
// key-schedule work, so a rejected connection costs the attacker a TCP
// handshake and the server a few atomic loads. It returns a typed
// *OverloadError when the server must refuse the connection.
func (a *Accounting) admitConn() error {
	if a == nil {
		return nil
	}
	if h := a.admitHist.Load(); h != nil {
		start := time.Now()
		defer func() { h.Observe(time.Since(start).Nanoseconds()) }()
	}
	a.connsSeen.Add(1)
	if a.gateClosed.Load() {
		a.rejectedPreTLS.Add(1)
		a.requestShed()
		return &OverloadError{Resource: "admission", Limit: int64(a.budgets.MaxSessions)}
	}
	if n := a.sessions.Load(); n >= int64(a.budgets.MaxSessions) {
		a.closeGate("sessions")
		a.rejectedPreTLS.Add(1)
		a.requestShed()
		return &OverloadError{Resource: "sessions", Limit: int64(a.budgets.MaxSessions)}
	}
	if hs := a.handshakes.Load(); hs >= int64(a.budgets.MaxHandshakes) {
		a.rejectedPreTLS.Add(1)
		return &OverloadError{Resource: "handshakes", Limit: int64(a.budgets.MaxHandshakes)}
	}
	if maxB := a.budgets.MaxBufferedBytes; maxB > 0 && bufpool.InUseBytes() >= maxB {
		a.rejectedPreTLS.Add(1)
		a.requestShed()
		return &OverloadError{Resource: "buffered bytes", Limit: maxB}
	}
	if maxG := a.budgets.MaxGoroutines; maxG > 0 && runtime.NumGoroutine() >= maxG {
		a.rejectedPreTLS.Add(1)
		a.requestShed()
		return &OverloadError{Resource: "goroutines", Limit: int64(maxG)}
	}
	return nil
}

// beginHandshake reserves a handshake-in-flight slot; endHandshake
// releases it once the TLS handshake finishes (either way). The reserve
// is a guaranteed slot, unlike admitConn's advisory load, so a burst
// racing through the gate still cannot exceed the budget.
func (a *Accounting) beginHandshake() error {
	if a == nil {
		return nil
	}
	if a.handshakes.Add(1) > int64(a.budgets.MaxHandshakes) {
		a.handshakes.Add(-1)
		a.rejectedPreTLS.Add(1)
		return &OverloadError{Resource: "handshakes", Limit: int64(a.budgets.MaxHandshakes)}
	}
	a.handshakesStarted.Add(1)
	return nil
}

func (a *Accounting) endHandshake() {
	if a != nil {
		a.handshakes.Add(-1)
	}
}

// rejectQueued counts a connection that passed admitConn but was
// dropped before any TLS work began — accept-queue overflow, or a
// drain after listener close. It preserves the accounting invariant
// conns_seen == handshakes_started + rejected_pre_tls on paths where
// beginHandshake will never run.
func (a *Accounting) rejectQueued() {
	if a == nil {
		return
	}
	a.rejectedPreTLS.Add(1)
}

// admitSession claims a session slot for s and registers it as a
// shedding candidate. The increment-then-check makes the cap exact even
// when handshakes race: the loser rolls back and is rejected.
func (a *Accounting) admitSession(s *Session) error {
	if a == nil {
		return nil
	}
	n := a.sessions.Add(1)
	if n > int64(a.budgets.MaxSessions) {
		a.sessions.Add(-1)
		a.closeGate("sessions")
		a.requestShed()
		return &OverloadError{Resource: "sessions", Limit: int64(a.budgets.MaxSessions)}
	}
	for {
		hwm := a.sessionsHWM.Load()
		if n <= hwm || a.sessionsHWM.CompareAndSwap(hwm, n) {
			break
		}
	}
	a.admitted.Add(1)
	s.mu.Lock()
	s.acctAdmitted = true // teardown releases the slot
	s.mu.Unlock()
	sh := a.memberShard(s)
	sh.mu.Lock()
	sh.set[s] = struct{}{}
	sh.mu.Unlock()
	return nil
}

// releaseSession returns s's slot and, when the count falls to the
// low-water mark, reopens a closed admission gate.
func (a *Accounting) releaseSession(s *Session) {
	if a == nil {
		return
	}
	sh := a.memberShard(s)
	sh.mu.Lock()
	delete(sh.set, s)
	sh.mu.Unlock()
	n := a.sessions.Add(-1)
	a.maybeReopen(n)
}

func (a *Accounting) closeGate(cause string) {
	if a.gateClosed.CompareAndSwap(false, true) {
		a.admissionCloses.Add(1)
		a.trace().Emit(telemetry.Event{Kind: telemetry.EvAdmission, A: 0, S: cause})
	}
}

func (a *Accounting) maybeReopen(n int64) {
	if n > a.lowWater() || !a.gateClosed.Load() {
		return
	}
	if a.gateClosed.CompareAndSwap(true, false) {
		a.trace().Emit(telemetry.Event{Kind: telemetry.EvAdmission, A: 1, S: "low-water"})
	}
}

// hasPathCapacity is the read-only JOIN pre-check: it runs before the
// one-time cookie is consumed, so a JOIN refused on the global budget
// keeps its cookie for a later rescue (mirroring the per-session check).
func (a *Accounting) hasPathCapacity() bool {
	if a == nil {
		return true
	}
	if a.paths.Load() >= int64(a.budgets.MaxTotalPaths) {
		a.rejectedJoins.Add(1)
		return false
	}
	return true
}

// acquirePath claims a global path slot (exact, with rollback).
func (a *Accounting) acquirePath() error {
	if a == nil {
		return nil
	}
	if a.paths.Add(1) > int64(a.budgets.MaxTotalPaths) {
		a.paths.Add(-1)
		return &OverloadError{Resource: "paths", Limit: int64(a.budgets.MaxTotalPaths)}
	}
	return nil
}

func (a *Accounting) releasePath() {
	if a != nil {
		a.paths.Add(-1)
	}
}

// acquireStream claims a global stream slot (exact, with rollback).
func (a *Accounting) acquireStream() error {
	if a == nil {
		return nil
	}
	if a.streams.Add(1) > int64(a.budgets.MaxTotalStreams) {
		a.streams.Add(-1)
		return &OverloadError{Resource: "streams", Limit: int64(a.budgets.MaxTotalStreams)}
	}
	return nil
}

func (a *Accounting) releaseStreams(n int) {
	if a != nil && n > 0 {
		a.streams.Add(-int64(n))
	}
}

// requestShed starts one shed pass in the background if none is
// running. Shedding is triggered by admission pressure (a rejection),
// not by a timer: a server idling at its ceiling with no new demand has
// nothing to gain from evicting anyone.
func (a *Accounting) requestShed() {
	if a == nil || !a.shedding.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer a.shedding.Store(false)
		a.shedPass()
	}()
}

// shedPass evicts sessions until the count reaches the low-water mark
// or no eligible victims remain, in strict priority order: idle
// sessions first (newest first — they have the least sunk state), then
// degraded/plain-TLS fallback sessions (already running at reduced
// capability), and never a healthy session with data in flight.
func (a *Accounting) shedPass() {
	if h := a.shedHist.Load(); h != nil {
		start := time.Now()
		defer func() { h.Observe(time.Since(start).Nanoseconds()) }()
	}
	members := a.memberSnapshot()

	var idle, degraded []*Session
	for _, s := range members {
		switch s.shedClass(a.budgets.IdleAfter) {
		case shedIdle:
			idle = append(idle, s)
		case shedDegraded:
			degraded = append(degraded, s)
		}
	}
	// Newest first within each wave: the youngest idle session has the
	// least invested state and the cheapest re-establishment cost.
	newestFirst := func(v []*Session) {
		sort.Slice(v, func(i, j int) bool { return v[i].seq > v[j].seq })
	}
	newestFirst(idle)
	newestFirst(degraded)

	low := a.lowWater()
	for _, victim := range [][]*Session{idle, degraded} {
		for _, s := range victim {
			if a.sessions.Load() <= low {
				return
			}
			a.shed(s)
		}
	}
}

// shedClass classifies one session for the shed pass.
type shedClassKind int

const (
	shedProtected shedClassKind = iota // healthy, or data in flight: never shed
	shedIdle                           // no activity for IdleAfter, nothing unacked
	shedDegraded                       // plain-TLS fallback or capabilities shed
)

func (k shedClassKind) String() string {
	switch k {
	case shedIdle:
		return "idle"
	case shedDegraded:
		return "degraded"
	}
	return "protected"
}

func (s *Session) shedClass(idleAfter time.Duration) shedClassKind {
	if s.Closed() {
		return shedProtected // already going away; nothing to reclaim
	}
	if s.idleFor(idleAfter) {
		return shedIdle
	}
	if s.PlainMode() || s.DegradedCaps() != 0 {
		return shedDegraded
	}
	return shedProtected
}

// idleFor reports whether the session has moved no stream data for d
// (virtual time) and holds no unacked data — i.e. evicting it now
// cannot interrupt a transfer.
func (s *Session) idleFor(d time.Duration) bool {
	last := time.Unix(0, s.lastActive.Load())
	if s.virtualSince(last) < d {
		return false
	}
	for _, ss := range s.StreamStates() {
		if ss.Unacked > 0 || ss.RecvBuffered > 0 || ss.OOO > 0 {
			return false
		}
	}
	return true
}

// shed evicts one session: a trace event names the victim and class,
// then teardown reclaims its paths, streams, buffers and accounting.
func (a *Accounting) shed(s *Session) {
	class := s.shedClass(a.budgets.IdleAfter)
	if class == shedProtected {
		return // re-check under race: it woke up since classification
	}
	switch class {
	case shedIdle:
		a.shedIdle.Add(1)
	case shedDegraded:
		a.shedDegraded.Add(1)
	}
	// The shed event goes to the accounting's tracer (the listener's)
	// and, stamped identically, into the victim's flight recorder so the
	// teardown dump below carries the reason it died.
	ev := telemetry.Event{
		Kind: telemetry.EvSessionShed,
		A:    int64(s.ConnID()),
		S:    class.String(),
	}
	tr := a.trace()
	ev.Time = tr.Now()
	ev.EP = tr.Endpoint()
	s.flight.Record(ev)
	tr.Emit(ev)
	s.teardown(&OverloadError{Resource: "shed:" + class.String(), Limit: int64(a.budgets.MaxSessions)})
}

// AccountingStats is a point-in-time snapshot of the ledger.
type AccountingStats struct {
	Sessions          int64
	SessionsHWM       int64
	Paths             int64
	Streams           int64
	Handshakes        int64
	ConnsSeen         uint64
	HandshakesStarted uint64
	Admitted          uint64
	RejectedPreTLS    uint64
	RejectedJoins     uint64
	ShedIdle          uint64
	ShedDegraded      uint64
	AdmissionCloses   uint64
	GateOpen          bool
}

// Stats snapshots every gauge and counter.
func (a *Accounting) Stats() AccountingStats {
	if a == nil {
		return AccountingStats{GateOpen: true}
	}
	return AccountingStats{
		Sessions:          a.sessions.Load(),
		SessionsHWM:       a.sessionsHWM.Load(),
		Paths:             a.paths.Load(),
		Streams:           a.streams.Load(),
		Handshakes:        a.handshakes.Load(),
		ConnsSeen:         a.connsSeen.Load(),
		HandshakesStarted: a.handshakesStarted.Load(),
		Admitted:          a.admitted.Load(),
		RejectedPreTLS:    a.rejectedPreTLS.Load(),
		RejectedJoins:     a.rejectedJoins.Load(),
		ShedIdle:          a.shedIdle.Load(),
		ShedDegraded:      a.shedDegraded.Load(),
		AdmissionCloses:   a.admissionCloses.Load(),
		GateOpen:          !a.gateClosed.Load(),
	}
}

// RegisterMetrics publishes the ledger under server.* on reg, plus the
// process goroutine count and the pooled-buffer in-use gauge the
// admission gate reads.
func (a *Accounting) RegisterMetrics(reg *telemetry.Registry) {
	if a == nil || reg == nil {
		return
	}
	reg.Func("server.sessions", func() int64 { return a.sessions.Load() })
	reg.Func("server.sessions_hwm", func() int64 { return a.sessionsHWM.Load() })
	reg.Func("server.paths", func() int64 { return a.paths.Load() })
	reg.Func("server.streams", func() int64 { return a.streams.Load() })
	reg.Func("server.handshakes_inflight", func() int64 { return a.handshakes.Load() })
	reg.Func("server.conns_seen", func() int64 { return int64(a.connsSeen.Load()) })
	reg.Func("server.handshakes_started", func() int64 { return int64(a.handshakesStarted.Load()) })
	reg.Func("server.admitted", func() int64 { return int64(a.admitted.Load()) })
	reg.Func("server.rejected_pre_tls", func() int64 { return int64(a.rejectedPreTLS.Load()) })
	reg.Func("server.rejected_joins", func() int64 { return int64(a.rejectedJoins.Load()) })
	reg.Func("server.shed_idle", func() int64 { return int64(a.shedIdle.Load()) })
	reg.Func("server.shed_degraded", func() int64 { return int64(a.shedDegraded.Load()) })
	reg.Func("server.admission_closes", func() int64 { return int64(a.admissionCloses.Load()) })
	reg.Func("server.admission_open", func() int64 {
		if a.gateClosed.Load() {
			return 0
		}
		return 1
	})
	reg.Func("server.goroutines", func() int64 { return int64(runtime.NumGoroutine()) })
	reg.Func("server.bufpool_in_use_bytes", bufpool.InUseBytes)
	a.admitHist.Store(reg.Histogram("server.admit_ns"))
	a.shedHist.Store(reg.Histogram("server.shed_pass_ns"))
}
