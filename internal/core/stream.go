package core

import (
	"io"
	"sort"
	"sync"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
	"github.com/pluginized-protocols/gotcpls/internal/record"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// Stream is one TCPLS datastream (§2.3): an ordered, reliable byte
// stream with its own cryptographic context, multiplexed over the
// session's TCP connections. Data carries TCPLS sequence numbers
// (offsets), so it can be sprayed over several connections (multipath)
// and replayed after a connection failure (failover) — the receiver
// reorders and deduplicates by offset.
type Stream struct {
	id      uint32
	session *Session
	remote  bool // opened by the peer

	mu        sync.Mutex
	readCond  *sync.Cond
	writeCond *sync.Cond
	spaceCond *sync.Cond // receive-buffer space freed (backpressure)

	// Send side.
	sendOffset uint64 // next offset to assign
	ackedTo    uint64
	unacked    []*record.StreamChunk // replay buffer (§2.1)
	unackedLen int
	finSent    bool
	attached   *pathConn // preferred connection (ModeSinglePath)

	// Receive side. Decrypted record payloads are queued as segments
	// still backed by their pooled record buffers; the single copy to
	// application memory happens in Read, which then recycles them.
	recvQ        []recvSeg
	recvQBytes   int
	recvNext     uint64
	ooo          []oooSeg
	oooBytes     int // reassembly footprint: data + per-chunk overhead
	finalOffset  uint64
	finKnown     bool
	sinceLastAck uint64

	openedAt time.Time // creation time (TTFB timer start; immutable)
	ttfbSeen bool      // first inbound data byte observed (st.mu)

	err    error
	closed bool
}

// recvSeg is in-order stream data awaiting Read. data points into
// owner, the pooled decrypted-record buffer, which is returned to the
// pool once the segment is fully consumed. A nil owner means the data
// is not pooled (and is simply dropped for the garbage collector).
type recvSeg struct {
	data  []byte
	owner []byte
}

// oooSeg is buffered out-of-order stream data, same ownership rules.
type oooSeg struct {
	off   uint64
	data  []byte
	owner []byte
}

func newStream(s *Session, id uint32, remote bool) *Stream {
	st := &Stream{id: id, session: s, remote: remote, openedAt: time.Now()}
	st.readCond = sync.NewCond(&st.mu)
	st.writeCond = sync.NewCond(&st.mu)
	st.spaceCond = sync.NewCond(&st.mu)
	return st
}

// chunkOverhead is the accounting charge per buffered out-of-order
// chunk beyond its payload, so a spray of tiny fragments cannot dodge
// the byte bound while exploding the chunk count.
const chunkOverhead = 64

// ID returns the stream identifier.
func (st *Stream) ID() uint32 { return st.id }

// Remote reports whether the peer opened this stream.
func (st *Stream) Remote() bool { return st.remote }

// NewStream opens a stream (tcpls_stream_new).
func (s *Session) NewStream() (*Stream, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	if len(s.streams) >= s.limits.MaxStreams {
		err := &LimitError{Limit: "streams", Max: s.limits.MaxStreams}
		s.mu.Unlock()
		return nil, err
	}
	if s.plainMode && len(s.streams) >= 1 {
		// Plain TLS has no stream multiplexing on the wire: a degraded
		// session carries exactly one stream.
		s.mu.Unlock()
		return nil, ErrCapabilityDisabled
	}
	if err := s.acct.acquireStream(); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.acctStreams++
	id := s.nextStreamID
	s.nextStreamID += 2
	st := newStream(s, id, false)
	s.streams[id] = st
	s.mu.Unlock()
	s.emit(telemetry.Event{Kind: telemetry.EvStreamOpen, Stream: id})
	return st, nil
}

// AcceptStream waits for the peer to open a stream.
func (s *Session) AcceptStream() (*Stream, error) {
	st, ok := <-s.acceptCh
	if !ok {
		return nil, ErrSessionClosed
	}
	return st, nil
}

// Streams returns a snapshot of the session's streams.
func (s *Session) Streams() []*Stream {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Stream, 0, len(s.streams))
	for _, st := range s.streams {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// getOrCreateStream resolves inbound stream ids, creating peer-opened
// streams and announcing them via AcceptStream/StreamOpened.
func (s *Session) getOrCreateStream(id uint32, pc *pathConn) *Stream {
	s.mu.Lock()
	if st, ok := s.streams[id]; ok {
		s.mu.Unlock()
		return st
	}
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	if len(s.streams) >= s.limits.MaxStreams {
		// A peer opening streams past the negotiated budget is violating
		// the protocol, not reordering: refusing the stream silently
		// would desynchronize the two ends, so the session ends.
		err := &LimitError{Limit: "streams", Max: s.limits.MaxStreams}
		s.mu.Unlock()
		s.teardown(err)
		return nil
	}
	if err := s.acct.acquireStream(); err != nil {
		// The process-wide stream budget is gone: this session is within
		// its own limits, but the server as a whole is not — end the
		// session with the typed overload error rather than desync.
		s.mu.Unlock()
		s.teardown(err)
		return nil
	}
	s.acctStreams++
	st := newStream(s, id, true)
	st.attached = pc
	s.streams[id] = st
	s.mu.Unlock()
	s.emit(telemetry.Event{Kind: telemetry.EvStreamOpen, Stream: id, A: 1})
	select {
	case s.acceptCh <- st:
	default:
	}
	if cb := s.cfg.Callbacks.StreamOpened; cb != nil {
		cb(st)
	}
	return st
}

// Attach pins the stream to one of the session's TCP connections
// (tcpls_streams_attach): in single-path mode, all its data flows there.
func (st *Stream) Attach(pathID uint32) error {
	pc := st.session.path(pathID)
	if pc == nil {
		return ErrNoConnection
	}
	st.mu.Lock()
	st.attached = pc
	st.mu.Unlock()
	return nil
}

// AttachedPath returns the current attachment (0 if none).
func (st *Stream) AttachedPath() uint32 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.attached == nil {
		return 0
	}
	return st.attached.id
}

// pickConn selects the connection for the next chunk.
func (st *Stream) pickConn() *pathConn {
	pc, _, _ := st.pickConnInfo()
	return pc
}

// pickConnInfo selects the connection for the next chunk, also
// reporting the free congestion-window estimate and whether the
// transport is introspectable (aggregate pacing uses both).
func (st *Stream) pickConnInfo() (*pathConn, int, bool) {
	s := st.session
	st.mu.Lock()
	attached := st.attached
	st.mu.Unlock()
	if s.cfg.Mode == ModeSinglePath {
		if attached != nil && !attached.isClosed() {
			return attached, 0, false
		}
		pc := s.primaryPath()
		if pc != nil {
			st.mu.Lock()
			st.attached = pc
			st.mu.Unlock()
		}
		return pc, 0, false
	}
	// Aggregation: pick the live connection with the most free
	// congestion window (cross-layer scheduling); fall back to the
	// primary when nothing is introspectable.
	var best *pathConn
	bestFree := -1
	introspectable := false
	for _, pc := range s.livePaths() {
		free := 0
		if in := pc.introspector(); in != nil {
			introspectable = true
			cwnd, inflight, _ := in.CWndInfo()
			free = cwnd - inflight
		}
		if free > bestFree {
			best, bestFree = pc, free
		}
	}
	return best, bestFree, introspectable
}

// Write implements io.Writer: data is chunked, sequenced, encrypted
// under the stream's context and retained for replay until acked.
//
// Chunks are flushed in bursts: everything one pass can frame (up to
// maxWriteBurst chunks) is sequenced under a single stream-lock
// acquisition and handed to the batched record writer, which seals the
// whole burst into one buffer and issues one transport write. In
// aggregation mode the burst is a single cwnd-matched chunk, because
// each chunk re-picks the least-loaded path (striping granularity is
// the point there, not batching).
func (st *Stream) Write(p []byte) (int, error) {
	total := 0
	burst := make([]*record.StreamChunk, 0, maxWriteBurst)
	for len(p) > 0 {
		st.mu.Lock()
		for st.unackedLen >= replayBufferLimit && st.err == nil && !st.session.cfg.DisableAcks {
			st.writeCond.Wait()
		}
		if st.err != nil {
			err := st.err
			st.mu.Unlock()
			return total, err
		}
		if st.finSent || st.closed {
			st.mu.Unlock()
			return total, ErrSessionClosed
		}
		st.mu.Unlock()

		pc, free, introspectable := st.pickConnInfo()
		if pc == nil {
			// Migration/failover gap: wait for the session to re-establish
			// connectivity rather than failing the write — the paper's
			// server "seamlessly switches the path while looping over
			// tcpls_send" (§3.2).
			pc = st.session.waitForPath(30 * time.Second)
			if pc == nil {
				return total, ErrNoConnection
			}
			continue
		}
		aggregate := st.session.cfg.Mode == ModeAggregate
		if aggregate && introspectable && free < 1024 {
			// Every path's window is full: writing now would block on one
			// TCP connection's buffer and starve the others. Yield until
			// acks open a window somewhere (cross-layer pacing).
			time.Sleep(st.session.cfg.Clock.ScaleDuration(500 * time.Microsecond))
			continue
		}
		burstCap := maxWriteBurst
		if aggregate {
			burstCap = 1 // per-chunk path re-selection stripes the load
		}
		chunkLen := pc.chunkSize()

		st.mu.Lock()
		burst = burst[:0]
		for len(p) > 0 && len(burst) < burstCap {
			n := min(len(p), chunkLen)
			chunk := &record.StreamChunk{
				StreamID: st.id,
				Offset:   st.sendOffset,
				Data:     append([]byte(nil), p[:n]...),
			}
			st.sendOffset += uint64(n)
			st.unacked = append(st.unacked, chunk)
			st.unackedLen += n
			burst = append(burst, chunk)
			p = p[n:]
			total += n
			if st.unackedLen >= replayBufferLimit {
				break // re-enter the backpressure wait before continuing
			}
		}
		st.mu.Unlock()

		if err := pc.writeChunkBatch(burst); err != nil {
			// The connection died mid-write: the chunks stay in the
			// replay buffer, failover will resend them. Surface the error
			// only if the whole session is done.
			pc.handleDeath(err)
			if st.session.Closed() {
				return total, err
			}
		}
	}
	return total, nil
}

// Close half-closes the stream (tcpls_stream_close): a FIN chunk marks
// the final offset; the peer reads io.EOF after consuming everything.
// Closing the last stream attached to a connection is the paper's
// mechanism for closing that connection (§2.1) — the session handles
// that at the public-API layer.
func (st *Stream) Close() error {
	st.mu.Lock()
	if st.finSent {
		st.mu.Unlock()
		return nil
	}
	st.finSent = true
	chunk := &record.StreamChunk{StreamID: st.id, Offset: st.sendOffset, Fin: true}
	st.unacked = append(st.unacked, chunk)
	final := st.sendOffset
	st.mu.Unlock()
	st.session.emit(telemetry.Event{
		Kind:   telemetry.EvStreamClose,
		Stream: st.id,
		A:      int64(final),
	})
	pc := st.pickConn()
	if pc == nil {
		pc = st.session.waitForPath(30 * time.Second)
	}
	if pc == nil {
		return ErrNoConnection
	}
	if err := pc.writeChunk(chunk); err != nil {
		pc.handleDeath(err)
	}
	return nil
}

// Read implements io.Reader with in-order delivery. This is the single
// copy on the receive path: queued segments still live in their pooled
// record buffers, and a fully consumed segment's buffer is recycled
// here — the returned bytes never alias them.
func (st *Stream) Read(p []byte) (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.recvQBytes > 0 {
			n := 0
			for n < len(p) && len(st.recvQ) > 0 {
				seg := &st.recvQ[0]
				m := copy(p[n:], seg.data)
				n += m
				if m == len(seg.data) {
					bufpool.Put(seg.owner)
					st.recvQ[0] = recvSeg{}
					st.recvQ = st.recvQ[1:]
				} else {
					seg.data = seg.data[m:]
				}
			}
			st.recvQBytes -= n
			if len(st.recvQ) == 0 {
				st.recvQ = nil // let the drained backing array go
			}
			st.spaceCond.Broadcast() // wake read loops parked on backpressure
			return n, nil
		}
		if st.finKnown && st.recvNext >= st.finalOffset {
			return 0, io.EOF
		}
		if st.err != nil {
			return 0, st.err
		}
		st.readCond.Wait()
	}
}

// deliver ingests one inbound chunk: trim duplicates, reorder, ack.
// It enforces the stream's receive-memory budget in two regimes. A full
// in-order buffer means the application is slow: the calling read loop
// parks here until Read frees space, which stops draining the TCP
// connection and lets transport flow control push back on the peer. An
// out-of-order set past the budget cannot come from a compliant sender
// (its replay buffer bounds un-acked data, and there is no TCPLS-layer
// retransmission to re-request a dropped chunk), so it is treated as an
// attack and the session is torn down with a typed LimitError.
func (st *Stream) deliver(pc *pathConn, chunk *record.StreamChunk, owner []byte) {
	limit := st.session.limits.MaxStreamRecvBuffer
	st.mu.Lock()
	if chunk.Offset > st.recvNext &&
		st.oooBytes+len(chunk.Data)+chunkOverhead > limit {
		st.mu.Unlock()
		bufpool.Put(owner)
		st.session.teardown(&LimitError{Limit: "stream reassembly", Max: limit})
		return
	}
	for st.err == nil && st.recvQBytes >= limit {
		st.spaceCond.Wait()
	}
	if st.err != nil {
		st.mu.Unlock()
		bufpool.Put(owner)
		return
	}
	if chunk.Fin && !st.finKnown {
		st.finKnown = true
		st.finalOffset = chunk.Offset + uint64(len(chunk.Data))
	}
	st.ingest(chunk, owner)
	firstData := len(chunk.Data) > 0 && !st.ttfbSeen
	if firstData {
		st.ttfbSeen = true
	}
	st.sinceLastAck += uint64(len(chunk.Data))
	finDelivered := st.finKnown && st.recvNext >= st.finalOffset
	needAck := !st.session.cfg.DisableAcks &&
		(st.sinceLastAck >= ackInterval || finDelivered)
	var ackOffset uint64
	if needAck {
		st.sinceLastAck = 0
		ackOffset = st.recvNext
		if finDelivered {
			// The FIN occupies one virtual sequence slot: acking past the
			// final offset tells the sender the FIN itself arrived, so it
			// can release the FIN chunk from the replay buffer. An ack at
			// exactly finalOffset only covers the data — the FIN may have
			// died with a failed connection and still need replaying.
			ackOffset = st.finalOffset + 1
		}
	}
	st.readCond.Broadcast()
	st.mu.Unlock()
	if firstData {
		// Time-to-first-byte: stream creation to its first delivered
		// inbound data byte (virtual time).
		st.session.observePhase("ttfb_ns", st.openedAt)
	}
	if needAck {
		pc.writeControl(record.Ack{StreamID: st.id, Offset: ackOffset})
	}
}

// ingest merges a chunk into the receive state, taking ownership of the
// pooled buffer backing chunk.Data. Caller holds st.mu. Buffers are
// queued, not copied: in-order data waits for Read, out-of-order data
// waits for the gap to fill, and only fully duplicate data recycles its
// buffer immediately.
func (st *Stream) ingest(chunk *record.StreamChunk, owner []byte) {
	data := chunk.Data
	off := chunk.Offset
	if off < st.recvNext {
		skip := st.recvNext - off
		if skip >= uint64(len(data)) {
			bufpool.Put(owner)
			return // complete duplicate (failover replay)
		}
		data = data[skip:]
		off = st.recvNext
	}
	if off == st.recvNext {
		if len(data) > 0 {
			st.recvQ = append(st.recvQ, recvSeg{data: data, owner: owner})
			st.recvQBytes += len(data)
			st.recvNext += uint64(len(data))
		} else {
			bufpool.Put(owner)
		}
		st.drainOOO()
		return
	}
	// Out of order: insert sorted by offset (multipath reordering).
	idx := sort.Search(len(st.ooo), func(i int) bool { return st.ooo[i].off >= off })
	if idx < len(st.ooo) && st.ooo[idx].off == off && len(st.ooo[idx].data) >= len(data) {
		bufpool.Put(owner)
		return
	}
	st.ooo = append(st.ooo, oooSeg{})
	copy(st.ooo[idx+1:], st.ooo[idx:])
	st.ooo[idx] = oooSeg{off: off, data: data, owner: owner}
	st.oooBytes += len(data) + chunkOverhead
}

// drainOOO pulls newly contiguous chunks into the receive queue.
// Caller holds st.mu.
func (st *Stream) drainOOO() {
	for len(st.ooo) > 0 {
		c := st.ooo[0]
		if c.off > st.recvNext {
			return
		}
		st.ooo[0] = oooSeg{}
		st.ooo = st.ooo[1:]
		st.oooBytes -= len(c.data) + chunkOverhead
		if skip := st.recvNext - c.off; skip < uint64(len(c.data)) {
			st.recvQ = append(st.recvQ, recvSeg{data: c.data[skip:], owner: c.owner})
			st.recvQBytes += len(c.data) - int(skip)
			st.recvNext += uint64(len(c.data)) - skip
		} else {
			bufpool.Put(c.owner) // overtaken by newer data: duplicate
		}
	}
	if len(st.ooo) == 0 {
		st.ooo = nil
	}
}

// handleAck trims the replay buffer below offset.
func (st *Stream) handleAck(offset uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if offset <= st.ackedTo {
		return
	}
	st.ackedTo = offset
	out := st.unacked[:0]
	for _, c := range st.unacked {
		if c.Offset+uint64(len(c.Data)) <= offset && !c.Fin {
			st.unackedLen -= len(c.Data)
			continue
		}
		if c.Fin && offset > c.Offset {
			// Strictly greater: the receiver acks finalOffset+1 once the
			// FIN is delivered. An ack of exactly finalOffset covers the
			// data only, and the FIN chunk must survive for replay.
			continue
		}
		out = append(out, c)
	}
	st.unacked = out
	st.writeCond.Broadcast()
}

// replayUnacked resends the replay buffer on pc (failover, §2.1: "replay
// the records that have been lost"; the receiver deduplicates).
func (st *Stream) replayUnacked(pc *pathConn) {
	st.mu.Lock()
	chunks := append([]*record.StreamChunk(nil), st.unacked...)
	st.attached = pc
	st.mu.Unlock()
	if len(chunks) > 0 {
		st.session.ctr.replays.Add(uint64(len(chunks)))
	}
	for _, c := range chunks {
		if err := pc.writeChunk(c); err != nil {
			return
		}
	}
}

// terminate fails the stream (session death) and recycles its queued
// receive buffers — nothing will Read them. Safe under st.mu: Read
// copies out under the same lock, so no reader holds a segment here.
func (st *Stream) terminate(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.closed = true
	for _, seg := range st.recvQ {
		bufpool.Put(seg.owner)
	}
	st.recvQ, st.recvQBytes = nil, 0
	for _, o := range st.ooo {
		bufpool.Put(o.owner)
	}
	st.ooo, st.oooBytes = nil, 0
	st.readCond.Broadcast()
	st.writeCond.Broadcast()
	st.spaceCond.Broadcast() // free read loops parked on backpressure
	st.mu.Unlock()
}

// BytesUnacked reports the replay-buffer occupancy (introspection).
func (st *Stream) BytesUnacked() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.unackedLen
}

// StreamState is a point-in-time snapshot of one stream's transfer
// state — the first thing to look at when a chaos run wedges.
type StreamState struct {
	ID           uint32
	SendOffset   uint64 // next send offset to assign
	AckedTo      uint64 // highest cumulative ack received
	Unacked      int    // replay-buffer bytes
	FinSent      bool
	RecvNext     uint64 // next in-order receive offset
	OOO          int    // buffered out-of-order chunks
	OOOBytes     int    // reassembly footprint (data + overhead)
	RecvBuffered int    // in-order bytes awaiting Read
	FinKnown     bool
	FinalOff     uint64
}

func (st *Stream) state() StreamState {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StreamState{
		ID:           st.id,
		SendOffset:   st.sendOffset,
		AckedTo:      st.ackedTo,
		Unacked:      st.unackedLen,
		FinSent:      st.finSent,
		RecvNext:     st.recvNext,
		OOO:          len(st.ooo),
		OOOBytes:     st.oooBytes,
		RecvBuffered: st.recvQBytes,
		FinKnown:     st.finKnown,
		FinalOff:     st.finalOffset,
	}
}

// StreamStates snapshots every stream of the session.
func (s *Session) StreamStates() []StreamState {
	s.mu.Lock()
	streams := make([]*Stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.mu.Unlock()
	out := make([]StreamState, 0, len(streams))
	for _, st := range streams {
		out = append(out, st.state())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
