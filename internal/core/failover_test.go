package core

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/tcpnet"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

var errInjected = errors.New("injected path death")

// countingDialer wraps a Dialer and counts attempts — it makes backoff
// loops observable from tests.
type countingDialer struct {
	inner Dialer
	calls atomic.Int32
}

func (d *countingDialer) Dial(laddr netip.Addr, raddr netip.AddrPort, timeout time.Duration) (net.Conn, error) {
	d.calls.Add(1)
	return d.inner.Dial(laddr, raddr, timeout)
}

// fastRetry keeps reconnect loops quick under emulated time.
func fastRetry() RetryPolicy {
	return RetryPolicy{
		Base:        10 * time.Millisecond,
		Cap:         50 * time.Millisecond,
		MaxAttempts: 10,
		DialTimeout: 250 * time.Millisecond,
	}
}

// transfer pushes data through a fresh stream and verifies byte-exact
// arrival, surviving whatever failover happens mid-flight.
func transfer(t *testing.T, cli, srv *Session, size int) {
	t.Helper()
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	st, err := cli.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := st.Write(data)
		if err == nil {
			err = st.Close()
		}
		errCh <- err
	}()
	sst, err := srv.AcceptStream()
	if err != nil {
		t.Fatalf("accept stream: %v", err)
	}
	got, err := io.ReadAll(sst)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if werr := <-errCh; werr != nil {
		t.Fatalf("write: %v", werr)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("transfer corrupted: got %d bytes, want %d", len(got), len(data))
	}
}

// TestFailoverAllPathsSimultaneous kills every connection of a dual-path
// session at once: the single-flight guard must produce exactly one
// reconnect loop, and the session must recover and finish the transfer.
func TestFailoverAllPathsSimultaneous(t *testing.T) {
	v4, v6 := fastLinks()
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{Retry: fastRetry()})
	cli, srv := e.connect(t, &Config{Retry: fastRetry(), RetrySeed: 42})
	if _, err := cli.Connect(cV6, netip.AddrPortFrom(sV6, 443), time.Second); err != nil {
		t.Fatalf("join v6: %v", err)
	}
	waitCond(t, time.Second, func() bool { return cli.NumConns() == 2 })

	// Open the stream first so hasOpenStreams is true during the blast.
	done := make(chan struct{})
	go func() {
		defer close(done)
		transfer(t, cli, srv, 256<<10)
	}()
	time.Sleep(10 * time.Millisecond) // let the transfer get airborne

	paths := cli.livePaths()
	if len(paths) != 2 {
		t.Fatalf("live paths: %d", len(paths))
	}
	for _, pc := range paths {
		go pc.handleDeath(errInjected)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("transfer did not recover from simultaneous path death")
	}
	if cli.Closed() || srv.Closed() {
		t.Fatalf("session died: cli=%v srv=%v", cli.Err(), srv.Err())
	}
}

// TestFailoverOrderlyCloseWithOpenStreams has the server orderly-close
// the session's only connection (ConnClose control frame) while client
// streams are still open: the client must treat it as a failover case
// and re-establish rather than strand the writers.
func TestFailoverOrderlyCloseWithOpenStreams(t *testing.T) {
	v4, v6 := fastLinks()
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{Retry: fastRetry()})
	cli, srv := e.connect(t, &Config{Retry: fastRetry(), RetrySeed: 43})

	done := make(chan struct{})
	go func() {
		defer close(done)
		transfer(t, cli, srv, 512<<10)
	}()
	time.Sleep(15 * time.Millisecond)

	if err := srv.ClosePath(srv.primaryPath().id); err != nil {
		t.Fatalf("server close path: %v", err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("transfer did not survive orderly close with open streams")
	}
	if cli.Closed() {
		t.Fatalf("client died: %v", cli.Err())
	}
}

// TestFailoverRescueMidBackoff parks the client's reconnect loop in a
// long backoff against dead links, then rescues the session through the
// application's own Connect on a healed link: the loop must adopt the
// rescue path, replay, and stand down.
func TestFailoverRescueMidBackoff(t *testing.T) {
	v4, v6 := fastLinks()
	retry := RetryPolicy{
		Base:        800 * time.Millisecond, // park the loop in backoff
		Cap:         800 * time.Millisecond,
		MaxAttempts: 20,
		DialTimeout: 100 * time.Millisecond,
	}
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{Retry: fastRetry()},
		netsim.WithTimeScale(0.25))
	cli, srv := e.connect(t, &Config{Retry: retry, RetrySeed: 44})

	done := make(chan struct{})
	go func() {
		defer close(done)
		transfer(t, cli, srv, 128<<10)
	}()
	time.Sleep(10 * time.Millisecond)

	// Dead links: the reconnect loop's dials all time out, then it backs
	// off for 800ms (virtual).
	e.linkV4.SetDown(true)
	e.linkV6.SetDown(true)
	cli.primaryPath().handleDeath(errInjected)

	// Heal v6 and rescue through the application avenue while the loop
	// is still sleeping.
	time.Sleep(100 * time.Millisecond)
	e.linkV6.SetDown(false)
	if _, err := cli.Connect(cV6, netip.AddrPortFrom(sV6, 443), 2*time.Second); err != nil {
		t.Fatalf("rescue join: %v", err)
	}

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("rescue path did not revive the transfer")
	}
	if cli.Closed() || srv.Closed() {
		t.Fatalf("session died: cli=%v srv=%v", cli.Err(), srv.Err())
	}
}

// TestServerWaitsForJoinRescue kills the only connection mid-transfer:
// the server must not tear down or dial back — it holds the session
// state until the client JOINs again (§2.1), then the transfer
// finishes over the rescue connection. The transfer is bigger than the
// replay buffer and the link is rate-limited, so the tail of the data
// cannot ride out on the dying connection's send buffer: finishing
// requires the JOIN.
func TestServerWaitsForJoinRescue(t *testing.T) {
	v4, v6 := fastLinks()
	v4.BandwidthBps = 100e6
	v6.BandwidthBps = 100e6
	var joins atomic.Int32
	srvCfg := &Config{
		Retry:     fastRetry(),
		Callbacks: Callbacks{Join: func(uint32, net.Addr) { joins.Add(1) }},
	}
	e := dualStackEnv(t, v4, v6, &Config{}, srvCfg)
	cli, srv := e.connect(t, &Config{Retry: fastRetry(), RetrySeed: 45})

	done := make(chan struct{})
	go func() {
		defer close(done)
		transfer(t, cli, srv, 8<<20)
	}()
	time.Sleep(30 * time.Millisecond)

	cli.primaryPath().handleDeath(errInjected)

	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("transfer did not survive connection death")
	}
	if srv.Closed() {
		t.Fatalf("server tore down instead of waiting for JOIN: %v", srv.Err())
	}
	if joins.Load() == 0 {
		t.Fatal("client never joined back")
	}
}

// TestCloseInterruptsBackoff verifies the retry loop is cancelable: with
// every address dead, Close() must stop the dialing promptly instead of
// letting it burn through the whole attempt budget.
func TestCloseInterruptsBackoff(t *testing.T) {
	v4, v6 := fastLinks()
	retry := RetryPolicy{
		Base:        200 * time.Millisecond,
		Cap:         time.Second,
		MaxAttempts: 50,
		DialTimeout: 150 * time.Millisecond,
	}
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{Retry: fastRetry()})
	cd := &countingDialer{inner: tcpnet.Dialer{Stack: e.client}}
	cfg := &Config{
		Retry:     retry,
		RetrySeed: 46,
		TLS:       &tls13.Config{InsecureSkipVerify: true},
		Clock:     e.net,
	}
	cli := NewClient(cfg, cd)
	type res struct {
		s   *Session
		err error
	}
	acceptCh := make(chan res, 1)
	go func() {
		s, err := e.listener.Accept()
		acceptCh <- res{s, err}
	}()
	if _, err := cli.Connect(netip.Addr{}, netip.AddrPortFrom(sV4, 443), 5*time.Second); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if err := cli.Handshake(); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	r := <-acceptCh
	if r.err != nil {
		t.Fatalf("accept: %v", r.err)
	}
	defer r.s.Close()

	// Kill the links and the only path: every reconnect dial now times
	// out, so the loop alternates dial timeouts and backoff sleeps.
	e.linkV4.SetDown(true)
	e.linkV6.SetDown(true)
	base := cd.calls.Load()
	cli.primaryPath().handleDeath(errInjected)
	waitCond(t, 5*time.Second, func() bool { return cd.calls.Load() > base })

	if err := cli.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if !cli.Closed() {
		t.Fatal("session not closed")
	}
	// The loop must stop dialing almost immediately: give it one grace
	// window, then require the count to stay frozen.
	time.Sleep(300 * time.Millisecond)
	frozen := cd.calls.Load()
	time.Sleep(700 * time.Millisecond)
	if got := cd.calls.Load(); got != frozen {
		t.Fatalf("reconnect kept dialing after Close: %d -> %d", frozen, got)
	}
	// And it cannot have burned the whole budget (50 attempts x 2 addrs)
	// in the short window before Close landed.
	if got := cd.calls.Load(); got > 20 {
		t.Fatalf("suspiciously many dial attempts before Close: %d", got)
	}
}

// waitCond polls until cond holds or the deadline passes.
func waitCond(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}
