//go:build race

package core

// raceEnabled relaxes wall-clock performance assertions: the race
// detector's instrumentation slows the real-time emulator enough to
// break throughput expectations that hold in normal builds.
const raceEnabled = true
