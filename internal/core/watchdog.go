package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// Stall watchdog: detects slow-drain peers. A peer that accepts a
// connection and then stops reading pins the sender's replay buffer
// (unacked chunks), its pooled receive segments and one parked write
// path — per-session limits alone never free them, because the peer is
// not violating any cap, just not draining. The watchdog runs on the
// session clock and declares a stall when either
//
//   - a stream holds unacked data and the cumulative ack has made no
//     progress for StallTimeout (write stall), or
//   - a path's peer has advertised a zero receive window for
//     StallTimeout while the session has data waiting (zero-window
//     persist — read through the transport's cross-layer window when it
//     exposes one).
//
// A stalled session is torn down with a typed *StallError, which
// reclaims its buffers and releases its server-wide accounting. Paths
// that stop answering health probes are handled separately by the
// health monitor (ErrPathUnhealthy).

// ErrPeerStalled is the sentinel for watchdog teardowns; match with
// errors.Is. The concrete error is always a *StallError.
var ErrPeerStalled = errors.New("tcpls: peer stalled")

// StallError reports what the watchdog saw when it gave up on a peer.
type StallError struct {
	Kind   string // "write-stall" or "zero-window"
	Stream uint32 // stalled stream (write stalls)
	Path   uint32 // stalled path (zero-window stalls)
}

func (e *StallError) Error() string {
	switch e.Kind {
	case "zero-window":
		return fmt.Sprintf("tcpls: peer stalled: zero window persisted on path %d", e.Path)
	default:
		return fmt.Sprintf("tcpls: peer stalled: no ack progress on stream %d", e.Stream)
	}
}

// Is makes errors.Is(err, ErrPeerStalled) match any StallError.
func (e *StallError) Is(target error) bool { return target == ErrPeerStalled }

// peerWindower is the optional transport hook exposing the peer's
// advertised receive window (tcpnet.Conn has it; kernel sockets don't).
type peerWindower interface {
	PeerWindow() int
}

// startStallWatchdog launches the watchdog loop once, if enabled.
// Sessions enrolled in a server runtime never run this loop — the
// runtime's shared timer loop drives a watchdogState sweep instead.
func (s *Session) startStallWatchdog() {
	if s.cfg.StallTimeout <= 0 {
		return
	}
	s.watchdogOnce.Do(func() { go s.watchdogLoop() })
}

// ackMark is the watchdog's last-observed ack position for one stream.
type ackMark struct {
	acked uint64
	since time.Time // wall clock; compared via virtualSince
}

// watchdogState is the between-sweep memory of one session's stall
// watchdog: which streams' acks moved and when, and how long each
// path's peer window has been shut. Owned by whichever single goroutine
// drives the sweeps (the standalone loop or the runtime's timer loop).
type watchdogState struct {
	progress  map[uint32]ackMark   // stream id -> last ack movement
	zeroSince map[uint32]time.Time // path id -> zero window first seen
}

// sweep runs one stall check and returns a non-nil *StallError (plus
// the stalled stream's unacked byte count) when the session should be
// torn down. All durations are virtual; wall-to-virtual conversion
// happens per sweep so the same config works on real and emulated
// clocks.
func (w *watchdogState) sweep(s *Session, timeout time.Duration, now time.Time) (*StallError, int64) {
	if w.progress == nil {
		w.progress = make(map[uint32]ackMark)
		w.zeroSince = make(map[uint32]time.Time)
	}
	states := s.StreamStates()
	anyUnacked := false
	for _, ss := range states {
		if ss.Unacked > 0 {
			anyUnacked = true
			break
		}
	}
	// Write stalls: unacked data whose cumulative ack is frozen.
	// With acks disabled there is no progress signal to watch — the
	// replay buffer legitimately never drains — so skip the check
	// (the zero-window arm below still covers slow-drain peers).
	if !s.cfg.DisableAcks && !s.PlainMode() {
		for _, ss := range states {
			if ss.Unacked == 0 {
				delete(w.progress, ss.ID)
				continue
			}
			m, ok := w.progress[ss.ID]
			if !ok || ss.AckedTo > m.acked {
				w.progress[ss.ID] = ackMark{acked: ss.AckedTo, since: now}
				continue
			}
			if s.virtualSince(m.since) >= timeout {
				return &StallError{Kind: "write-stall", Stream: ss.ID}, int64(ss.Unacked)
			}
		}
	}
	// Zero-window persist: the peer's advertised window has been
	// closed for the whole timeout while we hold data for it.
	live := make(map[uint32]bool)
	for _, pc := range s.livePaths() {
		live[pc.id] = true
		pw, ok := pc.tcp.(peerWindower)
		if !ok || !anyUnacked || pw.PeerWindow() > 0 {
			delete(w.zeroSince, pc.id)
			continue
		}
		first, seen := w.zeroSince[pc.id]
		if !seen {
			w.zeroSince[pc.id] = now
			continue
		}
		if s.virtualSince(first) >= timeout {
			return &StallError{Kind: "zero-window", Path: pc.id}, 0
		}
	}
	for id := range w.zeroSince {
		if !live[id] {
			delete(w.zeroSince, id)
		}
	}
	return nil, 0
}

// watchdogLoop sweeps the session every check interval (standalone
// sessions only — servers sweep from the shared runtime timer loop).
func (s *Session) watchdogLoop() {
	timeout := s.cfg.StallTimeout
	interval := s.cfg.StallCheckInterval
	if interval <= 0 {
		interval = timeout / 4
	}
	if interval <= 0 {
		interval = time.Millisecond
	}
	var w watchdogState
	for {
		if !s.sleepCancelable(interval) {
			return // session closed
		}
		if err, unacked := w.sweep(s, timeout, time.Now()); err != nil {
			s.stallTeardown(err, unacked)
			return
		}
	}
}

// stallTeardown emits the stall event and ends the session; teardown
// recycles every queued buffer and releases the server-wide accounting.
func (s *Session) stallTeardown(err *StallError, unacked int64) {
	s.ctr.stalls.Add(1)
	s.emit(telemetry.Event{
		Kind:   telemetry.EvStreamStall,
		Stream: err.Stream,
		Path:   err.Path,
		A:      unacked,
		S:      err.Kind,
	})
	s.teardown(err)
}
