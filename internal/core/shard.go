package core

import (
	"sync"
	"time"
)

// Sharded session table. A single listener mutex around the session and
// reservation maps serializes the three hottest server paths — JOIN
// lookups during ClientHello inspection, session registration after
// every handshake, and teardown removal — and at C50K-class session
// counts that one lock is the accept path's ceiling. The table is split
// into power-of-two shards keyed by conn id: each shard owns its slice
// of the id space under its own mutex, so the only serialization left
// is between operations on ids that actually share a shard.
//
// Conn ids map to shards deterministically, which is what keeps
// reservation exact without a global lock: uniqueness of an id only
// needs the one shard that id lives in.

// defaultShards is the session-table shard count when Config.Shards is
// zero. 64 shards keep the per-shard session count in the hundreds even
// at C50K while costing ~6 KiB of empty maps at rest.
const defaultShards = 64

// maxShards bounds Config.Shards against misconfiguration.
const maxShards = 1 << 14

type tableShard struct {
	mu       sync.Mutex
	sessions map[uint32]*Session
	reserved map[uint32]bool // conn ids minted but not yet registered
}

// shardMap is the sharded session/reservation table.
type shardMap struct {
	shards []tableShard
	mask   uint32
}

// newShardMap builds a table with n shards, rounded up to a power of
// two (n <= 0 takes defaultShards).
func newShardMap(n int) *shardMap {
	if n <= 0 {
		n = defaultShards
	}
	if n > maxShards {
		n = maxShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	m := &shardMap{shards: make([]tableShard, size), mask: uint32(size - 1)}
	for i := range m.shards {
		m.shards[i].sessions = make(map[uint32]*Session)
		m.shards[i].reserved = make(map[uint32]bool)
	}
	return m
}

// shardIndex mixes the conn id before masking. Minted ids are uniform
// random uint32s, but the table must also distribute structured id
// patterns (sequential test ids, adversarially chosen JOIN targets)
// evenly — the finalizer below avalanches every input bit into the
// masked low bits.
func (m *shardMap) shardIndex(id uint32) uint32 {
	id ^= id >> 16
	id *= 0x45d9f3b
	id ^= id >> 16
	id *= 0x45d9f3b
	id ^= id >> 16
	return id & m.mask
}

func (m *shardMap) shard(id uint32) *tableShard {
	return &m.shards[m.shardIndex(id)]
}

// get returns the live session owning id, or nil. This is the JOIN
// lookup: one shard lock, never the whole table.
func (m *shardMap) get(id uint32) *Session {
	sh := m.shard(id)
	sh.mu.Lock()
	s := sh.sessions[id]
	sh.mu.Unlock()
	return s
}

// insert publishes a session under its (previously reserved) conn id;
// the session table owns the id from here on.
func (m *shardMap) insert(id uint32, s *Session) {
	sh := m.shard(id)
	sh.mu.Lock()
	delete(sh.reserved, id)
	sh.sessions[id] = s
	sh.mu.Unlock()
}

// remove drops id's table entry iff it still maps to s — a dead
// session must never evict the live session that reused its id.
func (m *shardMap) remove(id uint32, s *Session) {
	sh := m.shard(id)
	sh.mu.Lock()
	if sh.sessions[id] == s {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
}

// reserve mints a conn id colliding with neither a live session nor
// another in-flight handshake and holds it until insert (or release on
// handshake failure). Candidates come from rnd via pickConnID; because
// an id's shard is deterministic, check-and-mark is atomic under that
// single shard's lock, and a lost race just draws again.
func (m *shardMap) reserve(rnd func() uint32) uint32 {
	for {
		id := pickConnID(func(id uint32) bool { return m.taken(id) }, rnd)
		sh := m.shard(id)
		sh.mu.Lock()
		_, live := sh.sessions[id]
		if !live && !sh.reserved[id] {
			sh.reserved[id] = true
			sh.mu.Unlock()
			return id
		}
		sh.mu.Unlock()
	}
}

// getLive resolves id to its session, waiting out the reservation
// window if needed. A JOIN can legitimately race the tail of its
// session's first handshake: the client learns its CONNID from
// EncryptedExtensions one round trip before the server worker publishes
// the session, so with concurrent handshake workers the JOIN lookup can
// land in between. The reserved set marks exactly that in-flight window
// — while the id is reserved, a short bounded wait turns the spurious
// rejection into a correct lookup. Unknown ids (neither live nor
// reserved) still fail immediately, and a reservation released by a
// failed handshake ends the wait early.
func (m *shardMap) getLive(id uint32, timeout time.Duration) *Session {
	if s := m.get(id); s != nil {
		return s
	}
	deadline := time.Now().Add(timeout)
	for m.taken(id) && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
		if s := m.get(id); s != nil {
			return s
		}
	}
	return m.get(id)
}

// taken reports whether id is held by a live session or a reservation.
func (m *shardMap) taken(id uint32) bool {
	sh := m.shard(id)
	sh.mu.Lock()
	_, live := sh.sessions[id]
	res := sh.reserved[id]
	sh.mu.Unlock()
	return live || res
}

// release frees a reservation whose handshake failed.
func (m *shardMap) release(id uint32) {
	sh := m.shard(id)
	sh.mu.Lock()
	delete(sh.reserved, id)
	sh.mu.Unlock()
}

// snapshot copies the live sessions (no ordering guarantee).
func (m *shardMap) snapshot() []*Session {
	out := make([]*Session, 0, m.len())
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, s := range sh.sessions {
			out = append(out, s)
		}
		sh.mu.Unlock()
	}
	return out
}

// len counts live sessions across every shard.
func (m *shardMap) len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += len(sh.sessions)
		sh.mu.Unlock()
	}
	return n
}

// reservedLen counts outstanding reservations across every shard.
func (m *shardMap) reservedLen() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += len(sh.reserved)
		sh.mu.Unlock()
	}
	return n
}

// shardCounts reports per-shard live-session counts (distribution
// checks and the server.shard_max_sessions gauge).
func (m *shardMap) shardCounts() []int {
	out := make([]int, len(m.shards))
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		out[i] = len(sh.sessions)
		sh.mu.Unlock()
	}
	return out
}
