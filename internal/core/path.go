package core

import (
	"errors"
	"io"
	"net"
	"net/netip"
	"sync"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
	"github.com/pluginized-protocols/gotcpls/internal/cc"
	"github.com/pluginized-protocols/gotcpls/internal/record"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

// ccSwapper is the optional transport hook for installing a congestion
// controller delivered over the secure channel (tcpnet.Conn has it).
type ccSwapper interface {
	SetCongestionControlImpl(ctrl cc.Controller)
}

// pathConn is one TCP connection of a session, with its TLS machine.
type pathConn struct {
	id      uint32
	session *Session
	tcp     net.Conn
	tls     *tls13.Conn
	joined  bool // attached via JOIN (vs. the initial handshake)
	plain   bool // degraded plain-TLS path: raw bytes, no TCPLS framing

	writeMu sync.Mutex
	// wScratch holds the stream-data record header and TType trailer
	// handed to the vectored record write; guarded by writeMu.
	wScratch [record.StreamHeaderLen + 1]byte
	// wBatchHdrs/wBatchRecs are the batched equivalents: per-record
	// header scratch and the OutRecord views handed to the batched
	// sealer; guarded by writeMu.
	wBatchHdrs [maxWriteBurst][record.StreamHeaderLen + 1]byte
	wBatchRecs [maxWriteBurst]tls13.OutRecord
	ctxMu      sync.Mutex
	ctxs       map[uint32]bool // stream contexts added on this conn

	health   pathHealth
	failOnce sync.Once // handleConnFailure runs at most once per path

	// accounted marks a held global path slot (set before the path is
	// published in the session's conn table, released once by close).
	accounted bool

	mu     sync.Mutex
	closed bool
	err    error
}

func newPathConn(s *Session, tcp net.Conn, tc *tls13.Conn) *pathConn {
	return &pathConn{
		id:      s.allocPathID(),
		session: s,
		tcp:     tcp,
		tls:     tc,
		ctxs:    make(map[uint32]bool),
	}
}

func (pc *pathConn) isClosed() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.closed
}

// close tears the path down; err nil means orderly.
func (pc *pathConn) close(err error) {
	pc.mu.Lock()
	if pc.closed {
		pc.mu.Unlock()
		return
	}
	pc.closed = true
	pc.err = err
	pc.mu.Unlock()
	if pc.accounted {
		pc.session.acct.releasePath()
	}
	if err != nil {
		// The path is dead, not finishing: reset instead of a FIN
		// handshake so writers blocked on its full send buffer fail
		// immediately and failover proceeds while the path is still
		// unreachable. An orderly Close would strand them until the
		// transport's own timers give up.
		if ab, ok := pc.tcp.(interface{ Abort() }); ok {
			ab.Abort()
		} else {
			pc.tcp.Close()
		}
	} else {
		pc.tcp.Close()
	}
	failed := int64(0)
	reason := "orderly"
	if err != nil {
		failed = 1
		reason = err.Error()
	}
	pc.session.emit(telemetry.Event{
		Kind: telemetry.EvPathClose,
		Path: pc.id,
		A:    failed,
		S:    reason,
	})
	pc.session.unregisterPathMetrics(pc)
	if cb := pc.session.cfg.Callbacks.ConnClosed; cb != nil {
		cb(pc.id, err != nil)
	}
}

// introspector returns the cross-layer view of the underlying TCP
// connection, or nil when running over an opaque transport.
func (pc *pathConn) introspector() Introspector {
	if in, ok := pc.tcp.(Introspector); ok {
		return in
	}
	return nil
}

// ensureStreamContext makes sure both ends have the stream's crypto
// context on this connection: the first use of a stream on a connection
// sends a StreamOpen control frame (the receiver derives the context on
// receipt) and derives the local context.
func (pc *pathConn) ensureStreamContext(id uint32) error {
	pc.ctxMu.Lock()
	have := pc.ctxs[id]
	if !have {
		pc.ctxs[id] = true
	}
	pc.ctxMu.Unlock()
	if have {
		return nil
	}
	if err := pc.writeControl(record.StreamOpen{StreamID: id}); err != nil {
		return err
	}
	return pc.tls.AddStreamContext(id)
}

// writeControl sends control frames on the default context. On a
// degraded plain path there is no secure control channel: frames are
// silently dropped (the capability was shed, not the session).
func (pc *pathConn) writeControl(frames ...record.Frame) error {
	if pc.plain {
		return nil
	}
	s := pc.session
	s.ctr.ctrlSent.Add(uint64(len(frames)))
	if s.tracing() {
		for _, f := range frames {
			s.emit(telemetry.Event{
				Kind: telemetry.EvCtrlSent,
				Path: pc.id,
				S:    record.Type(f).String(),
			})
		}
	}
	pc.writeMu.Lock()
	defer pc.writeMu.Unlock()
	buf := record.AppendControl(bufpool.Get(512)[:0], frames...)
	err := pc.tls.WriteRecordContext(tls13.DefaultContext, buf)
	bufpool.Put(buf) // a grown (non-class) buffer is silently dropped
	return err
}

// writeTCPOption ships one TCP option through the secure channel.
func (pc *pathConn) writeTCPOption(o *record.TCPOption) error {
	if pc.plain {
		return ErrCapabilityDisabled
	}
	pc.writeMu.Lock()
	defer pc.writeMu.Unlock()
	return pc.tls.WriteRecordContext(tls13.DefaultContext, record.EncodeTCPOption(o))
}

// writeChunk sends one stream-data record under the stream's context.
func (pc *pathConn) writeChunk(c *record.StreamChunk) error {
	if pc.plain {
		return pc.writePlainChunk(c)
	}
	if err := pc.ensureStreamContext(c.StreamID); err != nil {
		return err
	}
	s := pc.session
	s.ctr.recordsSent.Add(1)
	s.ctr.bytesSent.Add(uint64(len(c.Data)))
	s.touch()
	s.noteBlackoutEnd()
	fin := int64(0)
	if c.Fin {
		fin = 1
	}
	s.emit(telemetry.Event{
		Kind:   telemetry.EvRecordSent,
		Path:   pc.id,
		Stream: c.StreamID,
		A:      int64(len(c.Data)),
		B:      int64(c.Offset),
		C:      fin,
	})
	pc.writeMu.Lock()
	defer pc.writeMu.Unlock()
	// Vectored write: header, payload and TType trailer are gathered
	// directly into the sealed-record buffer, so the chunk's plaintext
	// is never assembled separately.
	record.PutStreamHeader(pc.wScratch[:], c)
	pc.wScratch[record.StreamHeaderLen] = byte(record.TTypeStreamData)
	return pc.tls.WriteRecordParts(c.StreamID,
		pc.wScratch[:record.StreamHeaderLen], c.Data, pc.wScratch[record.StreamHeaderLen:])
}

// chunkSize picks the stream-chunk size: fixed if configured, otherwise
// matched to the congestion window's free space so records do not get
// fragmented across segments more than necessary (§4.6).
func (pc *pathConn) chunkSize() int {
	if n := pc.session.cfg.RecordSize; n > 0 {
		return min(n, MaxRecordPayload)
	}
	if in := pc.introspector(); in != nil {
		cwnd, inflight, mss := in.CWndInfo()
		free := cwnd - inflight
		if free < mss {
			free = mss
		}
		// Round down to whole segments, leaving room for the record
		// framing inside the first segment.
		segs := free / mss
		if segs < 1 {
			segs = 1
		}
		n := segs*mss - record.StreamHeaderLen - 64
		return max(min(n, MaxRecordPayload), 512)
	}
	// Opaque transport: with no window to match, the cheapest record is
	// the biggest one — per-record seal and framing costs amortize over
	// MaxRecordPayload, and the kernel segments it however it likes.
	// (The Fig. 2 sweep benchmark measures exactly this trade.)
	return MaxRecordPayload
}

// maxWriteBurst bounds one batched chunk flush: 15 cwnd-shaped records
// fill the sealer's 64K staging buffer without spilling.
const maxWriteBurst = 15

// writeChunkBatch sends a burst of same-stream chunks through one
// batched record write (one seal pass, one transport write for the
// whole burst). Falls back to the single-record path for singleton
// bursts and degraded plain-TLS paths.
func (pc *pathConn) writeChunkBatch(chunks []*record.StreamChunk) error {
	if len(chunks) == 0 {
		return nil
	}
	if len(chunks) == 1 {
		return pc.writeChunk(chunks[0])
	}
	if pc.plain {
		for _, c := range chunks {
			if err := pc.writePlainChunk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := pc.ensureStreamContext(chunks[0].StreamID); err != nil {
		return err
	}
	s := pc.session
	var burstBytes uint64
	for _, c := range chunks {
		burstBytes += uint64(len(c.Data))
	}
	s.ctr.recordsSent.Add(uint64(len(chunks)))
	s.ctr.bytesSent.Add(burstBytes)
	s.touch()
	s.noteBlackoutEnd()
	for _, c := range chunks {
		fin := int64(0)
		if c.Fin {
			fin = 1
		}
		s.emit(telemetry.Event{
			Kind:   telemetry.EvRecordSent,
			Path:   pc.id,
			Stream: c.StreamID,
			A:      int64(len(c.Data)),
			B:      int64(c.Offset),
			C:      fin,
		})
	}
	pc.writeMu.Lock()
	defer pc.writeMu.Unlock()
	for len(chunks) > 0 {
		n := min(len(chunks), maxWriteBurst)
		for i, c := range chunks[:n] {
			h := pc.wBatchHdrs[i][:]
			record.PutStreamHeader(h, c)
			h[record.StreamHeaderLen] = byte(record.TTypeStreamData)
			pc.wBatchRecs[i] = tls13.OutRecord{
				Ctx:  c.StreamID,
				Head: h[:record.StreamHeaderLen],
				Body: c.Data,
				Tail: h[record.StreamHeaderLen:],
			}
		}
		if _, err := pc.tls.WriteRecordBatch(pc.wBatchRecs[:n]); err != nil {
			return err
		}
		chunks = chunks[n:]
	}
	return nil
}

// readBurst is the inbound batch-drain width: how many complete
// buffered records one lock acquisition may hand the read loop.
const readBurst = 16

// readLoop pumps inbound records until the connection dies, draining
// whole bursts per record-layer lock acquisition: the batched read
// returns every record already sitting in the receive buffer, so a
// sender's batched flush is processed with one lock round trip instead
// of one per record.
func (pc *pathConn) readLoop() {
	recs := make([]tls13.InRecord, readBurst)
	for {
		n, err := pc.tls.ReadRecordContextBatch(recs)
		for i := 0; i < n; i++ {
			pc.handleRecord(recs[i].Payload)
			recs[i] = tls13.InRecord{}
		}
		if err != nil {
			if errors.Is(err, tls13.ErrNoContext) {
				// A record for a context we dropped (stream closed while
				// data was in flight): skip it.
				continue
			}
			pc.handleDeath(err)
			return
		}
	}
}

// handleRecord routes one decrypted record payload.
//
// plain is a pooled record buffer owned by the read loop. Stream
// chunks alias it (chunk.Data points into plain), so ownership travels
// with the chunk into the stream's receive queue and the buffer is
// recycled when the application consumes it. Control frames and TCP
// options decode into copies, so those arms recycle the buffer
// immediately.
func (pc *pathConn) handleRecord(plain []byte) {
	tt, content, err := record.Decode(plain)
	if err != nil {
		bufpool.Put(plain)
		return
	}
	switch tt {
	case record.TTypeStreamData:
		chunk, err := record.DecodeStreamChunk(content)
		if err != nil {
			bufpool.Put(plain)
			return
		}
		pc.session.dispatchChunk(pc, chunk, plain)
	case record.TTypeControl:
		frames, err := record.DecodeControl(content)
		bufpool.Put(plain)
		if err != nil {
			return
		}
		for _, f := range frames {
			pc.session.dispatchFrame(pc, f)
		}
	case record.TTypeTCPOption:
		opt, err := record.DecodeTCPOption(content)
		bufpool.Put(plain)
		if err != nil {
			return
		}
		pc.session.applyTCPOption(pc, opt)
	default:
		bufpool.Put(plain)
	}
}

// handleDeath classifies a read-loop error and triggers failover.
func (pc *pathConn) handleDeath(err error) {
	orderly := errors.Is(err, io.EOF)
	if orderly {
		pc.close(nil)
	} else {
		pc.close(err)
	}
	pc.session.handleConnFailure(pc, err, orderly)
}

// --- session-side dispatch ---

// dispatchChunk routes a stream-data chunk. owner is the pooled record
// buffer chunk.Data aliases (nil when the data is not pooled); ownership
// transfers to the stream, or is recycled here if no stream takes it.
func (s *Session) dispatchChunk(pc *pathConn, chunk *record.StreamChunk, owner []byte) {
	s.ctr.recordsRcvd.Add(1)
	s.ctr.bytesRcvd.Add(uint64(len(chunk.Data)))
	s.touch()
	s.noteBlackoutEnd()
	fin := int64(0)
	if chunk.Fin {
		fin = 1
	}
	s.emit(telemetry.Event{
		Kind:   telemetry.EvRecordRecv,
		Path:   pc.id,
		Stream: chunk.StreamID,
		A:      int64(len(chunk.Data)),
		B:      int64(chunk.Offset),
		C:      fin,
	})
	st := s.getOrCreateStream(chunk.StreamID, pc)
	if st == nil {
		bufpool.Put(owner)
		return
	}
	st.deliver(pc, chunk, owner)
}

func (s *Session) dispatchFrame(pc *pathConn, f record.Frame) {
	s.ctr.ctrlRcvd.Add(1)
	s.emit(telemetry.Event{
		Kind: telemetry.EvCtrlRecv,
		Path: pc.id,
		S:    record.Type(f).String(),
	})
	switch fr := f.(type) {
	case record.Ping:
		pc.writeControl(record.Pong{Seq: fr.Seq})
	case record.Pong:
		// Liveness confirmed: match the probe, update RTT/loss scoring.
		pc.handlePong(fr.Seq)
	case record.Ack:
		s.mu.Lock()
		st := s.streams[fr.StreamID]
		s.mu.Unlock()
		if st != nil {
			st.handleAck(fr.Offset)
		}
	case record.StreamOpen:
		// Peer will send stream data on this conn: derive the context
		// before its first data record arrives (FIFO on this conn).
		pc.ctxMu.Lock()
		known := pc.ctxs[fr.StreamID]
		pc.ctxs[fr.StreamID] = true
		pc.ctxMu.Unlock()
		if !known {
			pc.tls.AddStreamContext(fr.StreamID)
		}
		s.getOrCreateStream(fr.StreamID, pc)
	case record.StreamClose:
		s.mu.Lock()
		st := s.streams[fr.StreamID]
		s.mu.Unlock()
		if st != nil {
			st.deliver(pc, &record.StreamChunk{
				StreamID: fr.StreamID, Offset: fr.FinalOffset, Fin: true,
			}, nil)
		}
	case record.AddAddress:
		s.mu.Lock()
		full := len(s.peerAddrs) >= s.limits.MaxPeerAddresses
		if !full {
			s.peerAddrs = append(s.peerAddrs, record.Advertisement{
				Addr: fr.Addr, Port: fr.Port, Primary: fr.Primary,
			})
		}
		s.mu.Unlock()
		if full {
			// ADD_ADDR spray: the address set is advisory, dropping the
			// excess degrades gracefully without ending the session.
			return
		}
		if cb := s.cfg.Callbacks.AddressAdvertised; cb != nil {
			cb(netip.AddrPortFrom(fr.Addr, fr.Port), fr.Primary)
		}
	case record.RemoveAddress:
		s.mu.Lock()
		out := s.peerAddrs[:0]
		for _, a := range s.peerAddrs {
			if a.Addr != fr.Addr {
				out = append(out, a)
			}
		}
		s.peerAddrs = out
		s.mu.Unlock()
	case record.BPFCC:
		// Verify the bytecode, then swap the controller on every live
		// connection whose transport supports it (§3(iii)).
		installed := false
		for _, path := range s.livePaths() {
			if sw, ok := path.tcp.(ccSwapper); ok {
				ctrl, err := cc.LoadEBPF(fr.Name, fr.Bytecode)
				if err != nil {
					return // rejected by the verifier: ignore the plugin
				}
				sw.SetCongestionControlImpl(ctrl)
				installed = true
			}
		}
		if installed {
			if cb := s.cfg.Callbacks.CCInstalled; cb != nil {
				cb("ebpf:" + fr.Name)
			}
		}
	case record.SessionClose:
		s.teardown(nil)
	case record.ConnClose:
		// Peer finished with this TCP connection (migration, §3.2):
		// close it gracefully. Failover still gets a look: if this was
		// the last connection and streams are still open, the session
		// must re-establish rather than strand the writers.
		pc.close(nil)
		s.handleConnFailure(pc, nil, true)
	}
}

// applyTCPOption performs the receiver side of §3.1: "the server
// extracts it and performs the required setsockopt".
func (s *Session) applyTCPOption(pc *pathConn, opt *record.TCPOption) {
	if d, ok := opt.UserTimeout(); ok {
		// Durations on the secure channel are virtual; introspectable
		// transports (tcpnet) scale internally.
		if in := pc.introspector(); in != nil {
			in.SetUserTimeout(d)
		}
	}
	if cb := s.cfg.Callbacks.TCPOption; cb != nil {
		cb(opt.Kind, opt.Data)
	}
}
